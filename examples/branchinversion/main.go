// Branch inversion (Rocket CS2 / BOOM CS, Fig. 7 d/n): the same pair of
// workloads shows opposite effects on the two cores because their
// predictors cold-predict opposite directions — a result that only a
// correct Bad Speculation class can explain.
package main

import (
	"fmt"
	"log"

	"icicle/internal/boom"
	"icicle/internal/core"
	"icicle/internal/kernel"
	"icicle/internal/perf"
	"icicle/internal/rocket"
)

func main() {
	brmiss, err := kernel.ByName("brmiss")
	if err != nil {
		log.Fatal(err)
	}
	inv, err := kernel.ByName("brmiss_inv")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== Rocket (BHT cold-predicts not-taken) ==")
	show := func(name string, cycles uint64, b core.Breakdown) {
		fmt.Printf("%-11s cycles %7d  ret %5.1f%%  badspec %5.1f%%  frontend %5.1f%%\n",
			name, cycles, b.Retiring*100, b.BadSpec*100, b.Frontend*100)
	}
	for _, k := range []*kernel.Kernel{brmiss, inv} {
		res, b, err := perf.RunRocket(rocket.DefaultConfig(), k)
		if err != nil {
			log.Fatal(err)
		}
		show(k.Name, res.Cycles, b)
	}
	fmt.Println("→ the taken chain mispredicts every branch; inverting it fixes Rocket")

	fmt.Println("\n== BOOM (TAGE base cold-predicts taken) ==")
	for _, k := range []*kernel.Kernel{brmiss, inv} {
		res, b, err := perf.RunBoom(boom.NewConfig(boom.Large), k)
		if err != nil {
			log.Fatal(err)
		}
		show(k.Name, res.Cycles, b)
	}
	fmt.Println("→ the opposite effect: BOOM predicts the taken chain (0% Bad Spec,")
	fmt.Println("  cost shows as Frontend resteers) and mispredicts the inverted one")
}
