// Temporal TMA (§IV-C/§V-B): attach the TracerV-style bridge to a BOOM
// simulation, stream every cycle's event signals through the binary trace
// format, and run the trace-based validation analyses — the recovery
// CDF, the class-overlap upper bound, and a Fig. 3-style timeline.
package main

import (
	"bytes"
	"fmt"
	"log"

	"icicle/internal/boom"
	"icicle/internal/kernel"
	"icicle/internal/trace"
)

func main() {
	k, err := kernel.ByName("qsort")
	if err != nil {
		log.Fatal(err)
	}
	cfg := boom.NewConfig(boom.Large)
	c, err := boom.New(cfg, k.MustProgram())
	if err != nil {
		log.Fatal(err)
	}

	// Select the signals to stream over the bridge (§IV-C: "each event
	// must be chosen manually in the BOOM core").
	bundle := trace.MustBundle(c.Space,
		boom.EvFetchBubbles, boom.EvICacheBlocked, boom.EvRecovering,
		boom.EvBrMispredict, boom.EvUopsIssued)

	var bridge bytes.Buffer // stands in for the PCIe DMA stream
	w, err := trace.NewWriter(&bridge, bundle)
	if err != nil {
		log.Fatal(err)
	}
	c.SetCycleHook(w.WriteCycle)

	if _, err := c.Run(); err != nil {
		log.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bridge carried %d cycles × %d bytes/frame = %d bytes\n",
		w.Cycles(), bundle.FrameBytes(), int(w.Cycles())*bundle.FrameBytes())

	// Host side: decode and analyze.
	rd, err := trace.NewReader(&bridge)
	if err != nil {
		log.Fatal(err)
	}
	a, err := trace.NewAnalyzer(rd)
	if err != nil {
		log.Fatal(err)
	}

	cdf, err := a.RecoveryCDF(boom.EvRecovering)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrecovery sequences: %d  mode %d cycles  max %d (Fig. 8b)\n",
		cdf.N(), cdf.Mode(), cdf.Max())

	rep, err := a.OverlapBound(boom.EvFetchBubbles, boom.EvICacheBlocked,
		boom.EvRecovering, 50)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("overlap bound (Table VI):", rep)

	if at := a.FindWindow(boom.EvBrMispredict, 1000); at >= 0 {
		fmt.Println("\ntimeline around a branch mispredict:")
		fmt.Println(a.Timeline(at-2, at+20))
	}
}
