// Cache study (Rocket CS1, Fig. 7c): sweep the L1 data cache size under
// the deepsjeng proxy and watch the Backend Bound class absorb the lost
// slots — the kind of hardware design-space question TMA answers without
// the designer knowing pipeline internals.
package main

import (
	"fmt"
	"log"

	"icicle/internal/kernel"
	"icicle/internal/perf"
	"icicle/internal/rocket"
)

func main() {
	k, err := kernel.ByName("531.deepsjeng_r")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("L1D sweep for 531.deepsjeng_r on Rocket:")
	var baseCycles uint64
	for _, kb := range []int{64, 32, 16, 8} {
		cfg := rocket.DefaultConfig()
		cfg.Hierarchy.L1D.SizeBytes = kb << 10
		res, b, err := perf.RunRocket(cfg, k)
		if err != nil {
			log.Fatal(err)
		}
		if baseCycles == 0 {
			baseCycles = res.Cycles
		}
		slowdown := float64(res.Cycles)/float64(baseCycles) - 1
		fmt.Printf("L1D %2d KiB: cycles %9d (%+5.1f%%)  backend %5.1f%% (core %4.1f%%, mem %4.1f%%)  d$-miss-rate %.2f%%\n",
			kb, res.Cycles, slowdown*100,
			b.Backend*100, b.CoreBound*100, b.MemBound*100,
			res.L1D.MissRate()*100)
	}
	fmt.Println("\nShrinking the cache moves slots into Backend/Mem Bound (Fig. 7c).")
}
