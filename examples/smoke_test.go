package examples

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestExamplesBuildAndRun builds every example binary and runs it: each
// must exit 0 and print something. The examples double as end-to-end
// tests of the public simulation surface — a silent or crashing example
// means a README walkthrough is broken.
func TestExamplesBuildAndRun(t *testing.T) {
	if testing.Short() {
		t.Skip("building and running example binaries is not short")
	}
	examples := []string{
		"branchinversion",
		"cachestudy",
		"multiplexing",
		"quickstart",
		"temporaltma",
	}
	bindir := t.TempDir()
	for _, name := range examples {
		name := name
		t.Run(name, func(t *testing.T) {
			bin := filepath.Join(bindir, name)
			build := exec.Command("go", "build", "-o", bin, "./"+name)
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("go build: %v\n%s", err, out)
			}
			cmd := exec.Command(bin)
			cmd.Dir = t.TempDir() // examples must not depend on the CWD
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("run: %v\n%s", err, out)
			}
			if len(out) == 0 {
				t.Fatal("example produced no output")
			}
		})
	}
	// Sanity: the list above must stay in sync with the directories.
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs := 0
	for _, e := range entries {
		if e.IsDir() && e.Name() != "testdata" {
			dirs++
		}
	}
	if dirs != len(examples) {
		t.Fatalf("examples/ has %d directories but the smoke list has %d", dirs, len(examples))
	}
}
