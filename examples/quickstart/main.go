// Quickstart: run a CoreMark-like workload on LargeBOOM with the PMU
// programmed through the CSR interface, and print the hierarchical TMA
// breakdown — the minimal end-to-end use of the Icicle stack.
package main

import (
	"fmt"
	"log"

	"icicle/internal/boom"
	"icicle/internal/kernel"
	"icicle/internal/perf"
)

func main() {
	// 1. Pick a workload. Kernels are self-checking RV64 programs; see
	//    `icicle-perf -list` for the full suite.
	k, err := kernel.ByName("coremark")
	if err != nil {
		log.Fatal(err)
	}

	// 2. Pick a core. Table IV's five BOOM sizes are available, plus
	//    Rocket via perf.RunRocket.
	cfg := boom.NewConfig(boom.Large)

	// 3. Simulate and evaluate TMA. RunBoom programs the TMA events into
	//    the counter file, simulates cycle by cycle, and applies the
	//    Table II model.
	res, breakdown, err := perf.RunBoom(cfg, k)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s on %s: %d instructions in %d cycles\n",
		k.Name, cfg.Name, res.Insts, res.Cycles)
	fmt.Print(breakdown)
	fmt.Printf("dominant bottleneck: %s\n", breakdown.Dominant())
}
