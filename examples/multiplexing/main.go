// Counter multiplexing: the hardware has 29 programmable counters, but a
// characterization campaign may want far more event groups. This example
// time-slices 40 groups over the counter file (the perf/MPX technique the
// paper cites as the software answer to counter pressure) and compares the
// scaled estimates against exact ground truth.
package main

import (
	"fmt"
	"log"
	"sort"

	"icicle/internal/boom"
	"icicle/internal/kernel"
	"icicle/internal/perf"
)

func main() {
	k, err := kernel.ByName("coremark")
	if err != nil {
		log.Fatal(err)
	}
	cfg := boom.NewConfig(boom.Large)
	c, err := boom.New(cfg, k.MustProgram())
	if err != nil {
		log.Fatal(err)
	}

	// 40 single-event groups — more than the counter file can hold.
	base := []string{
		boom.EvUopsIssued, boom.EvUopsRetired, boom.EvFetchBubbles,
		boom.EvDCacheBlocked, boom.EvRecovering, boom.EvBrMispredict,
		boom.EvICacheBlocked, boom.EvFlush,
	}
	var plan perf.Plan
	for i := 0; i < 40; i++ {
		plan.Groups = append(plan.Groups, perf.Group{base[i%len(base)]})
	}

	m, err := perf.NewMultiplexer(c.PMU, plan, 512)
	if err != nil {
		log.Fatal(err)
	}
	c.SetCycleHook(m.Tick)

	res, err := c.Run()
	if err != nil {
		log.Fatal(err)
	}
	m.Finish()

	est := m.Estimates()
	fmt.Printf("%d groups multiplexed over %d counters (%d cycles, quantum 512)\n",
		len(plan.Groups), 29, res.Cycles)
	fmt.Printf("%-18s %12s %12s %8s %8s\n", "event", "estimate", "exact", "err%", "active%")
	names := make([]string, 0, len(base))
	names = append(names, base...)
	sort.Strings(names)
	for _, ev := range names {
		exact := res.Tally[ev]
		got := est[ev]
		var errPct float64
		if exact > 0 {
			errPct = 100 * (float64(got) - float64(exact)) / float64(exact)
		}
		// Find one group index carrying this event for its active share.
		active := 0.0
		for i, g := range plan.Groups {
			if g[0] == ev {
				active = m.ActiveFraction(i)
				break
			}
		}
		fmt.Printf("%-18s %12d %12d %7.1f%% %7.0f%%\n", ev, got, exact, errPct, active*100)
	}
	fmt.Println("\nSteady events estimate accurately; rare bursty ones (mispredicts,")
	fmt.Println("flushes) show the classic multiplexing error the paper warns about.")
}
