module icicle

go 1.22
