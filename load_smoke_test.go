// Load-harness smoke: an end-to-end open-loop ladder through the real
// HTTP stack — icicle-load's library driving a live serve.Server in wait
// mode, scraping the server's own /metrics around every step. This is
// what `make load-smoke` (part of `make ci`) runs, under the race
// detector. It pins the acceptance contract for the harness: zero
// dropped samples, ordered CO-corrected quantiles, populated SLO
// verdicts, and server-side queue-wait/hit-rate columns aligned with
// every ladder step.
package icicle_test

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"icicle/internal/load"
	"icicle/internal/obs"
	"icicle/internal/serve"
	"icicle/internal/store"
)

func TestLoadSmoke(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	srv := mustServe(t, serve.Config{Store: st, Registry: reg, QueueWorkers: 4})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	specs := []serve.JobSpec{
		{Core: "rocket", Kernel: "vvadd"},
		{Core: "rocket", Kernel: "multiply"},
	}
	// Warm the memo so the ladder measures service behavior, not two
	// cold simulations dominating the first step.
	submitAndWait(t, ts.URL, serve.SubmitRequest{Client: "warmup", Jobs: specs})

	tgt, err := load.NewHTTPTarget(ts.URL, specs, 64)
	if err != nil {
		t.Fatal(err)
	}
	slos, err := load.ParseSLOs("p99<2s")
	if err != nil {
		t.Fatal(err)
	}
	steps := []load.Step{{Rate: 40}, {Rate: 80}, {Rate: 160}}
	rep, err := load.RunLadder(tgt, load.Options{
		Mode:        load.Open,
		Pacing:      load.Poisson,
		Duration:    500 * time.Millisecond,
		MaxInFlight: 64,
		Seed:        1,
		Profiles: []load.Profile{
			{Client: "interactive", Priority: 2, Weight: 2, Share: 0.5},
			{Client: "batch", Priority: 0, Weight: 1, Share: 0.5},
		},
		SLOs: slos,
	}, steps, load.HTTPScraper(ts.URL+"/metrics"))
	if err != nil {
		t.Fatal(err)
	}

	if len(rep.Steps) != len(steps) {
		t.Fatalf("want %d ladder steps, got %d", len(steps), len(rep.Steps))
	}
	for i, s := range rep.Steps {
		if s.Dropped != 0 {
			t.Errorf("step %d: %d dropped samples (must be 0)", i, s.Dropped)
		}
		if s.Completed == 0 {
			t.Errorf("step %d: nothing completed", i)
		}
		if s.Errors != 0 {
			t.Errorf("step %d: %d request errors", i, s.Errors)
		}
		q := s.Latency
		if !(q.P50 <= q.P95 && q.P95 <= q.P99 && q.P99 <= q.P999 && q.P999 <= q.Max) {
			t.Errorf("step %d: quantiles not monotone: %+v", i, q)
		}
		if q.P50 <= 0 || q.Max <= 0 {
			t.Errorf("step %d: empty latency distribution: %+v", i, q)
		}
		// SLO fields must all be populated per step.
		if len(s.SLOs) != 1 {
			t.Fatalf("step %d: want 1 SLO verdict, got %d", i, len(s.SLOs))
		}
		v := s.SLOs[0]
		if v.Spec == "" || v.Quantile != 0.99 || v.BoundSec != 2 || v.ActualSec <= 0 {
			t.Errorf("step %d: SLO verdict not populated: %+v", i, v)
		}
		if v.BudgetFraction <= 0 || v.BurnRate < 0 {
			t.Errorf("step %d: SLO budget arithmetic missing: %+v", i, v)
		}
		// Per-profile breakdown covers both synthetic clients.
		if len(s.PerProfile) != 2 {
			t.Errorf("step %d: want 2 per-profile entries, got %d", i, len(s.PerProfile))
		}
		// Server-side columns scraped for this step's window.
		if s.Server == nil {
			t.Fatalf("step %d: no server stats scraped", i)
		}
		if s.Server.JobsCompleted == 0 {
			t.Errorf("step %d: server completed delta is 0", i)
		}
		if s.Server.QueueWaitCount == 0 {
			t.Errorf("step %d: server queue-wait histogram empty", i)
		}
		if len(s.Server.PerClass) != 2 {
			t.Errorf("step %d: want queue-wait for 2 priority classes, got %+v", i, s.Server.PerClass)
		}
		if s.Server.HitRate <= 0.9 {
			t.Errorf("step %d: warmed ladder should be cache-served, hit rate %.2f", i, s.Server.HitRate)
		}
		foundJobs := false
		for _, ep := range s.Server.PerEndpoint {
			if ep.Endpoint == "/jobs" && ep.Count > 0 {
				foundJobs = true
			}
		}
		if !foundJobs {
			t.Errorf("step %d: no /jobs endpoint duration scraped: %+v", i, s.Server.PerEndpoint)
		}
	}

	var txt strings.Builder
	rep.WriteText(&txt)
	out := txt.String()
	if !strings.Contains(out, "p99 ms") || !strings.Contains(out, "SLO") {
		t.Fatalf("text report incomplete:\n%s", out)
	}
	t.Logf("\n%s", out)
}
