GO ?= go
FUZZTIME ?= 30s

.PHONY: all build test race bench bench-smoke bench-diff alloc-smoke obs-smoke sample-smoke sample-par-smoke superblock-smoke detail-smoke serve-smoke load-smoke check fuzz-smoke fmt vet scratch-guard ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Steady-state cycle-loop benchmarks with allocation reporting: both
# cores should show 0 allocs/op (the arena/reset invariant).
bench:
	$(GO) test -run='^$$' -bench=CycleLoop -benchmem .

# One iteration of the sweep benchmark: exercises the serial and parallel
# runner paths end to end without benchmarking-grade runtimes.
bench-smoke:
	$(GO) test -run='^$$' -bench=Sweep -benchtime=1x .

# Benchmark snapshot regression gate: diff the time-per-work metrics the
# two newest BENCH_<n>.json snapshots share and flag slowdowns beyond 10%
# (see internal/benchdiff). Non-blocking in ci — snapshots measure
# different things across PRs, so a disjoint pair is informational.
bench-diff:
	$(GO) run ./cmd/icicle-benchdiff -dir . -tol 0.10

# Allocation-regression smoke: fails if a warmed core's Reset+RunCycles
# exceeds the checked-in allocs-per-run budget (see alloc_test.go),
# including the event-driven stall-skip path on both detailed cores.
alloc-smoke:
	$(GO) test -run='SteadyStateAllocs|StallSkipAllocs' -count=1 .

# Observability smoke: runs a traced sweep plus a sampled temporal-TMA
# capture and validates the Chrome trace-event JSON shape and the
# Prometheus text exposition (see obs_smoke_test.go).
obs-smoke:
	$(GO) test -run=ObsSmoke -count=1 .

# Sampled-simulation smoke: a sampled run per core at the default
# policy, checking report invariants, determinism, and loose agreement
# with full detail (see sample_smoke_test.go; tight accuracy bounds are
# in internal/check, the speedup claim in BenchmarkSampledVsFull).
sample-smoke:
	$(GO) test -run=SampleSmoke -count=1 .

# Two-phase sampled engine smoke: the golden serial-vs-parallel
# bit-identity table plus the pooled-core interleave test
# (sample_par_smoke_test.go), run under the race detector so the window
# fan-out is exercised with checking on.
sample-par-smoke:
	$(GO) test -race -run=SamplePar -count=1 .

# Superblock threaded-code engine smoke: kernel-level differential runs
# (superblock on vs off, bit-identical state + memory) and sampled-report
# engine-independence under the race detector, plus the sampled
# alloc-budget pin, which the epoch-restamp invalidation path must not
# regress (see superblock_smoke_test.go and internal/isa/superblock.go).
superblock-smoke:
	$(GO) test -race -run=SuperblockSmoke -count=1 .
	$(GO) test -run='SampledRunAllocs|SuperblockRunAllocs' -count=1 .

# Event-driven detailed-core smoke: skip-vs-step golden equivalence on
# kernel differentials for Rocket and every BOOM size, Reset-reuse
# identity with the skip on, and a sampled report compared deep-equal
# across the two cycle loops, run under the race detector (see
# detail_smoke_test.go and DESIGN.md "Event-driven detailed cycle loops").
detail-smoke:
	$(GO) test -race -run=DetailSmoke -count=1 .

# Sweep-service smoke: the icicle-serve end-to-end contract under the
# race detector — HTTP results byte-identical to the in-process runner, a
# second server answering a persisted sweep with zero simulations, and
# corrupted store blobs quarantined and recomputed (serve_smoke_test.go),
# plus the serve/store package suites (queueing fairness, sharding,
# content-addressed store corruption/eviction/recovery).
serve-smoke:
	$(GO) test -race -run=ServeSmoke -count=1 .
	$(GO) test -race ./internal/serve/ ./internal/store/ -count=1

# Load-harness smoke: icicle-load's library drives a live serve.Server
# open loop through the real HTTP stack under the race detector — a
# 3-rung rate ladder in wait mode with coordinated-omission-corrected
# quantiles, per-priority-class queue-wait scraped from the server's own
# /metrics, populated SLO verdicts, and zero dropped samples
# (load_smoke_test.go), plus the internal/load package suite (CO
# correction, steady-state detection, SLO burn-rate arithmetic).
load-smoke:
	$(GO) test -race -run=LoadSmoke -count=1 .
	$(GO) test -race ./internal/load/ -count=1

# Differential oracle + metamorphic invariants + corpus replay
# (internal/check; see DESIGN.md "Verification").
check:
	$(GO) test ./internal/check/ -count=1

# Run every native fuzz target for $(FUZZTIME) each. Go allows one -fuzz
# target per invocation, hence the loop. A crasher is written to
# internal/check/testdata/fuzz/<Target>/ and replays in plain `go test`.
fuzz-smoke:
	for target in FuzzAssemble FuzzDecodeEncodeRoundtrip FuzzDifferential FuzzSuperblockDifferential FuzzStallSkipDifferential; do \
		$(GO) test ./internal/check/ -run='^$$' -fuzz=$$target -fuzztime=$(FUZZTIME) || exit 1; \
	done

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# No scratch/review litter may be tracked: fail if any path matches the
# deny patterns (temporary review dirs, editor droppings, stray logs).
scratch-guard:
	@out=$$(git ls-files | grep -E '(^|/)(zz_[^/]*|scratch[^/]*|.*\.tmp|.*\.orig|.*\.rej|.*~)$$' || true); \
	if [ -n "$$out" ]; then \
		echo "scratch files tracked in git:"; echo "$$out"; exit 1; \
	fi

ci: fmt vet scratch-guard build race bench-smoke alloc-smoke obs-smoke sample-smoke sample-par-smoke superblock-smoke detail-smoke serve-smoke load-smoke check fuzz-smoke
	-$(MAKE) bench-diff
