GO ?= go

.PHONY: all build test race bench-smoke fmt vet ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of the sweep benchmark: exercises the serial and parallel
# runner paths end to end without benchmarking-grade runtimes.
bench-smoke:
	$(GO) test -run='^$$' -bench=Sweep -benchtime=1x .

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

ci: fmt vet build race bench-smoke
