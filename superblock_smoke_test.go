// Superblock engine smoke: differential runs of real kernels through the
// superblock threaded-code engine against the plain Step loop, asserting
// bit-identical architectural results, plus end-to-end sampled runs with
// the engine toggled to pin that every report byte is engine-independent.
// Randomized self-modifying coverage lives in
// internal/check.FuzzSuperblockDifferential; the engine itself is in
// internal/isa/superblock.go. This is what `make superblock-smoke` (part
// of `make ci`) runs, under the race detector.
package icicle_test

import (
	"testing"

	"icicle/internal/isa"
	"icicle/internal/kernel"
	"icicle/internal/mem"
	"icicle/internal/perf"
	"icicle/internal/rocket"
	"icicle/internal/sample"
)

// TestSuperblockSmokeKernels runs each kernel to completion on both
// functional engines and compares every architectural observable:
// registers, PC, instruction count, exit status, and the full memory
// image. The superblock run must also actually exercise the block cache
// (hits and translations), or the smoke would pass vacuously with the
// engine disabled.
func TestSuperblockSmokeKernels(t *testing.T) {
	const budget = 50_000_000
	for _, name := range []string{"towers", "qsort", "vvadd", "spmv", "fencemix"} {
		t.Run(name, func(t *testing.T) {
			k, err := kernel.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := k.Program()
			if err != nil {
				t.Fatal(err)
			}
			run := func(on bool) (*isa.CPU, *mem.Sparse) {
				m := mem.NewSparse()
				prog.LoadInto(m)
				c := isa.NewCPU(m, prog.Entry)
				c.SetSuperblocks(on)
				if _, err := c.Run(budget); err != nil {
					t.Fatalf("superblocks=%v: %v", on, err)
				}
				return c, m
			}
			sb, sbMem := run(true)
			ref, refMem := run(false)
			if !sb.Halted {
				t.Fatal("kernel did not halt within budget")
			}
			if sb.X != ref.X || sb.PC != ref.PC || sb.InstRet != ref.InstRet ||
				sb.Halted != ref.Halted || sb.ExitCode != ref.ExitCode {
				t.Errorf("architectural state diverges: pc %#x/%#x instret %d/%d exit %d/%d",
					sb.PC, ref.PC, sb.InstRet, ref.InstRet, sb.ExitCode, ref.ExitCode)
			}
			if sbMem.Checksum() != refMem.Checksum() {
				t.Error("memory image diverges")
			}
			st := sb.SuperblockStats()
			if st.Translations == 0 || st.Hits == 0 {
				t.Errorf("superblock cache unused (translations %d, hits %d)", st.Translations, st.Hits)
			}
		})
	}
}

// TestSuperblockSmokeSampledIdentical runs the same sampled simulation
// with the superblock engine on and off and requires the reports to be
// bit-identical: the engine is a pure speed optimization, invisible to
// every downstream consumer (which is also why it does not appear in the
// simulation memo key — see internal/sim).
func TestSuperblockSmokeSampledIdentical(t *testing.T) {
	defer func(old bool) { isa.DefaultSuperblocks = old }(isa.DefaultSuperblocks)
	k, err := kernel.ByName("towers")
	if err != nil {
		t.Fatal(err)
	}
	p := sample.Default()

	isa.DefaultSuperblocks = true
	resOn, repOn, bOn, err := perf.SampleRocket(rocket.DefaultConfig(), k, p)
	if err != nil {
		t.Fatal(err)
	}
	isa.DefaultSuperblocks = false
	resOff, repOff, bOff, err := perf.SampleRocket(rocket.DefaultConfig(), k, p)
	if err != nil {
		t.Fatal(err)
	}

	sameSampleReport(t, "towers", repOn, repOff)
	if repOn.EstCycles != repOff.EstCycles || repOn.CPI != repOff.CPI {
		t.Errorf("estimate diverges: cycles %d/%d CPI %v/%v",
			repOn.EstCycles, repOff.EstCycles, repOn.CPI, repOff.CPI)
	}
	if bOn != bOff {
		t.Errorf("TMA breakdown diverges across engines:\n on: %v\noff: %v", bOn, bOff)
	}
	for name, on := range resOn.Tally {
		if off := resOff.Tally[name]; on != off {
			t.Errorf("event %s diverges: %d vs %d", name, on, off)
		}
	}
}
