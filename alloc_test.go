// Allocation-regression smoke tests: the arena/reset work makes a warmed
// core's cycle loop allocation-free, and these tests pin that as a
// checked-in budget so a regression (a stray append past capacity, a
// map rebuilt per run, a uop escaping to the heap) fails `make ci`
// rather than silently eroding sweep throughput.
package icicle_test

import (
	"testing"

	"icicle/internal/boom"
	"icicle/internal/isa"
	"icicle/internal/kernel"
	"icicle/internal/mem"
	"icicle/internal/obs"
	"icicle/internal/perf"
	"icicle/internal/rocket"
	"icicle/internal/sample"
)

// Steady-state allocation budgets, in allocs per full simulated run
// (Reset + RunCycles) on an already-warmed core. Zero is the invariant
// documented in DESIGN.md; raise these only with a written justification.
const (
	rocketRunAllocBudget = 0
	boomRunAllocBudget   = 0

	// A warmed serial sampled run allocates only for the report it
	// returns (Report, window stats, CI scratch, tally maps) — the
	// controller's per-window diff buffers are one pre-sized scratch
	// slab reused across windows, so the budget is flat in the window
	// count. Measured 93 on towers/default-policy; the headroom covers
	// map-growth jitter only, not a per-window regression.
	sampledRunAllocBudget = 100

	// A warmed superblock functional run allocates nothing: blocks are
	// translated on the first pass, and Reset's decode flush only bumps
	// the generation counter — stale blocks re-verify their cached
	// words and restamp in place rather than re-translating (see
	// internal/isa/superblock.go).
	superblockRunAllocBudget = 0
)

func TestRocketSteadyStateAllocs(t *testing.T) {
	k, err := kernel.ByName("towers")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := k.Program()
	if err != nil {
		t.Fatal(err)
	}
	c := rocket.New(rocket.DefaultConfig(), prog)
	// AllocsPerRun performs its own warm-up call before measuring, which
	// doubles as the capacity-growing first run.
	allocs := testing.AllocsPerRun(3, func() {
		c.Reset(prog)
		if err := c.RunCycles(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > rocketRunAllocBudget {
		t.Errorf("rocket steady-state run allocates %.1f objects, budget %d",
			allocs, rocketRunAllocBudget)
	}
}

// TestTelemetryKeepsCycleLoopAllocFree pins the obs invariant: the cores'
// periodic telemetry flush must cost zero allocations per run both when a
// registry-backed handle is installed and when telemetry is disabled (nil
// handle — a single pointer test per flush check).
func TestTelemetryKeepsCycleLoopAllocFree(t *testing.T) {
	k, err := kernel.ByName("towers")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := k.Program()
	if err != nil {
		t.Fatal(err)
	}
	run := func(t *testing.T, rc *rocket.Core, bc *boom.Core) {
		t.Helper()
		if allocs := testing.AllocsPerRun(3, func() {
			rc.Reset(prog)
			if err := rc.RunCycles(); err != nil {
				t.Fatal(err)
			}
		}); allocs > rocketRunAllocBudget {
			t.Errorf("rocket run allocates %.1f objects, budget %d", allocs, rocketRunAllocBudget)
		}
		if allocs := testing.AllocsPerRun(3, func() {
			bc.Reset(prog)
			if err := bc.RunCycles(); err != nil {
				t.Fatal(err)
			}
		}); allocs > boomRunAllocBudget {
			t.Errorf("boom run allocates %.1f objects, budget %d", allocs, boomRunAllocBudget)
		}
	}
	rc := rocket.New(rocket.DefaultConfig(), prog)
	bc, err := boom.New(boom.NewConfig(boom.Large), prog)
	if err != nil {
		t.Fatal(err)
	}
	t.Run("metrics-enabled", func(t *testing.T) {
		reg := obs.NewRegistry()
		rc.SetTelemetry(obs.CoreTelemetryIn(reg, "rocket"))
		bc.SetTelemetry(obs.CoreTelemetryIn(reg, "boom"))
		run(t, rc, bc)
		if reg.Counter("icicle_rocket_cycles_simulated_total", "").Value() == 0 {
			t.Error("registry-backed telemetry saw no rocket cycles")
		}
		if reg.Counter("icicle_boom_cycles_simulated_total", "").Value() == 0 {
			t.Error("registry-backed telemetry saw no boom cycles")
		}
	})
	t.Run("handle-nil", func(t *testing.T) {
		rc.SetTelemetry(nil)
		bc.SetTelemetry(nil)
		run(t, rc, bc)
	})
}

// TestSampledRunAllocs pins the sampling controller's scratch-buffer
// reuse: tally diffs across windows share one pre-sized slab, so a
// warmed core's sampled run allocates a fixed number of objects no
// matter how many windows the policy schedules.
func TestSampledRunAllocs(t *testing.T) {
	k, err := kernel.ByName("towers")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := k.Program()
	if err != nil {
		t.Fatal(err)
	}
	c := rocket.New(rocket.DefaultConfig(), prog)
	p := sample.Default()
	allocs := testing.AllocsPerRun(3, func() {
		if _, _, _, err := perf.SampleRocketOn(c, k, p, sample.Options{}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > sampledRunAllocBudget {
		t.Errorf("sampled run allocates %.1f objects, budget %d",
			allocs, sampledRunAllocBudget)
	}
}

// TestSuperblockRunAllocs pins the functional engine's steady state:
// once a program's superblocks are translated, re-running it end to end
// (memory reset + reload, CPU reset, full execution) stays on the
// epoch-restamp path and allocates zero objects.
func TestSuperblockRunAllocs(t *testing.T) {
	k, err := kernel.ByName("towers")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := k.Program()
	if err != nil {
		t.Fatal(err)
	}
	m := mem.NewSparse()
	prog.LoadInto(m)
	c := isa.NewCPU(m, prog.Entry)
	c.SetSuperblocks(true)
	allocs := testing.AllocsPerRun(3, func() {
		m.Reset()
		prog.LoadInto(m)
		c.Reset(prog.Entry)
		if _, err := c.Run(50_000_000); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > superblockRunAllocBudget {
		t.Errorf("warmed superblock run allocates %.1f objects, budget %d",
			allocs, superblockRunAllocBudget)
	}
	if st := c.SuperblockStats(); st.Hits == 0 {
		t.Error("superblock cache unused; the pin is vacuous")
	}
}

// TestStallSkipAllocs pins the event-driven skip path: on a memory-bound
// kernel where quiescent stretches dominate, a warmed run must stay at
// zero allocations whether stall skipping is on (the quiescence predicate
// and bulk tallies allocate nothing) or off, on both detailed cores. The
// skip-on legs also assert the skip actually engaged, so the pin cannot
// go vacuous if a future change quietly disables skipping.
func TestStallSkipAllocs(t *testing.T) {
	k, err := kernel.ByName("spmv")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := k.Program()
	if err != nil {
		t.Fatal(err)
	}
	rc := rocket.New(rocket.DefaultConfig(), prog)
	bc, err := boom.New(boom.NewConfig(boom.Large), prog)
	if err != nil {
		t.Fatal(err)
	}
	for _, skip := range []bool{true, false} {
		rc.SetStallSkip(skip)
		if allocs := testing.AllocsPerRun(3, func() {
			rc.Reset(prog)
			if err := rc.RunCycles(); err != nil {
				t.Fatal(err)
			}
		}); allocs > rocketRunAllocBudget {
			t.Errorf("rocket run (skip=%v) allocates %.1f objects, budget %d",
				skip, allocs, rocketRunAllocBudget)
		}
		if skipped, _ := rc.SkipStats(); skip && skipped == 0 {
			t.Error("rocket skip path never engaged on spmv; the pin is vacuous")
		}
		bc.SetStallSkip(skip)
		if allocs := testing.AllocsPerRun(3, func() {
			bc.Reset(prog)
			if err := bc.RunCycles(); err != nil {
				t.Fatal(err)
			}
		}); allocs > boomRunAllocBudget {
			t.Errorf("boom run (skip=%v) allocates %.1f objects, budget %d",
				skip, allocs, boomRunAllocBudget)
		}
		if skipped, _ := bc.SkipStats(); skip && skipped == 0 {
			t.Error("boom skip path never engaged on spmv; the pin is vacuous")
		}
	}
}

func TestBoomSteadyStateAllocs(t *testing.T) {
	k, err := kernel.ByName("towers")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := k.Program()
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range []boom.Size{boom.Small, boom.Large, boom.Mega} {
		c, err := boom.New(boom.NewConfig(size), prog)
		if err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(3, func() {
			c.Reset(prog)
			if err := c.RunCycles(); err != nil {
				t.Fatal(err)
			}
		})
		if allocs > boomRunAllocBudget {
			t.Errorf("%v boom steady-state run allocates %.1f objects, budget %d",
				size, allocs, boomRunAllocBudget)
		}
	}
}
