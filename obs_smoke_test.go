// Observability smoke: runs a small sweep with metrics and span tracing
// attached plus a sampled temporal-TMA capture, then validates the two
// export formats against what their consumers require — Perfetto /
// about://tracing for the Chrome trace-event JSON, and any Prometheus
// scraper for the text exposition. This is what `make obs-smoke` (part of
// `make ci`) runs.
package icicle_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"icicle/internal/kernel"
	"icicle/internal/obs"
	"icicle/internal/rocket"
	"icicle/internal/sim"
	"icicle/internal/trace"
)

func TestObsSmokeTraceAndMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.NewTracer()
	r := sim.New(sim.WithMetricsRegistry(reg), sim.WithTracer(tr), sim.WithWorkers(2))

	var jobs []sim.Job
	for _, name := range []string{"towers", "vvadd"} {
		k, err := kernel.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, sim.RocketJob(rocket.DefaultConfig(), k))
	}
	jobs = append(jobs, jobs[0]) // a guaranteed cache hit
	for i, res := range r.Run(jobs) {
		if res.Err != nil {
			t.Fatalf("job %d: %v", i, res.Err)
		}
	}

	// Temporal TMA: a sampled trace of one kernel bridged onto the same
	// timeline as counter tracks.
	k, err := kernel.ByName("towers")
	if err != nil {
		t.Fatal(err)
	}
	c := rocket.New(rocket.DefaultConfig(), k.MustProgram())
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf, trace.MustBundle(rocket.Events,
		rocket.EvFetchBubbles, rocket.EvRecovering))
	if err != nil {
		t.Fatal(err)
	}
	sw, err := trace.NewSamplingWriter(w, 64, 640)
	if err != nil {
		t.Fatal(err)
	}
	c.SetCycleHook(sw.WriteCycle)
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if err := sw.Flush(); err != nil {
		t.Fatal(err)
	}
	if n, err := trace.CounterTracksFromStream(tr, &buf, 0, 1e-3); err != nil {
		t.Fatal(err)
	} else if n == 0 {
		t.Fatal("sampled capture produced no counter samples")
	}

	t.Run("chrome-trace-shape", func(t *testing.T) {
		var out bytes.Buffer
		if err := tr.WriteJSON(&out); err != nil {
			t.Fatal(err)
		}
		var file struct {
			DisplayTimeUnit string           `json:"displayTimeUnit"`
			TraceEvents     []map[string]any `json:"traceEvents"`
		}
		if err := json.Unmarshal(out.Bytes(), &file); err != nil {
			t.Fatalf("trace output is not valid JSON: %v", err)
		}
		if file.DisplayTimeUnit == "" {
			t.Error("missing displayTimeUnit")
		}
		jobSpans, tmaTracks := 0, map[string]bool{}
		for _, ev := range file.TraceEvents {
			for _, field := range []string{"ph", "pid", "tid", "ts", "name"} {
				if _, ok := ev[field]; !ok {
					t.Fatalf("event %v missing required field %q", ev, field)
				}
			}
			name, _ := ev["name"].(string)
			switch ev["ph"] {
			case "X":
				if strings.HasPrefix(name, "job ") {
					jobSpans++
				}
			case "C":
				if strings.HasPrefix(name, "tma:") {
					tmaTracks[name] = true
				}
			}
		}
		if jobSpans < len(jobs) {
			t.Errorf("%d job spans for %d jobs (want ≥1 per job)", jobSpans, len(jobs))
		}
		if len(tmaTracks) == 0 {
			t.Error("no TMA counter tracks in the trace")
		}
	})

	t.Run("prometheus-exposition", func(t *testing.T) {
		var out bytes.Buffer
		if err := reg.WritePrometheus(&out); err != nil {
			t.Fatal(err)
		}
		text := out.String()
		for _, want := range []string{
			"# TYPE icicle_sim_jobs_total counter",
			"icicle_sim_jobs_total 3",
			"icicle_sim_cache_hits_total 1",
			"# TYPE icicle_sim_job_latency_seconds histogram",
			`icicle_sim_job_latency_seconds_bucket{le="+Inf"} 2`,
			"icicle_sim_job_latency_seconds_count 2",
			"icicle_rocket_cycles_simulated_total",
		} {
			if !strings.Contains(text, want) {
				t.Errorf("exposition missing %q:\n%s", want, text)
			}
		}
		// Every HELP/TYPE pair must precede its samples and every
		// histogram must close with +Inf == count (scraper requirements).
		if strings.Count(text, `le="+Inf"`) == 0 {
			t.Error("no cumulative +Inf bucket")
		}
	})
}
