// Sampled-simulation smoke: one sampled run per core model at the
// default policy, validating the report's structural invariants
// (instruction conservation, coverage, confidence-interval shape),
// bit-exact determinism across repeated runs, and loose agreement with
// the full-detail run. The tight accuracy bounds live in
// internal/check; this is what `make sample-smoke` (part of `make ci`)
// runs.
package icicle_test

import (
	"testing"

	"icicle/internal/boom"
	"icicle/internal/kernel"
	"icicle/internal/perf"
	"icicle/internal/rocket"
	"icicle/internal/sample"
)

// checkSampleReport asserts the invariants every sampled run must hold
// regardless of policy or workload.
func checkSampleReport(t *testing.T, who string, rep *sample.Report) {
	t.Helper()
	if rep == nil {
		t.Fatalf("%s: nil report", who)
	}
	if !rep.Halted {
		t.Errorf("%s: program did not halt", who)
	}
	if rep.Exact {
		t.Errorf("%s: run degenerated to full detail (kernel too short for the policy)", who)
	}
	if rep.TotalInsts == 0 {
		t.Fatalf("%s: zero instructions", who)
	}
	// Conservation: every instruction ran functionally or in a window,
	// never both (putback-abandon), so the two never exceed the total.
	if rep.FFInsts+rep.DetailedInsts > rep.TotalInsts {
		t.Errorf("%s: FF %d + detailed %d > total %d",
			who, rep.FFInsts, rep.DetailedInsts, rep.TotalInsts)
	}
	if len(rep.Windows) == 0 {
		t.Errorf("%s: no detailed windows", who)
	}
	if rep.Coverage <= 0 || rep.Coverage >= 1 {
		t.Errorf("%s: coverage %.4f outside (0,1)", who, rep.Coverage)
	}
	if !rep.CPICI.Contains(rep.CPI) {
		t.Errorf("%s: CPI %.4f outside its own CI [%.4f,%.4f]",
			who, rep.CPI, rep.CPICI.Lo, rep.CPICI.Hi)
	}
	shares := map[string]float64{
		"Retiring": rep.Breakdown.Retiring,
		"BadSpec":  rep.Breakdown.BadSpec,
		"Frontend": rep.Breakdown.Frontend,
		"Backend":  rep.Breakdown.Backend,
	}
	for name, v := range shares {
		iv, ok := rep.CategoryCI[name]
		if !ok {
			t.Errorf("%s: CategoryCI missing %s", who, name)
			continue
		}
		if !iv.Contains(v) {
			t.Errorf("%s: %s share %.4f outside CI [%.4f,%.4f]",
				who, name, v, iv.Lo, iv.Hi)
		}
	}
}

// sameSampleReport asserts two reports from identical runs are
// bit-identical — sampled simulation must be deterministic.
func sameSampleReport(t *testing.T, who string, a, b *sample.Report) {
	t.Helper()
	if a.EstCycles != b.EstCycles || a.TotalInsts != b.TotalInsts ||
		a.DetailedCycles != b.DetailedCycles || a.DetailedInsts != b.DetailedInsts ||
		a.FFInsts != b.FFInsts || len(a.Windows) != len(b.Windows) {
		t.Fatalf("%s: repeated sampled run diverged: est %d/%d insts %d/%d windows %d/%d",
			who, a.EstCycles, b.EstCycles, a.TotalInsts, b.TotalInsts,
			len(a.Windows), len(b.Windows))
	}
	for i := range a.Tally {
		if a.Tally[i] != b.Tally[i] {
			t.Fatalf("%s: event tally %d diverged: %d vs %d", who, i, a.Tally[i], b.Tally[i])
		}
	}
}

func TestSampleSmoke(t *testing.T) {
	k, err := kernel.ByName("towers")
	if err != nil {
		t.Fatal(err)
	}
	p := sample.Default()

	// Rocket: invariants, determinism, and loose full-detail agreement.
	_, rep, sb, err := perf.SampleRocket(rocket.DefaultConfig(), k, p)
	if err != nil {
		t.Fatalf("rocket sampled: %v", err)
	}
	checkSampleReport(t, "rocket", rep)
	_, rep2, _, err := perf.SampleRocket(rocket.DefaultConfig(), k, p)
	if err != nil {
		t.Fatalf("rocket sampled rerun: %v", err)
	}
	sameSampleReport(t, "rocket", rep, rep2)

	full, fb, err := perf.RunRocket(rocket.DefaultConfig(), k)
	if err != nil {
		t.Fatalf("rocket full: %v", err)
	}
	if rep.TotalInsts != full.Insts {
		t.Errorf("rocket: sampled retired %d insts, full %d", rep.TotalInsts, full.Insts)
	}
	cycErr := float64(rep.EstCycles) - float64(full.Cycles)
	if cycErr < 0 {
		cycErr = -cycErr
	}
	if cycErr/float64(full.Cycles) > 0.10 {
		t.Errorf("rocket: cycle estimate %d vs %d (>10%% off)", rep.EstCycles, full.Cycles)
	}
	for _, d := range []float64{
		sb.Retiring - fb.Retiring, sb.BadSpec - fb.BadSpec,
		sb.Frontend - fb.Frontend, sb.Backend - fb.Backend,
	} {
		if d > 0.05 || d < -0.05 {
			t.Errorf("rocket: category share off by %.2fpp (smoke limit 5pp)", 100*d)
		}
	}

	// BOOM: invariants and determinism on the out-of-order model.
	cfg := boom.NewConfig(boom.Large)
	_, brep, _, err := perf.SampleBoom(cfg, k, p)
	if err != nil {
		t.Fatalf("boom sampled: %v", err)
	}
	checkSampleReport(t, cfg.Name, brep)
	_, brep2, _, err := perf.SampleBoom(cfg, k, p)
	if err != nil {
		t.Fatalf("boom sampled rerun: %v", err)
	}
	sameSampleReport(t, cfg.Name, brep, brep2)
}
