// Two-phase sampled-engine smoke: the golden serial-vs-parallel
// equivalence table. For every (config, program, policy) row the plan
// engine runs once with one window worker (the serial reference) and
// once with several; the two reports must be bit-identical — every
// float, every window, every tally — because the engine's reduce is
// schedule-ordered and each window result is a pure function of its
// spec. `make sample-par-smoke` (part of `make ci`) runs this under the
// race detector so the worker fan-out is exercised with checking on.
package icicle_test

import (
	"fmt"
	"reflect"
	"testing"

	"icicle/internal/asm"
	"icicle/internal/boom"
	"icicle/internal/kernel"
	"icicle/internal/perf"
	"icicle/internal/rocket"
	"icicle/internal/sample"
)

// parGoldenRow is one golden-table entry: a core config, a program, and
// a sampling policy the serial and parallel runs must agree on exactly.
type parGoldenRow struct {
	core   string // "rocket" or a BOOM size name
	boom   boom.Size
	kernel string
	policy sample.Policy
}

func parGoldenTable() []parGoldenRow {
	def := sample.Default()
	dense := sample.Policy{Window: 1024, Period: 24576, Warmup: 8192}
	return []parGoldenRow{
		{core: "rocket", kernel: "towers", policy: def},
		{core: "rocket", kernel: "mm", policy: dense},
		{core: "LargeBOOM", boom: boom.Large, kernel: "towers", policy: def},
		{core: "SmallBOOM", boom: boom.Small, kernel: "bfs", policy: def},
	}
}

func TestSampleParGoldenEquivalence(t *testing.T) {
	const workers = 4
	for _, row := range parGoldenTable() {
		row := row
		name := fmt.Sprintf("%s/%s/%s", row.core, row.kernel, row.policy)
		t.Run(name, func(t *testing.T) {
			k, err := kernel.ByName(row.kernel)
			if err != nil {
				t.Fatal(err)
			}
			runPar := func(w int) *sample.Report {
				t.Helper()
				var rep *sample.Report
				if row.core == "rocket" {
					_, rep, _, err = perf.SampleRocketPar(rocket.DefaultConfig(), k, row.policy, sample.Options{}, w)
				} else {
					_, rep, _, err = perf.SampleBoomPar(boom.NewConfig(row.boom), k, row.policy, sample.Options{}, w)
				}
				if err != nil {
					t.Fatalf("%d workers: %v", w, err)
				}
				return rep
			}
			serial := runPar(1)
			checkSampleReport(t, row.core, serial)
			// The plan engine's conservation is exact: every instruction
			// ran functionally in the producer; the windows re-run a
			// subset in detail.
			if serial.FFInsts+serial.DetailedInsts != serial.TotalInsts {
				t.Errorf("plan engine conservation broken: FF %d + detailed %d != total %d",
					serial.FFInsts, serial.DetailedInsts, serial.TotalInsts)
			}
			par := runPar(workers)
			if !reflect.DeepEqual(serial, par) {
				t.Fatalf("parallel report differs from serial reference:\nserial: est %d windows %d tally %v\npar:    est %d windows %d tally %v",
					serial.EstCycles, len(serial.Windows), serial.Tally,
					par.EstCycles, len(par.Windows), par.Tally)
			}
			// And the parallel run itself is deterministic across repeats.
			if again := runPar(workers); !reflect.DeepEqual(par, again) {
				t.Fatal("repeated parallel run diverged")
			}
		})
	}
}

// TestSampleParInterleavedCores pins the pooled-core contract (the
// "windows are pure functions of their specs" half of the design): one
// shared core alternates between two different programs' windows — the
// way a pooled core hops between jobs — and every result must be
// bit-identical to the same window executed on a core dedicated to its
// program. A state leak across Attach (stale cache line, trained
// predictor entry, leftover memory frame) shows up as a diverging tally.
func TestSampleParInterleavedCores(t *testing.T) {
	p := sample.Default()
	o := sample.Options{Counts: perf.RocketCountsFn()}
	type prep struct {
		prog *kernel.Kernel
		plan *sample.Plan
	}
	var preps []prep
	for _, name := range []string{"towers", "mm"} {
		k, err := kernel.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := perf.PlanFor(k, p, sample.Options{})
		if err != nil {
			t.Fatal(err)
		}
		preps = append(preps, prep{prog: k, plan: plan})
	}

	target := func(c *rocket.Core) sample.Target {
		return sample.Target{Core: c, CPU: c.CPU, Hier: c.Hier, Pred: c.Pred, Mem: c.Memory()}
	}

	// Reference: each program's windows on its own dedicated core, in
	// order, through one Exec.
	want := make([][]sample.WindowResult, len(preps))
	for pi, pr := range preps {
		prog, err := pr.prog.Program()
		if err != nil {
			t.Fatal(err)
		}
		c := rocket.New(rocket.DefaultConfig(), prog)
		ex, err := sample.NewExec(pr.plan, target(c), p.Window)
		if err != nil {
			t.Fatal(err)
		}
		for i := range pr.plan.Specs {
			wr, err := ex.Window(i, &o)
			if err != nil {
				t.Fatal(err)
			}
			want[pi] = append(want[pi], wr)
		}
	}

	// Interleaved: one shared core ping-pongs between the programs,
	// resetting and rebuilding its Exec on every hop exactly like the
	// sim pool does when a core is handed to a different job.
	shared := rocket.New(rocket.DefaultConfig(), mustProgram(t, preps[0].prog))
	maxW := len(want[0])
	if len(want[1]) > maxW {
		maxW = len(want[1])
	}
	for i := 0; i < maxW; i++ {
		for pi, pr := range preps {
			if i >= len(want[pi]) {
				continue
			}
			shared.Reset(mustProgram(t, pr.prog))
			ex, err := sample.NewExec(pr.plan, target(shared), p.Window)
			if err != nil {
				t.Fatal(err)
			}
			got, err := ex.Window(i, &o)
			if err != nil {
				t.Fatalf("%s window %d on shared core: %v", pr.prog.Name, i, err)
			}
			if !reflect.DeepEqual(got, want[pi][i]) {
				t.Errorf("%s window %d diverged on the shared core: cycles %d vs %d, insts %d vs %d",
					pr.prog.Name, i, got.Cycles, want[pi][i].Cycles, got.Insts, want[pi][i].Insts)
			}
		}
	}
}

func mustProgram(t *testing.T, k *kernel.Kernel) *asm.Program {
	t.Helper()
	prog, err := k.Program()
	if err != nil {
		t.Fatal(err)
	}
	return prog
}
