// Command icicle-perf is the perf-like front end of the Icicle stack: it
// runs a workload kernel on a simulated Rocket or BOOM core with the PMU
// programmed through the CSR interface, then prints the hierarchical TMA
// breakdown (the tma_tool of the paper's artifact).
//
// Usage:
//
//	icicle-perf -core boom -size large -kernel coremark
//	icicle-perf -core rocket -kernel qsort -counters distributed
//	icicle-perf -list
package main

import (
	"flag"
	"fmt"
	"os"

	"icicle/internal/boom"
	"icicle/internal/core"
	"icicle/internal/isa"
	"icicle/internal/kernel"
	"icicle/internal/obs"
	"icicle/internal/perf"
	"icicle/internal/pmu"
	"icicle/internal/rocket"
	"icicle/internal/sample"
)

// tele is the shared telemetry wiring; package-level so fatal can flush
// the -metrics-out/-trace-span-out files before exiting.
var tele obs.CLI

func main() {
	var (
		coreKind = flag.String("core", "boom", "core to simulate: rocket or boom")
		size     = flag.String("size", "large", "BOOM size: small, medium, large, mega, giga")
		kname    = flag.String("kernel", "coremark", "workload kernel (see -list)")
		counters = flag.String("counters", "add-wires", "counter architecture: scalar, add-wires, distributed")
		list     = flag.Bool("list", false, "list available kernels and exit")
		events   = flag.Bool("events", false, "also dump raw event totals")
		tlb      = flag.Bool("tlb", false, "enable the third-level TLB extension")
		ras      = flag.Bool("ras", false, "enable BOOM's return-address stack")

		sampleDef    = sample.Default()
		sampleWindow = flag.Uint64("sample-window", 0, "sampled simulation: detailed window length in cycles (0 = full detail)")
		samplePeriod = flag.Uint64("sample-period", sampleDef.Period, "sampled simulation: instructions fast-forwarded between windows")
		sampleWarmup = flag.Int("sample-warmup", sampleDef.Warmup, "sampled simulation: trailing fast-forward instructions that warm caches and predictors")
		samplePar    = flag.Int("sample-par", 0, "sampled simulation: run the two-phase engine with this many window workers (0 = classic serial engine; report is identical for any worker count)")

		noSuperblock = flag.Bool("no-superblock", false, "disable the superblock threaded-code functional engine (debug/ablation; results are bit-identical either way)")
		noSkip       = flag.Bool("no-skip", false, "disable event-driven stall-cycle skipping in the detailed cores (debug/ablation; results are bit-identical either way)")
	)
	tele.AddFlags(flag.CommandLine)
	flag.Parse()
	isa.DefaultSuperblocks = !*noSuperblock
	rocket.DefaultStallSkip = !*noSkip
	boom.DefaultStallSkip = !*noSkip
	if err := tele.Start("icicle-perf"); err != nil {
		fatal(err)
	}
	defer stopTele()

	if *list {
		for _, k := range kernel.All() {
			fmt.Printf("%-18s %-11s %s\n", k.Name, k.Category, k.Description)
		}
		return
	}

	arch, err := pmu.ParseArchitecture(*counters)
	if err != nil {
		fatal(err)
	}
	k, err := kernel.ByName(*kname)
	if err != nil {
		fatal(err)
	}
	sp := sample.Policy{Window: *sampleWindow, Period: *samplePeriod, Warmup: *sampleWarmup}
	if err := sp.Validate(); err != nil {
		fatal(err)
	}

	switch *coreKind {
	case "rocket":
		cfg := rocket.DefaultConfig()
		cfg.PMUArch = arch
		prog, err := k.Program()
		if err != nil {
			fatal(err)
		}
		c := rocket.New(cfg, prog)
		c.SetTelemetry(obs.CoreTelemetryIn(obs.Default(), "rocket"))
		var (
			tally map[string]uint64
			b     core.Breakdown
			rep   *sample.Report
		)
		if sp.Enabled() && *samplePar > 0 {
			cs := make([]*rocket.Core, *samplePar)
			cs[0] = c
			for i := 1; i < len(cs); i++ {
				cs[i] = rocket.New(cfg, prog)
				cs[i].SetTelemetry(obs.CoreTelemetryIn(obs.Default(), "rocket"))
			}
			var res rocket.Result
			res, rep, b, err = perf.SampleRocketParOn(cs, k, sp, sampleOpts(), nil)
			tally = res.Tally
		} else if sp.Enabled() {
			var res rocket.Result
			res, rep, b, err = perf.SampleRocketOn(c, k, sp, sampleOpts())
			tally = res.Tally
		} else {
			var res rocket.Result
			res, b, err = perf.RunRocketOn(c, k)
			tally = res.Tally
		}
		if err != nil {
			fatal(err)
		}
		if *tlb {
			b = withTLB(b, cfg.Hierarchy.TLBHitL2, cfg.Hierarchy.PTWLatency)
		}
		fmt.Printf("%s on Rocket (%v counters)\n", k.Name, arch)
		fmt.Print(b)
		printSampled(rep)
		if *events {
			dump(tally)
		}
	case "boom":
		s, err := boom.ParseSize(*size)
		if err != nil {
			fatal(err)
		}
		cfg := boom.NewConfig(s)
		cfg.PMUArch = arch
		cfg.UseRAS = *ras
		prog, err := k.Program()
		if err != nil {
			fatal(err)
		}
		c, err := boom.New(cfg, prog)
		if err != nil {
			fatal(err)
		}
		c.SetTelemetry(obs.CoreTelemetryIn(obs.Default(), "boom"))
		var (
			tally map[string]uint64
			b     core.Breakdown
			rep   *sample.Report
		)
		if sp.Enabled() && *samplePar > 0 {
			cs := make([]*boom.Core, *samplePar)
			cs[0] = c
			for i := 1; i < len(cs); i++ {
				if cs[i], err = boom.New(cfg, prog); err != nil {
					fatal(err)
				}
				cs[i].SetTelemetry(obs.CoreTelemetryIn(obs.Default(), "boom"))
			}
			var res boom.Result
			res, rep, b, err = perf.SampleBoomParOn(cs, k, sp, sampleOpts(), nil)
			tally = res.Tally
		} else if sp.Enabled() {
			var res boom.Result
			res, rep, b, err = perf.SampleBoomOn(c, k, sp, sampleOpts())
			tally = res.Tally
		} else {
			var res boom.Result
			res, b, err = perf.RunBoomOn(c, k)
			tally = res.Tally
		}
		if err != nil {
			fatal(err)
		}
		if *tlb {
			b = withTLB(b, cfg.Hierarchy.TLBHitL2, cfg.Hierarchy.PTWLatency)
		}
		fmt.Printf("%s on %s (%v counters)\n", k.Name, cfg.Name, arch)
		fmt.Print(b)
		printSampled(rep)
		if *events {
			dump(tally)
		}
	default:
		fatal(fmt.Errorf("unknown core %q (want rocket or boom)", *coreKind))
	}
}

// sampleOpts wires a sampled run into the process-wide telemetry
// registry and (when enabled) the span tracer.
func sampleOpts() sample.Options {
	return sample.Options{
		Telemetry: sample.TelemetryIn(obs.Default()),
		Tracer:    obs.Tracing(),
		Tid:       1,
	}
}

// printSampled appends the estimation summary of a sampled run to the
// breakdown output; a nil report (full-detail run) prints nothing.
func printSampled(rep *sample.Report) {
	if rep == nil {
		return
	}
	if rep.Exact {
		fmt.Printf("sampled (%s): program shorter than one period; run was exact full detail\n", rep.Policy)
		return
	}
	fmt.Printf("sampled (%s): est cycles %d  insts %d  windows %d  coverage %.2f%%\n",
		rep.Policy, rep.EstCycles, rep.TotalInsts, len(rep.Windows), 100*rep.Coverage)
	fmt.Printf("  CPI %.4f  95%% CI [%.4f, %.4f]\n", rep.CPI, rep.CPICI.Lo, rep.CPICI.Hi)
	for _, name := range []string{"Retiring", "BadSpec", "Frontend", "Backend"} {
		if iv, ok := rep.CategoryCI[name]; ok {
			fmt.Printf("  %-8s 95%% CI [%5.1f%%, %5.1f%%]\n", name, 100*iv.Lo, 100*iv.Hi)
		}
	}
}

// withTLB re-evaluates a breakdown with the TLB extension enabled, using
// the hierarchy's translation penalties.
func withTLB(b core.Breakdown, l2hit, ptw int) core.Breakdown {
	cfg := b.Cfg
	cfg.TLB = &core.TLBPenalties{L2TLBHit: l2hit, PTW: ptw}
	return core.MustEvaluate(cfg, b.Counts)
}

func dump(tally map[string]uint64) {
	fmt.Println("raw event totals:")
	for _, k := range sortedKeys(tally) {
		fmt.Printf("  %-24s %d\n", k, tally[k])
	}
}

func sortedKeys(m map[string]uint64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// stopTele flushes the telemetry outputs, reporting (but not failing on)
// write errors.
func stopTele() {
	if err := tele.Stop(); err != nil {
		fmt.Fprintln(os.Stderr, "icicle-perf:", err)
	}
}

func fatal(err error) {
	tele.Stop() // os.Exit skips defers; flush telemetry outputs first
	fmt.Fprintln(os.Stderr, "icicle-perf:", err)
	os.Exit(1)
}
