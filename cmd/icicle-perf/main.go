// Command icicle-perf is the perf-like front end of the Icicle stack: it
// runs a workload kernel on a simulated Rocket or BOOM core with the PMU
// programmed through the CSR interface, then prints the hierarchical TMA
// breakdown (the tma_tool of the paper's artifact).
//
// Usage:
//
//	icicle-perf -core boom -size large -kernel coremark
//	icicle-perf -core rocket -kernel qsort -counters distributed
//	icicle-perf -list
package main

import (
	"flag"
	"fmt"
	"os"

	"icicle/internal/boom"
	"icicle/internal/core"
	"icicle/internal/kernel"
	"icicle/internal/obs"
	"icicle/internal/perf"
	"icicle/internal/pmu"
	"icicle/internal/rocket"
)

// tele is the shared telemetry wiring; package-level so fatal can flush
// the -metrics-out/-trace-span-out files before exiting.
var tele obs.CLI

func main() {
	var (
		coreKind = flag.String("core", "boom", "core to simulate: rocket or boom")
		size     = flag.String("size", "large", "BOOM size: small, medium, large, mega, giga")
		kname    = flag.String("kernel", "coremark", "workload kernel (see -list)")
		counters = flag.String("counters", "add-wires", "counter architecture: scalar, add-wires, distributed")
		list     = flag.Bool("list", false, "list available kernels and exit")
		events   = flag.Bool("events", false, "also dump raw event totals")
		tlb      = flag.Bool("tlb", false, "enable the third-level TLB extension")
		ras      = flag.Bool("ras", false, "enable BOOM's return-address stack")
	)
	tele.AddFlags(flag.CommandLine)
	flag.Parse()
	if err := tele.Start("icicle-perf"); err != nil {
		fatal(err)
	}
	defer stopTele()

	if *list {
		for _, k := range kernel.All() {
			fmt.Printf("%-18s %-11s %s\n", k.Name, k.Category, k.Description)
		}
		return
	}

	arch, err := pmu.ParseArchitecture(*counters)
	if err != nil {
		fatal(err)
	}
	k, err := kernel.ByName(*kname)
	if err != nil {
		fatal(err)
	}

	switch *coreKind {
	case "rocket":
		cfg := rocket.DefaultConfig()
		cfg.PMUArch = arch
		prog, err := k.Program()
		if err != nil {
			fatal(err)
		}
		c := rocket.New(cfg, prog)
		c.SetTelemetry(obs.CoreTelemetryIn(obs.Default(), "rocket"))
		res, b, err := perf.RunRocketOn(c, k)
		if err != nil {
			fatal(err)
		}
		if *tlb {
			b = withTLB(b, cfg.Hierarchy.TLBHitL2, cfg.Hierarchy.PTWLatency)
		}
		fmt.Printf("%s on Rocket (%v counters)\n", k.Name, arch)
		fmt.Print(b)
		if *events {
			dump(res.Tally)
		}
	case "boom":
		s, err := boom.ParseSize(*size)
		if err != nil {
			fatal(err)
		}
		cfg := boom.NewConfig(s)
		cfg.PMUArch = arch
		cfg.UseRAS = *ras
		prog, err := k.Program()
		if err != nil {
			fatal(err)
		}
		c, err := boom.New(cfg, prog)
		if err != nil {
			fatal(err)
		}
		c.SetTelemetry(obs.CoreTelemetryIn(obs.Default(), "boom"))
		res, b, err := perf.RunBoomOn(c, k)
		if err != nil {
			fatal(err)
		}
		if *tlb {
			b = withTLB(b, cfg.Hierarchy.TLBHitL2, cfg.Hierarchy.PTWLatency)
		}
		fmt.Printf("%s on %s (%v counters)\n", k.Name, cfg.Name, arch)
		fmt.Print(b)
		if *events {
			dump(res.Tally)
		}
	default:
		fatal(fmt.Errorf("unknown core %q (want rocket or boom)", *coreKind))
	}
}

// withTLB re-evaluates a breakdown with the TLB extension enabled, using
// the hierarchy's translation penalties.
func withTLB(b core.Breakdown, l2hit, ptw int) core.Breakdown {
	cfg := b.Cfg
	cfg.TLB = &core.TLBPenalties{L2TLBHit: l2hit, PTW: ptw}
	return core.MustEvaluate(cfg, b.Counts)
}

func dump(tally map[string]uint64) {
	fmt.Println("raw event totals:")
	for _, k := range sortedKeys(tally) {
		fmt.Printf("  %-24s %d\n", k, tally[k])
	}
}

func sortedKeys(m map[string]uint64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// stopTele flushes the telemetry outputs, reporting (but not failing on)
// write errors.
func stopTele() {
	if err := tele.Stop(); err != nil {
		fmt.Fprintln(os.Stderr, "icicle-perf:", err)
	}
}

func fatal(err error) {
	tele.Stop() // os.Exit skips defers; flush telemetry outputs first
	fmt.Fprintln(os.Stderr, "icicle-perf:", err)
	os.Exit(1)
}
