// Command icicle-load is the load-measurement harness: it drives an
// icicle-serve endpoint (or the in-process runner) in closed- or
// open-loop mode and reports a throughput-vs-latency ladder with
// HDR-histogram quantiles, coordinated-omission-corrected open-loop
// latency, per-client breakdowns, declarative SLO verdicts with
// error-budget burn rates, and server-side telemetry (queue-wait
// histograms per priority class, store/memo hit rates) scraped around
// every step.
//
// Usage:
//
//	# closed loop against a live server, 3-rung concurrency ladder
//	icicle-load -target http://localhost:8080 -mode closed \
//	    -concurrency 1,4,16 -duration 5s -kernels vvadd,fib
//
//	# open loop at fixed arrival rates, Poisson pacing, SLO check
//	icicle-load -target http://localhost:8080 -mode open \
//	    -rates 50,100,200 -pacing poisson -duration 10s \
//	    -slo "p99<250ms,p99.9<1s" -out BENCH_9.json
//
//	# in-process engine capacity (no HTTP/queue layers)
//	icicle-load -target sim -mode closed -concurrency 8 -duration 5s
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"icicle/internal/load"
	"icicle/internal/obs"
	"icicle/internal/serve"
	"icicle/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "icicle-load:", err)
		os.Exit(1)
	}
}

func run() (err error) {
	target := flag.String("target", "sim", `target: an icicle-serve base URL ("http://host:port") or "sim" for the in-process runner`)
	mode := flag.String("mode", "closed", "loop discipline: closed (fixed workers) or open (paced arrivals)")
	rates := flag.String("rates", "", "open loop: comma-separated target arrival rates in req/s, one ladder step each")
	concurrency := flag.String("concurrency", "4", "closed loop: comma-separated worker counts, one ladder step each")
	duration := flag.Duration("duration", 5*time.Second, "generation window per ladder step")
	pacing := flag.String("pacing", "poisson", "open loop inter-arrival process: poisson or uniform")
	kernels := flag.String("kernels", "vvadd", "comma-separated kernel names to cycle through")
	core := flag.String("core", "rocket", "core model: rocket or boom")
	size := flag.String("size", "", `BOOM size ("small".."giga"); default "large"`)
	clients := flag.String("clients", "", `client profiles as name:priority:weight:share comma-list, e.g. "interactive:2:2:0.5,batch:0:1:0.5"; default one "anon" client`)
	sloSpec := flag.String("slo", "", `comma-separated latency SLOs evaluated per step, e.g. "p99<250ms,p99.9<1s"`)
	out := flag.String("out", "", "write the JSON report here (e.g. BENCH_9.json)")
	maxInFlight := flag.Int("max-inflight", 256, "open loop: max concurrent dispatches (queued arrivals beyond this still charge latency from their intended time)")
	seed := flag.Int64("seed", 1, "pacing/schedule RNG seed")
	slices := flag.Int("slices", 10, "time slices per step for steady-state (warm-up) detection")
	jobsFlag := flag.Int("j", 0, "sim target: runner worker goroutines (0 = GOMAXPROCS)")
	var o obs.CLI
	o.AddFlags(flag.CommandLine)
	flag.Parse()

	if err := o.Start("icicle-load"); err != nil {
		return err
	}
	defer func() {
		if serr := o.Stop(); serr != nil && err == nil {
			err = serr
		}
	}()

	opts := load.Options{
		Duration:    *duration,
		MaxInFlight: *maxInFlight,
		Seed:        *seed,
		Slices:      *slices,
	}
	switch strings.ToLower(*mode) {
	case "closed":
		opts.Mode = load.Closed
	case "open":
		opts.Mode = load.Open
	default:
		return fmt.Errorf("bad -mode %q (want closed or open)", *mode)
	}
	switch strings.ToLower(*pacing) {
	case "poisson":
		opts.Pacing = load.Poisson
	case "uniform":
		opts.Pacing = load.Uniform
	default:
		return fmt.Errorf("bad -pacing %q (want poisson or uniform)", *pacing)
	}
	if *sloSpec != "" {
		opts.SLOs, err = load.ParseSLOs(*sloSpec)
		if err != nil {
			return err
		}
	}
	opts.Profiles, err = parseClients(*clients)
	if err != nil {
		return err
	}

	var steps []load.Step
	if opts.Mode == load.Open {
		if *rates == "" {
			return fmt.Errorf("open loop needs -rates")
		}
		for _, r := range splitList(*rates) {
			v, perr := strconv.ParseFloat(r, 64)
			if perr != nil || v <= 0 {
				return fmt.Errorf("bad rate %q in -rates", r)
			}
			steps = append(steps, load.Step{Rate: v})
		}
	} else {
		for _, c := range splitList(*concurrency) {
			v, perr := strconv.Atoi(c)
			if perr != nil || v <= 0 {
				return fmt.Errorf("bad worker count %q in -concurrency", c)
			}
			steps = append(steps, load.Step{Concurrency: v})
		}
	}

	specs, err := buildSpecs(*core, *size, splitList(*kernels))
	if err != nil {
		return err
	}

	var tgt load.Target
	var scraper load.Scraper
	if *target == "sim" {
		var runnerOpts []sim.Option
		if *jobsFlag > 0 {
			runnerOpts = append(runnerOpts, sim.WithWorkers(*jobsFlag))
		}
		runnerOpts = append(runnerOpts, sim.WithMetricsRegistry(obs.Default()))
		runner := sim.New(runnerOpts...)
		jobs := make([]sim.Job, len(specs))
		for i, s := range specs {
			jobs[i], err = s.Job()
			if err != nil {
				return err
			}
		}
		tgt = &load.SimTarget{Runner: runner, Jobs: jobs}
		scraper = load.RegistryScraper(obs.Default())
	} else {
		base := strings.TrimRight(*target, "/")
		tgt, err = load.NewHTTPTarget(base, specs, *maxInFlight)
		if err != nil {
			return err
		}
		scraper = load.HTTPScraper(base + "/metrics")
	}

	fmt.Fprintf(os.Stderr, "icicle-load: %s loop, %d steps x %s against %s\n",
		opts.Mode, len(steps), duration, *target)
	rep, err := load.RunLadder(tgt, opts, steps, scraper)
	if err != nil {
		return err
	}
	rep.Target = *target
	rep.Stamp(time.Now())
	rep.WriteText(os.Stdout)
	if *out != "" {
		if err := rep.WriteJSON(*out); err != nil {
			return fmt.Errorf("-out: %w", err)
		}
		fmt.Fprintf(os.Stderr, "icicle-load: report written to %s\n", *out)
	}
	return nil
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// parseClients parses "name:priority:weight:share" comma-lists; later
// fields are optional ("batch" alone is priority 0, weight 1, share 1).
func parseClients(spec string) ([]load.Profile, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var out []load.Profile
	for _, c := range splitList(spec) {
		parts := strings.Split(c, ":")
		p := load.Profile{Client: parts[0], Weight: 1, Share: 1}
		if p.Client == "" {
			return nil, fmt.Errorf("bad client %q in -clients", c)
		}
		var err error
		if len(parts) > 1 && parts[1] != "" {
			if p.Priority, err = strconv.Atoi(parts[1]); err != nil {
				return nil, fmt.Errorf("bad priority in %q: %v", c, err)
			}
		}
		if len(parts) > 2 && parts[2] != "" {
			if p.Weight, err = strconv.Atoi(parts[2]); err != nil || p.Weight <= 0 {
				return nil, fmt.Errorf("bad weight in %q", c)
			}
		}
		if len(parts) > 3 && parts[3] != "" {
			if p.Share, err = strconv.ParseFloat(parts[3], 64); err != nil || p.Share <= 0 {
				return nil, fmt.Errorf("bad share in %q", c)
			}
		}
		out = append(out, p)
	}
	return out, nil
}

func buildSpecs(core, size string, kernels []string) ([]serve.JobSpec, error) {
	if len(kernels) == 0 {
		return nil, fmt.Errorf("-kernels is empty")
	}
	specs := make([]serve.JobSpec, len(kernels))
	for i, k := range kernels {
		specs[i] = serve.JobSpec{Core: core, Kernel: k, Size: size}
		if _, err := specs[i].Job(); err != nil {
			return nil, err
		}
	}
	return specs, nil
}
