// Command icicle-bench regenerates every table and figure of the paper's
// evaluation section — the equivalent of the artifact's
// plots-iiswc-2025-ae.sh. Select individual artifacts with -only.
//
// Usage:
//
//	icicle-bench                # everything
//	icicle-bench -only fig7a,table5
//	icicle-bench -j 8 -v        # 8 simulation workers, print runner stats
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	rtrace "runtime/trace"
	"strings"
	"time"

	"icicle/internal/boom"
	"icicle/internal/experiments"
	"icicle/internal/isa"
	"icicle/internal/obs"
	"icicle/internal/rocket"
	"icicle/internal/sample"
	"icicle/internal/sim"
)

type artifact struct {
	name string
	desc string
	run  func() error
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "icicle-bench:", err)
		os.Exit(1)
	}
}

// run holds the whole program so the profiling and telemetry defers fire
// on every exit path (os.Exit would skip them).
func run() (err error) {
	only := flag.String("only", "", "comma-separated artifact list (fig3,fig7a,fig7c,fig7d,fig7ef,fig7g,fig7k,fig7m,fig7n,table5,table6,fig8,fig9,undercount,archcmp,widthsweep,ras,sampled,sampledpar)")
	outDir := flag.String("out", "", "also write each artifact to <dir>/<name>.txt (the artifact's iiswc-2025-ae-out equivalent)")
	jobs := flag.Int("j", 0, "simulation worker goroutines (0 = GOMAXPROCS); alias -parallel")
	flag.IntVar(jobs, "parallel", 0, "alias for -j")
	verbose := flag.Bool("v", false, "print one line per simulation job and runner statistics at exit")
	sampleDef := sample.Default()
	sampleWindow := flag.Uint64("sample-window", sampleDef.Window, "sampled artifact: detailed window length in cycles")
	samplePeriod := flag.Uint64("sample-period", sampleDef.Period, "sampled artifact: instructions fast-forwarded between windows")
	sampleWarmup := flag.Int("sample-warmup", sampleDef.Warmup, "sampled artifact: trailing fast-forward instructions that warm caches and predictors")
	samplePar := flag.Int("sample-par", 8, "sampledpar artifact: window workers for the two-phase engine's parallel leg")
	noSuperblock := flag.Bool("no-superblock", false, "disable the superblock threaded-code functional engine (debug/ablation; results are bit-identical either way)")
	noSkip := flag.Bool("no-skip", false, "disable event-driven stall-cycle skipping in the detailed cores (debug/ablation; results are bit-identical either way)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit (go tool pprof)")
	tracefile := flag.String("trace", "", "write a runtime execution trace to this file (go tool trace)")
	var o obs.CLI
	o.AddFlags(flag.CommandLine)
	flag.Parse()
	isa.DefaultSuperblocks = !*noSuperblock
	rocket.DefaultStallSkip = !*noSkip
	boom.DefaultStallSkip = !*noSkip

	// Telemetry first: Start enables span tracing before the shared runner
	// is (re)built, so the runner construction below picks the tracer up.
	o.ProgressSource = func() obs.Progress { return sim.Default().Progress() }
	if err := o.Start("icicle-bench"); err != nil {
		return err
	}
	defer func() {
		if serr := o.Stop(); serr != nil && err == nil {
			err = serr
		}
	}()

	var runnerOpts []sim.Option
	if *jobs > 0 {
		runnerOpts = append(runnerOpts, sim.WithWorkers(*jobs))
	}
	if *verbose {
		// Per-job lines go through the obs-owned writer goroutine so
		// concurrent workers never tear each other's output.
		lines := o.Lines()
		runnerOpts = append(runnerOpts, sim.WithJobCallback(func(res sim.Result, wall time.Duration) {
			status := "sim"
			if res.Cached {
				status = "hit"
			}
			lines.Printf("icicle-bench: %s %-10s %-24s %10s",
				status, res.Job.CoreName(), res.Job.Kernel.Name, wall.Round(time.Microsecond))
		}))
	}
	sim.ConfigureDefault(runnerOpts...)

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *tracefile != "" {
		f, err := os.Create(*tracefile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := rtrace.Start(f); err != nil {
			return err
		}
		defer rtrace.Stop()
	}
	if *memprofile != "" {
		path := *memprofile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "icicle-bench:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "icicle-bench:", err)
			}
		}()
	}

	samplePolicy := sample.Policy{Window: *sampleWindow, Period: *samplePeriod, Warmup: *sampleWarmup}
	if err := samplePolicy.Validate(); err != nil {
		return err
	}

	var w io.Writer = os.Stdout
	artifacts := []artifact{
		{"fig3", "motivating frontend trace", func() error {
			r, err := experiments.Fig3FrontendTrace()
			if err != nil {
				return err
			}
			r.Fprint(w)
			return nil
		}},
		{"fig7a", "Rocket microbenchmark TMA (top level + backend)", func() error {
			g, err := experiments.Fig7aRocketMicro()
			if err != nil {
				return err
			}
			g.Fprint(w)
			g.FprintBackend(w)
			return nil
		}},
		{"fig7c", "Rocket CS1: L1D size study", func() error {
			cs, err := experiments.Fig7cCacheStudy()
			if err != nil {
				return err
			}
			cs.Fprint(w)
			return nil
		}},
		{"fig7d", "Rocket CS2: branch inversion", func() error {
			cs, err := experiments.Fig7dBranchInversion()
			if err != nil {
				return err
			}
			cs.Fprint(w)
			return nil
		}},
		{"fig7ef", "Rocket CS3: CoreMark scheduling", func() error {
			cs, err := experiments.Fig7efCoreMarkSched()
			if err != nil {
				return err
			}
			cs.Fprint(w)
			fmt.Fprintln(w, cs.Base.B.BackendRow(cs.BaseName))
			fmt.Fprintln(w, cs.Variant.B.BackendRow(cs.VarName))
			return nil
		}},
		{"fig7g", "BOOM SPEC proxy TMA (top + second level)", func() error {
			g, err := experiments.Fig7gBoomSPEC()
			if err != nil {
				return err
			}
			g.Fprint(w)
			g.FprintBackend(w)
			return nil
		}},
		{"fig7k", "BOOM microbenchmark TMA", func() error {
			g, err := experiments.Fig7kBoomMicro()
			if err != nil {
				return err
			}
			g.Fprint(w)
			g.FprintBackend(w)
			return nil
		}},
		{"fig7m", "BOOM CS: CoreMark scheduling", func() error {
			cs, err := experiments.Fig7mBoomCoreMarkSched()
			if err != nil {
				return err
			}
			cs.Fprint(w)
			return nil
		}},
		{"fig7n", "BOOM CS: branch inversion", func() error {
			cs, err := experiments.Fig7nBoomBranchInversion()
			if err != nil {
				return err
			}
			cs.Fprint(w)
			return nil
		}},
		{"table5", "per-lane event rates", func() error {
			t, err := experiments.Table5PerLane()
			if err != nil {
				return err
			}
			t.Fprint(w)
			return nil
		}},
		{"table6", "temporal TMA overlap bound", func() error {
			t, err := experiments.Table6Overlap(50)
			if err != nil {
				return err
			}
			t.Fprint(w)
			return nil
		}},
		{"fig8", "recovery-length CDF", func() error {
			r, err := experiments.Fig8RecoveryCDF()
			if err != nil {
				return err
			}
			r.Fprint(w)
			return nil
		}},
		{"fig9", "physical-design overheads", func() error {
			r, err := experiments.Fig9Physical(true)
			if err != nil {
				return err
			}
			r.Fprint(w)
			return nil
		}},
		{"undercount", "distributed-counter undercount bound", func() error {
			u, err := experiments.UndercountBound("rsort")
			if err != nil {
				return err
			}
			u.Fprint(w)
			return nil
		}},
		{"archcmp", "counter architecture value comparison", func() error {
			c, err := experiments.CounterArchComparison("coremark", "uops-issued")
			if err != nil {
				return err
			}
			c.Fprint(w)
			return nil
		}},
		{"widthsweep", "distributed local-counter width ablation", func() error {
			r, err := experiments.WidthSweep("coremark", "uops-issued")
			if err != nil {
				return err
			}
			r.Fprint(w)
			return nil
		}},
		{"ras", "return-address stack ablation", func() error {
			r, err := experiments.RASAblation("towers")
			if err != nil {
				return err
			}
			r.Fprint(w)
			return nil
		}},
		{"sampled", "sampled vs full-detail TMA validation", func() error {
			sc, err := experiments.SampledVsFullPolicy(samplePolicy)
			if err != nil {
				return err
			}
			sc.Fprint(w)
			return nil
		}},
		{"sampledpar", "two-phase sampled engine: parallel vs serial reports", func() error {
			sc, err := experiments.SampledParVsSerial(samplePolicy, *samplePar)
			if err != nil {
				return err
			}
			sc.Fprint(w)
			if !sc.AllIdentical() {
				return fmt.Errorf("parallel sampled report differs from serial reference")
			}
			return nil
		}},
	}

	want := map[string]bool{}
	if *only != "" {
		for _, n := range strings.Split(*only, ",") {
			want[strings.TrimSpace(n)] = true
		}
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
	}
	for _, a := range artifacts {
		if len(want) > 0 && !want[a.name] {
			continue
		}
		var file *os.File
		if *outDir != "" {
			var err error
			file, err = os.Create(filepath.Join(*outDir, a.name+".txt"))
			if err != nil {
				return err
			}
			w = io.MultiWriter(os.Stdout, file)
		}
		fmt.Fprintf(w, "\n==== %s: %s ====\n", a.name, a.desc)
		if err := a.run(); err != nil {
			return fmt.Errorf("%s: %w", a.name, err)
		}
		if file != nil {
			if err := file.Close(); err != nil {
				return err
			}
		}
	}
	if *verbose {
		// Stats go to stderr so artifact output on stdout stays diffable;
		// the line writer keeps them ordered after the per-job lines.
		o.Lines().Printf("\nicicle-bench: %s", sim.Default().Snapshot())
	}
	return nil
}
