// Command icicle-serve runs the simulation sweep service: an HTTP/JSON
// API over the shared runner with a persistent content-addressed result
// store, priority/fairness queueing, and optional sharding across peers.
//
// Usage:
//
//	icicle-serve -addr :8080 -store /var/lib/icicle
//	icicle-serve -addr :8081 -store /var/lib/icicle \
//	    -self http://host-b:8081 -peers http://host-a:8080,http://host-b:8081
//
// Submit a sweep and poll it:
//
//	curl -s localhost:8080/jobs -d '{"client":"me","jobs":[{"core":"rocket","kernel":"vvadd"}]}'
//	curl -s localhost:8080/jobs/b-000001
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"icicle/internal/obs"
	"icicle/internal/serve"
	"icicle/internal/sim"
	"icicle/internal/store"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "icicle-serve:", err)
		os.Exit(1)
	}
}

func run() (err error) {
	addr := flag.String("addr", ":8080", "API listen address")
	storeDir := flag.String("store", "", "persistent result store directory (empty = in-memory only)")
	storeMax := flag.Int64("store-max-bytes", 0, "store size cap in bytes (0 = unbounded); least-recently-used blobs are evicted")
	workers := flag.Int("workers", 0, "concurrent job executors (0 = GOMAXPROCS)")
	jobs := flag.Int("j", 0, "simulation worker goroutines inside the runner (0 = GOMAXPROCS)")
	self := flag.String("self", "", "this server's advertised base URL on the shard ring, e.g. http://host-a:8080")
	peers := flag.String("peers", "", "comma-separated shard peer base URLs, this node's -self included (config sweeps hash across them)")
	var o obs.CLI
	o.AddFlags(flag.CommandLine)
	flag.Parse()

	reg := obs.Default()
	if o.SpanOut != "" {
		// Enable tracing before the server (and its runner) is built so
		// both pick the tracer up; CLI.Start's own call is idempotent.
		obs.EnableTracing()
	}

	var st *store.Store
	if *storeDir != "" {
		var opts []store.Option
		if *storeMax > 0 {
			opts = append(opts, store.WithMaxBytes(*storeMax))
		}
		opts = append(opts, store.WithMetrics(reg))
		st, err = store.Open(*storeDir, opts...)
		if err != nil {
			return fmt.Errorf("open store: %w", err)
		}
		stats := st.Stats()
		fmt.Fprintf(os.Stderr, "icicle-serve: store %s: %d objects, %d bytes\n",
			st.Dir(), stats.Objects, stats.Bytes)
	}

	var peerList []string
	for _, p := range strings.Split(*peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peerList = append(peerList, strings.TrimRight(p, "/"))
		}
	}

	var runnerOpts []sim.Option
	if *jobs > 0 {
		runnerOpts = append(runnerOpts, sim.WithWorkers(*jobs))
	}
	srv, err := serve.New(serve.Config{
		Store:        st,
		Registry:     reg,
		Tracer:       obs.Tracing(),
		QueueWorkers: *workers,
		Self:         strings.TrimRight(*self, "/"),
		Peers:        peerList,
		RunnerOpts:   runnerOpts,
	})
	if err != nil {
		return err
	}
	defer srv.Close()

	o.ProgressSource = srv.Progress
	if err := o.Start("icicle-serve"); err != nil {
		return err
	}
	defer func() {
		if serr := o.Stop(); serr != nil && err == nil {
			err = serr
		}
	}()

	bound, err := srv.Start(*addr)
	if err != nil {
		return fmt.Errorf("listen: %w", err)
	}
	storeDesc := "memory-only"
	if st != nil {
		storeDesc = st.Dir()
	}
	fmt.Fprintf(os.Stderr,
		"icicle-serve: listening on http://%s | store %s | %d peers | %d queue workers (strict priority + weighted fair within class)\n",
		bound, storeDesc, len(peerList), srv.Workers())
	fmt.Fprintf(os.Stderr, "icicle-serve: serving on http://%s (POST /jobs, GET /jobs/{id}, /store/{addr}, /healthz, /metrics)\n", bound)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	fmt.Fprintf(os.Stderr, "icicle-serve: %s, shutting down\n", s)
	return srv.Close()
}
