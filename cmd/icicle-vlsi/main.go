// Command icicle-vlsi reports the physical-design overheads of the PMU
// counter architectures (Fig. 9): post-placement power, area, wirelength,
// and the longest CSR-crossing combinational path, per BOOM size. With
// -activity, dynamic power uses per-event switching activity measured from
// an actual simulation rather than defaults.
//
// Usage:
//
//	icicle-vlsi
//	icicle-vlsi -activity
//	icicle-vlsi -ablation
package main

import (
	"flag"
	"fmt"
	"os"

	"icicle/internal/boom"
	"icicle/internal/experiments"
	"icicle/internal/obs"
	"icicle/internal/sim"
	"icicle/internal/vlsi"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "icicle-vlsi:", err)
		os.Exit(1)
	}
}

func run() (err error) {
	var (
		withActivity = flag.Bool("activity", false, "drive dynamic power from a measured CoreMark run per size")
		ablation     = flag.Bool("ablation", false, "also print the adder chain vs adder tree ablation")
	)
	var tele obs.CLI
	tele.AddFlags(flag.CommandLine)
	flag.Parse()

	// -activity runs CoreMark per size through the shared sim runner, so
	// the progress endpoint and span tracing see real work.
	tele.ProgressSource = func() obs.Progress { return sim.Default().Progress() }
	if err := tele.Start("icicle-vlsi"); err != nil {
		return err
	}
	defer func() {
		if serr := tele.Stop(); serr != nil && err == nil {
			err = serr
		}
	}()
	sim.ConfigureDefault()

	r, err := experiments.Fig9Physical(*withActivity)
	if err != nil {
		return err
	}
	r.Fprint(os.Stdout)

	if *ablation {
		fmt.Println("-- ablation: sequential adder chain vs adder tree (delay units) --")
		fmt.Printf("%-12s %8s %8s\n", "config", "chain", "tree")
		for _, s := range boom.Sizes {
			cfg := boom.NewConfig(s)
			chain, tree := vlsi.AdderTreeDelay(cfg)
			fmt.Printf("%-12s %8.2f %8.2f\n", cfg.Name, chain, tree)
		}
	}
	return nil
}
