// Command icicle-trace drives the out-of-band tracing path (§IV-C): it
// runs a kernel with the TracerV-style bridge attached, writes the packed
// binary trace to disk, and runs the temporal-TMA analyses (§V-B) over it —
// recovery-length CDF, class-overlap bounding, and Fig. 3-style timelines.
//
// Usage:
//
//	icicle-trace -core boom -kernel qsort -out trace.bin
//	icicle-trace -core rocket -kernel mergesort -fig3
//	icicle-trace -analyze trace.bin -pad 50
package main

import (
	"flag"
	"fmt"
	"os"

	"icicle/internal/boom"
	"icicle/internal/experiments"
	"icicle/internal/kernel"
	"icicle/internal/obs"
	"icicle/internal/pmu"
	"icicle/internal/rocket"
	"icicle/internal/trace"
)

// cycleSink is what a core's cycle hook feeds: the full-trace Writer or
// the SamplingWriter, selected by -sample-window.
type cycleSink interface {
	WriteCycle(cycle uint64, sample pmu.Sample)
	Flush() error
	Cycles() uint64
}

// tele is the shared telemetry wiring; package-level so fatal can flush
// the -metrics-out/-trace-span-out files before exiting.
var tele obs.CLI

func main() {
	var (
		coreKind   = flag.String("core", "boom", "core to simulate: rocket or boom")
		size       = flag.String("size", "large", "BOOM size")
		kname      = flag.String("kernel", "qsort", "workload kernel")
		out        = flag.String("out", "", "write the binary trace to this file")
		analyze    = flag.String("analyze", "", "analyze an existing trace file instead of simulating")
		pad        = flag.Int("pad", 50, "overlap window padding in cycles (§V-B)")
		fig3       = flag.Bool("fig3", false, "reproduce the Fig. 3 frontend trace study")
		window     = flag.Int("window", 80, "timeline window length in cycles")
		sampleWin  = flag.Uint64("sample-window", 0, "capture sampled windows of this many cycles instead of the full trace (0 = full)")
		samplePer  = flag.Uint64("sample-period", 0, "cycles between sampled window starts (default 10× -sample-window)")
		usPerCycle = flag.Float64("us-per-cycle", 0.001, "trace microseconds per simulated cycle for the Perfetto TMA counter tracks")
	)
	tele.AddFlags(flag.CommandLine)
	flag.Parse()
	if err := tele.Start("icicle-trace"); err != nil {
		fatal(err)
	}
	defer stopTele()

	if *fig3 {
		r, err := experiments.Fig3FrontendTrace()
		if err != nil {
			fatal(err)
		}
		r.Fprint(os.Stdout)
		return
	}

	if *analyze != "" {
		f, err := os.Open(*analyze)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		rd, err := trace.NewReader(f)
		if err != nil {
			fatal(err)
		}
		a, err := trace.NewAnalyzer(rd)
		if err != nil {
			fatal(err)
		}
		report(a, *pad, *window)
		return
	}

	k, err := kernel.ByName(*kname)
	if err != nil {
		fatal(err)
	}
	path := *out
	if path == "" {
		path = k.Name + ".ictr"
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()

	// sink wraps a full-trace writer in the sampling writer when
	// -sample-window is set.
	sink := func(w *trace.Writer) cycleSink {
		if *sampleWin == 0 {
			return w
		}
		period := *samplePer
		if period == 0 {
			period = *sampleWin * 10
		}
		sw, err := trace.NewSamplingWriter(w, *sampleWin, period)
		if err != nil {
			fatal(err)
		}
		return sw
	}

	switch *coreKind {
	case "rocket":
		c := rocket.New(rocket.DefaultConfig(), k.MustProgram())
		w, err := trace.NewWriter(f, trace.MustBundle(rocket.Events,
			rocket.EvICacheMiss, rocket.EvICacheBlocked, rocket.EvFetchBubbles,
			rocket.EvRecovering, rocket.EvBrMispredict, rocket.EvInstIssued))
		if err != nil {
			fatal(err)
		}
		s := sink(w)
		c.SetCycleHook(s.WriteCycle)
		if _, err := c.Run(); err != nil {
			fatal(err)
		}
		if err := s.Flush(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d cycles to %s\n", s.Cycles(), path)
	case "boom":
		s, err := boom.ParseSize(*size)
		if err != nil {
			fatal(err)
		}
		c, err := boom.New(boom.NewConfig(s), k.MustProgram())
		if err != nil {
			fatal(err)
		}
		w, err := trace.NewWriter(f, trace.MustBundle(c.Space,
			boom.EvICacheMiss, boom.EvICacheBlocked, boom.EvFetchBubbles,
			boom.EvRecovering, boom.EvBrMispredict, boom.EvUopsIssued))
		if err != nil {
			fatal(err)
		}
		sk := sink(w)
		c.SetCycleHook(sk.WriteCycle)
		if _, err := c.Run(); err != nil {
			fatal(err)
		}
		if err := sk.Flush(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d cycles to %s\n", sk.Cycles(), path)
	default:
		fatal(fmt.Errorf("unknown core %q", *coreKind))
	}

	// Re-open and analyze what we just wrote (the host-side DMA path).
	rf, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer rf.Close()
	if *sampleWin > 0 {
		// Sampled stream: window-aware analysis, plus TMA counter tracks
		// on the Perfetto timeline when -trace-span-out is set.
		windows, names, err := trace.ReadWindows(rf)
		if err != nil {
			fatal(err)
		}
		a := trace.NewWindowAnalyzer(windows, names)
		fmt.Printf("sampled: %d windows, %d captured cycles, events %v\n",
			len(windows), a.CapturedCycles(), names)
		tot := a.Totals()
		for _, n := range names {
			fmt.Printf("  %-24s %d\n", n, tot[n])
		}
		if tr := obs.Tracing(); tr != nil {
			n := trace.CounterTracks(tr, windows, names, 0, *usPerCycle)
			fmt.Printf("rendered %d TMA counter-track samples\n", n)
		}
		return
	}
	rd, err := trace.NewReader(rf)
	if err != nil {
		fatal(err)
	}
	a, err := trace.NewAnalyzer(rd)
	if err != nil {
		fatal(err)
	}
	report(a, *pad, *window)
}

func report(a *trace.Analyzer, pad, window int) {
	fmt.Printf("trace: %d cycles, events %v\n", a.Cycles(), a.Names())
	fmt.Println("totals:")
	tot := a.Totals()
	for _, n := range a.Names() {
		fmt.Printf("  %-24s %d\n", n, tot[n])
	}
	if cdf, err := a.RecoveryCDF("recovering"); err == nil && cdf.N() > 0 {
		fmt.Printf("recovery sequences: %d, mode %d, p50 %d, max %d\n",
			cdf.N(), cdf.Mode(), cdf.Quantile(0.5), cdf.Max())
	}
	if rep, err := a.OverlapBound("fetch-bubbles", "icache-miss", "recovering", pad); err == nil {
		fmt.Println("overlap bound:", rep)
	}
	if at := a.FindWindow("icache-miss", 0); at >= 0 {
		fmt.Println(a.Timeline(at, at+window))
	}
}

// stopTele flushes the telemetry outputs, reporting (but not failing on)
// write errors.
func stopTele() {
	if err := tele.Stop(); err != nil {
		fmt.Fprintln(os.Stderr, "icicle-trace:", err)
	}
}

func fatal(err error) {
	tele.Stop() // os.Exit skips defers; flush telemetry outputs first
	fmt.Fprintln(os.Stderr, "icicle-trace:", err)
	os.Exit(1)
}
