// Command icicle-benchdiff gates checked-in benchmark snapshots: it
// diffs the time-per-work metrics (ns_per_inst / ns_per_op style keys)
// two BENCH_<n>.json files share and exits nonzero when the newer
// snapshot is slower beyond the tolerance. With no -old/-new it compares
// the two highest-numbered snapshots in -dir, so `make bench-diff` keeps
// every PR honest against the one before it.
//
// Usage:
//
//	icicle-benchdiff                      # newest pair under .
//	icicle-benchdiff -old BENCH_7.json -new BENCH_9.json -tol 0.05
//	icicle-benchdiff -all                 # every consecutive pair
package main

import (
	"flag"
	"fmt"
	"os"

	"icicle/internal/benchdiff"
)

func main() {
	dir := flag.String("dir", ".", "directory holding BENCH_<n>.json snapshots")
	oldPath := flag.String("old", "", "older snapshot (default: second-newest in -dir)")
	newPath := flag.String("new", "", "newer snapshot (default: newest in -dir)")
	tol := flag.Float64("tol", 0.10, "fractional slowdown tolerated before a shared metric counts as a regression")
	all := flag.Bool("all", false, "compare every consecutive snapshot pair in -dir, not just the newest")
	flag.Parse()

	if err := run(*dir, *oldPath, *newPath, *tol, *all); err != nil {
		fmt.Fprintln(os.Stderr, "icicle-benchdiff:", err)
		os.Exit(1)
	}
}

func run(dir, oldPath, newPath string, tol float64, all bool) error {
	var pairs [][2]string
	switch {
	case oldPath != "" && newPath != "":
		pairs = [][2]string{{oldPath, newPath}}
	case oldPath != "" || newPath != "":
		return fmt.Errorf("-old and -new must be given together")
	default:
		snaps, err := benchdiff.Snapshots(dir)
		if err != nil {
			return err
		}
		if len(snaps) < 2 {
			return fmt.Errorf("need at least two BENCH_<n>.json snapshots in %s, found %d", dir, len(snaps))
		}
		if all {
			for i := 1; i < len(snaps); i++ {
				pairs = append(pairs, [2]string{snaps[i-1], snaps[i]})
			}
		} else {
			pairs = [][2]string{{snaps[len(snaps)-2], snaps[len(snaps)-1]}}
		}
	}

	regressed := false
	for _, p := range pairs {
		rep, err := benchdiff.Compare(p[0], p[1], tol)
		if err != nil {
			return err
		}
		printReport(rep)
		if len(rep.Regressions()) > 0 {
			regressed = true
		}
	}
	if regressed {
		return fmt.Errorf("regressions beyond %.0f%% tolerance", tol*100)
	}
	return nil
}

func printReport(rep *benchdiff.Report) {
	fmt.Printf("%s -> %s (tolerance %.0f%%)\n", rep.Old.Path, rep.New.Path, rep.Tol*100)
	if len(rep.Deltas) == 0 {
		fmt.Println("  no shared time-per-work metrics to compare")
		return
	}
	for _, d := range rep.Deltas {
		verdict := "ok"
		switch {
		case d.Regressed(rep.Tol):
			verdict = "REGRESSION"
		case d.Improved(rep.Tol):
			verdict = "improved"
		}
		fmt.Printf("  %-56s %10.2f -> %10.2f  %+7.1f%%  %s\n",
			d.Key, d.Old, d.New, d.Change()*100, verdict)
	}
}
