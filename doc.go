// Package icicle is a full system-stack reproduction, in pure Go, of
// "Icicle: Open-Source Hardware Support for Top-Down Microarchitectural
// Analysis on RISC-V" (IISWC 2025): Top-Down Microarchitectural Analysis
// (TMA) for the Rocket and BOOM RISC-V cores.
//
// The stack comprises, bottom-up:
//
//   - internal/isa, internal/asm: an RV64IM functional model and assembler
//   - internal/mem, internal/branch: the memory hierarchy and branch
//     predictor substrates
//   - internal/rocket, internal/boom: cycle-level timing models of the two
//     cores with the full Table I performance-event lists, including the
//     events Icicle adds for TMA
//   - internal/pmu: the event/event-set abstraction and the three counter
//     microarchitectures (Scalar, AddWires, DistributedCounters)
//   - internal/core: the TMA model itself (the paper's Table II)
//   - internal/trace: TracerV-style cycle tracing and the temporal TMA
//     analyzer
//   - internal/perf: the perf-like software harness (CSR programming,
//     boot shims)
//   - internal/vlsi: the physical-design overhead model (Fig. 9)
//   - internal/kernel: the workload suite (microbenchmarks, case-study
//     kernels, SPEC CPU2017 intrate proxies)
//   - internal/experiments: regeneration of every evaluation table/figure
//
// The benchmarks in bench_test.go regenerate each paper artifact; the
// cmd/ tools expose the same functionality as CLIs. See DESIGN.md for the
// substitution map (paper infrastructure → this repository) and
// EXPERIMENTS.md for paper-vs-measured results.
package icicle
