package perf

import (
	"reflect"
	"testing"

	"icicle/internal/boom"
	"icicle/internal/kernel"
	"icicle/internal/rocket"
)

// The golden reset-vs-fresh oracle: a core that has already simulated one
// kernel, once Reset, must reproduce a fresh core's Result byte for byte —
// every tally, per-lane counter, cache stat, and TMA breakdown. This is
// what makes the sim-layer core pool invisible: any state leaking across
// Reset (a trained predictor, a dirty memory frame, a stale arena slot)
// shows up here as a diff on the second run.

// resetKernels is ordered so each reused run follows a *different*
// workload — the adversarial case for leftover state.
var resetKernels = []string{"towers", "vvadd", "median", "multiply"}

func TestRocketResetMatchesFresh(t *testing.T) {
	cfg := rocket.DefaultConfig()
	var shared *rocket.Core
	for _, name := range resetKernels {
		k, err := kernel.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if shared == nil {
			prog, err := k.Program()
			if err != nil {
				t.Fatal(err)
			}
			shared = rocket.New(cfg, prog)
		}
		fresh, fb, err := RunRocket(cfg, k)
		if err != nil {
			t.Fatalf("%s: fresh run: %v", name, err)
		}
		reused, rb, err := RunRocketOn(shared, k)
		if err != nil {
			t.Fatalf("%s: reused run: %v", name, err)
		}
		if !reflect.DeepEqual(fresh, reused) {
			t.Errorf("%s: reused-core result diverges from fresh core\nfresh:  %+v\nreused: %+v",
				name, fresh, reused)
		}
		if fb != rb {
			t.Errorf("%s: TMA breakdown diverges\nfresh:  %+v\nreused: %+v", name, fb, rb)
		}
	}
}

func TestBoomResetMatchesFresh(t *testing.T) {
	for _, size := range boom.Sizes {
		size := size
		t.Run(boom.NewConfig(size).Name, func(t *testing.T) {
			t.Parallel()
			cfg := boom.NewConfig(size)
			var shared *boom.Core
			for _, name := range resetKernels {
				k, err := kernel.ByName(name)
				if err != nil {
					t.Fatal(err)
				}
				if shared == nil {
					prog, err := k.Program()
					if err != nil {
						t.Fatal(err)
					}
					if shared, err = boom.New(cfg, prog); err != nil {
						t.Fatal(err)
					}
				}
				fresh, fb, err := RunBoom(cfg, k)
				if err != nil {
					t.Fatalf("%s: fresh run: %v", name, err)
				}
				reused, rb, err := RunBoomOn(shared, k)
				if err != nil {
					t.Fatalf("%s: reused run: %v", name, err)
				}
				if !reflect.DeepEqual(fresh, reused) {
					t.Errorf("%s: reused-core result diverges from fresh core\nfresh:  %+v\nreused: %+v",
						name, fresh, reused)
				}
				if fb != rb {
					t.Errorf("%s: TMA breakdown diverges\nfresh:  %+v\nreused: %+v", name, fb, rb)
				}
			}
		})
	}
}
