package perf

import (
	"testing"

	"icicle/internal/asm"
	"icicle/internal/boom"
	"icicle/internal/kernel"
	"icicle/internal/rocket"
)

// TestInstrumentedKernelEndToEnd is the full in-band path: a real kernel
// wrapped with boot + readout shims, run on the Rocket timing model; the
// counter values the *workload itself* dumped to memory must match the
// PMU's final state (modulo the handful of cycles the readout instructions
// themselves consume).
func TestInstrumentedKernelEndToEnd(t *testing.T) {
	k, err := kernel.ByName("rsort")
	if err != nil {
		t.Fatal(err)
	}
	plan := TMAPlan(rocket.EvInstIssued, rocket.EvFetchBubbles, rocket.EvRecovering,
		rocket.EvICacheBlocked, rocket.EvDCacheBlocked)
	src, err := Instrument(k.Source, plan, rocket.Events, DumpBase)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("instrumented source does not assemble: %v", err)
	}
	c := rocket.New(rocket.DefaultConfig(), prog)
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The workload still computes its checksum (the shims must not
	// clobber live registers across the final readout — they only use
	// t0/t1 after the result is in a0).
	if res.Exit != k.Expected {
		t.Fatalf("instrumented kernel checksum %#x != %#x", res.Exit, k.Expected)
	}
	dump := plan.Layout(DumpBase).ReadDump(c.CPU.Mem)
	for i, g := range plan.Groups {
		final := c.PMU.Read(i)
		got := dump[g[0]]
		if got > final || final-got > 128 {
			t.Errorf("%v: dumped %d vs final %d", g, got, final)
		}
	}
	if dump["cycles"] == 0 || dump["cycles"] > res.Cycles {
		t.Errorf("dumped cycles %d out of range (run: %d)", dump["cycles"], res.Cycles)
	}
	if dump["instret"] == 0 {
		t.Error("dumped instret zero")
	}
}

// TestInstrumentedTMAMatchesOutOfBand compares the TMA breakdown computed
// from the in-band dump against the out-of-band exact tallies.
func TestInstrumentedTMAMatchesOutOfBand(t *testing.T) {
	k, err := kernel.ByName("coremark")
	if err != nil {
		t.Fatal(err)
	}
	names := []string{boom.EvUopsIssued, boom.EvUopsRetired, boom.EvFetchBubbles,
		boom.EvRecovering, boom.EvFenceRetired, boom.EvICacheBlocked, boom.EvDCacheBlocked}
	plan := TMAPlan(names...)
	cfg := boom.NewConfig(boom.Large)
	space := boom.NewSpace(cfg.DecodeWidth, cfg.IssueWidth)
	src, err := Instrument(k.Source, plan, space, DumpBase)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	c, err := boom.New(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	dump := plan.Layout(DumpBase).ReadDump(c.CPU.Mem)
	// In-band counts trail the exact tallies by the pipeline drain window:
	// the functional model executes the readout CSR reads at fetch time,
	// while events keep accruing until the backend drains (the same
	// skid real out-of-order PMUs exhibit). Allow a small proportional
	// tolerance.
	for _, n := range names {
		exact := res.Tally[n]
		got := dump[n]
		tol := uint64(256)
		if p := exact / 10; p > tol {
			tol = p
		}
		if got > exact || exact-got > tol {
			t.Errorf("%s: in-band %d vs exact %d (tol %d)", n, got, exact, tol)
		}
	}
}

func TestInstrumentRejectsNoEcall(t *testing.T) {
	if _, err := Instrument("\tnop\n", TMAPlan(rocket.EvCycles), rocket.Events, DumpBase); err == nil {
		t.Fatal("source without ecall instrumented")
	}
}
