package perf

import (
	"strings"
	"testing"

	"icicle/internal/asm"
	"icicle/internal/boom"
	"icicle/internal/isa"
	"icicle/internal/kernel"
	"icicle/internal/mem"
	"icicle/internal/pmu"
	"icicle/internal/rocket"
)

func TestPlanValidation(t *testing.T) {
	space := boom.NewSpace(3, 5)
	good := Plan{Groups: []Group{{boom.EvUopsIssued, boom.EvFetchBubbles}}}
	if err := good.Validate(space); err != nil {
		t.Fatal(err)
	}
	crossSet := Plan{Groups: []Group{{boom.EvUopsIssued, boom.EvCycles}}}
	if err := crossSet.Validate(space); err == nil {
		t.Fatal("cross-set group validated")
	}
	unknown := Plan{Groups: []Group{{"bogus"}}}
	if err := unknown.Validate(space); err == nil {
		t.Fatal("unknown event validated")
	}
	tooMany := Plan{Groups: make([]Group, pmu.NumHPMCounters+1)}
	if err := tooMany.Validate(space); err == nil {
		t.Fatal("oversized plan validated")
	}
}

func TestSelectorsEncodeGroups(t *testing.T) {
	space := boom.NewSpace(3, 5)
	plan := Plan{Groups: []Group{{boom.EvUopsIssued, boom.EvFetchBubbles}, {boom.EvICacheMiss}}}
	sels, err := plan.Selectors(space)
	if err != nil {
		t.Fatal(err)
	}
	if len(sels) != 2 {
		t.Fatalf("%d selectors", len(sels))
	}
	if sels[0].Set != boom.SetTMA || sels[0].Mask != 0b11 {
		t.Fatalf("selector 0 = %+v", sels[0])
	}
	if sels[1].Set != boom.SetMemory || sels[1].Mask != 1 {
		t.Fatalf("selector 1 = %+v", sels[1])
	}
}

func TestBootShimAssemblesAndPrograms(t *testing.T) {
	// The generated shim, run in front of a workload, must program the
	// PMU identically to Plan.Apply — the full in-band path of §IV-D.
	space := rocket.Events
	plan := TMAPlan(rocket.EvInstIssued, rocket.EvFetchBubbles)
	shim, err := plan.BootShim(space)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.Assemble(shim + "\n\tecall\n")
	if err != nil {
		t.Fatalf("shim does not assemble: %v\n%s", err, shim)
	}
	m := mem.NewSparse()
	prog.LoadInto(m)
	dev := pmu.New(space, pmu.AddWires)
	cpu := isa.NewCPU(m, prog.Entry)
	cpu.CSR = dev
	if _, err := cpu.Run(1000); err != nil {
		t.Fatal(err)
	}
	want, err := plan.Selectors(space)
	if err != nil {
		t.Fatal(err)
	}
	got := dev.Selectors()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("counter %d: shim programmed %+v, want %+v", i, got[i], want[i])
		}
	}
	if dev.ReadCSR(pmu.CSRMCountInhibit) != 0 {
		t.Fatal("shim did not clear mcountinhibit")
	}
}

func TestReadoutShim(t *testing.T) {
	// Wrap a kernel with the boot and readout shims; the counter values
	// the workload itself dumps to memory must match the PMU.
	const dumpBase = 0x700000
	space := rocket.Events
	plan := TMAPlan(rocket.EvInstIssued, rocket.EvFetchBubbles, rocket.EvRecovering)
	shim, err := plan.BootShim(space)
	if err != nil {
		t.Fatal(err)
	}
	body := `
	li   t2, 1000
loopx:
	addi t3, t3, 1
	addi t2, t2, -1
	bnez t2, loopx
`
	prog, err := asm.Assemble(shim + body + plan.ReadoutShim(dumpBase) + "\tecall\n")
	if err != nil {
		t.Fatal(err)
	}
	cfg := rocket.DefaultConfig()
	c := rocket.New(cfg, prog)
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	memv := c.CPU.Mem
	for i := range plan.Groups {
		dumped := memv.Load(dumpBase+uint64(8*i), 8)
		// The PMU keeps counting during the readout itself, so allow the
		// dumped value to trail the final value slightly.
		final := c.PMU.Read(i)
		if dumped > final || final-dumped > 64 {
			t.Errorf("counter %d: dumped %d, final %d", i, dumped, final)
		}
	}
	cycles := memv.Load(dumpBase+uint64(8*len(plan.Groups)), 8)
	if cycles == 0 || cycles > c.PMU.Cycles() {
		t.Errorf("dumped cycle count %d implausible (final %d)", cycles, c.PMU.Cycles())
	}
}

func TestPlanRead(t *testing.T) {
	space := rocket.Events
	dev := pmu.New(space, pmu.AddWires)
	plan := TMAPlan(rocket.EvInstIssued)
	if err := plan.Apply(dev); err != nil {
		t.Fatal(err)
	}
	sample := space.NewSample()
	sample.Assert(space.MustIndex(rocket.EvInstIssued), 0)
	dev.Tick(sample, 1)
	vals := plan.Read(dev)
	if vals[rocket.EvInstIssued] != 1 || vals["cycles"] != 1 || vals["instret"] != 1 {
		t.Fatalf("read = %v", vals)
	}
}

func TestCountsFromPMU(t *testing.T) {
	space := boom.NewSpace(3, 5)
	dev := pmu.New(space, pmu.AddWires)
	names := []string{"uops-issued", "uops-retired", "fetch-bubbles",
		"recovering", "fence-retired", "icache-blocked", "dcache-blocked"}
	plan := TMAPlan(names...)
	if err := plan.Apply(dev); err != nil {
		t.Fatal(err)
	}
	sample := space.NewSample()
	sample.AssertN(space.MustIndex(boom.EvUopsIssued), 4)
	sample.AssertN(space.MustIndex(boom.EvUopsRetired), 3)
	dev.Tick(sample, 3)
	c, err := CountsFromPMU(dev, names)
	if err != nil {
		t.Fatal(err)
	}
	if c.UopsIssued != 4 || c.UopsRetired != 3 || c.Cycles != 1 || c.InstRet != 3 {
		t.Fatalf("counts = %+v", c)
	}
	if _, err := CountsFromPMU(dev, names[:2]); err == nil {
		t.Fatal("missing events not reported")
	}
}

func TestRunnersProduceConsistentBreakdowns(t *testing.T) {
	k, _ := kernel.ByName("dhrystone")
	_, rb, err := RunRocket(rocket.DefaultConfig(), k)
	if err != nil {
		t.Fatal(err)
	}
	_, bb, err := RunBoom(boom.NewConfig(boom.Small), k)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []float64{rb.TopLevelSum(), bb.TopLevelSum()} {
		if b < 0.999 || b > 1.001 {
			t.Fatalf("top level sum %f", b)
		}
	}
	// Dhrystone is the predictable high-IPC benchmark on both cores.
	if rb.Retiring < 0.7 {
		t.Fatalf("rocket dhrystone retiring = %.2f", rb.Retiring)
	}
}

func TestBootShimMentionsEveryCounter(t *testing.T) {
	plan := TMAPlan(rocket.EvInstIssued, rocket.EvFetchBubbles)
	shim, err := plan.BootShim(rocket.Events)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"mhpmevent3", "mhpmevent4", "mcountinhibit"} {
		if !strings.Contains(shim, want) {
			t.Errorf("shim missing %s:\n%s", want, shim)
		}
	}
}
