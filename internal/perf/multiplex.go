package perf

import (
	"fmt"

	"icicle/internal/obs"
	"icicle/internal/pmu"
)

// mpxRotations counts counter-window rotations process-wide: the
// observable cost of multiplexing (each rotation is a reprogram of the
// counter file and a scaling-error opportunity). Per-run counts are on
// Multiplexer.Rotations.
var mpxRotations = obs.Default().Counter(
	"icicle_perf_mpx_rotations_total",
	"counter-window rotations performed by the perf multiplexer")

// Multiplexer time-slices more counter groups than the hardware has
// counters (the classic perf/MPX technique the paper cites as the software
// answer to counter pressure [70][73]): every quantum it harvests the
// active groups, rotates the window, and reprograms the counter file
// through the CSR interface. Final values are scaled by total/active time,
// so events with stationary rates are estimated accurately while the
// hardware only ever tracks NumHPMCounters groups at once.
//
// Attach Tick as the core's cycle hook.
type Multiplexer struct {
	dev     *pmu.PMU
	groups  []Group
	sels    []pmu.Selector
	quantum uint64
	slots   int

	accum     []uint64 // harvested counts per group
	active    []uint64 // cycles each group was live
	cur       int      // rotation position (first active group)
	last      uint64   // cycle of the last rotation
	cycles    uint64   // total observed cycles
	rotations uint64   // window rotations performed
}

// NewMultiplexer validates the plan (which may exceed the counter file)
// and programs the first window. quantum is the rotation period in cycles.
func NewMultiplexer(dev *pmu.PMU, plan Plan, quantum uint64) (*Multiplexer, error) {
	if quantum == 0 {
		return nil, fmt.Errorf("perf: zero multiplexing quantum")
	}
	if len(plan.Groups) == 0 {
		return nil, fmt.Errorf("perf: empty plan")
	}
	// Validate group contents only (the size limit is what multiplexing
	// lifts).
	for _, g := range plan.Groups {
		if err := (Plan{Groups: []Group{g}}).Validate(dev.Space); err != nil {
			return nil, err
		}
	}
	sels, err := selectorsUnchecked(plan, dev.Space)
	if err != nil {
		return nil, err
	}
	m := &Multiplexer{
		dev:     dev,
		groups:  plan.Groups,
		sels:    sels,
		quantum: quantum,
		slots:   min(len(plan.Groups), pmu.NumHPMCounters),
		accum:   make([]uint64, len(plan.Groups)),
		active:  make([]uint64, len(plan.Groups)),
	}
	m.program()
	dev.WriteCSR(pmu.CSRMCountInhibit, 0)
	return m, nil
}

func selectorsUnchecked(p Plan, space *pmu.Space) ([]pmu.Selector, error) {
	sels := make([]pmu.Selector, len(p.Groups))
	for i, g := range p.Groups {
		for _, name := range g {
			idx, err := space.Index(name)
			if err != nil {
				return nil, err
			}
			e := space.Events[idx]
			sels[i].Set = e.Set
			sels[i].Mask |= 1 << uint(e.Bit)
		}
	}
	return sels, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// program writes the current window's selectors into the counter file.
func (m *Multiplexer) program() {
	for s := 0; s < m.slots; s++ {
		g := (m.cur + s) % len(m.groups)
		m.dev.WriteCSR(pmu.CSRMHPMEvent3+uint16(s), m.sels[g].Encode())
		m.dev.WriteCSR(pmu.CSRMHPMCounter3+uint16(s), 0)
	}
}

// harvest accumulates the active window's counts.
func (m *Multiplexer) harvest(elapsed uint64) {
	for s := 0; s < m.slots; s++ {
		g := (m.cur + s) % len(m.groups)
		m.accum[g] += m.dev.ReadCSR(pmu.CSRMHPMCounter3 + uint16(s))
		m.active[g] += elapsed
	}
}

// Tick is the per-cycle hook: it rotates the window on quantum
// boundaries. The sample argument is unused (it exists to match the
// cores' CycleHook signature).
func (m *Multiplexer) Tick(cycle uint64, _ pmu.Sample) {
	m.cycles = cycle + 1
	if m.slots == len(m.groups) {
		return // everything fits: no rotation needed
	}
	if cycle-m.last+1 < m.quantum {
		return
	}
	m.harvest(cycle - m.last + 1)
	m.cur = (m.cur + m.slots) % len(m.groups)
	m.program()
	m.last = cycle + 1
	m.rotations++
	mpxRotations.Inc()
}

// Rotations reports how many window rotations this multiplexer performed.
func (m *Multiplexer) Rotations() uint64 { return m.rotations }

// Finish harvests the final window; call once after simulation ends.
func (m *Multiplexer) Finish() {
	if m.slots == len(m.groups) {
		m.harvest(m.cycles)
		return
	}
	if m.cycles > m.last {
		m.harvest(m.cycles - m.last)
	}
	m.last = m.cycles
}

// Estimates returns the scaled per-group counts, keyed like Plan.Read.
// Groups that were never active estimate zero.
func (m *Multiplexer) Estimates() map[string]uint64 {
	out := make(map[string]uint64, len(m.groups))
	for i, g := range m.groups {
		v := m.accum[i]
		if m.active[i] > 0 && m.active[i] < m.cycles {
			v = uint64(float64(v) * float64(m.cycles) / float64(m.active[i]))
		}
		out[groupKey(g)] = v
	}
	return out
}

// ActiveFraction reports the share of cycles group i was live (1.0 when
// the plan fits without multiplexing).
func (m *Multiplexer) ActiveFraction(i int) float64 {
	if m.cycles == 0 || i < 0 || i >= len(m.groups) {
		return 0
	}
	return float64(m.active[i]) / float64(m.cycles)
}
