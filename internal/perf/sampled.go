package perf

import (
	"icicle/internal/boom"
	"icicle/internal/core"
	"icicle/internal/kernel"
	"icicle/internal/rocket"
	"icicle/internal/sample"
)

// Dense tally indices for Rocket's fixed event space, resolved once:
// sampled windows diff the dense slices, so the counts glue must not do
// per-event name lookups.
var rocketIdx = struct {
	instIssued, instRet, fetchBubbles, recovering,
	replay, brMispredict, fence,
	icacheBlocked, dcacheBlocked,
	itlbMiss, dtlbMiss, l2tlbMiss int
}{
	instIssued:    rocket.Events.MustIndex(rocket.EvInstIssued),
	instRet:       rocket.Events.MustIndex(rocket.EvInstRet),
	fetchBubbles:  rocket.Events.MustIndex(rocket.EvFetchBubbles),
	recovering:    rocket.Events.MustIndex(rocket.EvRecovering),
	replay:        rocket.Events.MustIndex(rocket.EvReplay),
	brMispredict:  rocket.Events.MustIndex(rocket.EvBrMispredict),
	fence:         rocket.Events.MustIndex(rocket.EvFence),
	icacheBlocked: rocket.Events.MustIndex(rocket.EvICacheBlocked),
	dcacheBlocked: rocket.Events.MustIndex(rocket.EvDCacheBlocked),
	itlbMiss:      rocket.Events.MustIndex(rocket.EvITLBMiss),
	dtlbMiss:      rocket.Events.MustIndex(rocket.EvDTLBMiss),
	l2tlbMiss:     rocket.Events.MustIndex(rocket.EvL2TLBMiss),
}

// RocketCountsFn returns the dense-tally analogue of RocketCounts for
// the sampling controller.
func RocketCountsFn() sample.CountsFn {
	return func(cycles, insts uint64, tally []uint64) core.Counts {
		return core.Counts{
			Cycles:        cycles,
			InstRet:       insts,
			UopsIssued:    tally[rocketIdx.instIssued],
			UopsRetired:   tally[rocketIdx.instRet],
			FetchBubbles:  tally[rocketIdx.fetchBubbles],
			Recovering:    tally[rocketIdx.recovering],
			Flushes:       tally[rocketIdx.replay],
			BrMispred:     tally[rocketIdx.brMispredict],
			FenceRetired:  tally[rocketIdx.fence],
			ICacheBlocked: tally[rocketIdx.icacheBlocked],
			DCacheBlocked: tally[rocketIdx.dcacheBlocked],
			ITLBMisses:    tally[rocketIdx.itlbMiss],
			DTLBMisses:    tally[rocketIdx.dtlbMiss],
			L2TLBMisses:   tally[rocketIdx.l2tlbMiss],
		}
	}
}

// BoomCountsFn returns the dense-tally analogue of BoomCounts for the
// sampling controller. BOOM's event space is per-configuration, so the
// indices are resolved from the given core's space.
func BoomCountsFn(c *boom.Core) sample.CountsFn {
	s := c.Space
	var idx = struct {
		uopsIssued, uopsRetired, fetchBubbles, recovering,
		flush, brMispredict, fenceRetired,
		icacheBlocked, dcacheBlocked,
		itlbMiss, dtlbMiss, l2tlbMiss int
	}{
		uopsIssued:    s.MustIndex(boom.EvUopsIssued),
		uopsRetired:   s.MustIndex(boom.EvUopsRetired),
		fetchBubbles:  s.MustIndex(boom.EvFetchBubbles),
		recovering:    s.MustIndex(boom.EvRecovering),
		flush:         s.MustIndex(boom.EvFlush),
		brMispredict:  s.MustIndex(boom.EvBrMispredict),
		fenceRetired:  s.MustIndex(boom.EvFenceRetired),
		icacheBlocked: s.MustIndex(boom.EvICacheBlocked),
		dcacheBlocked: s.MustIndex(boom.EvDCacheBlocked),
		itlbMiss:      s.MustIndex(boom.EvITLBMiss),
		dtlbMiss:      s.MustIndex(boom.EvDTLBMiss),
		l2tlbMiss:     s.MustIndex(boom.EvL2TLBMiss),
	}
	return func(cycles, insts uint64, tally []uint64) core.Counts {
		flush, bm := tally[idx.flush], tally[idx.brMispredict]
		var clears uint64
		if flush > bm {
			clears = flush - bm
		}
		return core.Counts{
			Cycles:        cycles,
			InstRet:       insts,
			UopsIssued:    tally[idx.uopsIssued],
			UopsRetired:   tally[idx.uopsRetired],
			FetchBubbles:  tally[idx.fetchBubbles],
			Recovering:    tally[idx.recovering],
			Flushes:       clears,
			BrMispred:     bm,
			FenceRetired:  tally[idx.fenceRetired],
			ICacheBlocked: tally[idx.icacheBlocked],
			DCacheBlocked: tally[idx.dcacheBlocked],
			ITLBMisses:    tally[idx.itlbMiss],
			DTLBMisses:    tally[idx.dtlbMiss],
			L2TLBMisses:   tally[idx.l2tlbMiss],
		}
	}
}

// RocketEventNames labels Rocket's dense tally for sample reports.
func RocketEventNames() []string {
	names := make([]string, len(rocket.Events.Events))
	for i, e := range rocket.Events.Events {
		names[i] = e.Name
	}
	return names
}

// BoomEventNames labels the given core's dense tally for sample reports.
func BoomEventNames(c *boom.Core) []string {
	names := make([]string, len(c.Space.Events))
	for i, e := range c.Space.Events {
		names[i] = e.Name
	}
	return names
}

// SampleRocket runs the kernel on Rocket under the sampling policy with
// default options and returns the extrapolated result, report, and TMA
// breakdown.
func SampleRocket(cfg rocket.Config, k *kernel.Kernel, p sample.Policy) (rocket.Result, *sample.Report, core.Breakdown, error) {
	prog, err := k.Program()
	if err != nil {
		return rocket.Result{}, nil, core.Breakdown{}, err
	}
	return SampleRocketOn(rocket.New(cfg, prog), k, p, sample.Options{})
}

// SampleRocketOn resets an existing core and runs the kernel under the
// sampling policy. Zero-valued Options fields are filled with the Rocket
// defaults; the returned Result carries extrapolated cycle and event
// totals (Result.Cycles is the estimate, Result.Insts is exact).
func SampleRocketOn(c *rocket.Core, k *kernel.Kernel, p sample.Policy, o sample.Options) (rocket.Result, *sample.Report, core.Breakdown, error) {
	prog, err := k.Program()
	if err != nil {
		return rocket.Result{}, nil, core.Breakdown{}, err
	}
	c.Reset(prog)
	if o.Counts == nil {
		o.Counts = RocketCountsFn()
	}
	if o.TMA.CommitWidth == 0 {
		o.TMA = core.DefaultConfig(1, 1)
	}
	if o.EventNames == nil {
		o.EventNames = RocketEventNames()
	}
	rep, err := sample.Run(sample.Target{Core: c, CPU: c.CPU, Hier: c.Hier, Pred: c.Pred}, p, o)
	if err != nil {
		return rocket.Result{}, nil, core.Breakdown{}, err
	}
	res := rocket.Result{
		Cycles: rep.EstCycles,
		Insts:  rep.TotalInsts,
		Tally:  rep.ScaledTallyMap(),
		L1I:    c.Hier.L1I.Stats(),
		L1D:    c.Hier.L1D.Stats(),
		L2:     c.Hier.L2.Stats(),
		Exit:   rep.Exit,
	}
	return res, rep, rep.Breakdown, nil
}

// SampleBoom runs the kernel on BOOM under the sampling policy with
// default options.
func SampleBoom(cfg boom.Config, k *kernel.Kernel, p sample.Policy) (boom.Result, *sample.Report, core.Breakdown, error) {
	prog, err := k.Program()
	if err != nil {
		return boom.Result{}, nil, core.Breakdown{}, err
	}
	c, err := boom.New(cfg, prog)
	if err != nil {
		return boom.Result{}, nil, core.Breakdown{}, err
	}
	return SampleBoomOn(c, k, p, sample.Options{})
}

// SampleBoomOn resets an existing core and runs the kernel under the
// sampling policy, filling zero-valued Options with the BOOM defaults.
func SampleBoomOn(c *boom.Core, k *kernel.Kernel, p sample.Policy, o sample.Options) (boom.Result, *sample.Report, core.Breakdown, error) {
	prog, err := k.Program()
	if err != nil {
		return boom.Result{}, nil, core.Breakdown{}, err
	}
	c.Reset(prog)
	if o.Counts == nil {
		o.Counts = BoomCountsFn(c)
	}
	if o.TMA.CommitWidth == 0 {
		o.TMA = core.DefaultConfig(c.Cfg.DecodeWidth, c.Cfg.IssueWidth)
	}
	if o.EventNames == nil {
		o.EventNames = BoomEventNames(c)
	}
	rep, err := sample.Run(sample.Target{Core: c, CPU: c.CPU, Hier: c.Hier, Pred: c.Pred}, p, o)
	if err != nil {
		return boom.Result{}, nil, core.Breakdown{}, err
	}
	res := boom.Result{
		Cycles:    rep.EstCycles,
		Insts:     rep.TotalInsts,
		Tally:     rep.ScaledTallyMap(),
		LaneTally: map[string][]uint64{},
		L1I:       c.Hier.L1I.Stats(),
		L1D:       c.Hier.L1D.Stats(),
		L2:        c.Hier.L2.Stats(),
		Exit:      rep.Exit,
	}
	return res, rep, rep.Breakdown, nil
}
