package perf

import (
	"fmt"
	"strings"

	"icicle/internal/pmu"
)

// DumpBase is the default memory address instrumented workloads dump their
// counters to (one dword per counter, then cycles and instret).
const DumpBase = 0x70_0000

// Instrument wraps a workload's assembly source with the in-band
// measurement shims, the way the paper's FireMarshal wrapper bakes the CSR
// boot sequence into an image (§IV-D): the boot shim programs the counter
// file before the first workload instruction, and the readout shim dumps
// every counter to memory right before the final ecall.
//
// The workload must end in a single trailing `ecall` (every kernel in
// internal/kernel does); Instrument splices the readout before it.
func Instrument(src string, plan Plan, space *pmu.Space, dumpBase uint64) (string, error) {
	boot, err := plan.BootShim(space)
	if err != nil {
		return "", err
	}
	idx := strings.LastIndex(src, "ecall")
	if idx < 0 {
		return "", fmt.Errorf("perf: workload has no final ecall to instrument")
	}
	readout := plan.ReadoutShim(dumpBase)
	return boot + src[:idx] + readout + "\tecall\n" + src[idx+len("ecall"):], nil
}

// DumpLayout describes where Instrument's readout lands in memory.
type DumpLayout struct {
	Base    uint64
	Groups  []Group
	nExtras int
}

// Layout returns the dump layout for a plan.
func (p Plan) Layout(base uint64) DumpLayout {
	return DumpLayout{Base: base, Groups: p.Groups, nExtras: 2}
}

// Mem is the minimal memory-read interface the decoder needs.
type Mem interface {
	Load(addr uint64, size int) uint64
}

// ReadDump decodes an instrumented run's counter dump from simulated
// memory, returning group-keyed counts plus "cycles" and "instret".
func (l DumpLayout) ReadDump(m Mem) map[string]uint64 {
	out := make(map[string]uint64, len(l.Groups)+l.nExtras)
	for i, g := range l.Groups {
		out[groupKey(g)] = m.Load(l.Base+uint64(8*i), 8)
	}
	out["cycles"] = m.Load(l.Base+uint64(8*len(l.Groups)), 8)
	out["instret"] = m.Load(l.Base+uint64(8*(len(l.Groups)+1)), 8)
	return out
}
