package perf

import (
	"icicle/internal/boom"
	"icicle/internal/core"
	"icicle/internal/kernel"
	"icicle/internal/rocket"
)

// RocketCounts maps a Rocket run's exact event tallies onto the TMA model
// inputs. Rocket is single-issue, so µops ≡ instructions; machine-clear
// flushes are D$-miss replays.
func RocketCounts(res rocket.Result) core.Counts {
	return core.Counts{
		Cycles:        res.Cycles,
		InstRet:       res.Insts,
		UopsIssued:    res.Tally[rocket.EvInstIssued],
		UopsRetired:   res.Tally[rocket.EvInstRet],
		FetchBubbles:  res.Tally[rocket.EvFetchBubbles],
		Recovering:    res.Tally[rocket.EvRecovering],
		Flushes:       res.Tally[rocket.EvReplay],
		BrMispred:     res.Tally[rocket.EvBrMispredict],
		FenceRetired:  res.Tally[rocket.EvFence],
		ICacheBlocked: res.Tally[rocket.EvICacheBlocked],
		DCacheBlocked: res.Tally[rocket.EvDCacheBlocked],
		ITLBMisses:    res.Tally[rocket.EvITLBMiss],
		DTLBMisses:    res.Tally[rocket.EvDTLBMiss],
		L2TLBMisses:   res.Tally[rocket.EvL2TLBMiss],
	}
}

// BoomCounts maps a BOOM run's exact event tallies onto the TMA model
// inputs. The Flush event counts every pipeline flush; branch mispredicts
// are recorded separately, so machine clears are the difference.
func BoomCounts(res boom.Result) core.Counts {
	flush := res.Tally[boom.EvFlush]
	bm := res.Tally[boom.EvBrMispredict]
	var clears uint64
	if flush > bm {
		clears = flush - bm
	}
	return core.Counts{
		Cycles:        res.Cycles,
		InstRet:       res.Insts,
		UopsIssued:    res.Tally[boom.EvUopsIssued],
		UopsRetired:   res.Tally[boom.EvUopsRetired],
		FetchBubbles:  res.Tally[boom.EvFetchBubbles],
		Recovering:    res.Tally[boom.EvRecovering],
		Flushes:       clears,
		BrMispred:     bm,
		FenceRetired:  res.Tally[boom.EvFenceRetired],
		ICacheBlocked: res.Tally[boom.EvICacheBlocked],
		DCacheBlocked: res.Tally[boom.EvDCacheBlocked],
		ITLBMisses:    res.Tally[boom.EvITLBMiss],
		DTLBMisses:    res.Tally[boom.EvDTLBMiss],
		L2TLBMisses:   res.Tally[boom.EvL2TLBMiss],
	}
}

// RunRocket simulates the kernel on Rocket and evaluates TMA.
func RunRocket(cfg rocket.Config, k *kernel.Kernel) (rocket.Result, core.Breakdown, error) {
	prog, err := k.Program()
	if err != nil {
		return rocket.Result{}, core.Breakdown{}, err
	}
	return RunRocketOn(rocket.New(cfg, prog), k)
}

// RunRocketOn resets an existing core, simulates the kernel on it, and
// evaluates TMA. This is the pooled-core path of internal/sim: results
// are byte-identical to RunRocket with a fresh core.
func RunRocketOn(c *rocket.Core, k *kernel.Kernel) (rocket.Result, core.Breakdown, error) {
	if err := SimulateRocketOn(c, k); err != nil {
		return rocket.Result{}, core.Breakdown{}, err
	}
	return TallyRocket(c)
}

// SimulateRocketOn is the cycle-accurate half of RunRocketOn: program,
// reset, and run to completion. Split out so callers (the sim pipeline
// spans) can time simulation and tallying separately.
func SimulateRocketOn(c *rocket.Core, k *kernel.Kernel) error {
	prog, err := k.Program()
	if err != nil {
		return err
	}
	c.Reset(prog)
	return c.RunCycles()
}

// TallyRocket is the evaluation half of RunRocketOn: extract the dense
// event tallies and evaluate the TMA tree over them.
func TallyRocket(c *rocket.Core) (rocket.Result, core.Breakdown, error) {
	res := c.Result()
	b, err := core.Evaluate(core.DefaultConfig(1, 1), RocketCounts(res))
	return res, b, err
}

// RunBoom simulates the kernel on BOOM and evaluates TMA.
func RunBoom(cfg boom.Config, k *kernel.Kernel) (boom.Result, core.Breakdown, error) {
	prog, err := k.Program()
	if err != nil {
		return boom.Result{}, core.Breakdown{}, err
	}
	c, err := boom.New(cfg, prog)
	if err != nil {
		return boom.Result{}, core.Breakdown{}, err
	}
	return RunBoomOn(c, k)
}

// RunBoomOn resets an existing core, simulates the kernel on it, and
// evaluates TMA. This is the pooled-core path of internal/sim: results
// are byte-identical to RunBoom with a fresh core.
func RunBoomOn(c *boom.Core, k *kernel.Kernel) (boom.Result, core.Breakdown, error) {
	if err := SimulateBoomOn(c, k); err != nil {
		return boom.Result{}, core.Breakdown{}, err
	}
	return TallyBoom(c)
}

// SimulateBoomOn is the cycle-accurate half of RunBoomOn.
func SimulateBoomOn(c *boom.Core, k *kernel.Kernel) error {
	prog, err := k.Program()
	if err != nil {
		return err
	}
	c.Reset(prog)
	return c.RunCycles()
}

// TallyBoom is the evaluation half of RunBoomOn.
func TallyBoom(c *boom.Core) (boom.Result, core.Breakdown, error) {
	res := c.Result()
	b, err := core.Evaluate(core.DefaultConfig(c.Cfg.DecodeWidth, c.Cfg.IssueWidth), BoomCounts(res))
	return res, b, err
}
