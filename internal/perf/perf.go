// Package perf is Icicle's software harness (§IV-D): it programs PMU
// counters through the same CSR interface the hardware exposes (the
// four-step sequence: enable, write event-set IDs, set event masks, clear
// the inhibit bit), reads them back, and feeds the TMA model. It supports
// the out-of-band path (Go calls against the PMU) and the in-band path
// (CSR instructions assembled into the workload image, as the OpenSBI boot
// shim would on Linux).
package perf

import (
	"fmt"
	"strings"

	"icicle/internal/core"
	"icicle/internal/pmu"
)

// Group is one counter's event selection: a set of same-set event names.
type Group []string

// Plan assigns groups to the 29 programmable counters.
type Plan struct {
	Groups []Group
}

// Validate checks the plan fits the counter file and the event-set rules.
func (p Plan) Validate(space *pmu.Space) error {
	if len(p.Groups) > pmu.NumHPMCounters {
		return fmt.Errorf("perf: %d groups exceed %d counters (multiplexing is not implemented; split the run)",
			len(p.Groups), pmu.NumHPMCounters)
	}
	for i, g := range p.Groups {
		var set uint8
		for j, name := range g {
			idx, err := space.Index(name)
			if err != nil {
				return fmt.Errorf("perf: counter %d: %w", i, err)
			}
			e := space.Events[idx]
			if j == 0 {
				set = e.Set
			} else if e.Set != set {
				return fmt.Errorf("perf: counter %d mixes event sets %d and %d (%q)", i, set, e.Set, name)
			}
		}
	}
	return nil
}

// Selectors compiles the plan into mhpmevent register values.
func (p Plan) Selectors(space *pmu.Space) ([]pmu.Selector, error) {
	if err := p.Validate(space); err != nil {
		return nil, err
	}
	sels := make([]pmu.Selector, len(p.Groups))
	for i, g := range p.Groups {
		for _, name := range g {
			e := space.Events[space.MustIndex(name)]
			sels[i].Set = e.Set
			sels[i].Mask |= 1 << uint(e.Bit)
		}
	}
	return sels, nil
}

// Apply programs the PMU through its CSR interface, performing the
// harness's four steps (§IV-D):
//  1. enable the CSR file (counters writable — implicit in this model),
//  2. write the 8-bit event-set ID into each control register,
//  3. set the 56-bit event mask,
//  4. clear the inhibit bits so counting begins.
func (p Plan) Apply(dev *pmu.PMU) error {
	sels, err := p.Selectors(dev.Space)
	if err != nil {
		return err
	}
	for i, s := range sels {
		// Steps 2+3 are one CSR write: mhpmevent packs set|mask<<8.
		dev.WriteCSR(pmu.CSRMHPMEvent3+uint16(i), s.Encode())
		dev.WriteCSR(pmu.CSRMHPMCounter3+uint16(i), 0)
	}
	dev.WriteCSR(pmu.CSRMCountInhibit, 0) // step 4
	return nil
}

// BootShim renders the plan as the CSR instruction sequence an OpenSBI
// boot shim would execute in M-mode before handing control to the
// workload (the FireMarshal-wrapper path of §IV-D). The output assembles
// with internal/asm.
func (p Plan) BootShim(space *pmu.Space) (string, error) {
	sels, err := p.Selectors(space)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString("\t# --- perf boot shim: program PMU counters ---\n")
	for i, s := range sels {
		fmt.Fprintf(&sb, "\tli   t0, %d\n", s.Encode())
		fmt.Fprintf(&sb, "\tcsrw mhpmevent%d, t0\n", i+3)
		fmt.Fprintf(&sb, "\tcsrw mhpmcounter%d, x0\n", i+3)
	}
	sb.WriteString("\tcsrw mcountinhibit, x0\n")
	sb.WriteString("\t# --- end shim ---\n")
	return sb.String(), nil
}

// ReadoutShim renders CSR reads that dump every programmed counter to a
// memory region (one dword per counter, then cycles and instret) before
// the workload's final ecall. Out-of-band tooling reads them back from
// simulated memory.
func (p Plan) ReadoutShim(base uint64) string {
	var sb strings.Builder
	sb.WriteString("\t# --- perf readout shim ---\n")
	fmt.Fprintf(&sb, "\tli   t0, %d\n", base)
	for i := range p.Groups {
		fmt.Fprintf(&sb, "\tcsrr t1, mhpmcounter%d\n", i+3)
		fmt.Fprintf(&sb, "\tsd   t1, %d(t0)\n", 8*i)
	}
	fmt.Fprintf(&sb, "\tcsrr t1, cycle\n\tsd   t1, %d(t0)\n", 8*len(p.Groups))
	fmt.Fprintf(&sb, "\tcsrr t1, instret\n\tsd   t1, %d(t0)\n", 8*(len(p.Groups)+1))
	sb.WriteString("\t# --- end shim ---\n")
	return sb.String()
}

// Read returns the counter values for the plan's groups.
func (p Plan) Read(dev *pmu.PMU) map[string]uint64 {
	out := make(map[string]uint64, len(p.Groups))
	for i, g := range p.Groups {
		out[groupKey(g)] = dev.ReadCSR(pmu.CSRMHPMCounter3 + uint16(i))
	}
	out["cycles"] = dev.ReadCSR(pmu.CSRCycle)
	out["instret"] = dev.ReadCSR(pmu.CSRInstret)
	return out
}

func groupKey(g Group) string { return strings.Join(g, "+") }

// TMAPlan returns the canonical counter plan for TMA on a BOOM-style event
// space: one counter per TMA input event.
func TMAPlan(events ...string) Plan {
	groups := make([]Group, len(events))
	for i, e := range events {
		groups[i] = Group{e}
	}
	return Plan{Groups: groups}
}

// CountsFromPMU assembles TMA inputs from a programmed PMU given the
// per-event counter order used by TMAPlan.
func CountsFromPMU(dev *pmu.PMU, names []string) (core.Counts, error) {
	read := func(name string) (uint64, error) {
		for i, n := range names {
			if n == name {
				return dev.Read(i), nil
			}
		}
		return 0, fmt.Errorf("perf: event %q not in plan", name)
	}
	var c core.Counts
	c.Cycles = dev.Cycles()
	c.InstRet = dev.Instret()
	var err error
	assign := func(dst *uint64, name string) {
		if err != nil {
			return
		}
		*dst, err = read(name)
	}
	assign(&c.UopsIssued, "uops-issued")
	assign(&c.UopsRetired, "uops-retired")
	assign(&c.FetchBubbles, "fetch-bubbles")
	assign(&c.Recovering, "recovering")
	assign(&c.FenceRetired, "fence-retired")
	assign(&c.ICacheBlocked, "icache-blocked")
	assign(&c.DCacheBlocked, "dcache-blocked")
	if err != nil {
		return core.Counts{}, err
	}
	return c, nil
}
