package perf

import (
	"fmt"
	"sync"

	"icicle/internal/boom"
	"icicle/internal/core"
	"icicle/internal/isa"
	"icicle/internal/kernel"
	"icicle/internal/mem"
	"icicle/internal/rocket"
	"icicle/internal/sample"
)

// Plan cache: the producer pass of the two-phase sampled engine is a
// full functional run of the program, which would dominate sampled wall
// time if repeated per job (BENCH_5.json: fast-forward is ~2/3 of a
// serial sampled run). A plan depends only on the program and the
// sampling cadence — not on the core config or the window length — so
// one cached plan serves a whole config sweep on both core models. The
// cache is process-wide with singleflight builds, like sim's job cache.
type planEntry struct {
	done chan struct{}
	plan *sample.Plan
	err  error
}

var (
	planMu    sync.Mutex
	planCache = map[string]*planEntry{}
)

// PlanFor returns the (possibly cached) window plan for the kernel under
// the policy's cadence. Options only matter for the build (tracing and
// telemetry of the producer pass); cache hits ignore them.
func PlanFor(k *kernel.Kernel, p sample.Policy, o sample.Options) (*sample.Plan, error) {
	key := k.Name + "|" + p.ScheduleKey()
	planMu.Lock()
	if e, ok := planCache[key]; ok {
		planMu.Unlock()
		<-e.done
		return e.plan, e.err
	}
	e := &planEntry{done: make(chan struct{})}
	planCache[key] = e
	planMu.Unlock()
	e.plan, e.err = buildPlan(k, p, o)
	close(e.done)
	return e.plan, e.err
}

// ResetPlanCache drops every cached plan (benchmark ablations measure
// cold builds with this).
func ResetPlanCache() {
	planMu.Lock()
	planCache = map[string]*planEntry{}
	planMu.Unlock()
}

// buildPlan runs the producer pass on a dedicated functional CPU.
func buildPlan(k *kernel.Kernel, p sample.Policy, o sample.Options) (*sample.Plan, error) {
	prog, err := k.Program()
	if err != nil {
		return nil, err
	}
	m := mem.NewSparse()
	prog.LoadInto(m)
	cpu := isa.NewCPU(m, prog.Entry)
	return sample.BuildPlan(cpu, m, p, o)
}

// SampleRocketParOn runs the kernel on Rocket under the two-phase
// sampled engine, fanning the plan's detailed windows over the given
// worker cores (all built with the same config; each is Reset first).
// One core is the serial reference — the report is bit-identical for any
// worker count. memo, when non-nil, caches per-window results across
// runs. The returned Result carries extrapolated totals like
// SampleRocketOn, except the cache-stats fields stay zero: per-window
// hierarchy resets make cumulative cache counters meaningless here.
func SampleRocketParOn(cs []*rocket.Core, k *kernel.Kernel, p sample.Policy, o sample.Options, memo sample.WindowMemo) (rocket.Result, *sample.Report, core.Breakdown, error) {
	if len(cs) == 0 {
		return rocket.Result{}, nil, core.Breakdown{}, fmt.Errorf("perf: no worker cores")
	}
	prog, err := k.Program()
	if err != nil {
		return rocket.Result{}, nil, core.Breakdown{}, err
	}
	if o.Counts == nil {
		o.Counts = RocketCountsFn()
	}
	if o.TMA.CommitWidth == 0 {
		o.TMA = core.DefaultConfig(1, 1)
	}
	if o.EventNames == nil {
		o.EventNames = RocketEventNames()
	}
	plan, err := PlanFor(k, p, o)
	if err != nil {
		return rocket.Result{}, nil, core.Breakdown{}, err
	}
	targets := make([]sample.Target, len(cs))
	for i, c := range cs {
		c.Reset(prog)
		targets[i] = sample.Target{Core: c, CPU: c.CPU, Hier: c.Hier, Pred: c.Pred, Mem: c.Memory()}
	}
	rep, err := sample.RunPlan(plan, p, o, sample.Par{
		Targets:    targets,
		Memo:       memo,
		MemoPrefix: fmt.Sprintf("rocket|%+v|%s", cs[0].Cfg, k.Name),
	})
	if err != nil {
		return rocket.Result{}, nil, core.Breakdown{}, err
	}
	res := rocket.Result{
		Cycles: rep.EstCycles,
		Insts:  rep.TotalInsts,
		Tally:  rep.ScaledTallyMap(),
		Exit:   rep.Exit,
	}
	return res, rep, rep.Breakdown, nil
}

// SampleRocketPar is SampleRocketParOn with workers fresh cores.
func SampleRocketPar(cfg rocket.Config, k *kernel.Kernel, p sample.Policy, o sample.Options, workers int) (rocket.Result, *sample.Report, core.Breakdown, error) {
	if workers < 1 {
		workers = 1
	}
	prog, err := k.Program()
	if err != nil {
		return rocket.Result{}, nil, core.Breakdown{}, err
	}
	cs := make([]*rocket.Core, workers)
	for i := range cs {
		cs[i] = rocket.New(cfg, prog)
	}
	return SampleRocketParOn(cs, k, p, o, nil)
}

// SampleBoomParOn is the BOOM counterpart of SampleRocketParOn.
func SampleBoomParOn(cs []*boom.Core, k *kernel.Kernel, p sample.Policy, o sample.Options, memo sample.WindowMemo) (boom.Result, *sample.Report, core.Breakdown, error) {
	if len(cs) == 0 {
		return boom.Result{}, nil, core.Breakdown{}, fmt.Errorf("perf: no worker cores")
	}
	prog, err := k.Program()
	if err != nil {
		return boom.Result{}, nil, core.Breakdown{}, err
	}
	if o.Counts == nil {
		o.Counts = BoomCountsFn(cs[0])
	}
	if o.TMA.CommitWidth == 0 {
		o.TMA = core.DefaultConfig(cs[0].Cfg.DecodeWidth, cs[0].Cfg.IssueWidth)
	}
	if o.EventNames == nil {
		o.EventNames = BoomEventNames(cs[0])
	}
	plan, err := PlanFor(k, p, o)
	if err != nil {
		return boom.Result{}, nil, core.Breakdown{}, err
	}
	targets := make([]sample.Target, len(cs))
	for i, c := range cs {
		c.Reset(prog)
		targets[i] = sample.Target{Core: c, CPU: c.CPU, Hier: c.Hier, Pred: c.Pred, Mem: c.Memory()}
	}
	rep, err := sample.RunPlan(plan, p, o, sample.Par{
		Targets:    targets,
		Memo:       memo,
		MemoPrefix: fmt.Sprintf("boom|%+v|%s", cs[0].Cfg, k.Name),
	})
	if err != nil {
		return boom.Result{}, nil, core.Breakdown{}, err
	}
	res := boom.Result{
		Cycles:    rep.EstCycles,
		Insts:     rep.TotalInsts,
		Tally:     rep.ScaledTallyMap(),
		LaneTally: map[string][]uint64{},
		Exit:      rep.Exit,
	}
	return res, rep, rep.Breakdown, nil
}

// SampleBoomPar is SampleBoomParOn with workers fresh cores.
func SampleBoomPar(cfg boom.Config, k *kernel.Kernel, p sample.Policy, o sample.Options, workers int) (boom.Result, *sample.Report, core.Breakdown, error) {
	if workers < 1 {
		workers = 1
	}
	prog, err := k.Program()
	if err != nil {
		return boom.Result{}, nil, core.Breakdown{}, err
	}
	cs := make([]*boom.Core, workers)
	for i := range cs {
		c, err := boom.New(cfg, prog)
		if err != nil {
			return boom.Result{}, nil, core.Breakdown{}, err
		}
		cs[i] = c
	}
	return SampleBoomParOn(cs, k, p, o, nil)
}
