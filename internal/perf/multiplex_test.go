package perf

import (
	"fmt"
	"math"
	"testing"

	"icicle/internal/boom"
	"icicle/internal/kernel"
	"icicle/internal/pmu"
	"icicle/internal/rocket"
)

func TestMultiplexerValidation(t *testing.T) {
	dev := pmu.New(rocket.Events, pmu.AddWires)
	if _, err := NewMultiplexer(dev, Plan{}, 100); err == nil {
		t.Fatal("empty plan accepted")
	}
	if _, err := NewMultiplexer(dev, TMAPlan(rocket.EvCycles), 0); err == nil {
		t.Fatal("zero quantum accepted")
	}
	if _, err := NewMultiplexer(dev, Plan{Groups: []Group{{"bogus"}}}, 100); err == nil {
		t.Fatal("unknown event accepted")
	}
}

func TestMultiplexerExactWhenPlanFits(t *testing.T) {
	// With ≤29 groups, no rotation happens and estimates are exact.
	k, _ := kernel.ByName("vvadd")
	c := rocket.New(rocket.DefaultConfig(), k.MustProgram())
	plan := TMAPlan(rocket.EvInstIssued, rocket.EvFetchBubbles)
	m, err := NewMultiplexer(c.PMU, plan, 1000)
	if err != nil {
		t.Fatal(err)
	}
	c.SetCycleHook(m.Tick)
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	m.Finish()
	est := m.Estimates()
	if est[rocket.EvInstIssued] != res.Tally[rocket.EvInstIssued] {
		t.Fatalf("issued estimate %d != exact %d",
			est[rocket.EvInstIssued], res.Tally[rocket.EvInstIssued])
	}
	if m.ActiveFraction(0) != 1.0 {
		t.Fatalf("active fraction %f, want 1", m.ActiveFraction(0))
	}
}

// wideMultiplexPlan builds a plan larger than the counter file by
// replicating steady events across many groups.
func wideMultiplexPlan(n int) Plan {
	events := []string{
		boom.EvUopsIssued, boom.EvUopsRetired, boom.EvFetchBubbles,
		boom.EvDCacheBlocked, boom.EvRecovering, boom.EvBrMispredict,
	}
	var p Plan
	for i := 0; i < n; i++ {
		p.Groups = append(p.Groups, Group{events[i%len(events)]})
	}
	return p
}

func TestMultiplexerEstimatesSteadyEvents(t *testing.T) {
	// 40 groups over 29 counters: each group is live ~72% of the time;
	// scaled estimates of steady-rate events must land near the exact
	// totals.
	k, _ := kernel.ByName("coremark")
	cfg := boom.NewConfig(boom.Large)
	c := boom.MustNew(cfg, k.MustProgram())
	plan := wideMultiplexPlan(40)
	m, err := NewMultiplexer(c.PMU, plan, 512)
	if err != nil {
		t.Fatal(err)
	}
	c.SetCycleHook(m.Tick)
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	m.Finish()
	est := m.Estimates()

	for i := range plan.Groups {
		frac := m.ActiveFraction(i)
		if frac <= 0 || frac > 1 {
			t.Fatalf("group %d active fraction %f", i, frac)
		}
		if frac == 1.0 {
			t.Fatalf("group %d never rotated out of a 40-group plan", i)
		}
	}
	for _, ev := range []string{boom.EvUopsIssued, boom.EvUopsRetired} {
		exact := float64(res.Tally[ev])
		got := float64(est[ev])
		if relErr := math.Abs(got-exact) / exact; relErr > 0.15 {
			t.Errorf("%s: estimate %v vs exact %v (%.1f%% error)",
				ev, got, exact, relErr*100)
		}
	}
}

func TestMultiplexerRareEventsStayBounded(t *testing.T) {
	// Rare bursty events can be mis-scaled but must never be wildly
	// overestimated relative to the theoretical maximum (one per cycle).
	k, _ := kernel.ByName("qsort")
	cfg := boom.NewConfig(boom.Large)
	c := boom.MustNew(cfg, k.MustProgram())
	plan := wideMultiplexPlan(35)
	m, err := NewMultiplexer(c.PMU, plan, 256)
	if err != nil {
		t.Fatal(err)
	}
	c.SetCycleHook(m.Tick)
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	m.Finish()
	if est := m.Estimates()[boom.EvBrMispredict]; est > res.Cycles {
		t.Fatalf("mispredict estimate %d exceeds cycle count %d", est, res.Cycles)
	}
}

func TestMultiplexerGroupKeying(t *testing.T) {
	dev := pmu.New(boom.NewSpace(3, 5), pmu.AddWires)
	plan := Plan{Groups: []Group{{boom.EvUopsIssued, boom.EvFetchBubbles}}}
	m, err := NewMultiplexer(dev, plan, 100)
	if err != nil {
		t.Fatal(err)
	}
	m.Finish()
	key := fmt.Sprintf("%s+%s", boom.EvUopsIssued, boom.EvFetchBubbles)
	if _, ok := m.Estimates()[key]; !ok {
		t.Fatalf("estimates missing combined key %q: %v", key, m.Estimates())
	}
}
