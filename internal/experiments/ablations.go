package experiments

import (
	"fmt"
	"io"

	"icicle/internal/boom"
	"icicle/internal/kernel"
	"icicle/internal/pmu"
	"icicle/internal/sim"
)

// WidthPoint is one point of the distributed-counter width sweep.
type WidthPoint struct {
	Width   uint
	Read    uint64
	Residue uint64
	Lost    uint64
}

// WidthSweepResult is the DESIGN.md ablation: how the distributed
// architecture's local counter width trades read-time undercount against
// correctness (undersized widths drop events outright).
type WidthSweepResult struct {
	Kernel    string
	Event     string
	Exact     uint64
	AutoWidth uint
	Points    []WidthPoint
}

// WidthSweep runs the same workload with forced local-counter widths 1..6
// (width 0 selects the automatic width and supplies the exact count). The
// forced widths require touching the PMU before Run, so the sweep fans
// out via sim.Map rather than the memoizing runner.
func WidthSweep(kernelName, event string) (WidthSweepResult, error) {
	defer phase("WidthSweep")()
	k, err := kernel.ByName(kernelName)
	if err != nil {
		return WidthSweepResult{}, err
	}
	out := WidthSweepResult{Kernel: kernelName, Event: event}
	widths := []uint{0, 1, 2, 3, 4, 5, 6}
	type widthOut struct {
		exact uint64
		auto  uint
		point WidthPoint
	}
	points, err := sim.Map(0, widths, func(_ int, width uint) (widthOut, error) {
		cfg := boom.NewConfig(boom.Large)
		cfg.PMUArch = pmu.Distributed
		c, err := boom.New(cfg, k.MustProgram())
		if err != nil {
			return widthOut{}, err
		}
		c.PMU.DistWidth = width
		if err := c.PMU.ConfigureEvents(0, event); err != nil {
			return widthOut{}, err
		}
		c.PMU.EnableAll()
		res, err := c.Run()
		if err != nil {
			return widthOut{}, err
		}
		if width == 0 {
			return widthOut{exact: res.Tally[event], auto: c.PMU.LocalWidth(0)}, nil
		}
		return widthOut{point: WidthPoint{
			Width:   width,
			Read:    c.PMU.Read(0),
			Residue: c.PMU.Residue(0),
			Lost:    c.PMU.Lost(0),
		}}, nil
	})
	if err != nil {
		return out, err
	}
	out.Exact = points[0].exact
	out.AutoWidth = points[0].auto
	for _, p := range points[1:] {
		out.Points = append(out.Points, p.point)
	}
	return out, nil
}

// Fprint renders the sweep.
func (w WidthSweepResult) Fprint(out io.Writer) {
	fmt.Fprintf(out, "-- ablation: distributed local-counter width (%s / %s, exact %d, auto width %d) --\n",
		w.Kernel, w.Event, w.Exact, w.AutoWidth)
	fmt.Fprintf(out, "%6s %12s %9s %7s %12s\n", "width", "read", "residue", "lost", "read-err%")
	for _, p := range w.Points {
		errPct := 100 * float64(w.Exact-p.Read) / float64(w.Exact)
		fmt.Fprintf(out, "%6d %12d %9d %7d %11.3f%%\n", p.Width, p.Read, p.Residue, p.Lost, errPct)
	}
}

// RASResult is the return-address-stack ablation on a call/return
// dominated workload.
type RASResult struct {
	Kernel             string
	BaseCycles         uint64
	RASCycles          uint64
	BasePCResteer      float64
	RASPCResteer       float64
	BaseCFTargetMisses uint64
	RASCFTargetMisses  uint64
}

// RASAblation compares LargeBOOM with and without the return-address
// stack (a two-job batch through the shared runner).
func RASAblation(kernelName string) (RASResult, error) {
	defer phase("RASAblation")()
	k, err := kernel.ByName(kernelName)
	if err != nil {
		return RASResult{}, err
	}
	base := boom.NewConfig(boom.Large)
	base.UseRAS = false
	ras := boom.NewConfig(boom.Large)
	ras.UseRAS = true
	results := sim.Default().Run([]sim.Job{sim.BoomJob(base, k), sim.BoomJob(ras, k)})
	out := RASResult{Kernel: kernelName}
	for i, res := range results {
		if res.Err != nil {
			return out, res.Err
		}
		if i == 1 {
			out.RASCycles = res.Boom.Cycles
			out.RASPCResteer = res.Breakdown.PCResteer
			out.RASCFTargetMisses = res.Boom.Tally[boom.EvCFTargetMiss]
		} else {
			out.BaseCycles = res.Boom.Cycles
			out.BasePCResteer = res.Breakdown.PCResteer
			out.BaseCFTargetMisses = res.Boom.Tally[boom.EvCFTargetMiss]
		}
	}
	return out, nil
}

// Fprint renders the ablation.
func (r RASResult) Fprint(w io.Writer) {
	fmt.Fprintf(w, "-- ablation: return-address stack on %s (LargeBOOM) --\n", r.Kernel)
	fmt.Fprintf(w, "%-8s cycles %9d  pc-resteer %5.1f%%  cf-target-misses %d\n",
		"no-RAS", r.BaseCycles, r.BasePCResteer*100, r.BaseCFTargetMisses)
	fmt.Fprintf(w, "%-8s cycles %9d  pc-resteer %5.1f%%  cf-target-misses %d\n",
		"RAS", r.RASCycles, r.RASPCResteer*100, r.RASCFTargetMisses)
	fmt.Fprintf(w, "speedup: %.1f%%\n", (float64(r.BaseCycles)/float64(r.RASCycles)-1)*100)
}
