package experiments

import (
	"fmt"
	"io"

	"icicle/internal/boom"
	"icicle/internal/core"
	"icicle/internal/kernel"
	"icicle/internal/rocket"
	"icicle/internal/sample"
	"icicle/internal/sim"
)

// SampledRow is one (core, kernel) pair evaluated both full-detail and
// sampled, with the estimation errors the comparison exposes.
type SampledRow struct {
	Core   string
	Kernel string

	FullCycles uint64
	EstCycles  uint64
	Insts      uint64

	Full    core.Breakdown
	Sampled core.Breakdown

	Coverage float64
	Windows  int
	CPICI    sample.Interval
}

// CycleErr returns the relative cycle-estimate error.
func (r SampledRow) CycleErr() float64 {
	if r.FullCycles == 0 {
		return 0
	}
	d := float64(r.EstCycles) - float64(r.FullCycles)
	if d < 0 {
		d = -d
	}
	return d / float64(r.FullCycles)
}

// MaxCategoryErr returns the worst absolute top-level share difference.
func (r SampledRow) MaxCategoryErr() float64 {
	worst := 0.0
	for _, d := range []float64{
		r.Sampled.Retiring - r.Full.Retiring,
		r.Sampled.BadSpec - r.Full.BadSpec,
		r.Sampled.Frontend - r.Full.Frontend,
		r.Sampled.Backend - r.Full.Backend,
	} {
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}

// SampledComparison is the sampled-vs-full validation artifact: the same
// job matrix submitted to the shared runner twice — once full-detail,
// once under the sampling policy — so both detail modes coexist in the
// memo cache and the table reports how close the extrapolation lands.
type SampledComparison struct {
	Policy sample.Policy
	Rows   []SampledRow
}

// Fprint renders the comparison table.
func (sc SampledComparison) Fprint(w io.Writer) {
	fmt.Fprintf(w, "-- Sampled vs full-detail TMA (policy %s) --\n", sc.Policy)
	for _, r := range sc.Rows {
		fmt.Fprintf(w, "%-9s %-10s cycles %8d est %8d (%5.2f%% err)  maxCat %5.2fpp  cov %5.1f%%  windows %d\n",
			r.Core, r.Kernel, r.FullCycles, r.EstCycles, 100*r.CycleErr(),
			100*r.MaxCategoryErr(), 100*r.Coverage, r.Windows)
		fmt.Fprintf(w, "  full    %s\n", r.Full.Row(r.Kernel))
		fmt.Fprintf(w, "  sampled %s\n", r.Sampled.Row(r.Kernel))
	}
}

// Find returns the row for (coreName, kernelName).
func (sc SampledComparison) Find(coreName, kernelName string) (SampledRow, bool) {
	for _, r := range sc.Rows {
		if r.Core == coreName && r.Kernel == kernelName {
			return r, true
		}
	}
	return SampledRow{}, false
}

// SampledVsFull runs the long-running microbenchmarks full-detail and
// sampled (at the default policy) on Rocket and LargeBOOM through the
// shared runner, pairing the results into the validation table.
func SampledVsFull() (SampledComparison, error) {
	return SampledVsFullPolicy(sample.Default())
}

// SampledVsFullPolicy is SampledVsFull under an explicit policy.
func SampledVsFullPolicy(p sample.Policy) (SampledComparison, error) {
	defer phase("SampledVsFull")()
	names := []string{"towers", "mm", "bfs"}
	large := boom.NewConfig(boom.Large)

	var jobs []sim.Job
	for _, name := range names {
		k, err := kernel.ByName(name)
		if err != nil {
			return SampledComparison{}, err
		}
		rj := sim.RocketJob(rocket.DefaultConfig(), k)
		bj := sim.BoomJob(large, k)
		// Interleave full and sampled variants of the same (core,
		// kernel): distinct memo keys keep them from colliding.
		jobs = append(jobs, rj, rj.WithSampling(p), bj, bj.WithSampling(p))
	}

	results := sim.Default().Run(jobs)
	sc := SampledComparison{Policy: p}
	for i := 0; i < len(results); i += 2 {
		full, sampled := results[i], results[i+1]
		if full.Err != nil {
			return SampledComparison{}, full.Err
		}
		if sampled.Err != nil {
			return SampledComparison{}, sampled.Err
		}
		rep := sampled.Sampled
		if rep == nil {
			return SampledComparison{}, fmt.Errorf("sampled job %s returned no report", sampled.Job.Key())
		}
		if rep.TotalInsts != full.Insts() {
			return SampledComparison{}, fmt.Errorf("%s/%s: sampled retired %d insts, full %d",
				sampled.Job.CoreName(), sampled.Job.Kernel.Name, rep.TotalInsts, full.Insts())
		}
		sc.Rows = append(sc.Rows, SampledRow{
			Core:       full.Job.CoreName(),
			Kernel:     full.Job.Kernel.Name,
			FullCycles: full.Cycles(),
			EstCycles:  rep.EstCycles,
			Insts:      full.Insts(),
			Full:       full.Breakdown,
			Sampled:    sampled.Breakdown,
			Coverage:   rep.Coverage,
			Windows:    len(rep.Windows),
			CPICI:      rep.CPICI,
		})
	}
	return sc, nil
}
