package experiments

import (
	"bytes"
	"fmt"
	"io"
	"math"

	"icicle/internal/boom"
	"icicle/internal/kernel"
	"icicle/internal/pmu"
	"icicle/internal/sim"
	"icicle/internal/trace"
)

// Table5Benchmarks are the workloads reported in Table V.
var Table5Benchmarks = []string{
	"505.mcf_r", "523.xalancbmk_r", "541.leela_r", "525.x264_r",
	"548.exchange2_r", "500.perlbench_r", "mm", "memcpy",
}

// LaneRates is one benchmark's per-lane event rates (events per cycle).
type LaneRates struct {
	Name        string
	FetchBubble []float64 // W_C lanes
	DBlocked    []float64 // W_C lanes
	UopsIssued  []float64 // W_I lanes

	// ApproxError is the relative Frontend-class error of the paper's
	// lightweight per-lane approximation: W_C × the middle lane's bubbles
	// instead of the true per-lane sum (§V-A "3 × Fetch-bubble1").
	ApproxError float64
}

// Table5Result is the per-lane event study (Table V + the §V-A
// approximation analysis).
type Table5Result struct {
	Config string
	Rows   []LaneRates
}

// Table5PerLane measures per-lane event rates on LargeBOOM. The eight
// benchmarks run as one batch through the shared runner.
func Table5PerLane() (Table5Result, error) {
	defer phase("Table5PerLane")()
	cfg := boom.NewConfig(boom.Large)
	out := Table5Result{Config: cfg.Name}
	jobs := make([]sim.Job, 0, len(Table5Benchmarks))
	for _, name := range Table5Benchmarks {
		k, err := kernel.ByName(name)
		if err != nil {
			return out, err
		}
		jobs = append(jobs, sim.BoomJob(cfg, k))
	}
	for _, res := range sim.Default().Run(jobs) {
		if res.Err != nil {
			return out, fmt.Errorf("%s: %w", res.Job.Kernel.Name, res.Err)
		}
		br := res.Boom
		rates := func(ev string) []float64 {
			lanes := br.LaneTally[ev]
			r := make([]float64, len(lanes))
			for i, v := range lanes {
				r[i] = float64(v) / float64(br.Cycles)
			}
			return r
		}
		lr := LaneRates{
			Name:        res.Job.Kernel.Name,
			FetchBubble: rates(boom.EvFetchBubbles),
			DBlocked:    rates(boom.EvDCacheBlocked),
			UopsIssued:  rates(boom.EvUopsIssued),
		}
		total := br.Tally[boom.EvFetchBubbles]
		mid := br.LaneTally[boom.EvFetchBubbles][cfg.DecodeWidth/2]
		approx := float64(cfg.DecodeWidth) * float64(mid)
		if total > 0 {
			lr.ApproxError = approx/float64(total) - 1
		}
		out.Rows = append(out.Rows, lr)
	}
	return out, nil
}

// Fprint renders Table V.
func (t Table5Result) Fprint(w io.Writer) {
	fmt.Fprintf(w, "-- Table V: per-lane events per total cycles (%s) --\n", t.Config)
	fmt.Fprintf(w, "%-18s %-26s %-26s %-38s %8s\n",
		"benchmark", "fetch-bubble", "d$-blocked", "uops-issued", "approx")
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%-18s %-26s %-26s %-38s %7.1f%%\n",
			r.Name, rateStr(r.FetchBubble), rateStr(r.DBlocked),
			rateStr(r.UopsIssued), r.ApproxError*100)
	}
}

func rateStr(r []float64) string {
	var b bytes.Buffer
	for i, v := range r {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%.3f", v)
	}
	return b.String()
}

// Table6Benchmarks feed the temporal-TMA overlap study.
var Table6Benchmarks = []string{"qsort", "mergesort", "531.deepsjeng_r", "multiply", "coremark", "fencemix"}

// Table6Result is the temporal-TMA class-overlap bound (Table VI).
type Table6Result struct {
	Cycles        uint64
	TotalSlots    uint64
	OverlapSlots  uint64
	FrontendSlots uint64
	BadSpecSlots  uint64 // recovering cycles × W_C (the model's attribution)

	OverlapFrac          float64
	FrontendFrac         float64
	BadSpecFrac          float64
	FrontendPerturbation float64
	BadSpecPerturbation  float64
}

// Fprint renders Table VI.
func (t Table6Result) Fprint(w io.Writer) {
	fmt.Fprintln(w, "-- Table VI: temporal TMA overlap upper bound --")
	fmt.Fprintf(w, "trace sample: %d cycles (%d slots)\n", t.Cycles, t.TotalSlots)
	fmt.Fprintf(w, "overlap Frontend, I$-miss & Bad Speculation  %8.4f%%\n", t.OverlapFrac*100)
	fmt.Fprintf(w, "Frontend        %8.2f%%  ± %.2f%%\n", t.FrontendFrac*100, t.FrontendPerturbation*100)
	fmt.Fprintf(w, "Bad Speculation %8.2f%%  ± %.2f%%\n", t.BadSpecFrac*100, t.BadSpecPerturbation*100)
}

// overlapPart is one benchmark's contribution to Table VI.
type overlapPart struct {
	cycles, total, overlap, frontend, badSpec uint64
}

// Table6Overlap traces the Table VI benchmarks on LargeBOOM and bounds
// Frontend / Bad Speculation overlap with a ±pad-cycle rolling window
// (§V-B uses 50). Traced runs need a cycle hook, so they bypass the memo
// cache and fan out via sim.Map instead; partial sums are accumulated in
// benchmark order.
func Table6Overlap(pad int) (Table6Result, error) {
	defer phase("Table6Overlap")()
	cfg := boom.NewConfig(boom.Large)
	var out Table6Result
	parts, err := sim.Map(0, Table6Benchmarks, func(_ int, name string) (overlapPart, error) {
		k, err := kernel.ByName(name)
		if err != nil {
			return overlapPart{}, err
		}
		c, err := boom.New(cfg, k.MustProgram())
		if err != nil {
			return overlapPart{}, err
		}
		bundle := trace.MustBundle(c.Space,
			boom.EvFetchBubbles, boom.EvICacheBlocked, boom.EvRecovering)
		var buf bytes.Buffer
		w, err := trace.NewWriter(&buf, bundle)
		if err != nil {
			return overlapPart{}, err
		}
		c.SetCycleHook(w.WriteCycle)
		if _, err := c.Run(); err != nil {
			return overlapPart{}, err
		}
		if err := w.Flush(); err != nil {
			return overlapPart{}, err
		}
		rd, err := trace.NewReader(&buf)
		if err != nil {
			return overlapPart{}, err
		}
		a, err := trace.NewAnalyzer(rd)
		if err != nil {
			return overlapPart{}, err
		}
		rep, err := a.OverlapBound(boom.EvFetchBubbles, boom.EvICacheBlocked,
			boom.EvRecovering, pad)
		if err != nil {
			return overlapPart{}, err
		}
		return overlapPart{
			cycles:   uint64(rep.Cycles),
			total:    rep.TotalSlots,
			overlap:  rep.OverlapSlots,
			frontend: rep.FrontendSlots,
			badSpec:  a.Totals()[boom.EvRecovering] * uint64(cfg.DecodeWidth),
		}, nil
	})
	if err != nil {
		return out, err
	}
	for _, p := range parts {
		out.Cycles += p.cycles
		out.TotalSlots += p.total
		out.OverlapSlots += p.overlap
		out.FrontendSlots += p.frontend
		out.BadSpecSlots += p.badSpec
	}
	if out.TotalSlots > 0 {
		out.OverlapFrac = float64(out.OverlapSlots) / float64(out.TotalSlots)
		out.FrontendFrac = float64(out.FrontendSlots) / float64(out.TotalSlots)
		out.BadSpecFrac = float64(out.BadSpecSlots) / float64(out.TotalSlots)
	}
	if out.FrontendSlots > 0 {
		out.FrontendPerturbation = float64(out.OverlapSlots) / float64(out.FrontendSlots)
	}
	if out.BadSpecSlots > 0 {
		out.BadSpecPerturbation = float64(out.OverlapSlots) / float64(out.BadSpecSlots)
	}
	return out, nil
}

// UndercountResult is the §IV-B distributed-counter undercount study
// (experiment E15).
type UndercountResult struct {
	Kernel     string
	Event      string
	Exact      uint64
	Read       uint64
	Residue    uint64
	Bound      uint64 // sources × 2^width
	LocalWidth uint
}

// Fprint renders the undercount analysis.
func (u UndercountResult) Fprint(w io.Writer) {
	fmt.Fprintln(w, "-- §IV-B: distributed-counter undercount bound --")
	fmt.Fprintf(w, "%s/%s: exact %d, read %d, residue %d (bound %d, local width %d bits)\n",
		u.Kernel, u.Event, u.Exact, u.Read, u.Residue, u.Bound, u.LocalWidth)
	if u.Exact > 0 {
		fmt.Fprintf(w, "worst-case relative error: %.4f%%\n",
			100*float64(u.Bound)/float64(u.Exact+u.Bound))
	}
}

// UndercountBound measures the distributed architecture's undercount on a
// real workload and checks it against the closed-form bound.
func UndercountBound(kernelName string) (UndercountResult, error) {
	defer phase("UndercountBound")()
	k, err := kernel.ByName(kernelName)
	if err != nil {
		return UndercountResult{}, err
	}
	cfg := boom.NewConfig(boom.Large)
	cfg.PMUArch = pmu.Distributed
	c, err := boom.New(cfg, k.MustProgram())
	if err != nil {
		return UndercountResult{}, err
	}
	if err := c.PMU.ConfigureEvents(0, boom.EvFetchBubbles); err != nil {
		return UndercountResult{}, err
	}
	c.PMU.EnableAll()
	res, err := c.Run()
	if err != nil {
		return UndercountResult{}, err
	}
	u := UndercountResult{
		Kernel:     kernelName,
		Event:      boom.EvFetchBubbles,
		Exact:      res.Tally[boom.EvFetchBubbles],
		Read:       c.PMU.Read(0),
		Residue:    c.PMU.Residue(0),
		LocalWidth: c.PMU.LocalWidth(0),
	}
	u.Bound = uint64(cfg.DecodeWidth) << u.LocalWidth
	if u.Read+u.Residue != u.Exact {
		return u, fmt.Errorf("undercount conservation violated: %d + %d != %d",
			u.Read, u.Residue, u.Exact)
	}
	return u, nil
}

// ArchComparison is the artifact's AddWires vs DistributedCounters counter
// value comparison (E16).
type ArchComparison struct {
	Kernel string
	Event  string
	Exact  map[pmu.Architecture]uint64 // read + residue
	Read   map[pmu.Architecture]uint64
}

// CounterArchComparison runs the same kernel under all three counter
// architectures (in parallel — each needs its own PMU configuration, so
// the runs go through sim.Map rather than the memoizing runner) and
// compares the counter values.
func CounterArchComparison(kernelName, event string) (ArchComparison, error) {
	defer phase("CounterArchComparison")()
	k, err := kernel.ByName(kernelName)
	if err != nil {
		return ArchComparison{}, err
	}
	out := ArchComparison{
		Kernel: kernelName, Event: event,
		Exact: map[pmu.Architecture]uint64{},
		Read:  map[pmu.Architecture]uint64{},
	}
	archs := []pmu.Architecture{pmu.Scalar, pmu.AddWires, pmu.Distributed}
	type archCounts struct{ read, exact uint64 }
	counts, err := sim.Map(0, archs, func(_ int, arch pmu.Architecture) (archCounts, error) {
		cfg := boom.NewConfig(boom.Large)
		cfg.PMUArch = arch
		c, err := boom.New(cfg, k.MustProgram())
		if err != nil {
			return archCounts{}, err
		}
		if err := c.PMU.ConfigureEvents(0, event); err != nil {
			return archCounts{}, err
		}
		c.PMU.EnableAll()
		if _, err := c.Run(); err != nil {
			return archCounts{}, err
		}
		return archCounts{read: c.PMU.Read(0), exact: c.PMU.Read(0) + c.PMU.Residue(0)}, nil
	})
	if err != nil {
		return out, err
	}
	for i, arch := range archs {
		out.Read[arch] = counts[i].read
		out.Exact[arch] = counts[i].exact
	}
	return out, nil
}

// Fprint renders the comparison.
func (a ArchComparison) Fprint(w io.Writer) {
	fmt.Fprintf(w, "-- counter architecture comparison: %s / %s --\n", a.Kernel, a.Event)
	for _, arch := range []pmu.Architecture{pmu.Scalar, pmu.AddWires, pmu.Distributed} {
		fmt.Fprintf(w, "%-12s read %12d\n", arch, a.Read[arch])
	}
	aw := float64(a.Read[pmu.AddWires])
	if aw > 0 {
		fmt.Fprintf(w, "distributed relative error: %.4f%%\n",
			100*math.Abs(aw-float64(a.Read[pmu.Distributed]))/aw)
		fmt.Fprintf(w, "scalar undercount:          %.1f%%\n",
			100*(1-float64(a.Read[pmu.Scalar])/aw))
	}
}
