package experiments

import (
	"fmt"
	"io"
	"reflect"
	"time"

	"icicle/internal/boom"
	"icicle/internal/kernel"
	"icicle/internal/perf"
	"icicle/internal/rocket"
	"icicle/internal/sample"
)

// SampledParRow is one (core, kernel) pair run through the two-phase
// sampled engine twice — serial (one window worker) and parallel — with
// a field-for-field report comparison. Identical must always be true:
// the plan engine's reduce is schedule-ordered, so the report is a pure
// function of the plan, not of the worker count.
type SampledParRow struct {
	Core   string
	Kernel string

	EstCycles uint64
	Insts     uint64
	Windows   int
	CPI       float64

	Identical  bool
	SerialWall time.Duration
	ParWall    time.Duration
}

// Speedup is the serial-over-parallel wall-time ratio for this row.
// Wall times here include only the consumer phase plus warm replay (the
// plan is built once and shared), so this is the window-phase scaling.
func (r SampledParRow) Speedup() float64 {
	if r.ParWall <= 0 {
		return 0
	}
	return float64(r.SerialWall) / float64(r.ParWall)
}

// SampledParCheck is the parallel-vs-serial validation artifact for the
// two-phase engine: every row's parallel report must be bit-identical to
// its serial reference.
type SampledParCheck struct {
	Policy  sample.Policy
	Workers int
	Rows    []SampledParRow
}

// AllIdentical reports whether every row passed the comparison.
func (sc SampledParCheck) AllIdentical() bool {
	for _, r := range sc.Rows {
		if !r.Identical {
			return false
		}
	}
	return len(sc.Rows) > 0
}

// Fprint renders the check table.
func (sc SampledParCheck) Fprint(w io.Writer) {
	fmt.Fprintf(w, "-- Two-phase sampled engine: serial vs %d-worker reports (policy %s) --\n",
		sc.Workers, sc.Policy)
	for _, r := range sc.Rows {
		verdict := "IDENTICAL"
		if !r.Identical {
			verdict = "MISMATCH"
		}
		fmt.Fprintf(w, "%-9s %-10s est %8d  insts %8d  windows %3d  CPI %.4f  %-9s  serial %s  par %s  %.2fx\n",
			r.Core, r.Kernel, r.EstCycles, r.Insts, r.Windows, r.CPI, verdict,
			r.SerialWall.Round(time.Microsecond), r.ParWall.Round(time.Microsecond), r.Speedup())
	}
	if sc.AllIdentical() {
		fmt.Fprintln(w, "all parallel reports bit-identical to their serial references")
	} else {
		fmt.Fprintln(w, "WARNING: parallel report mismatch — two-phase determinism broken")
	}
}

// SampledParVsSerial runs the microbenchmark pairs through the two-phase
// engine at one worker and at the given worker count, comparing the full
// reports with reflect.DeepEqual (every field, every window, every
// float). It bypasses the sim job cache and window memo on purpose: both
// runs must actually execute their windows for the comparison to mean
// anything. The plan cache is shared — that is the engine's design — so
// the producer pass runs once per (kernel, cadence).
func SampledParVsSerial(p sample.Policy, workers int) (SampledParCheck, error) {
	defer phase("SampledParVsSerial")()
	if workers < 2 {
		workers = 2
	}
	names := []string{"towers", "mm", "bfs"}
	large := boom.NewConfig(boom.Large)
	sc := SampledParCheck{Policy: p, Workers: workers}

	for _, name := range names {
		k, err := kernel.ByName(name)
		if err != nil {
			return SampledParCheck{}, err
		}
		prog, err := k.Program()
		if err != nil {
			return SampledParCheck{}, err
		}
		// Cores are built and the plan pre-warmed outside the timed
		// region so the wall columns time the engine, not construction.
		if _, err := perf.PlanFor(k, p, sample.Options{}); err != nil {
			return SampledParCheck{}, err
		}
		rcs := make([]*rocket.Core, workers)
		for i := range rcs {
			rcs[i] = rocket.New(rocket.DefaultConfig(), prog)
		}
		bcs := make([]*boom.Core, workers)
		for i := range bcs {
			if bcs[i], err = boom.New(large, prog); err != nil {
				return SampledParCheck{}, err
			}
		}

		t0 := time.Now()
		_, serialR, _, err := perf.SampleRocketParOn(rcs[:1], k, p, sample.Options{}, nil)
		serialWall := time.Since(t0)
		if err != nil {
			return SampledParCheck{}, err
		}
		t0 = time.Now()
		_, parR, _, err := perf.SampleRocketParOn(rcs, k, p, sample.Options{}, nil)
		parWall := time.Since(t0)
		if err != nil {
			return SampledParCheck{}, err
		}
		sc.Rows = append(sc.Rows, SampledParRow{
			Core: "rocket", Kernel: name,
			EstCycles: serialR.EstCycles, Insts: serialR.TotalInsts,
			Windows: len(serialR.Windows), CPI: serialR.CPI,
			Identical:  reflect.DeepEqual(serialR, parR),
			SerialWall: serialWall, ParWall: parWall,
		})

		t0 = time.Now()
		_, serialB, _, err := perf.SampleBoomParOn(bcs[:1], k, p, sample.Options{}, nil)
		serialWall = time.Since(t0)
		if err != nil {
			return SampledParCheck{}, err
		}
		t0 = time.Now()
		_, parB, _, err := perf.SampleBoomParOn(bcs, k, p, sample.Options{}, nil)
		parWall = time.Since(t0)
		if err != nil {
			return SampledParCheck{}, err
		}
		sc.Rows = append(sc.Rows, SampledParRow{
			Core: large.Name, Kernel: name,
			EstCycles: serialB.EstCycles, Insts: serialB.TotalInsts,
			Windows: len(serialB.Windows), CPI: serialB.CPI,
			Identical:  reflect.DeepEqual(serialB, parB),
			SerialWall: serialWall, ParWall: parWall,
		})
	}
	return sc, nil
}
