package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// The heavy experiments are exercised end-to-end by bench_test.go; these
// tests cover the cheap paths, the renderers, and the result plumbing.

func TestCaseStudySpeedupAndRender(t *testing.T) {
	cs, err := Fig7dBranchInversion()
	if err != nil {
		t.Fatal(err)
	}
	if cs.Base.Cycles == 0 || cs.Variant.Cycles == 0 {
		t.Fatal("empty rows")
	}
	if s := cs.Speedup(); s <= 0 {
		t.Fatalf("speedup %f", s)
	}
	var buf bytes.Buffer
	cs.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"brmiss", "brmiss_inv", "speedup"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestGridFindAndRender(t *testing.T) {
	g, err := Fig7aRocketMicro()
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Rows) < 8 {
		t.Fatalf("only %d rows", len(g.Rows))
	}
	if _, ok := g.Find("qsort"); !ok {
		t.Fatal("qsort missing")
	}
	if _, ok := g.Find("nope"); ok {
		t.Fatal("found nonexistent row")
	}
	var buf bytes.Buffer
	g.Fprint(&buf)
	g.FprintBackend(&buf)
	if !strings.Contains(buf.String(), "backend") {
		t.Fatal("backend render missing")
	}
	// Rows are sorted.
	for i := 1; i < len(g.Rows); i++ {
		if g.Rows[i-1].Name >= g.Rows[i].Name {
			t.Fatal("rows not sorted")
		}
	}
}

func TestUndercountConservation(t *testing.T) {
	u, err := UndercountBound("vvadd")
	if err != nil {
		t.Fatal(err)
	}
	if u.Read+u.Residue != u.Exact {
		t.Fatalf("conservation: %d + %d != %d", u.Read, u.Residue, u.Exact)
	}
	if u.Exact-u.Read > u.Bound {
		t.Fatalf("undercount %d beyond bound %d", u.Exact-u.Read, u.Bound)
	}
	var buf bytes.Buffer
	u.Fprint(&buf)
	if !strings.Contains(buf.String(), "undercount") {
		t.Fatal("render missing")
	}
}

func TestFig9NormalizedToScalar(t *testing.T) {
	r, err := Fig9Physical(false)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Reports) != 15 { // 5 sizes × 3 architectures
		t.Fatalf("%d reports", len(r.Reports))
	}
	for cfg, m := range r.DelayNorm {
		if m["scalar"] != 1.0 {
			t.Fatalf("%s: scalar normalization %f != 1", cfg, m["scalar"])
		}
	}
	var buf bytes.Buffer
	r.Fprint(&buf)
	if !strings.Contains(buf.String(), "Fig 9(b)") {
		t.Fatal("render missing 9(b)")
	}
}

func TestTable6PadSensitivity(t *testing.T) {
	// The ablation the paper's method implies: a wider window can only
	// grow the (conservative) overlap bound.
	narrow, err := Table6Overlap(5)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := Table6Overlap(100)
	if err != nil {
		t.Fatal(err)
	}
	if wide.OverlapSlots < narrow.OverlapSlots {
		t.Fatalf("wider pad shrank the bound: %d < %d", wide.OverlapSlots, narrow.OverlapSlots)
	}
	if narrow.TotalSlots != wide.TotalSlots {
		t.Fatal("slot totals differ between pads")
	}
	var buf bytes.Buffer
	wide.Fprint(&buf)
	if !strings.Contains(buf.String(), "Table VI") {
		t.Fatal("render missing")
	}
}

func TestTable5RowOrdering(t *testing.T) {
	res, err := Table5PerLane()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(Table5Benchmarks) {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for i, r := range res.Rows {
		if r.Name != Table5Benchmarks[i] {
			t.Fatalf("row %d = %s, want %s", i, r.Name, Table5Benchmarks[i])
		}
		if len(r.UopsIssued) != 5 || len(r.FetchBubble) != 3 {
			t.Fatalf("%s: lane widths %d/%d", r.Name, len(r.UopsIssued), len(r.FetchBubble))
		}
	}
	var buf bytes.Buffer
	res.Fprint(&buf)
	if !strings.Contains(buf.String(), "Table V") {
		t.Fatal("render missing")
	}
}

func TestArchComparisonRender(t *testing.T) {
	c, err := CounterArchComparison("vvadd", "uops-retired")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	c.Fprint(&buf)
	if !strings.Contains(buf.String(), "scalar") {
		t.Fatal("render missing")
	}
}
