package experiments

import (
	"bytes"
	"fmt"
	"io"

	"icicle/internal/boom"
	"icicle/internal/kernel"
	"icicle/internal/rocket"
	"icicle/internal/sim"
	"icicle/internal/stats"
	"icicle/internal/trace"
	"icicle/internal/vlsi"
)

// Fig3Result is the motivating cycle-accurate frontend trace (Fig. 3):
// mergesort on Rocket, six frontend-critical signals.
type Fig3Result struct {
	Timeline      string // ASCII rendering around the first I$ miss (Fig. 3a)
	LateTimeline  string // a warm-cache window (Fig. 3b)
	Totals        map[string]uint64
	BubblesNotICB uint64 // fetch-bubble cycles with no I$-blocked anywhere near
	Cycles        int
}

// Fig3Events are the traced signals. IBuf-ready/valid are represented by
// their derived fetch-bubble signal plus the raw blocking events, which is
// what the added TMA event makes observable.
var Fig3Events = []string{
	rocket.EvICacheMiss, rocket.EvICacheBlocked, rocket.EvFetchBubbles,
	rocket.EvRecovering, rocket.EvBrMispredict, rocket.EvInstIssued,
}

// Fig3FrontendTrace reproduces the motivating example: most mergesort
// frontend stalls are NOT attributable to the I-cache.
func Fig3FrontendTrace() (Fig3Result, error) {
	defer phase("Fig3FrontendTrace")()
	k, err := kernel.ByName("mergesort")
	if err != nil {
		return Fig3Result{}, err
	}
	c := rocket.New(rocket.DefaultConfig(), k.MustProgram())
	bundle := trace.MustBundle(rocket.Events, Fig3Events...)
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf, bundle)
	if err != nil {
		return Fig3Result{}, err
	}
	c.SetCycleHook(w.WriteCycle)
	if _, err := c.Run(); err != nil {
		return Fig3Result{}, err
	}
	if err := w.Flush(); err != nil {
		return Fig3Result{}, err
	}
	rd, err := trace.NewReader(&buf)
	if err != nil {
		return Fig3Result{}, err
	}
	a, err := trace.NewAnalyzer(rd)
	if err != nil {
		return Fig3Result{}, err
	}

	out := Fig3Result{Totals: a.Totals(), Cycles: a.Cycles()}
	// Fig 3(a): zoom around the first I-cache miss.
	if at := a.FindWindow(rocket.EvICacheMiss, 0); at >= 0 {
		out.Timeline = a.Timeline(at-4, at+76)
	}
	// Fig 3(b): a warm window later in the run.
	mid := a.Cycles() / 2
	out.LateTimeline = a.Timeline(mid, mid+80)

	// The motivating count: fetch bubbles outside any I$-blocked window.
	bubbles, err := a.EventBits(rocket.EvFetchBubbles)
	if err != nil {
		return out, err
	}
	blocked, err := a.EventBits(rocket.EvICacheBlocked)
	if err != nil {
		return out, err
	}
	win := stats.PadWindows(blocked, 8)
	for i, b := range bubbles {
		if b && !win[i] {
			out.BubblesNotICB++
		}
	}
	return out, nil
}

// Fprint renders the Fig. 3 evidence.
func (f Fig3Result) Fprint(w io.Writer) {
	fmt.Fprintln(w, "-- Fig 3: cycle-accurate frontend trace of mergesort (Rocket) --")
	fmt.Fprintln(w, "(a) first I-cache miss window:")
	fmt.Fprintln(w, f.Timeline)
	fmt.Fprintln(w, "(b) warm-cache window:")
	fmt.Fprintln(w, f.LateTimeline)
	fmt.Fprintf(w, "fetch-bubble cycles: %d; within an I$-blocked window: %d; elsewhere: %d\n",
		f.Totals[rocket.EvFetchBubbles],
		f.Totals[rocket.EvFetchBubbles]-f.BubblesNotICB, f.BubblesNotICB)
	fmt.Fprintln(w, "=> I$-miss/I$-blocked alone cannot account for the Frontend stalls (§III)")
}

// Fig8Result is the recovery-sequence study (Fig. 8b).
type Fig8Result struct {
	CDF        *stats.CDF
	Mode       uint64
	Max        uint64
	FracAtMode float64
}

// Fig8RecoveryCDF traces Recovering on LargeBOOM across branchy workloads
// and builds the distribution of recovery-sequence lengths. The traced
// runs need a cycle hook, so they fan out via sim.Map; per-benchmark run
// lengths are concatenated in benchmark order before building the CDF.
func Fig8RecoveryCDF() (Fig8Result, error) {
	defer phase("Fig8RecoveryCDF")()
	cfg := boom.NewConfig(boom.Large)
	benchmarks := []string{"qsort", "multiply", "531.deepsjeng_r", "525.x264_r", "fencemix"}
	lengths, err := sim.Map(0, benchmarks, func(_ int, name string) ([]uint64, error) {
		k, err := kernel.ByName(name)
		if err != nil {
			return nil, err
		}
		c, err := boom.New(cfg, k.MustProgram())
		if err != nil {
			return nil, err
		}
		bundle := trace.MustBundle(c.Space, boom.EvRecovering)
		var buf bytes.Buffer
		w, err := trace.NewWriter(&buf, bundle)
		if err != nil {
			return nil, err
		}
		c.SetCycleHook(w.WriteCycle)
		if _, err := c.Run(); err != nil {
			return nil, err
		}
		if err := w.Flush(); err != nil {
			return nil, err
		}
		rd, err := trace.NewReader(&buf)
		if err != nil {
			return nil, err
		}
		a, err := trace.NewAnalyzer(rd)
		if err != nil {
			return nil, err
		}
		bits, err := a.EventBits(boom.EvRecovering)
		if err != nil {
			return nil, err
		}
		return stats.RunLengths(bits), nil
	})
	if err != nil {
		return Fig8Result{}, err
	}
	var all []uint64
	for _, l := range lengths {
		all = append(all, l...)
	}
	cdf := stats.NewCDF(all)
	mode := cdf.Mode()
	return Fig8Result{
		CDF:        cdf,
		Mode:       mode,
		Max:        cdf.Max(),
		FracAtMode: cdf.At(mode) - cdf.At(mode-1),
	}, nil
}

// Fprint renders the CDF series and headline stats.
func (f Fig8Result) Fprint(w io.Writer) {
	fmt.Fprintln(w, "-- Fig 8(b): CDF of Recovering sequence lengths (LargeBOOM) --")
	fmt.Fprintf(w, "sequences: %d, mode: %d cycles (%.0f%% of sequences), max: %d\n",
		f.CDF.N(), f.Mode, f.FracAtMode*100, f.Max)
	fmt.Fprintln(w, "length\tP(X<=length)")
	fmt.Fprint(w, f.CDF.Series())
}

// Fig9Result carries the physical-design grid (Fig. 9a/9b).
type Fig9Result struct {
	Reports []vlsi.Report
	// DelayNorm: CSR path delay normalized to the scalar implementation
	// of the same size (Fig. 9b's normalization).
	DelayNorm map[string]map[string]float64
}

// Fig9Physical evaluates every size × architecture point. When
// withActivity is true, dynamic power uses event activity measured from a
// CoreMark run at each size.
func Fig9Physical(withActivity bool) (Fig9Result, error) {
	defer phase("Fig9Physical")()
	var activity map[string]map[string]float64
	if withActivity {
		k, err := kernel.ByName("coremark")
		if err != nil {
			return Fig9Result{}, err
		}
		jobs := make([]sim.Job, 0, len(boom.Sizes))
		for _, s := range boom.Sizes {
			jobs = append(jobs, sim.BoomJob(boom.NewConfig(s), k))
		}
		activity = map[string]map[string]float64{}
		for _, res := range sim.Default().Run(jobs) {
			if res.Err != nil {
				return Fig9Result{}, res.Err
			}
			act := map[string]float64{}
			for name, total := range res.Boom.Tally {
				act[name] = float64(total) / float64(res.Boom.Cycles)
			}
			activity[res.Job.Boom.Name] = act
		}
	}
	reports := vlsi.AnalyzeAll(activity)
	norm := map[string]map[string]float64{}
	scalarDelay := map[string]float64{}
	for _, r := range reports {
		if r.Arch.String() == "scalar" {
			scalarDelay[r.Config] = r.CSRPathDelay
		}
	}
	for _, r := range reports {
		if norm[r.Config] == nil {
			norm[r.Config] = map[string]float64{}
		}
		norm[r.Config][r.Arch.String()] = r.CSRPathDelay / scalarDelay[r.Config]
	}
	return Fig9Result{Reports: reports, DelayNorm: norm}, nil
}

// Fprint renders Fig. 9a (power) and 9b (normalized CSR path).
func (f Fig9Result) Fprint(w io.Writer) {
	fmt.Fprintln(w, "-- Fig 9(a): post-placement overheads (lower is better) --")
	fmt.Fprintf(w, "%-12s %-12s %8s %8s %8s\n", "config", "arch", "power%", "area%", "wire%")
	for _, r := range f.Reports {
		fmt.Fprintf(w, "%-12s %-12s %8.2f %8.2f %8.2f\n",
			r.Config, r.Arch, r.PowerPct, r.AreaPct, r.WirelenPct)
	}
	fmt.Fprintln(w, "-- Fig 9(b): longest CSR-crossing combinational path (normalized to scalar) --")
	fmt.Fprintf(w, "%-12s %10s %10s %12s\n", "config", "scalar", "add-wires", "distributed")
	for _, s := range boom.Sizes {
		name := boom.NewConfig(s).Name
		n := f.DelayNorm[name]
		fmt.Fprintf(w, "%-12s %10.2f %10.2f %12.2f\n",
			name, n["scalar"], n["add-wires"], n["distributed"])
	}
}
