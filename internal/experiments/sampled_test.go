package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestSampledVsFull(t *testing.T) {
	sc, err := SampledVsFull()
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Rows) != 6 {
		t.Fatalf("got %d rows, want 6 (3 kernels x 2 cores)", len(sc.Rows))
	}
	for _, corename := range []string{"rocket", "LargeBOOM"} {
		r, ok := sc.Find(corename, "towers")
		if !ok {
			t.Fatalf("missing %s/towers row", corename)
		}
		// towers is the headline long-running kernel: the default policy
		// must hold the 2pp acceptance bound here (the broader sweep is
		// asserted per-strategy in internal/check).
		if got := r.MaxCategoryErr(); got > 0.02 {
			t.Errorf("%s/towers max category error %.2fpp > 2pp", corename, 100*got)
		}
		if r.Windows < 5 {
			t.Errorf("%s/towers only %d windows", corename, r.Windows)
		}
		if r.Coverage <= 0 || r.Coverage >= 0.5 {
			t.Errorf("%s/towers coverage %.3f out of range", corename, r.Coverage)
		}
	}
	var buf bytes.Buffer
	sc.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"Sampled vs full-detail", "towers", "mm", "bfs", "windows"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}
