// Package experiments regenerates every table and figure of the paper's
// evaluation (§V): the Fig. 7 TMA grids and case studies, Table V's
// per-lane event rates, Table VI's temporal-TMA overlap bound, Fig. 8's
// recovery-length CDF, and Fig. 9's physical-design overheads. Each
// experiment returns a structured result (asserted on by the benchmark
// harness and tests) and renders the same rows/series the paper reports.
package experiments

import (
	"fmt"
	"io"
	"sort"

	"icicle/internal/boom"
	"icicle/internal/core"
	"icicle/internal/kernel"
	"icicle/internal/perf"
	"icicle/internal/rocket"
)

// Row is one benchmark's TMA evaluation.
type Row struct {
	Name   string
	Cycles uint64
	Insts  uint64
	B      core.Breakdown
}

// TMAGrid is a set of rows (one Fig. 7 subfigure).
type TMAGrid struct {
	Title string
	Rows  []Row
}

// Fprint renders the grid's top-level classes.
func (g TMAGrid) Fprint(w io.Writer) {
	fmt.Fprintf(w, "-- %s --\n", g.Title)
	for _, r := range g.Rows {
		fmt.Fprintln(w, r.B.Row(r.Name))
	}
}

// FprintBackend renders the backend drill-down (Fig. 7 b/l).
func (g TMAGrid) FprintBackend(w io.Writer) {
	fmt.Fprintf(w, "-- %s (backend drill-down) --\n", g.Title)
	for _, r := range g.Rows {
		fmt.Fprintln(w, r.B.BackendRow(r.Name))
	}
}

// Find returns the named row.
func (g TMAGrid) Find(name string) (Row, bool) {
	for _, r := range g.Rows {
		if r.Name == name {
			return r, true
		}
	}
	return Row{}, false
}

func rocketRow(cfg rocket.Config, k *kernel.Kernel) (Row, error) {
	res, b, err := perf.RunRocket(cfg, k)
	if err != nil {
		return Row{}, fmt.Errorf("%s on rocket: %w", k.Name, err)
	}
	if k.Expected != 0 && res.Exit != k.Expected {
		return Row{}, fmt.Errorf("%s on rocket: checksum %#x != %#x", k.Name, res.Exit, k.Expected)
	}
	return Row{Name: k.Name, Cycles: res.Cycles, Insts: res.Insts, B: b}, nil
}

func boomRow(cfg boom.Config, k *kernel.Kernel) (Row, error) {
	res, b, err := perf.RunBoom(cfg, k)
	if err != nil {
		return Row{}, fmt.Errorf("%s on %s: %w", k.Name, cfg.Name, err)
	}
	if k.Expected != 0 && res.Exit != k.Expected {
		return Row{}, fmt.Errorf("%s on %s: checksum %#x != %#x", k.Name, cfg.Name, res.Exit, k.Expected)
	}
	return Row{Name: k.Name, Cycles: res.Cycles, Insts: res.Insts, B: b}, nil
}

func grid(title string, rows []Row, err error) (TMAGrid, error) {
	if err != nil {
		return TMAGrid{}, err
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
	return TMAGrid{Title: title, Rows: rows}, nil
}

// Fig7aRocketMicro: Rocket top-level TMA over the microbenchmark suite
// (Fig. 7a; the backend drill-down of the same rows is Fig. 7b).
func Fig7aRocketMicro() (TMAGrid, error) {
	var rows []Row
	for _, k := range kernel.ByCategory(kernel.CatMicro) {
		r, err := rocketRow(rocket.DefaultConfig(), k)
		if err != nil {
			return TMAGrid{}, err
		}
		rows = append(rows, r)
	}
	return grid("Fig 7(a,b): Rocket microbenchmarks", rows, nil)
}

// Fig7gBoomSPEC: BOOM (Large) top-level TMA over the SPEC CPU2017 intrate
// proxies (Fig. 7g; second-level drill-downs are Fig. 7h-j).
func Fig7gBoomSPEC() (TMAGrid, error) {
	cfg := boom.NewConfig(boom.Large)
	var rows []Row
	for _, k := range kernel.ByCategory(kernel.CatSPEC) {
		r, err := boomRow(cfg, k)
		if err != nil {
			return TMAGrid{}, err
		}
		rows = append(rows, r)
	}
	return grid("Fig 7(g-j): LargeBOOM SPEC CPU2017 intrate proxies", rows, nil)
}

// Fig7kBoomMicro: BOOM microbenchmark TMA (Fig. 7k; backend zoom is 7l).
func Fig7kBoomMicro() (TMAGrid, error) {
	cfg := boom.NewConfig(boom.Large)
	var rows []Row
	for _, k := range kernel.ByCategory(kernel.CatMicro) {
		r, err := boomRow(cfg, k)
		if err != nil {
			return TMAGrid{}, err
		}
		rows = append(rows, r)
	}
	return grid("Fig 7(k,l): LargeBOOM microbenchmarks", rows, nil)
}

// CaseStudy compares a pair of runs (baseline vs variant).
type CaseStudy struct {
	Title    string
	Base     Row
	Variant  Row
	BaseName string
	VarName  string
}

// Speedup returns base cycles / variant cycles (>1 ⇒ variant faster).
func (cs CaseStudy) Speedup() float64 {
	return float64(cs.Base.Cycles) / float64(cs.Variant.Cycles)
}

// Fprint renders both rows and the headline delta.
func (cs CaseStudy) Fprint(w io.Writer) {
	fmt.Fprintf(w, "-- %s --\n", cs.Title)
	fmt.Fprintln(w, cs.Base.B.Row(cs.BaseName))
	fmt.Fprintln(w, cs.Variant.B.Row(cs.VarName))
	fmt.Fprintf(w, "variant speedup: %.2f%%\n", (cs.Speedup()-1)*100)
}

// Fig7cCacheStudy: Rocket CS1 — 531.deepsjeng_r with 32 KiB vs 16 KiB L1D.
func Fig7cCacheStudy() (CaseStudy, error) {
	k, err := kernel.ByName("531.deepsjeng_r")
	if err != nil {
		return CaseStudy{}, err
	}
	big := rocket.DefaultConfig()
	small := rocket.DefaultConfig()
	small.Hierarchy.L1D.SizeBytes = 16 << 10
	b, err := rocketRow(big, k)
	if err != nil {
		return CaseStudy{}, err
	}
	s, err := rocketRow(small, k)
	if err != nil {
		return CaseStudy{}, err
	}
	return CaseStudy{
		Title: "Fig 7(c): Rocket CS1 — L1D cache size on deepsjeng",
		Base:  b, Variant: s,
		BaseName: "L1D=32KiB", VarName: "L1D=16KiB",
	}, nil
}

func branchInvStudy(title string, run func(*kernel.Kernel) (Row, error)) (CaseStudy, error) {
	km, err := kernel.ByName("brmiss")
	if err != nil {
		return CaseStudy{}, err
	}
	ki, err := kernel.ByName("brmiss_inv")
	if err != nil {
		return CaseStudy{}, err
	}
	b, err := run(km)
	if err != nil {
		return CaseStudy{}, err
	}
	v, err := run(ki)
	if err != nil {
		return CaseStudy{}, err
	}
	return CaseStudy{Title: title, Base: b, Variant: v,
		BaseName: "brmiss", VarName: "brmiss_inv"}, nil
}

// Fig7dBranchInversion: Rocket CS2 — brmiss vs brmiss_inv.
func Fig7dBranchInversion() (CaseStudy, error) {
	return branchInvStudy("Fig 7(d): Rocket CS2 — branch inversion",
		func(k *kernel.Kernel) (Row, error) { return rocketRow(rocket.DefaultConfig(), k) })
}

// Fig7nBoomBranchInversion: the same study on BOOM shows the opposite
// effect (the predictors cold-predict opposite directions).
func Fig7nBoomBranchInversion() (CaseStudy, error) {
	return branchInvStudy("Fig 7(n): BOOM CS — branch inversion",
		func(k *kernel.Kernel) (Row, error) { return boomRow(boom.NewConfig(boom.Large), k) })
}

func schedStudy(title string, run func(*kernel.Kernel) (Row, error)) (CaseStudy, error) {
	kb, err := kernel.ByName("coremark")
	if err != nil {
		return CaseStudy{}, err
	}
	ks, err := kernel.ByName("coremark-sched")
	if err != nil {
		return CaseStudy{}, err
	}
	b, err := run(kb)
	if err != nil {
		return CaseStudy{}, err
	}
	v, err := run(ks)
	if err != nil {
		return CaseStudy{}, err
	}
	return CaseStudy{Title: title, Base: b, Variant: v,
		BaseName: "coremark", VarName: "coremark-sched"}, nil
}

// Fig7efCoreMarkSched: Rocket CS3 — CoreMark with and without the
// instruction-scheduling pass (identical instruction counts).
func Fig7efCoreMarkSched() (CaseStudy, error) {
	return schedStudy("Fig 7(e,f): Rocket CS3 — CoreMark instruction scheduling",
		func(k *kernel.Kernel) (Row, error) { return rocketRow(rocket.DefaultConfig(), k) })
}

// Fig7mBoomCoreMarkSched: the same study on BOOM (the OoO core hides the
// scheduling difference almost entirely).
func Fig7mBoomCoreMarkSched() (CaseStudy, error) {
	return schedStudy("Fig 7(m): BOOM CS — CoreMark instruction scheduling",
		func(k *kernel.Kernel) (Row, error) { return boomRow(boom.NewConfig(boom.Large), k) })
}
