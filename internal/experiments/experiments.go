// Package experiments regenerates every table and figure of the paper's
// evaluation (§V): the Fig. 7 TMA grids and case studies, Table V's
// per-lane event rates, Table VI's temporal-TMA overlap bound, Fig. 8's
// recovery-length CDF, and Fig. 9's physical-design overheads. Each
// experiment returns a structured result (asserted on by the benchmark
// harness and tests) and renders the same rows/series the paper reports.
//
// Sweeps are submitted as job batches to the shared sim.Default runner, so
// they fan out across cores and overlapping experiments (the grids, Table
// V, and the ablations re-run many of the same (config, kernel) pairs)
// hit its memoization cache instead of re-simulating.
package experiments

import (
	"fmt"
	"io"
	"sort"

	"icicle/internal/boom"
	"icicle/internal/core"
	"icicle/internal/kernel"
	"icicle/internal/obs"
	"icicle/internal/rocket"
	"icicle/internal/sim"
)

// expTid is the trace track experiment-phase spans render on, kept clear
// of the sim runner's worker tracks.
const expTid = 99

// phase opens a span covering one figure/table reproduction on the
// process tracer; a no-op closure while tracing is disabled. Use as
// `defer phase("Fig7a")()`.
func phase(name string) func() {
	tr := obs.Tracing()
	if tr == nil {
		return func() {}
	}
	tr.NameThread(expTid, "experiments")
	sp := tr.Begin(name, "experiment", expTid)
	return func() { sp.End() }
}

// Row is one benchmark's TMA evaluation.
type Row struct {
	Name   string
	Cycles uint64
	Insts  uint64
	B      core.Breakdown
}

// TMAGrid is a set of rows (one Fig. 7 subfigure).
type TMAGrid struct {
	Title string
	Rows  []Row
}

// Fprint renders the grid's top-level classes.
func (g TMAGrid) Fprint(w io.Writer) {
	fmt.Fprintf(w, "-- %s --\n", g.Title)
	for _, r := range g.Rows {
		fmt.Fprintln(w, r.B.Row(r.Name))
	}
}

// FprintBackend renders the backend drill-down (Fig. 7 b/l).
func (g TMAGrid) FprintBackend(w io.Writer) {
	fmt.Fprintf(w, "-- %s (backend drill-down) --\n", g.Title)
	for _, r := range g.Rows {
		fmt.Fprintln(w, r.B.BackendRow(r.Name))
	}
}

// Find returns the named row.
func (g TMAGrid) Find(name string) (Row, bool) {
	for _, r := range g.Rows {
		if r.Name == name {
			return r, true
		}
	}
	return Row{}, false
}

// rowFromResult converts a runner result into a grid row, checking the
// kernel's self-checksum.
func rowFromResult(res sim.Result) (Row, error) {
	k := res.Job.Kernel
	if res.Err != nil {
		return Row{}, fmt.Errorf("%s on %s: %w", k.Name, res.Job.CoreName(), res.Err)
	}
	if k.Expected != 0 && res.Exit() != k.Expected {
		return Row{}, fmt.Errorf("%s on %s: checksum %#x != %#x",
			k.Name, res.Job.CoreName(), res.Exit(), k.Expected)
	}
	return Row{Name: k.Name, Cycles: res.Cycles(), Insts: res.Insts(), B: res.Breakdown}, nil
}

// runRows fans the jobs out through the shared runner and converts every
// result, failing on the first (lowest-index) error.
func runRows(jobs []sim.Job) ([]Row, error) {
	results := sim.Default().Run(jobs)
	rows := make([]Row, 0, len(results))
	for _, res := range results {
		row, err := rowFromResult(res)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func grid(title string, rows []Row, err error) (TMAGrid, error) {
	if err != nil {
		return TMAGrid{}, err
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
	return TMAGrid{Title: title, Rows: rows}, nil
}

// Fig7aRocketMicro: Rocket top-level TMA over the microbenchmark suite
// (Fig. 7a; the backend drill-down of the same rows is Fig. 7b).
func Fig7aRocketMicro() (TMAGrid, error) {
	defer phase("Fig7aRocketMicro")()
	var jobs []sim.Job
	for _, k := range kernel.ByCategory(kernel.CatMicro) {
		jobs = append(jobs, sim.RocketJob(rocket.DefaultConfig(), k))
	}
	rows, err := runRows(jobs)
	return grid("Fig 7(a,b): Rocket microbenchmarks", rows, err)
}

// Fig7gBoomSPEC: BOOM (Large) top-level TMA over the SPEC CPU2017 intrate
// proxies (Fig. 7g; second-level drill-downs are Fig. 7h-j).
func Fig7gBoomSPEC() (TMAGrid, error) {
	defer phase("Fig7gBoomSPEC")()
	cfg := boom.NewConfig(boom.Large)
	var jobs []sim.Job
	for _, k := range kernel.ByCategory(kernel.CatSPEC) {
		jobs = append(jobs, sim.BoomJob(cfg, k))
	}
	rows, err := runRows(jobs)
	return grid("Fig 7(g-j): LargeBOOM SPEC CPU2017 intrate proxies", rows, err)
}

// Fig7kBoomMicro: BOOM microbenchmark TMA (Fig. 7k; backend zoom is 7l).
func Fig7kBoomMicro() (TMAGrid, error) {
	defer phase("Fig7kBoomMicro")()
	cfg := boom.NewConfig(boom.Large)
	var jobs []sim.Job
	for _, k := range kernel.ByCategory(kernel.CatMicro) {
		jobs = append(jobs, sim.BoomJob(cfg, k))
	}
	rows, err := runRows(jobs)
	return grid("Fig 7(k,l): LargeBOOM microbenchmarks", rows, err)
}

// CaseStudy compares a pair of runs (baseline vs variant).
type CaseStudy struct {
	Title    string
	Base     Row
	Variant  Row
	BaseName string
	VarName  string
}

// Speedup returns base cycles / variant cycles (>1 ⇒ variant faster).
func (cs CaseStudy) Speedup() float64 {
	return float64(cs.Base.Cycles) / float64(cs.Variant.Cycles)
}

// Fprint renders both rows and the headline delta.
func (cs CaseStudy) Fprint(w io.Writer) {
	fmt.Fprintf(w, "-- %s --\n", cs.Title)
	fmt.Fprintln(w, cs.Base.B.Row(cs.BaseName))
	fmt.Fprintln(w, cs.Variant.B.Row(cs.VarName))
	fmt.Fprintf(w, "variant speedup: %.2f%%\n", (cs.Speedup()-1)*100)
}

// caseStudy runs a base/variant job pair through the runner.
func caseStudy(title, baseName, varName string, base, variant sim.Job) (CaseStudy, error) {
	rows, err := runRows([]sim.Job{base, variant})
	if err != nil {
		return CaseStudy{}, err
	}
	return CaseStudy{
		Title: title, Base: rows[0], Variant: rows[1],
		BaseName: baseName, VarName: varName,
	}, nil
}

// Fig7cCacheStudy: Rocket CS1 — 531.deepsjeng_r with 32 KiB vs 16 KiB L1D.
func Fig7cCacheStudy() (CaseStudy, error) {
	defer phase("Fig7cCacheStudy")()
	k, err := kernel.ByName("531.deepsjeng_r")
	if err != nil {
		return CaseStudy{}, err
	}
	big := rocket.DefaultConfig()
	small := rocket.DefaultConfig()
	small.Hierarchy.L1D.SizeBytes = 16 << 10
	return caseStudy("Fig 7(c): Rocket CS1 — L1D cache size on deepsjeng",
		"L1D=32KiB", "L1D=16KiB",
		sim.RocketJob(big, k), sim.RocketJob(small, k))
}

// kernelPairStudy compares the same core configuration across two kernels.
func kernelPairStudy(title, baseKernel, varKernel string, mk func(*kernel.Kernel) sim.Job) (CaseStudy, error) {
	kb, err := kernel.ByName(baseKernel)
	if err != nil {
		return CaseStudy{}, err
	}
	kv, err := kernel.ByName(varKernel)
	if err != nil {
		return CaseStudy{}, err
	}
	return caseStudy(title, baseKernel, varKernel, mk(kb), mk(kv))
}

// Fig7dBranchInversion: Rocket CS2 — brmiss vs brmiss_inv.
func Fig7dBranchInversion() (CaseStudy, error) {
	defer phase("Fig7dBranchInversion")()
	return kernelPairStudy("Fig 7(d): Rocket CS2 — branch inversion",
		"brmiss", "brmiss_inv",
		func(k *kernel.Kernel) sim.Job { return sim.RocketJob(rocket.DefaultConfig(), k) })
}

// Fig7nBoomBranchInversion: the same study on BOOM shows the opposite
// effect (the predictors cold-predict opposite directions).
func Fig7nBoomBranchInversion() (CaseStudy, error) {
	defer phase("Fig7nBoomBranchInversion")()
	return kernelPairStudy("Fig 7(n): BOOM CS — branch inversion",
		"brmiss", "brmiss_inv",
		func(k *kernel.Kernel) sim.Job { return sim.BoomJob(boom.NewConfig(boom.Large), k) })
}

// Fig7efCoreMarkSched: Rocket CS3 — CoreMark with and without the
// instruction-scheduling pass (identical instruction counts).
func Fig7efCoreMarkSched() (CaseStudy, error) {
	defer phase("Fig7efCoreMarkSched")()
	return kernelPairStudy("Fig 7(e,f): Rocket CS3 — CoreMark instruction scheduling",
		"coremark", "coremark-sched",
		func(k *kernel.Kernel) sim.Job { return sim.RocketJob(rocket.DefaultConfig(), k) })
}

// Fig7mBoomCoreMarkSched: the same study on BOOM (the OoO core hides the
// scheduling difference almost entirely).
func Fig7mBoomCoreMarkSched() (CaseStudy, error) {
	defer phase("Fig7mBoomCoreMarkSched")()
	return kernelPairStudy("Fig 7(m): BOOM CS — CoreMark instruction scheduling",
		"coremark", "coremark-sched",
		func(k *kernel.Kernel) sim.Job { return sim.BoomJob(boom.NewConfig(boom.Large), k) })
}
