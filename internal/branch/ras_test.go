package branch

import "testing"

func TestRASBasicPushPop(t *testing.T) {
	r := NewRAS(4)
	r.Push(0x100)
	r.Push(0x200)
	if d := r.Depth(); d != 2 {
		t.Fatalf("depth = %d", d)
	}
	if a, ok := r.Pop(); !ok || a != 0x200 {
		t.Fatalf("pop = %#x, %v", a, ok)
	}
	if a, ok := r.Pop(); !ok || a != 0x100 {
		t.Fatalf("pop = %#x, %v", a, ok)
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("pop from empty stack succeeded")
	}
	if r.Underflows != 1 {
		t.Fatalf("underflows = %d", r.Underflows)
	}
}

func TestRASOverflowWrapsOldest(t *testing.T) {
	r := NewRAS(2)
	r.Push(1)
	r.Push(2)
	r.Push(3) // overwrites 1
	if r.Overwrites != 1 {
		t.Fatalf("overwrites = %d", r.Overwrites)
	}
	if a, _ := r.Pop(); a != 3 {
		t.Fatalf("pop = %d", a)
	}
	if a, _ := r.Pop(); a != 2 {
		t.Fatalf("pop = %d", a)
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("entry 1 should have been overwritten")
	}
}

func TestRASDeepRecursionPattern(t *testing.T) {
	// Balanced call/return nesting within capacity predicts perfectly.
	r := NewRAS(8)
	var addrs []uint64
	for i := 0; i < 8; i++ {
		a := uint64(0x1000 + i*4)
		addrs = append(addrs, a)
		r.Push(a)
	}
	for i := 7; i >= 0; i-- {
		got, ok := r.Pop()
		if !ok || got != addrs[i] {
			t.Fatalf("unwind %d: %#x, %v", i, got, ok)
		}
	}
}

func TestRASZeroSize(t *testing.T) {
	r := NewRAS(0)
	r.Push(5)
	if a, ok := r.Pop(); !ok || a != 5 {
		t.Fatal("minimum-size RAS broken")
	}
}
