package branch

// BHT is Rocket's direction predictor: a table of 2-bit saturating
// counters indexed by a hash of the PC, with a 28-entry BTB for targets
// (Table IV: 512-entry BHT, 28-entry BTB).
type BHT struct {
	counters []uint8
	btb      *BTB
}

// NewRocketPredictor returns the paper's Rocket configuration.
func NewRocketPredictor() *BHT { return NewBHT(512, 28) }

// NewBHT returns a BHT with the given table and BTB sizes. Table size must
// be a power of two (it is rounded up otherwise).
func NewBHT(tableEntries, btbEntries int) *BHT {
	n := 1
	for n < tableEntries {
		n <<= 1
	}
	c := make([]uint8, n)
	for i := range c {
		c[i] = 1 // weakly not-taken
	}
	return &BHT{counters: c, btb: NewBTB(btbEntries)}
}

// Reset returns the predictor to its constructor state: counters back to
// weakly not-taken, BTB emptied.
func (b *BHT) Reset() {
	for i := range b.counters {
		b.counters[i] = 1
	}
	b.btb.Reset()
}

func (b *BHT) index(pc uint64) uint64 {
	return (pc >> 2) & uint64(len(b.counters)-1)
}

// PredictBranch implements Predictor.
func (b *BHT) PredictBranch(pc uint64) bool {
	return b.counters[b.index(pc)] >= 2
}

// UpdateBranch implements Predictor.
func (b *BHT) UpdateBranch(pc uint64, taken bool) {
	i := b.index(pc)
	if taken {
		if b.counters[i] < 3 {
			b.counters[i]++
		}
	} else if b.counters[i] > 0 {
		b.counters[i]--
	}
}

// PredictTarget implements Predictor.
func (b *BHT) PredictTarget(pc uint64) (uint64, bool) { return b.btb.Lookup(pc) }

// UpdateTarget implements Predictor.
func (b *BHT) UpdateTarget(pc, target uint64) { b.btb.Update(pc, target) }

var _ Predictor = (*BHT)(nil)
