package branch

// RAS is a return-address stack. BOOM's frontend uses one to predict
// function returns; the model exposes it as an optional ablation
// (boom.Config.UseRAS) so the cost of return mispredictions is
// measurable. The stack wraps on overflow (overwriting the oldest entry),
// like the hardware structure.
type RAS struct {
	entries []uint64
	top     int // index of the next push slot
	depth   int // live entries, ≤ len(entries)

	// stats
	Pushes     uint64
	Pops       uint64
	Underflows uint64
	Overwrites uint64
}

// NewRAS returns a stack with n entries (minimum 1).
func NewRAS(n int) *RAS {
	if n <= 0 {
		n = 1
	}
	return &RAS{entries: make([]uint64, n)}
}

// Reset returns the stack to its just-constructed state.
func (r *RAS) Reset() {
	for i := range r.entries {
		r.entries[i] = 0
	}
	r.top = 0
	r.depth = 0
	r.Pushes = 0
	r.Pops = 0
	r.Underflows = 0
	r.Overwrites = 0
}

// Push records a return address at a call.
func (r *RAS) Push(addr uint64) {
	r.Pushes++
	if r.depth == len(r.entries) {
		r.Overwrites++
	} else {
		r.depth++
	}
	r.entries[r.top] = addr
	r.top = (r.top + 1) % len(r.entries)
}

// Pop predicts the target of a return; ok is false on underflow.
func (r *RAS) Pop() (addr uint64, ok bool) {
	if r.depth == 0 {
		r.Underflows++
		return 0, false
	}
	r.Pops++
	r.top = (r.top - 1 + len(r.entries)) % len(r.entries)
	r.depth--
	return r.entries[r.top], true
}

// Depth returns the current number of live entries.
func (r *RAS) Depth() int { return r.depth }
