// Package branch implements the branch-prediction substrates of the two
// cores: Rocket's 512-entry BHT + 28-entry BTB and BOOM's TAGE + BTB
// (Table IV). Both expose the same Predictor interface consumed by the
// timing models, so case studies can also swap predictors for ablations.
package branch

// BTB is a direct-lookup branch target buffer with true-LRU replacement
// over a fully-associative entry file (Rocket's BTB is small enough — 28
// entries — that full associativity matches the RTL's behaviour closely).
type BTB struct {
	entries []btbEntry
	stamp   uint64
	// hint maps a PC hash to the entry that last held that PC, skipping
	// the associative scan when it still does (the common case: hot
	// branches re-train every loop iteration). A hint is only ever an
	// accelerator — on mismatch the full scan runs — so the state
	// evolution is bit-identical with or without it.
	hint [btbHintSize]int32
	// stats
	Lookups uint64
	Hits    uint64
}

const btbHintSize = 64

func btbHint(pc uint64) uint64 { return (pc >> 2) & (btbHintSize - 1) }

type btbEntry struct {
	pc     uint64
	target uint64
	valid  bool
	lru    uint64
}

// NewBTB returns a BTB with n entries (minimum 1).
func NewBTB(n int) *BTB {
	if n <= 0 {
		n = 1
	}
	return &BTB{entries: make([]btbEntry, n)}
}

// Reset returns the BTB to its just-constructed state.
func (b *BTB) Reset() {
	for i := range b.entries {
		b.entries[i] = btbEntry{}
	}
	b.hint = [btbHintSize]int32{}
	b.stamp = 0
	b.Lookups = 0
	b.Hits = 0
}

// Lookup returns the predicted target for the control-flow instruction at
// pc, if present.
func (b *BTB) Lookup(pc uint64) (target uint64, ok bool) {
	b.Lookups++
	h := btbHint(pc)
	if e := &b.entries[b.hint[h]]; e.valid && e.pc == pc {
		b.stamp++
		e.lru = b.stamp
		b.Hits++
		return e.target, true
	}
	for i := range b.entries {
		e := &b.entries[i]
		if e.valid && e.pc == pc {
			b.stamp++
			e.lru = b.stamp
			b.Hits++
			b.hint[h] = int32(i)
			return e.target, true
		}
	}
	return 0, false
}

// Update installs or refreshes the target for pc.
func (b *BTB) Update(pc, target uint64) {
	b.stamp++
	h := btbHint(pc)
	if e := &b.entries[b.hint[h]]; e.valid && e.pc == pc {
		e.target = target
		e.lru = b.stamp
		return
	}
	victim := 0
	for i := range b.entries {
		e := &b.entries[i]
		if e.valid && e.pc == pc {
			e.target = target
			e.lru = b.stamp
			b.hint[h] = int32(i)
			return
		}
		if !e.valid {
			victim = i
		} else if b.entries[victim].valid && e.lru < b.entries[victim].lru {
			victim = i
		}
	}
	b.entries[victim] = btbEntry{pc: pc, target: target, valid: true, lru: b.stamp}
	b.hint[h] = int32(victim)
}

// Predictor is the direction+target interface used by the cores.
type Predictor interface {
	// PredictBranch predicts the direction of the conditional branch at pc.
	PredictBranch(pc uint64) bool
	// UpdateBranch trains the direction predictor with the outcome.
	UpdateBranch(pc uint64, taken bool)
	// PredictTarget predicts the target of a taken control-flow
	// instruction at pc; ok is false on a BTB miss.
	PredictTarget(pc uint64) (target uint64, ok bool)
	// UpdateTarget trains the BTB.
	UpdateTarget(pc, target uint64)
}

// Resettable is implemented by predictors whose state can return to its
// power-on contents in place (all predictors in this package qualify).
// Core reuse across sweep jobs depends on it.
type Resettable interface{ Reset() }

// Reset restores a predictor to its constructor state. It panics if the
// predictor does not implement Resettable: a pooled core must never carry
// trained state into the next job.
func Reset(p Predictor) {
	p.(Resettable).Reset()
}
