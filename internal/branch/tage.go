package branch

// TAGE is BOOM's direction predictor: a bimodal base table plus tagged
// components with geometrically increasing history lengths (BOOM v3 uses a
// TAGE-like BPD; Table IV gives component storage of 14..28 KiB). The
// implementation follows Seznec's TAGE with the usual simplifications:
// useful-bit aging and allocate-on-mispredict.
type TAGE struct {
	base   []uint8 // 2-bit bimodal
	tables []tageTable
	btb    *BTB

	history uint64 // global history, newest outcome in bit 0

	// stats
	Predictions   uint64
	ProviderHits  [5]uint64 // which component provided (0 = base)
	Allocations   uint64
	allocFailures uint64
}

type tageTable struct {
	entries []tageEntry
	histLen uint
	tagBits uint
}

type tageEntry struct {
	tag    uint32
	ctr    int8  // -4..3, taken if >= 0
	useful uint8 // 0..3
	valid  bool
}

// Table IV's BOOM history lengths, scaled down to keep the model fast while
// preserving the qualitative behaviour (loop branches predictable, data-
// dependent branches not).
var tageHistLens = []uint{4, 9, 18, 36}

// NewBoomPredictor returns the paper's BOOM TAGE+BTB configuration.
func NewBoomPredictor() *TAGE { return NewTAGE(2048, 512, 64) }

// NewTAGE builds a TAGE with the given base-table size, per-component
// tagged-table size, and BTB entries.
func NewTAGE(baseEntries, taggedEntries, btbEntries int) *TAGE {
	nb := 1
	for nb < baseEntries {
		nb <<= 1
	}
	// The bimodal base initializes weakly-taken (Rocket's BHT initializes
	// weakly-not-taken): cold branches on the two cores predict opposite
	// directions, which is what makes the paper's branch-inversion case
	// study show opposite effects on the two cores (Fig. 7 d vs n).
	base := make([]uint8, nb)
	for i := range base {
		base[i] = 2
	}
	nt := 1
	for nt < taggedEntries {
		nt <<= 1
	}
	t := &TAGE{base: base, btb: NewBTB(btbEntries)}
	for _, hl := range tageHistLens {
		t.tables = append(t.tables, tageTable{
			entries: make([]tageEntry, nt),
			histLen: hl,
			tagBits: 9,
		})
	}
	return t
}

// Reset returns the predictor to its constructor state: the bimodal base
// back to weakly-taken (the initialization asymmetry against Rocket's BHT
// that drives the branch-inversion case study), tagged components and
// history cleared, BTB emptied, statistics zeroed.
func (t *TAGE) Reset() {
	for i := range t.base {
		t.base[i] = 2
	}
	for j := range t.tables {
		entries := t.tables[j].entries
		for i := range entries {
			entries[i] = tageEntry{}
		}
	}
	t.btb.Reset()
	t.history = 0
	t.Predictions = 0
	t.ProviderHits = [5]uint64{}
	t.Allocations = 0
	t.allocFailures = 0
}

func foldHistory(hist uint64, histLen, bits uint) uint32 {
	h := hist & (1<<histLen - 1)
	var f uint32
	for h != 0 {
		f ^= uint32(h) & (1<<bits - 1)
		h >>= bits
	}
	return f
}

func (t *tageTable) index(pc, hist uint64) uint64 {
	n := uint64(len(t.entries))
	folded := uint64(foldHistory(hist, t.histLen, uint(log2u(n))))
	return (pc>>2 ^ pc>>7 ^ folded) & (n - 1)
}

func (t *tageTable) tag(pc, hist uint64) uint32 {
	folded := foldHistory(hist, t.histLen, t.tagBits)
	return (uint32(pc>>2) ^ folded ^ foldHistory(hist, t.histLen, t.tagBits-1)<<1) & (1<<t.tagBits - 1)
}

func log2u(v uint64) uint {
	var n uint
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// provider finds the longest-history matching component; comp is -1 for
// the base predictor.
func (t *TAGE) provider(pc uint64) (comp int, idx uint64) {
	for i := len(t.tables) - 1; i >= 0; i-- {
		tab := &t.tables[i]
		j := tab.index(pc, t.history)
		if tab.entries[j].valid && tab.entries[j].tag == tab.tag(pc, t.history) {
			return i, j
		}
	}
	return -1, 0
}

// PredictBranch implements Predictor.
func (t *TAGE) PredictBranch(pc uint64) bool {
	t.Predictions++
	comp, idx := t.provider(pc)
	if comp >= 0 {
		t.ProviderHits[comp+1]++
		return t.tables[comp].entries[idx].ctr >= 0
	}
	t.ProviderHits[0]++
	return t.base[(pc>>2)&uint64(len(t.base)-1)] >= 2
}

// UpdateBranch implements Predictor. It trains the provider, allocates a
// new entry on mispredictions, and shifts the global history.
func (t *TAGE) UpdateBranch(pc uint64, taken bool) {
	comp, idx := t.provider(pc)
	var predicted bool
	if comp >= 0 {
		e := &t.tables[comp].entries[idx]
		predicted = e.ctr >= 0
		if taken {
			if e.ctr < 3 {
				e.ctr++
			}
		} else if e.ctr > -4 {
			e.ctr--
		}
		if predicted == taken && e.useful < 3 {
			e.useful++
		}
	} else {
		bi := (pc >> 2) & uint64(len(t.base)-1)
		predicted = t.base[bi] >= 2
		if taken {
			if t.base[bi] < 3 {
				t.base[bi]++
			}
		} else if t.base[bi] > 0 {
			t.base[bi]--
		}
	}

	// Allocate into a longer-history component on a misprediction.
	if predicted != taken && comp < len(t.tables)-1 {
		t.allocate(pc, comp+1, taken)
	}

	t.history = t.history<<1 | b2u64(taken)
}

func (t *TAGE) allocate(pc uint64, from int, taken bool) {
	for i := from; i < len(t.tables); i++ {
		tab := &t.tables[i]
		j := tab.index(pc, t.history)
		e := &tab.entries[j]
		if !e.valid || e.useful == 0 {
			ctr := int8(0)
			if !taken {
				ctr = -1
			}
			*e = tageEntry{tag: tab.tag(pc, t.history), ctr: ctr, valid: true}
			t.Allocations++
			return
		}
		e.useful-- // age the blocker so a future allocation succeeds
	}
	t.allocFailures++
}

// PredictTarget implements Predictor.
func (t *TAGE) PredictTarget(pc uint64) (uint64, bool) { return t.btb.Lookup(pc) }

// UpdateTarget implements Predictor.
func (t *TAGE) UpdateTarget(pc, target uint64) { t.btb.Update(pc, target) }

func b2u64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

var _ Predictor = (*TAGE)(nil)
