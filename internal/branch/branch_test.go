package branch

import (
	"math/rand"
	"testing"
)

func TestBTBLookupUpdate(t *testing.T) {
	b := NewBTB(4)
	if _, ok := b.Lookup(0x100); ok {
		t.Fatal("cold BTB hit")
	}
	b.Update(0x100, 0x200)
	if tgt, ok := b.Lookup(0x100); !ok || tgt != 0x200 {
		t.Fatalf("lookup = %#x, %v", tgt, ok)
	}
	b.Update(0x100, 0x300) // refresh
	if tgt, _ := b.Lookup(0x100); tgt != 0x300 {
		t.Fatalf("refresh failed: %#x", tgt)
	}
}

func TestBTBLRUReplacement(t *testing.T) {
	b := NewBTB(2)
	b.Update(1, 10)
	b.Update(2, 20)
	b.Lookup(1)     // 2 becomes LRU
	b.Update(3, 30) // evicts 2
	if _, ok := b.Lookup(2); ok {
		t.Fatal("LRU victim survived")
	}
	if _, ok := b.Lookup(1); !ok {
		t.Fatal("MRU entry evicted")
	}
}

func TestBHTLearnsBias(t *testing.T) {
	p := NewRocketPredictor()
	pc := uint64(0x400)
	for i := 0; i < 10; i++ {
		p.UpdateBranch(pc, true)
	}
	if !p.PredictBranch(pc) {
		t.Fatal("BHT did not learn taken bias")
	}
	for i := 0; i < 10; i++ {
		p.UpdateBranch(pc, false)
	}
	if p.PredictBranch(pc) {
		t.Fatal("BHT did not learn not-taken bias")
	}
}

func TestBHTColdPredictsNotTaken(t *testing.T) {
	p := NewRocketPredictor()
	if p.PredictBranch(0x1234) {
		t.Fatal("Rocket BHT must cold-predict not-taken (brmiss case study)")
	}
}

func TestTAGEColdPredictsTaken(t *testing.T) {
	p := NewBoomPredictor()
	if !p.PredictBranch(0x1234) {
		t.Fatal("BOOM TAGE must cold-predict taken (brmiss case study)")
	}
}

// accuracy trains a predictor on a branch outcome function and returns the
// fraction predicted correctly over the second half of the run.
func accuracy(p Predictor, outcome func(i int) bool, n int) float64 {
	correct, counted := 0, 0
	for i := 0; i < n; i++ {
		taken := outcome(i)
		pred := p.PredictBranch(0x800)
		if i >= n/2 {
			counted++
			if pred == taken {
				correct++
			}
		}
		p.UpdateBranch(0x800, taken)
	}
	return float64(correct) / float64(counted)
}

func TestTAGELearnsPeriodicPattern(t *testing.T) {
	// Period-7 pattern: beyond bimodal, needs history. TAGE should nail
	// it; the BHT should not.
	pattern := func(i int) bool { return i%7 == 0 }
	tage := accuracy(NewBoomPredictor(), pattern, 4000)
	bht := accuracy(NewRocketPredictor(), pattern, 4000)
	if tage < 0.95 {
		t.Fatalf("TAGE accuracy on periodic pattern = %.2f", tage)
	}
	if bht > tage {
		t.Fatalf("BHT (%.2f) beat TAGE (%.2f) on a history pattern", bht, tage)
	}
}

func TestPredictorsNearChanceOnRandom(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	outcomes := make([]bool, 4000)
	for i := range outcomes {
		outcomes[i] = r.Intn(2) == 0
	}
	f := func(i int) bool { return outcomes[i] }
	for _, tc := range []struct {
		name string
		p    Predictor
	}{{"tage", NewBoomPredictor()}, {"bht", NewRocketPredictor()}} {
		acc := accuracy(tc.p, f, len(outcomes))
		if acc > 0.62 {
			t.Errorf("%s accuracy %.2f on random outcomes (should be near chance)", tc.name, acc)
		}
	}
}

func TestTAGELearnsLoopBranch(t *testing.T) {
	// Loop branch: taken 15 times, then not taken, repeating.
	pattern := func(i int) bool { return i%16 != 15 }
	if acc := accuracy(NewBoomPredictor(), pattern, 6400); acc < 0.9 {
		t.Fatalf("TAGE loop-branch accuracy %.2f", acc)
	}
}

func TestTAGEStats(t *testing.T) {
	p := NewBoomPredictor()
	for i := 0; i < 100; i++ {
		p.PredictBranch(uint64(i * 4))
		p.UpdateBranch(uint64(i*4), i%2 == 0)
	}
	if p.Predictions != 100 {
		t.Fatalf("predictions = %d", p.Predictions)
	}
	var provided uint64
	for _, n := range p.ProviderHits {
		provided += n
	}
	if provided != 100 {
		t.Fatalf("provider hits sum to %d", provided)
	}
}

func TestFoldHistory(t *testing.T) {
	if foldHistory(0, 10, 5) != 0 {
		t.Fatal("fold of empty history nonzero")
	}
	// Folding must be confined to `bits` bits.
	for h := uint64(1); h < 1<<16; h = h*3 + 1 {
		if f := foldHistory(h, 36, 9); f >= 1<<9 {
			t.Fatalf("fold overflow: %#x", f)
		}
	}
}
