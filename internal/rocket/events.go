// Package rocket implements a cycle-level timing model of the Rocket core:
// a 5-stage in-order RV64 pipeline with 2-wide fetch, single issue, a
// 512-entry BHT + 28-entry BTB, blocking loads, and the full Table I event
// list including the three events Icicle adds for TMA (Instr-issued,
// Fetch-bubbles, Recovering).
package rocket

import "icicle/internal/pmu"

// Event set IDs, following the Chipyard grouping (§II-A, Table I).
const (
	SetBasic     = 0
	SetMicroarch = 1
	SetMemory    = 2
	SetTMA       = 3 // events added by this work
)

// Event names. The names are the stable API between the core, the perf
// harness, and the TMA model.
const (
	EvCycles  = "cycles"
	EvInstRet = "instructions-retired"
	EvLoad    = "load"
	EvStore   = "store"
	EvSystem  = "system"
	EvArith   = "arith"
	EvBranch  = "branch"
	EvFence   = "fence"
	EvJump    = "jump"
	EvAtomic  = "atomic"

	EvLoadUseInterlock = "load-use-interlock"
	EvLongLatency      = "long-latency-interlock"
	EvCSRInterlock     = "csr-interlock"
	EvICacheBlocked    = "icache-blocked"
	EvDCacheBlocked    = "dcache-blocked"
	EvBrMispredict     = "cobr-mispredict"
	EvFlush            = "flush"
	EvReplay           = "replay"
	EvCFTargetMiss     = "cf-target-mispredict"
	EvMulDivInterlock  = "muldiv-interlock"

	EvICacheMiss = "icache-miss"
	EvDCacheMiss = "dcache-miss"
	EvDCacheRel  = "dcache-release"
	EvITLBMiss   = "itlb-miss"
	EvDTLBMiss   = "dtlb-miss"
	EvL2TLBMiss  = "l2tlb-miss"

	// TMA events added by Icicle (§IV-A, Table I: 3 new Rocket events).
	EvInstIssued   = "instructions-issued"
	EvFetchBubbles = "fetch-bubbles"
	EvRecovering   = "recovering"
)

// Events is Rocket's event space. Rocket is single-issue, so every event
// has one source.
var Events = pmu.MustSpace([]pmu.Event{
	{Name: EvCycles, Set: SetBasic, Bit: 0, Sources: 1},
	{Name: EvInstRet, Set: SetBasic, Bit: 1, Sources: 1},
	{Name: EvLoad, Set: SetBasic, Bit: 2, Sources: 1},
	{Name: EvStore, Set: SetBasic, Bit: 3, Sources: 1},
	{Name: EvSystem, Set: SetBasic, Bit: 4, Sources: 1},
	{Name: EvArith, Set: SetBasic, Bit: 5, Sources: 1},
	{Name: EvBranch, Set: SetBasic, Bit: 6, Sources: 1},
	{Name: EvFence, Set: SetBasic, Bit: 7, Sources: 1},
	{Name: EvJump, Set: SetBasic, Bit: 8, Sources: 1},
	{Name: EvAtomic, Set: SetBasic, Bit: 9, Sources: 1},

	{Name: EvLoadUseInterlock, Set: SetMicroarch, Bit: 0, Sources: 1},
	{Name: EvLongLatency, Set: SetMicroarch, Bit: 1, Sources: 1},
	{Name: EvCSRInterlock, Set: SetMicroarch, Bit: 2, Sources: 1},
	{Name: EvICacheBlocked, Set: SetMicroarch, Bit: 3, Sources: 1},
	{Name: EvDCacheBlocked, Set: SetMicroarch, Bit: 4, Sources: 1},
	{Name: EvBrMispredict, Set: SetMicroarch, Bit: 5, Sources: 1},
	{Name: EvFlush, Set: SetMicroarch, Bit: 6, Sources: 1},
	{Name: EvReplay, Set: SetMicroarch, Bit: 7, Sources: 1},
	{Name: EvCFTargetMiss, Set: SetMicroarch, Bit: 8, Sources: 1},
	{Name: EvMulDivInterlock, Set: SetMicroarch, Bit: 9, Sources: 1},

	{Name: EvICacheMiss, Set: SetMemory, Bit: 0, Sources: 1},
	{Name: EvDCacheMiss, Set: SetMemory, Bit: 1, Sources: 1},
	{Name: EvDCacheRel, Set: SetMemory, Bit: 2, Sources: 1},
	{Name: EvITLBMiss, Set: SetMemory, Bit: 3, Sources: 1},
	{Name: EvDTLBMiss, Set: SetMemory, Bit: 4, Sources: 1},
	{Name: EvL2TLBMiss, Set: SetMemory, Bit: 5, Sources: 1},

	{Name: EvInstIssued, Set: SetTMA, Bit: 0, Sources: 1},
	{Name: EvFetchBubbles, Set: SetTMA, Bit: 1, Sources: 1},
	{Name: EvRecovering, Set: SetTMA, Bit: 2, Sources: 1},
})

// Interned sample indices, resolved once at package init so the per-cycle
// hot path asserts events by integer instead of a map lookup per call.
// noEvent marks "no event" in APIs that take an optional index.
const noEvent = -1

var (
	idCycles           = Events.MustIndex(EvCycles)
	idInstRet          = Events.MustIndex(EvInstRet)
	idLoad             = Events.MustIndex(EvLoad)
	idStore            = Events.MustIndex(EvStore)
	idSystem           = Events.MustIndex(EvSystem)
	idArith            = Events.MustIndex(EvArith)
	idBranch           = Events.MustIndex(EvBranch)
	idFence            = Events.MustIndex(EvFence)
	idJump             = Events.MustIndex(EvJump)
	idAtomic           = Events.MustIndex(EvAtomic)
	idLoadUseInterlock = Events.MustIndex(EvLoadUseInterlock)
	idLongLatency      = Events.MustIndex(EvLongLatency)
	idCSRInterlock     = Events.MustIndex(EvCSRInterlock)
	idICacheBlocked    = Events.MustIndex(EvICacheBlocked)
	idDCacheBlocked    = Events.MustIndex(EvDCacheBlocked)
	idBrMispredict     = Events.MustIndex(EvBrMispredict)
	idFlush            = Events.MustIndex(EvFlush)
	idReplay           = Events.MustIndex(EvReplay)
	idCFTargetMiss     = Events.MustIndex(EvCFTargetMiss)
	idMulDivInterlock  = Events.MustIndex(EvMulDivInterlock)
	idICacheMiss       = Events.MustIndex(EvICacheMiss)
	idDCacheMiss       = Events.MustIndex(EvDCacheMiss)
	idDCacheRel        = Events.MustIndex(EvDCacheRel)
	idITLBMiss         = Events.MustIndex(EvITLBMiss)
	idDTLBMiss         = Events.MustIndex(EvDTLBMiss)
	idL2TLBMiss        = Events.MustIndex(EvL2TLBMiss)
	idInstIssued       = Events.MustIndex(EvInstIssued)
	idFetchBubbles     = Events.MustIndex(EvFetchBubbles)
	idRecovering       = Events.MustIndex(EvRecovering)
)
