package rocket

import (
	"icicle/internal/mem"
	"icicle/internal/pmu"
)

// Config parameterizes the Rocket timing model. DefaultConfig matches
// Table IV's Rocket row (2-wide fetch, 1-wide decode/issue, 512-entry BHT,
// 28-entry BTB) over the paper's common memory hierarchy.
type Config struct {
	FetchWidth  int // instructions fetched per cycle
	IBufEntries int // instruction buffer capacity

	BrMispredictPenalty int // frontend recovery cycles after a mispredict
	TakenBubble         int // dead fetch cycles after any taken-CF redirect
	BTBMissPenalty      int // fetch redirect bubble for taken CF without BTB hit
	JALRPenalty         int // redirect cost when a jalr target misses in the BTB
	LoadUseDelay        int // extra cycles before a load's value is usable
	MulLatency          int // pipelined multiply latency
	DivLatency          int // blocking divide latency
	CSRLatency          int // csr access serialization cost
	FencePenalty        int // pipeline flush cost for fence
	FenceIPenalty       int // fence.i: flush pipeline and I$

	Hierarchy mem.HierarchyConfig
	PMUArch   pmu.Architecture

	MaxCycles uint64 // simulation guard (0 = default)
	MaxInsts  uint64 // instruction budget (0 = default)
}

// DefaultConfig returns the paper's Rocket configuration.
func DefaultConfig() Config {
	return Config{
		FetchWidth:          2,
		IBufEntries:         3,
		BrMispredictPenalty: 3,
		TakenBubble:         1,
		BTBMissPenalty:      2,
		JALRPenalty:         3,
		LoadUseDelay:        1,
		MulLatency:          4,
		DivLatency:          16,
		CSRLatency:          2,
		FencePenalty:        4,
		FenceIPenalty:       8,
		Hierarchy:           mem.DefaultHierarchyConfig(2),
		PMUArch:             pmu.AddWires,
		MaxCycles:           2_000_000_000,
		MaxInsts:            500_000_000,
	}
}

// CommitWidth returns Rocket's commit width (always 1: single issue).
func (Config) CommitWidth() int { return 1 }

// IssueWidth returns Rocket's issue width (always 1).
func (Config) IssueWidth() int { return 1 }
