package rocket

import (
	"fmt"

	"icicle/internal/asm"
	"icicle/internal/branch"
	"icicle/internal/isa"
	"icicle/internal/mem"
	"icicle/internal/obs"
	"icicle/internal/pmu"
	"icicle/internal/stats"
)

// CycleHook observes every simulated cycle (used by the trace bridge).
// The sample must not be retained across calls.
type CycleHook func(cycle uint64, sample pmu.Sample)

// producer kinds drive interlock-event attribution.
type producerKind uint8

const (
	prodNone producerKind = iota
	prodLoad
	prodLongLatency // load that missed
	prodMulDiv
	prodCSR
)

// fetchEntry is one instruction buffer slot.
type fetchEntry struct {
	rec          isa.Retired
	availableAt  uint64
	mispredicted bool // direction mispredict, resolves at execute
}

// Core is the Rocket timing model. Create with New, drive with Run.
type Core struct {
	Cfg  Config
	CPU  *isa.CPU
	Hier *mem.Hierarchy
	Pred branch.Predictor
	PMU  *pmu.PMU

	memory *mem.Sparse

	sample pmu.Sample
	tally  *stats.Tally // exact per-event totals (source assertions)
	hook   CycleHook

	// Event-driven skip state (see skip.go): noSkip disables the
	// quiescent-stretch fast path (engine choice, never part of the memo
	// key — results are bit-identical either way); skipLimit is the
	// exclusive cycle bound the active run loop imposes so a bulk jump
	// never overshoots a window end or the cycle budget (0 = skipping
	// off, the safe default for any future caller that forgets to set
	// it); skipped/skipEvents count bulk-advanced cycles and jumps.
	noSkip     bool
	skipLimit  uint64
	skipped    uint64
	skipEvents uint64
	// quiet records that the previous cycle's stages mutated nothing
	// observable (nothing issued, fetched, or squashed). quiesceTarget
	// can only prove a skip right after such a cycle, so busy cycles pay
	// three compares instead of the full predicate. Purely a performance
	// gate: a stale false only delays a skip by one cycle, never changes
	// results.
	quiet bool

	// Host-side throughput telemetry (nil = disabled, zero cost beyond
	// one pointer test per flush check). The handle survives Reset so a
	// pooled core keeps publishing; the baselines are re-zeroed with the
	// cycle counter.
	tel       *obs.CoreTelemetry
	telCycles uint64
	telInsts  uint64
	telSkipC  uint64
	telSkipE  uint64

	cycle uint64

	// frontend; ibuf is a ring: live entries are ibuf[ibufHead:],
	// compacted on push so the backing array never creeps past
	// IBufEntries.
	ibuf           []fetchEntry
	ibufHead       int
	putback        []isa.Retired // squashed records, re-fetched in order
	fetchBlocked   bool          // wrong-path fetch after an undetected mispredict
	fetchStall     uint64        // redirect bubbles (BTB/target misses)
	refillUntil    uint64        // I$ refill completes at this cycle
	lastFetchBlock uint64
	haveFetchBlock bool

	// backend
	recovering     int  // minimum redirect cycles remaining
	recoveringFlag bool // set at mispredict, cleared when fetch delivers
	stallUntil     uint64
	stallEvents    []int // events asserted during the stall
	replayAt       uint64
	regReady       [32]uint64
	regProd        [32]producerKind

	retiredTotal uint64
	done         bool
}

// New builds a core executing prog.
func New(cfg Config, prog *asm.Program) *Core {
	memory := mem.NewSparse()
	prog.LoadInto(memory)
	hier := mem.NewHierarchy(cfg.Hierarchy)
	p := pmu.New(Events, cfg.PMUArch)
	cpu := isa.NewCPU(memory, prog.Entry)
	cpu.CSR = p
	return &Core{
		Cfg:         cfg,
		CPU:         cpu,
		Hier:        hier,
		Pred:        branch.NewRocketPredictor(),
		PMU:         p,
		memory:      memory,
		sample:      Events.NewSample(),
		tally:       stats.NewTally(Events.SourceCounts()),
		noSkip:      !DefaultStallSkip,
		ibuf:        make([]fetchEntry, 0, cfg.IBufEntries),
		putback:     make([]isa.Retired, 0, cfg.IBufEntries),
		stallEvents: make([]int, 0, 1),
	}
}

// Reset returns the core to power-on state with prog loaded, reusing
// every internal buffer (the instruction buffer, cache and predictor
// arrays, the sparse-memory frames — zeroed in place, then the program
// image is copied back in). A Reset core behaves byte-identically to a
// freshly built one — sim's core pool depends on that — and a warmed
// core resets without allocating.
func (c *Core) Reset(prog *asm.Program) {
	c.memory.Reset()
	prog.LoadInto(c.memory)
	c.CPU.Reset(prog.Entry)
	c.Hier.Reset()
	branch.Reset(c.Pred)
	c.PMU.Reset()
	c.sample.Reset()
	c.tally.Reset()
	c.hook = nil
	c.cycle = 0
	c.telCycles = 0
	c.telInsts = 0
	c.telSkipC = 0
	c.telSkipE = 0
	// noSkip survives Reset like the telemetry handle: an engine choice,
	// not program state (results are bit-identical either way).
	c.skipLimit = 0
	c.skipped = 0
	c.skipEvents = 0
	c.quiet = false

	c.ibuf = c.ibuf[:0]
	c.ibufHead = 0
	c.putback = c.putback[:0]
	c.fetchBlocked = false
	c.fetchStall = 0
	c.refillUntil = 0
	c.lastFetchBlock = 0
	c.haveFetchBlock = false

	c.recovering = 0
	c.recoveringFlag = false
	c.stallUntil = 0
	c.stallEvents = c.stallEvents[:0]
	c.replayAt = 0
	c.regReady = [32]uint64{}
	c.regProd = [32]producerKind{}

	c.retiredTotal = 0
	c.done = false
}

// SetCycleHook installs a per-cycle observer (the trace bridge).
func (c *Core) SetCycleHook(h CycleHook) { c.hook = h }

// SetTelemetry installs the host-side throughput handle (nil disables).
// Unlike the cycle hook it survives Reset, so the sim core pool installs
// it once per acquisition.
func (c *Core) SetTelemetry(t *obs.CoreTelemetry) { c.tel = t }

// flushTelemetry publishes the (cycles, insts) delta since the last flush.
func (c *Core) flushTelemetry() {
	if c.tel == nil {
		return
	}
	c.tel.Add(c.cycle-c.telCycles, c.retiredTotal-c.telInsts)
	c.tel.AddSkip(c.skipped-c.telSkipC, c.skipEvents-c.telSkipE)
	c.telCycles, c.telInsts = c.cycle, c.retiredTotal
	c.telSkipC, c.telSkipE = c.skipped, c.skipEvents
}

// Cycles returns the cycles simulated so far (the final count after Run).
func (c *Core) Cycles() uint64 { return c.cycle }

// Insts returns the instructions retired so far.
func (c *Core) Insts() uint64 { return c.retiredTotal }

// assert raises an event by its interned sample index (see events.go); the
// per-cycle loop asserts dozens of events, so no map lookups here.
func (c *Core) assert(ev int) { c.sample.Assert(ev, 0) }

// stream: pull the next dynamic instruction, preferring squashed records.
func (c *Core) next() (isa.Retired, bool, error) {
	if n := len(c.putback); n > 0 {
		r := c.putback[n-1]
		c.putback = c.putback[:n-1]
		return r, true, nil
	}
	if c.CPU.Halted {
		return isa.Retired{}, false, nil
	}
	r, err := c.CPU.Step()
	if err != nil {
		return isa.Retired{}, false, err
	}
	return r, true, nil
}

func (c *Core) streamEmpty() bool { return len(c.putback) == 0 && c.CPU.Halted }

// --- instruction buffer ring ---

func (c *Core) ibufLen() int { return len(c.ibuf) - c.ibufHead }

// ibufPush appends an entry, compacting the consumed head first when the
// backing array (capacity IBufEntries) is full — so pushes never grow it.
func (c *Core) ibufPush(e fetchEntry) {
	if len(c.ibuf) == cap(c.ibuf) && c.ibufHead > 0 {
		n := copy(c.ibuf, c.ibuf[c.ibufHead:])
		c.ibuf = c.ibuf[:n]
		c.ibufHead = 0
	}
	c.ibuf = append(c.ibuf, e)
}

func (c *Core) ibufPop() {
	c.ibufHead++
	if c.ibufHead == len(c.ibuf) {
		c.ibuf = c.ibuf[:0]
		c.ibufHead = 0
	}
}

// squash returns the not-yet-issued instruction buffer to the stream.
func (c *Core) squash() {
	for i := len(c.ibuf) - 1; i >= c.ibufHead; i-- {
		c.putback = append(c.putback, c.ibuf[i].rec)
	}
	c.ibuf = c.ibuf[:0]
	c.ibufHead = 0
}

// Result is the outcome of a simulation.
type Result struct {
	Cycles uint64
	Insts  uint64
	Tally  map[string]uint64 // exact event totals
	L1I    mem.CacheStats
	L1D    mem.CacheStats
	L2     mem.CacheStats
	Exit   uint64
}

// IPC returns instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Insts) / float64(r.Cycles)
}

// Run simulates until the workload halts and the pipeline drains.
func (c *Core) Run() (Result, error) {
	if err := c.RunCycles(); err != nil {
		return Result{}, err
	}
	return c.Result(), nil
}

// RunCycles simulates until the workload halts and the pipeline drains,
// without materializing the map-shaped Result: on a warmed (Reset) core
// the whole loop performs no heap allocation. Call Result afterwards.
func (c *Core) RunCycles() error {
	maxCycles := c.Cfg.MaxCycles
	if maxCycles == 0 {
		maxCycles = 2_000_000_000
	}
	c.skipLimit = maxCycles
	for !c.done {
		if c.cycle >= maxCycles {
			c.flushTelemetry()
			return fmt.Errorf("rocket: cycle budget %d exhausted (pc 0x%x)", maxCycles, c.CPU.PC)
		}
		if err := c.step(); err != nil {
			c.flushTelemetry()
			return err
		}
	}
	c.flushTelemetry()
	return nil
}

// Result converts the dense tallies into the map-shaped result. The map
// is freshly allocated — it stays valid after the core is Reset and
// reused.
func (c *Core) Result() Result {
	res := Result{
		Cycles: c.cycle,
		Insts:  c.retiredTotal,
		Tally:  make(map[string]uint64, c.tally.Len()),
		L1I:    c.Hier.L1I.Stats(),
		L1D:    c.Hier.L1D.Stats(),
		L2:     c.Hier.L2.Stats(),
		Exit:   c.CPU.ExitCode,
	}
	for i, e := range Events.Events {
		res.Tally[e.Name] = c.tally.Totals[i]
	}
	return res
}

// step advances one cycle — or, when the core is provably quiescent, a
// whole stretch of identical cycles at once: the stage functions run once
// (they cannot mutate state on a quiescent cycle), and the resulting
// sample is bulk-applied for the skipped cycles, bit-identical to
// stepping each one (see skip.go for the proof obligations).
func (c *Core) step() error {
	var bulk uint64
	if c.quiet && !c.noSkip && c.hook == nil && c.skipLimit != 0 {
		if target, ok := c.quiesceTarget(); ok {
			if target > c.skipLimit {
				target = c.skipLimit
			}
			if target > c.cycle+1 {
				bulk = target - c.cycle - 1
			}
		}
	}

	c.sample.Reset()
	c.assert(idCycles)
	ibufBefore := c.ibufLen()
	putbackBefore := len(c.putback)
	retired := c.issueStage()
	if err := c.fetchStage(); err != nil {
		return err
	}
	// A cycle is quiet when neither stage moved anything: nothing issued
	// (covers every execute/squash mutation) and nothing entered or left
	// the instruction stream. Recovering/stall countdowns slip through as
	// "quiet", but quiesceTarget rejects those in its first compares.
	c.quiet = retired == 0 && c.ibufLen() == ibufBefore &&
		len(c.putback) == putbackBefore

	// I$-blocked heuristic (§IV-A): refill in progress and no valid
	// instructions buffered.
	if c.refillUntil > c.cycle && c.ibufLen() == 0 {
		c.assert(idICacheBlocked)
	}

	// Exact tallies and PMU, for this cycle plus any bulk-skipped ones.
	c.tally.AddSample(c.sample, 1+bulk)
	if bulk == 0 {
		c.PMU.Tick(c.sample, retired)
	} else {
		// retired is provably 0 on a quiescent cycle, so the repeated
		// sample is the whole story for the PMU too.
		c.PMU.TickN(c.sample, retired, 1+bulk)
		c.skipped += bulk
		c.skipEvents++
	}
	if c.hook != nil {
		c.hook(c.cycle, c.sample)
	}
	prev := c.cycle
	c.cycle += 1 + bulk
	if c.tel != nil && (prev^c.cycle)&^uint64(obs.TelemetryFlushInterval-1) != 0 {
		c.flushTelemetry()
	}

	if c.streamEmpty() && c.ibufLen() == 0 && c.stallUntil <= c.cycle &&
		c.recovering == 0 {
		c.done = true
	}
	return nil
}

// issueStage models decode/issue/execute/retire (single issue). It returns
// the number of instructions retired this cycle.
func (c *Core) issueStage() int {
	// Multi-cycle stall in progress (blocking D$ miss, fence, CSR).
	if c.stallUntil > c.cycle {
		for _, ev := range c.stallEvents {
			c.sample.Assert(ev, 0)
		}
		if c.replayAt == c.cycle {
			c.assert(idInstIssued)
			c.assert(idReplay)
		}
		return 0
	}

	// Frontend recovery after a resolved mispredict.
	if c.recovering > 0 {
		c.assert(idRecovering)
		c.recovering--
		return 0
	}

	// Instruction buffer empty (or entry still in flight): a fetch
	// bubble — unless the frontend is still recovering from a flush
	// (e.g. the redirect target missed the I-cache), in which case the
	// lost cycle belongs to Bad Speculation (§IV-A).
	if c.ibufLen() == 0 || c.ibuf[c.ibufHead].availableAt > c.cycle {
		if c.recoveringFlag {
			c.assert(idRecovering)
		} else if !c.streamEmpty() || c.ibufLen() > 0 {
			c.assert(idFetchBubbles)
		}
		return 0
	}

	c.recoveringFlag = false // a packet is valid again
	e := c.ibuf[c.ibufHead]
	in := e.rec.Inst

	// Operand interlocks.
	rs1, rs2 := in.SrcRegs()
	blockReg, ready := rs1, c.regReady[rs1]
	if c.regReady[rs2] > ready {
		blockReg, ready = rs2, c.regReady[rs2]
	}
	if ready > c.cycle {
		switch c.regProd[blockReg] {
		case prodLoad:
			c.assert(idLoadUseInterlock)
		case prodLongLatency:
			c.assert(idLongLatency)
		case prodMulDiv:
			c.assert(idMulDivInterlock)
		case prodCSR:
			c.assert(idCSRInterlock)
		}
		return 0
	}

	// Issue.
	c.ibufPop()
	c.assert(idInstIssued)
	c.execute(e)

	// Retire (in-order, same cycle for accounting purposes).
	c.assert(idInstRet)
	c.retiredTotal++
	return 1
}

// execute applies per-class timing.
func (c *Core) execute(e fetchEntry) {
	in := e.rec.Inst
	rd := in.DestReg()
	switch in.Op.Class() {
	case isa.ClassALU:
		c.assert(idArith)
		c.setDest(rd, c.cycle+1, prodNone)

	case isa.ClassLoad:
		c.assert(idLoad)
		d := c.Hier.AccessD(e.rec.MemAddr, false, c.cycle)
		c.noteDTLB(d)
		if d.Miss {
			c.assert(idDCacheMiss)
			if d.Writeback {
				c.assert(idDCacheRel)
			}
			// Blocking miss: the pipeline stalls and the load replays.
			c.beginStall(uint64(d.Latency)+1, idDCacheBlocked)
			c.replayAt = c.stallUntil - 1
			c.setDest(rd, c.stallUntil, prodLongLatency)
		} else {
			c.setDest(rd, c.cycle+1+uint64(c.Cfg.LoadUseDelay), prodLoad)
		}

	case isa.ClassStore:
		c.assert(idStore)
		d := c.Hier.AccessD(e.rec.MemAddr, true, c.cycle)
		c.noteDTLB(d)
		if d.Miss {
			c.assert(idDCacheMiss)
			if d.Writeback {
				c.assert(idDCacheRel)
			}
			// Write-buffered: no pipeline stall.
		}

	case isa.ClassAtomic:
		// Read-modify-write holds the D$ port: a hit costs an extra
		// cycle, a miss blocks like a load.
		c.assert(idAtomic)
		d := c.Hier.AccessD(e.rec.MemAddr, true, c.cycle)
		c.noteDTLB(d)
		if d.Miss {
			c.assert(idDCacheMiss)
			if d.Writeback {
				c.assert(idDCacheRel)
			}
			c.beginStall(uint64(d.Latency)+2, idDCacheBlocked)
			c.replayAt = c.stallUntil - 1
			c.setDest(rd, c.stallUntil, prodLongLatency)
		} else {
			c.beginStall(1, noEvent)
			c.setDest(rd, c.cycle+2+uint64(c.Cfg.LoadUseDelay), prodLoad)
		}

	case isa.ClassMul:
		c.assert(idArith)
		c.setDest(rd, c.cycle+uint64(c.Cfg.MulLatency), prodMulDiv)

	case isa.ClassDiv:
		c.assert(idArith)
		c.setDest(rd, c.cycle+uint64(c.Cfg.DivLatency), prodMulDiv)

	case isa.ClassBranch:
		c.assert(idBranch)
		c.Pred.UpdateBranch(e.rec.PC, e.rec.Taken)
		if e.mispredicted {
			c.assert(idBrMispredict)
			c.assert(idFlush)
			c.recovering = c.Cfg.BrMispredictPenalty
			c.recoveringFlag = true
			c.fetchBlocked = false
			c.squash()
		}

	case isa.ClassJump:
		c.assert(idJump)
		c.setDest(rd, c.cycle+1, prodNone)

	case isa.ClassFence:
		c.assert(idFence)
		c.assert(idFlush)
		if in.Op == isa.FENCEI {
			c.Hier.L1I.Flush()
			c.haveFetchBlock = false
			c.beginStall(uint64(c.Cfg.FenceIPenalty), noEvent)
		} else {
			c.beginStall(uint64(c.Cfg.FencePenalty), noEvent)
		}

	case isa.ClassCSR:
		c.assert(idSystem)
		c.beginStall(uint64(c.Cfg.CSRLatency), noEvent)
		c.setDest(rd, c.stallUntil, prodCSR)

	case isa.ClassSystem:
		c.assert(idSystem)
		// ecall/ebreak: the functional model has already halted (or
		// continued); no extra timing beyond a flush-like cost.
		c.beginStall(uint64(c.Cfg.CSRLatency), noEvent)
	}
}

func (c *Core) setDest(rd isa.Reg, readyAt uint64, kind producerKind) {
	if rd == isa.X0 {
		return
	}
	c.regReady[rd] = readyAt
	c.regProd[rd] = kind
}

// beginStall blocks the issue stage until now+n; ev (an interned sample
// index, or noEvent) is asserted each stalled cycle.
func (c *Core) beginStall(n uint64, ev int) {
	c.stallUntil = c.cycle + 1 + n
	c.stallEvents = c.stallEvents[:0]
	if ev != noEvent {
		c.stallEvents = append(c.stallEvents, ev)
	}
	c.replayAt = 0
}

func (c *Core) noteDTLB(d mem.DResult) {
	if d.TLBMiss {
		c.assert(idDTLBMiss)
	}
	if d.L2TLBMiss {
		c.assert(idL2TLBMiss)
	}
}

// fetchStage refills the instruction buffer.
func (c *Core) fetchStage() error {
	if c.recovering > 0 || c.fetchBlocked || c.fetchStall > c.cycle ||
		c.refillUntil > c.cycle {
		return nil
	}
	// The fetch group is aligned: a redirect into the second slot of a
	// FetchWidth-instruction window only delivers the window's tail that
	// cycle — the §III source of warm-cache fetch bubbles.
	window := c.Cfg.FetchWidth
	for n := 0; n < window && c.ibufLen() < c.Cfg.IBufEntries; n++ {
		rec, ok, err := c.next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if n == 0 {
			off := int(rec.PC/isa.InstBytes) & (c.Cfg.FetchWidth - 1)
			window = c.Cfg.FetchWidth - off
			if window < 1 {
				window = 1
			}
		}
		// I-cache access per fetch packet start or block change.
		blk := c.Hier.L1I.BlockAddr(rec.PC)
		if n == 0 && (!c.haveFetchBlock || blk != c.lastFetchBlock) {
			ir := c.Hier.AccessI(rec.PC, c.cycle)
			c.lastFetchBlock, c.haveFetchBlock = blk, true
			if ir.TLBMiss {
				c.assert(idITLBMiss)
			}
			if ir.L2TLBMiss {
				c.assert(idL2TLBMiss)
			}
			if ir.Miss {
				c.assert(idICacheMiss)
			}
			if ir.Latency > 0 {
				// Demand miss or late prefetch: the refill is still in
				// flight. The instruction is not delivered; re-fetch it
				// once the refill lands.
				c.refillUntil = c.cycle + uint64(ir.Latency)
				c.putback = append(c.putback, rec)
				return nil
			}
		}
		entry := fetchEntry{rec: rec, availableAt: c.cycle + 1}

		redirecting := rec.NextPC != rec.PC+isa.InstBytes
		switch rec.Inst.Op.Class() {
		case isa.ClassBranch:
			pred := c.Pred.PredictBranch(rec.PC)
			entry.mispredicted = pred != rec.Taken
			c.ibufPush(entry)
			if entry.mispredicted {
				// Frontend runs down the wrong path until the branch
				// resolves at execute.
				c.fetchBlocked = true
				return nil
			}
			if rec.Taken {
				c.redirect(rec, c.Cfg.BTBMissPenalty)
				return nil
			}
		case isa.ClassJump:
			c.ibufPush(entry)
			if redirecting {
				pen := 1 // jal: target known at decode
				if rec.Inst.Op == isa.JALR {
					pen = c.Cfg.JALRPenalty
				}
				c.redirect(rec, pen)
				return nil
			}
		default:
			c.ibufPush(entry)
			if redirecting {
				// ecall or similar: stop the packet.
				return nil
			}
		}
	}
	return nil
}

// redirect charges the fetch-redirect cost for a taken control-flow
// instruction: free on a correct BTB target, a short stall otherwise.
func (c *Core) redirect(rec isa.Retired, missPenalty int) {
	target, ok := c.Pred.PredictTarget(rec.PC)
	if ok && target == rec.NextPC {
		// Predicted redirect: the fetch stream still breaks while the PC
		// wraps around the frontend — the §III warm-cache bubble source.
		if c.Cfg.TakenBubble > 0 {
			c.fetchStall = c.cycle + uint64(c.Cfg.TakenBubble)
		}
		return
	}
	c.assert(idCFTargetMiss)
	c.fetchStall = c.cycle + uint64(missPenalty)
	c.Pred.UpdateTarget(rec.PC, rec.NextPC)
}
