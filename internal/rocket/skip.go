package rocket

// Event-driven stall skipping (DESIGN.md "Event-driven detailed cycle
// loops"): when the core is provably quiescent — the issue stage cannot
// issue and the fetch stage cannot deliver — every cycle until the next
// wake-up event replays the exact same event sample and mutates nothing,
// so the loop jumps the clock and bulk-accounts the sample instead of
// stepping. The proof obligations quiesceTarget discharges:
//
//  1. No stage mutates state on a quiescent cycle (the one real step()
//     the skip path still runs is a no-op apart from the sample).
//  2. The sample is constant across the stretch: every predicate the
//     stages consult either reads constant state or is a "until cycle X"
//     timer, and every such X bounds the returned target.
//  3. The stretch ends no later than the earliest wake-up: stall expiry,
//     replay cycle, operand-ready cycle, head-available cycle, fetch
//     redirect/refill expiry. A smaller target is always safe — the loop
//     simply re-evaluates — so the bound may be conservative, never late.
//
// Deliberately NOT part of Config: skipping is an engine choice with
// bit-identical results (like isa.DefaultSuperblocks), so it must not
// perturb sim memo keys.

// DefaultStallSkip is the construction-time default for the event-driven
// skip path. The -no-skip CLI ablation flips it before any core is built.
var DefaultStallSkip = true

// SetStallSkip enables or disables the event-driven skip path on this
// core. The setting survives Reset (an engine choice, like telemetry);
// results are bit-identical either way.
func (c *Core) SetStallSkip(on bool) { c.noSkip = !on }

// StallSkip reports whether the event-driven skip path is enabled.
func (c *Core) StallSkip() bool { return !c.noSkip }

// SkipStats returns how many cycles were bulk-advanced and in how many
// jumps since the last Reset.
func (c *Core) SkipStats() (cycles, events uint64) { return c.skipped, c.skipEvents }

// quiesceTarget reports whether the core is quiescent at the current
// cycle and, if so, the earliest future cycle at which any stage can act
// or any sampled event can change. The caller caps the target at the run
// loop's window/budget bound and re-enters the normal step there.
func (c *Core) quiesceTarget() (uint64, bool) {
	// Phase 1: pure O(1) rejection tests, ordered so the common busy
	// cycle exits after a handful of compares. Bounds are computed only
	// in phase 2, once the cycle is known quiescent.
	//
	// recovering decrements every cycle (a mutation) and its expiry is
	// not a simple "until" timer — never skip through it.
	if c.recovering > 0 {
		return 0, false
	}
	t := c.cycle
	// Backend: the issue stage must have nothing to do this cycle.
	var interlock uint64 // phase-2 bound when the head is interlocked
	switch {
	case c.stallUntil > t:
		// Multi-cycle stall: constant stallEvents sample until the replay
		// cycle (which asserts issue+replay — a different sample) or the
		// stall expiry.
		if c.replayAt == t {
			return 0, false
		}
	case c.ibufLen() == 0:
		// Fetch bubble (or drain): nothing to issue. The wake-up comes
		// from the frontend bounds below; with none pending (stream over)
		// there is no bound and no skip.
	case c.ibuf[c.ibufHead].availableAt > t:
	default:
		// Head is available: quiescent only if an operand interlock
		// blocks it, until the producer's ready cycle.
		rs1, rs2 := c.ibuf[c.ibufHead].rec.Inst.SrcRegs()
		interlock = c.regReady[rs1]
		if c.regReady[rs2] > interlock {
			interlock = c.regReady[rs2]
		}
		if interlock <= t {
			return 0, false // would issue this cycle
		}
	}
	// Frontend: fetch must be unable to change state this cycle. Timer
	// blocks (redirect stalls, I$ refills) bound the target; structural
	// blocks (wrong-path freeze, full buffer, drained stream) are
	// constant while the backend is quiescent.
	if !c.fetchBlocked && c.fetchStall <= t && c.refillUntil <= t &&
		c.ibufLen() < c.Cfg.IBufEntries && !c.streamEmpty() {
		return 0, false // fetch would deliver this cycle
	}

	// Phase 2: quiescent — take the min over every pending wake-up
	// timer. The refill/redirect timers are always bounds: the
	// I$-blocked heuristic reads refillUntil even when fetch is blocked
	// for another reason too.
	const never = ^uint64(0)
	bound := never
	add := func(x uint64) {
		if x > t && x < bound {
			bound = x
		}
	}
	if c.stallUntil > t {
		add(c.replayAt)
		add(c.stallUntil)
	} else if c.ibufLen() > 0 {
		if avail := c.ibuf[c.ibufHead].availableAt; avail > t {
			add(avail)
		} else {
			add(interlock)
		}
	}
	add(c.fetchStall)
	add(c.refillUntil)

	if bound == never {
		return 0, false
	}
	return bound, true
}
