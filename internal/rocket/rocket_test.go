package rocket_test

import (
	"testing"

	"icicle/internal/asm"
	"icicle/internal/kernel"
	"icicle/internal/perf"
	"icicle/internal/pmu"
	"icicle/internal/rocket"
)

func run(t *testing.T, src string) rocket.Result {
	t.Helper()
	res, err := rocket.New(rocket.DefaultConfig(), asm.MustAssemble(src)).Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestALULoopIPCNearOne(t *testing.T) {
	res := run(t, `
		li   t0, 20000
	loop:
		addi a1, a1, 1
		addi a2, a2, 1
		addi t0, t0, -1
		bnez t0, loop
		ecall
	`)
	if ipc := res.IPC(); ipc < 0.97 || ipc > 1.0 {
		t.Fatalf("ALU loop IPC = %.3f, want ≈1", ipc)
	}
}

func TestAllKernelsExecuteCorrectlyUnderTiming(t *testing.T) {
	// The timing model must not corrupt architectural execution, no
	// matter how it squashes, replays, and refetches.
	for _, k := range kernel.All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			res, _, err := perf.RunRocket(rocket.DefaultConfig(), k)
			if err != nil {
				t.Fatal(err)
			}
			if k.Expected != 0 && res.Exit != k.Expected {
				t.Fatalf("exit = %#x, want %#x", res.Exit, k.Expected)
			}
			if res.Insts == 0 || res.Cycles < res.Insts {
				t.Fatalf("implausible: %d insts in %d cycles (max 1 IPC)", res.Insts, res.Cycles)
			}
		})
	}
}

func TestSlotAccountingInvariants(t *testing.T) {
	for _, name := range []string{"qsort", "memcpy", "coremark", "towers"} {
		k, err := kernel.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		res, b, err := perf.RunRocket(rocket.DefaultConfig(), k)
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Tally[rocket.EvCycles]; got != res.Cycles {
			t.Fatalf("%s: cycle event %d != cycles %d", name, got, res.Cycles)
		}
		if res.Tally[rocket.EvInstIssued] < res.Tally[rocket.EvInstRet] {
			t.Fatalf("%s: issued < retired", name)
		}
		if res.Tally[rocket.EvInstRet] != res.Insts {
			t.Fatalf("%s: retired tally mismatch", name)
		}
		// Every cycle is at most one of: issue, bubble, recovering, stall.
		busy := res.Tally[rocket.EvInstIssued] + res.Tally[rocket.EvFetchBubbles] +
			res.Tally[rocket.EvRecovering]
		if busy > res.Cycles {
			t.Fatalf("%s: issue+bubble+recovering %d exceeds cycles %d", name, busy, res.Cycles)
		}
		for _, v := range []float64{b.Retiring, b.BadSpec, b.Frontend, b.Backend} {
			if v < -1e-9 || v > 1+1e-9 {
				t.Fatalf("%s: class out of range: %+v", name, b)
			}
		}
	}
}

func TestLoadMissEventsAndBlocking(t *testing.T) {
	// Stride walk over 1 MiB: every load misses.
	res := run(t, `
		li   s0, 0x400000
		li   t0, 2000
		li   t1, 0
	loop:
		slli t2, t1, 9        # 512 B stride
		add  t2, t2, s0
		ld   t3, 0(t2)
		addi t1, t1, 1
		addi t0, t0, -1
		bnez t0, loop
		ecall
	`)
	if res.Tally[rocket.EvDCacheMiss] < 1900 {
		t.Fatalf("dcache misses = %d, want ≈2000", res.Tally[rocket.EvDCacheMiss])
	}
	if res.Tally[rocket.EvDCacheBlocked] < 10*res.Tally[rocket.EvDCacheMiss] {
		t.Fatalf("dcache-blocked %d implausibly small for %d misses",
			res.Tally[rocket.EvDCacheBlocked], res.Tally[rocket.EvDCacheMiss])
	}
	if res.Tally[rocket.EvReplay] != res.Tally[rocket.EvDCacheMiss] {
		t.Fatalf("replays %d != load misses %d", res.Tally[rocket.EvReplay], res.Tally[rocket.EvDCacheMiss])
	}
}

func TestLoadUseInterlock(t *testing.T) {
	res := run(t, `
		li   s0, 0x400000
		li   t0, 5000
	loop:
		ld   t1, 0(s0)
		add  t2, t1, t1       # immediate use: 1-cycle interlock
		addi t0, t0, -1
		bnez t0, loop
		ecall
	`)
	if res.Tally[rocket.EvLoadUseInterlock] < 4900 {
		t.Fatalf("load-use interlocks = %d, want ≈5000", res.Tally[rocket.EvLoadUseInterlock])
	}
}

func TestMulDivInterlock(t *testing.T) {
	res := run(t, `
		li   t0, 3000
		li   t3, 7
	loop:
		mul  t1, t3, t3
		add  t2, t1, t1       # waits for the multiplier
		addi t0, t0, -1
		bnez t0, loop
		ecall
	`)
	if res.Tally[rocket.EvMulDivInterlock] < 3000 {
		t.Fatalf("muldiv interlocks = %d", res.Tally[rocket.EvMulDivInterlock])
	}
}

func TestBranchMispredictsOnColdChain(t *testing.T) {
	k, _ := kernel.ByName("brmiss")
	res, _, err := perf.RunRocket(rocket.DefaultConfig(), k)
	if err != nil {
		t.Fatal(err)
	}
	bm := res.Tally[rocket.EvBrMispredict]
	if bm < 480 {
		t.Fatalf("mispredicts = %d, want ≈500 (cold BHT, all taken)", bm)
	}
	// Recovering spans at least the redirect penalty per mispredict, and
	// may extend through late-prefetch refills of the redirect target
	// (the §IV-A attribution of target-miss refills to Bad Speculation).
	rec := res.Tally[rocket.EvRecovering]
	if rec < 3*bm-100 {
		t.Fatalf("recovering %d below 3×%d", rec, bm)
	}
	if rec > 40*bm {
		t.Fatalf("recovering %d implausibly large for %d mispredicts", rec, bm)
	}
}

func TestInvertedChainPredictsPerfectly(t *testing.T) {
	k, _ := kernel.ByName("brmiss_inv")
	res, _, err := perf.RunRocket(rocket.DefaultConfig(), k)
	if err != nil {
		t.Fatal(err)
	}
	if bm := res.Tally[rocket.EvBrMispredict]; bm > 10 {
		t.Fatalf("mispredicts = %d on never-taken chain", bm)
	}
}

func TestFetchBubblesSuppressedDuringRecovery(t *testing.T) {
	// Trace-level invariant, checked via the cycle hook: fetch-bubble and
	// recovering must never assert in the same cycle (§IV-A).
	k, _ := kernel.ByName("qsort")
	c := rocket.New(rocket.DefaultConfig(), k.MustProgram())
	fb := rocket.Events.MustIndex(rocket.EvFetchBubbles)
	rec := rocket.Events.MustIndex(rocket.EvRecovering)
	viol := 0
	c.SetCycleHook(func(cycle uint64, s pmu.Sample) {
		if s.Any(fb) && s.Any(rec) {
			viol++
		}
	})
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if viol != 0 {
		t.Fatalf("%d cycles assert both fetch-bubble and recovering", viol)
	}
}

func TestPMUCSRPathMatchesExactTallies(t *testing.T) {
	// Counters programmed through the CSR interface (AddWires) must agree
	// with the simulator's exact tallies.
	k, _ := kernel.ByName("mergesort")
	cfg := rocket.DefaultConfig()
	c := rocket.New(cfg, k.MustProgram())
	plan := perf.TMAPlan(rocket.EvInstIssued, rocket.EvFetchBubbles,
		rocket.EvRecovering, rocket.EvICacheBlocked, rocket.EvDCacheBlocked)
	if err := plan.Apply(c.PMU); err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range []string{rocket.EvInstIssued, rocket.EvFetchBubbles,
		rocket.EvRecovering, rocket.EvICacheBlocked, rocket.EvDCacheBlocked} {
		if got, want := c.PMU.Read(i), res.Tally[name]; got != want {
			t.Errorf("%s: PMU %d != tally %d", name, got, want)
		}
	}
	if c.PMU.Cycles() != res.Cycles {
		t.Errorf("mcycle %d != cycles %d", c.PMU.Cycles(), res.Cycles)
	}
	if c.PMU.Instret() != res.Insts {
		t.Errorf("minstret %d != insts %d", c.PMU.Instret(), res.Insts)
	}
}

func TestCycleHookCalledEveryCycle(t *testing.T) {
	k, _ := kernel.ByName("vvadd")
	c := rocket.New(rocket.DefaultConfig(), k.MustProgram())
	var calls uint64
	c.SetCycleHook(func(cycle uint64, s pmu.Sample) {
		if cycle != calls {
			t.Fatalf("hook cycle %d, want %d", cycle, calls)
		}
		calls++
	})
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if calls != res.Cycles {
		t.Fatalf("hook called %d times for %d cycles", calls, res.Cycles)
	}
}

func TestSmallerL1DRaisesBackendBound(t *testing.T) {
	// The Rocket CS1 mechanism: shrinking L1D must slow deepsjeng and
	// grow the Backend class.
	k, err := kernel.ByName("531.deepsjeng_r")
	if err != nil {
		t.Fatal(err)
	}
	big := rocket.DefaultConfig()
	small := rocket.DefaultConfig()
	small.Hierarchy.L1D.SizeBytes = 16 << 10
	resBig, bBig, err := perf.RunRocket(big, k)
	if err != nil {
		t.Fatal(err)
	}
	resSmall, bSmall, err := perf.RunRocket(small, k)
	if err != nil {
		t.Fatal(err)
	}
	if resSmall.Cycles <= resBig.Cycles {
		t.Fatalf("16 KiB L1D not slower: %d vs %d", resSmall.Cycles, resBig.Cycles)
	}
	if bSmall.Backend <= bBig.Backend {
		t.Fatalf("backend did not grow: %.3f vs %.3f", bSmall.Backend, bBig.Backend)
	}
}

func TestMaxCyclesGuard(t *testing.T) {
	cfg := rocket.DefaultConfig()
	cfg.MaxCycles = 100
	_, err := rocket.New(cfg, asm.MustAssemble(`
	loop:
		j loop
	`)).Run()
	if err == nil {
		t.Fatal("infinite loop terminated")
	}
}

func TestAtomicEventAndTiming(t *testing.T) {
	k, err := kernel.ByName("histogram")
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := perf.RunRocket(rocket.DefaultConfig(), k)
	if err != nil {
		t.Fatal(err)
	}
	if res.Exit != k.Expected {
		t.Fatalf("histogram checksum %#x != %#x", res.Exit, k.Expected)
	}
	// One atomic per input byte.
	if got := res.Tally[rocket.EvAtomic]; got != 8192 {
		t.Fatalf("atomic events = %d, want 8192", got)
	}
}
