package sample

import (
	"icicle/internal/isa"
	"icicle/internal/obs"
)

// Telemetry publishes the sampling controller's per-phase progress
// counters. Construct standalone with NewTelemetry or registered with
// TelemetryIn; a nil *Telemetry disables publication entirely.
type Telemetry struct {
	FFInsts        *obs.Counter
	WarmupReplays  *obs.Counter
	DetailedCycles *obs.Counter
	DetailedInsts  *obs.Counter
	Windows        *obs.Counter
	// QueueDepth is the number of plan windows still waiting for a
	// worker (two-phase engine only; always 0 between runs).
	QueueDepth *obs.Gauge

	// Superblock-engine counters: the functional CPU keeps plain
	// uint64 stats (its hot loop stays allocation- and atomic-free),
	// and the controller/producer flush per-run deltas here.
	SBHits          *obs.Counter
	SBMisses        *obs.Counter
	SBTranslations  *obs.Counter
	SBInvalidations *obs.Counter
}

// NewTelemetry builds an unregistered handle (counters still count; they
// are just not exported anywhere).
func NewTelemetry() *Telemetry {
	return &Telemetry{
		FFInsts:         obs.NewCounter(),
		WarmupReplays:   obs.NewCounter(),
		DetailedCycles:  obs.NewCounter(),
		DetailedInsts:   obs.NewCounter(),
		Windows:         obs.NewCounter(),
		QueueDepth:      obs.NewGauge(),
		SBHits:          obs.NewCounter(),
		SBMisses:        obs.NewCounter(),
		SBTranslations:  obs.NewCounter(),
		SBInvalidations: obs.NewCounter(),
	}
}

// TelemetryIn registers the counters in reg under the
// icicle_sample_* (controller phases) and icicle_isa_superblock_*
// (functional-engine block cache) names.
func TelemetryIn(reg *obs.Registry) *Telemetry {
	return &Telemetry{
		FFInsts: reg.Counter("icicle_sample_fastforward_insts_total",
			"Instructions executed functionally between detailed windows."),
		WarmupReplays: reg.Counter("icicle_sample_warmup_replays_total",
			"Instructions replayed into caches/predictors before windows."),
		DetailedCycles: reg.Counter("icicle_sample_detailed_cycles_total",
			"Cycles simulated inside detailed windows."),
		DetailedInsts: reg.Counter("icicle_sample_detailed_insts_total",
			"Instructions committed inside detailed windows."),
		Windows: reg.Counter("icicle_sample_windows_total",
			"Detailed windows executed by sampled runs."),
		QueueDepth: reg.Gauge("icicle_sample_queue_depth",
			"Detailed windows awaiting a worker in the two-phase engine."),
		SBHits: reg.Counter("icicle_isa_superblock_hits_total",
			"Superblock dispatches served from the translated-block cache."),
		SBMisses: reg.Counter("icicle_isa_superblock_misses_total",
			"Superblock dispatches that had to (re)translate."),
		SBTranslations: reg.Counter("icicle_isa_superblock_translations_total",
			"Superblocks translated (including step-through sentinels)."),
		SBInvalidations: reg.Counter("icicle_isa_superblock_invalidations_total",
			"Superblocks discarded after code-range stores or decode flushes."),
	}
}

// AddSuperblock folds a per-run superblock stats delta into the
// counters. The nil handle (and nil counters — obs.Counter.Add is
// nil-safe) are safe no-ops, mirroring the other telemetry guards.
func (t *Telemetry) AddSuperblock(d isa.SBStats) {
	if t == nil {
		return
	}
	t.SBHits.Add(d.Hits)
	t.SBMisses.Add(d.Misses)
	t.SBTranslations.Add(d.Translations)
	t.SBInvalidations.Add(d.Invalidations)
}
