package sample

import "icicle/internal/obs"

// Telemetry publishes the sampling controller's per-phase progress
// counters. Construct standalone with NewTelemetry or registered with
// TelemetryIn; a nil *Telemetry disables publication entirely.
type Telemetry struct {
	FFInsts        *obs.Counter
	WarmupReplays  *obs.Counter
	DetailedCycles *obs.Counter
	DetailedInsts  *obs.Counter
	Windows        *obs.Counter
	// QueueDepth is the number of plan windows still waiting for a
	// worker (two-phase engine only; always 0 between runs).
	QueueDepth *obs.Gauge
}

// NewTelemetry builds an unregistered handle (counters still count; they
// are just not exported anywhere).
func NewTelemetry() *Telemetry {
	return &Telemetry{
		FFInsts:        obs.NewCounter(),
		WarmupReplays:  obs.NewCounter(),
		DetailedCycles: obs.NewCounter(),
		DetailedInsts:  obs.NewCounter(),
		Windows:        obs.NewCounter(),
		QueueDepth:     obs.NewGauge(),
	}
}

// TelemetryIn registers the counters in reg under the
// icicle_sample_* names.
func TelemetryIn(reg *obs.Registry) *Telemetry {
	return &Telemetry{
		FFInsts: reg.Counter("icicle_sample_fastforward_insts_total",
			"Instructions executed functionally between detailed windows."),
		WarmupReplays: reg.Counter("icicle_sample_warmup_replays_total",
			"Instructions replayed into caches/predictors before windows."),
		DetailedCycles: reg.Counter("icicle_sample_detailed_cycles_total",
			"Cycles simulated inside detailed windows."),
		DetailedInsts: reg.Counter("icicle_sample_detailed_insts_total",
			"Instructions committed inside detailed windows."),
		Windows: reg.Counter("icicle_sample_windows_total",
			"Detailed windows executed by sampled runs."),
		QueueDepth: reg.Gauge("icicle_sample_queue_depth",
			"Detailed windows awaiting a worker in the two-phase engine."),
	}
}
