package sample_test

import (
	"testing"

	"icicle/internal/kernel"
	"icicle/internal/perf"
	"icicle/internal/rocket"
	"icicle/internal/sample"
)

func TestPolicyValidate(t *testing.T) {
	cases := []struct {
		name string
		p    sample.Policy
		ok   bool
	}{
		{"disabled", sample.Policy{}, true},
		{"default", sample.Default(), true},
		{"zero-period", sample.Policy{Window: 100}, false},
		{"negative-warmup", sample.Policy{Window: 100, Period: 100, Warmup: -1}, false},
		{"zero-warmup", sample.Policy{Window: 100, Period: 100}, true},
	}
	for _, tc := range cases {
		err := tc.p.Validate()
		if (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
	if sample.Policy.Enabled(sample.Policy{}) {
		t.Error("zero policy should be disabled")
	}
	if !sample.Default().Enabled() {
		t.Error("Default policy should be enabled")
	}
}

// TestSampledDeterminism: a fixed (config, kernel, policy) triple yields
// byte-identical reports on repeated runs — systematic sampling has no
// hidden randomness.
func TestSampledDeterminism(t *testing.T) {
	k, err := kernel.ByName("towers")
	if err != nil {
		t.Fatal(err)
	}
	p := sample.Policy{Window: 512, Period: 4096, Warmup: 512}
	run := func() (*sample.Report, rocket.Result) {
		res, rep, _, err := perf.SampleRocket(rocket.DefaultConfig(), k, p)
		if err != nil {
			t.Fatal(err)
		}
		return rep, res
	}
	rep1, res1 := run()
	rep2, res2 := run()
	if rep1.EstCycles != rep2.EstCycles || rep1.TotalInsts != rep2.TotalInsts ||
		rep1.DetailedCycles != rep2.DetailedCycles || rep1.DetailedInsts != rep2.DetailedInsts ||
		rep1.FFInsts != rep2.FFInsts || len(rep1.Windows) != len(rep2.Windows) {
		t.Fatalf("sampled runs diverged:\n%+v\nvs\n%+v", rep1, rep2)
	}
	for i := range rep1.Tally {
		if rep1.Tally[i] != rep2.Tally[i] {
			t.Fatalf("tally[%d] diverged: %d vs %d", i, rep1.Tally[i], rep2.Tally[i])
		}
	}
	if rep1.Breakdown.Retiring != rep2.Breakdown.Retiring ||
		rep1.Breakdown.BadSpec != rep2.Breakdown.BadSpec ||
		rep1.Breakdown.Frontend != rep2.Breakdown.Frontend ||
		rep1.Breakdown.Backend != rep2.Breakdown.Backend {
		t.Fatal("sampled breakdowns diverged across identical runs")
	}
	for name, v := range res1.Tally {
		if res2.Tally[name] != v {
			t.Fatalf("scaled tally %q diverged: %d vs %d", name, v, res2.Tally[name])
		}
	}
}

// TestShortProgramExact: a program that halts inside the first window
// never fast-forwards, so the "sampled" run is a full-detail run and the
// report is exact — including the cycle count, which must match an
// ordinary full run on the same config.
func TestShortProgramExact(t *testing.T) {
	k, err := kernel.ByName("vvadd")
	if err != nil {
		t.Fatal(err)
	}
	full, _, err := perf.RunRocket(rocket.DefaultConfig(), k)
	if err != nil {
		t.Fatal(err)
	}
	p := sample.Policy{Window: full.Cycles + 1000, Period: 1 << 20, Warmup: 64}
	res, rep, _, err := perf.SampleRocket(rocket.DefaultConfig(), k, p)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Exact {
		t.Fatalf("run with window %d > program length %d should be exact", p.Window, full.Cycles)
	}
	if rep.EstCycles != full.Cycles {
		t.Fatalf("exact sampled cycles = %d, full-detail cycles = %d", rep.EstCycles, full.Cycles)
	}
	if rep.TotalInsts != full.Insts {
		t.Fatalf("exact sampled insts = %d, full-detail insts = %d", rep.TotalInsts, full.Insts)
	}
	if rep.Coverage != 1 {
		t.Fatalf("exact run coverage = %v, want 1", rep.Coverage)
	}
	for name, v := range full.Tally {
		if res.Tally[name] != v {
			t.Fatalf("exact sampled tally %q = %d, full-detail = %d", name, res.Tally[name], v)
		}
	}
	if res.Exit != full.Exit {
		t.Fatalf("exit = %d, want %d", res.Exit, full.Exit)
	}
}

// TestSampledReportShape sanity-checks the report bookkeeping on a run
// that actually alternates phases.
func TestSampledReportShape(t *testing.T) {
	k, err := kernel.ByName("towers")
	if err != nil {
		t.Fatal(err)
	}
	p := sample.Policy{Window: 256, Period: 2048, Warmup: 256}
	_, rep, _, err := perf.SampleRocket(rocket.DefaultConfig(), k, p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Exact {
		t.Skip("towers fits in one 256-cycle window; widen the kernel")
	}
	if len(rep.Windows) < 2 {
		t.Fatalf("expected multiple windows, got %d", len(rep.Windows))
	}
	var wc, wi uint64
	for _, w := range rep.Windows {
		wc += w.Cycles
		wi += w.Insts
	}
	if wc != rep.DetailedCycles || wi != rep.DetailedInsts {
		t.Fatalf("window sums (%d cycles, %d insts) disagree with totals (%d, %d)",
			wc, wi, rep.DetailedCycles, rep.DetailedInsts)
	}
	if rep.FFInsts+rep.DetailedInsts > rep.TotalInsts {
		// TotalInsts counts every architectural instruction exactly once;
		// instructions fetched into a window but abandoned at its end are
		// in TotalInsts but in neither phase total, so the phase sums can
		// only undercount.
		t.Fatalf("FF %d + detailed %d > total %d", rep.FFInsts, rep.DetailedInsts, rep.TotalInsts)
	}
	if rep.Coverage <= 0 || rep.Coverage >= 1 {
		t.Fatalf("coverage = %v, want in (0,1)", rep.Coverage)
	}
	if rep.CPI <= 0 {
		t.Fatalf("CPI = %v, want > 0", rep.CPI)
	}
	if !rep.CPICI.Contains(rep.CPI) {
		t.Fatalf("CPI %v outside its own CI %+v", rep.CPI, rep.CPICI)
	}
	sum := rep.Breakdown.Retiring + rep.Breakdown.BadSpec + rep.Breakdown.Frontend + rep.Breakdown.Backend
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("top-level shares sum to %v, want ~1", sum)
	}
	for _, name := range []string{"Retiring", "BadSpec", "Frontend", "Backend"} {
		if _, ok := rep.CategoryCI[name]; !ok {
			t.Fatalf("CategoryCI missing %s", name)
		}
	}
	if !rep.Halted {
		t.Fatal("program should have halted")
	}
}
