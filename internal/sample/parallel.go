package sample

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"icicle/internal/obs"
)

// WindowResult is one executed (or memoized) detailed window: the
// triple the consumers hand back to the merge step. Tally is the dense
// per-event delta for the window; memoized results share the slice, so
// treat it as read-only.
type WindowResult struct {
	Index  int
	Cycles uint64
	Insts  uint64
	Tally  []uint64
}

// WindowMemo caches window results across runs. Keys fully identify the
// window's inputs (config, program, start instruction, warm span, cycle
// and instruction bounds), so overlapping policies — e.g. a re-run with
// a different Period whose boundaries partially coincide — reuse
// completed windows instead of recomputing them. Implementations must be
// safe for concurrent use.
type WindowMemo interface {
	Get(key string) (WindowResult, bool)
	Put(key string, wr WindowResult)
}

// Par configures RunPlan's consumer side: one Target per worker (each a
// dedicated core with its own memory, hierarchy, and predictor), plus an
// optional cross-run window memo.
type Par struct {
	Targets []Target
	// Memo, when non-nil, caches window results under MemoPrefix-derived
	// keys. MemoPrefix must fingerprint everything the keys don't: the
	// core configuration and the program identity.
	Memo       WindowMemo
	MemoPrefix string
}

// Exec replays a plan's windows on a single target, in ascending index
// order. The target's core must have been Reset with the plan's program
// (so its memory holds the pristine image = delta version 0); Exec then
// tracks which deltas it has applied and brings the image forward lazily
// as it visits windows. Visiting a window out of order or twice is an
// error — create a fresh Exec (after re-Resetting the core) to rewind.
type Exec struct {
	plan    *Plan
	t       Target
	window  uint64 // detailed window length in cycles
	version int    // deltas applied so far
	lastIdx int
	before  []uint64
	after   []uint64
	delta   []uint64
}

// NewExec validates the target and binds it to the plan. window is the
// policy's detailed window length in cycles.
func NewExec(plan *Plan, t Target, window uint64) (*Exec, error) {
	if t.Core == nil || t.CPU == nil || t.Hier == nil || t.Pred == nil || t.Mem == nil {
		return nil, fmt.Errorf("sample: incomplete plan target (need Core, CPU, Hier, Pred, Mem)")
	}
	if window == 0 {
		return nil, fmt.Errorf("sample: zero window length")
	}
	return &Exec{plan: plan, t: t, window: window, lastIdx: -1}, nil
}

// Window executes spec i and returns its result. The recipe makes the
// result a pure function of the spec: materialize the window's memory
// from the plan deltas, rebase the core to power-on timing state
// (BeginWindow), restore the warm-start checkpoint, functionally replay
// the warm span, then attach and run the bounded detailed window.
func (e *Exec) Window(i int, o *Options) (WindowResult, error) {
	if i <= e.lastIdx {
		return WindowResult{}, fmt.Errorf("sample: window %d revisited on one Exec (last was %d)", i, e.lastIdx)
	}
	e.lastIdx = i
	spec := &e.plan.Specs[i]

	// Memory: program image + Deltas[0..MemVersion-1]. Deltas bypass the
	// CPU's store-path decode-cache invalidation, so flush it whenever
	// any frame changed under us.
	applied := false
	for v := e.version; v < spec.MemVersion; v++ {
		if fs := e.plan.Deltas[v]; len(fs) > 0 {
			e.t.Mem.ApplyFrames(fs)
			applied = true
		}
	}
	e.version = spec.MemVersion
	if applied {
		e.t.CPU.FlushDecode()
	}

	// Timing state: power-on caches/predictors at cycle zero, then the
	// functional warm replay trains them exactly as the spec prescribes.
	e.t.Core.BeginWindow()
	e.t.CPU.Restore(spec.Warm)
	if spec.WarmInsts > 0 {
		sw := o.Tracer.Begin("warm-up", "sample", o.Tid)
		warmed, err := fastForwardWarming(e.t, spec.WarmInsts)
		sw.End(obs.Arg{Key: "warmed", Val: warmed})
		if o.Telemetry != nil {
			o.Telemetry.WarmupReplays.Add(warmed)
		}
		if err != nil {
			return WindowResult{}, err
		}
		// Warming allocates MSHRs with ready times in the window's
		// future; clear them so the window does not start D$-blocked.
		e.t.Hier.MSHRs.Reset()
	}

	e.t.Core.Attach(e.t.CPU.Checkpoint())
	e.before = e.t.Core.CopyTally(e.before)
	startCycle, startInst := e.t.Core.Cycles(), e.t.Core.Insts()
	sp := o.Tracer.Begin("window", "sample", o.Tid)
	err := e.t.Core.RunWindowBounded(e.window, spec.MaxInsts)
	wCycles := e.t.Core.Cycles() - startCycle
	wInsts := e.t.Core.Insts() - startInst
	sp.End(obs.Arg{Key: "cycles", Val: wCycles}, obs.Arg{Key: "insts", Val: wInsts})
	if err != nil {
		return WindowResult{}, err
	}
	e.after = e.t.Core.CopyTally(e.after)
	e.delta = diffInto(e.delta, e.after, e.before)
	tally := make([]uint64, len(e.delta))
	copy(tally, e.delta)
	return WindowResult{Index: i, Cycles: wCycles, Insts: wInsts, Tally: tally}, nil
}

// asyncQueueID feeds the (cat, id) async-track keys for queue-wait
// events; the category is private to this file, so a process-wide
// counter cannot collide with other async emitters.
var asyncQueueID atomic.Uint64

// RunPlan is the consumer phase: it fans the plan's windows over
// par.Targets, executes each exactly once (or serves it from the memo),
// and merges the results in schedule order into a Report that is
// bit-identical no matter how many workers ran — every float in the
// aggregation is accumulated in window-index order from
// schedule-deterministic per-window integers.
func RunPlan(plan *Plan, p Policy, o Options, par Par) (*Report, error) {
	if err := plan.Compatible(p); err != nil {
		return nil, err
	}
	if o.Counts == nil {
		return nil, fmt.Errorf("sample: Options.Counts is required")
	}
	if len(par.Targets) == 0 {
		return nil, fmt.Errorf("sample: RunPlan needs at least one target")
	}

	n := len(plan.Specs)
	execs := make([]*Exec, len(par.Targets))
	for w, t := range par.Targets {
		ex, err := NewExec(plan, t, p.Window)
		if err != nil {
			return nil, fmt.Errorf("sample: target %d: %w", w, err)
		}
		execs[w] = ex
	}
	results := make([]WindowResult, n)
	errs := make([]error, n)

	windowKey := func(i int) string {
		s := &plan.Specs[i]
		return fmt.Sprintf("%s|w%d|s%d|k%d|b%d", par.MemoPrefix, p.Window, s.StartInst, s.WarmInsts, s.MaxInsts)
	}

	if o.Telemetry != nil {
		o.Telemetry.QueueDepth.Set(int64(n))
	}
	enqueued := time.Now()
	var next atomic.Int64
	run := func(w int, wo Options) {
		ex := execs[w]
		for {
			i := int(next.Add(1) - 1)
			if i >= n {
				return
			}
			if o.Telemetry != nil {
				o.Telemetry.QueueDepth.Add(-1)
			}
			wo.Tracer.Async("window-wait", "sample-queue", asyncQueueID.Add(1),
				enqueued, time.Now(), obs.Arg{Key: "window", Val: i})
			if par.Memo != nil {
				if wr, ok := par.Memo.Get(windowKey(i)); ok {
					results[i] = wr
					continue
				}
			}
			wr, err := ex.Window(i, &wo)
			if err != nil {
				errs[i] = err
				next.Store(int64(n)) // stop dispatching further windows
				continue
			}
			results[i] = wr
			if par.Memo != nil {
				par.Memo.Put(windowKey(i), wr)
			}
		}
	}

	if len(par.Targets) == 1 || n <= 1 {
		run(0, o)
	} else {
		var wg sync.WaitGroup
		for w := range par.Targets {
			wo := o
			if w > 0 {
				// Workers beyond the caller's own trace track get their
				// own named tracks, PR 4 style.
				wo.Tid = 1 + (o.Tid+1)*64 + w
				o.Tracer.NameThread(wo.Tid, fmt.Sprintf("sample-w%d.%d", o.Tid, w))
			}
			wg.Add(1)
			go func(w int, wo Options) {
				defer wg.Done()
				run(w, wo)
			}(w, wo)
		}
		wg.Wait()
	}
	if o.Telemetry != nil {
		o.Telemetry.QueueDepth.Set(0)
	}
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			return nil, errs[i]
		}
	}

	// Deterministic reduce: schedule order, independent of worker count
	// and completion order. StartCycle is the cumulative detailed cycle
	// count, mirroring the serial engine's monotone core clock.
	b := newReportBuilder(p, &o)
	var cumCycles, warmTotal uint64
	for i := 0; i < n; i++ {
		wr := &results[i]
		b.addWindow(plan.Specs[i].StartInst, cumCycles, wr.Cycles, wr.Insts, wr.Tally)
		cumCycles += wr.Cycles
		warmTotal += plan.Specs[i].WarmInsts
		if o.Telemetry != nil {
			o.Telemetry.Windows.Inc()
			o.Telemetry.DetailedCycles.Add(wr.Cycles)
			o.Telemetry.DetailedInsts.Add(wr.Insts)
		}
	}
	// Every instruction the windows did not retire ran functionally in
	// the producer pass, so the conservation invariant
	// FFInsts + DetailedInsts == TotalInsts holds by construction.
	// WarmupReplays comes from the specs, not the actual replays, so a
	// memo-served run reports identically to a computed one.
	ff := plan.TotalInsts - b.rep.DetailedInsts
	return b.finalize(plan.TotalInsts, ff, warmTotal, plan.Exit, plan.Halted)
}
