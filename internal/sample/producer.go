package sample

import (
	"fmt"

	"icicle/internal/isa"
	"icicle/internal/mem"
	"icicle/internal/obs"
)

// BuildPlan is the producer pass of the two-phase engine: one functional
// execution of the whole program on cpu (backed by m, with the program
// image already loaded and cpu at the entry point), emitting a
// WindowSpec at every window boundary and draining m's dirty frames into
// per-span deltas. The pass is purely functional — no cache, predictor,
// or pipeline state — so it runs at fast-forward speed; its cost is paid
// once per (program, Period, WarmTail) and the plan is then shared by
// every consumer config (see perf's plan cache).
func BuildPlan(cpu *isa.CPU, m *mem.Sparse, p Policy, o Options) (*Plan, error) {
	if !p.Enabled() {
		return nil, fmt.Errorf("sample: policy is disabled (window == 0)")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if cpu == nil || m == nil {
		return nil, fmt.Errorf("sample: BuildPlan needs a CPU and its backing memory")
	}

	warmTail := planWarmTail(p)
	pl := &Plan{Period: p.Period, WarmTail: warmTail}
	bound := p.Period - warmTail

	span := o.Tracer.Begin("plan-produce", "sample", o.Tid)
	m.SetTracking(true)
	defer m.SetTracking(false)
	sb0 := cpu.SuperblockStats()
	defer func() { o.Telemetry.AddSuperblock(cpu.SuperblockStats().Sub(sb0)) }()

	// Window 0 attaches at the entry point with no warm span: the plan
	// captures the cold-start transient exactly like the serial engine.
	base := cpu.InstRet
	if !cpu.Halted {
		var ck isa.Checkpoint
		cpu.CheckpointInto(&ck)
		pl.Specs = append(pl.Specs, WindowSpec{
			StartInst: 0,
			Warm:      ck,
			MaxInsts:  bound,
		})
	}
	for k := uint64(1); !cpu.Halted; k++ {
		// Run to boundary k = k·Period - warmTail, where the warm span of
		// window k begins: snapshot the memory delta and the CPU there.
		if err := runTo(cpu, base+k*p.Period-warmTail); err != nil {
			span.End()
			return nil, err
		}
		if cpu.Halted {
			break
		}
		pl.Deltas = append(pl.Deltas, m.DrainDirty())
		var ck isa.Checkpoint
		cpu.CheckpointInto(&ck)
		// Run the warm span; the window only exists if the program is
		// still live at its start.
		if err := runTo(cpu, base+k*p.Period); err != nil {
			span.End()
			return nil, err
		}
		if cpu.Halted {
			break
		}
		pl.Specs = append(pl.Specs, WindowSpec{
			Index:      len(pl.Specs),
			StartInst:  k * p.Period,
			Warm:       ck,
			WarmInsts:  warmTail,
			MaxInsts:   bound,
			MemVersion: len(pl.Deltas),
		})
	}
	pl.TotalInsts = cpu.InstRet - base
	pl.Exit = cpu.ExitCode
	pl.Halted = cpu.Halted
	span.End(
		obs.Arg{Key: "insts", Val: pl.TotalInsts},
		obs.Arg{Key: "windows", Val: len(pl.Specs)},
		obs.Arg{Key: "delta_bytes", Val: pl.DeltaBytes()})
	if o.Telemetry != nil {
		o.Telemetry.FFInsts.Add(pl.TotalInsts)
	}
	return pl, nil
}

// runTo advances the functional CPU until InstRet reaches target or
// the program halts, riding the superblock fast-forward path.
// Translation only loads memory, so dirty-frame tracking sees exactly
// the stores the program performs.
func runTo(cpu *isa.CPU, target uint64) error {
	if cpu.InstRet >= target {
		return nil
	}
	_, err := cpu.RunFor(target - cpu.InstRet)
	return err
}
