// Package sample implements SMARTS-style sampled simulation: short
// detailed windows on the unmodified cycle-accurate cores, separated by
// fast functional execution on isa.CPU, with functional warming of the
// memory system and predictors before each window. Full-program event
// tallies and TMA breakdowns are extrapolated from the windows with
// confidence intervals.
//
// The controller drives the detailed core's OWN embedded CPU for the
// functional phases, so the memory image is shared by construction: a
// window attach only has to restore the register-file checkpoint
// (isa.Checkpoint) and clear the pipeline, never copy memory. Caches,
// TLBs, and predictors are intentionally NOT reset between windows —
// they stay warm across the whole run and are refreshed by the last
// Warmup instructions of each fast-forward span, which train the caches
// and predictors inline as they execute (the cache LRU and predictor
// state depend only on access order, not timestamps, so inline warming
// is exactly equivalent to replaying the same instructions afterwards).
package sample

import (
	"fmt"
	"math"

	"icicle/internal/core"
)

// Policy is a systematic (periodic) sampling schedule. The run starts
// with a detailed window — capturing the cold-start transient exactly
// like a full run — then alternates Period instructions of functional
// fast-forward with Window cycles of detailed simulation until the
// program halts.
type Policy struct {
	// Window is the detailed window length in cycles. Zero disables
	// sampling (full-detail run).
	Window uint64
	// Period is the number of instructions fast-forwarded functionally
	// between detailed windows.
	Period uint64
	// Warmup is how many of the trailing fast-forward instructions also
	// train the caches, TLBs, and branch predictors as they execute
	// (functional warming; no pipeline timing). Values above Period are
	// clamped to Period — the whole gap is then warmed.
	Warmup int
}

// Default is the tuned default schedule: 2k-cycle windows every 48k
// instructions with the trailing 16k instructions warming the memory
// system and predictors. 16k is past the warming convergence point for
// the 32 KiB L1s on the paper's kernels (doubling it does not move the
// estimates), and the ~3-6% detail fraction holds the top-level TMA
// category error within 2pp on long-running kernels at a >5x wall-clock
// speedup (see BENCH_5.json). Short programs should prefer full detail:
// a run shorter than a handful of periods yields too few windows for the
// extrapolation to be trustworthy (the confidence intervals say so).
func Default() Policy {
	return Policy{Window: 2048, Period: 49152, Warmup: 16384}
}

// Enabled reports whether the policy asks for sampling at all.
func (p Policy) Enabled() bool { return p.Window > 0 }

// Validate checks an enabled policy for usable parameters.
func (p Policy) Validate() error {
	if !p.Enabled() {
		return nil
	}
	if p.Period == 0 {
		return fmt.Errorf("sample: period must be positive when window > 0")
	}
	if p.Warmup < 0 {
		return fmt.Errorf("sample: negative warmup %d", p.Warmup)
	}
	return nil
}

// String renders the policy compactly (used in sim job keys).
func (p Policy) String() string {
	if !p.Enabled() {
		return "off"
	}
	return fmt.Sprintf("w%d/p%d/k%d", p.Window, p.Period, p.Warmup)
}

// WindowStat records one detailed window.
type WindowStat struct {
	StartInst  uint64 // architectural instructions retired before the window
	StartCycle uint64 // core cycle counter at attach
	Cycles     uint64 // detailed cycles simulated in the window
	Insts      uint64 // instructions committed by the detailed core
}

// Interval is a 95% confidence interval.
type Interval struct{ Lo, Hi float64 }

// Contains reports whether v lies within the interval.
func (iv Interval) Contains(v float64) bool { return v >= iv.Lo && v <= iv.Hi }

// Width returns Hi-Lo.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// Report is the outcome of a sampled run: observed detailed totals plus
// the extrapolated full-program estimates.
type Report struct {
	Policy Policy

	// TotalInsts is the exact architectural instruction count of the
	// whole program (functional + detailed phases; read from the CPU).
	TotalInsts uint64
	// FFInsts is how many of those were executed functionally.
	FFInsts uint64
	// WarmupReplays counts instructions replayed into the warm-up model.
	WarmupReplays uint64

	Windows        []WindowStat
	DetailedCycles uint64
	DetailedInsts  uint64

	// Tally holds the dense per-event deltas accumulated over all
	// detailed windows, indexed like EventNames.
	Tally      []uint64
	EventNames []string

	// EstCycles is the extrapolated full-program cycle count
	// (CPI × TotalInsts); exact when Exact is set.
	EstCycles uint64
	// CPI is the aggregate detailed cycles-per-instruction (the ratio
	// estimator used for extrapolation), with its 95% CI from the
	// per-window CPI variance.
	CPI   float64
	CPICI Interval

	// Breakdown is the TMA evaluation over the pooled detailed counts.
	// Category shares are ratios, so they need no extrapolation scaling.
	Breakdown core.Breakdown
	// CategoryCI gives 95% CIs for the top-level category shares
	// (keys: Retiring, BadSpec, Frontend, Backend), centered on the
	// pooled share with spread from the per-window variance.
	CategoryCI map[string]Interval

	// Coverage is DetailedInsts / TotalInsts.
	Coverage float64
	// Exact is set when the program finished without ever
	// fast-forwarding: the "sampled" run was a full-detail run and
	// EstCycles is the true cycle count.
	Exact bool

	Exit   uint64
	Halted bool
}

// TallyMap returns the observed (unscaled) detailed-window event totals
// keyed by event name.
func (r *Report) TallyMap() map[string]uint64 {
	m := make(map[string]uint64, len(r.Tally))
	for i, name := range r.EventNames {
		if i < len(r.Tally) {
			m[name] = r.Tally[i]
		}
	}
	return m
}

// ScaledTallyMap extrapolates the observed event totals to the full
// program by the instruction coverage ratio (identity when Exact).
func (r *Report) ScaledTallyMap() map[string]uint64 {
	scale := 1.0
	if !r.Exact && r.DetailedInsts > 0 {
		scale = float64(r.TotalInsts) / float64(r.DetailedInsts)
	}
	m := make(map[string]uint64, len(r.Tally))
	for i, name := range r.EventNames {
		if i < len(r.Tally) {
			m[name] = uint64(float64(r.Tally[i])*scale + 0.5)
		}
	}
	return m
}

// meanCI returns the sample mean and the 95% CI half-width of xs.
func meanCI(xs []float64) (mean, half float64) {
	n := len(xs)
	if n == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(n)
	if n < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	s := math.Sqrt(ss / float64(n-1))
	return mean, 1.96 * s / math.Sqrt(float64(n))
}

func clamp01(v float64) float64 {
	switch {
	case v < 0:
		return 0
	case v > 1:
		return 1
	}
	return v
}
