package sample

import (
	"fmt"

	"icicle/internal/isa"
	"icicle/internal/mem"
)

// Two-phase sampled simulation (see DESIGN.md "Two-phase sampled
// simulation"): a single functional producer pass over the program emits
// a Plan — one WindowSpec per detailed window plus the memory deltas
// needed to materialize each window's image — and any number of
// consumers then execute the windows independently, in any order, on any
// core. The serial engine in controller.go threads one warm
// microarchitectural state through the whole run, which chains every
// window on all previous windows' timing; the plan engine instead
// anchors windows to the instruction stream (window k starts at
// instruction k·Period) and gives every window a self-contained recipe:
//
//	memory  = program image + Deltas[0 .. MemVersion-1]
//	CPU     = Warm checkpoint (captured WarmInsts before the window)
//	caches/predictors = power-on state + functional replay of the
//	                    WarmInsts-instruction warm span
//
// Window results therefore depend only on the spec, never on which
// worker ran them or what it ran before — that is the whole bit-identical
// serial-vs-parallel argument, and the golden equivalence tests pin it.
type WindowSpec struct {
	// Index is the window's position in the schedule.
	Index int
	// StartInst is the architectural instruction count at window start
	// (Index · Period).
	StartInst uint64
	// Warm is the CPU state WarmInsts instructions before StartInst; the
	// consumer replays those instructions functionally to train caches,
	// TLBs, and predictors before attaching the detailed core.
	Warm isa.Checkpoint
	// WarmInsts is the warm-span length (0 for window 0).
	WarmInsts uint64
	// MaxInsts bounds the window's retired instructions so it can never
	// store past the next window's memory boundary (Period - WarmTail).
	MaxInsts uint64
	// MemVersion is how many of the plan's deltas must be applied to the
	// program image before replaying this spec.
	MemVersion int
}

// Plan is the producer pass's output: the full window schedule for one
// (program, Period, WarmTail) pair. It is independent of both the core
// configuration and the policy's Window length, so one plan serves every
// detailed-core config and every window-length sweep over the same
// program and sampling cadence.
type Plan struct {
	// Period and WarmTail fix the schedule the plan was built for;
	// RunPlan rejects policies that disagree.
	Period   uint64
	WarmTail uint64

	Specs []WindowSpec
	// Deltas[j] holds full copies of the frames dirtied between boundary
	// j and boundary j+1 (boundary k = k·Period - WarmTail, boundary 0 =
	// program entry). Applying Deltas[0..k-1] to a fresh program image
	// reproduces the memory at boundary k exactly; full-frame copies make
	// re-application also erase any stray bytes a consumer's own bounded
	// window wrote into a frame.
	Deltas [][]mem.FrameCopy

	// TotalInsts, Exit, and Halted describe the complete functional run.
	TotalInsts uint64
	Exit       uint64
	Halted     bool
}

// planWarmTail is the warm-span length for a policy in the plan engine:
// Warmup clamped to Period-1, so every window keeps at least one
// instruction of headroom before the next memory boundary. (The serial
// engine clamps to Period — full-gap warming — which the plan engine
// cannot represent: a window bounded to zero instructions would be
// degenerate.)
func planWarmTail(p Policy) uint64 {
	w := uint64(p.Warmup)
	if p.Period > 0 && w > p.Period-1 {
		w = p.Period - 1
	}
	return w
}

// ScheduleKey fingerprints the part of a policy a plan depends on — the
// sampling cadence, not the window length or the core config. Policies
// with equal ScheduleKeys share plans (perf's plan cache keys on it).
func (p Policy) ScheduleKey() string {
	return fmt.Sprintf("p%d/k%d", p.Period, planWarmTail(p))
}

// Compatible reports whether the plan's schedule matches the policy's.
func (pl *Plan) Compatible(p Policy) error {
	if pl.Period != p.Period || pl.WarmTail != planWarmTail(p) {
		return fmt.Errorf("sample: plan built for period %d / warm tail %d, policy wants %d / %d",
			pl.Period, pl.WarmTail, p.Period, planWarmTail(p))
	}
	return nil
}

// DeltaBytes is the total size of the plan's frame copies.
func (pl *Plan) DeltaBytes() int {
	n := 0
	for _, d := range pl.Deltas {
		n += len(d) * mem.FrameBytes
	}
	return n
}
