package sample

import (
	"fmt"

	"icicle/internal/branch"
	"icicle/internal/core"
	"icicle/internal/isa"
	"icicle/internal/mem"
	"icicle/internal/obs"
)

// Core is the detailed-core surface the controller drives. Both
// rocket.Core and boom.Core satisfy it (see their window.go files); the
// methods are additive — the cycle loops themselves are untouched.
type Core interface {
	// Attach restores the architectural checkpoint and clears the
	// pipeline, keeping caches/predictors/tallies/cycle counter warm.
	Attach(ck isa.Checkpoint)
	// RunWindow runs the detailed loop for up to maxCycles more cycles.
	RunWindow(maxCycles uint64) error
	// RunWindowBounded additionally stops the window exactly at maxInsts
	// retired instructions (0 = unbounded), so a plan-scheduled window
	// never stores past its memory-delta boundary.
	RunWindowBounded(maxCycles, maxInsts uint64) error
	// BeginWindow rebases the core's timing state — cycle clock, PMU,
	// caches, predictors — to power-on while leaving architectural state,
	// memory, and cumulative tallies untouched. The plan engine calls it
	// before each window so the result is schedule-independent.
	BeginWindow()
	// Done reports the workload halted and the pipeline drained.
	Done() bool
	Cycles() uint64
	Insts() uint64
	// CopyTally snapshots the dense event totals into dst.
	CopyTally(dst []uint64) []uint64
}

// Target bundles a detailed core with the shared functional/warm-up
// surfaces the controller needs. CPU must be the core's own embedded CPU
// (so fast-forward mutates the memory image the detailed windows read),
// and Hier/Pred the core's own hierarchy and predictor (so warm-up
// accesses train the same state the windows consult). Mem is the core's
// backing sparse memory; the serial engine ignores it, but the plan
// engine (Exec/RunPlan) requires it to apply frame deltas.
type Target struct {
	Core Core
	CPU  *isa.CPU
	Hier *mem.Hierarchy
	Pred branch.Predictor
	Mem  *mem.Sparse
}

// CountsFn maps a (cycles, insts, dense tally) triple onto the TMA
// counter set. The perf package provides closures over the rocket/boom
// event spaces.
type CountsFn func(cycles, insts uint64, tally []uint64) core.Counts

// Options carries the evaluation glue and observability hooks.
type Options struct {
	// Counts is required: it converts window tallies to TMA counts.
	Counts CountsFn
	// TMA is the evaluation config (commit/issue widths etc.).
	TMA core.Config
	// EventNames labels the dense tally for Report.TallyMap.
	EventNames []string

	// Telemetry publishes per-phase counters (nil = disabled).
	Telemetry *Telemetry
	// Tracer emits fast-forward/warm-up/window spans (nil = disabled;
	// obs.Tracer methods are nil-safe).
	Tracer *obs.Tracer
	Tid    int
}

// Run executes the whole program under the sampling policy and returns
// the extrapolated report. The schedule is deterministic for a fixed
// (core config, program, policy) triple: systematic sampling, no
// randomness anywhere.
func Run(t Target, p Policy, o Options) (*Report, error) {
	if !p.Enabled() {
		return nil, fmt.Errorf("sample: policy is disabled (window == 0)")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if t.Core == nil || t.CPU == nil || t.Hier == nil || t.Pred == nil {
		return nil, fmt.Errorf("sample: incomplete target (need Core, CPU, Hier, Pred)")
	}
	if o.Counts == nil {
		return nil, fmt.Errorf("sample: Options.Counts is required")
	}

	b := newReportBuilder(p, &o)
	sb0 := t.CPU.SuperblockStats()
	defer func() { o.Telemetry.AddSuperblock(t.CPU.SuperblockStats().Sub(sb0)) }()
	// Scratch tally buffers: one backing array pre-sized from the event
	// space, split into three views, so the per-window snapshot and diff
	// never reallocate. (CopyTally/diffInto still grow them if the
	// core's tally is wider than EventNames.)
	ew := len(o.EventNames)
	scratch := make([]uint64, 3*ew)
	before := scratch[0:0:ew]
	after := scratch[ew : ew : 2*ew]
	windowDelta := scratch[2*ew : 2*ew : 3*ew]
	var ffInsts, warmReplays uint64

	// The fast-forward span splits into a plain stretch and a warmed
	// tail: the last `warm` instructions before each window also train
	// the caches, TLBs, and predictors as they execute. This is
	// equivalent to replaying the last K retirements (the access
	// sequence, and hence the LRU and predictor state, is identical) but
	// needs no retirement ring and no second pass.
	warmTail := uint64(p.Warmup)
	if warmTail > p.Period {
		warmTail = p.Period
	}

	for {
		// Detailed window on the unmodified cycle loop.
		t.Core.Attach(t.CPU.Checkpoint())
		startCycle, startInst := t.Core.Cycles(), t.Core.Insts()
		startRet := t.CPU.InstRet
		before = t.Core.CopyTally(before)
		span := o.Tracer.Begin("window", "sample", o.Tid)
		err := t.Core.RunWindow(p.Window)
		wCycles := t.Core.Cycles() - startCycle
		wInsts := t.Core.Insts() - startInst
		span.End(obs.Arg{Key: "cycles", Val: wCycles}, obs.Arg{Key: "insts", Val: wInsts})
		if err != nil {
			return nil, err
		}
		after = t.Core.CopyTally(after)
		windowDelta = diffInto(windowDelta, after, before)
		b.addWindow(startRet, startCycle, wCycles, wInsts, windowDelta)
		if o.Telemetry != nil {
			o.Telemetry.Windows.Inc()
			o.Telemetry.DetailedCycles.Add(wCycles)
			o.Telemetry.DetailedInsts.Add(wInsts)
		}

		if t.CPU.Halted || t.Core.Done() {
			break
		}

		// Functional fast-forward on the shared CPU: architectural
		// effects land directly in the image the next window will read.
		span = o.Tracer.Begin("fast-forward", "sample", o.Tid)
		ffed, err := fastForward(t.CPU, p.Period-warmTail)
		if err == nil && warmTail > 0 && !t.CPU.Halted {
			sw := o.Tracer.Begin("warm-up", "sample", o.Tid)
			var warmed uint64
			warmed, err = fastForwardWarming(t, warmTail)
			sw.End(obs.Arg{Key: "warmed", Val: warmed})
			ffed += warmed
			warmReplays += warmed
			if o.Telemetry != nil {
				o.Telemetry.WarmupReplays.Add(warmed)
			}
			// Warming allocates MSHRs with ready times in the window's
			// future; clear them so the window does not start D$-blocked
			// on stale refills.
			t.Hier.MSHRs.Reset()
		}
		span.End(obs.Arg{Key: "insts", Val: ffed})
		ffInsts += ffed
		if o.Telemetry != nil {
			o.Telemetry.FFInsts.Add(ffed)
		}
		if err != nil {
			return nil, err
		}
		if t.CPU.Halted {
			break
		}
	}

	return b.finalize(t.CPU.InstRet, ffInsts, warmReplays, t.CPU.ExitCode, t.CPU.Halted)
}

// reportBuilder accumulates per-window results into a Report. Both
// engines feed it in schedule order — the serial controller as windows
// complete, RunPlan's reduce step after the join — so every float
// operation happens in the same order regardless of worker count, which
// is what makes serial and parallel reports bit-identical.
type reportBuilder struct {
	rep    *Report
	o      *Options
	cpis   []float64
	shares [4][]float64 // Retiring, BadSpec, Frontend, Backend
}

func newReportBuilder(p Policy, o *Options) *reportBuilder {
	return &reportBuilder{rep: &Report{Policy: p, EventNames: o.EventNames}, o: o}
}

// addWindow folds in one window's stats and dense tally delta.
func (b *reportBuilder) addWindow(startInst, startCycle, wCycles, wInsts uint64, delta []uint64) {
	rep := b.rep
	rep.Tally = addInto(rep.Tally, delta)
	rep.Windows = append(rep.Windows, WindowStat{
		StartInst:  startInst,
		StartCycle: startCycle,
		Cycles:     wCycles,
		Insts:      wInsts,
	})
	rep.DetailedCycles += wCycles
	rep.DetailedInsts += wInsts
	if wInsts > 0 {
		b.cpis = append(b.cpis, float64(wCycles)/float64(wInsts))
	}
	if wCycles > 0 {
		if bd, err := core.Evaluate(b.o.TMA, b.o.Counts(wCycles, wInsts, delta)); err == nil {
			b.shares[0] = append(b.shares[0], bd.Retiring)
			b.shares[1] = append(b.shares[1], bd.BadSpec)
			b.shares[2] = append(b.shares[2], bd.Frontend)
			b.shares[3] = append(b.shares[3], bd.Backend)
		}
	}
}

// finalize runs the extrapolation and returns the completed report.
func (b *reportBuilder) finalize(totalInsts, ffInsts, warmReplays, exit uint64, halted bool) (*Report, error) {
	rep, o := b.rep, b.o
	rep.TotalInsts = totalInsts
	rep.FFInsts = ffInsts
	rep.WarmupReplays = warmReplays
	rep.Exit = exit
	rep.Halted = halted
	rep.Exact = rep.FFInsts == 0
	if rep.TotalInsts > 0 {
		rep.Coverage = float64(rep.DetailedInsts) / float64(rep.TotalInsts)
	}

	// Extrapolation: the ratio estimator CPI = ΣC_w / ΣI_w applied to the
	// exact architectural instruction count, with the CI from the
	// per-window CPI spread.
	if rep.DetailedInsts > 0 {
		rep.CPI = float64(rep.DetailedCycles) / float64(rep.DetailedInsts)
	}
	if rep.Exact {
		rep.EstCycles = rep.DetailedCycles
		rep.CPICI = Interval{Lo: rep.CPI, Hi: rep.CPI}
	} else {
		rep.EstCycles = uint64(rep.CPI*float64(rep.TotalInsts) + 0.5)
		_, half := meanCI(b.cpis)
		rep.CPICI = Interval{Lo: rep.CPI - half, Hi: rep.CPI + half}
	}

	// Pooled TMA breakdown over all window counts; shares are ratios, so
	// no scaling is needed.
	if rep.DetailedCycles > 0 {
		bd, err := core.Evaluate(o.TMA, o.Counts(rep.DetailedCycles, rep.DetailedInsts, rep.Tally))
		if err != nil {
			return nil, fmt.Errorf("sample: evaluating pooled breakdown: %w", err)
		}
		rep.Breakdown = bd
		pooled := [4]float64{bd.Retiring, bd.BadSpec, bd.Frontend, bd.Backend}
		names := [4]string{"Retiring", "BadSpec", "Frontend", "Backend"}
		rep.CategoryCI = make(map[string]Interval, 4)
		for i, name := range names {
			_, half := meanCI(b.shares[i])
			rep.CategoryCI[name] = Interval{
				Lo: clamp01(pooled[i] - half),
				Hi: clamp01(pooled[i] + half),
			}
		}
	}
	return rep, nil
}

// fastForward advances the functional CPU by up to n instructions on
// the superblock threaded-code path (or a plain Step loop when the
// engine is disabled — results are bit-identical either way).
func fastForward(cpu *isa.CPU, n uint64) (uint64, error) {
	return cpu.RunFor(n)
}

// fastForwardWarming steps the functional CPU for up to n instructions,
// training the I-side (on fetch-block change), the branch predictors,
// and the D-side caches/TLBs with each retirement — functional warming
// with no pipeline timing. Every access uses the core's current cycle as
// "now"; order alone determines the resulting LRU/predictor state.
func fastForwardWarming(t Target, n uint64) (uint64, error) {
	cpu, hier, pred := t.CPU, t.Hier, t.Pred
	now := t.Core.Cycles()
	var lastBlk uint64
	haveBlk := false
	var warmed uint64
	for warmed < n && !cpu.Halted {
		r, err := cpu.Step()
		if err != nil {
			return warmed, err
		}
		warmed++
		if blk := hier.L1I.BlockAddr(r.PC); !haveBlk || blk != lastBlk {
			hier.AccessI(r.PC, now)
			lastBlk, haveBlk = blk, true
		}
		switch {
		case r.Inst.Op.IsBranch():
			pred.UpdateBranch(r.PC, r.Taken)
			if r.Taken {
				pred.UpdateTarget(r.PC, r.NextPC)
			}
		case r.NextPC != r.PC+isa.InstBytes:
			pred.UpdateTarget(r.PC, r.NextPC)
		}
		if r.IsMem() {
			cls := r.Inst.Op.Class()
			hier.AccessD(r.MemAddr, cls == isa.ClassStore || cls == isa.ClassAtomic, now)
		}
	}
	return warmed, nil
}

// diffInto writes after-before into dst (grown as needed).
func diffInto(dst, after, before []uint64) []uint64 {
	if cap(dst) < len(after) {
		dst = make([]uint64, len(after))
	}
	dst = dst[:len(after)]
	for i := range after {
		dst[i] = after[i] - before[i]
	}
	return dst
}

// addInto accumulates src into dst (grown as needed).
func addInto(dst, src []uint64) []uint64 {
	for len(dst) < len(src) {
		dst = append(dst, 0)
	}
	for i := range src {
		dst[i] += src[i]
	}
	return dst
}
