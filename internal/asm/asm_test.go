package asm

import (
	"strings"
	"testing"

	"icicle/internal/isa"
	"icicle/internal/mem"
)

// run assembles src, loads it into a fresh memory, and executes it to halt.
func run(t *testing.T, src string) *isa.CPU {
	t.Helper()
	prog, err := Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := mem.NewSparse()
	prog.LoadInto(m)
	c := isa.NewCPU(m, prog.Entry)
	if _, err := c.Run(10_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	return c
}

func TestAssembleSimpleProgram(t *testing.T) {
	c := run(t, `
		li   a0, 40
		addi a0, a0, 2
		ecall
	`)
	if c.ExitCode != 42 {
		t.Fatalf("exit = %d, want 42", c.ExitCode)
	}
}

func TestAssembleLoop(t *testing.T) {
	c := run(t, `
		li   t0, 100
		li   a0, 0
	loop:
		add  a0, a0, t0
		addi t0, t0, -1
		bnez t0, loop
		ecall
	`)
	if c.ExitCode != 5050 {
		t.Fatalf("sum = %d, want 5050", c.ExitCode)
	}
}

func TestAssembleDataSection(t *testing.T) {
	c := run(t, `
		la   a1, table
		ld   a0, 8(a1)
		ecall
		.data
	table:
		.dword 11, 22, 33
	`)
	if c.ExitCode != 22 {
		t.Fatalf("got %d, want 22", c.ExitCode)
	}
}

func TestAssembleCallRet(t *testing.T) {
	c := run(t, `
		li   a0, 5
		call double
		call double
		ecall
	double:
		slli a0, a0, 1
		ret
	`)
	if c.ExitCode != 20 {
		t.Fatalf("got %d, want 20", c.ExitCode)
	}
}

func TestAssembleBranchPseudos(t *testing.T) {
	c := run(t, `
		li   t0, 3
		li   t1, 7
		li   a0, 0
		bgt  t1, t0, one     # taken
		ecall
	one:
		addi a0, a0, 1
		ble  t0, t1, two     # taken
		ecall
	two:
		addi a0, a0, 1
		bltz t0, fail
		bgez t0, three       # taken
	fail:
		ecall
	three:
		addi a0, a0, 1
		ecall
	`)
	if c.ExitCode != 3 {
		t.Fatalf("got %d, want 3", c.ExitCode)
	}
}

func TestAssembleLiWide(t *testing.T) {
	cases := []struct {
		src  string
		want uint64
	}{
		{"li a0, 0", 0},
		{"li a0, 2047", 2047},
		{"li a0, -2048", 0xFFFF_FFFF_FFFF_F800},
		{"li a0, 0x7fffffff", 0x7fffffff},
		{"li a0, -2147483648", 0xFFFF_FFFF_8000_0000},
		{"li a0, 0x123456789abcdef0", 0x123456789abcdef0},
		{"li a0, 0xffffffffffffffff", ^uint64(0)},
		{"li a0, 0x8000000000000000", 1 << 63},
	}
	for _, tc := range cases {
		c := run(t, tc.src+"\necall\n")
		if got := c.Reg(isa.A0); got != tc.want {
			t.Errorf("%s: a0 = %#x, want %#x", tc.src, got, tc.want)
		}
	}
}

func TestAssembleMemoryOps(t *testing.T) {
	c := run(t, `
		li   sp, 0x200000
		li   t0, 0xdeadbeef
		sw   t0, -16(sp)
		lwu  a0, -16(sp)
		ecall
	`)
	if c.ExitCode != 0xdeadbeef {
		t.Fatalf("got %#x, want 0xdeadbeef", c.ExitCode)
	}
}

func TestAssembleStringData(t *testing.T) {
	prog, err := Assemble(`
		ecall
		.data
	msg:
		.asciz "hi"
	`)
	if err != nil {
		t.Fatal(err)
	}
	m := mem.NewSparse()
	prog.LoadInto(m)
	addr, err := prog.Symbol("msg")
	if err != nil {
		t.Fatal(err)
	}
	if got := m.ReadBytes(addr, 3); string(got) != "hi\x00" {
		t.Fatalf("msg = %q", got)
	}
}

func TestAssembleAlignAndSpace(t *testing.T) {
	prog, err := Assemble(`
		ecall
		.data
		.byte 1
		.align 3
	v:
		.dword 9
	`)
	if err != nil {
		t.Fatal(err)
	}
	addr, _ := prog.Symbol("v")
	if addr%8 != 0 {
		t.Fatalf("v not 8-aligned: %#x", addr)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		"bogus a0, a1",
		"addi a0, a1",        // missing operand
		"addi a0, a1, 99999", // imm out of range
		"lw a0, 0(nope)",
		"beq a0, a1, 3", // odd branch offset is an encode error
		"j missing_label\n",
		"x: nop\nx: nop",        // duplicate label
		".data\naddi a0, a0, 1", // code in data
		".word 1",               // data in text
	}
	for _, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("Assemble(%q) succeeded, want error", src)
		}
	}
}

func TestAssembleCSRNames(t *testing.T) {
	prog, err := Assemble(`
		csrr  a0, mhpmcounter3
		csrw  mhpmevent3, a1
		rdcycle a2
		ecall
	`)
	if err != nil {
		t.Fatal(err)
	}
	insts := prog.Disassemble()
	if insts[0].Op != isa.CSRRS || insts[0].Imm != 0xB03 {
		t.Errorf("csrr mhpmcounter3 → %v", insts[0])
	}
	if insts[1].Op != isa.CSRRW || insts[1].Imm != 0x323 {
		t.Errorf("csrw mhpmevent3 → %v", insts[1])
	}
	if insts[2].Op != isa.CSRRS || insts[2].Imm != 0xC00 {
		t.Errorf("rdcycle → %v", insts[2])
	}
}

func TestLabelArithmetic(t *testing.T) {
	c := run(t, `
		la   a1, tab+8
		ld   a0, 0(a1)
		ecall
		.data
	tab:
		.dword 5, 6, 7
	`)
	if c.ExitCode != 6 {
		t.Fatalf("got %d, want 6", c.ExitCode)
	}
}

func TestRecursionFibonacci(t *testing.T) {
	c := run(t, `
		li   sp, 0x300000
		li   a0, 12
		call fib
		ecall
	fib:                      # naive recursive fibonacci
		li   t0, 2
		blt  a0, t0, base
		addi sp, sp, -24
		sd   ra, 0(sp)
		sd   a0, 8(sp)
		addi a0, a0, -1
		call fib
		sd   a0, 16(sp)
		ld   a0, 8(sp)
		addi a0, a0, -2
		call fib
		ld   t1, 16(sp)
		add  a0, a0, t1
		ld   ra, 0(sp)
		addi sp, sp, 24
		ret
	base:
		ret
	`)
	if c.ExitCode != 144 {
		t.Fatalf("fib(12) = %d, want 144", c.ExitCode)
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	prog := MustAssemble(`
		addi a0, a0, 1
		add  a1, a2, a3
		lw   t0, 4(sp)
		ecall
	`)
	insts := prog.Disassemble()
	want := []string{"addi a0, a0, 1", "add a1, a2, a3", "lw t0, 4(sp)", "ecall"}
	if len(insts) != len(want) {
		t.Fatalf("got %d insts, want %d", len(insts), len(want))
	}
	for i, w := range want {
		if insts[i].String() != w {
			t.Errorf("inst %d = %q, want %q", i, insts[i], w)
		}
	}
}

func TestSortedSymbols(t *testing.T) {
	prog := MustAssemble(`
	start:
		nop
	end:
		ecall
	`)
	syms := prog.SortedSymbols()
	if len(syms) != 2 || syms[0] != "start" || syms[1] != "end" {
		t.Fatalf("symbols = %v", syms)
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustAssemble did not panic on bad source")
		}
	}()
	MustAssemble("bogus")
}

func TestCommentsAndWhitespace(t *testing.T) {
	c := run(t, strings.Join([]string{
		"  # full-line comment",
		"\tli a0, 7   # trailing",
		"// slash comment",
		"   ecall",
	}, "\n"))
	if c.ExitCode != 7 {
		t.Fatalf("got %d, want 7", c.ExitCode)
	}
}

func TestHiLoRelocations(t *testing.T) {
	// The standard %hi/%lo pair must reach the same address as `la`.
	c := run(t, `
		lui  a1, %hi(val)
		addi a1, a1, %lo(val)
		ld   a0, 0(a1)
		ecall
		.data
	val:
		.dword 77
	`)
	if c.ExitCode != 77 {
		t.Fatalf("got %d, want 77", c.ExitCode)
	}
}

func TestHiLoErrors(t *testing.T) {
	for _, src := range []string{
		"lui a1, %hi(missing)\necall",
		"addi a1, a1, %lo()\necall",
	} {
		if _, err := Assemble(src); err == nil {
			t.Errorf("Assemble(%q) succeeded", src)
		}
	}
}

func TestAtomics(t *testing.T) {
	c := run(t, `
		li   s0, 0x400000
		li   t0, 5
		sd   t0, 0(s0)
		li   t1, 37
		amoadd.d a1, t1, (s0)   # a1 = 5, mem = 42
		ld   a2, 0(s0)
		lr.d a3, (s0)           # 42, reserve
		li   t2, 100
		sc.d a4, t2, (s0)       # succeeds: a4 = 0, mem = 100
		sc.d a5, t2, (s0)       # no reservation: a5 = 1
		ld   a6, 0(s0)
		add  a0, a1, a2         # 5 + 42
		add  a0, a0, a4         # + 0
		add  a0, a0, a5         # + 1
		add  a0, a0, a6         # + 100
		ecall
	`)
	if c.ExitCode != 5+42+0+1+100 {
		t.Fatalf("atomics = %d", c.ExitCode)
	}
}

func TestAtomicSyntaxErrors(t *testing.T) {
	for _, src := range []string{
		"amoadd.d a0, a1, 8(a2)\necall", // nonzero offset
		"lr.d a0, a1, (a2)\necall",      // lr takes 2 operands
	} {
		if _, err := Assemble(src); err == nil {
			t.Errorf("Assemble(%q) succeeded", src)
		}
	}
}
