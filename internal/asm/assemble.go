package asm

import (
	"fmt"
	"strings"

	"icicle/internal/isa"
)

// Assemble translates RV64IM assembly source into a Program using the
// default section bases.
func Assemble(src string) (*Program, error) {
	return AssembleAt(src, DefaultTextBase, DefaultDataBase)
}

// MustAssemble is Assemble that panics on error; kernels are compiled-in
// string constants, so assembly failure is a programming bug.
func MustAssemble(src string) *Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

// AssembleAt assembles with explicit text/data base addresses.
func AssembleAt(src string, textBase, dataBase uint64) (*Program, error) {
	a := &assembler{
		textBase: textBase,
		dataBase: dataBase,
		symbols:  make(map[string]uint64),
	}
	if err := a.firstPass(src); err != nil {
		return nil, err
	}
	if err := a.secondPass(); err != nil {
		return nil, err
	}
	prog := &Program{
		Entry:    textBase,
		Symbols:  a.symbols,
		TextSize: len(a.text),
		Segments: []Segment{{Addr: textBase, Bytes: a.text}},
	}
	if len(a.data) > 0 {
		prog.Segments = append(prog.Segments, Segment{Addr: dataBase, Bytes: a.data})
	}
	return prog, nil
}

// item is a pending instruction with possibly unresolved label operands.
type item struct {
	line   int
	addr   uint64
	inst   isa.Inst
	label  string // unresolved label for imm, "" if resolved
	reloc  relocKind
	addend int64
}

type relocKind uint8

const (
	relocNone   relocKind = iota
	relocBranch           // PC-relative, B/J-format immediate
	relocHi               // %hi(sym): upper 20 bits (with round-up)
	relocLo               // %lo(sym): low 12 bits
	relocAbs              // whole address (for li-style pseudo internal use)
)

type assembler struct {
	textBase uint64
	dataBase uint64
	text     []byte
	data     []byte
	items    []item
	symbols  map[string]uint64
	inData   bool
	line     int
}

func (a *assembler) errf(format string, args ...any) error {
	return fmt.Errorf("asm: line %d: %s", a.line, fmt.Sprintf(format, args...))
}

func (a *assembler) pc() uint64 {
	if a.inData {
		return a.dataBase + uint64(len(a.data))
	}
	return a.textBase + uint64(len(a.text))
}

func (a *assembler) firstPass(src string) error {
	for i, raw := range strings.Split(src, "\n") {
		a.line = i + 1
		line := stripComment(raw)
		// A line may carry several labels and one statement.
		for {
			line = strings.TrimSpace(line)
			if line == "" {
				break
			}
			if j := strings.IndexByte(line, ':'); j >= 0 && isLabel(line[:j]) {
				name := line[:j]
				if _, dup := a.symbols[name]; dup {
					return a.errf("duplicate label %q", name)
				}
				a.symbols[name] = a.pc()
				line = line[j+1:]
				continue
			}
			if err := a.statement(line); err != nil {
				return err
			}
			break
		}
	}
	return nil
}

func stripComment(s string) string {
	for i := 0; i < len(s); i++ {
		switch {
		case s[i] == '#':
			return s[:i]
		case s[i] == '/' && i+1 < len(s) && s[i+1] == '/':
			return s[:i]
		}
	}
	return s
}

func isLabel(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '.':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func (a *assembler) statement(s string) error {
	mnemonic, rest := splitMnemonic(s)
	if strings.HasPrefix(mnemonic, ".") {
		return a.directive(mnemonic, rest)
	}
	if a.inData {
		return a.errf("instruction %q in .data section", mnemonic)
	}
	ops := splitOperands(rest)
	return a.instruction(strings.ToLower(mnemonic), ops)
}

func splitMnemonic(s string) (string, string) {
	s = strings.TrimSpace(s)
	for i := 0; i < len(s); i++ {
		if s[i] == ' ' || s[i] == '\t' {
			return s[:i], s[i+1:]
		}
	}
	return s, ""
}

func splitOperands(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

// emit appends a resolved or to-be-relocated instruction to the text.
func (a *assembler) emit(in isa.Inst, label string, kind relocKind, addend int64) {
	a.items = append(a.items, item{
		line: a.line, addr: a.pc(), inst: in, label: label, reloc: kind, addend: addend,
	})
	a.text = append(a.text, 0, 0, 0, 0) // patched in pass 2
}

func (a *assembler) secondPass() error {
	for _, it := range a.items {
		a.line = it.line
		in := it.inst
		if it.label != "" {
			target, ok := a.symbols[it.label]
			if !ok {
				return a.errf("undefined label %q", it.label)
			}
			val := int64(target) + it.addend
			switch it.reloc {
			case relocBranch:
				in.Imm = val - int64(it.addr)
			case relocHi:
				in.Imm = (val + 0x800) >> 12
			case relocLo:
				in.Imm = val & 0xfff
				if in.Imm >= 0x800 {
					in.Imm -= 0x1000
				}
			case relocAbs:
				in.Imm = val
			}
		}
		w, err := isa.Encode(in)
		if err != nil {
			return a.errf("%v", err)
		}
		off := it.addr - a.textBase
		a.text[off] = byte(w)
		a.text[off+1] = byte(w >> 8)
		a.text[off+2] = byte(w >> 16)
		a.text[off+3] = byte(w >> 24)
	}
	return nil
}
