package asm

import (
	"strconv"
	"strings"

	"icicle/internal/isa"
)

// Standard CSR names usable in assembly (the PMU address map; see
// internal/pmu for the register semantics).
var csrNames = map[string]int64{
	"cycle":         0xC00,
	"time":          0xC01,
	"instret":       0xC02,
	"mcycle":        0xB00,
	"minstret":      0xB02,
	"mcountinhibit": 0x320,
}

func init() {
	for i := 3; i <= 31; i++ {
		csrNames["mhpmcounter"+strconv.Itoa(i)] = 0xB00 + int64(i)
		csrNames["mhpmevent"+strconv.Itoa(i)] = 0x320 + int64(i)
		csrNames["hpmcounter"+strconv.Itoa(i)] = 0xC00 + int64(i)
	}
}

func (a *assembler) parseReg(s string) (isa.Reg, error) {
	r, ok := isa.RegNames[strings.ToLower(strings.TrimSpace(s))]
	if !ok {
		return 0, a.errf("bad register %q", s)
	}
	return r, nil
}

func (a *assembler) parseImm(s string) (int64, error) {
	s = strings.TrimSpace(s)
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		// Allow full-range unsigned hex like 0xffffffffffffffff.
		if u, uerr := strconv.ParseUint(s, 0, 64); uerr == nil {
			return int64(u), nil
		}
		return 0, a.errf("bad immediate %q", s)
	}
	return v, nil
}

func (a *assembler) parseCSR(s string) (int64, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if v, ok := csrNames[s]; ok {
		return v, nil
	}
	return a.parseImm(s)
}

// parseMem parses "off(reg)" or "(reg)" or "reg".
func (a *assembler) parseMem(s string) (off int64, base isa.Reg, err error) {
	s = strings.TrimSpace(s)
	i := strings.IndexByte(s, '(')
	if i < 0 {
		base, err = a.parseReg(s)
		return 0, base, err
	}
	if !strings.HasSuffix(s, ")") {
		return 0, 0, a.errf("bad memory operand %q", s)
	}
	if o := strings.TrimSpace(s[:i]); o != "" {
		if off, err = a.parseImm(o); err != nil {
			return 0, 0, err
		}
	}
	base, err = a.parseReg(s[i+1 : len(s)-1])
	return off, base, err
}

func (a *assembler) want(ops []string, n int) error {
	if len(ops) != n {
		return a.errf("want %d operands, got %d", n, len(ops))
	}
	return nil
}

// labelOrImm returns either a literal immediate or a label with addend
// ("sym" or "sym+4").
func (a *assembler) labelOrImm(s string) (imm int64, label string, addend int64, err error) {
	s = strings.TrimSpace(s)
	if v, e := strconv.ParseInt(s, 0, 64); e == nil {
		return v, "", 0, nil
	}
	if i := strings.IndexAny(s, "+-"); i > 0 {
		add, e := strconv.ParseInt(s[i:], 0, 64)
		if e != nil {
			return 0, "", 0, a.errf("bad label expression %q", s)
		}
		if !isLabel(s[:i]) {
			return 0, "", 0, a.errf("bad label %q", s[:i])
		}
		return 0, s[:i], add, nil
	}
	if !isLabel(s) {
		return 0, "", 0, a.errf("bad label or immediate %q", s)
	}
	return 0, s, 0, nil
}

var rTypeOps = map[string]isa.Op{
	"add": isa.ADD, "sub": isa.SUB, "sll": isa.SLL, "slt": isa.SLT,
	"sltu": isa.SLTU, "xor": isa.XOR, "srl": isa.SRL, "sra": isa.SRA,
	"or": isa.OR, "and": isa.AND,
	"addw": isa.ADDW, "subw": isa.SUBW, "sllw": isa.SLLW,
	"srlw": isa.SRLW, "sraw": isa.SRAW,
	"mul": isa.MUL, "mulh": isa.MULH, "mulhsu": isa.MULHSU, "mulhu": isa.MULHU,
	"div": isa.DIV, "divu": isa.DIVU, "rem": isa.REM, "remu": isa.REMU,
	"mulw": isa.MULW, "divw": isa.DIVW, "divuw": isa.DIVUW,
	"remw": isa.REMW, "remuw": isa.REMUW,
}

var iTypeOps = map[string]isa.Op{
	"addi": isa.ADDI, "slti": isa.SLTI, "sltiu": isa.SLTIU, "xori": isa.XORI,
	"ori": isa.ORI, "andi": isa.ANDI, "slli": isa.SLLI, "srli": isa.SRLI,
	"srai": isa.SRAI, "addiw": isa.ADDIW, "slliw": isa.SLLIW,
	"srliw": isa.SRLIW, "sraiw": isa.SRAIW,
}

var loadOps = map[string]isa.Op{
	"lb": isa.LB, "lh": isa.LH, "lw": isa.LW, "ld": isa.LD,
	"lbu": isa.LBU, "lhu": isa.LHU, "lwu": isa.LWU,
}

var storeOps = map[string]isa.Op{
	"sb": isa.SB, "sh": isa.SH, "sw": isa.SW, "sd": isa.SD,
}

var branchOps = map[string]isa.Op{
	"beq": isa.BEQ, "bne": isa.BNE, "blt": isa.BLT, "bge": isa.BGE,
	"bltu": isa.BLTU, "bgeu": isa.BGEU,
}

// swapped-operand branch pseudos: bgt a,b ≡ blt b,a etc.
var branchSwapOps = map[string]isa.Op{
	"bgt": isa.BLT, "ble": isa.BGE, "bgtu": isa.BLTU, "bleu": isa.BGEU,
}

// zero-comparison branch pseudos mapped to (op, zeroIsRs1).
var branchZeroOps = map[string]struct {
	op      isa.Op
	zeroRs1 bool
}{
	"beqz": {isa.BEQ, false}, "bnez": {isa.BNE, false},
	"bltz": {isa.BLT, false}, "bgez": {isa.BGE, false},
	"blez": {isa.BGE, true}, "bgtz": {isa.BLT, true},
}

// A-extension mnemonics.
var amoOps = map[string]isa.Op{
	"lr.w": isa.LRW, "lr.d": isa.LRD, "sc.w": isa.SCW, "sc.d": isa.SCD,
	"amoswap.w": isa.AMOSWAPW, "amoswap.d": isa.AMOSWAPD,
	"amoadd.w": isa.AMOADDW, "amoadd.d": isa.AMOADDD,
	"amoxor.w": isa.AMOXORW, "amoxor.d": isa.AMOXORD,
	"amoand.w": isa.AMOANDW, "amoand.d": isa.AMOANDD,
	"amoor.w": isa.AMOORW, "amoor.d": isa.AMOORD,
}

func (a *assembler) instruction(m string, ops []string) error {
	if op, ok := amoOps[m]; ok {
		return a.emitAMO(op, ops)
	}
	if op, ok := rTypeOps[m]; ok {
		if err := a.want(ops, 3); err != nil {
			return err
		}
		rd, err := a.parseReg(ops[0])
		if err != nil {
			return err
		}
		rs1, err := a.parseReg(ops[1])
		if err != nil {
			return err
		}
		rs2, err := a.parseReg(ops[2])
		if err != nil {
			return err
		}
		a.emit(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2}, "", relocNone, 0)
		return nil
	}
	if op, ok := iTypeOps[m]; ok {
		if err := a.want(ops, 3); err != nil {
			return err
		}
		rd, err := a.parseReg(ops[0])
		if err != nil {
			return err
		}
		rs1, err := a.parseReg(ops[1])
		if err != nil {
			return err
		}
		if sym, ok := relocOperand(ops[2], "%lo"); ok {
			a.emit(isa.Inst{Op: op, Rd: rd, Rs1: rs1}, sym, relocLo, 0)
			return nil
		}
		imm, err := a.parseImm(ops[2])
		if err != nil {
			return err
		}
		a.emit(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Imm: imm}, "", relocNone, 0)
		return nil
	}
	if op, ok := loadOps[m]; ok {
		if err := a.want(ops, 2); err != nil {
			return err
		}
		rd, err := a.parseReg(ops[0])
		if err != nil {
			return err
		}
		off, base, err := a.parseMem(ops[1])
		if err != nil {
			return err
		}
		a.emit(isa.Inst{Op: op, Rd: rd, Rs1: base, Imm: off}, "", relocNone, 0)
		return nil
	}
	if op, ok := storeOps[m]; ok {
		if err := a.want(ops, 2); err != nil {
			return err
		}
		rs2, err := a.parseReg(ops[0])
		if err != nil {
			return err
		}
		off, base, err := a.parseMem(ops[1])
		if err != nil {
			return err
		}
		a.emit(isa.Inst{Op: op, Rs1: base, Rs2: rs2, Imm: off}, "", relocNone, 0)
		return nil
	}
	if op, ok := branchOps[m]; ok {
		if err := a.want(ops, 3); err != nil {
			return err
		}
		return a.emitBranch(op, ops[0], ops[1], ops[2])
	}
	if op, ok := branchSwapOps[m]; ok {
		if err := a.want(ops, 3); err != nil {
			return err
		}
		return a.emitBranch(op, ops[1], ops[0], ops[2])
	}
	if bz, ok := branchZeroOps[m]; ok {
		if err := a.want(ops, 2); err != nil {
			return err
		}
		if bz.zeroRs1 {
			return a.emitBranch(bz.op, "x0", ops[0], ops[1])
		}
		return a.emitBranch(bz.op, ops[0], "x0", ops[1])
	}
	return a.special(m, ops)
}

// emitAMO parses "lr.d rd, (rs1)" / "amoadd.d rd, rs2, (rs1)".
func (a *assembler) emitAMO(op isa.Op, ops []string) error {
	wantOps := 3
	if op == isa.LRW || op == isa.LRD {
		wantOps = 2
	}
	if err := a.want(ops, wantOps); err != nil {
		return err
	}
	rd, err := a.parseReg(ops[0])
	if err != nil {
		return err
	}
	var rs2 isa.Reg
	addrOp := ops[1]
	if wantOps == 3 {
		if rs2, err = a.parseReg(ops[1]); err != nil {
			return err
		}
		addrOp = ops[2]
	}
	off, base, err := a.parseMem(addrOp)
	if err != nil {
		return err
	}
	if off != 0 {
		return a.errf("atomic address must have zero offset, got %d", off)
	}
	a.emit(isa.Inst{Op: op, Rd: rd, Rs1: base, Rs2: rs2}, "", relocNone, 0)
	return nil
}

func (a *assembler) emitBranch(op isa.Op, rs1s, rs2s, target string) error {
	rs1, err := a.parseReg(rs1s)
	if err != nil {
		return err
	}
	rs2, err := a.parseReg(rs2s)
	if err != nil {
		return err
	}
	imm, label, addend, err := a.labelOrImm(target)
	if err != nil {
		return err
	}
	kind := relocNone
	if label != "" {
		kind = relocBranch
	}
	a.emit(isa.Inst{Op: op, Rs1: rs1, Rs2: rs2, Imm: imm}, label, kind, addend)
	return nil
}

func (a *assembler) special(m string, ops []string) error {
	switch m {
	case "lui", "auipc":
		if err := a.want(ops, 2); err != nil {
			return err
		}
		rd, err := a.parseReg(ops[0])
		if err != nil {
			return err
		}
		op := isa.LUI
		if m == "auipc" {
			op = isa.AUIPC
		}
		if sym, ok := relocOperand(ops[1], "%hi"); ok {
			a.emit(isa.Inst{Op: op, Rd: rd}, sym, relocHi, 0)
			return nil
		}
		imm, err := a.parseImm(ops[1])
		if err != nil {
			return err
		}
		a.emit(isa.Inst{Op: op, Rd: rd, Imm: imm}, "", relocNone, 0)
		return nil

	case "jal":
		var rd isa.Reg = isa.RA
		target := ""
		switch len(ops) {
		case 1:
			target = ops[0]
		case 2:
			r, err := a.parseReg(ops[0])
			if err != nil {
				return err
			}
			rd, target = r, ops[1]
		default:
			return a.errf("jal wants 1 or 2 operands")
		}
		imm, label, addend, err := a.labelOrImm(target)
		if err != nil {
			return err
		}
		kind := relocNone
		if label != "" {
			kind = relocBranch
		}
		a.emit(isa.Inst{Op: isa.JAL, Rd: rd, Imm: imm}, label, kind, addend)
		return nil

	case "jalr":
		switch len(ops) {
		case 1: // jalr rs
			rs, err := a.parseReg(ops[0])
			if err != nil {
				return err
			}
			a.emit(isa.Inst{Op: isa.JALR, Rd: isa.RA, Rs1: rs}, "", relocNone, 0)
			return nil
		case 2: // jalr rd, off(rs)
			rd, err := a.parseReg(ops[0])
			if err != nil {
				return err
			}
			off, base, err := a.parseMem(ops[1])
			if err != nil {
				return err
			}
			a.emit(isa.Inst{Op: isa.JALR, Rd: rd, Rs1: base, Imm: off}, "", relocNone, 0)
			return nil
		case 3: // jalr rd, rs, off
			rd, err := a.parseReg(ops[0])
			if err != nil {
				return err
			}
			rs, err := a.parseReg(ops[1])
			if err != nil {
				return err
			}
			off, err := a.parseImm(ops[2])
			if err != nil {
				return err
			}
			a.emit(isa.Inst{Op: isa.JALR, Rd: rd, Rs1: rs, Imm: off}, "", relocNone, 0)
			return nil
		}
		return a.errf("jalr wants 1-3 operands")

	case "j":
		if err := a.want(ops, 1); err != nil {
			return err
		}
		imm, label, addend, err := a.labelOrImm(ops[0])
		if err != nil {
			return err
		}
		kind := relocNone
		if label != "" {
			kind = relocBranch
		}
		a.emit(isa.Inst{Op: isa.JAL, Rd: isa.X0, Imm: imm}, label, kind, addend)
		return nil

	case "jr":
		if err := a.want(ops, 1); err != nil {
			return err
		}
		rs, err := a.parseReg(ops[0])
		if err != nil {
			return err
		}
		a.emit(isa.Inst{Op: isa.JALR, Rs1: rs}, "", relocNone, 0)
		return nil

	case "ret":
		a.emit(isa.Inst{Op: isa.JALR, Rs1: isa.RA}, "", relocNone, 0)
		return nil

	case "call":
		if err := a.want(ops, 1); err != nil {
			return err
		}
		imm, label, addend, err := a.labelOrImm(ops[0])
		if err != nil {
			return err
		}
		kind := relocNone
		if label != "" {
			kind = relocBranch
		}
		a.emit(isa.Inst{Op: isa.JAL, Rd: isa.RA, Imm: imm}, label, kind, addend)
		return nil

	case "nop":
		a.emit(isa.NOP, "", relocNone, 0)
		return nil

	case "mv":
		return a.alias2(ops, func(rd, rs isa.Reg) isa.Inst {
			return isa.Inst{Op: isa.ADDI, Rd: rd, Rs1: rs}
		})
	case "not":
		return a.alias2(ops, func(rd, rs isa.Reg) isa.Inst {
			return isa.Inst{Op: isa.XORI, Rd: rd, Rs1: rs, Imm: -1}
		})
	case "neg":
		return a.alias2(ops, func(rd, rs isa.Reg) isa.Inst {
			return isa.Inst{Op: isa.SUB, Rd: rd, Rs2: rs}
		})
	case "negw":
		return a.alias2(ops, func(rd, rs isa.Reg) isa.Inst {
			return isa.Inst{Op: isa.SUBW, Rd: rd, Rs2: rs}
		})
	case "sext.w":
		return a.alias2(ops, func(rd, rs isa.Reg) isa.Inst {
			return isa.Inst{Op: isa.ADDIW, Rd: rd, Rs1: rs}
		})
	case "seqz":
		return a.alias2(ops, func(rd, rs isa.Reg) isa.Inst {
			return isa.Inst{Op: isa.SLTIU, Rd: rd, Rs1: rs, Imm: 1}
		})
	case "snez":
		return a.alias2(ops, func(rd, rs isa.Reg) isa.Inst {
			return isa.Inst{Op: isa.SLTU, Rd: rd, Rs2: rs}
		})
	case "sltz":
		return a.alias2(ops, func(rd, rs isa.Reg) isa.Inst {
			return isa.Inst{Op: isa.SLT, Rd: rd, Rs1: rs}
		})
	case "sgtz":
		return a.alias2(ops, func(rd, rs isa.Reg) isa.Inst {
			return isa.Inst{Op: isa.SLT, Rd: rd, Rs2: rs}
		})

	case "li":
		if err := a.want(ops, 2); err != nil {
			return err
		}
		rd, err := a.parseReg(ops[0])
		if err != nil {
			return err
		}
		v, err := a.parseImm(ops[1])
		if err != nil {
			return err
		}
		a.synthLI(rd, v)
		return nil

	case "la":
		if err := a.want(ops, 2); err != nil {
			return err
		}
		rd, err := a.parseReg(ops[0])
		if err != nil {
			return err
		}
		_, label, addend, err := a.labelOrImm(ops[1])
		if err != nil {
			return err
		}
		if label == "" {
			return a.errf("la wants a label operand")
		}
		a.emit(isa.Inst{Op: isa.LUI, Rd: rd}, label, relocHi, addend)
		a.emit(isa.Inst{Op: isa.ADDIW, Rd: rd, Rs1: rd}, label, relocLo, addend)
		return nil

	case "fence":
		a.emit(isa.Inst{Op: isa.FENCE}, "", relocNone, 0)
		return nil
	case "fence.i":
		a.emit(isa.Inst{Op: isa.FENCEI}, "", relocNone, 0)
		return nil
	case "ecall":
		a.emit(isa.Inst{Op: isa.ECALL}, "", relocNone, 0)
		return nil
	case "ebreak":
		a.emit(isa.Inst{Op: isa.EBREAK}, "", relocNone, 0)
		return nil

	case "csrrw", "csrrs", "csrrc":
		if err := a.want(ops, 3); err != nil {
			return err
		}
		rd, err := a.parseReg(ops[0])
		if err != nil {
			return err
		}
		csr, err := a.parseCSR(ops[1])
		if err != nil {
			return err
		}
		rs, err := a.parseReg(ops[2])
		if err != nil {
			return err
		}
		op := map[string]isa.Op{"csrrw": isa.CSRRW, "csrrs": isa.CSRRS, "csrrc": isa.CSRRC}[m]
		a.emit(isa.Inst{Op: op, Rd: rd, Rs1: rs, Imm: csr}, "", relocNone, 0)
		return nil

	case "csrrwi", "csrrsi", "csrrci":
		if err := a.want(ops, 3); err != nil {
			return err
		}
		rd, err := a.parseReg(ops[0])
		if err != nil {
			return err
		}
		csr, err := a.parseCSR(ops[1])
		if err != nil {
			return err
		}
		z, err := a.parseImm(ops[2])
		if err != nil {
			return err
		}
		if z < 0 || z > 31 {
			return a.errf("csr immediate %d out of range", z)
		}
		op := map[string]isa.Op{"csrrwi": isa.CSRRWI, "csrrsi": isa.CSRRSI, "csrrci": isa.CSRRCI}[m]
		a.emit(isa.Inst{Op: op, Rd: rd, CSRImm: uint8(z), Imm: csr}, "", relocNone, 0)
		return nil

	case "csrr": // csrr rd, csr
		if err := a.want(ops, 2); err != nil {
			return err
		}
		rd, err := a.parseReg(ops[0])
		if err != nil {
			return err
		}
		csr, err := a.parseCSR(ops[1])
		if err != nil {
			return err
		}
		a.emit(isa.Inst{Op: isa.CSRRS, Rd: rd, Imm: csr}, "", relocNone, 0)
		return nil

	case "csrw": // csrw csr, rs
		if err := a.want(ops, 2); err != nil {
			return err
		}
		csr, err := a.parseCSR(ops[0])
		if err != nil {
			return err
		}
		rs, err := a.parseReg(ops[1])
		if err != nil {
			return err
		}
		a.emit(isa.Inst{Op: isa.CSRRW, Rs1: rs, Imm: csr}, "", relocNone, 0)
		return nil

	case "rdcycle":
		return a.readCSR(ops, csrNames["cycle"])
	case "rdinstret":
		return a.readCSR(ops, csrNames["instret"])
	}
	return a.errf("unknown mnemonic %q", m)
}

// relocOperand matches "%hi(sym)" / "%lo(sym)" forms.
func relocOperand(s, kind string) (sym string, ok bool) {
	s = strings.TrimSpace(s)
	if strings.HasPrefix(s, kind+"(") && strings.HasSuffix(s, ")") {
		inner := s[len(kind)+1 : len(s)-1]
		if isLabel(inner) {
			return inner, true
		}
	}
	return "", false
}

func (a *assembler) readCSR(ops []string, csr int64) error {
	if err := a.want(ops, 1); err != nil {
		return err
	}
	rd, err := a.parseReg(ops[0])
	if err != nil {
		return err
	}
	a.emit(isa.Inst{Op: isa.CSRRS, Rd: rd, Imm: csr}, "", relocNone, 0)
	return nil
}

func (a *assembler) alias2(ops []string, f func(rd, rs isa.Reg) isa.Inst) error {
	if err := a.want(ops, 2); err != nil {
		return err
	}
	rd, err := a.parseReg(ops[0])
	if err != nil {
		return err
	}
	rs, err := a.parseReg(ops[1])
	if err != nil {
		return err
	}
	a.emit(f(rd, rs), "", relocNone, 0)
	return nil
}

// synthLI emits the canonical load-immediate sequence for an arbitrary
// 64-bit constant.
func (a *assembler) synthLI(rd isa.Reg, v int64) {
	if v >= -2048 && v < 2048 {
		a.emit(isa.Inst{Op: isa.ADDI, Rd: rd, Imm: v}, "", relocNone, 0)
		return
	}
	if v >= -(1<<31) && v < 1<<31 {
		lo := v & 0xfff
		if lo >= 0x800 {
			lo -= 0x1000
		}
		// The 20-bit LUI field wraps; ADDIW's 32-bit truncation makes the
		// combination exact for any 32-bit constant.
		hi := (v - lo) >> 12 & 0xfffff
		if hi >= 1<<19 {
			hi -= 1 << 20
		}
		a.emit(isa.Inst{Op: isa.LUI, Rd: rd, Imm: hi}, "", relocNone, 0)
		if lo != 0 {
			a.emit(isa.Inst{Op: isa.ADDIW, Rd: rd, Rs1: rd, Imm: lo}, "", relocNone, 0)
		}
		return
	}
	// Wide constant: build the upper bits, shift, then OR in 12-bit chunks.
	lo := v & 0xfff
	if lo >= 0x800 {
		lo -= 0x1000
	}
	a.synthLI(rd, (v-lo)>>12)
	a.emit(isa.Inst{Op: isa.SLLI, Rd: rd, Rs1: rd, Imm: 12}, "", relocNone, 0)
	if lo != 0 {
		a.emit(isa.Inst{Op: isa.ADDI, Rd: rd, Rs1: rd, Imm: lo}, "", relocNone, 0)
	}
}
