package asm

import (
	"math/rand"
	"strings"
	"testing"

	"icicle/internal/isa"
)

// TestDisassemblyReassembles checks Inst.String() against the assembler:
// for every encodable operation, rendering a random instance and feeding
// it back through Assemble must reproduce the identical encoding. This
// pins the two textual surfaces (disassembler and assembler) together.
func TestDisassemblyReassembles(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	reg := func() isa.Reg { return isa.Reg(r.Intn(31) + 1) } // avoid x0 quirks
	for op := isa.LUI; op < isa.Op(isa.NumOps); op++ {
		for trial := 0; trial < 20; trial++ {
			in := isa.Inst{Op: op, Rd: reg(), Rs1: reg(), Rs2: reg()}
			switch {
			case op == isa.LUI || op == isa.AUIPC:
				in.Imm = int64(r.Intn(1<<19) - 1<<18)
				in.Rs1, in.Rs2 = 0, 0
			case op == isa.JAL:
				in.Imm = int64(r.Intn(1<<19)-1<<18) * 2
				in.Rs1, in.Rs2 = 0, 0
			case op == isa.JALR:
				in.Imm = int64(r.Intn(1<<11) - 1<<10)
				in.Rs2 = 0
			case op == isa.SLLI || op == isa.SRLI || op == isa.SRAI:
				in.Imm = int64(r.Intn(64))
				in.Rs2 = 0
			case op == isa.SLLIW || op == isa.SRLIW || op == isa.SRAIW:
				in.Imm = int64(r.Intn(32))
				in.Rs2 = 0
			case op.Class() == isa.ClassBranch:
				in.Imm = int64(r.Intn(1<<10)-1<<9) * 2
				in.Rd = 0
			case op.Class() == isa.ClassLoad:
				in.Imm = int64(r.Intn(1<<11) - 1<<10)
				in.Rs2 = 0
			case op.Class() == isa.ClassStore:
				in.Imm = int64(r.Intn(1<<11) - 1<<10)
				in.Rd = 0
			case op.Class() == isa.ClassAtomic:
				in.Imm = 0
				if op == isa.LRW || op == isa.LRD {
					in.Rs2 = 0
				}
			case op.Class() == isa.ClassCSR:
				in.Imm = int64(r.Intn(1 << 12))
				in.Rs2 = 0
				switch op {
				case isa.CSRRWI, isa.CSRRSI, isa.CSRRCI:
					in.Rs1 = 0
					in.CSRImm = uint8(r.Intn(32))
				}
			case op.Class() == isa.ClassFence || op.Class() == isa.ClassSystem:
				in = isa.Inst{Op: op}
			case op.ReadsRs2():
				// R-type: no immediate.
			default:
				// I-type ALU.
				in.Imm = int64(r.Intn(1<<11) - 1<<10)
				in.Rs2 = 0
			}

			want, err := isa.Encode(in)
			if err != nil {
				t.Fatalf("%v: encode: %v", in, err)
			}
			src := in.String()
			// Branch/jump renderings use relative immediates the assembler
			// reads as absolute targets from address 0 — assemble at 0 so
			// they coincide.
			prog, err := AssembleAt("\t"+src+"\n", 0, DefaultDataBase)
			if err != nil {
				t.Fatalf("%q does not assemble: %v", src, err)
			}
			got := uint32(prog.Segments[0].Bytes[0]) |
				uint32(prog.Segments[0].Bytes[1])<<8 |
				uint32(prog.Segments[0].Bytes[2])<<16 |
				uint32(prog.Segments[0].Bytes[3])<<24
			if got != want {
				t.Fatalf("%q: reassembled %08x, want %08x (%v)", src, got, want, in)
			}
		}
	}
}

// TestDisassembleMatchesSource pins Program.Disassemble against a known
// listing including the newer instruction classes.
func TestDisassembleMatchesSource(t *testing.T) {
	prog := MustAssemble(`
		amoadd.d a0, a1, (a2)
		lr.d t0, (a1)
		sc.w t1, t2, (a1)
		csrrwi a3, 0x345, 9
		fence.i
	`)
	var got []string
	for _, in := range prog.Disassemble() {
		got = append(got, in.String())
	}
	want := []string{
		"amoadd.d a0, a1, (a2)",
		"lr.d t0, (a1)",
		"sc.w t1, t2, (a1)",
		"csrrwi a3, 0x345, 9",
		"fence.i",
	}
	if strings.Join(got, ";") != strings.Join(want, ";") {
		t.Fatalf("got %v\nwant %v", got, want)
	}
}
