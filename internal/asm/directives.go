package asm

import (
	"strconv"
	"strings"

	"icicle/internal/isa"
)

// directive handles assembler directives (.text, .data, .word, …).
func (a *assembler) directive(name, rest string) error {
	switch strings.ToLower(name) {
	case ".text":
		a.inData = false
		return nil
	case ".data":
		a.inData = true
		return nil
	case ".global", ".globl", ".option", ".type", ".size", ".file", ".section":
		return nil // accepted and ignored

	case ".byte":
		return a.emitData(rest, 1)
	case ".half", ".short", ".2byte":
		return a.emitData(rest, 2)
	case ".word", ".4byte":
		return a.emitData(rest, 4)
	case ".dword", ".quad", ".8byte":
		return a.emitData(rest, 8)

	case ".space", ".zero":
		n, err := a.parseImm(strings.TrimSpace(rest))
		if err != nil {
			return err
		}
		if n < 0 {
			return a.errf(".space with negative size %d", n)
		}
		return a.pad(int(n))

	case ".align", ".p2align":
		n, err := a.parseImm(strings.TrimSpace(rest))
		if err != nil {
			return err
		}
		if n < 0 || n > 20 {
			return a.errf("bad alignment %d", n)
		}
		align := uint64(1) << uint(n)
		pc := a.pc()
		padBytes := int((align - pc%align) % align)
		return a.pad(padBytes)

	case ".ascii", ".asciz", ".string":
		s, err := strconv.Unquote(strings.TrimSpace(rest))
		if err != nil {
			return a.errf("bad string literal %s", rest)
		}
		b := []byte(s)
		if strings.ToLower(name) != ".ascii" {
			b = append(b, 0)
		}
		if !a.inData {
			return a.errf("string data in .text section")
		}
		a.data = append(a.data, b...)
		return nil
	}
	return a.errf("unknown directive %q", name)
}

func (a *assembler) pad(n int) error {
	if !a.inData {
		if n%4 != 0 {
			return a.errf("text padding %d not a multiple of 4", n)
		}
		for i := 0; i < n/4; i++ {
			a.emit(isa.NOP, "", relocNone, 0)
		}
		return nil
	}
	a.data = append(a.data, make([]byte, n)...)
	return nil
}

func (a *assembler) emitData(rest string, size int) error {
	if !a.inData {
		return a.errf("data directive in .text section")
	}
	for _, f := range splitOperands(rest) {
		v, err := a.parseImm(f)
		if err != nil {
			return err
		}
		for i := 0; i < size; i++ {
			a.data = append(a.data, byte(uint64(v)>>(8*i)))
		}
	}
	return nil
}
