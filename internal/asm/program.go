// Package asm implements a two-pass RV64IM assembler used to author the
// Icicle workload kernels. It supports the standard label/section syntax,
// the usual pseudo-instructions (li, la, mv, j, ret, beqz, …), and data
// directives (.word, .dword, .space, .align, .asciz).
package asm

import (
	"fmt"
	"sort"

	"icicle/internal/isa"
)

// Default section base addresses. Chosen low enough that every address fits
// in a positive 32-bit value so `la` can expand to lui+addi.
const (
	DefaultTextBase = 0x0001_0000
	DefaultDataBase = 0x0010_0000
)

// Segment is a contiguous byte image at a fixed address.
type Segment struct {
	Addr  uint64
	Bytes []byte
}

// Program is the output of assembly: loadable segments plus symbols.
type Program struct {
	Entry    uint64
	Segments []Segment
	Symbols  map[string]uint64
	// TextSize is the number of bytes of instruction memory.
	TextSize int
}

// Memory is the subset of the memory interface the loader needs.
type Memory interface {
	WriteBytes(addr uint64, b []byte)
}

// LoadInto copies every segment into m.
func (p *Program) LoadInto(m Memory) {
	for _, s := range p.Segments {
		m.WriteBytes(s.Addr, s.Bytes)
	}
}

// Symbol returns the address of a label, or an error if undefined.
func (p *Program) Symbol(name string) (uint64, error) {
	a, ok := p.Symbols[name]
	if !ok {
		return 0, fmt.Errorf("asm: undefined symbol %q", name)
	}
	return a, nil
}

// Disassemble decodes the text segment back into instructions — useful in
// tests and the trace analyzer.
func (p *Program) Disassemble() []isa.Inst {
	var out []isa.Inst
	for _, s := range p.Segments {
		if s.Addr != p.Entry {
			continue
		}
		for i := 0; i+isa.InstBytes <= len(s.Bytes); i += isa.InstBytes {
			w := uint32(s.Bytes[i]) | uint32(s.Bytes[i+1])<<8 |
				uint32(s.Bytes[i+2])<<16 | uint32(s.Bytes[i+3])<<24
			out = append(out, isa.Decode(w))
		}
	}
	return out
}

// SortedSymbols returns symbol names sorted by address (for diagnostics).
func (p *Program) SortedSymbols() []string {
	names := make([]string, 0, len(p.Symbols))
	for n := range p.Symbols {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		if p.Symbols[names[i]] != p.Symbols[names[j]] {
			return p.Symbols[names[i]] < p.Symbols[names[j]]
		}
		return names[i] < names[j]
	})
	return names
}
