package sim

import (
	"strings"
	"testing"

	"icicle/internal/isa"
	"icicle/internal/rocket"
	"icicle/internal/sample"
)

// TestSampledKeyDistinct pins the memo-key contract for detail modes:
// sampled and full-detail runs of the same (core, kernel, config) must
// never share a cache slot, distinct policies must not collide with each
// other, and full-detail jobs keep their historical key shape.
func TestSampledKeyDistinct(t *testing.T) {
	k := mustKernel(t, "vvadd")
	full := RocketJob(rocket.DefaultConfig(), k)
	p1 := sample.Policy{Window: 512, Period: 4096, Warmup: 512}
	p2 := sample.Policy{Window: 1024, Period: 4096, Warmup: 512}
	s1 := full.WithSampling(p1)
	s2 := full.WithSampling(p2)

	if full.Key() == s1.Key() {
		t.Fatalf("sampled job shares the full-detail key: %s", full.Key())
	}
	if s1.Key() == s2.Key() {
		t.Fatalf("distinct policies share a key: %s", s1.Key())
	}
	if strings.Contains(full.Key(), "sample") {
		t.Errorf("full-detail key changed shape: %s", full.Key())
	}
	if !strings.Contains(s1.Key(), "sample{"+p1.String()+"}") {
		t.Errorf("sampled key missing policy fingerprint: %s", s1.Key())
	}
	// The display-truncated key stays readable for sampled jobs too.
	if got := shortKey(s1.Key()); !strings.HasPrefix(got, "rocket|vvadd") {
		t.Errorf("shortKey(%q) = %q", s1.Key(), got)
	}
}

// TestSampledJobsThroughRunner runs a full and a sampled job of the same
// (config, kernel) through one runner and checks they simulate separately
// (no cache collision) while each still hits its own cache on repeats.
func TestSampledJobsThroughRunner(t *testing.T) {
	k := mustKernel(t, "towers")
	p := sample.Policy{Window: 512, Period: 4096, Warmup: 512}
	full := RocketJob(rocket.DefaultConfig(), k)
	sampled := full.WithSampling(p)

	r := New()
	fr := r.RunOne(full)
	sr := r.RunOne(sampled)
	if fr.Err != nil || sr.Err != nil {
		t.Fatalf("errs: full=%v sampled=%v", fr.Err, sr.Err)
	}
	if fr.Cached || sr.Cached {
		t.Fatal("full and sampled jobs collided in the memo cache")
	}
	if fr.Sampled != nil {
		t.Error("full-detail result carries a sampling report")
	}
	if sr.Sampled == nil {
		t.Fatal("sampled result missing its report")
	}
	if sr.Rocket.Cycles != sr.Sampled.EstCycles {
		t.Errorf("sampled Result.Cycles = %d, report EstCycles = %d",
			sr.Rocket.Cycles, sr.Sampled.EstCycles)
	}
	if sr.Rocket.Insts != fr.Rocket.Insts {
		t.Errorf("sampled Insts = %d (exact architectural count), full = %d",
			sr.Rocket.Insts, fr.Rocket.Insts)
	}
	if sr.Exit() != fr.Exit() {
		t.Errorf("sampled exit %#x != full exit %#x", sr.Exit(), fr.Exit())
	}

	again := r.RunOne(sampled)
	if !again.Cached {
		t.Error("repeated sampled job not served from cache")
	}
	if again.Sampled == nil || again.Sampled.EstCycles != sr.Sampled.EstCycles {
		t.Error("cached sampled result lost or changed its report")
	}
	st := r.Stats()
	if st.Misses != 2 || st.Hits != 1 {
		t.Errorf("stats = %d misses / %d hits, want 2/1", st.Misses, st.Hits)
	}

	// The phase counters moved: the sampled job fast-forwarded and ran
	// detailed windows.
	if r.m.sample.Windows.Value() == 0 || r.m.sample.DetailedCycles.Value() == 0 {
		t.Error("sampled-phase telemetry did not advance")
	}
	if r.m.sample.FFInsts.Value() == 0 {
		t.Error("fast-forward telemetry did not advance")
	}
}

// TestSampledKeyEngineIndependent pins that the memo key carries no
// functional-engine fingerprint: the superblock threaded-code engine is
// bit-identical to the plain Step loop (see internal/isa/superblock.go
// and the superblock smoke/fuzz differentials), so toggling it must not
// split the cache — a result simulated with the engine on is equally
// valid for a run with it off, and vice versa.
func TestSampledKeyEngineIndependent(t *testing.T) {
	k := mustKernel(t, "vvadd")
	p := sample.Policy{Window: 512, Period: 4096, Warmup: 512}
	jobs := []Job{
		RocketJob(rocket.DefaultConfig(), k),
		RocketJob(rocket.DefaultConfig(), k).WithSampling(p),
		RocketJob(rocket.DefaultConfig(), k).WithParallelSampling(p, 4),
	}
	defer func(old bool) { isa.DefaultSuperblocks = old }(isa.DefaultSuperblocks)
	for _, j := range jobs {
		if strings.Contains(strings.ToLower(j.Key()), "superblock") {
			t.Errorf("memo key leaks the functional engine: %s", j.Key())
		}
		isa.DefaultSuperblocks = true
		on := j.Key()
		isa.DefaultSuperblocks = false
		if off := j.Key(); on != off {
			t.Errorf("memo key varies with the functional engine:\n on: %s\noff: %s", on, off)
		}
	}
	// The plan-engine key family stays distinct from the classic sampled
	// one (window semantics differ), engine aside.
	if !strings.Contains(jobs[2].Key(), "sample2{") {
		t.Errorf("plan-engine key lost its family tag: %s", jobs[2].Key())
	}
}
