package sim

import (
	"reflect"
	"testing"

	"icicle/internal/boom"
	"icicle/internal/kernel"
	"icicle/internal/perf"
	"icicle/internal/rocket"
)

// TestParallelMatchesSerialRocketGrid runs the Fig. 7(a) Rocket grid once
// serially (direct perf calls, no runner) and once through a parallel
// runner, and requires byte-identical Breakdown rows and event totals.
func TestParallelMatchesSerialRocketGrid(t *testing.T) {
	cfg := rocket.DefaultConfig()
	micro := kernel.ByCategory(kernel.CatMicro)

	serialRows := make([]string, len(micro))
	serialTallies := make([]map[string]uint64, len(micro))
	for i, k := range micro {
		res, b, err := perf.RunRocket(cfg, k)
		if err != nil {
			t.Fatalf("serial %s: %v", k.Name, err)
		}
		serialRows[i] = b.Row(k.Name)
		serialTallies[i] = res.Tally
	}

	jobs := make([]Job, len(micro))
	for i, k := range micro {
		jobs[i] = RocketJob(cfg, k)
	}
	r := New(WithWorkers(8))
	for i, res := range r.Run(jobs) {
		k := micro[i]
		if res.Err != nil {
			t.Fatalf("parallel %s: %v", k.Name, res.Err)
		}
		if row := res.Breakdown.Row(k.Name); row != serialRows[i] {
			t.Errorf("%s breakdown diverges:\nserial:   %s\nparallel: %s",
				k.Name, serialRows[i], row)
		}
		if !reflect.DeepEqual(res.Rocket.Tally, serialTallies[i]) {
			t.Errorf("%s event totals diverge between serial and parallel runs", k.Name)
		}
	}
}

// TestParallelMatchesSerialBoomGrid is the same determinism check for the
// Fig. 7(k) LargeBOOM grid, including per-lane totals.
func TestParallelMatchesSerialBoomGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("BOOM grid is slow; skipped with -short")
	}
	cfg := boom.NewConfig(boom.Large)
	micro := kernel.ByCategory(kernel.CatMicro)

	serialRows := make([]string, len(micro))
	serialTallies := make([]map[string]uint64, len(micro))
	serialLanes := make([]map[string][]uint64, len(micro))
	for i, k := range micro {
		res, b, err := perf.RunBoom(cfg, k)
		if err != nil {
			t.Fatalf("serial %s: %v", k.Name, err)
		}
		serialRows[i] = b.Row(k.Name)
		serialTallies[i] = res.Tally
		serialLanes[i] = res.LaneTally
	}

	jobs := make([]Job, len(micro))
	for i, k := range micro {
		jobs[i] = BoomJob(cfg, k)
	}
	r := New(WithWorkers(8))
	for i, res := range r.Run(jobs) {
		k := micro[i]
		if res.Err != nil {
			t.Fatalf("parallel %s: %v", k.Name, res.Err)
		}
		if row := res.Breakdown.Row(k.Name); row != serialRows[i] {
			t.Errorf("%s breakdown diverges:\nserial:   %s\nparallel: %s",
				k.Name, serialRows[i], row)
		}
		if !reflect.DeepEqual(res.Boom.Tally, serialTallies[i]) {
			t.Errorf("%s event totals diverge between serial and parallel runs", k.Name)
		}
		if !reflect.DeepEqual(res.Boom.LaneTally, serialLanes[i]) {
			t.Errorf("%s per-lane totals diverge between serial and parallel runs", k.Name)
		}
	}
}
