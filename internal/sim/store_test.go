package sim

import (
	"reflect"
	"testing"

	"icicle/internal/rocket"
	"icicle/internal/sample"
	"icicle/internal/store"
)

// newStore opens a content-addressed store in a test temp dir.
func newStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// resetSharedWindows empties the process-wide window memo so a test can
// model a fresh process over a shared store directory.
func resetSharedWindows() {
	sharedWindows.mu.Lock()
	sharedWindows.m = nil
	sharedWindows.mu.Unlock()
}

// TestStoreL2CrossRunner models two processes sharing one store
// directory: the first runner simulates and persists, the second (fresh
// memo, fresh handle on the same dir) serves the identical result from
// the store without simulating.
func TestStoreL2CrossRunner(t *testing.T) {
	dir := t.TempDir()
	k := mustKernel(t, "vvadd")
	j := RocketJob(rocket.DefaultConfig(), k)

	r1 := New(WithResultStore(newStore(t, dir)))
	first := r1.RunOne(j)
	if first.Err != nil {
		t.Fatal(first.Err)
	}
	if first.Cached || first.FromStore {
		t.Fatalf("cold run flagged cached=%v fromStore=%v", first.Cached, first.FromStore)
	}
	st1 := r1.Stats()
	if st1.StoreHits != 0 || st1.StoreMisses != 1 {
		t.Errorf("first runner store stats = %d hits / %d misses, want 0/1", st1.StoreHits, st1.StoreMisses)
	}

	r2 := New(WithResultStore(newStore(t, dir)))
	second := r2.RunOne(j)
	if second.Err != nil {
		t.Fatal(second.Err)
	}
	if !second.Cached || !second.FromStore {
		t.Fatalf("warm run not served from store: cached=%v fromStore=%v", second.Cached, second.FromStore)
	}
	st2 := r2.Stats()
	if st2.StoreHits != 1 || st2.Misses != 0 {
		t.Errorf("second runner = %d store hits / %d simulations, want 1/0", st2.StoreHits, st2.Misses)
	}
	if !reflect.DeepEqual(first.Rocket, second.Rocket) {
		t.Errorf("stored result differs:\n sim: %+v\n store: %+v", first.Rocket, second.Rocket)
	}
	if !reflect.DeepEqual(first.Breakdown, second.Breakdown) {
		t.Error("stored breakdown differs from simulated one")
	}

	// A memo hit of the store-seeded entry keeps the FromStore mark.
	third := r2.RunOne(j)
	if !third.Cached || !third.FromStore {
		t.Errorf("memo hit of store-seeded entry: cached=%v fromStore=%v", third.Cached, third.FromStore)
	}
}

// TestStoreL2Sampled persists a sampled (plan-engine) job including its
// report, and checks a fresh runner reconstructs it bit-identically.
func TestStoreL2Sampled(t *testing.T) {
	dir := t.TempDir()
	k := mustKernel(t, "towers")
	p := sample.Policy{Window: 512, Period: 4096, Warmup: 512}
	j := RocketJob(rocket.DefaultConfig(), k).WithParallelSampling(p, 2)

	r1 := New(WithResultStore(newStore(t, dir)))
	first := r1.RunOne(j)
	if first.Err != nil {
		t.Fatal(first.Err)
	}
	if first.Sampled == nil {
		t.Fatal("sampled job missing its report")
	}

	r2 := New(WithResultStore(newStore(t, dir)))
	second := r2.RunOne(j)
	if !second.FromStore {
		t.Fatal("sampled result not served from store")
	}
	if second.Sampled == nil {
		t.Fatal("stored sampled result lost its report")
	}
	if !reflect.DeepEqual(first.Sampled, second.Sampled) {
		t.Errorf("stored report differs:\n sim: %+v\n store: %+v", first.Sampled, second.Sampled)
	}
	if second.Rocket.Cycles != first.Rocket.Cycles || second.Exit() != first.Exit() {
		t.Error("stored sampled totals differ")
	}
}

// TestWindowMemoPersists pins the PR 6 window memo's L2: window results
// written through one runner's disk-backed memo are served to a fresh
// process (empty in-memory memo, same store directory) without
// re-executing the windows.
func TestWindowMemoPersists(t *testing.T) {
	dir := t.TempDir()
	k := mustKernel(t, "vvadd")
	p := sample.Policy{Window: 512, Period: 4096, Warmup: 512}
	j := RocketJob(rocket.DefaultConfig(), k).WithParallelSampling(p, 2)

	resetSharedWindows()
	defer resetSharedWindows()

	r1 := New(WithResultStore(newStore(t, dir)))
	if res := r1.RunOne(j); res.Err != nil {
		t.Fatal(res.Err)
	}
	st1 := r1.Stats()
	if st1.WindowMisses == 0 {
		t.Fatalf("cold sampled run executed no windows: %+v", st1)
	}

	// Fresh "process" with the full store: the job blob short-circuits
	// before any window runs — the stronger property.
	resetSharedWindows()
	r2 := New(WithResultStore(newStore(t, dir)))
	if res := r2.RunOne(j); res.Err != nil {
		t.Fatal(res.Err)
	}
	if st2 := r2.Stats(); st2.Misses != 0 {
		t.Errorf("warm job simulated (%d misses) despite stored result", st2.Misses)
	}

	// Fresh "process" that lost its job blobs but kept the checkpointed
	// windows (the crash-recovery shape): the sweep resumes from
	// persisted windows, executing none of them again.
	resetSharedWindows()
	st := newStore(t, dir)
	r3 := New(WithResultStore(onlyWindows{st}))
	if res := r3.RunOne(j); res.Err != nil {
		t.Fatal(res.Err)
	}
	st3 := r3.Stats()
	if st3.WindowHits == 0 {
		t.Errorf("persisted windows not reused: %+v", st3)
	}
	if st3.WindowMisses != 0 {
		t.Errorf("windows re-executed despite persisted results: %d", st3.WindowMisses)
	}
}

// onlyWindows hides job blobs from a store, exposing only window blobs —
// the shape of a process that lost its job cache but kept checkpointed
// windows.
type onlyWindows struct{ st *store.Store }

func (o onlyWindows) Get(key string) ([]byte, bool) {
	if len(key) >= len(windowKeyPrefix) && key[:len(windowKeyPrefix)] == windowKeyPrefix {
		return o.st.Get(key)
	}
	return nil, false
}

func (o onlyWindows) Put(key string, payload []byte) error { return o.st.Put(key, payload) }

// TestStoreErrorsNotPersisted: a job that fails must recompute every
// time — errors are never written to the store.
func TestStoreErrorsNotPersisted(t *testing.T) {
	dir := t.TempDir()
	k := mustKernel(t, "vvadd")
	cfg := rocket.DefaultConfig()
	cfg.MaxCycles = 10 // guaranteed budget exhaustion
	j := RocketJob(cfg, k)

	r1 := New(WithResultStore(newStore(t, dir)))
	if res := r1.RunOne(j); res.Err == nil {
		t.Fatal("expected a cycle-budget error")
	}
	r2 := New(WithResultStore(newStore(t, dir)))
	res := r2.RunOne(j)
	if res.Err == nil {
		t.Fatal("expected the error again")
	}
	if res.FromStore {
		t.Error("errored result was served from the store")
	}
	if r2.Stats().StoreHits != 0 {
		t.Error("store claims a hit for an errored job")
	}
}

// TestEncodeDecodeRoundTrip pins the blob codec on a fully populated
// result.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	k := mustKernel(t, "median")
	j := RocketJob(rocket.DefaultConfig(), k)
	r := New()
	res := r.RunOne(j)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	payload, err := EncodeResult(res)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeResult(payload, j)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Rocket, back.Rocket) {
		t.Error("rocket result changed through the codec")
	}
	if !reflect.DeepEqual(res.Breakdown, back.Breakdown) {
		t.Error("breakdown changed through the codec")
	}
	if back.Job.Key() != j.Key() {
		t.Error("decoded result lost its job descriptor")
	}
}
