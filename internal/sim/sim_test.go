package sim

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"icicle/internal/boom"
	"icicle/internal/kernel"
	"icicle/internal/pmu"
	"icicle/internal/rocket"
)

func mustKernel(t *testing.T, name string) *kernel.Kernel {
	t.Helper()
	k, err := kernel.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestRunSubmissionOrder(t *testing.T) {
	micro := kernel.ByCategory(kernel.CatMicro)
	if len(micro) < 3 {
		t.Fatalf("need >= 3 micro kernels, have %d", len(micro))
	}
	jobs := make([]Job, len(micro))
	for i, k := range micro {
		jobs[i] = RocketJob(rocket.DefaultConfig(), k)
	}
	r := New(WithWorkers(8))
	results := r.Run(jobs)
	if len(results) != len(jobs) {
		t.Fatalf("got %d results for %d jobs", len(results), len(jobs))
	}
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("job %d (%s): %v", i, jobs[i].Kernel.Name, res.Err)
		}
		if res.Job.Kernel.Name != jobs[i].Kernel.Name {
			t.Errorf("result %d is for kernel %s, want %s",
				i, res.Job.Kernel.Name, jobs[i].Kernel.Name)
		}
		if res.Cycles() == 0 {
			t.Errorf("job %d (%s): zero cycles", i, jobs[i].Kernel.Name)
		}
	}
}

func TestCacheHitOnIdenticalJob(t *testing.T) {
	k := mustKernel(t, "vvadd")
	j := RocketJob(rocket.DefaultConfig(), k)
	r := New()
	first := r.RunOne(j)
	if first.Err != nil {
		t.Fatal(first.Err)
	}
	if first.Cached {
		t.Error("first run reported as cached")
	}
	second := r.RunOne(j)
	if !second.Cached {
		t.Error("identical job not served from cache")
	}
	if first.Cycles() != second.Cycles() || first.Exit() != second.Exit() {
		t.Errorf("cached result diverges: %d/%#x vs %d/%#x",
			first.Cycles(), first.Exit(), second.Cycles(), second.Exit())
	}
	s := r.Stats()
	if s.Jobs != 2 || s.Misses != 1 || s.Hits != 1 {
		t.Errorf("stats = %d jobs / %d misses / %d hits, want 2/1/1", s.Jobs, s.Misses, s.Hits)
	}
}

func TestCacheMissOnConfigChange(t *testing.T) {
	k := mustKernel(t, "vvadd")

	t.Run("rocket", func(t *testing.T) {
		base := rocket.DefaultConfig()
		small := rocket.DefaultConfig()
		small.Hierarchy.L1D.SizeBytes = 16 << 10
		if RocketJob(base, k).Key() == RocketJob(small, k).Key() {
			t.Error("L1D size change did not change the cache key")
		}
	})

	t.Run("boom", func(t *testing.T) {
		base := boom.NewConfig(boom.Large)
		variants := map[string]boom.Config{}

		v := base
		v.IntPorts++
		v.IssueWidth++
		variants["int-port lane count"] = v

		v = base
		v.MemPorts++
		v.IssueWidth++
		variants["mem-port lane count"] = v

		v = base
		v.DecodeWidth++
		variants["decode width"] = v

		v = base
		v.PMUArch = pmu.Distributed
		variants["PMU architecture"] = v

		v = base
		v.UseRAS = !v.UseRAS
		variants["RAS toggle"] = v

		baseKey := BoomJob(base, k).Key()
		seen := map[string]string{baseKey: "base"}
		for name, cfg := range variants {
			key := BoomJob(cfg, k).Key()
			if prev, dup := seen[key]; dup {
				t.Errorf("%s collides with %s", name, prev)
			}
			seen[key] = name
		}
	})

	t.Run("kernel", func(t *testing.T) {
		cfg := rocket.DefaultConfig()
		k2 := mustKernel(t, "towers")
		if RocketJob(cfg, k).Key() == RocketJob(cfg, k2).Key() {
			t.Error("different kernels share a cache key")
		}
	})
}

func TestCacheSingleflightConcurrent(t *testing.T) {
	k := mustKernel(t, "vvadd")
	j := RocketJob(rocket.DefaultConfig(), k)
	r := New()
	const n = 16
	results := make([]Result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = r.RunOne(j)
		}(i)
	}
	wg.Wait()
	s := r.Stats()
	if s.Misses != 1 {
		t.Errorf("%d concurrent identical jobs simulated %d times, want 1", n, s.Misses)
	}
	if s.Hits != n-1 {
		t.Errorf("hits = %d, want %d", s.Hits, n-1)
	}
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("goroutine %d: %v", i, res.Err)
		}
		if res.Cycles() != results[0].Cycles() {
			t.Errorf("goroutine %d saw %d cycles, goroutine 0 saw %d",
				i, res.Cycles(), results[0].Cycles())
		}
	}
}

func TestWithoutCache(t *testing.T) {
	k := mustKernel(t, "vvadd")
	j := RocketJob(rocket.DefaultConfig(), k)
	r := New(WithoutCache())
	r.RunOne(j)
	res := r.RunOne(j)
	if res.Cached {
		t.Error("WithoutCache runner served a cached result")
	}
	if s := r.Stats(); s.Misses != 2 {
		t.Errorf("misses = %d, want 2 (no memoization)", s.Misses)
	}
}

func TestMapOrderAndIndices(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i * 3
	}
	out, err := Map(8, items, func(i, v int) (string, error) {
		return fmt.Sprintf("%d:%d", i, v), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, got := range out {
		if want := fmt.Sprintf("%d:%d", i, i*3); got != want {
			t.Fatalf("out[%d] = %q, want %q", i, got, want)
		}
	}
}

func TestMapErrorDeterministic(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	items := make([]int, 50)
	ran := make([]bool, len(items))
	_, err := Map(8, items, func(i, _ int) (int, error) {
		ran[i] = true
		switch i {
		case 7:
			return 0, errLow
		case 31:
			return 0, errHigh
		}
		return i, nil
	})
	if !errors.Is(err, errLow) {
		t.Errorf("got error %v, want the lowest-index failure %v", err, errLow)
	}
	for i, r := range ran {
		if !r {
			t.Errorf("item %d never executed after a sibling failed", i)
		}
	}
}

func TestSetDefaultWorkers(t *testing.T) {
	defer SetDefaultWorkers(0)
	SetDefaultWorkers(3)
	if got := Default().Workers(); got != 3 {
		t.Errorf("Default().Workers() = %d, want 3", got)
	}
	SetDefaultWorkers(0)
	if got := Default().Workers(); got < 1 {
		t.Errorf("reset Workers() = %d, want >= 1", got)
	}
}

func TestStatsString(t *testing.T) {
	k := mustKernel(t, "vvadd")
	r := New()
	r.RunOne(RocketJob(rocket.DefaultConfig(), k))
	s := r.Stats().String()
	if s == "" {
		t.Fatal("empty stats string")
	}
	if want := "1 simulated"; !contains(s, want) {
		t.Errorf("stats %q missing %q", s, want)
	}
	if want := "rocket|vvadd"; !contains(s, want) {
		t.Errorf("stats %q missing slow-key %q", s, want)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
