package sim

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Runner executes simulation jobs on a worker pool with a content-keyed
// memoization cache. The zero value is not usable; construct with New.
//
// A Runner is safe for concurrent use. The cache has no eviction: the
// evaluation suite's working set is a few hundred (config, kernel) pairs,
// each a few maps of counters, which is negligible next to one simulation.
type Runner struct {
	workers  int
	memoize  bool
	corePool bool

	mu    sync.Mutex
	cache map[string]*cacheEntry

	jobs    atomic.Uint64
	hits    atomic.Uint64
	misses  atomic.Uint64
	simWall atomic.Int64 // summed nanoseconds spent inside simulations

	coreBuilds atomic.Uint64 // cores constructed for the pool
	coreReuses atomic.Uint64 // jobs served by a recycled core

	// Allocation/GC accounting, accumulated as runtime.MemStats deltas
	// around Run batches: process-wide, so approximate when other work
	// (or a second runner) overlaps a batch.
	allocBytes atomic.Uint64
	mallocs    atomic.Uint64
	numGC      atomic.Uint64

	slowMu  sync.Mutex
	slowKey string
	slow    time.Duration
}

// cacheEntry is a singleflight slot: the first arrival runs the job, later
// arrivals (including concurrent ones) block on done and share the result.
type cacheEntry struct {
	done chan struct{}
	res  Result
}

// Option configures a Runner.
type Option func(*Runner)

// WithWorkers sets the worker-pool size (default GOMAXPROCS).
func WithWorkers(n int) Option {
	return func(r *Runner) {
		if n > 0 {
			r.workers = n
		}
	}
}

// WithoutCache disables memoization: every job simulates, even repeats.
// Benchmarks use this to measure true simulation throughput.
func WithoutCache() Option {
	return func(r *Runner) { r.memoize = false }
}

// WithoutCorePool disables core reuse: every simulated job builds a fresh
// core instead of resetting a pooled one. Results are identical either
// way (the determinism tests assert it); the fresh path exists for
// benchmark ablations and as the oracle the pooled path is checked
// against.
func WithoutCorePool() Option {
	return func(r *Runner) { r.corePool = false }
}

// New builds a runner. Defaults: GOMAXPROCS workers, memoization on,
// core pooling on.
func New(opts ...Option) *Runner {
	r := &Runner{
		workers:  runtime.GOMAXPROCS(0),
		memoize:  true,
		corePool: true,
		cache:    map[string]*cacheEntry{},
	}
	for _, o := range opts {
		o(r)
	}
	return r
}

// Workers returns the pool size.
func (r *Runner) Workers() int { return r.workers }

// Run executes the batch and returns results in submission order: out[i]
// always corresponds to jobs[i], regardless of completion order. Errors are
// carried per-result (Result.Err), never lost to a worker.
func (r *Runner) Run(jobs []Job) []Result {
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	defer func() {
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		r.allocBytes.Add(after.TotalAlloc - before.TotalAlloc)
		r.mallocs.Add(after.Mallocs - before.Mallocs)
		r.numGC.Add(uint64(after.NumGC - before.NumGC))
	}()
	out := make([]Result, len(jobs))
	n := r.workers
	if n > len(jobs) {
		n = len(jobs)
	}
	if n <= 1 {
		for i, j := range jobs {
			out[i] = r.RunOne(j)
		}
		return out
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= len(jobs) {
					return
				}
				out[i] = r.RunOne(jobs[i])
			}
		}()
	}
	wg.Wait()
	return out
}

// RunOne executes a single job through the cache.
func (r *Runner) RunOne(j Job) Result {
	r.jobs.Add(1)
	if !r.memoize {
		return r.simulate(j)
	}
	key := j.Key()
	r.mu.Lock()
	if e, ok := r.cache[key]; ok {
		r.mu.Unlock()
		<-e.done // another goroutine may still be simulating this key
		r.hits.Add(1)
		res := e.res
		res.Job = j // report the caller's own descriptor back
		res.Cached = true
		return res
	}
	e := &cacheEntry{done: make(chan struct{})}
	r.cache[key] = e
	r.mu.Unlock()
	e.res = r.simulate(j)
	close(e.done)
	return e.res
}

func (r *Runner) simulate(j Job) Result {
	r.misses.Add(1)
	start := time.Now()
	res := r.executeJob(j)
	wall := time.Since(start)
	r.simWall.Add(int64(wall))
	r.slowMu.Lock()
	if wall > r.slow {
		r.slow, r.slowKey = wall, j.Key()
	}
	r.slowMu.Unlock()
	return res
}

// Stats is a snapshot of the runner's counters — the baseline future perf
// work measures against.
type Stats struct {
	Workers int
	Jobs    uint64        // jobs submitted
	Hits    uint64        // served from cache
	Misses  uint64        // actually simulated
	SimWall time.Duration // summed wall time inside simulations (across workers)
	Slowest time.Duration // longest single simulation
	SlowKey string        // its cache key

	CoreBuilds uint64 // cores constructed (pool misses)
	CoreReuses uint64 // jobs served by a recycled core

	// MemStats deltas summed over Run batches (process-wide, approximate).
	AllocBytes uint64 // heap bytes allocated
	Mallocs    uint64 // heap objects allocated
	NumGC      uint64 // GC cycles completed
}

// Stats returns the current counters.
func (r *Runner) Stats() Stats {
	r.slowMu.Lock()
	slow, slowKey := r.slow, r.slowKey
	r.slowMu.Unlock()
	return Stats{
		Workers:    r.workers,
		Jobs:       r.jobs.Load(),
		Hits:       r.hits.Load(),
		Misses:     r.misses.Load(),
		SimWall:    time.Duration(r.simWall.Load()),
		Slowest:    slow,
		SlowKey:    slowKey,
		CoreBuilds: r.coreBuilds.Load(),
		CoreReuses: r.coreReuses.Load(),
		AllocBytes: r.allocBytes.Load(),
		Mallocs:    r.mallocs.Load(),
		NumGC:      r.numGC.Load(),
	}
}

func (s Stats) String() string {
	out := fmt.Sprintf("sim runner: %d workers, %d jobs (%d simulated, %d cache hits), %s total sim wall",
		s.Workers, s.Jobs, s.Misses, s.Hits, s.SimWall.Round(time.Millisecond))
	if s.CoreBuilds > 0 || s.CoreReuses > 0 {
		out += fmt.Sprintf("; %d cores built, %d reused", s.CoreBuilds, s.CoreReuses)
	}
	if s.Misses > 0 && (s.AllocBytes > 0 || s.Mallocs > 0) {
		out += fmt.Sprintf("; %s allocated (%s/job, %d objects/job), %d GC cycles",
			byteCount(s.AllocBytes), byteCount(s.AllocBytes/s.Misses), s.Mallocs/s.Misses, s.NumGC)
	}
	if s.SlowKey != "" {
		out += fmt.Sprintf("; slowest %s (%s)", s.Slowest.Round(time.Millisecond), shortKey(s.SlowKey))
	}
	return out
}

// byteCount renders a byte total in a human scale (binary units).
func byteCount(b uint64) string {
	const unit = 1024
	if b < unit {
		return fmt.Sprintf("%d B", b)
	}
	div, exp := uint64(unit), 0
	for n := b / unit; n >= unit; n /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f %ciB", float64(b)/float64(div), "KMGTPE"[exp])
}

// shortKey trims a cache key to its core|kernel prefix for display.
func shortKey(key string) string {
	for i := 0; i < len(key); i++ {
		if key[i] == '{' {
			for i > 0 && key[i-1] == '|' {
				i--
			}
			return key[:i]
		}
	}
	return key
}

// The process-wide default runner, shared by the experiments package so
// overlapping sweeps (the Fig. 7 grids, Table V, the ablations all re-run
// the same (core, kernel) pairs) hit one cache.
var (
	defaultMu     sync.Mutex
	defaultRunner *Runner
)

// Default returns the shared runner, creating it on first use.
func Default() *Runner {
	defaultMu.Lock()
	defer defaultMu.Unlock()
	if defaultRunner == nil {
		defaultRunner = New()
	}
	return defaultRunner
}

// SetDefaultWorkers replaces the shared runner with one using n workers
// (the CLI's -j flag). n <= 0 resets to GOMAXPROCS. The old cache is
// dropped.
func SetDefaultWorkers(n int) {
	defaultMu.Lock()
	defer defaultMu.Unlock()
	if n <= 0 {
		defaultRunner = New()
		return
	}
	defaultRunner = New(WithWorkers(n))
}
