package sim

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"icicle/internal/obs"
	"icicle/internal/sample"
)

// Runner executes simulation jobs on a worker pool with a content-keyed
// memoization cache. The zero value is not usable; construct with New.
//
// A Runner is safe for concurrent use. The cache has no eviction: the
// evaluation suite's working set is a few hundred (config, kernel) pairs,
// each a few maps of counters, which is negligible next to one simulation.
type Runner struct {
	workers  int
	memoize  bool
	corePool bool
	store    ResultStore // optional persistent L2 (nil = memory only)

	// m holds the runner's counters. New() uses standalone (unregistered)
	// metrics so each runner's counts stay isolated; WithMetricsRegistry
	// publishes them under icicle_sim_* names instead, where a scraper or
	// the -listen server can see them live.
	m       *runnerMetrics
	tracer  *obs.Tracer
	jobDone func(Result, time.Duration)

	mu    sync.Mutex
	cache map[string]*cacheEntry

	// Progress bookkeeping: done counts completed (not just submitted)
	// jobs, startNano is the first submission's wall clock (CAS once).
	done      atomic.Uint64
	startNano atomic.Int64
	asyncID   atomic.Uint64 // queue-span ids, unique across batches

	slow slowTracker

	// Allocation/GC accounting, accumulated as runtime.MemStats deltas
	// around Run batches: process-wide, so approximate when other work
	// (or a second runner) overlaps a batch.
	allocBytes atomic.Uint64
	mallocs    atomic.Uint64
	numGC      atomic.Uint64
}

// runnerMetrics is the full counter set, either standalone or backed by
// an obs.Registry. The core telemetry handles are installed into pooled
// cores on acquisition, so cycle/instruction throughput is attributed to
// whichever runner is driving the core.
type runnerMetrics struct {
	jobs       *obs.Counter   // jobs submitted
	hits       *obs.Counter   // served from cache
	misses     *obs.Counter   // actually simulated
	latency    *obs.Histogram // per-simulation wall time, ns observed / seconds exposed
	coreBuilds *obs.Counter   // cores constructed (pool misses)
	coreReuses *obs.Counter   // jobs served by a recycled core

	windowHits   *obs.Counter // sampled windows served from the window memo
	windowMisses *obs.Counter // sampled windows actually executed

	storeHits   *obs.Counter // jobs served from the persistent result store
	storeMisses *obs.Counter // memo misses the store couldn't serve either

	rocket *obs.CoreTelemetry
	boom   *obs.CoreTelemetry

	// sample publishes the sampled-engine phase counters; passed into
	// the controller on every sampled job.
	sample *sample.Telemetry
}

func standaloneMetrics() *runnerMetrics {
	return &runnerMetrics{
		jobs:         obs.NewCounter(),
		hits:         obs.NewCounter(),
		misses:       obs.NewCounter(),
		latency:      obs.NewHistogram(1e-9),
		coreBuilds:   obs.NewCounter(),
		coreReuses:   obs.NewCounter(),
		windowHits:   obs.NewCounter(),
		windowMisses: obs.NewCounter(),
		storeHits:    obs.NewCounter(),
		storeMisses:  obs.NewCounter(),
		rocket:       obs.NewCoreTelemetry(),
		boom:         obs.NewCoreTelemetry(),
		sample:       sample.NewTelemetry(),
	}
}

func registryMetrics(reg *obs.Registry) *runnerMetrics {
	return &runnerMetrics{
		jobs: reg.Counter("icicle_sim_jobs_total",
			"simulation jobs submitted to the runner"),
		hits: reg.Counter("icicle_sim_cache_hits_total",
			"jobs served from the memoization cache"),
		misses: reg.Counter("icicle_sim_cache_misses_total",
			"jobs that actually simulated"),
		latency: reg.Histogram("icicle_sim_job_latency_seconds",
			"wall time per simulated job", 1e-9),
		coreBuilds: reg.Counter("icicle_sim_core_builds_total",
			"cores constructed for the pool"),
		coreReuses: reg.Counter("icicle_sim_core_reuses_total",
			"jobs served by a recycled core"),
		windowHits: reg.Counter("icicle_sim_window_hits_total",
			"sampled windows served from the window memo"),
		windowMisses: reg.Counter("icicle_sim_window_misses_total",
			"sampled windows actually executed"),
		storeHits: reg.Counter("icicle_sim_store_hits_total",
			"jobs served from the persistent result store"),
		storeMisses: reg.Counter("icicle_sim_store_misses_total",
			"memo misses the persistent store couldn't serve either"),
		rocket: obs.CoreTelemetryIn(reg, "rocket"),
		boom:   obs.CoreTelemetryIn(reg, "boom"),
		sample: sample.TelemetryIn(reg),
	}
}

// cacheEntry is a singleflight slot: the first arrival runs the job, later
// arrivals (including concurrent ones) block on done and share the result.
type cacheEntry struct {
	done chan struct{}
	res  Result
}

// Option configures a Runner.
type Option func(*Runner)

// WithWorkers sets the worker-pool size (default GOMAXPROCS).
func WithWorkers(n int) Option {
	return func(r *Runner) {
		if n > 0 {
			r.workers = n
		}
	}
}

// WithoutCache disables memoization: every job simulates, even repeats.
// Benchmarks use this to measure true simulation throughput.
func WithoutCache() Option {
	return func(r *Runner) { r.memoize = false }
}

// WithoutCorePool disables core reuse: every simulated job builds a fresh
// core instead of resetting a pooled one. Results are identical either
// way (the determinism tests assert it); the fresh path exists for
// benchmark ablations and as the oracle the pooled path is checked
// against.
func WithoutCorePool() Option {
	return func(r *Runner) { r.corePool = false }
}

// WithMetricsRegistry publishes the runner's counters in reg under
// icicle_sim_* names (get-or-create, so two runners over one registry
// share counters). Without this option the runner keeps standalone,
// unregistered metrics.
func WithMetricsRegistry(reg *obs.Registry) Option {
	return func(r *Runner) { r.m = registryMetrics(reg) }
}

// WithTracer records pipeline spans (queued → job → acquire-core →
// simulate → tally) into tr for Perfetto export. A nil tracer disables
// tracing (the default).
func WithTracer(tr *obs.Tracer) Option {
	return func(r *Runner) { r.tracer = tr }
}

// WithJobCallback invokes fn after every completed job with the result
// and its wall time (cache hits included, with near-zero wall). The CLIs'
// -v per-job progress lines hang off this. fn must be safe for concurrent
// use; it runs on the worker goroutine.
func WithJobCallback(fn func(Result, time.Duration)) Option {
	return func(r *Runner) { r.jobDone = fn }
}

// New builds a runner. Defaults: GOMAXPROCS workers, memoization on,
// core pooling on, standalone metrics, no tracing.
func New(opts ...Option) *Runner {
	r := &Runner{
		workers:  runtime.GOMAXPROCS(0),
		memoize:  true,
		corePool: true,
		m:        standaloneMetrics(),
		cache:    map[string]*cacheEntry{},
	}
	for _, o := range opts {
		o(r)
	}
	return r
}

// Workers returns the pool size.
func (r *Runner) Workers() int { return r.workers }

// Run executes the batch and returns results in submission order: out[i]
// always corresponds to jobs[i], regardless of completion order. Errors are
// carried per-result (Result.Err), never lost to a worker.
func (r *Runner) Run(jobs []Job) []Result {
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	defer func() {
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		r.allocBytes.Add(after.TotalAlloc - before.TotalAlloc)
		r.mallocs.Add(after.Mallocs - before.Mallocs)
		r.numGC.Add(uint64(after.NumGC - before.NumGC))
	}()
	queuedAt := time.Now()
	out := make([]Result, len(jobs))
	n := r.workers
	if n > len(jobs) {
		n = len(jobs)
	}
	if n <= 1 {
		r.tracer.NameThread(0, "serial")
		for i, j := range jobs {
			out[i] = r.runOne(j, 0, queuedAt)
		}
		return out
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		tid := w + 1 // tid 0 is the serial/RunOne track
		if r.tracer != nil {
			r.tracer.NameThread(tid, fmt.Sprintf("worker-%d", tid))
		}
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= len(jobs) {
					return
				}
				out[i] = r.runOne(jobs[i], tid, queuedAt)
			}
		}()
	}
	wg.Wait()
	return out
}

// RunOne executes a single job through the cache.
func (r *Runner) RunOne(j Job) Result {
	return r.runOne(j, 0, time.Now())
}

// runOne is the per-job pipeline: record submission, close the queue
// span, run the job span around the cache lookup (and the simulation it
// may trigger), then fire the completion callback.
func (r *Runner) runOne(j Job, tid int, queuedAt time.Time) Result {
	if r.startNano.Load() == 0 {
		r.startNano.CompareAndSwap(0, time.Now().UnixNano())
	}
	r.m.jobs.Inc()
	tr := r.tracer
	var sp obs.Span
	if tr != nil {
		key := shortKey(j.Key())
		tr.Async("queued", "queue", r.asyncID.Add(1), queuedAt, time.Now(),
			obs.Arg{Key: "key", Val: key})
		sp = tr.Begin("job "+key, "job", tid)
	}
	start := time.Now()
	res := r.lookupOrSimulate(j, tid)
	wall := time.Since(start)
	if tr != nil {
		sp.End(obs.Arg{Key: "cached", Val: res.Cached})
	}
	r.done.Add(1)
	if r.jobDone != nil {
		r.jobDone(res, wall)
	}
	return res
}

func (r *Runner) lookupOrSimulate(j Job, tid int) Result {
	if !r.memoize {
		return r.simulate(j, tid)
	}
	key := j.Key()
	r.mu.Lock()
	if e, ok := r.cache[key]; ok {
		r.mu.Unlock()
		<-e.done // another goroutine may still be simulating this key
		r.m.hits.Inc()
		res := e.res
		res.Job = j // report the caller's own descriptor back
		res.Cached = true
		return res
	}
	e := &cacheEntry{done: make(chan struct{})}
	r.cache[key] = e
	r.mu.Unlock()
	// Memo miss: consult the persistent store (L2) before simulating, and
	// write fresh results back so the next process gets them for free.
	if r.store != nil {
		if res, ok := r.loadStored(j); ok {
			r.m.storeHits.Inc()
			e.res = res
			close(e.done)
			return res
		}
		r.m.storeMisses.Inc()
	}
	e.res = r.simulate(j, tid)
	if r.store != nil {
		r.storeResult(j, e.res)
	}
	close(e.done)
	return e.res
}

func (r *Runner) simulate(j Job, tid int) Result {
	r.m.misses.Inc()
	start := time.Now()
	res := r.executeJob(j, tid)
	wall := time.Since(start)
	r.m.latency.Observe(uint64(wall))
	r.slow.observe(j.Key(), wall)
	return res
}

// Progress reports live sweep status for the -listen /progress endpoint
// and the -progress ticker.
func (r *Runner) Progress() obs.Progress {
	done := r.done.Load()
	p := obs.Progress{
		Done:      done,
		Total:     r.m.jobs.Value(),
		CacheHits: r.m.hits.Value(),
	}
	if done > 0 {
		p.HitRate = float64(p.CacheHits) / float64(done)
	}
	if s := r.startNano.Load(); s != 0 {
		p.ElapsedSec = time.Since(time.Unix(0, s)).Seconds()
		if p.ElapsedSec > 0 {
			p.SimsPerSec = float64(done) / p.ElapsedSec
			if p.Total > done && p.SimsPerSec > 0 {
				p.ETASec = float64(p.Total-done) / p.SimsPerSec
			}
		}
	}
	return p
}

// SlowJob is one entry on the slowest-simulations leaderboard.
type SlowJob struct {
	Key  string
	Wall time.Duration
}

// slowTopK is the leaderboard size.
const slowTopK = 5

// slowTracker keeps the top-K slowest simulations in a fixed-size
// min-heap: heap[0] is the K-th slowest, so each new observation is one
// comparison against it and at most log K swaps — no allocation once the
// heap is full.
type slowTracker struct {
	mu   sync.Mutex
	heap []SlowJob // min-heap on Wall
}

func (s *slowTracker) observe(key string, wall time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.heap) < slowTopK {
		s.heap = append(s.heap, SlowJob{Key: key, Wall: wall})
		// sift up
		for i := len(s.heap) - 1; i > 0; {
			p := (i - 1) / 2
			if s.heap[p].Wall <= s.heap[i].Wall {
				break
			}
			s.heap[p], s.heap[i] = s.heap[i], s.heap[p]
			i = p
		}
		return
	}
	if wall <= s.heap[0].Wall {
		return
	}
	s.heap[0] = SlowJob{Key: key, Wall: wall}
	// sift down
	for i := 0; ; {
		l, rt, m := 2*i+1, 2*i+2, i
		if l < len(s.heap) && s.heap[l].Wall < s.heap[m].Wall {
			m = l
		}
		if rt < len(s.heap) && s.heap[rt].Wall < s.heap[m].Wall {
			m = rt
		}
		if m == i {
			return
		}
		s.heap[i], s.heap[m] = s.heap[m], s.heap[i]
		i = m
	}
}

// top returns the leaderboard, slowest first.
func (s *slowTracker) top() []SlowJob {
	s.mu.Lock()
	out := make([]SlowJob, len(s.heap))
	copy(out, s.heap)
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Wall > out[j].Wall })
	return out
}

// Stats is a snapshot of the runner's counters — the baseline future perf
// work measures against.
type Stats struct {
	Workers int
	Jobs    uint64        // jobs submitted
	Hits    uint64        // served from cache
	Misses  uint64        // actually simulated
	SimWall time.Duration // summed wall time inside simulations (across workers)
	Slowest time.Duration // longest single simulation
	SlowKey string        // its cache key

	CoreBuilds uint64 // cores constructed (pool misses)
	CoreReuses uint64 // jobs served by a recycled core

	WindowHits   uint64 // sampled windows served from the window memo
	WindowMisses uint64 // sampled windows actually executed

	StoreHits   uint64 // jobs served from the persistent result store
	StoreMisses uint64 // memo misses the store couldn't serve either

	// MemStats deltas summed over Run batches (process-wide, approximate).
	AllocBytes uint64 // heap bytes allocated
	Mallocs    uint64 // heap objects allocated
	NumGC      uint64 // GC cycles completed
}

// Snapshot is Stats plus the full slowest-jobs leaderboard.
type Snapshot struct {
	Stats
	SlowJobs []SlowJob // top-5 slowest simulations, slowest first
}

// Stats returns the current counters.
func (r *Runner) Stats() Stats { return r.Snapshot().Stats }

// Snapshot returns the current counters plus the slowest-jobs leaderboard.
func (r *Runner) Snapshot() Snapshot {
	top := r.slow.top()
	st := Stats{
		Workers:      r.workers,
		Jobs:         r.m.jobs.Value(),
		Hits:         r.m.hits.Value(),
		Misses:       r.m.misses.Value(),
		SimWall:      time.Duration(r.m.latency.Sum()),
		CoreBuilds:   r.m.coreBuilds.Value(),
		CoreReuses:   r.m.coreReuses.Value(),
		WindowHits:   r.m.windowHits.Value(),
		WindowMisses: r.m.windowMisses.Value(),
		StoreHits:    r.m.storeHits.Value(),
		StoreMisses:  r.m.storeMisses.Value(),
		AllocBytes:   r.allocBytes.Load(),
		Mallocs:      r.mallocs.Load(),
		NumGC:        r.numGC.Load(),
	}
	if len(top) > 0 {
		st.Slowest = top[0].Wall
		st.SlowKey = top[0].Key
	}
	return Snapshot{Stats: st, SlowJobs: top}
}

func (s Stats) String() string {
	out := fmt.Sprintf("sim runner: %d workers, %d jobs (%d simulated, %d cache hits), %s total sim wall",
		s.Workers, s.Jobs, s.Misses, s.Hits, s.SimWall.Round(time.Millisecond))
	if s.CoreBuilds > 0 || s.CoreReuses > 0 {
		out += fmt.Sprintf("; %d cores built, %d reused", s.CoreBuilds, s.CoreReuses)
	}
	if s.WindowHits > 0 || s.WindowMisses > 0 {
		out += fmt.Sprintf("; %d windows run, %d memo hits", s.WindowMisses, s.WindowHits)
	}
	if s.StoreHits > 0 || s.StoreMisses > 0 {
		out += fmt.Sprintf("; %d store hits, %d store misses", s.StoreHits, s.StoreMisses)
	}
	if s.Misses > 0 && (s.AllocBytes > 0 || s.Mallocs > 0) {
		out += fmt.Sprintf("; %s allocated (%s/job, %d objects/job), %d GC cycles",
			byteCount(s.AllocBytes), byteCount(s.AllocBytes/s.Misses), s.Mallocs/s.Misses, s.NumGC)
	}
	if s.SlowKey != "" {
		out += fmt.Sprintf("; slowest %s (%s)", s.Slowest.Round(time.Millisecond), shortKey(s.SlowKey))
	}
	return out
}

// String renders the stats line plus the slowest-jobs leaderboard when
// more than one simulation has been timed.
func (s Snapshot) String() string {
	out := s.Stats.String()
	if len(s.SlowJobs) > 1 {
		out += "\nslowest jobs:"
		for i, sj := range s.SlowJobs {
			out += fmt.Sprintf("\n  %d. %-8s %s",
				i+1, sj.Wall.Round(time.Millisecond), shortKey(sj.Key))
		}
	}
	return out
}

// byteCount renders a byte total in a human scale (binary units).
func byteCount(b uint64) string {
	const unit = 1024
	if b < unit {
		return fmt.Sprintf("%d B", b)
	}
	div, exp := uint64(unit), 0
	for n := b / unit; n >= unit; n /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f %ciB", float64(b)/float64(div), "KMGTPE"[exp])
}

// shortKey trims a cache key to its core|kernel prefix for display.
func shortKey(key string) string {
	for i := 0; i < len(key); i++ {
		if key[i] == '{' {
			for i > 0 && key[i-1] == '|' {
				i--
			}
			return key[:i]
		}
	}
	return key
}

// The process-wide default runner, shared by the experiments package so
// overlapping sweeps (the Fig. 7 grids, Table V, the ablations all re-run
// the same (core, kernel) pairs) hit one cache. It always publishes its
// counters in obs.Default() and picks up the process tracer if tracing
// was enabled before construction.
var (
	defaultMu     sync.Mutex
	defaultRunner *Runner
)

func newDefault(opts ...Option) *Runner {
	base := []Option{WithMetricsRegistry(obs.Default()), WithTracer(obs.Tracing())}
	return New(append(base, opts...)...)
}

// Default returns the shared runner, creating it on first use.
func Default() *Runner {
	defaultMu.Lock()
	defer defaultMu.Unlock()
	if defaultRunner == nil {
		defaultRunner = newDefault()
	}
	return defaultRunner
}

// SetDefaultWorkers replaces the shared runner with one using n workers
// (the CLI's -j flag). n <= 0 resets to GOMAXPROCS. The old cache is
// dropped.
func SetDefaultWorkers(n int) {
	if n <= 0 {
		ConfigureDefault()
		return
	}
	ConfigureDefault(WithWorkers(n))
}

// ConfigureDefault replaces the shared runner with one built from the
// defaults (obs.Default() metrics, the process tracer if enabled) plus
// opts. The CLIs call this after flag parsing, once tracing and callbacks
// are decided. The old cache is dropped.
func ConfigureDefault(opts ...Option) {
	defaultMu.Lock()
	defer defaultMu.Unlock()
	defaultRunner = newDefault(opts...)
}
