package sim

import (
	"fmt"
	"sync"

	"icicle/internal/boom"
	"icicle/internal/perf"
	"icicle/internal/rocket"
)

// Core pools: Reset-able cores recycled across jobs instead of rebuilt
// per job. Building a core allocates its caches, predictor tables,
// sparse-memory frames, and uop arena; Reset restores all of that in
// place (the program image is zeroed and copied back), so a pooled job's
// steady-state cost is the cycle loop alone. One sync.Pool per config
// fingerprint — a pooled core is only ever handed to a job with the
// exact same configuration, and idle cores stay reclaimable by the GC.
//
// The pools are process-wide (like the kernel program cache): every
// Runner shares them, so replacing the default runner keeps warm cores.
type corePools struct {
	mu    sync.Mutex
	pools map[string]*sync.Pool
}

func (cp *corePools) get(key string) *sync.Pool {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	if cp.pools == nil {
		cp.pools = map[string]*sync.Pool{}
	}
	p := cp.pools[key]
	if p == nil {
		p = &sync.Pool{}
		cp.pools[key] = p
	}
	return p
}

var (
	rocketCores corePools
	boomCores   corePools
)

// executeJob runs one job. With pooling enabled (the default) it drives a
// recycled core through perf.RunRocketOn/RunBoomOn; Reset guarantees the
// result is byte-identical to a fresh-core run (the determinism and
// golden-reset tests enforce this), so pooling is invisible outside the
// allocation profile. The core goes back to the pool even after an error:
// Reset reinitializes every field.
func (r *Runner) executeJob(j Job) Result {
	if !r.corePool {
		return execute(j)
	}
	res := Result{Job: j}
	switch j.Core {
	case Boom:
		pool := boomCores.get(fmt.Sprintf("%+v", j.Boom))
		c, _ := pool.Get().(*boom.Core)
		if c == nil {
			prog, err := j.Kernel.Program()
			if err != nil {
				res.Err = err
				return res
			}
			if c, err = boom.New(j.Boom, prog); err != nil {
				res.Err = err
				return res
			}
			r.coreBuilds.Add(1)
		} else {
			r.coreReuses.Add(1)
		}
		res.Boom, res.Breakdown, res.Err = perf.RunBoomOn(c, j.Kernel)
		pool.Put(c)
	default:
		pool := rocketCores.get(fmt.Sprintf("%+v", j.Rocket))
		c, _ := pool.Get().(*rocket.Core)
		if c == nil {
			prog, err := j.Kernel.Program()
			if err != nil {
				res.Err = err
				return res
			}
			c = rocket.New(j.Rocket, prog)
			r.coreBuilds.Add(1)
		} else {
			r.coreReuses.Add(1)
		}
		res.Rocket, res.Breakdown, res.Err = perf.RunRocketOn(c, j.Kernel)
		pool.Put(c)
	}
	return res
}
