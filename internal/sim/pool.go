package sim

import (
	"fmt"
	"sync"

	"icicle/internal/boom"
	"icicle/internal/obs"
	"icicle/internal/perf"
	"icicle/internal/rocket"
	"icicle/internal/sample"
)

// Core pools: Reset-able cores recycled across jobs instead of rebuilt
// per job. Building a core allocates its caches, predictor tables,
// sparse-memory frames, and uop arena; Reset restores all of that in
// place (the program image is zeroed and copied back), so a pooled job's
// steady-state cost is the cycle loop alone. One sync.Pool per config
// fingerprint — a pooled core is only ever handed to a job with the
// exact same configuration, and idle cores stay reclaimable by the GC.
//
// The pools are process-wide (like the kernel program cache): every
// Runner shares them, so replacing the default runner keeps warm cores.
type corePools struct {
	mu    sync.Mutex
	pools map[string]*sync.Pool
}

func (cp *corePools) get(key string) *sync.Pool {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	if cp.pools == nil {
		cp.pools = map[string]*sync.Pool{}
	}
	p := cp.pools[key]
	if p == nil {
		p = &sync.Pool{}
		cp.pools[key] = p
	}
	return p
}

var (
	rocketCores corePools
	boomCores   corePools
)

// executeJob runs one job on the tid's trace track. With pooling enabled
// (the default) it drives a recycled core through the split
// perf.Simulate*/Tally* halves so the acquire-core, simulate, and tally
// stages each get their own span; Reset guarantees the result is
// byte-identical to a fresh-core run (the determinism and golden-reset
// tests enforce this), so pooling is invisible outside the allocation
// profile. The core goes back to the pool even after an error: Reset
// reinitializes every field. The runner's throughput telemetry handle is
// (re-)installed on every acquisition — it survives Reset, so cycle and
// instruction counts are attributed to the runner currently driving the
// core.
func (r *Runner) executeJob(j Job, tid int) Result {
	tr := r.tracer
	if !r.corePool {
		sp := tr.Begin("simulate", "sim", tid)
		res := execute(j)
		sp.End()
		return res
	}
	res := Result{Job: j}
	switch j.Core {
	case Boom:
		acq := tr.Begin("acquire-core", "pool", tid)
		pool := boomCores.get(fmt.Sprintf("%+v", j.Boom))
		c, _ := pool.Get().(*boom.Core)
		fresh := c == nil
		if fresh {
			prog, err := j.Kernel.Program()
			if err != nil {
				res.Err = err
				return res
			}
			if c, err = boom.New(j.Boom, prog); err != nil {
				res.Err = err
				return res
			}
			r.m.coreBuilds.Inc()
		} else {
			r.m.coreReuses.Inc()
		}
		if tr != nil {
			acq.End(obs.Arg{Key: "fresh", Val: fresh})
		}
		c.SetTelemetry(r.m.boom)
		if j.Sample.Enabled() && j.SamplePar > 0 {
			// Two-phase engine: the window workers each need their own
			// core, so pull SamplePar-1 more from the same pool.
			cs := []*boom.Core{c}
			for len(cs) < j.SamplePar {
				w, _ := pool.Get().(*boom.Core)
				if w == nil {
					prog, err := j.Kernel.Program()
					if err == nil {
						w, err = boom.New(j.Boom, prog)
					}
					if err != nil {
						res.Err = err
						break
					}
					r.m.coreBuilds.Inc()
				} else {
					r.m.coreReuses.Inc()
				}
				w.SetTelemetry(r.m.boom)
				cs = append(cs, w)
			}
			if res.Err == nil {
				sp := tr.Begin("simulate-sampled-par", "sim", tid)
				res.Boom, res.Sampled, res.Breakdown, res.Err = perf.SampleBoomParOn(
					cs, j.Kernel, j.Sample,
					sample.Options{Telemetry: r.m.sample, Tracer: tr, Tid: tid},
					r.windowMemo())
				sp.End()
			}
			for _, w := range cs[1:] {
				pool.Put(w)
			}
		} else if j.Sample.Enabled() {
			sp := tr.Begin("simulate-sampled", "sim", tid)
			res.Boom, res.Sampled, res.Breakdown, res.Err = perf.SampleBoomOn(
				c, j.Kernel, j.Sample,
				sample.Options{Telemetry: r.m.sample, Tracer: tr, Tid: tid})
			sp.End()
		} else {
			sp := tr.Begin("simulate", "sim", tid)
			err := perf.SimulateBoomOn(c, j.Kernel)
			sp.End()
			if err != nil {
				res.Err = err
			} else {
				tp := tr.Begin("tally", "sim", tid)
				res.Boom, res.Breakdown, res.Err = perf.TallyBoom(c)
				tp.End()
			}
		}
		pool.Put(c)
	default:
		acq := tr.Begin("acquire-core", "pool", tid)
		pool := rocketCores.get(fmt.Sprintf("%+v", j.Rocket))
		c, _ := pool.Get().(*rocket.Core)
		fresh := c == nil
		if fresh {
			prog, err := j.Kernel.Program()
			if err != nil {
				res.Err = err
				return res
			}
			c = rocket.New(j.Rocket, prog)
			r.m.coreBuilds.Inc()
		} else {
			r.m.coreReuses.Inc()
		}
		if tr != nil {
			acq.End(obs.Arg{Key: "fresh", Val: fresh})
		}
		c.SetTelemetry(r.m.rocket)
		if j.Sample.Enabled() && j.SamplePar > 0 {
			cs := []*rocket.Core{c}
			for len(cs) < j.SamplePar {
				w, _ := pool.Get().(*rocket.Core)
				if w == nil {
					prog, err := j.Kernel.Program()
					if err != nil {
						res.Err = err
						break
					}
					w = rocket.New(j.Rocket, prog)
					r.m.coreBuilds.Inc()
				} else {
					r.m.coreReuses.Inc()
				}
				w.SetTelemetry(r.m.rocket)
				cs = append(cs, w)
			}
			if res.Err == nil {
				sp := tr.Begin("simulate-sampled-par", "sim", tid)
				res.Rocket, res.Sampled, res.Breakdown, res.Err = perf.SampleRocketParOn(
					cs, j.Kernel, j.Sample,
					sample.Options{Telemetry: r.m.sample, Tracer: tr, Tid: tid},
					r.windowMemo())
				sp.End()
			}
			for _, w := range cs[1:] {
				pool.Put(w)
			}
		} else if j.Sample.Enabled() {
			sp := tr.Begin("simulate-sampled", "sim", tid)
			res.Rocket, res.Sampled, res.Breakdown, res.Err = perf.SampleRocketOn(
				c, j.Kernel, j.Sample,
				sample.Options{Telemetry: r.m.sample, Tracer: tr, Tid: tid})
			sp.End()
		} else {
			sp := tr.Begin("simulate", "sim", tid)
			err := perf.SimulateRocketOn(c, j.Kernel)
			sp.End()
			if err != nil {
				res.Err = err
			} else {
				tp := tr.Begin("tally", "sim", tid)
				res.Rocket, res.Breakdown, res.Err = perf.TallyRocket(c)
				tp.End()
			}
		}
		pool.Put(c)
	}
	return res
}
