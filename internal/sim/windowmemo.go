package sim

import (
	"sync"

	"icicle/internal/obs"
	"icicle/internal/sample"
)

// Window-result memo for the two-phase sampled engine. A window's key
// fingerprints everything its result depends on — core config, program,
// window length, start instruction, warm span, instruction bound — so
// results are reusable wherever the keys coincide: a sweep re-run after
// the job cache was dropped (ConfigureDefault replaces the runner but
// not this memo, exactly like the core pools), or overlapping policies
// that schedule some identical windows. Like the job cache it has no
// eviction; a window result is a few hundred bytes.
//
// The memo is process-wide so every runner shares it; per-runner hit and
// miss counters are layered on by countingWindowMemo.
type windowStore struct {
	mu sync.RWMutex
	m  map[string]sample.WindowResult
}

func (ws *windowStore) Get(key string) (sample.WindowResult, bool) {
	ws.mu.RLock()
	wr, ok := ws.m[key]
	ws.mu.RUnlock()
	return wr, ok
}

func (ws *windowStore) Put(key string, wr sample.WindowResult) {
	ws.mu.Lock()
	if ws.m == nil {
		ws.m = map[string]sample.WindowResult{}
	}
	ws.m[key] = wr
	ws.mu.Unlock()
}

// Len reports the number of memoized windows (tests and stats).
func (ws *windowStore) Len() int {
	ws.mu.RLock()
	defer ws.mu.RUnlock()
	return len(ws.m)
}

var sharedWindows windowStore

// countingWindowMemo attributes memo traffic to a runner's counters and,
// when the runner has a persistent store, layers it under the in-memory
// map as an L2: window results persist across processes, so a sampled
// sweep on a fresh server resumes from checkpointed windows instead of
// re-simulating them.
type countingWindowMemo struct {
	store        *windowStore
	disk         ResultStore // optional persistent L2 (nil = memory only)
	hits, misses *obs.Counter
}

func (cm countingWindowMemo) Get(key string) (sample.WindowResult, bool) {
	wr, ok := cm.store.Get(key)
	if !ok && cm.disk != nil {
		if payload, found := cm.disk.Get(windowKeyPrefix + key); found {
			if dec, err := decodeWindow(payload); err == nil {
				cm.store.Put(key, dec) // promote to L1
				wr, ok = dec, true
			}
		}
	}
	if ok {
		cm.hits.Inc()
	} else {
		cm.misses.Inc()
	}
	return wr, ok
}

func (cm countingWindowMemo) Put(key string, wr sample.WindowResult) {
	cm.store.Put(key, wr)
	if cm.disk != nil {
		if payload, err := encodeWindow(wr); err == nil {
			cm.disk.Put(windowKeyPrefix+key, payload) // best effort
		}
	}
}

// windowMemo returns the runner's view of the shared memo, or nil when
// memoization is off (WithoutCache also disables window reuse, so
// benchmark ablations measure true window throughput).
func (r *Runner) windowMemo() sample.WindowMemo {
	if !r.memoize {
		return nil
	}
	return countingWindowMemo{
		store:  &sharedWindows,
		disk:   r.store,
		hits:   r.m.windowHits,
		misses: r.m.windowMisses,
	}
}
