// Package sim is the simulation job runner: the evaluation suite's sweeps
// (Fig. 7 grids, Table V/VI, the ablations) are embarrassingly parallel —
// dozens of independent (core, config, kernel) simulations — so the runner
// fans them out across a worker pool and memoizes results by content key,
// the software analogue of FireSim farming FPGA simulations out in bulk.
//
// Two entry points:
//
//   - Runner.Run executes batches of Job descriptors (a core kind, its
//     config, and a kernel) through perf.RunRocket / perf.RunBoom, returning
//     results in submission order regardless of completion order, with a
//     config-fingerprint + kernel-name memoization cache on top.
//   - Map fans an arbitrary per-item function out over the same worker
//     discipline, for sweeps that need a custom harness (cycle hooks,
//     forced PMU widths) and therefore cannot be memoized.
package sim

import (
	"fmt"

	"icicle/internal/boom"
	"icicle/internal/core"
	"icicle/internal/kernel"
	"icicle/internal/perf"
	"icicle/internal/rocket"
	"icicle/internal/sample"
)

// CoreKind selects the timing model a Job runs on.
type CoreKind uint8

const (
	// Rocket runs the job on the in-order Rocket model.
	Rocket CoreKind = iota
	// Boom runs the job on the out-of-order BOOM model.
	Boom
)

// Job is one simulation: a kernel on a configured core.
type Job struct {
	Core   CoreKind
	Rocket rocket.Config // used when Core == Rocket
	Boom   boom.Config   // used when Core == Boom
	Kernel *kernel.Kernel

	// Sample selects the detail mode: the zero value (disabled) runs
	// full-detail; an enabled policy runs the sampled engine and returns
	// extrapolated results (Result.Sampled carries the report).
	Sample sample.Policy

	// SamplePar > 0 selects the two-phase plan engine for sampled jobs:
	// one producer pass plus SamplePar window workers. The report is
	// bit-identical for every worker count (SamplePar == 1 is the serial
	// reference), so the worker count is deliberately NOT part of Key().
	// Ignored when Sample is disabled.
	SamplePar int
}

// WithSampling returns a copy of the job running under the sampling
// policy instead of full detail.
func (j Job) WithSampling(p sample.Policy) Job {
	j.Sample = p
	return j
}

// WithParallelSampling returns a copy of the job running under the
// two-phase sampled engine with the given window-worker count
// (workers < 1 is treated as 1).
func (j Job) WithParallelSampling(p sample.Policy, workers int) Job {
	if workers < 1 {
		workers = 1
	}
	j.Sample = p
	j.SamplePar = workers
	return j
}

// RocketJob describes a Rocket simulation.
func RocketJob(cfg rocket.Config, k *kernel.Kernel) Job {
	return Job{Core: Rocket, Rocket: cfg, Kernel: k}
}

// BoomJob describes a BOOM simulation.
func BoomJob(cfg boom.Config, k *kernel.Kernel) Job {
	return Job{Core: Boom, Boom: cfg, Kernel: k}
}

// CoreName names the configured core ("rocket" or the BOOM size name).
func (j Job) CoreName() string {
	if j.Core == Boom {
		return j.Boom.Name
	}
	return "rocket"
}

// Key is the memoization key: the core kind, every config field (the
// configs are pure value types, so the rendered form is a complete
// fingerprint — lane counts, cache geometry, PMU architecture and all),
// the kernel name, and the detail mode. Sampled and full-detail runs of
// the same (core, kernel) produce different results, so an enabled
// sampling policy is part of the key; full-detail jobs keep their
// historical key shape.
func (j Job) Key() string {
	key := ""
	switch j.Core {
	case Boom:
		key = fmt.Sprintf("boom|%s|%+v", j.Kernel.Name, j.Boom)
	default:
		key = fmt.Sprintf("rocket|%s|%+v", j.Kernel.Name, j.Rocket)
	}
	if j.Sample.Enabled() {
		if j.SamplePar > 0 {
			// The plan engine has its own (instruction-anchored) window
			// semantics, so its results get a distinct key family; the
			// worker count is excluded because results are bit-identical
			// across counts.
			key += "|sample2{" + j.Sample.String() + "}"
		} else {
			key += "|sample{" + j.Sample.String() + "}"
		}
	}
	return key
}

// ConfigFingerprint is the core-plus-configuration part of the memo key,
// with the kernel and detail mode stripped: the sharding axis of the
// serve layer. Routing by config keeps every kernel of one configuration
// on one node, so that node's core pools and plan cache stay hot for the
// whole config sweep.
func (j Job) ConfigFingerprint() string {
	if j.Core == Boom {
		return fmt.Sprintf("boom|%+v", j.Boom)
	}
	return fmt.Sprintf("rocket|%+v", j.Rocket)
}

// Result is one job's outcome. Exactly one of Rocket/Boom is populated,
// per Job.Core. Cached results share Tally/LaneTally maps with every other
// holder of the same key: treat them as read-only.
type Result struct {
	Job       Job
	Rocket    rocket.Result // valid when Job.Core == Rocket
	Boom      boom.Result   // valid when Job.Core == Boom
	Breakdown core.Breakdown
	// Sampled is the sampling report for jobs run under an enabled
	// policy (nil for full-detail jobs). The Rocket/Boom results then
	// hold extrapolated cycle and event totals.
	Sampled *sample.Report
	Err     error
	Cached  bool // served without simulating (memo or persistent store)
	// FromStore marks a result whose bytes came from the persistent
	// result store (directly, or via a memo entry the store seeded) —
	// i.e. no process in this lifetime simulated it.
	FromStore bool
}

// Cycles returns the simulated cycle count of whichever core ran.
func (r Result) Cycles() uint64 {
	if r.Job.Core == Boom {
		return r.Boom.Cycles
	}
	return r.Rocket.Cycles
}

// Insts returns the retired instruction count.
func (r Result) Insts() uint64 {
	if r.Job.Core == Boom {
		return r.Boom.Insts
	}
	return r.Rocket.Insts
}

// Exit returns the workload's exit checksum.
func (r Result) Exit() uint64 {
	if r.Job.Core == Boom {
		return r.Boom.Exit
	}
	return r.Rocket.Exit
}

// Tally returns the exact total of the named event.
func (r Result) Tally(event string) uint64 {
	if r.Job.Core == Boom {
		return r.Boom.Tally[event]
	}
	return r.Rocket.Tally[event]
}

// execute runs the simulation described by j (no caching, no pooling).
func execute(j Job) Result {
	res := Result{Job: j}
	switch {
	case j.Core == Boom && j.Sample.Enabled() && j.SamplePar > 0:
		res.Boom, res.Sampled, res.Breakdown, res.Err = perf.SampleBoomPar(j.Boom, j.Kernel, j.Sample, sample.Options{}, j.SamplePar)
	case j.Core == Boom && j.Sample.Enabled():
		res.Boom, res.Sampled, res.Breakdown, res.Err = perf.SampleBoom(j.Boom, j.Kernel, j.Sample)
	case j.Core == Boom:
		res.Boom, res.Breakdown, res.Err = perf.RunBoom(j.Boom, j.Kernel)
	case j.Sample.Enabled() && j.SamplePar > 0:
		res.Rocket, res.Sampled, res.Breakdown, res.Err = perf.SampleRocketPar(j.Rocket, j.Kernel, j.Sample, sample.Options{}, j.SamplePar)
	case j.Sample.Enabled():
		res.Rocket, res.Sampled, res.Breakdown, res.Err = perf.SampleRocket(j.Rocket, j.Kernel, j.Sample)
	default:
		res.Rocket, res.Breakdown, res.Err = perf.RunRocket(j.Rocket, j.Kernel)
	}
	return res
}
