package sim

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Map applies f to every item on a pool of workers and returns the results
// in input order. It is the runner's discipline for sweeps the Job cache
// cannot cover — traced runs with cycle hooks, forced PMU widths — where
// each point needs a bespoke harness.
//
// workers <= 0 means GOMAXPROCS. All items execute even if one fails; the
// returned error is the lowest-index failure, so error reporting is
// deterministic regardless of scheduling.
func Map[T, R any](workers int, items []T, f func(int, T) (R, error)) ([]R, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(items) {
		workers = len(items)
	}
	out := make([]R, len(items))
	errs := make([]error, len(items))
	if workers <= 1 {
		for i, it := range items {
			out[i], errs[i] = f(i, it)
		}
	} else {
		var next atomic.Int64
		next.Store(-1)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1))
					if i >= len(items) {
						return
					}
					out[i], errs[i] = f(i, items[i])
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
