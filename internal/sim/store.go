package sim

import (
	"bytes"
	"encoding/gob"

	"icicle/internal/boom"
	"icicle/internal/core"
	"icicle/internal/rocket"
	"icicle/internal/sample"
)

// ResultStore is the persistent L2 behind the in-process memo: a
// content-addressed blob store (internal/store) or anything shaped like
// one. The runner consults it on memo misses and writes every freshly
// simulated result back, so identical sweeps are free across processes
// and users. Implementations must be safe for concurrent use; Put is
// best-effort (the runner ignores its error — a full disk degrades to
// recomputation, never to failure).
type ResultStore interface {
	Get(key string) ([]byte, bool)
	Put(key string, payload []byte) error
}

// WithResultStore layers st under the memo cache as a persistent L2 for
// both job results and sampled-window results. Only successful results
// are persisted; errors always recompute. WithoutCache also bypasses the
// store (benchmark ablations measure true simulation throughput).
func WithResultStore(st ResultStore) Option {
	return func(r *Runner) { r.store = st }
}

// Store-key namespaces: job results and window results live in disjoint
// key families so their blob payloads (which have different shapes)
// can never be confused.
const (
	jobKeyPrefix    = "job|"
	windowKeyPrefix = "win|"
)

// StoreKey is the persistent-store key for a job: the memo fingerprint
// under the job namespace. store.Addr(StoreKey(j)) is the content
// address served at /store/{addr}.
func StoreKey(j Job) string { return jobKeyPrefix + j.Key() }

// persistResult is the on-disk form of a Result: everything except the
// Job descriptor (the key identifies it; the loader re-attaches the
// caller's own descriptor) and the error (failures are never persisted).
type persistResult struct {
	Core      CoreKind
	Rocket    rocket.Result
	Boom      boom.Result
	Breakdown core.Breakdown
	Sampled   *sample.Report
}

// EncodeResult renders a successful result as a store payload (gob).
// Errored results are not encodable: persisting a failure would pin a
// possibly transient error forever.
func EncodeResult(res Result) ([]byte, error) {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	err := enc.Encode(persistResult{
		Core:      res.Job.Core,
		Rocket:    res.Rocket,
		Boom:      res.Boom,
		Breakdown: res.Breakdown,
		Sampled:   res.Sampled,
	})
	if err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeResult parses a store payload back into a Result carrying the
// given job descriptor. The payload must have been produced by
// EncodeResult for the same store key; the store's checksums make
// corruption a miss before this runs, so a decode error here means a
// format drift — the caller treats it as a miss and recomputes.
func DecodeResult(payload []byte, j Job) (Result, error) {
	var pr persistResult
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&pr); err != nil {
		return Result{}, err
	}
	return Result{
		Job:       j,
		Rocket:    pr.Rocket,
		Boom:      pr.Boom,
		Breakdown: pr.Breakdown,
		Sampled:   pr.Sampled,
	}, nil
}

// loadStored consults the L2 for a job result.
func (r *Runner) loadStored(j Job) (Result, bool) {
	payload, ok := r.store.Get(StoreKey(j))
	if !ok {
		return Result{}, false
	}
	res, err := DecodeResult(payload, j)
	if err != nil {
		return Result{}, false // format drift: recompute
	}
	res.Cached = true
	res.FromStore = true
	return res, true
}

// storeResult persists a freshly simulated result (best effort).
func (r *Runner) storeResult(j Job, res Result) {
	if res.Err != nil {
		return
	}
	payload, err := EncodeResult(res)
	if err != nil {
		return
	}
	r.store.Put(StoreKey(j), payload)
}

// encodeWindow / decodeWindow are the window-memo blob codec. The window
// key already carries the config, program, and bounds; the payload is
// just the result triple plus the dense tally.
func encodeWindow(wr sample.WindowResult) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(wr); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeWindow(payload []byte) (sample.WindowResult, error) {
	var wr sample.WindowResult
	err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&wr)
	return wr, err
}
