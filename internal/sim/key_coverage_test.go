package sim

import (
	"reflect"
	"testing"

	"icicle/internal/boom"
	"icicle/internal/rocket"
	"icicle/internal/sample"
)

// Every field of sim.Job must carry an explicit keying decision: either
// perturbing it changes the memo key (it selects a different
// simulation), or it provably cannot change the result (worker counts,
// bit-identical engines) and is excluded. A new Job field added without
// an entry here fails TestJobKeyFieldCoverage, forcing the author to
// decide — the memo, the persistent store, and the serve layer all trust
// this key, so an unkeyed result-changing field would serve wrong
// results and a keyed result-free field would split the cache.
type keyRule struct {
	// perturb returns a copy of the job with only this field changed.
	perturb func(j Job) Job
	// wantChange: the perturbation must (true) / must not (false) move
	// the key.
	wantChange bool
	why        string
}

func jobKeyRules(t *testing.T) map[string]keyRule {
	t.Helper()
	other := mustKernel(t, "towers")
	return map[string]keyRule{
		"Core": {
			perturb:    func(j Job) Job { j.Core = Boom; j.Boom = boom.NewConfig(boom.Small); return j },
			wantChange: true,
			why:        "different timing model",
		},
		"Rocket": {
			perturb:    func(j Job) Job { j.Rocket.FetchWidth++; return j },
			wantChange: true,
			why:        "config selects the microarchitecture",
		},
		"Boom": {
			// Exercised on a BOOM-core job inside the harness.
			perturb:    func(j Job) Job { j.Core = Boom; j.Boom = boom.NewConfig(boom.Small); j.Boom.ROBEntries++; return j },
			wantChange: true,
			why:        "config selects the microarchitecture",
		},
		"Kernel": {
			perturb:    func(j Job) Job { j.Kernel = other; return j },
			wantChange: true,
			why:        "different workload",
		},
		"Sample": {
			perturb:    func(j Job) Job { return j.WithSampling(sample.Policy{Window: 512, Period: 4096, Warmup: 512}) },
			wantChange: true,
			why:        "sampled and full-detail results differ",
		},
		"SamplePar": {
			// Worker count among enabled values: bit-identical results
			// for every count (the PR 6 merge contract), so the key must
			// not move. The 0 → >0 family switch is keyed via Sample
			// handling and pinned separately below.
			perturb: func(j Job) Job {
				j = j.WithParallelSampling(sample.Policy{Window: 512, Period: 4096, Warmup: 512}, 2)
				j.SamplePar = 7
				return j
			},
			wantChange: false,
			why:        "results are bit-identical for any worker count",
		},
	}
}

// TestJobKeyFieldCoverage walks sim.Job's fields by reflection and fails
// when any field lacks a keying decision or behaves against its rule.
func TestJobKeyFieldCoverage(t *testing.T) {
	rules := jobKeyRules(t)
	typ := reflect.TypeOf(Job{})
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		rule, ok := rules[name]
		if !ok {
			t.Errorf("sim.Job field %q has no keying decision: add a keyRule entry (keyed or provably result-free) before shipping it", name)
			continue
		}
		base := RocketJob(rocket.DefaultConfig(), mustKernel(t, "vvadd"))
		if name == "SamplePar" {
			base = base.WithParallelSampling(sample.Policy{Window: 512, Period: 4096, Warmup: 512}, 2)
		}
		mutated := rule.perturb(base)
		changed := base.Key() != mutated.Key()
		if changed != rule.wantChange {
			t.Errorf("field %s: key changed=%v, rule wants %v (%s)\n base: %s\n mut:  %s",
				name, changed, rule.wantChange, rule.why, base.Key(), mutated.Key())
		}
	}
	for name := range rules {
		if _, ok := typ.FieldByName(name); !ok {
			t.Errorf("keyRule for %q names a field sim.Job no longer has; delete it", name)
		}
	}
}

// TestSamplePolicyFieldsPerturbKey: every sample.Policy field must move
// the key of an enabled sampled job — the policy is part of what was
// simulated.
func TestSamplePolicyFieldsPerturbKey(t *testing.T) {
	k := mustKernel(t, "vvadd")
	base := RocketJob(rocket.DefaultConfig(), k).
		WithSampling(sample.Policy{Window: 512, Period: 4096, Warmup: 512})
	typ := reflect.TypeOf(sample.Policy{})
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		j := base
		pv := reflect.ValueOf(&j.Sample).Elem().Field(i)
		if !bumpScalar(pv) {
			t.Errorf("sample.Policy field %s has kind %s: teach bumpScalar about it and decide its keying", f.Name, f.Type.Kind())
			continue
		}
		if j.Key() == base.Key() {
			t.Errorf("sample.Policy field %s does not perturb the memo key: %s", f.Name, base.Key())
		}
	}
}

// TestRocketConfigFieldsPerturbKey / TestBoomConfigFieldsPerturbKey:
// every config field — including nested hierarchy and cache geometry —
// must perturb the key. The walk is recursive and rejects field kinds it
// does not understand, so adding an unkeyable field type (a func, a
// channel) fails loudly instead of silently falling out of the
// fingerprint.
func TestRocketConfigFieldsPerturbKey(t *testing.T) {
	k := mustKernel(t, "vvadd")
	base := RocketJob(rocket.DefaultConfig(), k)
	j := base
	perturbEachField(t, reflect.ValueOf(&j.Rocket).Elem(), "rocket.Config",
		func() string { return j.Key() },
		func() { j = base })
}

func TestBoomConfigFieldsPerturbKey(t *testing.T) {
	k := mustKernel(t, "vvadd")
	base := BoomJob(boom.NewConfig(boom.Small), k)
	j := base
	perturbEachField(t, reflect.ValueOf(&j.Boom).Elem(), "boom.Config",
		func() string { return j.Key() },
		func() { j = base })
}

// perturbEachField bumps every leaf field reachable from v (recursing
// through nested structs), asserting the key moves each time, and
// restores the baseline between fields.
func perturbEachField(t *testing.T, v reflect.Value, path string, key func() string, reset func()) {
	t.Helper()
	baseKey := key()
	typ := v.Type()
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		fv := v.Field(i)
		name := path + "." + f.Name
		switch fv.Kind() {
		case reflect.Struct:
			perturbEachField(t, fv, name, key, reset)
			continue
		default:
			if !bumpScalar(fv) {
				t.Errorf("%s has kind %s the key-coverage walk cannot perturb: extend bumpScalar or exclude it with an explicit decision", name, fv.Kind())
				continue
			}
		}
		if key() == baseKey {
			t.Errorf("%s does not perturb the memo key — a sweep varying it would collide in the cache", name)
		}
		reset()
		if key() != baseKey {
			t.Fatalf("reset failed after %s", name)
		}
	}
}

// bumpScalar mutates a scalar value in place; false when the kind is not
// supported (the caller turns that into a keying-decision failure).
func bumpScalar(v reflect.Value) bool {
	switch v.Kind() {
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v.SetInt(v.Int() + 1)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		v.SetUint(v.Uint() + 1)
	case reflect.Float32, reflect.Float64:
		v.SetFloat(v.Float() + 1)
	case reflect.Bool:
		v.SetBool(!v.Bool())
	case reflect.String:
		v.SetString(v.String() + "~")
	case reflect.Pointer:
		if v.IsNil() {
			v.Set(reflect.New(v.Type().Elem()))
		} else {
			v.Set(reflect.Zero(v.Type()))
		}
	default:
		return false
	}
	return true
}

// TestKeyFamilies pins the three key families (full, sample, sample2)
// stay mutually distinct — the store depends on it as much as the memo.
func TestKeyFamilies(t *testing.T) {
	k := mustKernel(t, "vvadd")
	p := sample.Policy{Window: 512, Period: 4096, Warmup: 512}
	full := RocketJob(rocket.DefaultConfig(), k)
	sampled := full.WithSampling(p)
	par := full.WithParallelSampling(p, 4)
	keys := map[string]string{
		"full": full.Key(), "sampled": sampled.Key(), "sample2": par.Key(),
	}
	seen := map[string]string{}
	for fam, key := range keys {
		if prev, dup := seen[key]; dup {
			t.Errorf("key families %s and %s collide: %s", fam, prev, key)
		}
		seen[key] = fam
	}
	if StoreKey(full) == full.Key() {
		// The store namespaces job blobs so window blobs can never alias.
		t.Error("StoreKey must namespace the memo key")
	}
	if StoreKey(par) != jobKeyPrefix+par.Key() {
		t.Errorf("StoreKey shape drifted: %s", StoreKey(par))
	}
}
