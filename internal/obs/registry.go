// Package obs is the host-side telemetry subsystem: the same observability
// discipline Icicle applies to the simulated machine (per-cycle event
// signals, PMU counters, temporal TMA), applied to the Go evaluation stack
// itself. It provides
//
//   - a metrics registry (atomic counters, gauges, log-bucketed
//     histograms) with a lock-free hot path and Prometheus text
//     exposition,
//   - a span tracer emitting Chrome trace-event JSON that Perfetto and
//     about://tracing load directly, including counter tracks for the
//     temporal-TMA bridge,
//   - a live introspection HTTP server (expvar, Prometheus, pprof, and a
//     sweep /progress endpoint), and
//   - the shared CLI flag wiring used by every icicle-* binary.
//
// Everything is nil-safe: a nil *Counter, *Gauge, *Histogram, *Tracer, or
// *Registry turns every method into a no-op, so instrumented hot paths
// (the cycle loops, the sim runner) carry a single pointer test and zero
// allocations when telemetry is disabled — and still zero allocations
// when it is enabled, because the hot-path methods are plain atomic
// updates. The package depends only on the standard library.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready to
// use; a nil *Counter discards updates.
type Counter struct {
	v atomic.Uint64
}

// NewCounter returns a standalone (unregistered) counter.
func NewCounter() *Counter { return &Counter{} }

// Add increments the counter by n. Nil-safe, lock-free, alloc-free.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current total (0 on a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. The zero value is ready to
// use; a nil *Gauge discards updates.
type Gauge struct {
	v atomic.Int64
}

// NewGauge returns a standalone (unregistered) gauge.
func NewGauge() *Gauge { return &Gauge{} }

// Set replaces the gauge value. Nil-safe.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta (negative to decrease). Nil-safe.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// metric kinds for exposition.
const (
	kindCounter = iota
	kindGauge
	kindHistogram
)

type entry struct {
	name, help string
	kind       int
	c          *Counter
	g          *Gauge
	h          *Histogram
}

// LabeledName renders a Prometheus series name with label pairs —
// LabeledName("x_seconds", "class", "0") → `x_seconds{class="0"}` — for
// registering labeled series in a Registry. Series sharing a base name
// are grouped under one HELP/TYPE header at exposition, and histogram
// series splice their labels into the _bucket/_sum/_count lines.
func LabeledName(base string, kv ...string) string {
	if len(kv) == 0 {
		return base
	}
	var b []byte
	b = append(b, base...)
	b = append(b, '{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, kv[i]...)
		b = append(b, '=')
		b = append(b, fmt.Sprintf("%q", kv[i+1])...)
	}
	b = append(b, '}')
	return string(b)
}

// splitName splits a registered series name into its base metric name
// and its label body (the text between the braces, "" when unlabeled).
func splitName(name string) (base, labels string) {
	i := len(name)
	for j := 0; j < len(name); j++ {
		if name[j] == '{' {
			i = j
			break
		}
	}
	if i == len(name) {
		return name, ""
	}
	labels = name[i:]
	labels = labels[1:]
	if n := len(labels); n > 0 && labels[n-1] == '}' {
		labels = labels[:n-1]
	}
	return name[:i], labels
}

// Registry is a named collection of metrics. Registration (Counter, Gauge,
// Histogram) takes a lock; the returned handles are lock-free. Metrics are
// get-or-create: registering the same name twice returns the same handle,
// so process-wide totals survive components being rebuilt (the sim runner
// is recreated by -j, for example). A nil *Registry returns nil handles,
// which is the disabled mode: every update on them is a no-op.
type Registry struct {
	mu      sync.Mutex
	entries []entry
	byName  map[string]int // name → index into entries
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]int{}}
}

func (r *Registry) lookup(name string, kind int) (entry, bool) {
	if i, ok := r.byName[name]; ok {
		e := r.entries[i]
		if e.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different kind", name))
		}
		return e, true
	}
	return entry{}, false
}

func (r *Registry) add(e entry) {
	r.byName[e.name] = len(r.entries)
	r.entries = append(r.entries, e)
}

// Counter returns the named counter, creating it on first registration.
// Returns nil on a nil registry.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.lookup(name, kindCounter); ok {
		return e.c
	}
	c := NewCounter()
	r.add(entry{name: name, help: help, kind: kindCounter, c: c})
	return c
}

// Gauge returns the named gauge, creating it on first registration.
// Returns nil on a nil registry.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.lookup(name, kindGauge); ok {
		return e.g
	}
	g := NewGauge()
	r.add(entry{name: name, help: help, kind: kindGauge, g: g})
	return g
}

// Histogram returns the named histogram, creating it on first
// registration with the given exposition scale. Returns nil on a nil
// registry.
func (r *Registry) Histogram(name, help string, scale float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.lookup(name, kindHistogram); ok {
		return e.h
	}
	h := NewHistogram(scale)
	r.add(entry{name: name, help: help, kind: kindHistogram, h: h})
	return h
}

// snapshotEntries copies the entry table under the lock so exposition can
// iterate without holding it (handle updates are atomic anyway).
func (r *Registry) snapshotEntries() []entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]entry, len(r.entries))
	copy(out, r.entries)
	return out
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4). Series sharing a base metric name (labeled
// variants registered via LabeledName) are grouped under a single
// HELP/TYPE header, in first-registration order. Nil-safe: a nil
// registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	entries := r.snapshotEntries()
	var order []string
	groups := map[string][]entry{}
	for _, e := range entries {
		base, _ := splitName(e.name)
		if _, ok := groups[base]; !ok {
			order = append(order, base)
		}
		groups[base] = append(groups[base], e)
	}
	for _, base := range order {
		g := groups[base]
		kind := "counter"
		switch g[0].kind {
		case kindGauge:
			kind = "gauge"
		case kindHistogram:
			kind = "histogram"
		}
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", base, g[0].help, base, kind); err != nil {
			return err
		}
		for _, e := range g {
			var err error
			switch e.kind {
			case kindCounter:
				_, err = fmt.Fprintf(w, "%s %d\n", e.name, e.c.Value())
			case kindGauge:
				_, err = fmt.Fprintf(w, "%s %d\n", e.name, e.g.Value())
			case kindHistogram:
				_, labels := splitName(e.name)
				err = writePromHistogram(w, base, labels, e.h)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// writePromHistogram emits true Prometheus histogram semantics:
// cumulative le-buckets (each non-empty sub-bucket's exact inclusive
// upper edge — empty buckets are skipped, which loses nothing because
// the cumulative count is constant across them), then the +Inf bucket,
// _sum, and _count, all three mutually consistent (+Inf == _count, _sum
// scaled like the bounds). labels is the series' own label body (may be
// empty); le is spliced in after it.
func writePromHistogram(w io.Writer, base, labels string, h *Histogram) error {
	s := h.Snapshot()
	prefix := ""
	if labels != "" {
		prefix = labels + ","
	}
	var cum uint64
	for i := range s.Buckets {
		n := s.Buckets[i]
		if n == 0 {
			continue
		}
		cum += n
		upper := bucketUpper(i)
		if upper == math.MaxUint64 {
			continue // the top bucket's edge is 2^64: representable only as +Inf
		}
		le := float64(upper) * s.Scale
		if _, err := fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", base, prefix, fmtFloat(le), cum); err != nil {
			return err
		}
	}
	sumSuffix, countSuffix := "_sum", "_count"
	if labels != "" {
		sumSuffix = "_sum{" + labels + "}"
		countSuffix = "_count{" + labels + "}"
	}
	_, err := fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n%s%s %s\n%s%s %d\n",
		base, prefix, s.Count, base, sumSuffix, fmtFloat(float64(s.Sum)*s.Scale), base, countSuffix, s.Count)
	return err
}

// fmtFloat formats without trailing zero noise (Prometheus accepts any
// float syntax; %g keeps bucket bounds readable).
func fmtFloat(v float64) string { return fmt.Sprintf("%g", v) }

// Snapshot returns a JSON-friendly view of every metric: counters and
// gauges as numbers, histograms as {count, sum, p50, p99} (raw units).
// Keys are sorted metric names. Used by the expvar endpoint.
func (r *Registry) Snapshot() map[string]any {
	out := map[string]any{}
	if r == nil {
		return out
	}
	for _, e := range r.snapshotEntries() {
		switch e.kind {
		case kindCounter:
			out[e.name] = e.c.Value()
		case kindGauge:
			out[e.name] = e.g.Value()
		case kindHistogram:
			s := e.h.Snapshot()
			out[e.name] = map[string]any{
				"count": s.Count,
				"sum":   s.Sum,
				"p50":   s.Quantile(0.5),
				"p99":   s.Quantile(0.99),
				"max":   s.Max,
			}
		}
	}
	return out
}

// Names returns the registered metric names, sorted.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	es := r.snapshotEntries()
	names := make([]string, len(es))
	for i, e := range es {
		names[i] = e.name
	}
	sort.Strings(names)
	return names
}
