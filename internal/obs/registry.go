// Package obs is the host-side telemetry subsystem: the same observability
// discipline Icicle applies to the simulated machine (per-cycle event
// signals, PMU counters, temporal TMA), applied to the Go evaluation stack
// itself. It provides
//
//   - a metrics registry (atomic counters, gauges, log-bucketed
//     histograms) with a lock-free hot path and Prometheus text
//     exposition,
//   - a span tracer emitting Chrome trace-event JSON that Perfetto and
//     about://tracing load directly, including counter tracks for the
//     temporal-TMA bridge,
//   - a live introspection HTTP server (expvar, Prometheus, pprof, and a
//     sweep /progress endpoint), and
//   - the shared CLI flag wiring used by every icicle-* binary.
//
// Everything is nil-safe: a nil *Counter, *Gauge, *Histogram, *Tracer, or
// *Registry turns every method into a no-op, so instrumented hot paths
// (the cycle loops, the sim runner) carry a single pointer test and zero
// allocations when telemetry is disabled — and still zero allocations
// when it is enabled, because the hot-path methods are plain atomic
// updates. The package depends only on the standard library.
package obs

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready to
// use; a nil *Counter discards updates.
type Counter struct {
	v atomic.Uint64
}

// NewCounter returns a standalone (unregistered) counter.
func NewCounter() *Counter { return &Counter{} }

// Add increments the counter by n. Nil-safe, lock-free, alloc-free.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current total (0 on a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. The zero value is ready to
// use; a nil *Gauge discards updates.
type Gauge struct {
	v atomic.Int64
}

// NewGauge returns a standalone (unregistered) gauge.
func NewGauge() *Gauge { return &Gauge{} }

// Set replaces the gauge value. Nil-safe.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta (negative to decrease). Nil-safe.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets covers bits.Len64's range: bucket i counts observations v
// with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i), with bucket 0 for
// v == 0. Log2 bucketing keeps Observe branch-free (no bounds search) and
// the whole histogram fixed-size.
const histBuckets = 65

// Histogram is a log2-bucketed distribution of uint64 observations
// (typically nanoseconds). The zero value is usable but renders raw
// values; construct with NewHistogram to set the exposition scale. A nil
// *Histogram discards observations.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
	scale   float64 // multiplier applied at exposition (1e-9: ns → s)
}

// NewHistogram returns a standalone histogram whose Prometheus exposition
// multiplies bucket bounds and the sum by scale (pass 1e-9 to observe
// nanoseconds and expose seconds; 0 means 1).
func NewHistogram(scale float64) *Histogram { return &Histogram{scale: scale} }

// Observe records one value. Nil-safe, lock-free, alloc-free.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bits.Len64(v)].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the raw (unscaled) observation total.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

func (h *Histogram) effScale() float64 {
	if h.scale == 0 {
		return 1
	}
	return h.scale
}

// Quantile returns an upper bound on the q-quantile (0 ≤ q ≤ 1) of the
// raw observed values: the upper edge of the bucket the quantile falls
// into. Returns 0 with no observations.
func (h *Histogram) Quantile(q float64) uint64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	want := uint64(math.Ceil(q * float64(total)))
	if want == 0 {
		want = 1
	}
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= want {
			if i == 0 {
				return 0
			}
			if i >= 64 {
				return math.MaxUint64
			}
			return 1<<uint(i) - 1
		}
	}
	return math.MaxUint64
}

// metric kinds for exposition.
const (
	kindCounter = iota
	kindGauge
	kindHistogram
)

type entry struct {
	name, help string
	kind       int
	c          *Counter
	g          *Gauge
	h          *Histogram
}

// Registry is a named collection of metrics. Registration (Counter, Gauge,
// Histogram) takes a lock; the returned handles are lock-free. Metrics are
// get-or-create: registering the same name twice returns the same handle,
// so process-wide totals survive components being rebuilt (the sim runner
// is recreated by -j, for example). A nil *Registry returns nil handles,
// which is the disabled mode: every update on them is a no-op.
type Registry struct {
	mu      sync.Mutex
	entries []entry
	byName  map[string]int // name → index into entries
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]int{}}
}

func (r *Registry) lookup(name string, kind int) (entry, bool) {
	if i, ok := r.byName[name]; ok {
		e := r.entries[i]
		if e.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different kind", name))
		}
		return e, true
	}
	return entry{}, false
}

func (r *Registry) add(e entry) {
	r.byName[e.name] = len(r.entries)
	r.entries = append(r.entries, e)
}

// Counter returns the named counter, creating it on first registration.
// Returns nil on a nil registry.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.lookup(name, kindCounter); ok {
		return e.c
	}
	c := NewCounter()
	r.add(entry{name: name, help: help, kind: kindCounter, c: c})
	return c
}

// Gauge returns the named gauge, creating it on first registration.
// Returns nil on a nil registry.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.lookup(name, kindGauge); ok {
		return e.g
	}
	g := NewGauge()
	r.add(entry{name: name, help: help, kind: kindGauge, g: g})
	return g
}

// Histogram returns the named histogram, creating it on first
// registration with the given exposition scale. Returns nil on a nil
// registry.
func (r *Registry) Histogram(name, help string, scale float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.lookup(name, kindHistogram); ok {
		return e.h
	}
	h := NewHistogram(scale)
	r.add(entry{name: name, help: help, kind: kindHistogram, h: h})
	return h
}

// snapshotEntries copies the entry table under the lock so exposition can
// iterate without holding it (handle updates are atomic anyway).
func (r *Registry) snapshotEntries() []entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]entry, len(r.entries))
	copy(out, r.entries)
	return out
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4), in registration order. Nil-safe: a nil registry
// writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	for _, e := range r.snapshotEntries() {
		var err error
		switch e.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
				e.name, e.help, e.name, e.name, e.c.Value())
		case kindGauge:
			_, err = fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n",
				e.name, e.help, e.name, e.name, e.g.Value())
		case kindHistogram:
			err = writePromHistogram(w, e.name, e.help, e.h)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// writePromHistogram emits cumulative le-buckets up to the last non-empty
// one, then +Inf, sum, and count. Bucket i's upper bound is 2^i in raw
// units, scaled for exposition.
func writePromHistogram(w io.Writer, name, help string, h *Histogram) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name); err != nil {
		return err
	}
	last := -1
	for i := 0; i < histBuckets; i++ {
		if h.buckets[i].Load() > 0 {
			last = i
		}
	}
	scale := h.effScale()
	var cum uint64
	for i := 0; i <= last; i++ {
		cum += h.buckets[i].Load()
		le := math.Ldexp(1, i) * scale // 2^i, scaled
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, fmtFloat(le), cum); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
		name, h.count.Load(), name, fmtFloat(float64(h.sum.Load())*scale), name, h.count.Load())
	return err
}

// fmtFloat formats without trailing zero noise (Prometheus accepts any
// float syntax; %g keeps bucket bounds readable).
func fmtFloat(v float64) string { return fmt.Sprintf("%g", v) }

// Snapshot returns a JSON-friendly view of every metric: counters and
// gauges as numbers, histograms as {count, sum, p50, p99} (raw units).
// Keys are sorted metric names. Used by the expvar endpoint.
func (r *Registry) Snapshot() map[string]any {
	out := map[string]any{}
	if r == nil {
		return out
	}
	for _, e := range r.snapshotEntries() {
		switch e.kind {
		case kindCounter:
			out[e.name] = e.c.Value()
		case kindGauge:
			out[e.name] = e.g.Value()
		case kindHistogram:
			out[e.name] = map[string]any{
				"count": e.h.Count(),
				"sum":   e.h.Sum(),
				"p50":   e.h.Quantile(0.5),
				"p99":   e.h.Quantile(0.99),
			}
		}
	}
	return out
}

// Names returns the registered metric names, sorted.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	es := r.snapshotEntries()
	names := make([]string, len(es))
	for i, e := range es {
		names[i] = e.name
	}
	sort.Strings(names)
	return names
}
