package obs

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// exactQuantile is the reference: the ceil-rank order statistic of the
// sorted observations, matching the histogram's rank convention.
func exactQuantile(sorted []uint64, q float64) uint64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// relErr is |got-want|/want (0 when both are 0).
func relErr(got, want uint64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return math.Inf(1)
	}
	d := float64(got) - float64(want)
	return math.Abs(d) / float64(want)
}

// hdrTol is the histogram's guaranteed relative resolution plus
// headroom for the reference landing at a bucket edge.
const hdrTol = 1.0/hdrSubCount + 1e-9

var goldenQs = []float64{0.5, 0.9, 0.95, 0.99, 0.999, 1}

func checkGolden(t *testing.T, name string, values []uint64) {
	t.Helper()
	h := NewHistogram(1e-9)
	for _, v := range values {
		h.Observe(v)
	}
	sorted := append([]uint64(nil), values...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	s := h.Snapshot()
	if s.Count != uint64(len(values)) {
		t.Fatalf("%s: count = %d, want %d", name, s.Count, len(values))
	}
	if s.Max != sorted[len(sorted)-1] {
		t.Fatalf("%s: max = %d, want %d (exact)", name, s.Max, sorted[len(sorted)-1])
	}
	for _, q := range goldenQs {
		got, want := s.Quantile(q), exactQuantile(sorted, q)
		if got < want {
			t.Errorf("%s: p%g = %d underestimates exact %d (quantiles must be upper bucket edges)",
				name, 100*q, got, want)
		}
		if e := relErr(got, want); e > hdrTol {
			t.Errorf("%s: p%g = %d, exact %d, rel err %.4f > %.4f", name, 100*q, got, want, e, hdrTol)
		}
	}
	if s.Quantile(1) != s.Max {
		t.Errorf("%s: p100 = %d != max %d", name, s.Quantile(1), s.Max)
	}
}

// Golden distributions: the quantile extraction must track the exact
// order statistics within the sub-bucket resolution.
func TestHistogramGoldenUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	values := make([]uint64, 20000)
	for i := range values {
		values[i] = uint64(rng.Int63n(1_000_000)) + 1 // uniform [1, 1e6]
	}
	checkGolden(t, "uniform", values)
}

func TestHistogramGoldenExponential(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	values := make([]uint64, 20000)
	for i := range values {
		// mean 1ms in nanoseconds: a plausible latency distribution with
		// a long tail, the shape the load generator actually records.
		values[i] = uint64(rng.ExpFloat64()*1e6) + 1
	}
	checkGolden(t, "exponential", values)
}

func TestHistogramGoldenPointMass(t *testing.T) {
	values := make([]uint64, 1000)
	for i := range values {
		values[i] = 123_456
	}
	checkGolden(t, "point-mass", values)
	// Point mass is exact at every quantile: the max clamp pins the
	// bucket edge back to the single observed value.
	h := NewHistogram(1)
	for _, v := range values {
		h.Observe(v)
	}
	for _, q := range goldenQs {
		if got := h.Quantile(q); got != 123_456 {
			t.Fatalf("point mass p%g = %d, want exactly 123456", 100*q, got)
		}
	}
}

func TestHistogramGoldenSmallExact(t *testing.T) {
	// Values below hdrSubCount land in exact unit buckets: quantiles of
	// small sets are exact, not just within tolerance.
	h := NewHistogram(1)
	for _, v := range []uint64{0, 1, 2, 3, 4, 5, 6} {
		h.Observe(v)
	}
	if got := h.Quantile(0.5); got != 3 {
		t.Fatalf("p50 of 0..6 = %d, want 3", got)
	}
	if got := h.Quantile(0); got != 0 {
		t.Fatalf("p0 = %d, want 0", got)
	}
}

// Merge must be associative and order-independent: (a+b)+c == a+(b+c)
// == (c+a)+b, bucket for bucket, with max and sum carried exactly.
func TestHistogramMergeAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	mk := func(n int, scale float64) *Histogram {
		h := NewHistogram(1e-9)
		for i := 0; i < n; i++ {
			h.Observe(uint64(rng.ExpFloat64()*scale) + 1)
		}
		return h
	}
	a, b, c := mk(5000, 1e5), mk(3000, 1e7), mk(1000, 1e3)

	left := NewHistogram(1e-9) // (a+b)+c
	left.Merge(a)
	left.Merge(b)
	left.Merge(c)
	right := NewHistogram(1e-9) // a+(b+c) via a fresh intermediate
	bc := NewHistogram(1e-9)
	bc.Merge(b)
	bc.Merge(c)
	right.Merge(a)
	right.Merge(bc)

	ls, rs := left.Snapshot(), right.Snapshot()
	if ls.Count != rs.Count || ls.Sum != rs.Sum || ls.Max != rs.Max {
		t.Fatalf("merge scalars differ: (%d,%d,%d) vs (%d,%d,%d)",
			ls.Count, ls.Sum, ls.Max, rs.Count, rs.Sum, rs.Max)
	}
	if ls.Buckets != rs.Buckets {
		t.Fatal("merge bucket arrays differ between associations")
	}
	if want := a.Count() + b.Count() + c.Count(); ls.Count != want {
		t.Fatalf("merged count %d, want %d", ls.Count, want)
	}
}

// Snapshot deltas isolate a window: observing more after a snapshot and
// diffing must reproduce exactly the post-snapshot stream.
func TestHistogramSnapshotDelta(t *testing.T) {
	h := NewHistogram(1e-9)
	for i := uint64(1); i <= 1000; i++ {
		h.Observe(i * 37)
	}
	before := h.Snapshot()
	window := NewHistogram(1e-9)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 500; i++ {
		v := uint64(rng.Int63n(1 << 30))
		h.Observe(v)
		window.Observe(v)
	}
	delta := h.Snapshot().Delta(before)
	ws := window.Snapshot()
	if delta.Count != ws.Count || delta.Sum != ws.Sum {
		t.Fatalf("delta (%d,%d) != window (%d,%d)", delta.Count, delta.Sum, ws.Count, ws.Sum)
	}
	if delta.Buckets != ws.Buckets {
		t.Fatal("delta buckets differ from the isolated window's")
	}
	for _, q := range goldenQs {
		if dq, wq := delta.Quantile(q), ws.Quantile(q); relErr(dq, wq) > hdrTol {
			// The delta's Max is the running max (may predate the window),
			// so edges can differ by the clamp — but never beyond resolution.
			t.Errorf("delta p%g = %d vs window %d", 100*q, dq, wq)
		}
	}
}

// Property: under arbitrary observation streams the quantiles are
// monotone (p50 ≤ p90 ≤ p99 ≤ max), the max is exact, and CountAbove
// never exceeds the true exceedance count.
func TestHistogramQuantileMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(2000)
		h := NewHistogram(1e-9)
		var trueMax uint64
		values := make([]uint64, n)
		for i := 0; i < n; i++ {
			var v uint64
			switch rng.Intn(4) {
			case 0:
				v = uint64(rng.Intn(hdrSubCount)) // exact range
			case 1:
				v = uint64(rng.Int63n(1e3))
			case 2:
				v = uint64(rng.Int63n(1e9))
			default:
				v = rng.Uint64() >> uint(rng.Intn(64)) // full range
			}
			values[i] = v
			h.Observe(v)
			if v > trueMax {
				trueMax = v
			}
		}
		s := h.Snapshot()
		p50, p90, p99, p100 := s.Quantile(0.5), s.Quantile(0.9), s.Quantile(0.99), s.Quantile(1)
		if p50 > p90 || p90 > p99 || p99 > p100 {
			t.Fatalf("trial %d: quantiles not monotone: p50=%d p90=%d p99=%d p100=%d",
				trial, p50, p90, p99, p100)
		}
		if p100 != trueMax || s.Max != trueMax {
			t.Fatalf("trial %d: max %d (p100 %d), want exact %d", trial, s.Max, p100, trueMax)
		}
		threshold := s.Quantile(0.75)
		var trueAbove uint64
		for _, v := range values {
			if v > threshold {
				trueAbove++
			}
		}
		if above := s.CountAbove(threshold); above > trueAbove {
			t.Fatalf("trial %d: CountAbove(%d) = %d exceeds true %d", trial, threshold, above, trueAbove)
		}
	}
}

// Bucket mapping invariants: indices are contiguous, order-preserving,
// and every bucket's upper edge maps back into the bucket.
func TestHistogramBucketMapping(t *testing.T) {
	if got := bucketIndex(0); got != 0 {
		t.Fatalf("bucketIndex(0) = %d", got)
	}
	if got := bucketIndex(math.MaxUint64); got != hdrBuckets-1 {
		t.Fatalf("bucketIndex(MaxUint64) = %d, want %d", got, hdrBuckets-1)
	}
	for i := 0; i < hdrBuckets; i++ {
		u := bucketUpper(i)
		if bucketIndex(u) != i {
			t.Fatalf("bucketUpper(%d) = %d maps back to %d", i, u, bucketIndex(u))
		}
		if u < math.MaxUint64 && bucketIndex(u+1) != i+1 {
			t.Fatalf("edge %d+1 maps to %d, want %d", u, bucketIndex(u+1), i+1)
		}
	}
	// Spot-check order preservation across a sweep of magnitudes.
	prev := -1
	for v := uint64(1); v != 0 && v < 1<<62; v = v*3 + 1 {
		idx := bucketIndex(v)
		if idx < prev {
			t.Fatalf("bucketIndex not monotone at %d", v)
		}
		prev = idx
	}
}

// Labeled histogram series must expose spliced labels with cumulative
// le buckets and consistent _sum/_count, grouped under one TYPE header.
func TestPrometheusLabeledHistogram(t *testing.T) {
	reg := NewRegistry()
	agg := reg.Histogram("icicle_wait_seconds", "wait", 1e-9)
	c0 := reg.Histogram(LabeledName("icicle_wait_seconds", "class", "0"), "wait", 1e-9)
	for i := 0; i < 10; i++ {
		agg.Observe(1000)
		c0.Observe(1000)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Count(out, "# TYPE icicle_wait_seconds histogram") != 1 {
		t.Fatalf("TYPE header not emitted exactly once:\n%s", out)
	}
	for _, want := range []string{
		`icicle_wait_seconds_bucket{le="+Inf"} 10`,
		`icicle_wait_seconds_bucket{class="0",le="+Inf"} 10`,
		`icicle_wait_seconds_count{class="0"} 10`,
		`icicle_wait_seconds_sum{class="0"}`,
		"icicle_wait_seconds_count 10",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// The scrape client round-trips it: quantiles survive render+parse.
	sc, err := ParsePrometheus(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	h := sc.Hist(`icicle_wait_seconds{class="0"}`)
	if h == nil {
		t.Fatalf("scrape lost the labeled series; have %v", sc.HistsWithPrefix("icicle_wait_seconds"))
	}
	if h.Count != 10 {
		t.Fatalf("scraped count = %v", h.Count)
	}
	q := h.Quantile(0.5)
	if q < 900e-9 || q > 1100e-9 {
		t.Fatalf("scraped p50 = %g s, want ≈1µs", q)
	}
}

// Scrape deltas: two captures of a moving registry isolate the window.
func TestScrapeDelta(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("icicle_jobs_total", "jobs")
	h := reg.Histogram("icicle_lat_seconds", "lat", 1e-9)
	c.Add(5)
	h.Observe(500)
	s1, err := ScrapeRegistry(reg)
	if err != nil {
		t.Fatal(err)
	}
	c.Add(7)
	h.Observe(2000)
	h.Observe(2000)
	s2, err := ScrapeRegistry(reg)
	if err != nil {
		t.Fatal(err)
	}
	d := s2.Delta(s1)
	if got := d.Value("icicle_jobs_total"); got != 7 {
		t.Fatalf("counter delta = %g, want 7", got)
	}
	dh := d.Hist("icicle_lat_seconds")
	if dh == nil || dh.Count != 2 {
		t.Fatalf("hist delta count = %+v, want 2", dh)
	}
	q := dh.Quantile(0.5)
	if q < 1800e-9 || q > 2200e-9 {
		t.Fatalf("delta p50 = %g s, want ≈2µs", q)
	}
}
