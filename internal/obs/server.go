package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// Progress is the live sweep status served at /progress and printed by the
// -progress ticker: the host-side equivalent of a perf top for the
// evaluation pipeline.
type Progress struct {
	Done       uint64  `json:"done"`       // jobs completed
	Total      uint64  `json:"total"`      // jobs submitted so far
	CacheHits  uint64  `json:"cache_hits"` // jobs served from the memo cache
	HitRate    float64 `json:"hit_rate"`   // cache hits / jobs
	SimsPerSec float64 `json:"sims_per_sec"`
	ElapsedSec float64 `json:"elapsed_sec"`
	ETASec     float64 `json:"eta_sec"` // 0 when unknown or done
}

// String renders a one-line human summary.
func (p Progress) String() string {
	pct := 0.0
	if p.Total > 0 {
		pct = 100 * float64(p.Done) / float64(p.Total)
	}
	s := fmt.Sprintf("%d/%d jobs (%.0f%%), %.0f%% cache hits, %.1f sims/s",
		p.Done, p.Total, pct, 100*p.HitRate, p.SimsPerSec)
	if p.ETASec > 0 {
		s += fmt.Sprintf(", ETA %s", (time.Duration(p.ETASec * float64(time.Second))).Round(time.Second))
	}
	return s
}

// Server is the live introspection endpoint (-listen): expvar JSON at
// /debug/vars, Prometheus text at /metrics, the full net/http/pprof suite
// at /debug/pprof/, and sweep progress at /progress.
type Server struct {
	reg      *Registry
	progress func() Progress
	srv      *http.Server
	ln       net.Listener
}

// NewServer builds a server over reg. progress may be nil (the /progress
// endpoint then reports zeros).
func NewServer(reg *Registry, progress func() Progress) *Server {
	return &Server{reg: reg, progress: progress}
}

// expvar publication: one "icicle" var backed by whichever registry the
// most recent server was built over. expvar.Publish panics on duplicates,
// hence the Once + indirection.
var (
	expvarOnce sync.Once
	expvarReg  atomic.Pointer[Registry]
)

func publishExpvar(reg *Registry) {
	expvarReg.Store(reg)
	expvarOnce.Do(func() {
		expvar.Publish("icicle", expvar.Func(func() any {
			return expvarReg.Load().Snapshot()
		}))
	})
}

// Handler returns the server's routes (also used directly by tests).
func (s *Server) Handler() http.Handler {
	publishExpvar(s.reg)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.reg.WritePrometheus(w)
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, _ *http.Request) {
		var p Progress
		if s.progress != nil {
			p = s.progress()
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(p)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintf(w, "icicle introspection\n\n/metrics\n/progress\n/debug/vars\n/debug/pprof/\n")
	})
	return mux
}

// Start listens on addr (e.g. ":6060", "127.0.0.1:0") and serves in a
// background goroutine, returning the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.Handler()}
	go s.srv.Serve(ln)
	return ln.Addr().String(), nil
}

// Close stops the listener. Nil- and not-started-safe.
func (s *Server) Close() error {
	if s == nil || s.srv == nil {
		return nil
	}
	return s.srv.Close()
}
