package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// The introspection endpoints must stay consistent while the registry is
// being mutated underneath them: new metrics appearing mid-scrape, values
// racing with the exposition writer. Run under -race this doubles as a
// locking proof for the registry's snapshot path.
func TestServerScrapeUnderConcurrentMutation(t *testing.T) {
	reg := NewRegistry()
	srv := NewServer(reg, func() Progress {
		return Progress{Done: reg.Counter("mut_done_total", "x").Value()}
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const writers, scrapes = 4, 25
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Mix of re-registering existing names and minting new
				// ones, plus value churn — everything a live sweep does.
				reg.Counter("mut_done_total", "x").Inc()
				reg.Counter(fmt.Sprintf("mut_w%d_c%d_total", w, i%17), "churn").Add(uint64(i))
				reg.Gauge(fmt.Sprintf("mut_w%d_gauge", w), "churn").Set(int64(i))
				reg.Histogram(fmt.Sprintf("mut_w%d_hist", w), "churn", 1).Observe(uint64(i))
			}
		}(w)
	}

	for i := 0; i < scrapes; i++ {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("scrape %d: status %d, err %v", i, resp.StatusCode, err)
		}
		// Every scrape must be well-formed exposition: non-comment lines
		// are "name value" pairs, and every sample has a HELP line.
		text := string(body)
		if !strings.Contains(text, "# HELP") {
			t.Fatalf("scrape %d: no HELP lines:\n%s", i, text)
		}
		for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			if len(strings.Fields(line)) != 2 {
				t.Fatalf("scrape %d: malformed sample line %q", i, line)
			}
		}

		presp, err := http.Get(ts.URL + "/progress")
		if err != nil {
			t.Fatal(err)
		}
		var p Progress
		err = json.NewDecoder(presp.Body).Decode(&p)
		presp.Body.Close()
		if err != nil {
			t.Fatalf("progress scrape %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
}

// Start on a busy port must fail fast and synchronously — a CLI given a
// bad -listen address should exit with a clear error, not limp along with
// a dead introspection server.
func TestServerStartBusyPortFailsFast(t *testing.T) {
	first := NewServer(NewRegistry(), nil)
	addr, err := first.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()

	second := NewServer(NewRegistry(), nil)
	if _, err := second.Start(addr); err == nil {
		second.Close()
		t.Fatalf("Start on busy %s succeeded, want synchronous error", addr)
	} else if !strings.Contains(err.Error(), "address already in use") &&
		!strings.Contains(err.Error(), "bind") {
		t.Fatalf("busy-port error not actionable: %v", err)
	}
}

// Start on an unresolvable address errors rather than panicking, and
// Close is safe on a server that never started.
func TestServerStartBadAddr(t *testing.T) {
	srv := NewServer(NewRegistry(), nil)
	if _, err := srv.Start("definitely-not-a-host:99999"); err == nil {
		t.Fatal("Start on a bogus address succeeded")
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close on never-started server: %v", err)
	}
}

// A nil progress source serves zeros, not a 500 or a panic.
func TestServerNilProgressSource(t *testing.T) {
	srv := NewServer(NewRegistry(), nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/progress with nil source = %d", resp.StatusCode)
	}
	var p Progress
	if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
		t.Fatal(err)
	}
	if p.Done != 0 || p.Total != 0 {
		t.Fatalf("nil source progress = %+v, want zeros", p)
	}
}
