package obs

import (
	"sync"
	"sync/atomic"
)

// The process-wide default registry and tracer. The registry is always-on
// (counters are a few atomic words; the shared sim runner registers into
// it so /metrics works without setup). The tracer is opt-in: it buffers
// every span in memory, so it only exists once EnableTracing is called
// (the -trace-span-out flag), and Tracing returns nil until then — which
// every instrumentation point tolerates.
var (
	defaultMu  sync.Mutex
	defaultReg *Registry
	defaultTr  atomic.Pointer[Tracer]
)

// Default returns the process-wide registry, creating it on first use.
func Default() *Registry {
	defaultMu.Lock()
	defer defaultMu.Unlock()
	if defaultReg == nil {
		defaultReg = NewRegistry()
	}
	return defaultReg
}

// Tracing returns the process-wide tracer, or nil when tracing is
// disabled. Nil flows safely into every Tracer method.
func Tracing() *Tracer { return defaultTr.Load() }

// EnableTracing creates the process-wide tracer (idempotent) and returns
// it. The trace timeline starts at the first call.
func EnableTracing() *Tracer {
	if t := defaultTr.Load(); t != nil {
		return t
	}
	t := NewTracer()
	if !defaultTr.CompareAndSwap(nil, t) {
		return defaultTr.Load()
	}
	return t
}
