package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// traceEvent is one Chrome trace-event (the JSON array format Perfetto and
// about://tracing load). Timestamps and durations are microseconds
// relative to the tracer's start.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   uint64         `json:"id,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// tracePid is the single synthetic process all events belong to.
const tracePid = 1

// Arg is one key/value attached to a span or instant.
type Arg struct {
	Key string
	Val any
}

func argMap(args []Arg) map[string]any {
	if len(args) == 0 {
		return nil
	}
	m := make(map[string]any, len(args))
	for _, a := range args {
		m[a.Key] = a.Val
	}
	return m
}

// Tracer collects trace events in memory and serializes them as Chrome
// trace-event JSON. All methods are safe for concurrent use and nil-safe:
// every call on a nil *Tracer is a no-op, so instrumentation points cost a
// single pointer test when tracing is off.
type Tracer struct {
	start time.Time

	mu     sync.Mutex
	events []traceEvent
	named  map[int]bool // tids with thread_name metadata already emitted
}

// NewTracer returns a tracer whose timeline starts now.
func NewTracer() *Tracer {
	return &Tracer{start: time.Now(), named: map[int]bool{}}
}

// us converts an absolute time to trace microseconds.
func (t *Tracer) us(at time.Time) float64 {
	return float64(at.Sub(t.start)) / float64(time.Microsecond)
}

func (t *Tracer) append(e traceEvent) {
	t.mu.Lock()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// NameThread labels a tid's track ("worker-3", "queue", ...).
func (t *Tracer) NameThread(tid int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.named[tid] {
		t.mu.Unlock()
		return
	}
	t.named[tid] = true
	t.events = append(t.events, traceEvent{
		Name: "thread_name", Ph: "M", Pid: tracePid, Tid: tid,
		Args: map[string]any{"name": name},
	})
	t.mu.Unlock()
}

// Span is an open duration event; close it with End. The zero Span (from a
// nil tracer) is valid and End on it is a no-op.
type Span struct {
	t     *Tracer
	name  string
	cat   string
	tid   int
	begin time.Time
}

// Begin opens a span on the tid's track. Nil-safe.
func (t *Tracer) Begin(name, cat string, tid int) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, name: name, cat: cat, tid: tid, begin: time.Now()}
}

// End closes the span as a complete ("X") event, attaching args.
func (s Span) End(args ...Arg) {
	if s.t == nil {
		return
	}
	s.t.Complete(s.name, s.cat, s.tid, s.begin, time.Since(s.begin), args...)
}

// Complete records a finished duration event with explicit start and
// duration. Nil-safe.
func (t *Tracer) Complete(name, cat string, tid int, start time.Time, d time.Duration, args ...Arg) {
	if t == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	t.append(traceEvent{
		Name: name, Cat: cat, Ph: "X",
		Ts: t.us(start), Dur: float64(d) / float64(time.Microsecond),
		Pid: tracePid, Tid: tid, Args: argMap(args),
	})
}

// Async records an async ("b"/"e") interval. Async events render on their
// own track per (cat, id), which is how overlapping queue waits are shown
// without fighting the thread tracks' nesting rules. Nil-safe.
func (t *Tracer) Async(name, cat string, id uint64, start, end time.Time, args ...Arg) {
	if t == nil {
		return
	}
	if end.Before(start) {
		end = start
	}
	t.append(traceEvent{
		Name: name, Cat: cat, Ph: "b", Ts: t.us(start),
		Pid: tracePid, Tid: 0, ID: id, Args: argMap(args),
	})
	t.append(traceEvent{
		Name: name, Cat: cat, Ph: "e", Ts: t.us(end),
		Pid: tracePid, Tid: 0, ID: id,
	})
}

// Instant records a zero-duration marker on the tid's track. Nil-safe.
func (t *Tracer) Instant(name, cat string, tid int, args ...Arg) {
	if t == nil {
		return
	}
	t.append(traceEvent{
		Name: name, Cat: cat, Ph: "i", Ts: t.us(time.Now()),
		Pid: tracePid, Tid: tid, Args: argMap(args),
	})
}

// Counter records one sample of a counter track at an absolute host time.
// Each distinct track name renders as its own counter lane in Perfetto;
// series is the key within that lane (the temporal-TMA bridge uses one
// series per track). Nil-safe.
func (t *Tracer) Counter(track, series string, at time.Time, v float64) {
	if t == nil {
		return
	}
	t.CounterUS(track, series, t.us(at), v)
}

// CounterUS is Counter with an explicit trace timestamp in microseconds —
// for synthetic timelines (simulated cycles mapped onto a host span).
// Nil-safe.
func (t *Tracer) CounterUS(track, series string, us float64, v float64) {
	if t == nil {
		return
	}
	if us < 0 {
		us = 0
	}
	t.append(traceEvent{
		Name: track, Cat: "counter", Ph: "C", Ts: us,
		Pid: tracePid, Tid: 0, Args: map[string]any{series: v},
	})
}

// US returns the current trace timestamp in microseconds (0 on nil).
func (t *Tracer) US(at time.Time) float64 {
	if t == nil {
		return 0
	}
	return t.us(at)
}

// Events returns the number of recorded events (0 on nil).
func (t *Tracer) Events() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// traceFile is the on-disk shape: the JSON object format with
// displayTimeUnit, which both Perfetto and about://tracing accept.
type traceFile struct {
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	TraceEvents     []traceEvent `json:"traceEvents"`
}

// WriteJSON serializes the trace as Chrome trace-event JSON. Nil-safe: a
// nil tracer writes an empty, still-valid trace.
func (t *Tracer) WriteJSON(w io.Writer) error {
	file := traceFile{DisplayTimeUnit: "ms", TraceEvents: []traceEvent{}}
	if t != nil {
		t.mu.Lock()
		file.TraceEvents = make([]traceEvent, len(t.events))
		copy(file.TraceEvents, t.events)
		t.mu.Unlock()
		// Process metadata makes the Perfetto track header readable.
		file.TraceEvents = append([]traceEvent{{
			Name: "process_name", Ph: "M", Pid: tracePid, Tid: 0,
			Args: map[string]any{"name": "icicle"},
		}}, file.TraceEvents...)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(file)
}
