package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
)

// LineWriter serializes whole lines from many goroutines through one
// writer goroutine, so concurrent workers' progress output is never torn
// mid-line (interleaved fragments were exactly what icicle-bench -v used
// to print). A nil *LineWriter discards output.
type LineWriter struct {
	mu     sync.Mutex
	ch     chan string
	closed bool
	done   chan struct{}
}

// NewLineWriter starts the writer goroutine. Close flushes and stops it.
func NewLineWriter(w io.Writer) *LineWriter {
	l := &LineWriter{ch: make(chan string, 256), done: make(chan struct{})}
	go func() {
		defer close(l.done)
		for s := range l.ch {
			io.WriteString(w, s)
		}
	}()
	return l
}

// Printf formats one line (a trailing newline is added if missing) and
// queues it for the writer goroutine. Nil-safe; a closed writer discards.
func (l *LineWriter) Printf(format string, args ...any) {
	if l == nil {
		return
	}
	s := fmt.Sprintf(format, args...)
	if !strings.HasSuffix(s, "\n") {
		s += "\n"
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.ch <- s
}

// Close drains pending lines and stops the goroutine. Safe to call more
// than once; nil-safe.
func (l *LineWriter) Close() {
	if l == nil {
		return
	}
	l.mu.Lock()
	if !l.closed {
		l.closed = true
		close(l.ch)
	}
	l.mu.Unlock()
	<-l.done
}
