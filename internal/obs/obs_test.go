package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	// Every disabled-mode handle must absorb its full API without
	// panicking — the cycle loops rely on this.
	var c *Counter
	c.Add(3)
	c.Inc()
	if c.Value() != 0 {
		t.Error("nil counter has a value")
	}
	var g *Gauge
	g.Set(5)
	g.Add(-2)
	if g.Value() != 0 {
		t.Error("nil gauge has a value")
	}
	var h *Histogram
	h.Observe(9)
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Error("nil histogram recorded")
	}
	var reg *Registry
	if reg.Counter("x", "") != nil || reg.Gauge("x", "") != nil || reg.Histogram("x", "", 1) != nil {
		t.Error("nil registry returned non-nil metric")
	}
	if err := reg.WritePrometheus(io.Discard); err != nil {
		t.Error(err)
	}
	var tr *Tracer
	sp := tr.Begin("x", "y", 0)
	sp.End()
	tr.Complete("x", "y", 0, time.Now(), time.Second)
	tr.Async("x", "y", 1, time.Now(), time.Now())
	tr.Counter("x", "v", time.Now(), 1)
	tr.CounterUS("x", "v", 10, 1)
	tr.Instant("x", "y", 0)
	tr.NameThread(1, "w")
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "displayTimeUnit") {
		t.Errorf("nil tracer wrote invalid trace: %s", buf.String())
	}
	var ct *CoreTelemetry
	ct.Add(100, 50)
	var lw *LineWriter
	lw.Printf("dropped")
	lw.Close()
}

func TestRegistryGetOrCreate(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("icicle_test_total", "help")
	b := reg.Counter("icicle_test_total", "help")
	if a != b {
		t.Fatal("re-registration returned a different counter")
	}
	a.Add(2)
	if b.Value() != 2 {
		t.Fatal("counters not shared")
	}
	defer func() {
		if recover() == nil {
			t.Error("kind mismatch did not panic")
		}
	}()
	reg.Gauge("icicle_test_total", "help")
}

func TestCounterConcurrent(t *testing.T) {
	c := NewCounter()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("value = %d, want 8000", c.Value())
	}
}

func TestHistogramBucketsAndQuantile(t *testing.T) {
	h := NewHistogram(1e-9)
	for _, v := range []uint64{0, 1, 2, 3, 100, 1000, 1 << 20} {
		h.Observe(v)
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 0+1+2+3+100+1000+1<<20 {
		t.Fatalf("sum = %d", h.Sum())
	}
	// p50 of {0,1,2,3,100,1000,2^20}: the 4th value (3) → bucket bound 3.
	if q := h.Quantile(0.5); q != 3 {
		t.Fatalf("p50 bound = %d, want 3", q)
	}
	if q := h.Quantile(1); q < 1<<20 {
		t.Fatalf("p100 bound = %d, want >= 2^20", q)
	}
}

func TestPrometheusExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("icicle_jobs_total", "jobs run").Add(7)
	reg.Gauge("icicle_inflight", "in-flight jobs").Set(3)
	h := reg.Histogram("icicle_latency_seconds", "job latency", 1e-9)
	h.Observe(1500)        // ~1.5µs
	h.Observe(3_000_000)   // 3ms
	h.Observe(250_000_000) // 250ms

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE icicle_jobs_total counter",
		"icicle_jobs_total 7",
		"# TYPE icicle_inflight gauge",
		"icicle_inflight 3",
		"# TYPE icicle_latency_seconds histogram",
		`icicle_latency_seconds_bucket{le="+Inf"} 3`,
		"icicle_latency_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Cumulative buckets must be non-decreasing and end at count.
	if !strings.Contains(out, "_bucket{le=") {
		t.Fatalf("no le buckets:\n%s", out)
	}
}

func TestTracerJSONShape(t *testing.T) {
	tr := NewTracer()
	tr.NameThread(1, "worker-1")
	sp := tr.Begin("job rocket|vvadd", "job", 1)
	time.Sleep(time.Millisecond)
	sp.End(Arg{"cached", false})
	tr.Async("queued", "queue", 42, tr.start, time.Now(), Arg{"key", "k"})
	tr.CounterUS("tma:fetch-bubbles", "weight", 100, 0.25)

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var file struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if file.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", file.DisplayTimeUnit)
	}
	var sawX, sawC, sawAsync bool
	for _, ev := range file.TraceEvents {
		for _, field := range []string{"ph", "pid", "tid", "ts", "name"} {
			if _, ok := ev[field]; !ok {
				t.Fatalf("event %v missing %q", ev, field)
			}
		}
		switch ev["ph"] {
		case "X":
			sawX = true
			if ev["dur"] == nil {
				t.Error("X event without dur")
			}
		case "C":
			sawC = true
		case "b":
			sawAsync = true
		}
	}
	if !sawX || !sawC || !sawAsync {
		t.Errorf("missing event kinds: X=%v C=%v async=%v", sawX, sawC, sawAsync)
	}
}

func TestServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("icicle_sim_jobs_total", "jobs").Add(10)
	srv := NewServer(reg, func() Progress {
		return Progress{Done: 4, Total: 10, CacheHits: 1, HitRate: 0.25, SimsPerSec: 2, ETASec: 3}
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string) string {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	if out := get("/metrics"); !strings.Contains(out, "icicle_sim_jobs_total 10") {
		t.Errorf("/metrics missing counter:\n%s", out)
	}
	var p Progress
	if err := json.Unmarshal([]byte(get("/progress")), &p); err != nil {
		t.Fatal(err)
	}
	if p.Done != 4 || p.Total != 10 {
		t.Errorf("progress = %+v", p)
	}
	if out := get("/debug/vars"); !strings.Contains(out, "icicle") {
		t.Errorf("/debug/vars missing icicle var:\n%s", out)
	}
	if out := get("/debug/pprof/cmdline"); out == "" {
		t.Error("pprof cmdline empty")
	}
	if out := get("/"); !strings.Contains(out, "/progress") {
		t.Errorf("index missing routes:\n%s", out)
	}
}

func TestLineWriterSerializesLines(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	lw := NewLineWriter(w)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				lw.Printf("worker %d line %d", i, j)
			}
		}(i)
	}
	wg.Wait()
	lw.Close()
	lw.Close() // idempotent
	lw.Printf("after close is discarded")

	mu.Lock()
	defer mu.Unlock()
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 8*50 {
		t.Fatalf("%d lines, want %d", len(lines), 8*50)
	}
	for _, ln := range lines {
		if !strings.HasPrefix(ln, "worker ") || !strings.Contains(ln, " line ") {
			t.Fatalf("torn line %q", ln)
		}
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestProgressString(t *testing.T) {
	p := Progress{Done: 5, Total: 10, HitRate: 0.5, SimsPerSec: 2.5, ETASec: 2}
	s := p.String()
	for _, want := range []string{"5/10", "50%", "2.5 sims/s", "ETA"} {
		if !strings.Contains(s, want) {
			t.Errorf("progress %q missing %q", s, want)
		}
	}
}

func TestDefaultTracing(t *testing.T) {
	// Tracing may already be enabled by another test; EnableTracing must
	// be idempotent either way.
	a := EnableTracing()
	b := EnableTracing()
	if a == nil || a != b {
		t.Fatal("EnableTracing not idempotent")
	}
	if Tracing() != a {
		t.Fatal("Tracing returned a different tracer")
	}
	if Default() == nil || Default() != Default() {
		t.Fatal("Default registry not a singleton")
	}
}
