package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// The histogram is HDR-style log-linear: every power-of-two range is
// split into hdrSubCount equal sub-buckets, so the relative error of any
// reconstructed value is bounded by 1/hdrSubCount (3.125% at 32
// sub-buckets) across the full uint64 range, while Observe stays a
// handful of branch-free integer ops on atomics. Values below
// hdrSubCount land in exact unit buckets. This is the same layout
// HdrHistogram and wrk2 use to report coordinated-omission-corrected
// latency, which is exactly what internal/load records into it.
const (
	hdrSubBits  = 5
	hdrSubCount = 1 << hdrSubBits // sub-buckets per power of two
	// hdrBuckets: hdrSubCount exact unit buckets, then hdrSubCount
	// sub-buckets for each major power 2^m, m in [hdrSubBits, 63].
	hdrBuckets = hdrSubCount + (64-hdrSubBits)*hdrSubCount
)

// bucketIndex maps a value to its bucket. Indices are contiguous and
// order-preserving: v <= w implies bucketIndex(v) <= bucketIndex(w).
func bucketIndex(v uint64) int {
	if v < hdrSubCount {
		return int(v)
	}
	m := bits.Len64(v) - 1 // hdrSubBits..63
	shift := uint(m - hdrSubBits)
	// v>>shift is in [hdrSubCount, 2*hdrSubCount), so indices run
	// contiguously from hdrSubCount upward.
	return (m-hdrSubBits)*hdrSubCount + int(v>>shift)
}

// bucketUpper returns the largest value mapping to bucket i (the
// inclusive upper edge used for quantile reconstruction).
func bucketUpper(i int) uint64 {
	if i < hdrSubCount {
		return uint64(i)
	}
	m := i/hdrSubCount + hdrSubBits - 1 // hdrSubBits..63 by construction
	s := uint64(i%hdrSubCount) + hdrSubCount
	hi := (s + 1) << uint(m-hdrSubBits)
	if hi == 0 { // 2^64: the top sub-bucket's edge overflows
		return math.MaxUint64
	}
	return hi - 1
}

// Histogram is a log-linear (HDR-style) distribution of uint64
// observations, typically nanoseconds. The hot path (Observe) is
// lock-free and allocation-free: a count, a sum, a CAS-maintained exact
// maximum, and one atomic bucket increment. The zero value is usable but
// renders raw values; construct with NewHistogram to set the exposition
// scale. A nil *Histogram discards observations.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
	buckets [hdrBuckets]atomic.Uint64
	scale   float64 // multiplier applied at exposition (1e-9: ns → s)
}

// NewHistogram returns a standalone histogram whose Prometheus exposition
// multiplies bucket bounds and the sum by scale (pass 1e-9 to observe
// nanoseconds and expose seconds; 0 means 1).
func NewHistogram(scale float64) *Histogram { return &Histogram{scale: scale} }

// Observe records one value. Nil-safe, lock-free, alloc-free.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketIndex(v)].Add(1)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the raw (unscaled) observation total.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Max returns the exact largest observed value (0 with no observations).
func (h *Histogram) Max() uint64 {
	if h == nil {
		return 0
	}
	return h.max.Load()
}

// Scale returns the exposition scale (1 when unset).
func (h *Histogram) Scale() float64 {
	if h == nil {
		return 1
	}
	return h.effScale()
}

func (h *Histogram) effScale() float64 {
	if h.scale == 0 {
		return 1
	}
	return h.scale
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the raw observed
// values, exact to the sub-bucket resolution (≤1/32 relative error) and
// clamped to the exact observed maximum. Returns 0 with no observations.
func (h *Histogram) Quantile(q float64) uint64 {
	if h == nil {
		return 0
	}
	s := h.Snapshot()
	return s.Quantile(q)
}

// Merge adds every bucket, the count, and the sum of o into h and raises
// h's max to o's. Both histograms stay usable; concurrent Observes on
// either are safe (the merge is atomic per field, not as a whole).
func (h *Histogram) Merge(o *Histogram) {
	if h == nil || o == nil {
		return
	}
	h.count.Add(o.count.Load())
	h.sum.Add(o.sum.Load())
	for i := range o.buckets {
		if n := o.buckets[i].Load(); n > 0 {
			h.buckets[i].Add(n)
		}
	}
	om := o.max.Load()
	for {
		cur := h.max.Load()
		if om <= cur || h.max.CompareAndSwap(cur, om) {
			return
		}
	}
}

// Snapshot captures a point-in-time copy of the distribution for
// delta/quantile work off the hot path. Nil-safe (returns an empty
// snapshot).
func (h *Histogram) Snapshot() *HistogramSnapshot {
	s := &HistogramSnapshot{}
	if h == nil {
		return s
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	s.Scale = h.effScale()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistogramSnapshot is an immutable copy of a Histogram's state. Deltas
// between two snapshots of the same histogram isolate one measurement
// window (internal/load uses this for steady-state trimming: final
// snapshot minus the warm-up boundary snapshot).
type HistogramSnapshot struct {
	Count   uint64
	Sum     uint64
	Max     uint64 // running max at snapshot time (not per-window)
	Scale   float64
	Buckets [hdrBuckets]uint64
}

// Delta returns s minus prev, bucket by bucket. Max carries s's running
// maximum — an upper bound on the window maximum, and exact whenever the
// overall maximum occurred inside the window. prev may be nil (the delta
// is then s itself).
func (s *HistogramSnapshot) Delta(prev *HistogramSnapshot) *HistogramSnapshot {
	out := &HistogramSnapshot{Count: s.Count, Sum: s.Sum, Max: s.Max, Scale: s.Scale}
	out.Buckets = s.Buckets
	if prev != nil {
		out.Count -= prev.Count
		out.Sum -= prev.Sum
		for i := range out.Buckets {
			out.Buckets[i] -= prev.Buckets[i]
		}
	}
	return out
}

// Merge adds o's window into s (count, sum, buckets; max is the larger).
func (s *HistogramSnapshot) Merge(o *HistogramSnapshot) {
	if o == nil {
		return
	}
	s.Count += o.Count
	s.Sum += o.Sum
	if o.Max > s.Max {
		s.Max = o.Max
	}
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
}

// Quantile returns the q-quantile of the snapshot, exact to the
// sub-bucket resolution and clamped to the recorded maximum (so a
// point-mass distribution reports its exact value, and Quantile(1) ==
// Max for any stream that contains its own maximum).
func (s *HistogramSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i := range s.Buckets {
		cum += s.Buckets[i]
		if cum >= rank {
			v := bucketUpper(i)
			if s.Max > 0 && v > s.Max {
				return s.Max
			}
			return v
		}
	}
	return s.Max
}

// CountAbove returns the number of observations recorded in buckets
// entirely above v: a lower bound within one sub-bucket (≤3.125%
// relative) of the true count of observations > v. This is the SLO
// burn-rate numerator in internal/load.
func (s *HistogramSnapshot) CountAbove(v uint64) uint64 {
	var above uint64
	for i := bucketIndex(v) + 1; i < hdrBuckets; i++ {
		above += s.Buckets[i]
	}
	return above
}

// Mean returns the average raw value (0 with no observations).
func (s *HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}
