package obs

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"
)

// CLI is the shared telemetry flag wiring for the icicle-* binaries: every
// tool grows the same four flags (-metrics-out, -trace-span-out, -listen,
// -progress) by embedding one CLI, calling AddFlags before flag.Parse,
// Start after it, and Stop on the way out.
type CLI struct {
	MetricsOut string // write Prometheus text exposition here at exit
	SpanOut    string // write Chrome trace-event JSON here at exit
	Listen     string // serve live introspection on this address
	Progress   bool   // print a progress line to stderr every interval

	// ProgressSource feeds the /progress endpoint and the -progress
	// ticker; set it before Start (nil disables both with zeros).
	ProgressSource func() Progress

	// ProgressInterval defaults to 2s.
	ProgressInterval time.Duration

	program string
	server  *Server
	ticker  *time.Ticker
	stop    chan struct{}
	lines   *LineWriter
}

// AddFlags registers the telemetry flags on fs (flag.CommandLine in the
// binaries).
func (c *CLI) AddFlags(fs *flag.FlagSet) {
	fs.StringVar(&c.MetricsOut, "metrics-out", "", "write Prometheus text metrics to this file at exit")
	fs.StringVar(&c.SpanOut, "trace-span-out", "", "write a Chrome/Perfetto trace of the host-side pipeline to this file at exit")
	fs.StringVar(&c.Listen, "listen", "", "serve live introspection (expvar, /metrics, pprof, /progress) on this address, e.g. :6060")
	fs.BoolVar(&c.Progress, "progress", false, "print sweep progress to stderr while running")
}

// Start applies the parsed flags: enables span tracing, starts the
// introspection server, and starts the progress printer. Call after
// flag.Parse and before any simulation work (so the shared sim runner
// picks up the tracer).
func (c *CLI) Start(program string) error {
	c.program = program
	if c.SpanOut != "" {
		EnableTracing()
	}
	if c.Listen != "" {
		c.server = NewServer(Default(), c.ProgressSource)
		addr, err := c.server.Start(c.Listen)
		if err != nil {
			return fmt.Errorf("%s: -listen: %w", program, err)
		}
		fmt.Fprintf(os.Stderr, "%s: introspection server on http://%s (/metrics /progress /debug/pprof)\n", program, addr)
	}
	if c.Progress && c.ProgressSource != nil {
		iv := c.ProgressInterval
		if iv <= 0 {
			iv = 2 * time.Second
		}
		// The goroutine works on local copies: Stop nils the struct
		// fields, and the ticker may fire concurrently with it.
		lines := c.Lines()
		source := c.ProgressSource
		program := c.program
		ticker := time.NewTicker(iv)
		stop := make(chan struct{})
		c.ticker = ticker
		c.stop = stop
		go func() {
			for {
				select {
				case <-ticker.C:
					lines.Printf("%s: %s", program, source())
				case <-stop:
					return
				}
			}
		}()
	}
	return nil
}

// Lines returns the CLI's serialized stderr writer, creating it on first
// use — the single ordered sink for workers' verbose output.
func (c *CLI) Lines() *LineWriter {
	if c.lines == nil {
		c.lines = NewLineWriter(os.Stderr)
	}
	return c.lines
}

// Stop shuts the server and progress printer down and writes the
// -metrics-out / -trace-span-out files. Safe to call once at exit on
// every path.
func (c *CLI) Stop() error {
	if c.ticker != nil {
		c.ticker.Stop()
		close(c.stop)
		c.ticker = nil
	}
	if c.server != nil {
		c.server.Close()
		c.server = nil
	}
	var firstErr error
	if c.MetricsOut != "" {
		if err := writeFileWith(c.MetricsOut, Default().WritePrometheus); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("-metrics-out: %w", err)
		}
	}
	if c.SpanOut != "" {
		if err := writeFileWith(c.SpanOut, Tracing().WriteJSON); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("-trace-span-out: %w", err)
		}
	}
	if c.lines != nil {
		c.lines.Close()
		c.lines = nil
	}
	return firstErr
}

func writeFileWith(path string, render func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := render(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
