package obs

// CoreTelemetry is the nil-safe handle a simulated core's cycle loop
// publishes throughput through: cycles simulated and instructions retired,
// as process-wide counters a scraper turns into rates (host-side
// cycles/sec and retired-insts/sec). Cores accumulate locally in fields
// they already maintain and flush deltas periodically, so the enabled cost
// is two atomic adds every flush interval, and the disabled cost (nil
// handle) is one pointer test per flush check — zero allocations either
// way, which alloc_test.go pins.
type CoreTelemetry struct {
	Cycles *Counter // cycles simulated
	Insts  *Counter // instructions retired
}

// NewCoreTelemetry returns a standalone (unregistered) handle.
func NewCoreTelemetry() *CoreTelemetry {
	return &CoreTelemetry{Cycles: NewCounter(), Insts: NewCounter()}
}

// CoreTelemetryIn registers the handle's counters in reg under
// icicle_<core>_cycles_simulated_total / icicle_<core>_insts_retired_total.
// A nil registry yields a handle with nil counters (updates discarded) —
// callers that want true disabled mode should pass a nil *CoreTelemetry
// instead.
func CoreTelemetryIn(reg *Registry, core string) *CoreTelemetry {
	return &CoreTelemetry{
		Cycles: reg.Counter("icicle_"+core+"_cycles_simulated_total",
			"cycles simulated on the "+core+" timing model"),
		Insts: reg.Counter("icicle_"+core+"_insts_retired_total",
			"instructions retired on the "+core+" timing model"),
	}
}

// TelemetryFlushInterval is how often (in cycles) an instrumented core
// flushes its local throughput deltas to the shared counters: frequent
// enough that a multi-minute sweep's live rates track reality, rare
// enough that the two atomic adds never show up in a profile.
const TelemetryFlushInterval = 1 << 14

// Add publishes a (cycles, insts) delta. Nil-safe, alloc-free.
func (t *CoreTelemetry) Add(cycles, insts uint64) {
	if t == nil {
		return
	}
	t.Cycles.Add(cycles)
	t.Insts.Add(insts)
}
