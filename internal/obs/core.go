package obs

// CoreTelemetry is the nil-safe handle a simulated core's cycle loop
// publishes throughput through: cycles simulated and instructions retired,
// as process-wide counters a scraper turns into rates (host-side
// cycles/sec and retired-insts/sec). Cores accumulate locally in fields
// they already maintain and flush deltas periodically, so the enabled cost
// is two atomic adds every flush interval, and the disabled cost (nil
// handle) is one pointer test per flush check — zero allocations either
// way, which alloc_test.go pins.
type CoreTelemetry struct {
	Cycles *Counter // cycles simulated
	Insts  *Counter // instructions retired

	// Event-driven skip accounting: cycles the detailed loop advanced in
	// bulk instead of stepping (a subset of Cycles), and how many skip
	// jumps produced them. skipped/cycles is the live quiescence ratio.
	SkippedCycles *Counter
	SkipEvents    *Counter
}

// NewCoreTelemetry returns a standalone (unregistered) handle.
func NewCoreTelemetry() *CoreTelemetry {
	return &CoreTelemetry{
		Cycles:        NewCounter(),
		Insts:         NewCounter(),
		SkippedCycles: NewCounter(),
		SkipEvents:    NewCounter(),
	}
}

// CoreTelemetryIn registers the handle's counters in reg under
// icicle_<core>_cycles_simulated_total / icicle_<core>_insts_retired_total,
// plus the shared skip series icicle_core_skipped_cycles_total /
// icicle_core_skip_events_total labeled by core. A nil registry yields a
// handle with nil counters (updates discarded) — callers that want true
// disabled mode should pass a nil *CoreTelemetry instead.
func CoreTelemetryIn(reg *Registry, core string) *CoreTelemetry {
	return &CoreTelemetry{
		Cycles: reg.Counter("icicle_"+core+"_cycles_simulated_total",
			"cycles simulated on the "+core+" timing model"),
		Insts: reg.Counter("icicle_"+core+"_insts_retired_total",
			"instructions retired on the "+core+" timing model"),
		SkippedCycles: reg.Counter(LabeledName("icicle_core_skipped_cycles_total", "core", core),
			"detailed cycles advanced in bulk by the event-driven skip path"),
		SkipEvents: reg.Counter(LabeledName("icicle_core_skip_events_total", "core", core),
			"quiescent-stretch jumps taken by the event-driven skip path"),
	}
}

// TelemetryFlushInterval is how often (in cycles) an instrumented core
// flushes its local throughput deltas to the shared counters: frequent
// enough that a multi-minute sweep's live rates track reality, rare
// enough that the two atomic adds never show up in a profile.
const TelemetryFlushInterval = 1 << 14

// Add publishes a (cycles, insts) delta. Nil-safe, alloc-free.
func (t *CoreTelemetry) Add(cycles, insts uint64) {
	if t == nil {
		return
	}
	t.Cycles.Add(cycles)
	t.Insts.Add(insts)
}

// AddSkip publishes a (skipped cycles, skip events) delta. Nil-safe,
// alloc-free; handles predating the skip counters (zero-value struct
// literals) are tolerated via the counters' own nil-safety.
func (t *CoreTelemetry) AddSkip(cycles, events uint64) {
	if t == nil {
		return
	}
	t.SkippedCycles.Add(cycles)
	t.SkipEvents.Add(events)
}
