package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"
)

// The scrape client is the read side of the registry's Prometheus text
// exposition: icicle-load scrapes an icicle-serve /metrics endpoint
// before and after each load step and diffs the two captures, so one
// report can put client-observed latency next to the server's own
// queue-wait histograms and store/memo hit counters. It parses the
// subset of the text format the registry emits (and any other exporter's
// counters/gauges/histograms with simple label sets).

// ScrapedBucket is one cumulative histogram bucket: observations ≤ LE
// (in the exposition's scaled units, typically seconds).
type ScrapedBucket struct {
	LE  float64 // inclusive upper bound; math.Inf(1) for +Inf
	Cum float64 // cumulative count
}

// ScrapedHistogram is one histogram series reassembled from its
// _bucket/_sum/_count lines.
type ScrapedHistogram struct {
	Buckets []ScrapedBucket // ascending LE, +Inf last
	Sum     float64
	Count   float64
}

// Quantile reconstructs the q-quantile from the cumulative buckets the
// way Prometheus' histogram_quantile does: the upper edge of the bucket
// the rank falls into (so resolution is whatever the exposition carried
// — the registry emits every non-empty sub-bucket edge, ≤3.125%
// relative error). Returns 0 with no observations.
func (h *ScrapedHistogram) Quantile(q float64) float64 {
	if h == nil || h.Count <= 0 || len(h.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := math.Ceil(q * h.Count)
	if rank < 1 {
		rank = 1
	}
	for _, b := range h.Buckets {
		if b.Cum >= rank {
			if math.IsInf(b.LE, 1) {
				// Only the +Inf bucket covers the rank: report the last
				// finite edge (everything beyond it is unbounded).
				for i := len(h.Buckets) - 1; i >= 0; i-- {
					if !math.IsInf(h.Buckets[i].LE, 1) {
						return h.Buckets[i].LE
					}
				}
				return 0
			}
			return b.LE
		}
	}
	return h.Buckets[len(h.Buckets)-1].LE
}

// Delta returns h minus prev (per-LE cumulative counts, sum, count),
// isolating one measurement window of a live histogram. Buckets present
// only in prev are ignored; buckets new in h keep their full counts.
// prev may be nil.
func (h *ScrapedHistogram) Delta(prev *ScrapedHistogram) *ScrapedHistogram {
	out := &ScrapedHistogram{Sum: h.Sum, Count: h.Count}
	out.Buckets = append([]ScrapedBucket(nil), h.Buckets...)
	if prev == nil {
		return out
	}
	out.Sum -= prev.Sum
	out.Count -= prev.Count
	pv := map[float64]float64{}
	for _, b := range prev.Buckets {
		pv[b.LE] = b.Cum
	}
	for i := range out.Buckets {
		out.Buckets[i].Cum -= pv[out.Buckets[i].LE]
	}
	return out
}

// Scraped is one parsed /metrics capture.
type Scraped struct {
	// Values holds every plain sample (counters, gauges) keyed by the
	// full series name including its label body, exactly as exposed.
	Values map[string]float64
	// Hists holds reassembled histograms keyed by the series name with
	// the le label stripped (base name plus any other labels).
	Hists map[string]*ScrapedHistogram
}

// Value returns a plain sample (0 when absent).
func (s *Scraped) Value(name string) float64 {
	if s == nil {
		return 0
	}
	return s.Values[name]
}

// Hist returns a histogram series (nil when absent).
func (s *Scraped) Hist(name string) *ScrapedHistogram {
	if s == nil {
		return nil
	}
	return s.Hists[name]
}

// HistsWithPrefix returns the keys of every histogram series whose key
// starts with prefix, sorted — how icicle-load discovers the per-class
// queue-wait series without knowing the class set up front.
func (s *Scraped) HistsWithPrefix(prefix string) []string {
	if s == nil {
		return nil
	}
	var keys []string
	for k := range s.Hists {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// Delta returns s minus prev for every plain value and histogram —
// counters become per-window increments; gauges become (mostly
// meaningless) differences, so read gauges from s directly when you need
// levels. prev may be nil.
func (s *Scraped) Delta(prev *Scraped) *Scraped {
	out := &Scraped{Values: map[string]float64{}, Hists: map[string]*ScrapedHistogram{}}
	for k, v := range s.Values {
		if prev != nil {
			v -= prev.Values[k]
		}
		out.Values[k] = v
	}
	for k, h := range s.Hists {
		var ph *ScrapedHistogram
		if prev != nil {
			ph = prev.Hists[k]
		}
		out.Hists[k] = h.Delta(ph)
	}
	return out
}

// ParsePrometheus parses a text exposition (version 0.0.4). Lines it
// cannot interpret are skipped rather than fatal — scrapes should
// degrade, not abort, on exporter quirks. An error is returned only when
// reading fails.
func ParsePrometheus(r io.Reader) (*Scraped, error) {
	s := &Scraped{Values: map[string]float64{}, Hists: map[string]*ScrapedHistogram{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, value, ok := splitSample(line)
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			continue
		}
		base, labels := splitName(name)
		switch {
		case strings.HasSuffix(base, "_bucket"):
			le, rest, ok := extractLE(labels)
			if !ok {
				s.Values[name] = v
				continue
			}
			key := joinName(strings.TrimSuffix(base, "_bucket"), rest)
			h := histAt(s, key)
			h.Buckets = append(h.Buckets, ScrapedBucket{LE: le, Cum: v})
		case strings.HasSuffix(base, "_sum"):
			histAt(s, joinName(strings.TrimSuffix(base, "_sum"), labels)).Sum = v
			s.Values[name] = v
		case strings.HasSuffix(base, "_count"):
			histAt(s, joinName(strings.TrimSuffix(base, "_count"), labels)).Count = v
			s.Values[name] = v
		default:
			s.Values[name] = v
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, h := range s.Hists {
		sort.Slice(h.Buckets, func(i, j int) bool { return h.Buckets[i].LE < h.Buckets[j].LE })
	}
	return s, nil
}

// splitSample splits "name{labels} value [timestamp]" at the sample
// boundary, keeping the label body (which may contain spaces inside
// quoted values) with the name.
func splitSample(line string) (name, value string, ok bool) {
	end := 0
	inQuotes := false
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case c == '\\' && inQuotes:
			i++
		case c == '"':
			inQuotes = !inQuotes
		case (c == ' ' || c == '\t') && !inQuotes:
			end = i
			goto found
		}
	}
	return "", "", false
found:
	name = line[:end]
	rest := strings.Fields(line[end:])
	if len(rest) == 0 {
		return "", "", false
	}
	return name, rest[0], true
}

// extractLE removes the le label from a label body, returning its value
// and the remaining labels.
func extractLE(labels string) (le float64, rest string, ok bool) {
	parts := splitLabels(labels)
	var kept []string
	found := false
	for _, p := range parts {
		k, v, pok := cutLabel(p)
		if !pok {
			kept = append(kept, p)
			continue
		}
		if k == "le" {
			found = true
			if v == "+Inf" {
				le = math.Inf(1)
			} else {
				f, err := strconv.ParseFloat(v, 64)
				if err != nil {
					return 0, "", false
				}
				le = f
			}
			continue
		}
		kept = append(kept, p)
	}
	if !found {
		return 0, "", false
	}
	return le, strings.Join(kept, ","), true
}

// splitLabels splits a label body on commas outside quoted values.
func splitLabels(labels string) []string {
	if labels == "" {
		return nil
	}
	var parts []string
	start := 0
	inQuotes := false
	for i := 0; i < len(labels); i++ {
		switch labels[i] {
		case '\\':
			if inQuotes {
				i++
			}
		case '"':
			inQuotes = !inQuotes
		case ',':
			if !inQuotes {
				parts = append(parts, labels[start:i])
				start = i + 1
			}
		}
	}
	parts = append(parts, labels[start:])
	return parts
}

// cutLabel splits one k="v" pair, unquoting the value.
func cutLabel(p string) (k, v string, ok bool) {
	eq := strings.IndexByte(p, '=')
	if eq < 0 {
		return "", "", false
	}
	k = strings.TrimSpace(p[:eq])
	raw := strings.TrimSpace(p[eq+1:])
	unq, err := strconv.Unquote(raw)
	if err != nil {
		return k, raw, true
	}
	return k, unq, true
}

func joinName(base, labels string) string {
	if labels == "" {
		return base
	}
	return base + "{" + labels + "}"
}

func histAt(s *Scraped, key string) *ScrapedHistogram {
	h := s.Hists[key]
	if h == nil {
		h = &ScrapedHistogram{}
		s.Hists[key] = h
	}
	return h
}

// ScrapeURL fetches and parses a /metrics endpoint.
func ScrapeURL(url string) (*Scraped, error) {
	client := &http.Client{Timeout: 30 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("scrape %s: %s", url, resp.Status)
	}
	return ParsePrometheus(resp.Body)
}

// ScrapeRegistry captures a registry through the same render/parse path
// a remote scrape uses, so in-process and HTTP targets produce
// identical report columns.
func ScrapeRegistry(reg *Registry) (*Scraped, error) {
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		return nil, err
	}
	return ParsePrometheus(strings.NewReader(b.String()))
}
