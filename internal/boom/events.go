// Package boom implements a cycle-level timing model of the BOOM core: a
// parameterizable superscalar out-of-order RV64 pipeline (the five Table IV
// sizes) with a fetch buffer, renaming dispatch into a reorder buffer,
// three asymmetric issue queues, non-blocking loads through MSHRs,
// speculative wrong-path fetch after branch mispredictions, and the full
// Table I event list including the seven events Icicle adds for TMA.
package boom

import "icicle/internal/pmu"

// Event set IDs (§II-A).
const (
	SetBasic     = 0
	SetMicroarch = 1
	SetMemory    = 2
	SetTMA       = 3
)

// Event names.
const (
	EvCycles    = "cycles"
	EvInstRet   = "instructions-retired"
	EvException = "exception"

	EvBrMispredict   = "br-mispredict"
	EvCFTargetMiss   = "cf-target-mispredict"
	EvFlush          = "flush"
	EvBranchResolved = "branch-resolved"

	EvICacheMiss = "icache-miss"
	EvDCacheMiss = "dcache-miss"
	EvDCacheRel  = "dcache-release"
	EvITLBMiss   = "itlb-miss"
	EvDTLBMiss   = "dtlb-miss"
	EvL2TLBMiss  = "l2tlb-miss"

	// TMA events added by Icicle (§IV-A: 7 new BOOM events).
	EvUopsIssued    = "uops-issued"    // W_I sources (one per issue port)
	EvFetchBubbles  = "fetch-bubbles"  // W_C sources (one per decode lane)
	EvRecovering    = "recovering"     // 1 source
	EvUopsRetired   = "uops-retired"   // W_C sources (ROB commit lanes)
	EvFenceRetired  = "fence-retired"  // 1 source
	EvICacheBlocked = "icache-blocked" // 1 source
	EvDCacheBlocked = "dcache-blocked" // W_C sources
)

// NewSpace builds the event space for a core with the given decode/commit
// width (W_C) and total issue width (W_I). Unlike Rocket, BOOM's event
// space depends on the configuration because the TMA events are per-lane.
func NewSpace(commitWidth, issueWidth int) *pmu.Space {
	return pmu.MustSpace([]pmu.Event{
		{Name: EvCycles, Set: SetBasic, Bit: 0, Sources: 1},
		{Name: EvInstRet, Set: SetBasic, Bit: 1, Sources: commitWidth},
		{Name: EvException, Set: SetBasic, Bit: 2, Sources: 1},

		{Name: EvBrMispredict, Set: SetMicroarch, Bit: 0, Sources: 1},
		{Name: EvCFTargetMiss, Set: SetMicroarch, Bit: 1, Sources: 1},
		{Name: EvFlush, Set: SetMicroarch, Bit: 2, Sources: 1},
		{Name: EvBranchResolved, Set: SetMicroarch, Bit: 3, Sources: 1},

		{Name: EvICacheMiss, Set: SetMemory, Bit: 0, Sources: 1},
		{Name: EvDCacheMiss, Set: SetMemory, Bit: 1, Sources: 1},
		{Name: EvDCacheRel, Set: SetMemory, Bit: 2, Sources: 1},
		{Name: EvITLBMiss, Set: SetMemory, Bit: 3, Sources: 1},
		{Name: EvDTLBMiss, Set: SetMemory, Bit: 4, Sources: 1},
		{Name: EvL2TLBMiss, Set: SetMemory, Bit: 5, Sources: 1},

		{Name: EvUopsIssued, Set: SetTMA, Bit: 0, Sources: issueWidth},
		{Name: EvFetchBubbles, Set: SetTMA, Bit: 1, Sources: commitWidth},
		{Name: EvRecovering, Set: SetTMA, Bit: 2, Sources: 1},
		{Name: EvUopsRetired, Set: SetTMA, Bit: 3, Sources: commitWidth},
		{Name: EvFenceRetired, Set: SetTMA, Bit: 4, Sources: 1},
		{Name: EvICacheBlocked, Set: SetTMA, Bit: 5, Sources: 1},
		{Name: EvDCacheBlocked, Set: SetTMA, Bit: 6, Sources: commitWidth},
	})
}

// eventIDs interns the sample index of every event the pipeline asserts.
// Resolved once at core construction so the per-cycle hot path never does
// a map lookup (the event *list* is width-independent, but the space is
// built per-core because lane counts vary with the configuration).
type eventIDs struct {
	cycles, instRet, exception                        int
	brMispredict, cfTargetMiss, flush, branchResolved int
	icacheMiss, dcacheMiss, dcacheRel                 int
	itlbMiss, dtlbMiss, l2tlbMiss                     int
	uopsIssued, fetchBubbles, recovering, uopsRetired int
	fenceRetired, icacheBlocked, dcacheBlocked        int
}

func resolveEventIDs(s *pmu.Space) eventIDs {
	return eventIDs{
		cycles:         s.MustIndex(EvCycles),
		instRet:        s.MustIndex(EvInstRet),
		exception:      s.MustIndex(EvException),
		brMispredict:   s.MustIndex(EvBrMispredict),
		cfTargetMiss:   s.MustIndex(EvCFTargetMiss),
		flush:          s.MustIndex(EvFlush),
		branchResolved: s.MustIndex(EvBranchResolved),
		icacheMiss:     s.MustIndex(EvICacheMiss),
		dcacheMiss:     s.MustIndex(EvDCacheMiss),
		dcacheRel:      s.MustIndex(EvDCacheRel),
		itlbMiss:       s.MustIndex(EvITLBMiss),
		dtlbMiss:       s.MustIndex(EvDTLBMiss),
		l2tlbMiss:      s.MustIndex(EvL2TLBMiss),
		uopsIssued:     s.MustIndex(EvUopsIssued),
		fetchBubbles:   s.MustIndex(EvFetchBubbles),
		recovering:     s.MustIndex(EvRecovering),
		uopsRetired:    s.MustIndex(EvUopsRetired),
		fenceRetired:   s.MustIndex(EvFenceRetired),
		icacheBlocked:  s.MustIndex(EvICacheBlocked),
		dcacheBlocked:  s.MustIndex(EvDCacheBlocked),
	}
}
