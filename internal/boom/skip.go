package boom

import "icicle/internal/isa"

// Event-driven stall skipping, the BOOM half of the design in DESIGN.md
// "Event-driven detailed cycle loops". A cycle is quiescent when no stage
// can mutate state: nothing completes, the commit head is blocked, no
// issue queue can fire, dispatch is empty or backpressured, and fetch is
// frozen. On such cycles the stages replay the identical event sample, so
// step() jumps the clock to the earliest wake-up and bulk-accounts the
// sample. Every "until cycle X" timer consulted by a stage or by the
// TMA sampling heuristics bounds the returned target:
//
//   - in-flight writeback times (uop.doneAt)
//   - the unpipelined divider's longBusy
//   - the fetch-buffer head's availableAt
//   - frontend redirect/refill timers (fetchStall, refillUntil)
//   - the memory hierarchy's next refill landing (Hier.NextEvent),
//     which flips the D$-blocked sampling heuristic
//
// Predicates with no timer (full buffers, drained stream, operand chains
// bottoming out in an issue queue) are constant until one of the timers
// fires, so a conservative min over the timers is always safe; with no
// timer pending there is no skip. Like rocket's, the toggle is an engine
// choice, not a Config field — results are bit-identical either way and
// sim memo keys must not see it.

// DefaultStallSkip is the construction-time default for the event-driven
// skip path. The -no-skip CLI ablation flips it before any core is built.
var DefaultStallSkip = true

// SetStallSkip enables or disables the event-driven skip path on this
// core. The setting survives Reset (an engine choice, like telemetry);
// results are bit-identical either way.
func (c *Core) SetStallSkip(on bool) { c.noSkip = !on }

// StallSkip reports whether the event-driven skip path is enabled.
func (c *Core) StallSkip() bool { return !c.noSkip }

// SkipStats returns how many cycles were bulk-advanced and in how many
// jumps since the last Reset.
func (c *Core) SkipStats() (cycles, events uint64) { return c.skipped, c.skipEvents }

// quiesceTarget reports whether the core is quiescent at the current
// cycle and, if so, the earliest future cycle at which any stage can act
// or any sampled event can change. The caller caps the target at the run
// loop's window/budget bound and re-enters the normal step there.
func (c *Core) quiesceTarget() (uint64, bool) {
	// recovering decrements every cycle — never skip through it.
	if c.recovering > 0 {
		return 0, false
	}
	t := c.cycle

	// Cheap O(1) rejections first, so busy cycles (the common case on
	// compute-bound code) pay a handful of compares, not the scans below.
	//
	// Fetch: quiescent only when frozen — by a redirect/refill timer, a
	// full fetch buffer, or a drained stream. A wrong-path fetch with
	// buffer space streams poison uops — a mutation.
	switch {
	case c.fetchStall > t || c.refillUntil > t:
	case c.wrongPath:
		if c.fbLen() < c.Cfg.FBEntries {
			return 0, false
		}
	case c.fbLen() >= c.Cfg.FBEntries:
	case c.streamEmpty():
	default:
		return 0, false // fetch would deliver this cycle
	}
	// Commit: a done, non-poison head retires this cycle. (done implies
	// doneAt <= cycle — completeStage only sets it then — so no doneAt
	// check is needed; an undone head's wake-up is covered by the
	// in-flight and issue scans.)
	if c.robCount > 0 {
		if h := c.robAt(0); h.done && !h.poison {
			return 0, false
		}
	}

	const never = ^uint64(0)
	bound := never
	add := func(x uint64) {
		if x > t && x < bound {
			bound = x
		}
	}

	// Complete: any in-flight uop landing now writes back (and may flush
	// or machine-clear) — not quiescent. Future landings bound the target.
	for _, ui := range c.inflight {
		u := c.uops.at(ui)
		if u.doneAt <= t {
			return 0, false
		}
		add(u.doneAt)
	}

	// Issue: any ready uop in a servable queue fires this cycle. ready()
	// is cycle-invariant while nothing completes (done flags and the
	// store-forwarding disambiguation only change at a writeback, which
	// the in-flight bounds cover), so scanning once at t suffices.
	for q := range c.iq {
		if queueKind(q) == qLong && c.longBusy > t {
			if len(c.iq[q]) > 0 {
				add(c.longBusy)
			}
			continue
		}
		for _, ui := range c.iq[q] {
			if c.ready(c.uops.at(ui)) {
				return 0, false
			}
		}
	}

	// Dispatch: the fetch-buffer head either isn't available yet (timer)
	// or must be rejected by every tryDispatch backpressure check —
	// otherwise it renames this cycle. The rejection conditions only
	// change at a commit, issue, or flush, all bounded above.
	if c.fbLen() > 0 {
		e := &c.fb[c.fbHead]
		if e.availableAt > t {
			add(e.availableAt)
		} else if !c.dispatchBlocked(e) {
			return 0, false
		}
	}

	// The frontend timers are always bounds: the I$-blocked sampling
	// heuristic reads refillUntil even when fetch is blocked for another
	// reason too.
	add(c.fetchStall)
	add(c.refillUntil)

	// The D$-blocked sampling heuristic flips when the next outstanding
	// miss (or prefetch) lands, even though no pipeline state changes.
	if c.anyIQNonEmpty() {
		add(c.Hier.NextEvent(t))
	}

	if bound == never {
		return 0, false
	}
	return bound, true
}

// dispatchBlocked mirrors tryDispatch's rejection conditions exactly,
// without side effects: true means the entry cannot rename this cycle.
// Any drift between the two is caught by the skip-vs-step differentials
// in internal/check and the detail-smoke suite.
func (c *Core) dispatchBlocked(e *fbEntry) bool {
	if c.robFull() {
		return true
	}
	cls := e.inst.Op.Class()
	var q queueKind
	switch cls {
	case isa.ClassLoad, isa.ClassStore, isa.ClassAtomic:
		q = qMem
	case isa.ClassMul, isa.ClassDiv:
		q = qLong
	default:
		q = qInt
	}
	cap := [numQueues]int{c.Cfg.IQInt, c.Cfg.IQMem, c.Cfg.IQLong}[q]
	if len(c.iq[q]) >= cap {
		return true
	}
	if cls == isa.ClassLoad && c.countMem(true) >= c.Cfg.LQEntries {
		return true
	}
	if cls == isa.ClassStore && c.countMem(false) >= c.Cfg.STQEntries {
		return true
	}
	if cls == isa.ClassFence && (c.robCount > 0 || len(c.inflight) > 0) {
		return true
	}
	return false
}
