package boom

import (
	"fmt"
	"math/bits"

	"icicle/internal/asm"
	"icicle/internal/branch"
	"icicle/internal/isa"
	"icicle/internal/mem"
	"icicle/internal/pmu"
)

// CycleHook observes every simulated cycle (used by the trace bridge).
type CycleHook func(cycle uint64, sample pmu.Sample)

type queueKind uint8

const (
	qInt queueKind = iota
	qMem
	qLong
	numQueues
)

// uop is one micro-op in flight: a ROB entry.
type uop struct {
	seq    uint64
	rec    isa.Retired // zero for poison uops
	inst   isa.Inst
	pc     uint64
	poison bool // wrong-path: will be flushed, never retires

	queue      queueKind
	src1, src2 *uop // producers captured at rename (nil = ready)

	issued   bool
	issuedAt uint64
	done     bool
	doneAt   uint64

	isMispredBr bool // resolving this branch flushes the pipeline
	isLoad      bool
	isStore     bool
	isFence     bool
	isFenceI    bool
	isHalt      bool
	memAddr     uint64
}

// fbEntry is one fetch-buffer slot (pre-decode).
type fbEntry struct {
	rec         isa.Retired
	inst        isa.Inst
	pc          uint64
	poison      bool
	mispredBr   bool
	availableAt uint64
}

// Core is the BOOM timing model.
type Core struct {
	Cfg   Config
	CPU   *isa.CPU
	Hier  *mem.Hierarchy
	Pred  branch.Predictor
	RAS   *branch.RAS // nil unless Cfg.UseRAS
	PMU   *pmu.PMU
	Space *pmu.Space

	sample pmu.Sample
	tally  []uint64
	// lanes holds per-lane totals for multi-source events, indexed by
	// event id (nil for single-source events) — the dense form of
	// Result.LaneTally, updated in the per-cycle loop without map lookups.
	lanes [][]uint64
	hook  CycleHook
	ids   eventIDs

	cycle uint64
	seq   uint64

	// frontend
	putback        []isa.Retired
	fb             []fbEntry
	wrongPath      bool
	wrongPC        uint64
	recovering     int  // minimum redirect cycles remaining
	recoveringFlag bool // set at flush, cleared when a fetch packet is valid
	fetchStall     uint64
	refillUntil    uint64
	lastFetchBlock uint64
	haveFetchBlock bool

	// backend
	rob        []*uop // ring buffer
	robHead    int
	robCount   int
	iq         [numQueues][]*uop
	renameLast [32]*uop
	inflight   []*uop
	longBusy   uint64 // unpipelined divider busy until

	retiredTotal uint64
	done         bool

	// per-cycle scratch
	issuedThisCycle int
}

// New builds a core executing prog.
func New(cfg Config, prog *asm.Program) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	memory := mem.NewSparse()
	prog.LoadInto(memory)
	space := NewSpace(cfg.DecodeWidth, cfg.IssueWidth)
	p := pmu.New(space, cfg.PMUArch)
	cpu := isa.NewCPU(memory, prog.Entry)
	cpu.CSR = p
	c := &Core{
		Cfg:    cfg,
		CPU:    cpu,
		Hier:   mem.NewHierarchy(cfg.Hierarchy),
		Pred:   branch.NewBoomPredictor(),
		PMU:    p,
		Space:  space,
		sample: space.NewSample(),
		tally:  make([]uint64, len(space.Events)),
		lanes:  make([][]uint64, len(space.Events)),
		ids:    resolveEventIDs(space),
		rob:    make([]*uop, cfg.ROBEntries),
	}
	if cfg.UseRAS {
		c.RAS = branch.NewRAS(cfg.RASEntries)
	}
	for i, e := range space.Events {
		if e.Sources > 1 {
			c.lanes[i] = make([]uint64, e.Sources)
		}
	}
	return c, nil
}

// MustNew is New that panics on config errors.
func MustNew(cfg Config, prog *asm.Program) *Core {
	c, err := New(cfg, prog)
	if err != nil {
		panic(err)
	}
	return c
}

// SetCycleHook installs a per-cycle observer.
func (c *Core) SetCycleHook(h CycleHook) { c.hook = h }

// assert/assertLane raise an event by its interned sample index (see
// eventIDs); the per-cycle loop asserts dozens of events, so no map
// lookups here.
func (c *Core) assert(ev int)           { c.sample.Assert(ev, 0) }
func (c *Core) assertLane(ev, lane int) { c.sample.Assert(ev, lane) }

// --- instruction stream ---

func (c *Core) next() (isa.Retired, bool, error) {
	if n := len(c.putback); n > 0 {
		r := c.putback[n-1]
		c.putback = c.putback[:n-1]
		return r, true, nil
	}
	if c.CPU.Halted {
		return isa.Retired{}, false, nil
	}
	r, err := c.CPU.Step()
	if err != nil {
		return isa.Retired{}, false, err
	}
	return r, true, nil
}

func (c *Core) streamEmpty() bool { return len(c.putback) == 0 && c.CPU.Halted }

// --- ROB ring ---

func (c *Core) robFull() bool { return c.robCount == len(c.rob) }

func (c *Core) robPush(u *uop) {
	c.rob[(c.robHead+c.robCount)%len(c.rob)] = u
	c.robCount++
}

func (c *Core) robAt(i int) *uop { return c.rob[(c.robHead+i)%len(c.rob)] }

func (c *Core) robPop() *uop {
	u := c.rob[c.robHead]
	c.rob[c.robHead] = nil
	c.robHead = (c.robHead + 1) % len(c.rob)
	c.robCount--
	return u
}

// Result is the outcome of a simulation.
type Result struct {
	Cycles uint64
	Insts  uint64
	Tally  map[string]uint64
	// LaneTally records per-lane totals for the multi-source TMA events
	// (Table V).
	LaneTally map[string][]uint64
	L1I       mem.CacheStats
	L1D       mem.CacheStats
	L2        mem.CacheStats
	Exit      uint64
}

// IPC returns instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Insts) / float64(r.Cycles)
}

// Run simulates until the workload halts and the pipeline drains.
func (c *Core) Run() (Result, error) {
	maxCycles := c.Cfg.MaxCycles
	if maxCycles == 0 {
		maxCycles = 2_000_000_000
	}
	for !c.done {
		if c.cycle >= maxCycles {
			return Result{}, fmt.Errorf("boom: cycle budget %d exhausted (pc 0x%x)", maxCycles, c.CPU.PC)
		}
		if err := c.step(); err != nil {
			return Result{}, err
		}
	}
	// The dense tallies convert to the map-shaped result only here, once
	// the run is over; the step loop never touches a map.
	res := Result{
		Cycles:    c.cycle,
		Insts:     c.retiredTotal,
		Tally:     make(map[string]uint64, len(c.tally)),
		LaneTally: make(map[string][]uint64),
		L1I:       c.Hier.L1I.Stats(),
		L1D:       c.Hier.L1D.Stats(),
		L2:        c.Hier.L2.Stats(),
		Exit:      c.CPU.ExitCode,
	}
	for i, e := range c.Space.Events {
		res.Tally[e.Name] = c.tally[i]
		if c.lanes[i] != nil {
			res.LaneTally[e.Name] = c.lanes[i]
		}
	}
	return res, nil
}

func (c *Core) step() error {
	c.sample.Reset()
	c.assert(c.ids.cycles)
	c.issuedThisCycle = 0

	c.completeStage()
	retired := c.commitStage()
	c.issueStage()
	c.dispatchStage()
	if err := c.fetchStage(); err != nil {
		return err
	}

	// I$-blocked heuristic (§IV-A): refill in flight and fetch buffer empty.
	if c.refillUntil > c.cycle && len(c.fb) == 0 {
		c.assert(c.ids.icacheBlocked)
	}
	// D$-blocked heuristic (§IV-A): issue starved, queues non-empty, and at
	// least one MSHR handling a miss — one event per missing commit slot.
	if c.issuedThisCycle < c.Cfg.DecodeWidth && c.anyIQNonEmpty() &&
		c.Hier.MSHRs.AnyBusy(c.cycle) {
		for l := c.issuedThisCycle; l < c.Cfg.DecodeWidth; l++ {
			c.assertLane(c.ids.dcacheBlocked, l)
		}
	}

	for i, m := range c.sample {
		n := bits.OnesCount64(m)
		c.tally[i] += uint64(n)
		if lt := c.lanes[i]; lt != nil {
			mm := m
			for mm != 0 {
				l := bits.TrailingZeros64(mm)
				mm &^= 1 << uint(l)
				if l < len(lt) {
					lt[l]++
				}
			}
		}
	}
	c.PMU.Tick(c.sample, retired)
	if c.hook != nil {
		c.hook(c.cycle, c.sample)
	}
	c.cycle++

	if c.streamEmpty() && len(c.fb) == 0 && c.robCount == 0 &&
		!c.wrongPath && c.recovering == 0 && len(c.inflight) == 0 {
		c.done = true
	}
	return nil
}

func (c *Core) anyIQNonEmpty() bool {
	for q := range c.iq {
		if len(c.iq[q]) > 0 {
			return true
		}
	}
	return false
}

// --- complete: writeback, branch resolution, memory-ordering checks ---

func (c *Core) completeStage() {
	// Process completions oldest-first so the earliest flush this cycle
	// wins.
	var flushAt *uop  // mispredicted branch resolving now
	var violator *uop // oldest load hit by a store-ordering violation
	keep := c.inflight[:0]
	for _, u := range c.inflight {
		if u.doneAt > c.cycle {
			keep = append(keep, u)
			continue
		}
		u.done = true
		if u.inst.Op.IsBranch() && !u.poison {
			c.assert(c.ids.branchResolved)
		}
		if u.isMispredBr && (flushAt == nil || u.seq < flushAt.seq) {
			flushAt = u
		}
		if u.isStore && !u.poison {
			if v := c.findOrderingViolation(u); v != nil &&
				(violator == nil || v.seq < violator.seq) {
				violator = v
			}
		}
	}
	c.inflight = keep

	// A branch mispredict flush beats a (younger) ordering violation.
	switch {
	case flushAt != nil && (violator == nil || flushAt.seq < violator.seq):
		c.assert(c.ids.brMispredict)
		c.assert(c.ids.flush)
		c.flushAfter(flushAt.seq)
	case violator != nil:
		// Machine clear: the load and everything younger replays.
		c.assert(c.ids.flush)
		c.flushAfter(violator.seq - 1)
	}
}

// forwardableStore reports whether an older completed store to the same
// dword is still in the window (store→load forwarding). Dword-granular
// like the violation check; partial overlaps fall back to the cache.
func (c *Core) forwardableStore(ld *uop) bool {
	for i := c.robCount - 1; i >= 0; i-- {
		u := c.robAt(i)
		if u.isStore && !u.poison && u.seq < ld.seq &&
			u.done && u.doneAt <= c.cycle && u.memAddr>>3 == ld.memAddr>>3 {
			return true
		}
	}
	return false
}

// findOrderingViolation returns the oldest already-issued younger load
// that overlaps the store's dword (naive memory-disambiguation
// speculation: loads issue past unresolved stores and are squashed when
// proven wrong).
func (c *Core) findOrderingViolation(st *uop) *uop {
	var oldest *uop
	for i := 0; i < c.robCount; i++ {
		u := c.robAt(i)
		if u.isLoad && !u.poison && u.seq > st.seq && u.issued &&
			u.issuedAt < st.doneAt && u.memAddr>>3 == st.memAddr>>3 {
			if oldest == nil || u.seq < oldest.seq {
				oldest = u
			}
		}
	}
	return oldest
}

// flushAfter squashes every µop with seq > bound: ROB tail, issue queues,
// in-flight ops, and the fetch buffer. Real (non-poison) records are
// returned to the stream for refetch; the frontend then recovers.
func (c *Core) flushAfter(bound uint64) {
	// Fetch buffer first (youngest instructions): push youngest-first so
	// the oldest pops first.
	for i := len(c.fb) - 1; i >= 0; i-- {
		if !c.fb[i].poison {
			c.putback = append(c.putback, c.fb[i].rec)
		}
	}
	c.fb = c.fb[:0]

	// ROB tail.
	for c.robCount > 0 {
		u := c.robAt(c.robCount - 1)
		if u.seq <= bound {
			break
		}
		if !u.poison {
			c.putback = append(c.putback, u.rec)
		}
		c.rob[(c.robHead+c.robCount-1)%len(c.rob)] = nil
		c.robCount--
	}

	// Issue queues and inflight.
	for q := range c.iq {
		kept := c.iq[q][:0]
		for _, u := range c.iq[q] {
			if u.seq <= bound {
				kept = append(kept, u)
			}
		}
		c.iq[q] = kept
	}
	kept := c.inflight[:0]
	for _, u := range c.inflight {
		if u.seq <= bound {
			kept = append(kept, u)
		}
	}
	c.inflight = kept

	// Rebuild the rename table from the surviving ROB entries.
	c.renameLast = [32]*uop{}
	for i := 0; i < c.robCount; i++ {
		u := c.robAt(i)
		if rd := u.inst.DestReg(); rd != isa.X0 {
			c.renameLast[rd] = u
		}
	}

	c.wrongPath = false
	c.fetchStall = 0
	c.haveFetchBlock = false // the redirected fetch re-accesses the I$
	c.recovering = c.Cfg.RedirectLatency
	c.recoveringFlag = true
}

// --- commit ---

func (c *Core) commitStage() int {
	retired := 0
	for retired < c.Cfg.DecodeWidth && c.robCount > 0 {
		u := c.rob[c.robHead]
		if u.poison || !u.done || u.doneAt > c.cycle {
			break
		}
		c.robPop()
		c.assertLane(c.ids.uopsRetired, retired)
		c.assertLane(c.ids.instRet, retired)
		if c.renameLast[u.inst.DestReg()] == u {
			c.renameLast[u.inst.DestReg()] = nil // value now architectural
		}
		switch {
		case u.isFenceI:
			c.assert(c.ids.fenceRetired)
			c.assert(c.ids.flush)
			c.Hier.L1I.Flush()
			c.flushAfter(u.seq)
		case u.isFence:
			c.assert(c.ids.fenceRetired)
		case u.isHalt:
			c.assert(c.ids.exception)
		}
		retired++
		c.retiredTotal++
	}
	return retired
}

// --- issue/execute ---

func (c *Core) issueStage() {
	lane := 0
	lane = c.issueQueue(qInt, c.Cfg.IntPorts, lane)
	lane = c.issueQueue(qMem, c.Cfg.MemPorts, lane)
	c.issueQueue(qLong, c.Cfg.LongPorts, lane)
}

func (c *Core) issueQueue(q queueKind, ports, laneBase int) int {
	used := 0
	kept := c.iq[q][:0]
	for _, u := range c.iq[q] {
		if used >= ports || !c.ready(u) || (q == qLong && c.longBusy > c.cycle) {
			kept = append(kept, u)
			continue
		}
		c.executeUop(u)
		c.assertLane(c.ids.uopsIssued, laneBase+used)
		used++
		c.issuedThisCycle++
	}
	c.iq[q] = kept
	return laneBase + ports
}

func (c *Core) ready(u *uop) bool {
	if u.src1 != nil && (!u.src1.done || u.src1.doneAt > c.cycle) {
		return false
	}
	if u.src2 != nil && (!u.src2.done || u.src2.doneAt > c.cycle) {
		return false
	}
	// With store forwarding enabled the LSU also disambiguates: a load
	// waits for older same-dword stores instead of speculating past them
	// (and then takes the bypass). Without it, loads speculate and
	// ordering violations machine-clear (the default, §IV-A).
	if c.Cfg.StoreForwarding && u.isLoad && !u.poison {
		for i := 0; i < c.robCount; i++ {
			st := c.robAt(i)
			if st.seq >= u.seq {
				break
			}
			if st.isStore && !st.poison && st.memAddr>>3 == u.memAddr>>3 &&
				(!st.done || st.doneAt > c.cycle) {
				return false
			}
		}
	}
	return true
}

func (c *Core) executeUop(u *uop) {
	u.issued = true
	u.issuedAt = c.cycle
	if u.poison {
		u.doneAt = c.cycle + 1
		c.inflight = append(c.inflight, u)
		return
	}
	switch u.inst.Op.Class() {
	case isa.ClassLoad:
		if c.Cfg.StoreForwarding && c.forwardableStore(u) {
			u.doneAt = c.cycle + 1 // bypass from the store queue
			break
		}
		d := c.Hier.AccessD(u.memAddr, false, c.cycle)
		c.noteDAccess(d)
		u.doneAt = c.cycle + uint64(c.Cfg.LoadLatency) + uint64(d.Latency)
	case isa.ClassStore:
		d := c.Hier.AccessD(u.memAddr, true, c.cycle)
		c.noteDAccess(d)
		u.doneAt = c.cycle + 1
	case isa.ClassAtomic:
		d := c.Hier.AccessD(u.memAddr, true, c.cycle)
		c.noteDAccess(d)
		u.doneAt = c.cycle + uint64(c.Cfg.LoadLatency) + uint64(d.Latency) + 1
	case isa.ClassMul:
		u.doneAt = c.cycle + uint64(c.Cfg.MulLatency)
	case isa.ClassDiv:
		u.doneAt = c.cycle + uint64(c.Cfg.DivLatency)
		c.longBusy = u.doneAt // unpipelined
	case isa.ClassCSR:
		u.doneAt = c.cycle + 2
	default:
		u.doneAt = c.cycle + 1
	}
	c.inflight = append(c.inflight, u)
}

func (c *Core) noteDAccess(d mem.DResult) {
	if d.TLBMiss {
		c.assert(c.ids.dtlbMiss)
	}
	if d.L2TLBMiss {
		c.assert(c.ids.l2tlbMiss)
	}
	if d.Miss {
		c.assert(c.ids.dcacheMiss)
		if d.Writeback {
			c.assert(c.ids.dcacheRel)
		}
	}
}

// --- dispatch (decode/rename) ---

func (c *Core) dispatchStage() {
	dispatched := 0
	backpressured := false
	for dispatched < c.Cfg.DecodeWidth && len(c.fb) > 0 {
		e := c.fb[0]
		if e.availableAt > c.cycle {
			break
		}
		if !c.tryDispatch(e) {
			backpressured = true
			break
		}
		c.fb = c.fb[1:]
		dispatched++
	}
	// Fetch-bubble events (§III, §IV-A): decode lane ready but no valid
	// µop, suppressed while recovering and when the stall is decode's own
	// backpressure.
	if !backpressured && !c.recoveringFlag {
		for l := dispatched; l < c.Cfg.DecodeWidth; l++ {
			if c.streamEmpty() && len(c.fb) == 0 && !c.wrongPath {
				break // drain: the program is over, not a stall
			}
			c.assertLane(c.ids.fetchBubbles, l)
		}
	}
}

// tryDispatch renames and inserts one µop; false means backpressure.
func (c *Core) tryDispatch(e fbEntry) bool {
	if c.robFull() {
		return false
	}
	cls := e.inst.Op.Class()
	var q queueKind
	switch cls {
	case isa.ClassLoad, isa.ClassStore, isa.ClassAtomic:
		q = qMem
	case isa.ClassMul, isa.ClassDiv:
		q = qLong
	default:
		q = qInt
	}
	cap := [numQueues]int{c.Cfg.IQInt, c.Cfg.IQMem, c.Cfg.IQLong}[q]
	if len(c.iq[q]) >= cap {
		return false
	}
	if cls == isa.ClassLoad && c.countMem(true) >= c.Cfg.LQEntries {
		return false
	}
	if cls == isa.ClassStore && c.countMem(false) >= c.Cfg.STQEntries {
		return false
	}
	isFence := cls == isa.ClassFence
	if isFence && (c.robCount > 0 || len(c.inflight) > 0) {
		return false // fences dispatch only into an empty window
	}

	c.seq++
	u := &uop{
		seq:         c.seq,
		rec:         e.rec,
		inst:        e.inst,
		pc:          e.pc,
		poison:      e.poison,
		queue:       q,
		isMispredBr: e.mispredBr,
		isLoad:      cls == isa.ClassLoad || cls == isa.ClassAtomic,
		isStore:     cls == isa.ClassStore || cls == isa.ClassAtomic,
		isFence:     isFence,
		isFenceI:    e.inst.Op == isa.FENCEI,
		isHalt:      e.rec.Halt,
		memAddr:     e.rec.MemAddr,
	}
	if !u.poison {
		rs1, rs2 := e.inst.SrcRegs()
		if rs1 != isa.X0 {
			u.src1 = c.renameLast[rs1]
		}
		if rs2 != isa.X0 {
			u.src2 = c.renameLast[rs2]
		}
	}
	if rd := e.inst.DestReg(); rd != isa.X0 {
		c.renameLast[rd] = u
	}
	c.robPush(u)
	c.iq[q] = append(c.iq[q], u)
	return true
}

func (c *Core) countMem(loads bool) int {
	n := 0
	for i := 0; i < c.robCount; i++ {
		u := c.robAt(i)
		if (loads && u.isLoad) || (!loads && u.isStore) {
			n++
		}
	}
	return n
}

// --- fetch ---

func (c *Core) fetchStage() error {
	// Recovering (§IV-A): asserts from the flush event until a fetch
	// packet is valid — through the redirect latency and, if the new PC
	// misses the I-cache, through the refill as well (those lost slots
	// are attributed to Bad Speculation, as the paper specifies).
	if c.recovering > 0 {
		c.assert(c.ids.recovering)
		c.recovering--
		return nil
	}
	if c.refillUntil > c.cycle || c.fetchStall > c.cycle {
		if c.recoveringFlag {
			c.assert(c.ids.recovering)
		}
		return nil
	}
	if c.wrongPath {
		c.fetchWrongPath()
		return nil
	}
	before := len(c.fb)
	if err := c.fetchRealPath(); err != nil {
		return err
	}
	if len(c.fb) > before {
		c.recoveringFlag = false // a fetch packet is valid again
	} else if c.recoveringFlag && !c.streamEmpty() {
		c.assert(c.ids.recovering)
	}
	return nil
}

// fetchWrongPath streams poison µops decoded from memory at the
// mispredicted PC until the branch resolves and flushes them.
func (c *Core) fetchWrongPath() {
	for n := 0; n < c.Cfg.FetchWidth && len(c.fb) < c.Cfg.FBEntries; n++ {
		word := uint32(c.CPU.Mem.Load(c.wrongPC, isa.InstBytes))
		in := isa.Decode(word)
		if in.Op == isa.ILLEGAL {
			in = isa.NOP // wrong-path garbage still occupies a slot
		}
		c.fb = append(c.fb, fbEntry{
			inst:        in,
			pc:          c.wrongPC,
			poison:      true,
			availableAt: c.cycle + 1,
		})
		c.wrongPC += isa.InstBytes
	}
}

func (c *Core) fetchRealPath() error {
	// The fetch packet covers one aligned FetchWidth-instruction window:
	// a packet starting mid-window (e.g. a branch target) delivers only
	// the window's tail, which is where most per-lane fetch bubbles come
	// from on real hardware.
	window := c.Cfg.FetchWidth
	for n := 0; n < window && len(c.fb) < c.Cfg.FBEntries; n++ {
		rec, ok, err := c.next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if n == 0 {
			off := int(rec.PC/isa.InstBytes) & (c.Cfg.FetchWidth - 1)
			window = c.Cfg.FetchWidth - off
			if window < 1 {
				window = 1
			}
		}
		blk := c.Hier.L1I.BlockAddr(rec.PC)
		if n == 0 && (!c.haveFetchBlock || blk != c.lastFetchBlock) {
			ir := c.Hier.AccessI(rec.PC, c.cycle)
			c.lastFetchBlock, c.haveFetchBlock = blk, true
			if ir.TLBMiss {
				c.assert(c.ids.itlbMiss)
			}
			if ir.L2TLBMiss {
				c.assert(c.ids.l2tlbMiss)
			}
			if ir.Miss {
				c.assert(c.ids.icacheMiss)
				c.refillUntil = c.cycle + uint64(ir.Latency)
				c.putback = append(c.putback, rec)
				return nil
			}
		}
		e := fbEntry{rec: rec, inst: rec.Inst, pc: rec.PC, availableAt: c.cycle + 1}
		redirecting := rec.NextPC != rec.PC+isa.InstBytes

		switch rec.Inst.Op.Class() {
		case isa.ClassBranch:
			pred := c.Pred.PredictBranch(rec.PC)
			c.Pred.UpdateBranch(rec.PC, rec.Taken)
			if pred != rec.Taken {
				e.mispredBr = true
				c.fb = append(c.fb, e)
				c.enterWrongPath(rec, pred)
				return nil
			}
			c.fb = append(c.fb, e)
			if rec.Taken {
				c.redirect(rec, c.Cfg.BTBMissPenalty)
				return nil
			}
		case isa.ClassJump:
			c.fb = append(c.fb, e)
			// RAS maintenance: calls push the return address, returns pop
			// a prediction that beats the BTB.
			if c.RAS != nil && rec.Inst.Rd == isa.RA {
				c.RAS.Push(rec.PC + isa.InstBytes)
			}
			if redirecting {
				if c.RAS != nil && rec.Inst.Op == isa.JALR &&
					rec.Inst.Rs1 == isa.RA && rec.Inst.Rd == isa.X0 {
					if target, ok := c.RAS.Pop(); ok && target == rec.NextPC {
						if c.Cfg.TakenBubble > 0 {
							c.fetchStall = c.cycle + uint64(c.Cfg.TakenBubble)
						}
						return nil // predicted return: no resteer
					}
				}
				pen := 1 // jal: target decoded in the frontend
				if rec.Inst.Op == isa.JALR {
					pen = c.Cfg.JALRPenalty
				}
				c.redirect(rec, pen)
				return nil
			}
		default:
			c.fb = append(c.fb, e)
			if redirecting {
				return nil
			}
		}
	}
	return nil
}

// enterWrongPath switches fetch to the (incorrect) predicted path.
func (c *Core) enterWrongPath(rec isa.Retired, predTaken bool) {
	c.wrongPath = true
	if predTaken {
		if t, ok := c.Pred.PredictTarget(rec.PC); ok {
			c.wrongPC = t
		} else {
			c.wrongPC = rec.PC + 2*isa.InstBytes
		}
	} else {
		c.wrongPC = rec.PC + isa.InstBytes
	}
	c.Pred.UpdateTarget(rec.PC, rec.NextPC)
}

func (c *Core) redirect(rec isa.Retired, missPenalty int) {
	target, ok := c.Pred.PredictTarget(rec.PC)
	if ok && target == rec.NextPC {
		// Correctly predicted redirect: the fetch stream still breaks for
		// TakenBubble cycles while the PC wraps around the frontend.
		if c.Cfg.TakenBubble > 0 {
			c.fetchStall = c.cycle + uint64(c.Cfg.TakenBubble)
		}
		return
	}
	c.assert(c.ids.cfTargetMiss)
	c.fetchStall = c.cycle + uint64(missPenalty)
	c.Pred.UpdateTarget(rec.PC, rec.NextPC)
}
