package boom

import (
	"fmt"

	"icicle/internal/asm"
	"icicle/internal/branch"
	"icicle/internal/isa"
	"icicle/internal/mem"
	"icicle/internal/obs"
	"icicle/internal/pmu"
	"icicle/internal/stats"
)

// CycleHook observes every simulated cycle (used by the trace bridge).
type CycleHook func(cycle uint64, sample pmu.Sample)

type queueKind uint8

const (
	qInt queueKind = iota
	qMem
	qLong
	numQueues
)

// uop is one micro-op in flight: a ROB entry, stored in the core's slab
// arena and addressed by index (see arena.go).
type uop struct {
	seq    uint64
	gen    uint32      // slot generation, bumped on release
	rec    isa.Retired // zero for poison uops
	inst   isa.Inst
	pc     uint64
	poison bool // wrong-path: will be flushed, never retires

	queue      queueKind
	src1, src2 uref // producers captured at rename (nilRef = ready)

	issued   bool
	issuedAt uint64
	done     bool
	doneAt   uint64

	isMispredBr bool // resolving this branch flushes the pipeline
	isLoad      bool
	isStore     bool
	isFence     bool
	isFenceI    bool
	isHalt      bool
	memAddr     uint64
}

// fbEntry is one fetch-buffer slot (pre-decode).
type fbEntry struct {
	rec         isa.Retired
	inst        isa.Inst
	pc          uint64
	poison      bool
	mispredBr   bool
	availableAt uint64
}

// Core is the BOOM timing model.
type Core struct {
	Cfg   Config
	CPU   *isa.CPU
	Hier  *mem.Hierarchy
	Pred  branch.Predictor
	RAS   *branch.RAS // nil unless Cfg.UseRAS
	PMU   *pmu.PMU
	Space *pmu.Space

	memory *mem.Sparse

	sample pmu.Sample
	// tally accumulates per-event totals and per-lane totals (the dense
	// form of Result.Tally/LaneTally), bulk-advanced by the skip path.
	tally *stats.Tally
	hook  CycleHook
	ids   eventIDs

	cycle uint64
	seq   uint64

	// Event-driven skip state (see skip.go): noSkip disables the path,
	// skipLimit is the exclusive cycle cap the active run loop installs
	// (0 = skipping off), skipped/skipEvents count bulk-advanced cycles
	// and jumps since Reset.
	noSkip     bool
	skipLimit  uint64
	skipped    uint64
	skipEvents uint64
	// quiet records that the previous cycle's stages mutated nothing
	// observable. quiesceTarget's queue scans are only worth running
	// right after such a cycle — busy cycles (the common case on
	// compute-bound code) then pay a few compares, not O(ROB) scans.
	// Purely a performance gate: a stale false only delays a skip by one
	// cycle, never changes results.
	quiet bool

	// frontend; fb is a ring: live entries are fb[fbHead:], compacted on
	// push so the backing array never creeps past FBEntries.
	putback        []isa.Retired
	fb             []fbEntry
	fbHead         int
	wrongPath      bool
	wrongPC        uint64
	recovering     int  // minimum redirect cycles remaining
	recoveringFlag bool // set at flush, cleared when a fetch packet is valid
	fetchStall     uint64
	refillUntil    uint64
	lastFetchBlock uint64
	haveFetchBlock bool

	// backend: all uops live in the arena; these hold indices.
	uops       arena
	rob        []int32 // ring buffer
	robHead    int
	robCount   int
	iq         [numQueues][]int32
	renameLast [32]int32 // last uop writing each register, nilIdx if none
	inflight   []int32
	longBusy   uint64 // unpipelined divider busy until

	retiredTotal uint64
	// retireLimit, when nonzero, caps retiredTotal exactly: commit stops
	// mid-cycle at the limit (set by RunWindowBounded, cleared after).
	retireLimit uint64
	done        bool

	// Host-side throughput telemetry (nil = disabled). Survives Reset so
	// a pooled core keeps publishing; baselines re-zero with the cycle
	// counter.
	tel       *obs.CoreTelemetry
	telCycles uint64
	telInsts  uint64
	telSkipC  uint64
	telSkipE  uint64

	// per-cycle scratch
	issuedThisCycle int
}

// New builds a core executing prog.
func New(cfg Config, prog *asm.Program) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	memory := mem.NewSparse()
	prog.LoadInto(memory)
	space := NewSpace(cfg.DecodeWidth, cfg.IssueWidth)
	p := pmu.New(space, cfg.PMUArch)
	cpu := isa.NewCPU(memory, prog.Entry)
	cpu.CSR = p
	c := &Core{
		Cfg:      cfg,
		CPU:      cpu,
		Hier:     mem.NewHierarchy(cfg.Hierarchy),
		Pred:     branch.NewBoomPredictor(),
		PMU:      p,
		Space:    space,
		memory:   memory,
		sample:   space.NewSample(),
		tally:    stats.NewTally(space.SourceCounts()),
		noSkip:   !DefaultStallSkip,
		ids:      resolveEventIDs(space),
		uops:     newArena(cfg.ROBEntries),
		rob:      make([]int32, cfg.ROBEntries),
		fb:       make([]fbEntry, 0, cfg.FBEntries),
		inflight: make([]int32, 0, cfg.ROBEntries),
		putback:  make([]isa.Retired, 0, cfg.ROBEntries+cfg.FBEntries),
	}
	c.iq[qInt] = make([]int32, 0, cfg.IQInt)
	c.iq[qMem] = make([]int32, 0, cfg.IQMem)
	c.iq[qLong] = make([]int32, 0, cfg.IQLong)
	for i := range c.renameLast {
		c.renameLast[i] = nilIdx
	}
	if cfg.UseRAS {
		c.RAS = branch.NewRAS(cfg.RASEntries)
	}
	return c, nil
}

// MustNew is New that panics on config errors.
func MustNew(cfg Config, prog *asm.Program) *Core {
	c, err := New(cfg, prog)
	if err != nil {
		panic(err)
	}
	return c
}

// Reset returns the core to power-on state with prog loaded, reusing
// every internal buffer: the uop arena, ROB ring, issue queues, cache and
// predictor arrays, and the sparse-memory frames (zeroed in place, then
// the program image is copied back in). A Reset core behaves
// byte-identically to a freshly built one — sim's core pool depends on
// that — and a warmed core resets without allocating.
func (c *Core) Reset(prog *asm.Program) {
	c.memory.Reset()
	prog.LoadInto(c.memory)
	c.CPU.Reset(prog.Entry)
	c.Hier.Reset()
	branch.Reset(c.Pred)
	if c.RAS != nil {
		c.RAS.Reset()
	}
	c.PMU.Reset()
	c.sample.Reset()
	c.tally.Reset()
	c.hook = nil
	c.cycle = 0
	c.seq = 0
	// noSkip survives Reset like the telemetry handle: an engine choice,
	// not per-program state.
	c.skipLimit = 0
	c.skipped = 0
	c.skipEvents = 0
	c.quiet = false

	c.putback = c.putback[:0]
	c.fb = c.fb[:0]
	c.fbHead = 0
	c.wrongPath = false
	c.wrongPC = 0
	c.recovering = 0
	c.recoveringFlag = false
	c.fetchStall = 0
	c.refillUntil = 0
	c.lastFetchBlock = 0
	c.haveFetchBlock = false

	c.uops.reset()
	c.robHead = 0
	c.robCount = 0
	for q := range c.iq {
		c.iq[q] = c.iq[q][:0]
	}
	for i := range c.renameLast {
		c.renameLast[i] = nilIdx
	}
	c.inflight = c.inflight[:0]
	c.longBusy = 0

	c.retiredTotal = 0
	c.done = false
	c.issuedThisCycle = 0
	c.telCycles = 0
	c.telInsts = 0
	c.telSkipC = 0
	c.telSkipE = 0
}

// SetCycleHook installs a per-cycle observer.
func (c *Core) SetCycleHook(h CycleHook) { c.hook = h }

// SetTelemetry installs the host-side throughput handle (nil disables).
// Unlike the cycle hook it survives Reset, so the sim core pool installs
// it once per acquisition.
func (c *Core) SetTelemetry(t *obs.CoreTelemetry) { c.tel = t }

// flushTelemetry publishes the (cycles, insts) delta since the last flush.
func (c *Core) flushTelemetry() {
	if c.tel == nil {
		return
	}
	c.tel.Add(c.cycle-c.telCycles, c.retiredTotal-c.telInsts)
	c.tel.AddSkip(c.skipped-c.telSkipC, c.skipEvents-c.telSkipE)
	c.telCycles, c.telInsts = c.cycle, c.retiredTotal
	c.telSkipC, c.telSkipE = c.skipped, c.skipEvents
}

// Cycles returns the cycles simulated so far (the final count after Run).
func (c *Core) Cycles() uint64 { return c.cycle }

// Insts returns the instructions retired so far.
func (c *Core) Insts() uint64 { return c.retiredTotal }

// assert/assertLane raise an event by its interned sample index (see
// eventIDs); the per-cycle loop asserts dozens of events, so no map
// lookups here.
func (c *Core) assert(ev int)           { c.sample.Assert(ev, 0) }
func (c *Core) assertLane(ev, lane int) { c.sample.Assert(ev, lane) }

// --- instruction stream ---

func (c *Core) next() (isa.Retired, bool, error) {
	if n := len(c.putback); n > 0 {
		r := c.putback[n-1]
		c.putback = c.putback[:n-1]
		return r, true, nil
	}
	if c.CPU.Halted {
		return isa.Retired{}, false, nil
	}
	r, err := c.CPU.Step()
	if err != nil {
		return isa.Retired{}, false, err
	}
	return r, true, nil
}

func (c *Core) streamEmpty() bool { return len(c.putback) == 0 && c.CPU.Halted }

// --- fetch buffer ring ---

func (c *Core) fbLen() int { return len(c.fb) - c.fbHead }

// fbPush appends an entry, compacting the consumed head first when the
// backing array (capacity FBEntries) is full — so pushes never grow it.
func (c *Core) fbPush(e fbEntry) {
	if len(c.fb) == cap(c.fb) && c.fbHead > 0 {
		n := copy(c.fb, c.fb[c.fbHead:])
		c.fb = c.fb[:n]
		c.fbHead = 0
	}
	c.fb = append(c.fb, e)
}

func (c *Core) fbPop() {
	c.fbHead++
	if c.fbHead == len(c.fb) {
		c.fb = c.fb[:0]
		c.fbHead = 0
	}
}

// --- ROB ring ---

func (c *Core) robFull() bool { return c.robCount == len(c.rob) }

func (c *Core) robPush(ui int32) {
	c.rob[(c.robHead+c.robCount)%len(c.rob)] = ui
	c.robCount++
}

func (c *Core) robAt(i int) *uop { return c.uops.at(c.rob[(c.robHead+i)%len(c.rob)]) }

func (c *Core) robPop() int32 {
	ui := c.rob[c.robHead]
	c.robHead = (c.robHead + 1) % len(c.rob)
	c.robCount--
	return ui
}

// Result is the outcome of a simulation.
type Result struct {
	Cycles uint64
	Insts  uint64
	Tally  map[string]uint64
	// LaneTally records per-lane totals for the multi-source TMA events
	// (Table V).
	LaneTally map[string][]uint64
	L1I       mem.CacheStats
	L1D       mem.CacheStats
	L2        mem.CacheStats
	Exit      uint64
}

// IPC returns instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Insts) / float64(r.Cycles)
}

// Run simulates until the workload halts and the pipeline drains.
func (c *Core) Run() (Result, error) {
	if err := c.RunCycles(); err != nil {
		return Result{}, err
	}
	return c.Result(), nil
}

// RunCycles simulates until the workload halts and the pipeline drains,
// without materializing the map-shaped Result: on a warmed (Reset) core
// the whole loop performs no heap allocation. Call Result afterwards.
func (c *Core) RunCycles() error {
	maxCycles := c.Cfg.MaxCycles
	if maxCycles == 0 {
		maxCycles = 2_000_000_000
	}
	c.skipLimit = maxCycles
	for !c.done {
		if c.cycle >= maxCycles {
			c.flushTelemetry()
			return fmt.Errorf("boom: cycle budget %d exhausted (pc 0x%x)", maxCycles, c.CPU.PC)
		}
		if err := c.step(); err != nil {
			c.flushTelemetry()
			return err
		}
	}
	c.flushTelemetry()
	return nil
}

// Result converts the dense tallies into the map-shaped result. The maps
// and lane slices are freshly allocated — they stay valid after the core
// is Reset and reused.
func (c *Core) Result() Result {
	res := Result{
		Cycles:    c.cycle,
		Insts:     c.retiredTotal,
		Tally:     make(map[string]uint64, c.tally.Len()),
		LaneTally: make(map[string][]uint64),
		L1I:       c.Hier.L1I.Stats(),
		L1D:       c.Hier.L1D.Stats(),
		L2:        c.Hier.L2.Stats(),
		Exit:      c.CPU.ExitCode,
	}
	for i, e := range c.Space.Events {
		res.Tally[e.Name] = c.tally.Totals[i]
		if src := c.tally.Lanes[i]; src != nil {
			lt := make([]uint64, len(src))
			copy(lt, src)
			res.LaneTally[e.Name] = lt
		}
	}
	return res
}

func (c *Core) step() error {
	// Event-driven skip (skip.go): when the core is provably quiescent,
	// run the stages once — they mutate nothing and produce the stretch's
	// constant event sample — then bulk-account that sample for the extra
	// skipped cycles. The hook gate keeps trace/temporal-sampling runs
	// per-cycle; skipLimit caps jumps at the active run loop's bound.
	var bulk uint64
	if c.quiet && !c.noSkip && c.hook == nil && c.skipLimit != 0 {
		if target, ok := c.quiesceTarget(); ok {
			if target > c.skipLimit {
				target = c.skipLimit
			}
			if target > c.cycle+1 {
				bulk = target - c.cycle - 1
			}
		}
	}

	c.sample.Reset()
	c.assert(c.ids.cycles)
	c.issuedThisCycle = 0

	seqBefore := c.seq
	inflightBefore := len(c.inflight)
	putbackBefore := len(c.putback)
	fbBefore := c.fbLen()

	c.completeStage()
	retired := c.commitStage()
	c.issueStage()
	c.dispatchStage()
	if err := c.fetchStage(); err != nil {
		return err
	}

	// A cycle is quiet when no stage moved anything: nothing retired,
	// issued, renamed (seq), completed or executed (inflight), flushed
	// (putback), or fetched (fb). Quiet cycles are where quiesceTarget
	// can prove a skip, so the next step only attempts it after one.
	c.quiet = retired == 0 && c.issuedThisCycle == 0 && c.seq == seqBefore &&
		len(c.inflight) == inflightBefore && len(c.putback) == putbackBefore &&
		c.fbLen() == fbBefore

	// I$-blocked heuristic (§IV-A): refill in flight and fetch buffer empty.
	if c.refillUntil > c.cycle && c.fbLen() == 0 {
		c.assert(c.ids.icacheBlocked)
	}
	// D$-blocked heuristic (§IV-A): issue starved, queues non-empty, and at
	// least one MSHR handling a miss — one event per missing commit slot.
	if c.issuedThisCycle < c.Cfg.DecodeWidth && c.anyIQNonEmpty() &&
		c.Hier.MSHRs.AnyBusy(c.cycle) {
		for l := c.issuedThisCycle; l < c.Cfg.DecodeWidth; l++ {
			c.assertLane(c.ids.dcacheBlocked, l)
		}
	}

	c.tally.AddSample(c.sample, 1+bulk)
	if bulk == 0 {
		c.PMU.Tick(c.sample, retired)
	} else {
		c.PMU.TickN(c.sample, retired, 1+bulk) // retired is provably 0 here
		c.skipped += bulk
		c.skipEvents++
	}
	if c.hook != nil {
		c.hook(c.cycle, c.sample)
	}
	prev := c.cycle
	c.cycle += 1 + bulk
	if c.tel != nil && (prev^c.cycle)&^uint64(obs.TelemetryFlushInterval-1) != 0 {
		c.flushTelemetry()
	}

	if c.streamEmpty() && c.fbLen() == 0 && c.robCount == 0 &&
		!c.wrongPath && c.recovering == 0 && len(c.inflight) == 0 {
		c.done = true
	}
	return nil
}

func (c *Core) anyIQNonEmpty() bool {
	for q := range c.iq {
		if len(c.iq[q]) > 0 {
			return true
		}
	}
	return false
}

// --- complete: writeback, branch resolution, memory-ordering checks ---

func (c *Core) completeStage() {
	// Process completions oldest-first so the earliest flush this cycle
	// wins.
	var flushAt *uop  // mispredicted branch resolving now
	var violator *uop // oldest load hit by a store-ordering violation
	keep := c.inflight[:0]
	for _, ui := range c.inflight {
		u := c.uops.at(ui)
		if u.doneAt > c.cycle {
			keep = append(keep, ui)
			continue
		}
		u.done = true
		if u.inst.Op.IsBranch() && !u.poison {
			c.assert(c.ids.branchResolved)
		}
		if u.isMispredBr && (flushAt == nil || u.seq < flushAt.seq) {
			flushAt = u
		}
		if u.isStore && !u.poison {
			if v := c.findOrderingViolation(u); v != nil &&
				(violator == nil || v.seq < violator.seq) {
				violator = v
			}
		}
	}
	c.inflight = keep

	// A branch mispredict flush beats a (younger) ordering violation.
	switch {
	case flushAt != nil && (violator == nil || flushAt.seq < violator.seq):
		c.assert(c.ids.brMispredict)
		c.assert(c.ids.flush)
		c.flushAfter(flushAt.seq)
	case violator != nil:
		// Machine clear: the load and everything younger replays.
		c.assert(c.ids.flush)
		c.flushAfter(violator.seq - 1)
	}
}

// forwardableStore reports whether an older completed store to the same
// dword is still in the window (store→load forwarding). Dword-granular
// like the violation check; partial overlaps fall back to the cache.
func (c *Core) forwardableStore(ld *uop) bool {
	for i := c.robCount - 1; i >= 0; i-- {
		u := c.robAt(i)
		if u.isStore && !u.poison && u.seq < ld.seq &&
			u.done && u.doneAt <= c.cycle && u.memAddr>>3 == ld.memAddr>>3 {
			return true
		}
	}
	return false
}

// findOrderingViolation returns the oldest already-issued younger load
// that overlaps the store's dword (naive memory-disambiguation
// speculation: loads issue past unresolved stores and are squashed when
// proven wrong).
func (c *Core) findOrderingViolation(st *uop) *uop {
	var oldest *uop
	for i := 0; i < c.robCount; i++ {
		u := c.robAt(i)
		if u.isLoad && !u.poison && u.seq > st.seq && u.issued &&
			u.issuedAt < st.doneAt && u.memAddr>>3 == st.memAddr>>3 {
			if oldest == nil || u.seq < oldest.seq {
				oldest = u
			}
		}
	}
	return oldest
}

// flushAfter squashes every µop with seq > bound: ROB tail, issue queues,
// in-flight ops, and the fetch buffer. Real (non-poison) records are
// returned to the stream for refetch; the frontend then recovers.
//
// Arena discipline: uop slots are released only here (the ROB-tail walk)
// and at commit — every live uop sits in the ROB exactly once, so those
// are the only release points and no slot is freed twice. The issue-queue
// and inflight filters run before the ROB walk so they never read a
// released slot.
func (c *Core) flushAfter(bound uint64) {
	// Fetch buffer first (youngest instructions): push youngest-first so
	// the oldest pops first.
	for i := len(c.fb) - 1; i >= c.fbHead; i-- {
		if !c.fb[i].poison {
			c.putback = append(c.putback, c.fb[i].rec)
		}
	}
	c.fb = c.fb[:0]
	c.fbHead = 0

	// Issue queues and inflight (before the ROB walk releases slots).
	for q := range c.iq {
		kept := c.iq[q][:0]
		for _, ui := range c.iq[q] {
			if c.uops.at(ui).seq <= bound {
				kept = append(kept, ui)
			}
		}
		c.iq[q] = kept
	}
	kept := c.inflight[:0]
	for _, ui := range c.inflight {
		if c.uops.at(ui).seq <= bound {
			kept = append(kept, ui)
		}
	}
	c.inflight = kept

	// ROB tail: squash, putback, and release.
	for c.robCount > 0 {
		u := c.robAt(c.robCount - 1)
		if u.seq <= bound {
			break
		}
		if !u.poison {
			c.putback = append(c.putback, u.rec)
		}
		c.robCount--
		c.uops.release(c.rob[(c.robHead+c.robCount)%len(c.rob)])
	}

	// Rebuild the rename table from the surviving ROB entries.
	for i := range c.renameLast {
		c.renameLast[i] = nilIdx
	}
	for i := 0; i < c.robCount; i++ {
		ui := c.rob[(c.robHead+i)%len(c.rob)]
		if rd := c.uops.at(ui).inst.DestReg(); rd != isa.X0 {
			c.renameLast[rd] = ui
		}
	}

	c.wrongPath = false
	c.fetchStall = 0
	c.haveFetchBlock = false // the redirected fetch re-accesses the I$
	c.recovering = c.Cfg.RedirectLatency
	c.recoveringFlag = true
}

// --- commit ---

func (c *Core) commitStage() int {
	retired := 0
	for retired < c.Cfg.DecodeWidth && c.robCount > 0 {
		if c.retireLimit != 0 && c.retiredTotal >= c.retireLimit {
			// Bounded window: stop commit exactly at the limit even
			// mid-cycle, so a window never retires (and never stores)
			// past its memory-delta boundary.
			break
		}
		ui := c.rob[c.robHead]
		u := c.uops.at(ui)
		if u.poison || !u.done || u.doneAt > c.cycle {
			break
		}
		c.robPop()
		c.assertLane(c.ids.uopsRetired, retired)
		c.assertLane(c.ids.instRet, retired)
		if c.renameLast[u.inst.DestReg()] == ui {
			c.renameLast[u.inst.DestReg()] = nilIdx // value now architectural
		}
		switch {
		case u.isFenceI:
			c.assert(c.ids.fenceRetired)
			c.assert(c.ids.flush)
			c.Hier.L1I.Flush()
			c.flushAfter(u.seq)
		case u.isFence:
			c.assert(c.ids.fenceRetired)
		case u.isHalt:
			c.assert(c.ids.exception)
		}
		retired++
		c.retiredTotal++
		c.uops.release(ui)
	}
	return retired
}

// --- issue/execute ---

func (c *Core) issueStage() {
	lane := 0
	lane = c.issueQueue(qInt, c.Cfg.IntPorts, lane)
	lane = c.issueQueue(qMem, c.Cfg.MemPorts, lane)
	c.issueQueue(qLong, c.Cfg.LongPorts, lane)
}

func (c *Core) issueQueue(q queueKind, ports, laneBase int) int {
	used := 0
	kept := c.iq[q][:0]
	for _, ui := range c.iq[q] {
		if used >= ports || !c.ready(c.uops.at(ui)) || (q == qLong && c.longBusy > c.cycle) {
			kept = append(kept, ui)
			continue
		}
		c.executeUop(ui)
		c.assertLane(c.ids.uopsIssued, laneBase+used)
		used++
		c.issuedThisCycle++
	}
	c.iq[q] = kept
	return laneBase + ports
}

// srcPending reports whether a producer captured in r has not yet written
// back. A generation mismatch means the producer retired (or was
// squashed) since rename — its value is architectural, so the operand is
// ready, matching the old committed-*uop pointer semantics.
func (c *Core) srcPending(r uref) bool {
	if r.idx < 0 {
		return false
	}
	u := c.uops.at(r.idx)
	if u.gen != r.gen {
		return false
	}
	return !u.done || u.doneAt > c.cycle
}

func (c *Core) ready(u *uop) bool {
	if c.srcPending(u.src1) || c.srcPending(u.src2) {
		return false
	}
	// With store forwarding enabled the LSU also disambiguates: a load
	// waits for older same-dword stores instead of speculating past them
	// (and then takes the bypass). Without it, loads speculate and
	// ordering violations machine-clear (the default, §IV-A).
	if c.Cfg.StoreForwarding && u.isLoad && !u.poison {
		for i := 0; i < c.robCount; i++ {
			st := c.robAt(i)
			if st.seq >= u.seq {
				break
			}
			if st.isStore && !st.poison && st.memAddr>>3 == u.memAddr>>3 &&
				(!st.done || st.doneAt > c.cycle) {
				return false
			}
		}
	}
	return true
}

func (c *Core) executeUop(ui int32) {
	u := c.uops.at(ui)
	u.issued = true
	u.issuedAt = c.cycle
	if u.poison {
		u.doneAt = c.cycle + 1
		c.inflight = append(c.inflight, ui)
		return
	}
	switch u.inst.Op.Class() {
	case isa.ClassLoad:
		if c.Cfg.StoreForwarding && c.forwardableStore(u) {
			u.doneAt = c.cycle + 1 // bypass from the store queue
			break
		}
		d := c.Hier.AccessD(u.memAddr, false, c.cycle)
		c.noteDAccess(d)
		u.doneAt = c.cycle + uint64(c.Cfg.LoadLatency) + uint64(d.Latency)
	case isa.ClassStore:
		d := c.Hier.AccessD(u.memAddr, true, c.cycle)
		c.noteDAccess(d)
		u.doneAt = c.cycle + 1
	case isa.ClassAtomic:
		d := c.Hier.AccessD(u.memAddr, true, c.cycle)
		c.noteDAccess(d)
		u.doneAt = c.cycle + uint64(c.Cfg.LoadLatency) + uint64(d.Latency) + 1
	case isa.ClassMul:
		u.doneAt = c.cycle + uint64(c.Cfg.MulLatency)
	case isa.ClassDiv:
		u.doneAt = c.cycle + uint64(c.Cfg.DivLatency)
		c.longBusy = u.doneAt // unpipelined
	case isa.ClassCSR:
		u.doneAt = c.cycle + 2
	default:
		u.doneAt = c.cycle + 1
	}
	c.inflight = append(c.inflight, ui)
}

func (c *Core) noteDAccess(d mem.DResult) {
	if d.TLBMiss {
		c.assert(c.ids.dtlbMiss)
	}
	if d.L2TLBMiss {
		c.assert(c.ids.l2tlbMiss)
	}
	if d.Miss {
		c.assert(c.ids.dcacheMiss)
		if d.Writeback {
			c.assert(c.ids.dcacheRel)
		}
	}
}

// --- dispatch (decode/rename) ---

func (c *Core) dispatchStage() {
	dispatched := 0
	backpressured := false
	for dispatched < c.Cfg.DecodeWidth && c.fbLen() > 0 {
		e := c.fb[c.fbHead]
		if e.availableAt > c.cycle {
			break
		}
		if !c.tryDispatch(e) {
			backpressured = true
			break
		}
		c.fbPop()
		dispatched++
	}
	// Fetch-bubble events (§III, §IV-A): decode lane ready but no valid
	// µop, suppressed while recovering and when the stall is decode's own
	// backpressure.
	if !backpressured && !c.recoveringFlag {
		for l := dispatched; l < c.Cfg.DecodeWidth; l++ {
			if c.streamEmpty() && c.fbLen() == 0 && !c.wrongPath {
				break // drain: the program is over, not a stall
			}
			c.assertLane(c.ids.fetchBubbles, l)
		}
	}
}

// tryDispatch renames and inserts one µop; false means backpressure.
func (c *Core) tryDispatch(e fbEntry) bool {
	if c.robFull() {
		return false
	}
	cls := e.inst.Op.Class()
	var q queueKind
	switch cls {
	case isa.ClassLoad, isa.ClassStore, isa.ClassAtomic:
		q = qMem
	case isa.ClassMul, isa.ClassDiv:
		q = qLong
	default:
		q = qInt
	}
	cap := [numQueues]int{c.Cfg.IQInt, c.Cfg.IQMem, c.Cfg.IQLong}[q]
	if len(c.iq[q]) >= cap {
		return false
	}
	if cls == isa.ClassLoad && c.countMem(true) >= c.Cfg.LQEntries {
		return false
	}
	if cls == isa.ClassStore && c.countMem(false) >= c.Cfg.STQEntries {
		return false
	}
	isFence := cls == isa.ClassFence
	if isFence && (c.robCount > 0 || len(c.inflight) > 0) {
		return false // fences dispatch only into an empty window
	}

	c.seq++
	ui := c.uops.alloc()
	u := c.uops.at(ui)
	u.seq = c.seq
	u.rec = e.rec
	u.inst = e.inst
	u.pc = e.pc
	u.poison = e.poison
	u.queue = q
	u.isMispredBr = e.mispredBr
	u.isLoad = cls == isa.ClassLoad || cls == isa.ClassAtomic
	u.isStore = cls == isa.ClassStore || cls == isa.ClassAtomic
	u.isFence = isFence
	u.isFenceI = e.inst.Op == isa.FENCEI
	u.isHalt = e.rec.Halt
	u.memAddr = e.rec.MemAddr
	if !u.poison {
		rs1, rs2 := e.inst.SrcRegs()
		if rs1 != isa.X0 {
			u.src1 = c.refTo(c.renameLast[rs1])
		}
		if rs2 != isa.X0 {
			u.src2 = c.refTo(c.renameLast[rs2])
		}
	}
	if rd := e.inst.DestReg(); rd != isa.X0 {
		c.renameLast[rd] = ui
	}
	c.robPush(ui)
	c.iq[q] = append(c.iq[q], ui)
	return true
}

// refTo captures a producer link against idx's current generation.
func (c *Core) refTo(idx int32) uref {
	if idx < 0 {
		return nilRef
	}
	return uref{idx: idx, gen: c.uops.at(idx).gen}
}

func (c *Core) countMem(loads bool) int {
	n := 0
	for i := 0; i < c.robCount; i++ {
		u := c.robAt(i)
		if (loads && u.isLoad) || (!loads && u.isStore) {
			n++
		}
	}
	return n
}

// --- fetch ---

func (c *Core) fetchStage() error {
	// Recovering (§IV-A): asserts from the flush event until a fetch
	// packet is valid — through the redirect latency and, if the new PC
	// misses the I-cache, through the refill as well (those lost slots
	// are attributed to Bad Speculation, as the paper specifies).
	if c.recovering > 0 {
		c.assert(c.ids.recovering)
		c.recovering--
		return nil
	}
	if c.refillUntil > c.cycle || c.fetchStall > c.cycle {
		if c.recoveringFlag {
			c.assert(c.ids.recovering)
		}
		return nil
	}
	if c.wrongPath {
		c.fetchWrongPath()
		return nil
	}
	before := c.fbLen()
	if err := c.fetchRealPath(); err != nil {
		return err
	}
	if c.fbLen() > before {
		c.recoveringFlag = false // a fetch packet is valid again
	} else if c.recoveringFlag && !c.streamEmpty() {
		c.assert(c.ids.recovering)
	}
	return nil
}

// fetchWrongPath streams poison µops decoded from memory at the
// mispredicted PC until the branch resolves and flushes them.
func (c *Core) fetchWrongPath() {
	for n := 0; n < c.Cfg.FetchWidth && c.fbLen() < c.Cfg.FBEntries; n++ {
		word := uint32(c.CPU.Mem.Load(c.wrongPC, isa.InstBytes))
		in := isa.Decode(word)
		if in.Op == isa.ILLEGAL {
			in = isa.NOP // wrong-path garbage still occupies a slot
		}
		c.fbPush(fbEntry{
			inst:        in,
			pc:          c.wrongPC,
			poison:      true,
			availableAt: c.cycle + 1,
		})
		c.wrongPC += isa.InstBytes
	}
}

func (c *Core) fetchRealPath() error {
	// The fetch packet covers one aligned FetchWidth-instruction window:
	// a packet starting mid-window (e.g. a branch target) delivers only
	// the window's tail, which is where most per-lane fetch bubbles come
	// from on real hardware.
	window := c.Cfg.FetchWidth
	for n := 0; n < window && c.fbLen() < c.Cfg.FBEntries; n++ {
		rec, ok, err := c.next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if n == 0 {
			off := int(rec.PC/isa.InstBytes) & (c.Cfg.FetchWidth - 1)
			window = c.Cfg.FetchWidth - off
			if window < 1 {
				window = 1
			}
		}
		blk := c.Hier.L1I.BlockAddr(rec.PC)
		if n == 0 && (!c.haveFetchBlock || blk != c.lastFetchBlock) {
			ir := c.Hier.AccessI(rec.PC, c.cycle)
			c.lastFetchBlock, c.haveFetchBlock = blk, true
			if ir.TLBMiss {
				c.assert(c.ids.itlbMiss)
			}
			if ir.L2TLBMiss {
				c.assert(c.ids.l2tlbMiss)
			}
			if ir.Miss {
				c.assert(c.ids.icacheMiss)
				c.refillUntil = c.cycle + uint64(ir.Latency)
				c.putback = append(c.putback, rec)
				return nil
			}
		}
		e := fbEntry{rec: rec, inst: rec.Inst, pc: rec.PC, availableAt: c.cycle + 1}
		redirecting := rec.NextPC != rec.PC+isa.InstBytes

		switch rec.Inst.Op.Class() {
		case isa.ClassBranch:
			pred := c.Pred.PredictBranch(rec.PC)
			c.Pred.UpdateBranch(rec.PC, rec.Taken)
			if pred != rec.Taken {
				e.mispredBr = true
				c.fbPush(e)
				c.enterWrongPath(rec, pred)
				return nil
			}
			c.fbPush(e)
			if rec.Taken {
				c.redirect(rec, c.Cfg.BTBMissPenalty)
				return nil
			}
		case isa.ClassJump:
			c.fbPush(e)
			// RAS maintenance: calls push the return address, returns pop
			// a prediction that beats the BTB.
			if c.RAS != nil && rec.Inst.Rd == isa.RA {
				c.RAS.Push(rec.PC + isa.InstBytes)
			}
			if redirecting {
				if c.RAS != nil && rec.Inst.Op == isa.JALR &&
					rec.Inst.Rs1 == isa.RA && rec.Inst.Rd == isa.X0 {
					if target, ok := c.RAS.Pop(); ok && target == rec.NextPC {
						if c.Cfg.TakenBubble > 0 {
							c.fetchStall = c.cycle + uint64(c.Cfg.TakenBubble)
						}
						return nil // predicted return: no resteer
					}
				}
				pen := 1 // jal: target decoded in the frontend
				if rec.Inst.Op == isa.JALR {
					pen = c.Cfg.JALRPenalty
				}
				c.redirect(rec, pen)
				return nil
			}
		default:
			c.fbPush(e)
			if redirecting {
				return nil
			}
		}
	}
	return nil
}

// enterWrongPath switches fetch to the (incorrect) predicted path.
func (c *Core) enterWrongPath(rec isa.Retired, predTaken bool) {
	c.wrongPath = true
	if predTaken {
		if t, ok := c.Pred.PredictTarget(rec.PC); ok {
			c.wrongPC = t
		} else {
			c.wrongPC = rec.PC + 2*isa.InstBytes
		}
	} else {
		c.wrongPC = rec.PC + isa.InstBytes
	}
	c.Pred.UpdateTarget(rec.PC, rec.NextPC)
}

func (c *Core) redirect(rec isa.Retired, missPenalty int) {
	target, ok := c.Pred.PredictTarget(rec.PC)
	if ok && target == rec.NextPC {
		// Correctly predicted redirect: the fetch stream still breaks for
		// TakenBubble cycles while the PC wraps around the frontend.
		if c.Cfg.TakenBubble > 0 {
			c.fetchStall = c.cycle + uint64(c.Cfg.TakenBubble)
		}
		return
	}
	c.assert(c.ids.cfTargetMiss)
	c.fetchStall = c.cycle + uint64(missPenalty)
	c.Pred.UpdateTarget(rec.PC, rec.NextPC)
}
