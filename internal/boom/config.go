package boom

import (
	"fmt"

	"icicle/internal/mem"
	"icicle/internal/pmu"
)

// Size selects one of the five Table IV BOOM configurations.
type Size int

const (
	Small Size = iota
	Medium
	Large
	Mega
	Giga
)

var sizeNames = [...]string{"SmallBOOM", "MediumBOOM", "LargeBOOM", "MegaBOOM", "GigaBOOM"}

func (s Size) String() string {
	if int(s) < len(sizeNames) {
		return sizeNames[s]
	}
	return fmt.Sprintf("BOOM(%d)", int(s))
}

// Sizes lists all five configurations, smallest first.
var Sizes = []Size{Small, Medium, Large, Mega, Giga}

// ParseSize converts a CLI name ("small".."giga" or the full names).
func ParseSize(s string) (Size, error) {
	for i, n := range sizeNames {
		if s == n {
			return Size(i), nil
		}
	}
	short := [...]string{"small", "medium", "large", "mega", "giga"}
	for i, n := range short {
		if s == n {
			return Size(i), nil
		}
	}
	return 0, fmt.Errorf("boom: unknown size %q", s)
}

// Config parameterizes the BOOM timing model.
type Config struct {
	Name        string
	FetchWidth  int // instructions fetched per cycle
	DecodeWidth int // W_C: decode/dispatch/commit width
	IssueWidth  int // W_I: total issue ports across all queues
	ROBEntries  int
	IQInt       int // integer issue queue capacity
	IQMem       int // memory issue queue capacity
	IQLong      int // long-latency (mul/div) issue queue capacity
	LQEntries   int
	STQEntries  int
	FBEntries   int // fetch buffer capacity (≈ two fetch packets)

	// Issue ports per queue; must sum to IssueWidth.
	IntPorts  int
	MemPorts  int
	LongPorts int

	RedirectLatency int // frontend recovery cycles after a flush (Fig. 8b: 4)
	TakenBubble     int // dead fetch cycles after any taken-branch redirect

	// UseRAS adds a return-address stack to the frontend so function
	// returns redirect without a BTB-dependent resteer. Off by default:
	// the calibrated model attributes return resteers to PC Resteer, and
	// the ablation quantifies what a RAS would recover.
	UseRAS     bool
	RASEntries int

	// StoreForwarding lets a load take its value from the youngest older
	// completed store to the same dword without touching the D-cache
	// (1-cycle bypass). Off by default; exposed as an ablation.
	StoreForwarding bool
	BTBMissPenalty  int // resteer bubble for taken branch without BTB entry
	JALRPenalty     int // resteer cost for BTB-missing indirect jumps
	LoadLatency     int // load-to-use latency on a D$ hit
	MulLatency      int
	DivLatency      int

	Hierarchy mem.HierarchyConfig
	PMUArch   pmu.Architecture

	MaxCycles uint64
	MaxInsts  uint64
}

// CommonTiming fills the fields every size shares.
func commonTiming(c Config) Config {
	c.RedirectLatency = 4
	c.TakenBubble = 1
	c.RASEntries = 8
	c.BTBMissPenalty = 2
	c.JALRPenalty = 4
	c.LoadLatency = 3
	c.MulLatency = 3
	c.DivLatency = 16
	c.PMUArch = pmu.AddWires
	c.MaxCycles = 2_000_000_000
	c.MaxInsts = 500_000_000
	// "The Fetch Buffer typically holds two cycles of instruction data"
	// (§IV-A) — two *decode* cycles; a deeper buffer would hide the fetch
	// fragmentation that the per-lane Fetch-bubble events observe.
	c.FBEntries = 2 * c.DecodeWidth
	if c.FBEntries < c.FetchWidth {
		c.FBEntries = c.FetchWidth
	}
	return c
}

// NewConfig returns the Table IV configuration for the given size.
func NewConfig(s Size) Config {
	var c Config
	switch s {
	case Small:
		c = Config{
			FetchWidth: 4, DecodeWidth: 1, IssueWidth: 3,
			ROBEntries: 32, IQInt: 8, IQMem: 8, IQLong: 8,
			LQEntries: 8, STQEntries: 8,
			IntPorts: 1, MemPorts: 1, LongPorts: 1,
			Hierarchy: mem.DefaultHierarchyConfig(2),
		}
	case Medium:
		c = Config{
			FetchWidth: 4, DecodeWidth: 2, IssueWidth: 4,
			ROBEntries: 64, IQInt: 12, IQMem: 20, IQLong: 16,
			LQEntries: 16, STQEntries: 16,
			IntPorts: 2, MemPorts: 1, LongPorts: 1,
			Hierarchy: mem.DefaultHierarchyConfig(2),
		}
	case Large:
		c = Config{
			FetchWidth: 8, DecodeWidth: 3, IssueWidth: 5,
			ROBEntries: 96, IQInt: 16, IQMem: 32, IQLong: 24,
			LQEntries: 24, STQEntries: 24,
			IntPorts: 2, MemPorts: 2, LongPorts: 1,
			Hierarchy: mem.DefaultHierarchyConfig(4),
		}
	case Mega:
		c = Config{
			FetchWidth: 8, DecodeWidth: 4, IssueWidth: 8,
			ROBEntries: 128, IQInt: 24, IQMem: 40, IQLong: 32,
			LQEntries: 32, STQEntries: 32,
			IntPorts: 5, MemPorts: 2, LongPorts: 1,
			Hierarchy: mem.DefaultHierarchyConfig(8),
		}
	case Giga:
		c = Config{
			FetchWidth: 8, DecodeWidth: 5, IssueWidth: 9,
			ROBEntries: 130, IQInt: 24, IQMem: 40, IQLong: 32,
			LQEntries: 32, STQEntries: 32,
			IntPorts: 6, MemPorts: 2, LongPorts: 1,
			Hierarchy: mem.DefaultHierarchyConfig(8),
		}
	default:
		return NewConfig(Large)
	}
	c.Name = s.String()
	return commonTiming(c)
}

// Validate checks internal consistency.
func (c Config) Validate() error {
	if c.IntPorts+c.MemPorts+c.LongPorts != c.IssueWidth {
		return fmt.Errorf("boom: issue ports %d+%d+%d != issue width %d",
			c.IntPorts, c.MemPorts, c.LongPorts, c.IssueWidth)
	}
	if c.DecodeWidth < 1 || c.FetchWidth < c.DecodeWidth {
		return fmt.Errorf("boom: fetch width %d must cover decode width %d",
			c.FetchWidth, c.DecodeWidth)
	}
	if c.ROBEntries < 2*c.DecodeWidth {
		return fmt.Errorf("boom: ROB too small (%d)", c.ROBEntries)
	}
	return nil
}
