package boom

import (
	"fmt"

	"icicle/internal/branch"
	"icicle/internal/isa"
	"icicle/internal/mem"
)

// Sampled-simulation support: the state-handoff contract internal/sample
// drives (see DESIGN.md "Sampled simulation"). The cycle loop itself is
// untouched — a detailed window runs the exact same step() as a full run,
// so the 0 allocs/op invariant holds inside windows too.

// ResetPipeline clears the pipeline and timing bookkeeping only: the
// fetch buffer, putback list, wrong-path state, ROB, issue queues, rename
// table, in-flight set, and the uop arena. Everything architectural or
// cumulative survives — CPU state, memory, caches, TLBs, predictors, RAS,
// PMU, event tallies, the seq counter, and the cycle counter — so a
// sampling controller can abandon a window's in-flight uops (their
// architectural effects already landed in the shared functional CPU) and
// later attach a fresh window against the still-warm microarchitectural
// state.
func (c *Core) ResetPipeline() {
	c.putback = c.putback[:0]
	c.fb = c.fb[:0]
	c.fbHead = 0
	c.wrongPath = false
	c.wrongPC = 0
	c.recovering = 0
	c.recoveringFlag = false
	c.fetchStall = 0
	c.refillUntil = 0
	c.lastFetchBlock = 0
	c.haveFetchBlock = false

	c.uops.reset()
	c.robHead = 0
	c.robCount = 0
	for q := range c.iq {
		c.iq[q] = c.iq[q][:0]
	}
	for i := range c.renameLast {
		c.renameLast[i] = nilIdx
	}
	c.inflight = c.inflight[:0]
	c.longBusy = 0
	c.issuedThisCycle = 0

	// Defensive: a detached core must not skip until a run loop installs
	// its window/budget bound again.
	c.skipLimit = 0
	c.quiet = false

	c.done = false
}

// Attach hands the core an architectural state mid-program: the CPU is
// restored from ck and the pipeline is cleared, while caches, predictors,
// tallies, and the cycle counter carry over. The core's memory must
// already hold the image matching ck — the sampling controller guarantees
// this by fast-forwarding the core's own CPU, so the memory is shared and
// always current.
func (c *Core) Attach(ck isa.Checkpoint) {
	c.CPU.Restore(ck)
	c.ResetPipeline()
}

// RunWindow runs the detailed cycle loop for up to maxCycles more cycles,
// stopping early if the workload halts and the pipeline drains. The
// config's MaxCycles budget still bounds the cumulative detailed cycle
// count as a runaway guard.
func (c *Core) RunWindow(maxCycles uint64) error {
	budget := c.Cfg.MaxCycles
	if budget == 0 {
		budget = 2_000_000_000
	}
	end := c.cycle + maxCycles
	// Cap skips at the window end and the cycle budget so the loop
	// re-evaluates both conditions exactly where per-cycle stepping would.
	c.skipLimit = end
	if budget < end {
		c.skipLimit = budget
	}
	for !c.done && c.cycle < end {
		if c.cycle >= budget {
			c.flushTelemetry()
			return fmt.Errorf("boom: cycle budget %d exhausted in sampled window (pc 0x%x)", budget, c.CPU.PC)
		}
		if err := c.step(); err != nil {
			c.flushTelemetry()
			return err
		}
	}
	c.flushTelemetry()
	return nil
}

// RunWindowBounded is RunWindow with an additional exact instruction
// bound: the window stops once maxInsts instructions have retired, even
// mid-commit-group, so it can never store past the memory-delta boundary
// the two-phase sampling plan assigned it. A zero maxInsts means
// unbounded (plain RunWindow).
func (c *Core) RunWindowBounded(maxCycles, maxInsts uint64) error {
	if maxInsts == 0 {
		return c.RunWindow(maxCycles)
	}
	budget := c.Cfg.MaxCycles
	if budget == 0 {
		budget = 2_000_000_000
	}
	end := c.cycle + maxCycles
	c.skipLimit = end
	if budget < end {
		c.skipLimit = budget
	}
	// No skip cap is needed for the instruction bound: a skipped stretch
	// retires nothing, and the loop re-checks retiredTotal every step.
	c.retireLimit = c.retiredTotal + maxInsts
	defer func() { c.retireLimit = 0 }()
	for !c.done && c.cycle < end && c.retiredTotal < c.retireLimit {
		if c.cycle >= budget {
			c.flushTelemetry()
			return fmt.Errorf("boom: cycle budget %d exhausted in sampled window (pc 0x%x)", budget, c.CPU.PC)
		}
		if err := c.step(); err != nil {
			c.flushTelemetry()
			return err
		}
	}
	c.flushTelemetry()
	return nil
}

// BeginWindow rebases the core for a schedule-independent detailed
// window: the cycle clock, PMU, uop sequence numbers, cache hierarchy,
// and predictors (including the RAS) all return to their power-on state
// while the architectural state — CPU registers, memory, cumulative
// event tallies, and the retired-instruction total — is untouched. After
// BeginWindow the core's timing state is a pure function of what runs
// next, which is what lets the two-phase sampled engine execute windows
// on any worker in any order and still merge bit-identical results.
func (c *Core) BeginWindow() {
	c.flushTelemetry()
	c.cycle = 0
	c.telCycles = 0
	c.seq = 0
	c.PMU.Reset()
	c.Hier.Reset()
	branch.Reset(c.Pred)
	if c.RAS != nil {
		c.RAS.Reset()
	}
}

// Memory returns the core's backing sparse memory (the image its CPU and
// caches address). The two-phase sampled engine applies producer frame
// deltas to it between windows.
func (c *Core) Memory() *mem.Sparse { return c.memory }

// Done reports whether the workload has halted and the pipeline drained.
func (c *Core) Done() bool { return c.done }

// CopyTally copies the dense per-event totals into dst (grown if needed)
// and returns it. The slice is indexed like Space.Events; the sampling
// controller diffs snapshots taken around each window.
func (c *Core) CopyTally(dst []uint64) []uint64 {
	n := c.tally.Len()
	if cap(dst) < n {
		dst = make([]uint64, n)
	}
	dst = dst[:n]
	copy(dst, c.tally.Totals)
	return dst
}
