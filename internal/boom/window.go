package boom

import (
	"fmt"

	"icicle/internal/isa"
)

// Sampled-simulation support: the state-handoff contract internal/sample
// drives (see DESIGN.md "Sampled simulation"). The cycle loop itself is
// untouched — a detailed window runs the exact same step() as a full run,
// so the 0 allocs/op invariant holds inside windows too.

// ResetPipeline clears the pipeline and timing bookkeeping only: the
// fetch buffer, putback list, wrong-path state, ROB, issue queues, rename
// table, in-flight set, and the uop arena. Everything architectural or
// cumulative survives — CPU state, memory, caches, TLBs, predictors, RAS,
// PMU, event tallies, the seq counter, and the cycle counter — so a
// sampling controller can abandon a window's in-flight uops (their
// architectural effects already landed in the shared functional CPU) and
// later attach a fresh window against the still-warm microarchitectural
// state.
func (c *Core) ResetPipeline() {
	c.putback = c.putback[:0]
	c.fb = c.fb[:0]
	c.fbHead = 0
	c.wrongPath = false
	c.wrongPC = 0
	c.recovering = 0
	c.recoveringFlag = false
	c.fetchStall = 0
	c.refillUntil = 0
	c.lastFetchBlock = 0
	c.haveFetchBlock = false

	c.uops.reset()
	c.robHead = 0
	c.robCount = 0
	for q := range c.iq {
		c.iq[q] = c.iq[q][:0]
	}
	for i := range c.renameLast {
		c.renameLast[i] = nilIdx
	}
	c.inflight = c.inflight[:0]
	c.longBusy = 0
	c.issuedThisCycle = 0

	c.done = false
}

// Attach hands the core an architectural state mid-program: the CPU is
// restored from ck and the pipeline is cleared, while caches, predictors,
// tallies, and the cycle counter carry over. The core's memory must
// already hold the image matching ck — the sampling controller guarantees
// this by fast-forwarding the core's own CPU, so the memory is shared and
// always current.
func (c *Core) Attach(ck isa.Checkpoint) {
	c.CPU.Restore(ck)
	c.ResetPipeline()
}

// RunWindow runs the detailed cycle loop for up to maxCycles more cycles,
// stopping early if the workload halts and the pipeline drains. The
// config's MaxCycles budget still bounds the cumulative detailed cycle
// count as a runaway guard.
func (c *Core) RunWindow(maxCycles uint64) error {
	budget := c.Cfg.MaxCycles
	if budget == 0 {
		budget = 2_000_000_000
	}
	end := c.cycle + maxCycles
	for !c.done && c.cycle < end {
		if c.cycle >= budget {
			c.flushTelemetry()
			return fmt.Errorf("boom: cycle budget %d exhausted in sampled window (pc 0x%x)", budget, c.CPU.PC)
		}
		if err := c.step(); err != nil {
			c.flushTelemetry()
			return err
		}
	}
	c.flushTelemetry()
	return nil
}

// Done reports whether the workload has halted and the pipeline drained.
func (c *Core) Done() bool { return c.done }

// CopyTally copies the dense per-event totals into dst (grown if needed)
// and returns it. The slice is indexed like Space.Events; the sampling
// controller diffs snapshots taken around each window.
func (c *Core) CopyTally(dst []uint64) []uint64 {
	if cap(dst) < len(c.tally) {
		dst = make([]uint64, len(c.tally))
	}
	dst = dst[:len(c.tally)]
	copy(dst, c.tally)
	return dst
}
