package boom_test

import (
	"bytes"
	"testing"

	"icicle/internal/asm"
	"icicle/internal/boom"
	"icicle/internal/kernel"
	"icicle/internal/perf"
	"icicle/internal/pmu"
	"icicle/internal/trace"
)

func large() boom.Config { return boom.NewConfig(boom.Large) }

func run(t *testing.T, cfg boom.Config, src string) boom.Result {
	t.Helper()
	res, err := boom.MustNew(cfg, asm.MustAssemble(src)).Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestConfigsValidate(t *testing.T) {
	for _, s := range boom.Sizes {
		cfg := boom.NewConfig(s)
		if err := cfg.Validate(); err != nil {
			t.Errorf("%v: %v", s, err)
		}
		if got, err := boom.ParseSize(cfg.Name); err != nil || got != s {
			t.Errorf("ParseSize(%q) = %v, %v", cfg.Name, got, err)
		}
	}
	if _, err := boom.ParseSize("huge"); err == nil {
		t.Error("ParseSize(huge) succeeded")
	}
	bad := large()
	bad.IntPorts = 0
	if err := bad.Validate(); err == nil {
		t.Error("inconsistent ports validated")
	}
}

func TestILPBoundByIntPorts(t *testing.T) {
	// Independent ALU streams: IPC should approach the INT port count.
	res := run(t, large(), `
		li   t0, 30000
	loop:
		addi a1, a1, 1
		addi a2, a2, 1
		addi a3, a3, 1
		addi a4, a4, 1
		addi a5, a5, 1
		addi t0, t0, -1
		bnez t0, loop
		ecall
	`)
	if ipc := res.IPC(); ipc < 1.8 || ipc > 2.05 {
		t.Fatalf("ILP loop IPC = %.3f, want ≈2 (2 INT ports)", ipc)
	}
}

func TestAllKernelsExecuteCorrectlyUnderTiming(t *testing.T) {
	// Flushes, wrong-path fetch, and replays must never corrupt
	// architectural state.
	for _, k := range kernel.All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			res, _, err := perf.RunBoom(large(), k)
			if err != nil {
				t.Fatal(err)
			}
			if k.Expected != 0 && res.Exit != k.Expected {
				t.Fatalf("exit = %#x, want %#x", res.Exit, k.Expected)
			}
		})
	}
}

func TestAllSizesRunMergesort(t *testing.T) {
	k, _ := kernel.ByName("mergesort")
	prev := uint64(0)
	for _, s := range boom.Sizes {
		res, _, err := perf.RunBoom(boom.NewConfig(s), k)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if res.Exit != k.Expected {
			t.Fatalf("%v: bad checksum", s)
		}
		if prev != 0 && res.Cycles > prev+prev/4 {
			t.Errorf("%v substantially slower than the next-smaller size: %d vs %d",
				s, res.Cycles, prev)
		}
		prev = res.Cycles
	}
}

func TestUopAccountingInvariants(t *testing.T) {
	for _, name := range []string{"qsort", "memcpy", "525.x264_r", "towers"} {
		k, err := kernel.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		res, b, err := perf.RunBoom(large(), k)
		if err != nil {
			t.Fatal(err)
		}
		if res.Tally[boom.EvUopsIssued] < res.Tally[boom.EvUopsRetired] {
			t.Fatalf("%s: issued < retired", name)
		}
		if res.Tally[boom.EvUopsRetired] != res.Insts {
			t.Fatalf("%s: retired %d != insts %d", name,
				res.Tally[boom.EvUopsRetired], res.Insts)
		}
		if res.Tally[boom.EvInstRet] != res.Insts {
			t.Fatalf("%s: instret tally mismatch", name)
		}
		if b.TopLevelSum() < 0.999 || b.TopLevelSum() > 1.001 {
			t.Fatalf("%s: top level sums to %f", name, b.TopLevelSum())
		}
	}
}

func TestPerLaneIssueUtilizationDecreases(t *testing.T) {
	// Within the INT queue, port 0 is scanned first, so lane 0 must be at
	// least as busy as lane 1 (Table V's pattern).
	k, _ := kernel.ByName("coremark")
	res, _, err := perf.RunBoom(large(), k)
	if err != nil {
		t.Fatal(err)
	}
	lanes := res.LaneTally[boom.EvUopsIssued]
	if len(lanes) != large().IssueWidth {
		t.Fatalf("lane tally width %d", len(lanes))
	}
	if lanes[0] < lanes[1] {
		t.Fatalf("INT lane0 %d < lane1 %d", lanes[0], lanes[1])
	}
	// Fetch-bubble lanes: lane 0 fewest (it fills first), per Table V.
	fb := res.LaneTally[boom.EvFetchBubbles]
	if fb[0] > fb[1] || fb[1] > fb[2] {
		t.Fatalf("fetch-bubble lanes not increasing: %v", fb)
	}
}

func TestBrmissPairOppositeEffects(t *testing.T) {
	km, _ := kernel.ByName("brmiss")
	ki, _ := kernel.ByName("brmiss_inv")
	resM, bM, err := perf.RunBoom(large(), km)
	if err != nil {
		t.Fatal(err)
	}
	resI, bI, err := perf.RunBoom(large(), ki)
	if err != nil {
		t.Fatal(err)
	}
	// Base case: direction is predicted (cold-taken), so no mispredicts —
	// the cost is all frontend resteers (BTB misses).
	if bm := resM.Tally[boom.EvBrMispredict]; bm > 20 {
		t.Fatalf("brmiss: %d mispredicts on BOOM, want ≈0", bm)
	}
	if resM.Tally[boom.EvCFTargetMiss] < 450 {
		t.Fatalf("brmiss: cf-target misses = %d, want ≈500", resM.Tally[boom.EvCFTargetMiss])
	}
	if bM.BadSpec > 0.01 {
		t.Fatalf("brmiss: bad speculation %.3f, want ≈0 (paper Fig. 7n)", bM.BadSpec)
	}
	// Inverted: every branch mispredicts; Bad Speculation explains it.
	if bm := resI.Tally[boom.EvBrMispredict]; bm < 450 {
		t.Fatalf("brmiss_inv: mispredicts = %d, want ≈500", bm)
	}
	if bI.BadSpec < 0.1 {
		t.Fatalf("brmiss_inv: bad speculation %.3f too small", bI.BadSpec)
	}
	// And the inverted build is slower (the paper's BOOM case study).
	if resI.Cycles <= resM.Cycles {
		t.Fatalf("inverted not slower: %d vs %d cycles", resI.Cycles, resM.Cycles)
	}
}

func TestMemBoundProxyAssertsDCacheBlocked(t *testing.T) {
	k, _ := kernel.ByName("505.mcf_r")
	res, b, err := perf.RunBoom(large(), k)
	if err != nil {
		t.Fatal(err)
	}
	if b.MemBound < 0.5 {
		t.Fatalf("mcf proxy mem bound = %.3f", b.MemBound)
	}
	if res.Tally[boom.EvDCacheBlocked] == 0 {
		t.Fatal("no dcache-blocked events")
	}
}

func TestComputeProxyHasNoDCacheBlocked(t *testing.T) {
	k, _ := kernel.ByName("548.exchange2_r")
	res, b, err := perf.RunBoom(large(), k)
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(res.Tally[boom.EvDCacheBlocked]) / float64(res.Cycles*3)
	if frac > 0.01 {
		t.Fatalf("exchange2 D$-blocked fraction = %.4f, want ≈0 (Table V)", frac)
	}
	if b.MemBound > 0.02 {
		t.Fatalf("exchange2 mem bound = %.3f", b.MemBound)
	}
}

func TestRecoveryLengthModeMatchesRedirectLatency(t *testing.T) {
	// Fig. 8b: almost every recovery sequence lasts exactly
	// RedirectLatency cycles.
	k, _ := kernel.ByName("qsort")
	cfg := large()
	c := boom.MustNew(cfg, k.MustProgram())
	bundle := trace.MustBundle(c.Space, boom.EvRecovering)
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf, bundle)
	if err != nil {
		t.Fatal(err)
	}
	c.SetCycleHook(w.WriteCycle)
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	rd, err := trace.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, err := trace.NewAnalyzer(rd)
	if err != nil {
		t.Fatal(err)
	}
	cdf, err := a.RecoveryCDF(boom.EvRecovering)
	if err != nil {
		t.Fatal(err)
	}
	if cdf.N() < 100 {
		t.Fatalf("only %d recovery sequences", cdf.N())
	}
	if mode := cdf.Mode(); mode != uint64(cfg.RedirectLatency) {
		t.Fatalf("recovery mode = %d, want %d", mode, cfg.RedirectLatency)
	}
}

func TestCounterArchitecturesConserveEvents(t *testing.T) {
	// E16: AddWires counts exactly; Distributed undercounts by at most
	// its residue; Scalar undercounts multi-lane events.
	k, _ := kernel.ByName("mergesort")
	counts := map[pmu.Architecture]uint64{}
	var exact uint64
	for _, arch := range []pmu.Architecture{pmu.Scalar, pmu.AddWires, pmu.Distributed} {
		cfg := large()
		cfg.PMUArch = arch
		c := boom.MustNew(cfg, k.MustProgram())
		plan := perf.TMAPlan(boom.EvUopsIssued)
		if err := plan.Apply(c.PMU); err != nil {
			t.Fatal(err)
		}
		res, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		counts[arch] = c.PMU.Read(0)
		if arch == pmu.AddWires {
			exact = res.Tally[boom.EvUopsIssued]
			if counts[arch] != exact {
				t.Fatalf("add-wires %d != exact %d", counts[arch], exact)
			}
		}
		if arch == pmu.Distributed {
			if counts[arch]+c.PMU.Residue(0) != exact {
				t.Fatalf("distributed %d + residue %d != exact %d",
					counts[arch], c.PMU.Residue(0), exact)
			}
			bound := uint64(large().IssueWidth) << c.PMU.LocalWidth(0)
			if exact-counts[arch] > bound {
				t.Fatalf("undercount %d exceeds bound %d", exact-counts[arch], bound)
			}
		}
	}
	if counts[pmu.Scalar] >= counts[pmu.AddWires] {
		t.Fatalf("scalar (%d) should undercount vs add-wires (%d) on a multi-lane event",
			counts[pmu.Scalar], counts[pmu.AddWires])
	}
}

func TestFenceDrainsAndRetires(t *testing.T) {
	res := run(t, large(), `
		li   t0, 500
	loop:
		addi a1, a1, 1
		fence
		addi t0, t0, -1
		bnez t0, loop
		ecall
	`)
	if res.Tally[boom.EvFenceRetired] != 500 {
		t.Fatalf("fence-retired = %d", res.Tally[boom.EvFenceRetired])
	}
}

func TestFenceIFlushesICache(t *testing.T) {
	res := run(t, large(), `
		li   t0, 50
	loop:
		addi a1, a1, 1
		fence.i
		addi t0, t0, -1
		bnez t0, loop
		ecall
	`)
	if res.Tally[boom.EvFenceRetired] != 50 {
		t.Fatalf("fence.i retired = %d", res.Tally[boom.EvFenceRetired])
	}
	if res.Tally[boom.EvICacheMiss] < 40 {
		t.Fatalf("icache misses after fence.i = %d, want ≥40", res.Tally[boom.EvICacheMiss])
	}
}

func TestStoreLoadOrderingViolationFlushes(t *testing.T) {
	// A load aliasing an in-flight older store whose address resolves
	// late: the load speculates past it and must be squashed (machine
	// clear). The divider delays the store's address computation.
	res := run(t, large(), `
		li   s0, 0x400000
		li   t0, 300
		li   t2, 17
	loop:
		div  t3, t2, t2       # t3 = 1, slowly
		slli t4, t3, 3        # = 8
		add  t4, t4, s0
		sd   t2, 0(t4)        # store to s0+8, address late
		ld   t5, 8(s0)        # aliases the store; issues first
		add  a1, a1, t5
		addi t0, t0, -1
		bnez t0, loop
		ecall
	`)
	bm := res.Tally[boom.EvBrMispredict]
	if res.Tally[boom.EvFlush] <= bm {
		t.Fatalf("no machine-clear flushes (flush %d, br %d)",
			res.Tally[boom.EvFlush], bm)
	}
	// Architectural correctness is the critical property under replay.
	if res.Exit != 0 {
		t.Fatalf("exit = %d", res.Exit)
	}
	if got := res.Insts; got < 300*8 {
		t.Fatalf("insts = %d", got)
	}
}

func TestMaxCyclesGuard(t *testing.T) {
	cfg := large()
	cfg.MaxCycles = 200
	_, err := boom.MustNew(cfg, asm.MustAssemble("loop:\n\tj loop\n")).Run()
	if err == nil {
		t.Fatal("infinite loop terminated")
	}
}

func TestRASAblationRecoversReturnResteers(t *testing.T) {
	// towers is call/return dominated: with the return-address stack the
	// frontend resteers vanish and the run gets materially faster.
	k, _ := kernel.ByName("towers")
	base := large()
	withRAS := large()
	withRAS.UseRAS = true
	resBase, bBase, err := perf.RunBoom(base, k)
	if err != nil {
		t.Fatal(err)
	}
	resRAS, bRAS, err := perf.RunBoom(withRAS, k)
	if err != nil {
		t.Fatal(err)
	}
	if resRAS.Exit != k.Expected {
		t.Fatal("RAS run computed the wrong result")
	}
	if resRAS.Cycles >= resBase.Cycles {
		t.Fatalf("RAS not faster: %d vs %d", resRAS.Cycles, resBase.Cycles)
	}
	if bRAS.PCResteer >= bBase.PCResteer {
		t.Fatalf("RAS did not cut PC resteers: %.3f vs %.3f", bRAS.PCResteer, bBase.PCResteer)
	}
	if resRAS.Tally[boom.EvCFTargetMiss] >= resBase.Tally[boom.EvCFTargetMiss] {
		t.Fatal("RAS did not reduce cf-target mispredicts")
	}
}

func TestRASDoesNotBreakNonReturnWorkloads(t *testing.T) {
	for _, name := range []string{"qsort", "500.perlbench_r"} {
		k, _ := kernel.ByName(name)
		cfg := large()
		cfg.UseRAS = true
		res, _, err := perf.RunBoom(cfg, k)
		if err != nil {
			t.Fatal(err)
		}
		if k.Expected != 0 && res.Exit != k.Expected {
			t.Fatalf("%s: wrong checksum under RAS", name)
		}
	}
}

func TestStoreForwardingAblation(t *testing.T) {
	// A tight store-then-load dependence chain: forwarding removes the
	// D$ round trip without changing the architectural result.
	src := `
		li   s0, 0x400000
		li   t0, 20000
	loop:
		addi t2, t2, 3
		sd   t2, 0(s0)
		ld   t3, 0(s0)       # same dword as the store
		add  a1, a1, t3
		addi t0, t0, -1
		bnez t0, loop
		mv   a0, a1
		ecall
	`
	base := large()
	fwd := large()
	fwd.StoreForwarding = true
	rBase := run(t, base, src)
	rFwd := run(t, fwd, src)
	if rBase.Exit != rFwd.Exit {
		t.Fatalf("forwarding changed the result: %#x vs %#x", rFwd.Exit, rBase.Exit)
	}
	if rFwd.Cycles >= rBase.Cycles {
		t.Fatalf("forwarding not faster: %d vs %d", rFwd.Cycles, rBase.Cycles)
	}
}

func TestStoreForwardingDifferential(t *testing.T) {
	// Random programs with stores and loads must stay architecturally
	// identical with forwarding enabled.
	for seed := int64(200); seed < 206; seed++ {
		prog := asm.MustAssemble(kernel.RandomProgram(seed))
		cfgA := large()
		cfgB := large()
		cfgB.StoreForwarding = true
		a, err := boom.MustNew(cfgA, prog).Run()
		if err != nil {
			t.Fatal(err)
		}
		b, err := boom.MustNew(cfgB, prog).Run()
		if err != nil {
			t.Fatal(err)
		}
		if a.Exit != b.Exit || a.Insts != b.Insts {
			t.Fatalf("seed %d: forwarding diverged", seed)
		}
	}
}
