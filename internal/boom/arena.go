package boom

// nilIdx is the "no uop" arena index (the old nil pointer).
const nilIdx int32 = -1

// uref is a producer link captured at rename: the producer's arena index
// plus the generation its slot had at capture time. When the producer
// retires (or is squashed) its slot's generation is bumped, so a stale
// uref no longer matches — exactly the "value is architectural, operand
// ready" case that the old *uop links expressed by pointing at a
// committed uop. idx < 0 means no producer.
type uref struct {
	idx int32
	gen uint32
}

var nilRef = uref{idx: nilIdx}

// arena is a slab allocator for uops. Slots are addressed by index so the
// ROB ring, issue queues, and inflight list hold int32s instead of
// pointers, and freed slots recycle through a LIFO free list instead of
// going to the garbage collector. Every live uop is ROB-resident, so the
// slab is bounded by ROBEntries and — with the capacity reserved up
// front — never reallocates: the steady-state cycle loop allocates
// nothing.
type arena struct {
	slab []uop
	free []int32
}

func newArena(capacity int) arena {
	return arena{
		slab: make([]uop, 0, capacity),
		free: make([]int32, 0, capacity),
	}
}

// alloc returns the index of a cleared slot. The slot's generation
// survives the clear (recycling must invalidate old urefs), and the
// producer links start as nilRef rather than the zero uref, which would
// point at slot 0.
func (a *arena) alloc() int32 {
	if n := len(a.free); n > 0 {
		i := a.free[n-1]
		a.free = a.free[:n-1]
		g := a.slab[i].gen
		a.slab[i] = uop{gen: g, src1: nilRef, src2: nilRef}
		return i
	}
	a.slab = append(a.slab, uop{src1: nilRef, src2: nilRef})
	return int32(len(a.slab) - 1)
}

// release bumps the slot's generation — invalidating every uref captured
// against it — and recycles it. Callers must not touch the slot after.
func (a *arena) release(i int32) {
	a.slab[i].gen++
	a.free = append(a.free, i)
}

// at returns the uop at index i. The pointer is stable for the current
// cycle: the slab's backing array never reallocates (see arena).
func (a *arena) at(i int32) *uop { return &a.slab[i] }

// reset drops every slot, keeping the capacity. Generations need no
// special handling: no uref survives a core reset.
func (a *arena) reset() {
	a.slab = a.slab[:0]
	a.free = a.free[:0]
}
