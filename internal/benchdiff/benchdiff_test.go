package benchdiff

import (
	"os"
	"path/filepath"
	"testing"
)

func write(t *testing.T, dir, name, body string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const oldSnap = `{
  "snapshot": "PR 7: example",
  "headline": {
    "ns_per_inst": {
      "towers": { "step": 20.5, "superblock": 7.2, "speedup_x": 2.84 },
      "qsort":  { "step": 19.8, "superblock": 6.8 }
    },
    "plan_build_ns_per_inst": { "before": 17.9, "after": 7.5 },
    "coverage_pct": 99.0,
    "note": "strings are ignored"
  }
}`

const newSnap = `{
  "snapshot": "PR 8: example",
  "headline": {
    "ns_per_inst": {
      "towers": { "step": 20.4, "superblock": 9.9, "speedup_x": 2.1 },
      "spmv":   { "step": 30.0 }
    },
    "plan_build_ns_per_inst": { "before": 18.0, "after": 7.4 }
  }
}`

func TestLoadCollectsOnlyPerWorkMetrics(t *testing.T) {
	dir := t.TempDir()
	s, err := Load(write(t, dir, "BENCH_7.json", oldSnap))
	if err != nil {
		t.Fatal(err)
	}
	if s.Label != "PR 7: example" {
		t.Errorf("label = %q", s.Label)
	}
	want := map[string]float64{
		"headline/ns_per_inst/towers/step":       20.5,
		"headline/ns_per_inst/towers/superblock": 7.2,
		"headline/ns_per_inst/qsort/step":        19.8,
		"headline/ns_per_inst/qsort/superblock":  6.8,
		"headline/plan_build_ns_per_inst/before": 17.9,
		"headline/plan_build_ns_per_inst/after":  7.5,
	}
	if len(s.Metrics) != len(want) {
		t.Fatalf("collected %d metrics, want %d: %v", len(s.Metrics), len(want), s.Metrics)
	}
	for k, v := range want {
		if s.Metrics[k] != v {
			t.Errorf("%s = %v, want %v", k, s.Metrics[k], v)
		}
	}
	if _, ok := s.Metrics["headline/ns_per_inst/towers/speedup_x"]; ok {
		t.Error("speedup ratio collected as a lower-is-better metric")
	}
	if _, ok := s.Metrics["headline/coverage_pct"]; ok {
		t.Error("non-ns_per_ key collected")
	}
}

func TestCompareFlagsOnlyOutOfToleranceRegressions(t *testing.T) {
	dir := t.TempDir()
	oldPath := write(t, dir, "BENCH_7.json", oldSnap)
	newPath := write(t, dir, "BENCH_8.json", newSnap)
	rep, err := Compare(oldPath, newPath, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	// Shared keys only: towers step+superblock, plan_build before+after.
	if len(rep.Deltas) != 4 {
		t.Fatalf("got %d deltas, want 4: %v", len(rep.Deltas), rep.Deltas)
	}
	regs := rep.Regressions()
	if len(regs) != 1 {
		t.Fatalf("got %d regressions, want 1: %v", len(regs), regs)
	}
	if regs[0].Key != "headline/ns_per_inst/towers/superblock" {
		t.Errorf("regression key = %s", regs[0].Key)
	}
	// +0.56% (17.9 -> 18.0) sits inside the 10% band.
	for _, d := range rep.Deltas {
		if d.Key == "headline/plan_build_ns_per_inst/before" && d.Regressed(rep.Tol) {
			t.Error("in-tolerance delta flagged as regression")
		}
	}
}

func TestSnapshotsSortNumerically(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "BENCH_10.json", `{}`)
	write(t, dir, "BENCH_2.json", `{}`)
	write(t, dir, "BENCH_9.json", `{}`)
	write(t, dir, "OTHER.json", `{}`)
	paths, err := Snapshots(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 3 {
		t.Fatalf("found %d snapshots, want 3", len(paths))
	}
	for i, want := range []string{"BENCH_2.json", "BENCH_9.json", "BENCH_10.json"} {
		if filepath.Base(paths[i]) != want {
			t.Errorf("paths[%d] = %s, want %s", i, filepath.Base(paths[i]), want)
		}
	}
}
