// Package benchdiff is the performance-regression gate over the repo's
// checked-in BENCH_<n>.json snapshots. Each snapshot records headline
// numbers for the PR that produced it; this package flattens the ad-hoc
// JSON shapes into a flat set of "time per unit of work" metrics (any
// numeric leaf under a key containing "ns_per_"), pairs consecutive
// snapshots on the metric keys they share, and flags a regression when a
// newer snapshot is slower than an older one by more than a tolerance.
//
// Snapshots intentionally measure different things as the project grows,
// so the diff is over the key intersection only: a disjoint pair is
// reported as having nothing to compare rather than passing vacuously.
package benchdiff

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Snapshot is one BENCH_<n>.json flattened to its comparable metrics.
type Snapshot struct {
	Path string
	// Label is the snapshot's own description of itself (the "snapshot"
	// field), if present.
	Label string
	// Metrics maps slash-joined key paths (e.g.
	// "headline/ns_per_inst/towers/superblock") to their values, in
	// nanoseconds per unit. Lower is better for every metric collected.
	Metrics map[string]float64
}

// Load parses a snapshot file and collects its metrics.
func Load(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var root map[string]any
	if err := json.Unmarshal(data, &root); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	s := &Snapshot{Path: path, Metrics: map[string]float64{}}
	if label, ok := root["snapshot"].(string); ok {
		s.Label = label
	}
	collect(nil, root, s.Metrics)
	return s, nil
}

// collect walks the decoded JSON accumulating numeric leaves whose key
// path contains a "ns_per_" segment. Ratio-style leaves (speedup factors)
// live under the same parents but are higher-is-better, so they are
// excluded by name.
func collect(path []string, v any, out map[string]float64) {
	switch node := v.(type) {
	case map[string]any:
		for k, child := range node {
			collect(append(path, k), child, out)
		}
	case float64:
		if !comparableKey(path) {
			return
		}
		out[strings.Join(path, "/")] = node
	}
}

// comparableKey reports whether a key path names a lower-is-better
// time-per-work metric.
func comparableKey(path []string) bool {
	perWork := false
	for _, seg := range path {
		if strings.Contains(seg, "ns_per_") {
			perWork = true
		}
		if strings.Contains(seg, "speedup") || strings.Contains(seg, "ratio") {
			return false
		}
	}
	return perWork
}

// Delta is one shared metric compared across two snapshots.
type Delta struct {
	Key      string
	Old, New float64
}

// Change returns the fractional change, positive when the new snapshot is
// slower.
func (d Delta) Change() float64 {
	if d.Old == 0 {
		return 0
	}
	return d.New/d.Old - 1
}

// Regressed reports whether the new value is slower than tolerance allows.
func (d Delta) Regressed(tol float64) bool { return d.New > d.Old*(1+tol) }

// Improved reports whether the new value is faster beyond the tolerance.
func (d Delta) Improved(tol float64) bool { return d.New < d.Old*(1-tol) }

// Diff pairs two snapshots on their shared metric keys, sorted by key.
func Diff(old, new *Snapshot) []Delta {
	var ds []Delta
	for k, ov := range old.Metrics {
		if nv, ok := new.Metrics[k]; ok {
			ds = append(ds, Delta{Key: k, Old: ov, New: nv})
		}
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i].Key < ds[j].Key })
	return ds
}

var benchFile = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// Snapshots lists the BENCH_<n>.json files under dir in ascending PR
// order.
func Snapshots(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	type numbered struct {
		n    int
		path string
	}
	var found []numbered
	for _, e := range entries {
		m := benchFile.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		n, err := strconv.Atoi(m[1])
		if err != nil {
			continue
		}
		found = append(found, numbered{n, filepath.Join(dir, e.Name())})
	}
	sort.Slice(found, func(i, j int) bool { return found[i].n < found[j].n })
	paths := make([]string, len(found))
	for i, f := range found {
		paths[i] = f.path
	}
	return paths, nil
}

// Report is the outcome of gating one snapshot pair.
type Report struct {
	Old, New *Snapshot
	Deltas   []Delta
	Tol      float64
}

// Regressions returns the deltas beyond tolerance, slowest-relative first.
func (r *Report) Regressions() []Delta {
	var out []Delta
	for _, d := range r.Deltas {
		if d.Regressed(r.Tol) {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Change() > out[j].Change() })
	return out
}

// Compare loads and diffs two snapshot files with the given tolerance.
func Compare(oldPath, newPath string, tol float64) (*Report, error) {
	older, err := Load(oldPath)
	if err != nil {
		return nil, err
	}
	newer, err := Load(newPath)
	if err != nil {
		return nil, err
	}
	return &Report{Old: older, New: newer, Deltas: Diff(older, newer), Tol: tol}, nil
}
