package serve

import (
	"fmt"
	"testing"
	"time"

	"icicle/internal/sim"
)

// mkBatch builds a batch of n placeholder jobs; queue tests only use the
// pointer identity and index, never run anything.
func mkBatch(id string, n int) *batch {
	return &batch{
		id:        id,
		jobs:      make([]sim.Job, n),
		results:   make([]sim.Result, n),
		resDone:   make([]bool, n),
		forwarded: make([]bool, n),
		remaining: n,
	}
}

func pushN(q *fairQueue, client string, weight, prio int, b *batch, n int) {
	for i := 0; i < n; i++ {
		q.Push(client, weight, prio, task{b: b, idx: i, enqueued: time.Now()})
	}
}

// drain pops up to n tasks and returns the batch id sequence.
func drain(q *fairQueue, n int) []string {
	var order []string
	for i := 0; i < n; i++ {
		t, ok := q.Pop()
		if !ok {
			break
		}
		order = append(order, t.b.id)
	}
	return order
}

// A higher priority class must fully drain before any lower class runs,
// regardless of submission order.
func TestQueueStrictPriority(t *testing.T) {
	q := newFairQueue()
	low := mkBatch("low", 3)
	high := mkBatch("high", 2)
	pushN(q, "a", 1, 0, low, 3)
	pushN(q, "b", 1, 5, high, 2)
	got := drain(q, 5)
	want := []string{"high", "high", "low", "low", "low"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
}

// Within a class, clients split capacity in proportion to their weights.
func TestQueueWeightedFairness(t *testing.T) {
	q := newFairQueue()
	heavy := mkBatch("heavy", 30)
	light := mkBatch("light", 30)
	pushN(q, "heavy", 3, 0, heavy, 30)
	pushN(q, "light", 1, 0, light, 30)
	counts := map[string]int{}
	for _, id := range drain(q, 24) {
		counts[id]++
	}
	// Exactly 3:1 over any aligned window with stride scheduling; allow a
	// one-task phase wobble.
	if counts["heavy"] < 17 || counts["heavy"] > 19 {
		t.Fatalf("heavy got %d of 24 pops, want ~18 (3:1 split): %v", counts["heavy"], counts)
	}
}

// A flood from one client cannot starve a later, lighter client: the
// newcomer joins at the virtual-time floor and wins pops immediately.
func TestQueueNoStarvation(t *testing.T) {
	q := newFairQueue()
	flood := mkBatch("flood", 200)
	pushN(q, "flood", 1, 0, flood, 200)
	// Let the flooder accumulate pass.
	for i := 0; i < 50; i++ {
		if _, ok := q.Pop(); !ok {
			t.Fatal("queue closed early")
		}
	}
	late := mkBatch("late", 1)
	pushN(q, "late", 1, 0, late, 1)
	// The late task must surface within the next two pops (tie at the
	// floor breaks by name, and one more pop bounds either tie outcome).
	got := drain(q, 2)
	if got[0] != "late" && got[1] != "late" {
		t.Fatalf("late client starved: next pops were %v", got)
	}
}

// Equal weights alternate: no client gets two consecutive slots while
// another waits.
func TestQueueEqualWeightsInterleave(t *testing.T) {
	q := newFairQueue()
	a := mkBatch("a", 10)
	b := mkBatch("b", 10)
	pushN(q, "a", 1, 0, a, 10)
	pushN(q, "b", 1, 0, b, 10)
	got := drain(q, 20)
	for i := 2; i < len(got); i++ {
		if got[i] == got[i-1] && got[i] == got[i-2] {
			t.Fatalf("three consecutive pops for %q at %d: %v", got[i], i, got)
		}
	}
}

// An idle client must not bank credit while away: after rejoining it gets
// its fair share going forward, not a catch-up burst.
func TestQueueIdleBanksNoCredit(t *testing.T) {
	q := newFairQueue()
	a := mkBatch("a", 40)
	pushN(q, "a", 1, 0, a, 40)
	b1 := mkBatch("b1", 1)
	pushN(q, "b", 1, 0, b1, 1)
	// b runs once, then sits idle while a runs 20 tasks.
	for i := 0; i < 21; i++ {
		q.Pop()
	}
	// b rejoins; over the next 10 pops it should get ~5, not 10.
	b2 := mkBatch("b2", 10)
	pushN(q, "b", 1, 0, b2, 10)
	counts := map[string]int{}
	for _, id := range drain(q, 10) {
		counts[id]++
	}
	if counts["b2"] > 6 {
		t.Fatalf("rejoining client got a catch-up burst: %v", counts)
	}
	if counts["b2"] < 4 {
		t.Fatalf("rejoining client under fair share: %v", counts)
	}
}

// Pop blocks until Push arrives, and Close unblocks every waiter.
func TestQueueBlockingAndClose(t *testing.T) {
	q := newFairQueue()
	got := make(chan string, 1)
	go func() {
		t, ok := q.Pop()
		if !ok {
			got <- "<closed>"
			return
		}
		got <- t.b.id
	}()
	time.Sleep(10 * time.Millisecond) // let the Pop block
	pushN(q, "c", 1, 0, mkBatch("wake", 1), 1)
	select {
	case id := <-got:
		if id != "wake" {
			t.Fatalf("blocked Pop got %q", id)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Pop did not wake on Push")
	}

	done := make(chan bool, 4)
	for i := 0; i < 4; i++ {
		go func() {
			_, ok := q.Pop()
			done <- ok
		}()
	}
	time.Sleep(10 * time.Millisecond)
	q.Close()
	for i := 0; i < 4; i++ {
		select {
		case ok := <-done:
			if ok {
				t.Fatal("Pop returned ok=true after Close")
			}
		case <-time.After(2 * time.Second):
			t.Fatal("Pop did not unblock on Close")
		}
	}
	// Push after Close reports rejection and enqueues nothing, so callers
	// can fail the submission instead of waiting forever.
	if q.Push("c", 1, 0, task{b: mkBatch("dead", 1), enqueued: time.Now()}) {
		t.Fatal("Push after Close reported accepted")
	}
	if d := q.Depth(); d != 0 {
		t.Fatalf("Depth after Close+Push = %d, want 0", d)
	}
}

// The virtual-time floor survives a class fully draining: after one
// client runs a burst alone and leaves, a newcomer joins at the
// watermark (not at zero), so the returning client is not starved while
// the newcomer's pass catches up — past work banks no debt across idle
// periods, just as idleness banks no credit.
func TestQueueDrainedClassKeepsWatermark(t *testing.T) {
	q := newFairQueue()
	a1 := mkBatch("a1", 20)
	pushN(q, "a", 1, 0, a1, 20)
	if got := drain(q, 20); len(got) != 20 {
		t.Fatalf("drained %d of 20", len(got))
	}
	// Class is now empty. b joins "fresh" and queues a backlog.
	b := mkBatch("b", 20)
	pushN(q, "b", 1, 0, b, 20)
	// a returns with one task: it must not sit behind b's whole backlog.
	a2 := mkBatch("a2", 1)
	pushN(q, "a", 1, 0, a2, 1)
	got := drain(q, 3)
	pos := -1
	for i, id := range got {
		if id == "a2" {
			pos = i
		}
	}
	if pos < 0 {
		t.Fatalf("returning client starved behind the newcomer's backlog: next pops were %v", got)
	}
}

// Weights are clamped to [1, maxWeight] so a hostile weight cannot claim
// the whole machine or divide by zero.
func TestQueueWeightClamp(t *testing.T) {
	q := newFairQueue()
	huge := mkBatch("huge", 20)
	one := mkBatch("one", 20)
	pushN(q, "huge", 1<<30, 0, huge, 20)
	pushN(q, "one", 1, 0, one, 20)
	counts := map[string]int{}
	for _, id := range drain(q, 26) {
		counts[id]++
	}
	// Clamped to maxWeight=64: "one" still runs at least every 65th slot,
	// but also at least once early because it joins at the pass floor.
	if counts["one"] == 0 {
		t.Fatalf("weight-1 client fully starved by clamped huge weight: %v", counts)
	}
	zero := mkBatch("zero", 2)
	pushN(q, "zero", -5, 0, zero, 2) // clamps up to 1
	if q.Depth() == 0 {
		t.Fatal("negative-weight push dropped")
	}
}

// Sanity: depth bookkeeping follows pushes and pops exactly.
func TestQueueDepth(t *testing.T) {
	q := newFairQueue()
	for i := 0; i < 5; i++ {
		pushN(q, fmt.Sprintf("c%d", i), 1, i%2, mkBatch(fmt.Sprintf("b%d", i), 3), 3)
	}
	if d := q.Depth(); d != 15 {
		t.Fatalf("Depth = %d, want 15", d)
	}
	drain(q, 7)
	if d := q.Depth(); d != 8 {
		t.Fatalf("Depth after 7 pops = %d, want 8", d)
	}
}
