package serve

import (
	"strconv"
	"sync"

	"icicle/internal/obs"
)

// serveMetrics is the icicle_serve_* metric set, published in the
// server's registry next to the runner's icicle_sim_* counters and the
// store's icicle_store_* mirror. Beyond the job counters it carries the
// first-class service latency telemetry the load harness correlates
// against: per-endpoint HTTP duration histograms, per-priority-class
// queue-wait histograms, and in-flight gauges.
type serveMetrics struct {
	reg *obs.Registry

	requests  *obs.Counter
	submitted *obs.Counter
	completed *obs.Counter
	errored   *obs.Counter

	storeHits *obs.Counter // completed without any simulation, from the persistent store
	memoHits  *obs.Counter // completed from the in-process memo
	simulated *obs.Counter // actually simulated here

	forwarded *obs.Counter // executed on a shard peer
	fallback  *obs.Counter // peer unreachable/failed; ran locally instead

	batchesEvicted *obs.Counter // completed batches dropped by retention

	queueDepth *obs.Gauge
	inflight   *obs.Gauge     // HTTP requests currently being handled (all endpoints)
	latency    *obs.Histogram // per-job wall time through the service
	queueWait  *obs.Histogram // submit-to-dispatch wait, all classes

	// queueWaitClass holds the per-priority-class queue-wait histograms
	// (icicle_serve_queue_wait_seconds{class="N"}), created on a class's
	// first dispatch. sync.Map keeps the worker loop lock-free after the
	// first hit.
	queueWaitClass sync.Map // int → *obs.Histogram

	// reqDuration / reqInflight hold the per-endpoint series, keyed by
	// route pattern ("POST /jobs", ...), created on first use.
	reqDuration sync.Map // string → *obs.Histogram
	reqInflight sync.Map // string → *obs.Gauge
}

func newServeMetrics(reg *obs.Registry) *serveMetrics {
	return &serveMetrics{
		reg: reg,
		requests: reg.Counter("icicle_serve_requests_total",
			"HTTP requests handled by the serve API"),
		submitted: reg.Counter("icicle_serve_jobs_submitted_total",
			"jobs accepted through POST /jobs"),
		completed: reg.Counter("icicle_serve_jobs_completed_total",
			"jobs finished (any outcome)"),
		errored: reg.Counter("icicle_serve_jobs_errored_total",
			"jobs that finished with a simulation error"),
		storeHits: reg.Counter("icicle_serve_store_hits_total",
			"jobs served from the persistent result store without simulating"),
		memoHits: reg.Counter("icicle_serve_memo_hits_total",
			"jobs served from the in-process memo cache"),
		simulated: reg.Counter("icicle_serve_simulated_total",
			"jobs that actually simulated on this server"),
		forwarded: reg.Counter("icicle_serve_forwarded_total",
			"jobs executed on a shard peer"),
		fallback: reg.Counter("icicle_serve_forward_fallback_total",
			"shard forwards that failed and ran locally instead"),
		batchesEvicted: reg.Counter("icicle_serve_batches_evicted_total",
			"completed batches evicted by the retention policy (TTL or cap)"),
		queueDepth: reg.Gauge("icicle_serve_queue_depth",
			"tasks waiting in the submission queue"),
		inflight: reg.Gauge("icicle_serve_inflight",
			"HTTP requests currently in flight across all endpoints"),
		latency: reg.Histogram("icicle_serve_job_latency_seconds",
			"wall time from dispatch to completion per job", 1e-9),
		queueWait: reg.Histogram("icicle_serve_queue_wait_seconds",
			"wall time from submission to dispatch per job, all priority classes", 1e-9),
	}
}

// queueWaitFor returns the queue-wait histogram for one priority class,
// registering icicle_serve_queue_wait_seconds{class="N"} on first use.
func (m *serveMetrics) queueWaitFor(class int) *obs.Histogram {
	if h, ok := m.queueWaitClass.Load(class); ok {
		return h.(*obs.Histogram)
	}
	h := m.reg.Histogram(
		obs.LabeledName("icicle_serve_queue_wait_seconds", "class", strconv.Itoa(class)),
		"wall time from submission to dispatch per job, all priority classes", 1e-9)
	actual, _ := m.queueWaitClass.LoadOrStore(class, h)
	return actual.(*obs.Histogram)
}

// durationFor returns the HTTP duration histogram for one endpoint,
// registering icicle_serve_request_duration_seconds{endpoint="..."} on
// first use.
func (m *serveMetrics) durationFor(endpoint string) *obs.Histogram {
	if h, ok := m.reqDuration.Load(endpoint); ok {
		return h.(*obs.Histogram)
	}
	h := m.reg.Histogram(
		obs.LabeledName("icicle_serve_request_duration_seconds", "endpoint", endpoint),
		"HTTP request duration per endpoint", 1e-9)
	actual, _ := m.reqDuration.LoadOrStore(endpoint, h)
	return actual.(*obs.Histogram)
}

// inflightFor returns the in-flight gauge for one endpoint,
// registering icicle_serve_endpoint_inflight{endpoint="..."} on first use.
func (m *serveMetrics) inflightFor(endpoint string) *obs.Gauge {
	if g, ok := m.reqInflight.Load(endpoint); ok {
		return g.(*obs.Gauge)
	}
	g := m.reg.Gauge(
		obs.LabeledName("icicle_serve_endpoint_inflight", "endpoint", endpoint),
		"HTTP requests currently in flight per endpoint")
	actual, _ := m.reqInflight.LoadOrStore(endpoint, g)
	return actual.(*obs.Gauge)
}
