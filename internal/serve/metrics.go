package serve

import "icicle/internal/obs"

// serveMetrics is the icicle_serve_* counter set, published in the
// server's registry next to the runner's icicle_sim_* counters and the
// store's icicle_store_* mirror.
type serveMetrics struct {
	requests  *obs.Counter
	submitted *obs.Counter
	completed *obs.Counter
	errored   *obs.Counter

	storeHits *obs.Counter // completed without any simulation, from the persistent store
	memoHits  *obs.Counter // completed from the in-process memo
	simulated *obs.Counter // actually simulated here

	forwarded *obs.Counter // executed on a shard peer
	fallback  *obs.Counter // peer unreachable/failed; ran locally instead

	batchesEvicted *obs.Counter // completed batches dropped by retention

	queueDepth *obs.Gauge
	latency    *obs.Histogram // per-job wall time through the service
	queueWait  *obs.Histogram // submit-to-dispatch wait
}

func newServeMetrics(reg *obs.Registry) *serveMetrics {
	return &serveMetrics{
		requests: reg.Counter("icicle_serve_requests_total",
			"HTTP requests handled by the serve API"),
		submitted: reg.Counter("icicle_serve_jobs_submitted_total",
			"jobs accepted through POST /jobs"),
		completed: reg.Counter("icicle_serve_jobs_completed_total",
			"jobs finished (any outcome)"),
		errored: reg.Counter("icicle_serve_jobs_errored_total",
			"jobs that finished with a simulation error"),
		storeHits: reg.Counter("icicle_serve_store_hits_total",
			"jobs served from the persistent result store without simulating"),
		memoHits: reg.Counter("icicle_serve_memo_hits_total",
			"jobs served from the in-process memo cache"),
		simulated: reg.Counter("icicle_serve_simulated_total",
			"jobs that actually simulated on this server"),
		forwarded: reg.Counter("icicle_serve_forwarded_total",
			"jobs executed on a shard peer"),
		fallback: reg.Counter("icicle_serve_forward_fallback_total",
			"shard forwards that failed and ran locally instead"),
		batchesEvicted: reg.Counter("icicle_serve_batches_evicted_total",
			"completed batches evicted by the retention policy (TTL or cap)"),
		queueDepth: reg.Gauge("icicle_serve_queue_depth",
			"tasks waiting in the submission queue"),
		latency: reg.Histogram("icicle_serve_job_latency_seconds",
			"wall time from dispatch to completion per job", 1e-9),
		queueWait: reg.Histogram("icicle_serve_queue_wait_seconds",
			"wall time from submission to dispatch per job", 1e-9),
	}
}
