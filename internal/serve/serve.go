// Package serve is the simulation-as-a-service layer: an HTTP/JSON
// job-submission API over the internal/sim runner, backed by the
// persistent content-addressed result store (internal/store) so
// identical sweeps are free across processes and users. It is the
// ROADMAP's "millions of users" refactor: submission decouples from
// execution through a priority queue with per-client weighted fairness,
// results persist and are content-addressable, and a fleet of servers
// shards work by config fingerprint over a consistent-hash ring.
//
// API:
//
//	POST /jobs          submit a batch  → {id, jobs, status_url}
//	GET  /jobs/{id}     status + per-job results (JSON)
//	GET  /store/{addr}  raw verified result blob (gob payload)
//	GET  /healthz       liveness + queue/store snapshot
//	GET  /metrics       Prometheus text (the server's registry)
//	POST /internal/run  shard-internal synchronous execution
//
// Completed batches are retained for Config.BatchTTL (and capped at
// Config.MaxBatches), then evicted — GET /jobs/{id} 404s afterwards,
// while the results themselves stay fetchable from the persistent store.
package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"icicle/internal/obs"
	"icicle/internal/sim"
	"icicle/internal/store"
)

// Config assembles a Server.
type Config struct {
	// Store is the persistent result store (nil = in-memory only; the
	// /store/ endpoint then 404s and nothing survives the process).
	Store *store.Store
	// Registry receives the server's icicle_serve_* metrics and the
	// runner's icicle_sim_* metrics (nil = a fresh private registry).
	Registry *obs.Registry
	// Tracer records serve-job spans (nil = no tracing).
	Tracer *obs.Tracer
	// QueueWorkers is the number of concurrent job executors (default
	// GOMAXPROCS). This is the service's parallelism; sampled jobs may
	// additionally fan out windows per their SamplePar.
	QueueWorkers int
	// Self is this server's advertised base URL ("http://host:port") on
	// the shard ring; Peers lists every shard, Self included, spelled
	// exactly as Self spells it. Empty Peers = no sharding. New rejects a
	// non-empty Peers without a matching Self: a node that cannot
	// recognise itself on the ring would silently forward 100% of jobs —
	// including its own — and serve them only through the per-job
	// fallback path.
	Self  string
	Peers []string
	// BatchTTL bounds how long a completed batch (its per-job results and
	// status) stays queryable via GET /jobs/{id}. Completed batches past
	// the TTL are evicted so a long-running server does not grow without
	// bound; the result blobs remain in the persistent store. 0 = the
	// 30-minute default, negative = retain forever.
	BatchTTL time.Duration
	// MaxBatches caps the number of retained batches regardless of age;
	// past it the oldest *completed* batches are evicted first (batches
	// still running are never evicted). 0 = the 4096 default, negative =
	// unlimited.
	MaxBatches int
	// RunnerOpts appends options to the underlying sim runner (tests).
	RunnerOpts []sim.Option
}

// Server is one icicle-serve node.
type Server struct {
	cfg    Config
	reg    *obs.Registry
	tr     *obs.Tracer
	runner *sim.Runner
	queue  *fairQueue
	ring   *ring
	m      *serveMetrics
	client *http.Client

	// exec runs one job locally; tests stub it to model synthetic load.
	exec func(sim.Job) sim.Result

	batchTTL   time.Duration // retention for completed batches (0 = forever)
	maxBatches int           // cap on retained batches (0 = unlimited)

	mu      sync.Mutex
	batches map[string]*batch
	nextID  uint64

	started atomic.Int64 // first submission wall clock (unix nanos)

	wg          sync.WaitGroup
	workers     int
	httpSrv     *http.Server
	listener    net.Listener
	closed      atomic.Bool
	janitorStop chan struct{}
}

// batch is one submitted job batch and its accumulating results.
type batch struct {
	id       string
	client   string
	priority int
	jobs     []sim.Job
	created  time.Time
	done     chan struct{} // closed when the last job completes

	mu        sync.Mutex
	results   []sim.Result
	resDone   []bool
	forwarded []bool
	remaining int
	finished  time.Time
}

func (b *batch) setResult(i int, res sim.Result, forwarded bool) (batchDone bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.resDone[i] {
		return false
	}
	b.results[i] = res
	b.resDone[i] = true
	b.forwarded[i] = forwarded
	b.remaining--
	if b.remaining == 0 {
		b.finished = time.Now()
		close(b.done)
		return true
	}
	return false
}

// doneAt reports when the batch completed (zero time, false while any
// job is still outstanding).
func (b *batch) doneAt() (time.Time, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.finished, b.remaining == 0
}

// validateSharding rejects ring configurations that would silently
// misroute: with a non-empty peer list, Self must be set and must appear
// in Peers spelled identically, or owner() can never match this node and
// every job — including its own — gets forwarded.
func validateSharding(cfg Config) error {
	if len(cfg.Peers) == 0 {
		return nil
	}
	if cfg.Self == "" {
		return fmt.Errorf("serve: Peers is set but Self is empty; a node that is not on its own ring would forward every job, set Self to this server's URL exactly as it appears in Peers")
	}
	for _, p := range cfg.Peers {
		if p == cfg.Self {
			return nil
		}
	}
	return fmt.Errorf("serve: Self %q is not in Peers %v; the peer list must name this node exactly as Self spells it, or the ring will route this node's own share elsewhere", cfg.Self, cfg.Peers)
}

// New builds a server and starts its executor pool. Close releases it.
// It fails on a sharding configuration that cannot route correctly (see
// Config.Self).
func New(cfg Config) (*Server, error) {
	if err := validateSharding(cfg); err != nil {
		return nil, err
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	workers := cfg.QueueWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	ropts := []sim.Option{sim.WithMetricsRegistry(reg)}
	if cfg.Tracer != nil {
		ropts = append(ropts, sim.WithTracer(cfg.Tracer))
	}
	if cfg.Store != nil {
		ropts = append(ropts, sim.WithResultStore(cfg.Store))
	}
	ropts = append(ropts, cfg.RunnerOpts...)
	batchTTL := cfg.BatchTTL
	switch {
	case batchTTL == 0:
		batchTTL = 30 * time.Minute
	case batchTTL < 0:
		batchTTL = 0 // retain forever
	}
	maxBatches := cfg.MaxBatches
	switch {
	case maxBatches == 0:
		maxBatches = 4096
	case maxBatches < 0:
		maxBatches = 0 // unlimited
	}
	s := &Server{
		cfg:         cfg,
		reg:         reg,
		tr:          cfg.Tracer,
		runner:      sim.New(ropts...),
		queue:       newFairQueue(),
		ring:        newRing(cfg.Self, cfg.Peers),
		m:           newServeMetrics(reg),
		client:      &http.Client{Timeout: 5 * time.Minute},
		batches:     map[string]*batch{},
		workers:     workers,
		batchTTL:    batchTTL,
		maxBatches:  maxBatches,
		janitorStop: make(chan struct{}),
	}
	s.exec = s.runner.RunOne
	for w := 0; w < workers; w++ {
		s.wg.Add(1)
		tid := 100 + w // distinct trace track family from the sim runner's
		s.tr.NameThread(tid, fmt.Sprintf("serve-worker-%d", w))
		go s.worker(tid)
	}
	if s.batchTTL > 0 {
		s.wg.Add(1)
		go s.janitor()
	}
	return s, nil
}

// janitor periodically evicts completed batches past the retention TTL,
// so memory is reclaimed even when the server goes idle after a burst.
// The size cap is additionally enforced inline at submission.
func (s *Server) janitor() {
	defer s.wg.Done()
	interval := s.batchTTL / 4
	if interval > time.Minute {
		interval = time.Minute
	}
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-s.janitorStop:
			return
		case <-tick.C:
			s.evictBatches(time.Now())
		}
	}
}

// evictBatches applies the retention policy: completed batches older
// than the TTL go first; if the count still exceeds MaxBatches, the
// oldest completed batches go next. Running batches are never evicted.
// Evicted ids 404 on GET /jobs/{id}; the result blobs stay in the store.
func (s *Server) evictBatches(now time.Time) (evicted int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	type done struct {
		id string
		at time.Time
	}
	var finished []done
	for id, b := range s.batches {
		if at, ok := b.doneAt(); ok {
			if s.batchTTL > 0 && now.Sub(at) > s.batchTTL {
				delete(s.batches, id)
				evicted++
				continue
			}
			finished = append(finished, done{id, at})
		}
	}
	if s.maxBatches > 0 && len(s.batches) > s.maxBatches {
		sort.Slice(finished, func(i, j int) bool { return finished[i].at.Before(finished[j].at) })
		for _, f := range finished {
			if len(s.batches) <= s.maxBatches {
				break
			}
			delete(s.batches, f.id)
			evicted++
		}
	}
	if evicted > 0 {
		s.m.batchesEvicted.Add(uint64(evicted))
	}
	return evicted
}

// worker drains the fair queue until Close.
func (s *Server) worker(tid int) {
	defer s.wg.Done()
	for {
		t, ok := s.queue.Pop()
		if !ok {
			return
		}
		s.m.queueDepth.Add(-1)
		wait := time.Since(t.enqueued)
		s.m.queueWait.Observe(uint64(wait))
		s.m.queueWaitFor(t.b.priority).Observe(uint64(wait))
		j := t.b.jobs[t.idx]
		sp := s.tr.Begin("serve job "+j.CoreName()+"|"+j.Kernel.Name, "serve", tid)
		start := time.Now()
		res, forwarded := s.runTask(j)
		s.m.latency.Observe(uint64(time.Since(start)))
		sp.End(obs.Arg{Key: "batch", Val: t.b.id}, obs.Arg{Key: "forwarded", Val: forwarded})
		s.m.completed.Inc()
		if res.Err != nil {
			s.m.errored.Inc()
		}
		t.b.setResult(t.idx, res, forwarded)
	}
}

// runTask routes one job: shard peer first when the ring says the config
// belongs elsewhere, with local fallback on any forward failure.
func (s *Server) runTask(j sim.Job) (res sim.Result, forwarded bool) {
	if owner := s.ring.owner(j.ConfigFingerprint()); owner != "" && owner != s.cfg.Self {
		if res, err := s.forward(owner, j); err == nil {
			s.m.forwarded.Inc()
			return res, true
		}
		s.m.fallback.Inc()
	}
	return s.runLocal(j), false
}

// runLocal executes on this node's runner and classifies the outcome.
func (s *Server) runLocal(j sim.Job) sim.Result {
	res := s.exec(j)
	switch {
	case res.Err != nil:
		// counted by the caller via completed/errored
	case res.FromStore:
		s.m.storeHits.Inc()
	case res.Cached:
		s.m.memoHits.Inc()
	default:
		s.m.simulated.Inc()
	}
	return res
}

// forward executes j synchronously on a shard peer via /internal/run and
// decodes the returned blob payload.
func (s *Server) forward(owner string, j sim.Job) (sim.Result, error) {
	spec, err := specFor(j)
	if err != nil {
		return sim.Result{}, err
	}
	body, err := json.Marshal(spec)
	if err != nil {
		return sim.Result{}, err
	}
	req, err := http.NewRequest(http.MethodPost, owner+"/internal/run", bytes.NewReader(body))
	if err != nil {
		return sim.Result{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := s.client.Do(req)
	if err != nil {
		return sim.Result{}, err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return sim.Result{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return sim.Result{}, fmt.Errorf("peer %s: %s: %s", owner, resp.Status, payload)
	}
	res, err := sim.DecodeResult(payload, j)
	if err != nil {
		return sim.Result{}, err
	}
	return res, nil
}

// specFor reconstructs a wire spec from a resolved job (forwarding
// carries the full config so both sides agree exactly).
func specFor(j sim.Job) (JobSpec, error) {
	spec := JobSpec{Kernel: j.Kernel.Name}
	if j.Core == sim.Boom {
		spec.Core = "boom"
		cfg := j.Boom
		spec.Boom = &cfg
	} else {
		spec.Core = "rocket"
		cfg := j.Rocket
		spec.Rocket = &cfg
	}
	if j.Sample.Enabled() {
		p := j.Sample
		spec.Sample = &p
		spec.SamplePar = j.SamplePar
	}
	return spec, nil
}

// Handler returns the API routes, each wrapped in per-endpoint
// instrumentation (request duration histogram + in-flight gauge under
// the route pattern as the endpoint label).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.instrument("/jobs", s.handleSubmit))
	mux.HandleFunc("GET /jobs/{id}", s.instrument("/jobs/{id}", s.handleStatus))
	mux.HandleFunc("GET /store/{addr}", s.instrument("/store/{addr}", s.handleStoreGet))
	mux.HandleFunc("GET /healthz", s.instrument("/healthz", s.handleHealthz))
	mux.HandleFunc("POST /internal/run", s.instrument("/internal/run", s.handleInternalRun))
	mux.HandleFunc("GET /metrics", s.instrument("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.reg.WritePrometheus(w)
	}))
	mux.HandleFunc("GET /", s.instrument("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "icicle-serve\n\nPOST /jobs\nGET /jobs/{id}\nGET /store/{addr}\nGET /healthz\nGET /metrics\n")
	}))
	return mux
}

// instrument wraps one route with the request counter, the per-endpoint
// duration histogram, and the per-endpoint + global in-flight gauges.
// Wait-mode submissions are measured like everything else, so the
// /jobs duration histogram is the server-side view of what a
// synchronous client observes.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	dur := s.m.durationFor(endpoint)
	inf := s.m.inflightFor(endpoint)
	return func(w http.ResponseWriter, r *http.Request) {
		s.m.requests.Inc()
		s.m.inflight.Add(1)
		inf.Add(1)
		start := time.Now()
		h(w, r)
		dur.Observe(uint64(time.Since(start)))
		inf.Add(-1)
		s.m.inflight.Add(-1)
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 8<<20)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Jobs) == 0 {
		httpError(w, http.StatusBadRequest, "empty job list")
		return
	}
	if req.Client == "" {
		req.Client = "anon"
	}
	jobs := make([]sim.Job, len(req.Jobs))
	for i, spec := range req.Jobs {
		j, err := spec.Job()
		if err != nil {
			httpError(w, http.StatusBadRequest, "job %d: %v", i, err)
			return
		}
		jobs[i] = j
	}
	if s.closed.Load() {
		httpError(w, http.StatusServiceUnavailable, "server shutting down")
		return
	}
	s.started.CompareAndSwap(0, time.Now().UnixNano())
	b := &batch{
		client:    req.Client,
		priority:  req.Priority,
		jobs:      jobs,
		created:   time.Now(),
		done:      make(chan struct{}),
		results:   make([]sim.Result, len(jobs)),
		resDone:   make([]bool, len(jobs)),
		forwarded: make([]bool, len(jobs)),
		remaining: len(jobs),
	}
	s.mu.Lock()
	s.nextID++
	b.id = fmt.Sprintf("b-%06d", s.nextID)
	s.batches[b.id] = b
	over := s.maxBatches > 0 && len(s.batches) > s.maxBatches
	s.mu.Unlock()
	if over {
		s.evictBatches(time.Now())
	}
	now := time.Now()
	queued := 0
	for i := range jobs {
		if !s.queue.Push(req.Client, req.Weight, req.Priority, task{b: b, idx: i, enqueued: now}) {
			// Close raced the submission: the queue dropped this task (and
			// will drop the rest), so the batch could never finish. Roll
			// the registration back and refuse the submission; any tasks
			// already accepted are discarded by the closed queue.
			s.mu.Lock()
			delete(s.batches, b.id)
			s.mu.Unlock()
			s.m.queueDepth.Add(-int64(queued))
			httpError(w, http.StatusServiceUnavailable, "server shutting down")
			return
		}
		queued++
		s.m.queueDepth.Add(1)
	}
	s.m.submitted.Add(uint64(len(jobs)))
	if req.Wait {
		// Synchronous mode: block until the batch completes and answer
		// with the full status body — one round trip, no polling, which
		// is what a latency-measuring client wants. The request context
		// covers client disconnects and server shutdown (Close tears the
		// connection down, cancelling the context), so no waiter leaks.
		select {
		case <-b.done:
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(s.statusOf(b))
		case <-r.Context().Done():
			// Client gone or connection torn down; nothing to write.
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(SubmitResponse{
		ID:        b.id,
		Jobs:      len(jobs),
		StatusURL: "/jobs/" + b.id,
	})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	b := s.batches[id]
	s.mu.Unlock()
	if b == nil {
		httpError(w, http.StatusNotFound, "unknown batch %q", id)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.statusOf(b))
}

func (s *Server) statusOf(b *batch) StatusResponse {
	b.mu.Lock()
	defer b.mu.Unlock()
	done := len(b.jobs) - b.remaining
	st := StatusResponse{
		ID:       b.id,
		Client:   b.client,
		Priority: b.priority,
		Done:     done,
		Total:    len(b.jobs),
		Results:  make([]JobResult, len(b.jobs)),
	}
	switch {
	case done == 0:
		st.State = "queued"
	case b.remaining > 0:
		st.State = "running"
	default:
		st.State = "done"
	}
	if b.remaining == 0 {
		st.ElapsedSec = b.finished.Sub(b.created).Seconds()
	} else {
		st.ElapsedSec = time.Since(b.created).Seconds()
	}
	withStore := s.cfg.Store != nil
	for i := range b.jobs {
		if !b.resDone[i] {
			st.Results[i] = JobResult{Key: b.jobs[i].Key(), Done: false}
			continue
		}
		st.Results[i] = ResultJSON(b.results[i], withStore)
		st.Results[i].Forwarded = b.forwarded[i]
	}
	return st
}

func (s *Server) handleStoreGet(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Store == nil {
		httpError(w, http.StatusNotFound, "no persistent store configured")
		return
	}
	addr := r.PathValue("addr")
	// Only well-formed content addresses reach the store. The wildcard
	// captures unescaped segments, so without this gate a crafted addr
	// ("..%2F..") would be joined under the store directory and could
	// read — or, via quarantine's rename, move — files outside it. The
	// store re-checks, but rejecting here keeps the API contract explicit.
	if !store.ValidAddr(addr) {
		httpError(w, http.StatusNotFound, "not a content address (64 lowercase hex digits): %q", addr)
		return
	}
	payload, ok := s.cfg.Store.GetAddr(addr)
	if !ok {
		httpError(w, http.StatusNotFound, "no verified blob at %s", addr)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Icicle-Store-Addr", addr)
	w.Write(payload)
}

func (s *Server) handleInternalRun(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, "bad job spec: %v", err)
		return
	}
	j, err := spec.Job()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// The owner executes locally, never re-forwards: /internal/run is the
	// ring's terminal hop, so a stale peer list cannot create a cycle.
	res := s.runLocal(j)
	s.m.completed.Inc()
	if res.Err != nil {
		s.m.errored.Inc()
		httpError(w, http.StatusInternalServerError, "%v", res.Err)
		return
	}
	payload, err := sim.EncodeResult(res)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "encode: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(payload)
}

// healthz is the liveness body.
type healthz struct {
	Status     string       `json:"status"`
	QueueDepth int          `json:"queue_depth"`
	Batches    int          `json:"batches"`
	Workers    int          `json:"workers"`
	Peers      []string     `json:"peers,omitempty"`
	Store      *store.Stats `json:"store,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	nb := len(s.batches)
	s.mu.Unlock()
	h := healthz{
		Status:     "ok",
		QueueDepth: s.queue.Depth(),
		Batches:    nb,
		Workers:    s.workers,
		Peers:      s.cfg.Peers,
	}
	if s.cfg.Store != nil {
		st := s.cfg.Store.Stats()
		h.Store = &st
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(h)
}

// Progress adapts the service counters to the obs /progress shape.
func (s *Server) Progress() obs.Progress {
	done := s.m.completed.Value()
	p := obs.Progress{
		Done:      done,
		Total:     s.m.submitted.Value(),
		CacheHits: s.m.storeHits.Value() + s.m.memoHits.Value(),
	}
	if done > 0 {
		p.HitRate = float64(p.CacheHits) / float64(done)
	}
	if t := s.started.Load(); t != 0 {
		p.ElapsedSec = time.Since(time.Unix(0, t)).Seconds()
		if p.ElapsedSec > 0 {
			p.SimsPerSec = float64(done) / p.ElapsedSec
			if p.Total > done && p.SimsPerSec > 0 {
				p.ETASec = float64(p.Total-done) / p.SimsPerSec
			}
		}
	}
	return p
}

// Runner exposes the underlying sim runner (stats, tests).
func (s *Server) Runner() *sim.Runner { return s.runner }

// Workers reports the size of the executor pool (startup logging).
func (s *Server) Workers() int { return s.workers }

// Start serves the API on addr in a background goroutine, returning the
// bound address ("127.0.0.1:0" picks a free port).
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.listener = ln
	s.httpSrv = &http.Server{Handler: s.Handler()}
	go s.httpSrv.Serve(ln)
	return ln.Addr().String(), nil
}

// Close stops accepting work, releases the executor pool, and shuts the
// HTTP listener down. Queued-but-unstarted tasks are dropped (their
// batches simply never finish); in-flight jobs complete.
func (s *Server) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	s.queue.Close()
	close(s.janitorStop)
	s.wg.Wait()
	if s.httpSrv != nil {
		return s.httpSrv.Close()
	}
	return nil
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
