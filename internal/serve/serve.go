// Package serve is the simulation-as-a-service layer: an HTTP/JSON
// job-submission API over the internal/sim runner, backed by the
// persistent content-addressed result store (internal/store) so
// identical sweeps are free across processes and users. It is the
// ROADMAP's "millions of users" refactor: submission decouples from
// execution through a priority queue with per-client weighted fairness,
// results persist and are content-addressable, and a fleet of servers
// shards work by config fingerprint over a consistent-hash ring.
//
// API:
//
//	POST /jobs          submit a batch  → {id, jobs, status_url}
//	GET  /jobs/{id}     status + per-job results (JSON)
//	GET  /store/{addr}  raw verified result blob (gob payload)
//	GET  /healthz       liveness + queue/store snapshot
//	GET  /metrics       Prometheus text (the server's registry)
//	POST /internal/run  shard-internal synchronous execution
package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"icicle/internal/obs"
	"icicle/internal/sim"
	"icicle/internal/store"
)

// Config assembles a Server.
type Config struct {
	// Store is the persistent result store (nil = in-memory only; the
	// /store/ endpoint then 404s and nothing survives the process).
	Store *store.Store
	// Registry receives the server's icicle_serve_* metrics and the
	// runner's icicle_sim_* metrics (nil = a fresh private registry).
	Registry *obs.Registry
	// Tracer records serve-job spans (nil = no tracing).
	Tracer *obs.Tracer
	// QueueWorkers is the number of concurrent job executors (default
	// GOMAXPROCS). This is the service's parallelism; sampled jobs may
	// additionally fan out windows per their SamplePar.
	QueueWorkers int
	// Self is this server's advertised base URL ("http://host:port") on
	// the shard ring; Peers lists every shard. Empty/solo = no sharding.
	Self  string
	Peers []string
	// RunnerOpts appends options to the underlying sim runner (tests).
	RunnerOpts []sim.Option
}

// Server is one icicle-serve node.
type Server struct {
	cfg    Config
	reg    *obs.Registry
	tr     *obs.Tracer
	runner *sim.Runner
	queue  *fairQueue
	ring   *ring
	m      *serveMetrics
	client *http.Client

	// exec runs one job locally; tests stub it to model synthetic load.
	exec func(sim.Job) sim.Result

	mu      sync.Mutex
	batches map[string]*batch
	nextID  uint64

	started atomic.Int64 // first submission wall clock (unix nanos)

	wg       sync.WaitGroup
	workers  int
	httpSrv  *http.Server
	listener net.Listener
	closed   atomic.Bool
}

// batch is one submitted job batch and its accumulating results.
type batch struct {
	id       string
	client   string
	priority int
	jobs     []sim.Job
	created  time.Time

	mu        sync.Mutex
	results   []sim.Result
	resDone   []bool
	forwarded []bool
	remaining int
	finished  time.Time
}

func (b *batch) setResult(i int, res sim.Result, forwarded bool) (batchDone bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.resDone[i] {
		return false
	}
	b.results[i] = res
	b.resDone[i] = true
	b.forwarded[i] = forwarded
	b.remaining--
	if b.remaining == 0 {
		b.finished = time.Now()
		return true
	}
	return false
}

// New builds a server and starts its executor pool. Close releases it.
func New(cfg Config) *Server {
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	workers := cfg.QueueWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	ropts := []sim.Option{sim.WithMetricsRegistry(reg)}
	if cfg.Tracer != nil {
		ropts = append(ropts, sim.WithTracer(cfg.Tracer))
	}
	if cfg.Store != nil {
		ropts = append(ropts, sim.WithResultStore(cfg.Store))
	}
	ropts = append(ropts, cfg.RunnerOpts...)
	s := &Server{
		cfg:     cfg,
		reg:     reg,
		tr:      cfg.Tracer,
		runner:  sim.New(ropts...),
		queue:   newFairQueue(),
		ring:    newRing(cfg.Self, cfg.Peers),
		m:       newServeMetrics(reg),
		client:  &http.Client{Timeout: 5 * time.Minute},
		batches: map[string]*batch{},
		workers: workers,
	}
	s.exec = s.runner.RunOne
	for w := 0; w < workers; w++ {
		s.wg.Add(1)
		tid := 100 + w // distinct trace track family from the sim runner's
		s.tr.NameThread(tid, fmt.Sprintf("serve-worker-%d", w))
		go s.worker(tid)
	}
	return s
}

// worker drains the fair queue until Close.
func (s *Server) worker(tid int) {
	defer s.wg.Done()
	for {
		t, ok := s.queue.Pop()
		if !ok {
			return
		}
		s.m.queueDepth.Add(-1)
		wait := time.Since(t.enqueued)
		s.m.queueWait.Observe(uint64(wait))
		j := t.b.jobs[t.idx]
		sp := s.tr.Begin("serve job "+j.CoreName()+"|"+j.Kernel.Name, "serve", tid)
		start := time.Now()
		res, forwarded := s.runTask(j)
		s.m.latency.Observe(uint64(time.Since(start)))
		sp.End(obs.Arg{Key: "batch", Val: t.b.id}, obs.Arg{Key: "forwarded", Val: forwarded})
		s.m.completed.Inc()
		if res.Err != nil {
			s.m.errored.Inc()
		}
		t.b.setResult(t.idx, res, forwarded)
	}
}

// runTask routes one job: shard peer first when the ring says the config
// belongs elsewhere, with local fallback on any forward failure.
func (s *Server) runTask(j sim.Job) (res sim.Result, forwarded bool) {
	if owner := s.ring.owner(j.ConfigFingerprint()); owner != "" && owner != s.cfg.Self {
		if res, err := s.forward(owner, j); err == nil {
			s.m.forwarded.Inc()
			return res, true
		}
		s.m.fallback.Inc()
	}
	return s.runLocal(j), false
}

// runLocal executes on this node's runner and classifies the outcome.
func (s *Server) runLocal(j sim.Job) sim.Result {
	res := s.exec(j)
	switch {
	case res.Err != nil:
		// counted by the caller via completed/errored
	case res.FromStore:
		s.m.storeHits.Inc()
	case res.Cached:
		s.m.memoHits.Inc()
	default:
		s.m.simulated.Inc()
	}
	return res
}

// forward executes j synchronously on a shard peer via /internal/run and
// decodes the returned blob payload.
func (s *Server) forward(owner string, j sim.Job) (sim.Result, error) {
	spec, err := specFor(j)
	if err != nil {
		return sim.Result{}, err
	}
	body, err := json.Marshal(spec)
	if err != nil {
		return sim.Result{}, err
	}
	req, err := http.NewRequest(http.MethodPost, owner+"/internal/run", bytes.NewReader(body))
	if err != nil {
		return sim.Result{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := s.client.Do(req)
	if err != nil {
		return sim.Result{}, err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return sim.Result{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return sim.Result{}, fmt.Errorf("peer %s: %s: %s", owner, resp.Status, payload)
	}
	res, err := sim.DecodeResult(payload, j)
	if err != nil {
		return sim.Result{}, err
	}
	return res, nil
}

// specFor reconstructs a wire spec from a resolved job (forwarding
// carries the full config so both sides agree exactly).
func specFor(j sim.Job) (JobSpec, error) {
	spec := JobSpec{Kernel: j.Kernel.Name}
	if j.Core == sim.Boom {
		spec.Core = "boom"
		cfg := j.Boom
		spec.Boom = &cfg
	} else {
		spec.Core = "rocket"
		cfg := j.Rocket
		spec.Rocket = &cfg
	}
	if j.Sample.Enabled() {
		p := j.Sample
		spec.Sample = &p
		spec.SamplePar = j.SamplePar
	}
	return spec, nil
}

// Handler returns the API routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /store/{addr}", s.handleStoreGet)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("POST /internal/run", s.handleInternalRun)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.reg.WritePrometheus(w)
	})
	mux.HandleFunc("GET /", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "icicle-serve\n\nPOST /jobs\nGET /jobs/{id}\nGET /store/{addr}\nGET /healthz\nGET /metrics\n")
	})
	return s.countRequests(mux)
}

func (s *Server) countRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.m.requests.Inc()
		next.ServeHTTP(w, r)
	})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 8<<20)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Jobs) == 0 {
		httpError(w, http.StatusBadRequest, "empty job list")
		return
	}
	if req.Client == "" {
		req.Client = "anon"
	}
	jobs := make([]sim.Job, len(req.Jobs))
	for i, spec := range req.Jobs {
		j, err := spec.Job()
		if err != nil {
			httpError(w, http.StatusBadRequest, "job %d: %v", i, err)
			return
		}
		jobs[i] = j
	}
	if s.closed.Load() {
		httpError(w, http.StatusServiceUnavailable, "server shutting down")
		return
	}
	s.started.CompareAndSwap(0, time.Now().UnixNano())
	b := &batch{
		client:    req.Client,
		priority:  req.Priority,
		jobs:      jobs,
		created:   time.Now(),
		results:   make([]sim.Result, len(jobs)),
		resDone:   make([]bool, len(jobs)),
		forwarded: make([]bool, len(jobs)),
		remaining: len(jobs),
	}
	s.mu.Lock()
	s.nextID++
	b.id = fmt.Sprintf("b-%06d", s.nextID)
	s.batches[b.id] = b
	s.mu.Unlock()
	now := time.Now()
	for i := range jobs {
		s.queue.Push(req.Client, req.Weight, req.Priority, task{b: b, idx: i, enqueued: now})
		s.m.queueDepth.Add(1)
	}
	s.m.submitted.Add(uint64(len(jobs)))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(SubmitResponse{
		ID:        b.id,
		Jobs:      len(jobs),
		StatusURL: "/jobs/" + b.id,
	})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	b := s.batches[id]
	s.mu.Unlock()
	if b == nil {
		httpError(w, http.StatusNotFound, "unknown batch %q", id)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.statusOf(b))
}

func (s *Server) statusOf(b *batch) StatusResponse {
	b.mu.Lock()
	defer b.mu.Unlock()
	done := len(b.jobs) - b.remaining
	st := StatusResponse{
		ID:       b.id,
		Client:   b.client,
		Priority: b.priority,
		Done:     done,
		Total:    len(b.jobs),
		Results:  make([]JobResult, len(b.jobs)),
	}
	switch {
	case done == 0:
		st.State = "queued"
	case b.remaining > 0:
		st.State = "running"
	default:
		st.State = "done"
	}
	if b.remaining == 0 {
		st.ElapsedSec = b.finished.Sub(b.created).Seconds()
	} else {
		st.ElapsedSec = time.Since(b.created).Seconds()
	}
	withStore := s.cfg.Store != nil
	for i := range b.jobs {
		if !b.resDone[i] {
			st.Results[i] = JobResult{Key: b.jobs[i].Key(), Done: false}
			continue
		}
		st.Results[i] = ResultJSON(b.results[i], withStore)
		st.Results[i].Forwarded = b.forwarded[i]
	}
	return st
}

func (s *Server) handleStoreGet(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Store == nil {
		httpError(w, http.StatusNotFound, "no persistent store configured")
		return
	}
	addr := r.PathValue("addr")
	payload, ok := s.cfg.Store.GetAddr(addr)
	if !ok {
		httpError(w, http.StatusNotFound, "no verified blob at %s", addr)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Icicle-Store-Addr", addr)
	w.Write(payload)
}

func (s *Server) handleInternalRun(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, "bad job spec: %v", err)
		return
	}
	j, err := spec.Job()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// The owner executes locally, never re-forwards: /internal/run is the
	// ring's terminal hop, so a stale peer list cannot create a cycle.
	res := s.runLocal(j)
	s.m.completed.Inc()
	if res.Err != nil {
		s.m.errored.Inc()
		httpError(w, http.StatusInternalServerError, "%v", res.Err)
		return
	}
	payload, err := sim.EncodeResult(res)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "encode: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(payload)
}

// healthz is the liveness body.
type healthz struct {
	Status     string       `json:"status"`
	QueueDepth int          `json:"queue_depth"`
	Batches    int          `json:"batches"`
	Workers    int          `json:"workers"`
	Peers      []string     `json:"peers,omitempty"`
	Store      *store.Stats `json:"store,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	nb := len(s.batches)
	s.mu.Unlock()
	h := healthz{
		Status:     "ok",
		QueueDepth: s.queue.Depth(),
		Batches:    nb,
		Workers:    s.workers,
		Peers:      s.cfg.Peers,
	}
	if s.cfg.Store != nil {
		st := s.cfg.Store.Stats()
		h.Store = &st
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(h)
}

// Progress adapts the service counters to the obs /progress shape.
func (s *Server) Progress() obs.Progress {
	done := s.m.completed.Value()
	p := obs.Progress{
		Done:      done,
		Total:     s.m.submitted.Value(),
		CacheHits: s.m.storeHits.Value() + s.m.memoHits.Value(),
	}
	if done > 0 {
		p.HitRate = float64(p.CacheHits) / float64(done)
	}
	if t := s.started.Load(); t != 0 {
		p.ElapsedSec = time.Since(time.Unix(0, t)).Seconds()
		if p.ElapsedSec > 0 {
			p.SimsPerSec = float64(done) / p.ElapsedSec
			if p.Total > done && p.SimsPerSec > 0 {
				p.ETASec = float64(p.Total-done) / p.SimsPerSec
			}
		}
	}
	return p
}

// Runner exposes the underlying sim runner (stats, tests).
func (s *Server) Runner() *sim.Runner { return s.runner }

// Start serves the API on addr in a background goroutine, returning the
// bound address ("127.0.0.1:0" picks a free port).
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.listener = ln
	s.httpSrv = &http.Server{Handler: s.Handler()}
	go s.httpSrv.Serve(ln)
	return ln.Addr().String(), nil
}

// Close stops accepting work, releases the executor pool, and shuts the
// HTTP listener down. Queued-but-unstarted tasks are dropped (their
// batches simply never finish); in-flight jobs complete.
func (s *Server) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	s.queue.Close()
	s.wg.Wait()
	if s.httpSrv != nil {
		return s.httpSrv.Close()
	}
	return nil
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
