package serve

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Sharding: jobs are routed across peer servers by consistent hashing on
// the job's config fingerprint. Routing by configuration (not by job)
// keeps every kernel of one config on one node, so that node's per-config
// core pools and plan cache stay hot for the whole sweep — and a shared
// (or per-node) result store makes the placement a pure performance
// choice, never a correctness one. Consistent hashing keeps the map
// stable as peers come and go: each peer projects vnodeReplicas points
// onto a hash ring and a fingerprint belongs to the first point at or
// after its own hash. A peer that fails to answer falls back to local
// execution (the requester can run anything), so sharding degrades to a
// slower sweep, never a failed one.

// vnodeReplicas is how many ring points each peer projects; more points
// smooth the load split at the cost of a larger (still tiny) ring.
const vnodeReplicas = 64

type ringPoint struct {
	hash uint64
	peer string
}

// ring is an immutable consistent-hash ring over peer base URLs.
type ring struct {
	self   string
	points []ringPoint
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	// FNV alone clusters badly for near-identical strings (peer URLs
	// differing in one byte); a splitmix64-style finalizer avalanches the
	// bits so vnode points spread uniformly around the ring.
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// newRing builds the ring. self is this server's own advertised URL;
// peers lists every shard (self included or not — it is added). A ring
// with one distinct peer routes everything locally.
func newRing(self string, peers []string) *ring {
	r := &ring{self: self}
	seen := map[string]bool{}
	for _, p := range append([]string{self}, peers...) {
		if p == "" || seen[p] {
			continue
		}
		seen[p] = true
		for i := 0; i < vnodeReplicas; i++ {
			r.points = append(r.points, ringPoint{
				hash: hash64(fmt.Sprintf("%s#%d", p, i)),
				peer: p,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// owner returns the peer responsible for the fingerprint ("" on an
// empty/solo ring, meaning run locally).
func (r *ring) owner(fingerprint string) string {
	if r == nil || len(r.points) <= vnodeReplicas { // zero or one peer
		return ""
	}
	h := hash64(fingerprint)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].peer
}
