package serve

import (
	"fmt"
	"testing"
)

func fingerprints(n int) []string {
	fps := make([]string, n)
	for i := range fps {
		fps[i] = fmt.Sprintf("rocket|{XLen:64 Cache:%d}", i)
	}
	return fps
}

// A solo or empty ring routes everything locally ("").
func TestRingSoloIsLocal(t *testing.T) {
	for _, r := range []*ring{
		nil,
		newRing("", nil),
		newRing("http://a", nil),
		newRing("http://a", []string{"http://a"}), // self listed as peer
		newRing("", []string{"http://a"}),         // single peer, no self
	} {
		if got := r.owner("anything"); got != "" {
			t.Fatalf("solo ring owner = %q, want \"\"", got)
		}
	}
}

// Ownership is deterministic and independent of peer list order.
func TestRingDeterministic(t *testing.T) {
	peers := []string{"http://a", "http://b", "http://c"}
	r1 := newRing("http://a", peers)
	r2 := newRing("http://a", []string{"http://c", "http://b", "http://a"})
	for _, fp := range fingerprints(100) {
		if r1.owner(fp) != r2.owner(fp) {
			t.Fatalf("owner of %q differs across peer orderings: %q vs %q",
				fp, r1.owner(fp), r2.owner(fp))
		}
	}
}

// Vnode replication spreads load: with 3 peers, each owns a meaningful
// share of fingerprints (no peer below 15% or above 60% of 300).
func TestRingBalance(t *testing.T) {
	r := newRing("http://a", []string{"http://b", "http://c"})
	counts := map[string]int{}
	fps := fingerprints(300)
	for _, fp := range fps {
		counts[r.owner(fp)]++
	}
	if len(counts) != 3 {
		t.Fatalf("expected all 3 peers to own something, got %v", counts)
	}
	for p, n := range counts {
		if n < len(fps)*15/100 || n > len(fps)*60/100 {
			t.Fatalf("unbalanced ring: %s owns %d of %d (%v)", p, n, len(fps), counts)
		}
	}
}

// Consistent hashing: removing one peer only remaps the fingerprints that
// peer owned — everything else keeps its owner.
func TestRingStabilityOnPeerLoss(t *testing.T) {
	full := newRing("http://a", []string{"http://b", "http://c"})
	reduced := newRing("http://a", []string{"http://b"})
	fps := fingerprints(300)
	moved := 0
	for _, fp := range fps {
		before := full.owner(fp)
		after := reduced.owner(fp)
		if before == "http://c" {
			if after == "http://c" {
				t.Fatalf("removed peer still owns %q", fp)
			}
			moved++
			continue
		}
		if after != before {
			t.Fatalf("fingerprint %q moved %q → %q although its owner never left",
				fp, before, after)
		}
	}
	if moved == 0 {
		t.Fatal("test vacuous: removed peer owned nothing")
	}
}
