package serve

import (
	"sync"
	"time"
)

// The scheduling discipline: strict priority classes on the outside,
// weighted fairness across clients on the inside. A class only runs when
// every higher class is empty (priority means priority); within a class,
// clients share capacity in proportion to their weights via stride
// scheduling — each client carries a virtual-time "pass", the client
// with the minimum pass runs next, and running advances its pass by
// strideUnit/weight. A flood from one client therefore cannot starve
// another: the flooder's pass races ahead and the light client's tasks
// keep winning the minimum. Joiners are floored at the class's virtual
// time — which persists as a watermark across the class draining — so
// neither idleness nor a fully-drained history shifts anyone's share.
// Within one client, tasks run FIFO.

// strideUnit is the virtual-time quantum for weight 1; larger weights
// advance in smaller strides and therefore run proportionally more.
const strideUnit = 1 << 20

// maxWeight bounds client weights so one client cannot claim effectively
// the whole machine through a huge weight.
const maxWeight = 64

// task is one queued unit of work: job t.idx of batch t.b.
type task struct {
	b        *batch
	idx      int
	enqueued time.Time
}

// clientQ is one client's FIFO within one priority class, plus its
// stride-scheduling state.
type clientQ struct {
	name   string
	weight uint64
	pass   uint64 // virtual time; min-pass active client runs next
	tasks  []task
	head   int
}

func (c *clientQ) empty() bool { return c.head >= len(c.tasks) }

func (c *clientQ) push(t task) {
	// Compact the drained prefix occasionally so the slice stays bounded.
	if c.head > 64 && c.head*2 >= len(c.tasks) {
		n := copy(c.tasks, c.tasks[c.head:])
		c.tasks = c.tasks[:n]
		c.head = 0
	}
	c.tasks = append(c.tasks, t)
}

func (c *clientQ) pop() task {
	t := c.tasks[c.head]
	c.tasks[c.head] = task{} // release the batch pointer
	c.head++
	return t
}

// classQ is one strict-priority class.
type classQ struct {
	priority int
	clients  map[string]*clientQ
	active   []*clientQ // non-empty clients, unordered
	// watermark is the class's virtual time: the pass of the most recent
	// dispatch. It survives the active set draining, so the join floor
	// never rewinds to zero — without it, a fresh client joining an idle
	// class would start at pass 0 while a returning client kept its
	// historical pass, starving the returner until the newcomer caught up
	// (past work would bank debt across idle periods, the mirror image of
	// the "idleness never banks credit" invariant).
	watermark uint64
}

// minPass returns the class's current virtual time: the smallest pass
// among active clients, or the watermark when none are active. It is the
// join floor for clients that were idle, so idleness banks no credit and
// past work banks no debt. Active passes are always >= watermark
// (clients join at or above it and passes only advance), so the two
// cases agree at the boundary.
func (cl *classQ) minPass() uint64 {
	min := cl.watermark
	for i, c := range cl.active {
		if i == 0 || c.pass < min {
			min = c.pass
		}
	}
	return min
}

// fairQueue is the submission queue: Push never blocks, Pop blocks until
// a task is available or the queue closes.
type fairQueue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	classes map[int]*classQ
	prios   []int // class priorities, sorted descending
	depth   int
	closed  bool
}

func newFairQueue() *fairQueue {
	q := &fairQueue{classes: map[int]*classQ{}}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Push enqueues one task for (client, weight, priority). It reports
// whether the task was accepted: false means the queue has closed and
// the task was dropped — the caller must fail the submission rather
// than leave its batch waiting on work that will never run.
func (q *fairQueue) Push(client string, weight, priority int, t task) bool {
	if weight < 1 {
		weight = 1
	}
	if weight > maxWeight {
		weight = maxWeight
	}
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return false
	}
	cl := q.classes[priority]
	if cl == nil {
		cl = &classQ{priority: priority, clients: map[string]*clientQ{}}
		q.classes[priority] = cl
		// Insert into the descending priority order.
		pos := len(q.prios)
		for i, p := range q.prios {
			if priority > p {
				pos = i
				break
			}
		}
		q.prios = append(q.prios, 0)
		copy(q.prios[pos+1:], q.prios[pos:])
		q.prios[pos] = priority
	}
	c := cl.clients[client]
	if c == nil {
		c = &clientQ{name: client, weight: uint64(weight)}
		cl.clients[client] = c
	}
	c.weight = uint64(weight) // latest submission wins
	if c.empty() {
		// (Re)joining the active set: start at the current virtual time
		// floor, keeping any pass already ahead of it.
		if mp := cl.minPass(); c.pass < mp {
			c.pass = mp
		}
		cl.active = append(cl.active, c)
	}
	c.push(t)
	q.depth++
	q.mu.Unlock()
	q.cond.Signal()
	return true
}

// Pop dequeues the next task by priority-then-fairness, blocking while
// the queue is empty. ok=false means the queue closed.
func (q *fairQueue) Pop() (task, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.closed {
			return task{}, false
		}
		if q.depth > 0 {
			break
		}
		q.cond.Wait()
	}
	for _, p := range q.prios {
		cl := q.classes[p]
		if len(cl.active) == 0 {
			continue
		}
		// Min-pass active client; ties broken by name for determinism.
		best := 0
		for i := 1; i < len(cl.active); i++ {
			c, b := cl.active[i], cl.active[best]
			if c.pass < b.pass || (c.pass == b.pass && c.name < b.name) {
				best = i
			}
		}
		c := cl.active[best]
		t := c.pop()
		// The dispatched minimum pass is the class's virtual time; record
		// it so the join floor persists after the active set drains.
		cl.watermark = c.pass
		c.pass += strideUnit / c.weight
		if c.empty() {
			cl.active[best] = cl.active[len(cl.active)-1]
			cl.active = cl.active[:len(cl.active)-1]
		}
		q.depth--
		return t, true
	}
	// depth said there was work but no class had it: unreachable unless
	// bookkeeping broke; fail closed.
	return task{}, false
}

// Depth reports the number of queued tasks.
func (q *fairQueue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.depth
}

// Close wakes all blocked Pops; queued tasks are dropped.
func (q *fairQueue) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}
