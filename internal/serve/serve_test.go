package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"icicle/internal/obs"
	"icicle/internal/rocket"
	"icicle/internal/sample"
	"icicle/internal/sim"
	"icicle/internal/store"
)

// testPolicy is a fast sampling schedule for service tests.
func testPolicy() sample.Policy {
	return sample.Policy{Window: 2048, Period: 8192, Warmup: 2048}
}

// postJSON posts v and decodes the response into out, returning the code.
func postJSON(t *testing.T, url string, v any, out any) int {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode response: %v", err)
		}
	}
	return resp.StatusCode
}

// pollDone polls GET {base}/jobs/{id} until state=="done" or the deadline.
func pollDone(t *testing.T, base, id string) StatusResponse {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		resp, err := http.Get(base + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st StatusResponse
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State == "done" {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("batch %s not done before deadline: %d/%d", id, st.Done, st.Total)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// canonical strips the volatile routing/cache flags so results can be
// compared bytewise across servers, stores, and the in-process runner.
func canonical(t *testing.T, jr JobResult) []byte {
	t.Helper()
	jr.Cached = false
	jr.FromStore = false
	jr.Forwarded = false
	b, err := json.Marshal(jr)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func testSpecs() []JobSpec {
	return []JobSpec{
		{Core: "rocket", Kernel: "multiply"},
		{Core: "rocket", Kernel: "median"},
		{Core: "rocket", Kernel: "vvadd", Sample: ptr(testPolicy()), SamplePar: 2},
	}
}

func ptr[T any](v T) *T { return &v }

// mustNew fails the test on a config error (none of these tests use an
// invalid sharding config).
func mustNew(t testing.TB, cfg Config) *Server {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// End-to-end: submit through HTTP, poll to completion, and require the
// service's JSON to be byte-identical to the in-process runner's rendering
// of the same jobs; the /store blob must decode to the same result.
func TestServeEndToEnd(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := mustNew(t, Config{Store: st, QueueWorkers: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var ack SubmitResponse
	code := postJSON(t, ts.URL+"/jobs", SubmitRequest{Client: "e2e", Jobs: testSpecs()}, &ack)
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", code)
	}
	if ack.Jobs != 3 || ack.ID == "" || ack.StatusURL != "/jobs/"+ack.ID {
		t.Fatalf("bad ack: %+v", ack)
	}
	status := pollDone(t, ts.URL, ack.ID)

	// Reference: a fresh private runner, no store, nothing shared.
	ref := sim.New()
	for i, spec := range testSpecs() {
		j, err := spec.Job()
		if err != nil {
			t.Fatal(err)
		}
		want := ResultJSON(ref.RunOne(j), true)
		got := status.Results[i]
		if got.Error != "" {
			t.Fatalf("job %d errored: %s", i, got.Error)
		}
		if !bytes.Equal(canonical(t, got), canonical(t, want)) {
			t.Errorf("job %d: service JSON differs from in-process runner:\n got %s\nwant %s",
				i, canonical(t, got), canonical(t, want))
		}

		// The raw blob behind /store/{addr} decodes to the same result.
		resp, err := http.Get(ts.URL + "/store/" + got.StoreAddr)
		if err != nil {
			t.Fatal(err)
		}
		payload, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("job %d: GET /store/%s = %d: %s", i, got.StoreAddr, resp.StatusCode, payload)
		}
		res, err := sim.DecodeResult(payload, j)
		if err != nil {
			t.Fatalf("job %d: decode store blob: %v", i, err)
		}
		refRes := ref.RunOne(j)
		refRes.Cached, res.Cached = false, false
		refRes.FromStore, res.FromStore = false, false
		if !reflect.DeepEqual(res, refRes) {
			t.Errorf("job %d: store blob decodes to a different result", i)
		}
	}
}

// Submitting the same batch twice: the second pass completes entirely from
// the memo (no new simulations) and says so.
func TestServeMemoSecondBatch(t *testing.T) {
	reg := obs.NewRegistry()
	srv := mustNew(t, Config{Registry: reg, QueueWorkers: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	specs := []JobSpec{{Core: "rocket", Kernel: "multiply"}, {Core: "rocket", Kernel: "median"}}
	var ack SubmitResponse
	postJSON(t, ts.URL+"/jobs", SubmitRequest{Jobs: specs}, &ack)
	pollDone(t, ts.URL, ack.ID)
	simulated := srv.m.simulated.Value()
	if simulated != 2 {
		t.Fatalf("first batch simulated %d, want 2", simulated)
	}
	postJSON(t, ts.URL+"/jobs", SubmitRequest{Jobs: specs}, &ack)
	st := pollDone(t, ts.URL, ack.ID)
	if got := srv.m.simulated.Value(); got != simulated {
		t.Fatalf("second identical batch simulated %d new jobs, want 0", got-simulated)
	}
	if srv.m.memoHits.Value() != 2 {
		t.Fatalf("memo hits = %d, want 2", srv.m.memoHits.Value())
	}
	for i, r := range st.Results {
		if !r.Cached {
			t.Fatalf("second-batch job %d not marked cached", i)
		}
	}
}

// API validation: malformed and unresolvable requests fail with 4xx and a
// JSON error body; nothing is enqueued.
func TestServeValidation(t *testing.T) {
	srv := mustNew(t, Config{QueueWorkers: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		name string
		body string
		want int
	}{
		{"garbage body", "{not json", http.StatusBadRequest},
		{"empty jobs", `{"jobs":[]}`, http.StatusBadRequest},
		{"unknown kernel", `{"jobs":[{"core":"rocket","kernel":"nope"}]}`, http.StatusBadRequest},
		{"unknown core", `{"jobs":[{"core":"cray","kernel":"vvadd"}]}`, http.StatusBadRequest},
		{"bad boom size", `{"jobs":[{"core":"boom","kernel":"vvadd","size":"colossal"}]}`, http.StatusBadRequest},
		{"sample_par without sample", `{"jobs":[{"core":"rocket","kernel":"vvadd","sample_par":4}]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		var e map[string]string
		json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
		if e["error"] == "" {
			t.Errorf("%s: missing JSON error body", tc.name)
		}
	}
	if d := srv.queue.Depth(); d != 0 {
		t.Fatalf("rejected submissions leaked %d tasks into the queue", d)
	}

	for _, path := range []string{"/jobs/b-999999", "/store/deadbeef", "/store/zz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}
}

// healthz reports liveness plus queue/store posture; /metrics exposes the
// icicle_serve_* family.
func TestServeHealthzAndMetrics(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := mustNew(t, Config{Store: st, QueueWorkers: 3})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h struct {
		Status  string       `json:"status"`
		Workers int          `json:"workers"`
		Store   *store.Stats `json:"store"`
	}
	json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if h.Status != "ok" || h.Workers != 3 || h.Store == nil {
		t.Fatalf("healthz = %+v", h)
	}

	var ack SubmitResponse
	postJSON(t, ts.URL+"/jobs", SubmitRequest{Jobs: []JobSpec{{Kernel: "multiply"}}}, &ack)
	pollDone(t, ts.URL, ack.ID)
	text := scrapeMetrics(t, ts.URL)
	for _, want := range []string{
		"icicle_serve_jobs_submitted_total 1",
		"icicle_serve_jobs_completed_total 1",
		"icicle_serve_simulated_total 1",
		"icicle_sim_cache_misses_total 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func scrapeMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// startShard builds a server bound to a pre-opened listener so the ring
// URLs are known before construction.
func startShard(t *testing.T, cfg Config, ln net.Listener) *Server {
	t.Helper()
	srv := mustNew(t, cfg)
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	t.Cleanup(func() { srv.Close(); hs.Close() })
	return srv
}

func listen(t *testing.T) (net.Listener, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return ln, "http://" + ln.Addr().String()
}

// shardSpecs builds job specs across enough distinct config fingerprints
// that a 2-peer ring necessarily splits them.
func shardSpecs(t *testing.T, ringOf func() *ring, wantOwner string) []JobSpec {
	t.Helper()
	var specs []JobSpec
	found := false
	for d := 0; d < 16; d++ {
		cfg := rocket.DefaultConfig()
		cfg.MulLatency += d
		spec := JobSpec{Core: "rocket", Kernel: "multiply", Rocket: &cfg}
		j, err := spec.Job()
		if err != nil {
			t.Fatal(err)
		}
		if ringOf().owner(j.ConfigFingerprint()) == wantOwner {
			specs = append(specs, spec)
			found = true
			if len(specs) == 2 {
				break
			}
		}
	}
	if !found {
		t.Fatal("no config hashed to the wanted owner in 16 tries")
	}
	return specs
}

// Two shards: jobs whose config fingerprint belongs to the peer are
// forwarded there, results are identical to local execution, and the
// peer's runner (not the submitter's) did the simulating.
func TestServeShardForwarding(t *testing.T) {
	lnA, urlA := listen(t)
	lnB, urlB := listen(t)
	peers := []string{urlA, urlB}
	regA, regB := obs.NewRegistry(), obs.NewRegistry()
	a := startShard(t, Config{Registry: regA, Self: urlA, Peers: peers, QueueWorkers: 2}, lnA)
	b := startShard(t, Config{Registry: regB, Self: urlB, Peers: peers, QueueWorkers: 2}, lnB)

	// Jobs owned by B, submitted to A.
	specs := shardSpecs(t, func() *ring { return a.ring }, urlB)
	var ack SubmitResponse
	postJSON(t, urlA+"/jobs", SubmitRequest{Client: "shard", Jobs: specs}, &ack)
	st := pollDone(t, urlA, ack.ID)

	ref := sim.New()
	for i, spec := range specs {
		r := st.Results[i]
		if r.Error != "" {
			t.Fatalf("job %d errored: %s", i, r.Error)
		}
		if !r.Forwarded {
			t.Errorf("job %d not forwarded although owned by peer", i)
		}
		j, _ := spec.Job()
		want := ResultJSON(ref.RunOne(j), false)
		if !bytes.Equal(canonical(t, r), canonical(t, want)) {
			t.Errorf("job %d: forwarded result differs from local reference", i)
		}
	}
	if got := a.m.forwarded.Value(); got != uint64(len(specs)) {
		t.Errorf("submitter forwarded %d, want %d", got, len(specs))
	}
	if got := a.m.simulated.Value(); got != 0 {
		t.Errorf("submitter simulated %d jobs that belonged to the peer", got)
	}
	if got := b.m.simulated.Value(); got != uint64(len(specs)) {
		t.Errorf("peer simulated %d, want %d", got, len(specs))
	}
}

// A dead peer degrades to local execution: every job still completes, the
// fallback counter records the failures, and nothing is marked forwarded.
func TestServeShardFallback(t *testing.T) {
	lnA, urlA := listen(t)
	// Reserve an address and close it so the peer is definitely dead.
	lnDead, urlDead := listen(t)
	lnDead.Close()
	peers := []string{urlA, urlDead}
	a := startShard(t, Config{Registry: obs.NewRegistry(), Self: urlA, Peers: peers, QueueWorkers: 2}, lnA)

	specs := shardSpecs(t, func() *ring { return a.ring }, urlDead)
	var ack SubmitResponse
	postJSON(t, urlA+"/jobs", SubmitRequest{Jobs: specs}, &ack)
	st := pollDone(t, urlA, ack.ID)
	for i, r := range st.Results {
		if r.Error != "" {
			t.Fatalf("job %d errored instead of falling back: %s", i, r.Error)
		}
		if r.Forwarded {
			t.Errorf("job %d marked forwarded to a dead peer", i)
		}
	}
	if got := a.m.fallback.Value(); got != uint64(len(specs)) {
		t.Errorf("fallback count = %d, want %d", got, len(specs))
	}
	if got := a.m.simulated.Value(); got != uint64(len(specs)) {
		t.Errorf("local simulations = %d, want %d", got, len(specs))
	}
}

// Service-level fairness under synthetic multi-client load: one worker, a
// stub executor, a flooding client and a light client — the light client's
// single job must not wait behind the whole flood.
func TestServeFairnessUnderLoad(t *testing.T) {
	srv := mustNew(t, Config{QueueWorkers: 1})
	defer srv.Close()
	var order []string
	var mu sync.Mutex
	block := make(chan struct{})
	srv.exec = func(j sim.Job) sim.Result {
		<-block // hold the worker until both batches are queued
		mu.Lock()
		order = append(order, j.Kernel.Name)
		mu.Unlock()
		return sim.Result{Job: j}
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	flood := make([]JobSpec, 30)
	for i := range flood {
		flood[i] = JobSpec{Core: "rocket", Kernel: "vvadd"}
	}
	var ackF, ackL SubmitResponse
	postJSON(t, ts.URL+"/jobs", SubmitRequest{Client: "flood", Jobs: flood}, &ackF)
	postJSON(t, ts.URL+"/jobs", SubmitRequest{Client: "light", Jobs: []JobSpec{{Core: "rocket", Kernel: "towers"}}}, &ackL)
	close(block)
	pollDone(t, ts.URL, ackL.ID)

	mu.Lock()
	defer mu.Unlock()
	pos := -1
	for i, name := range order {
		if name == "towers" {
			pos = i
			break
		}
	}
	// The first pop may already be in flight when light submits; fairness
	// then guarantees the very next slot. Allow a little slack.
	if pos < 0 || pos > 3 {
		t.Fatalf("light client's job ran at position %d of %d, starved by the flood", pos, len(order))
	}
}

// Priority classes at the service level: high-priority batches preempt the
// queued backlog of lower classes.
func TestServePriorityUnderLoad(t *testing.T) {
	srv := mustNew(t, Config{QueueWorkers: 1})
	defer srv.Close()
	var order []string
	var mu sync.Mutex
	block := make(chan struct{})
	srv.exec = func(j sim.Job) sim.Result {
		<-block
		mu.Lock()
		order = append(order, j.Kernel.Name)
		mu.Unlock()
		return sim.Result{Job: j}
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	bulk := make([]JobSpec, 10)
	for i := range bulk {
		bulk[i] = JobSpec{Core: "rocket", Kernel: "vvadd"}
	}
	var ackB, ackH SubmitResponse
	postJSON(t, ts.URL+"/jobs", SubmitRequest{Client: "bulk", Priority: 0, Jobs: bulk}, &ackB)
	postJSON(t, ts.URL+"/jobs", SubmitRequest{Client: "urgent", Priority: 9, Jobs: []JobSpec{{Core: "rocket", Kernel: "towers"}}}, &ackH)
	close(block)
	pollDone(t, ts.URL, ackH.ID)

	mu.Lock()
	defer mu.Unlock()
	pos := -1
	for i, name := range order {
		if name == "towers" {
			pos = i
			break
		}
	}
	if pos < 0 || pos > 1 {
		t.Fatalf("priority-9 job ran at position %d, behind the priority-0 backlog", pos)
	}
}

// Close is idempotent and racing submissions either complete or are
// cleanly refused with 503 — never hang.
func TestServeCloseRefusesNewWork(t *testing.T) {
	srv := mustNew(t, Config{QueueWorkers: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	code := postJSON(t, ts.URL+"/jobs", SubmitRequest{Jobs: []JobSpec{{Kernel: "multiply"}}}, nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("submit after Close = %d, want 503", code)
	}
}

// Sharding is rejected at construction when the node cannot recognise
// itself on the ring: it would forward 100% of jobs — its own included —
// and serve them only through the per-job fallback path.
func TestServeShardingConfigValidation(t *testing.T) {
	if _, err := New(Config{Peers: []string{"http://a", "http://b"}}); err == nil {
		t.Fatal("New accepted Peers without Self")
	}
	if _, err := New(Config{Self: "http://c", Peers: []string{"http://a", "http://b"}}); err == nil {
		t.Fatal("New accepted a Self absent from Peers")
	}
	srv, err := New(Config{Self: "http://a", Peers: []string{"http://a", "http://b"}, QueueWorkers: 1})
	if err != nil {
		t.Fatalf("valid sharding config rejected: %v", err)
	}
	srv.Close()
	// Solo (no peers) never needs Self.
	srv = mustNew(t, Config{QueueWorkers: 1})
	srv.Close()
}

// GET /store rejects anything that is not a content address before the
// store layer sees it: a traversal-shaped addr must 404 and must not
// move or read files outside objects/ (quarantine renames by addr).
func TestServeStoreGetRejectsTraversal(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv := mustNew(t, Config{Store: st, QueueWorkers: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	victim := filepath.Join(dir, "victim")
	if err := os.WriteFile(victim, []byte("precious"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{
		"/store/..%2Fvictim",
		"/store/..%2F..%2Fetc%2Fpasswd",
		"/store/aa%2F..%2F..%2Fvictim",
		"/store/" + strings.Repeat("A", 64), // uppercase: not an address
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}
	if _, err := os.Stat(victim); err != nil {
		t.Fatalf("victim file was moved by a /store request: %v", err)
	}
	if q := st.Stats().Quarantined; q != 0 {
		t.Fatalf("traversal requests caused %d quarantine renames", q)
	}
}

// Completed batches are evicted after the TTL — GET /jobs/{id} then
// 404s — so a long-running server does not accumulate every batch it
// ever served.
func TestServeBatchRetentionTTL(t *testing.T) {
	srv := mustNew(t, Config{QueueWorkers: 1, BatchTTL: 30 * time.Millisecond})
	defer srv.Close()
	srv.exec = func(j sim.Job) sim.Result { return sim.Result{Job: j} }
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var ack SubmitResponse
	postJSON(t, ts.URL+"/jobs", SubmitRequest{Jobs: []JobSpec{{Kernel: "multiply"}}}, &ack)
	pollDone(t, ts.URL, ack.ID)

	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/jobs/" + ack.ID)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusNotFound {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("completed batch still queryable long past its TTL")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := srv.m.batchesEvicted.Value(); got == 0 {
		t.Fatal("eviction counter did not move")
	}
}

// The MaxBatches cap evicts oldest-completed first and never a batch
// that is still running.
func TestServeBatchRetentionCap(t *testing.T) {
	// Two workers: one sits on the blocked "towers" batch while the other
	// drains the short batches.
	srv := mustNew(t, Config{QueueWorkers: 2, BatchTTL: -1, MaxBatches: 2})
	defer srv.Close()
	block := make(chan struct{})
	var releaseOnce sync.Once
	release := func() { releaseOnce.Do(func() { close(block) }) }
	defer release() // a failing poll must not leave Close waiting on the worker
	srv.exec = func(j sim.Job) sim.Result {
		if j.Kernel.Name == "towers" {
			<-block // keep this batch running
		}
		return sim.Result{Job: j}
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var running SubmitResponse
	postJSON(t, ts.URL+"/jobs", SubmitRequest{Jobs: []JobSpec{{Kernel: "towers"}}}, &running)
	var done []SubmitResponse
	for i := 0; i < 4; i++ {
		var ack SubmitResponse
		postJSON(t, ts.URL+"/jobs", SubmitRequest{Jobs: []JobSpec{{Kernel: "multiply"}}}, &ack)
		pollDone(t, ts.URL, ack.ID)
		done = append(done, ack)
	}

	srv.evictBatches(time.Now())
	srv.mu.Lock()
	n := len(srv.batches)
	_, runningKept := srv.batches[running.ID]
	_, newestKept := srv.batches[done[3].ID]
	_, oldestKept := srv.batches[done[0].ID]
	srv.mu.Unlock()
	if !runningKept {
		t.Fatal("retention evicted a batch that is still running")
	}
	if n != 2 {
		t.Fatalf("retained %d batches, want 2 (cap)", n)
	}
	if !newestKept || oldestKept {
		t.Fatalf("cap did not evict oldest-completed first (newest kept=%v, oldest kept=%v)", newestKept, oldestKept)
	}
	release()
	pollDone(t, ts.URL, running.ID)
}

// A submission that races Close past the fast-path check is refused with
// 503 and fully rolled back — no orphan batch that polls "queued"
// forever, no leaked queue-depth.
func TestServeSubmitCloseRaceRollsBack(t *testing.T) {
	srv := mustNew(t, Config{QueueWorkers: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Model the race: the queue closes after handleSubmit's closed check
	// would have passed but before its pushes land.
	srv.queue.Close()
	code := postJSON(t, ts.URL+"/jobs", SubmitRequest{Jobs: []JobSpec{{Kernel: "multiply"}, {Kernel: "median"}}}, nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("submit against a closed queue = %d, want 503", code)
	}
	srv.mu.Lock()
	n := len(srv.batches)
	srv.mu.Unlock()
	if n != 0 {
		t.Fatalf("rejected submission left %d orphan batches registered", n)
	}
	if d := srv.m.queueDepth.Value(); d != 0 {
		t.Fatalf("rejected submission leaked queue depth %d", d)
	}
}

// Wait-mode submission: one POST blocks until the batch completes and
// returns the full status; the per-endpoint duration and per-class
// queue-wait histograms record it.
func TestServeSubmitWaitMode(t *testing.T) {
	reg := obs.NewRegistry()
	srv := mustNew(t, Config{Registry: reg, QueueWorkers: 2})
	defer srv.Close()
	srv.exec = func(j sim.Job) sim.Result {
		time.Sleep(2 * time.Millisecond)
		return sim.Result{Job: j}
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var st StatusResponse
	code := postJSON(t, ts.URL+"/jobs", SubmitRequest{
		Client:   "sync",
		Priority: 3,
		Wait:     true,
		Jobs:     []JobSpec{{Core: "rocket", Kernel: "multiply"}, {Core: "rocket", Kernel: "median"}},
	}, &st)
	if code != http.StatusOK {
		t.Fatalf("wait-mode submit status = %d, want 200", code)
	}
	if st.State != "done" || st.Done != 2 {
		t.Fatalf("wait-mode response not a completed status: %+v", st)
	}
	for i, r := range st.Results {
		if !r.Done {
			t.Fatalf("result %d not done in wait-mode response", i)
		}
	}

	var text bytes.Buffer
	if err := reg.WritePrometheus(&text); err != nil {
		t.Fatal(err)
	}
	out := text.String()
	for _, want := range []string{
		`icicle_serve_request_duration_seconds_count{endpoint="/jobs"} 1`,
		`icicle_serve_queue_wait_seconds_count{class="3"} 2`,
		`icicle_serve_endpoint_inflight{endpoint="/jobs"} 0`,
		"icicle_serve_inflight 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}
	// The wait-mode request's measured duration must cover the jobs'
	// execution (≥2ms stub sleep), proving it blocked.
	sc, err := obs.ParsePrometheus(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	h := sc.Hist(`icicle_serve_request_duration_seconds{endpoint="/jobs"}`)
	if h == nil {
		t.Fatal("no /jobs duration series")
	}
	if q := h.Quantile(1); q < 0.002 {
		t.Errorf("wait-mode /jobs duration p100 = %gs, want >= 2ms", q)
	}
}
