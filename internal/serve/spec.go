package serve

import (
	"fmt"
	"strings"

	"icicle/internal/boom"
	"icicle/internal/kernel"
	"icicle/internal/rocket"
	"icicle/internal/sample"
	"icicle/internal/sim"
	"icicle/internal/store"
)

// JobSpec is the wire form of one simulation job: core + kernel by name,
// with optional size, config override, and sampling policy. The zero
// config means the paper's defaults (rocket.DefaultConfig /
// boom.NewConfig(size)).
type JobSpec struct {
	Core   string         `json:"core"`                    // "rocket" | "boom"
	Kernel string         `json:"kernel"`                  // registered kernel name
	Size   string         `json:"size,omitempty"`          // BOOM size ("small".."giga"); default "large"
	Rocket *rocket.Config `json:"rocket_config,omitempty"` // full config override
	Boom   *boom.Config   `json:"boom_config,omitempty"`   // full config override
	Sample *sample.Policy `json:"sample,omitempty"`        // enable sampled simulation
	// SamplePar > 0 selects the two-phase parallel sampled engine with
	// that many window workers (results are bit-identical for any
	// count). Requires Sample.
	SamplePar int `json:"sample_par,omitempty"`
}

// Job resolves the spec into a runnable sim.Job.
func (s JobSpec) Job() (sim.Job, error) {
	k, err := kernel.ByName(s.Kernel)
	if err != nil {
		names := make([]string, 0, 16)
		for _, kn := range kernel.All() {
			names = append(names, kn.Name)
		}
		return sim.Job{}, fmt.Errorf("unknown kernel %q (have: %s)", s.Kernel, strings.Join(names, ", "))
	}
	var j sim.Job
	switch strings.ToLower(s.Core) {
	case "rocket", "":
		cfg := rocket.DefaultConfig()
		if s.Rocket != nil {
			cfg = *s.Rocket
		}
		j = sim.RocketJob(cfg, k)
	case "boom":
		size := boom.Large
		if s.Size != "" {
			size, err = boom.ParseSize(s.Size)
			if err != nil {
				return sim.Job{}, err
			}
		}
		cfg := boom.NewConfig(size)
		if s.Boom != nil {
			cfg = *s.Boom
		}
		if err := cfg.Validate(); err != nil {
			return sim.Job{}, err
		}
		j = sim.BoomJob(cfg, k)
	default:
		return sim.Job{}, fmt.Errorf("unknown core %q (want rocket or boom)", s.Core)
	}
	if s.SamplePar > 0 && (s.Sample == nil || !s.Sample.Enabled()) {
		return sim.Job{}, fmt.Errorf("sample_par requires an enabled sample policy")
	}
	if s.Sample != nil && s.Sample.Enabled() {
		if s.SamplePar > 0 {
			j = j.WithParallelSampling(*s.Sample, s.SamplePar)
		} else {
			j = j.WithSampling(*s.Sample)
		}
	}
	return j, nil
}

// SubmitRequest is the POST /jobs body: a batch of jobs under one client
// identity, priority class, and fairness weight.
type SubmitRequest struct {
	Client   string    `json:"client,omitempty"`   // fairness identity; default "anon"
	Priority int       `json:"priority,omitempty"` // strict class; higher runs first
	Weight   int       `json:"weight,omitempty"`   // fair share within the class; default 1
	Jobs     []JobSpec `json:"jobs"`
	// Wait makes the submission synchronous: the response is the full
	// StatusResponse (HTTP 200), written once every job in the batch has
	// completed, instead of the immediate SubmitResponse ack (202). The
	// batch still goes through the priority/fairness queue like any
	// other — icicle-load uses this so one request equals one measured
	// latency with no polling noise.
	Wait bool `json:"wait,omitempty"`
}

// SubmitResponse acknowledges a batch.
type SubmitResponse struct {
	ID        string `json:"id"`
	Jobs      int    `json:"jobs"`
	StatusURL string `json:"status_url"`
}

// TMATop is the top-level TMA split of a result.
type TMATop struct {
	Retiring float64 `json:"retiring"`
	BadSpec  float64 `json:"bad_spec"`
	Frontend float64 `json:"frontend"`
	Backend  float64 `json:"backend"`
}

// SampledSummary is the sampling report in API form.
type SampledSummary struct {
	EstCycles uint64  `json:"est_cycles"`
	CPI       float64 `json:"cpi"`
	CPILo     float64 `json:"cpi_ci_lo"`
	CPIHi     float64 `json:"cpi_ci_hi"`
	Windows   int     `json:"windows"`
	FFInsts   uint64  `json:"ff_insts"`
}

// JobResult is one job's outcome in API form. Tally maps render with
// sorted keys (encoding/json), so the rendering is deterministic: the
// same simulation produces byte-identical JSON wherever it ran — the
// end-to-end suite compares server output against the in-process runner
// this way.
type JobResult struct {
	Key       string            `json:"key"`                  // memo fingerprint
	StoreAddr string            `json:"store_addr,omitempty"` // blob address under /store/
	Done      bool              `json:"done"`
	Error     string            `json:"error,omitempty"`
	Cached    bool              `json:"cached"`
	FromStore bool              `json:"from_store"`
	Forwarded bool              `json:"forwarded,omitempty"` // ran on a shard peer
	Cycles    uint64            `json:"cycles,omitempty"`
	Insts     uint64            `json:"insts,omitempty"`
	IPC       float64           `json:"ipc,omitempty"`
	Exit      string            `json:"exit,omitempty"`
	Tally     map[string]uint64 `json:"tally,omitempty"`
	TMA       *TMATop           `json:"tma,omitempty"`
	Sampled   *SampledSummary   `json:"sampled,omitempty"`
}

// StatusResponse is the GET /jobs/{id} body.
type StatusResponse struct {
	ID         string      `json:"id"`
	Client     string      `json:"client"`
	Priority   int         `json:"priority"`
	State      string      `json:"state"` // queued | running | done
	Done       int         `json:"done"`
	Total      int         `json:"total"`
	ElapsedSec float64     `json:"elapsed_sec"`
	Results    []JobResult `json:"results"`
}

// ResultJSON renders a completed sim.Result in API form. withStore adds
// the content address a persistent store would serve the blob under.
// Exported (within the module) so the end-to-end tests can render the
// in-process runner's results identically.
func ResultJSON(res sim.Result, withStore bool) JobResult {
	jr := JobResult{
		Key:       res.Job.Key(),
		Done:      true,
		Cached:    res.Cached,
		FromStore: res.FromStore,
	}
	if withStore {
		jr.StoreAddr = store.Addr(sim.StoreKey(res.Job))
	}
	if res.Err != nil {
		jr.Error = res.Err.Error()
		return jr
	}
	jr.Cycles = res.Cycles()
	jr.Insts = res.Insts()
	if jr.Cycles > 0 {
		jr.IPC = float64(jr.Insts) / float64(jr.Cycles)
	}
	jr.Exit = fmt.Sprintf("%#x", res.Exit())
	if res.Job.Core == sim.Boom {
		jr.Tally = res.Boom.Tally
	} else {
		jr.Tally = res.Rocket.Tally
	}
	jr.TMA = &TMATop{
		Retiring: res.Breakdown.Retiring,
		BadSpec:  res.Breakdown.BadSpec,
		Frontend: res.Breakdown.Frontend,
		Backend:  res.Breakdown.Backend,
	}
	if res.Sampled != nil {
		jr.Sampled = &SampledSummary{
			EstCycles: res.Sampled.EstCycles,
			CPI:       res.Sampled.CPI,
			CPILo:     res.Sampled.CPICI.Lo,
			CPIHi:     res.Sampled.CPICI.Hi,
			Windows:   len(res.Sampled.Windows),
			FFInsts:   res.Sampled.FFInsts,
		}
	}
	return jr
}
