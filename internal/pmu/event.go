// Package pmu implements the performance monitoring unit of the paper:
// the event/event-set abstraction (§II-A), the three counter
// microarchitectures — Scalar, AddWires, and DistributedCounters (§IV-B) —
// and the RISC-V CSR register file through which software programs and
// reads the counters (mhpmcounter3..31 / mhpmevent3..31 / mcountinhibit).
package pmu

import "fmt"

// MaxSources bounds the number of lanes (sources) a single event may have;
// lane assertions are carried in a 64-bit mask.
const MaxSources = 64

// Event describes one hardware performance event. Events with Sources > 1
// are per-lane events (e.g. Fetch-bubbles has one source per decode lane);
// each source is a separate wire into the PMU.
type Event struct {
	Name    string
	Set     uint8 // event set (§II-A): only same-set events may share a counter
	Bit     uint8 // position within the set's 56-bit selection mask
	Sources int   // number of lanes asserting this event (≥ 1)
}

// ID is the (set, bit) coordinate of an event.
type ID struct {
	Set uint8
	Bit uint8
}

// Space is a core's complete event list. The per-cycle Sample is indexed
// parallel to Events.
type Space struct {
	Events []Event
	byName map[string]int
	byID   map[ID]int
}

// NewSpace validates and indexes an event list.
func NewSpace(events []Event) (*Space, error) {
	s := &Space{
		Events: events,
		byName: make(map[string]int, len(events)),
		byID:   make(map[ID]int, len(events)),
	}
	for i, e := range events {
		if e.Sources < 1 || e.Sources > MaxSources {
			return nil, fmt.Errorf("pmu: event %q: bad source count %d", e.Name, e.Sources)
		}
		if e.Bit >= 56 {
			return nil, fmt.Errorf("pmu: event %q: bit %d exceeds 56-bit mask", e.Name, e.Bit)
		}
		if _, dup := s.byName[e.Name]; dup {
			return nil, fmt.Errorf("pmu: duplicate event name %q", e.Name)
		}
		id := ID{e.Set, e.Bit}
		if _, dup := s.byID[id]; dup {
			return nil, fmt.Errorf("pmu: duplicate event id set=%d bit=%d", e.Set, e.Bit)
		}
		s.byName[e.Name] = i
		s.byID[id] = i
	}
	return s, nil
}

// MustSpace is NewSpace that panics on error (event lists are compiled-in).
func MustSpace(events []Event) *Space {
	s, err := NewSpace(events)
	if err != nil {
		panic(err)
	}
	return s
}

// Index returns the sample index of the named event.
func (s *Space) Index(name string) (int, error) {
	i, ok := s.byName[name]
	if !ok {
		return 0, fmt.Errorf("pmu: unknown event %q", name)
	}
	return i, nil
}

// MustIndex is Index that panics on unknown names.
func (s *Space) MustIndex(name string) int {
	i, err := s.Index(name)
	if err != nil {
		panic(err)
	}
	return i
}

// SourceCounts returns the per-event lane counts, parallel to Events.
// It is the shape stats.Tally is built from.
func (s *Space) SourceCounts() []int {
	out := make([]int, len(s.Events))
	for i, e := range s.Events {
		out[i] = e.Sources
	}
	return out
}

// Lookup resolves an event by (set, bit).
func (s *Space) Lookup(id ID) (Event, bool) {
	i, ok := s.byID[id]
	if !ok {
		return Event{}, false
	}
	return s.Events[i], true
}

// Sample holds one cycle's event assertions: for each event (parallel to
// Space.Events) a bitmask of which sources were high this cycle.
type Sample []uint64

// NewSample allocates a zeroed sample for the space.
func (s *Space) NewSample() Sample { return make(Sample, len(s.Events)) }

// Reset clears all assertions (call at the top of each simulated cycle).
func (m Sample) Reset() {
	for i := range m {
		m[i] = 0
	}
}

// Assert raises source lane of event ev.
func (m Sample) Assert(ev, lane int) { m[ev] |= 1 << uint(lane) }

// AssertN raises lanes [0, n) of event ev.
func (m Sample) AssertN(ev, n int) {
	if n <= 0 {
		return
	}
	if n >= 64 {
		m[ev] = ^uint64(0)
		return
	}
	m[ev] |= 1<<uint(n) - 1
}

// Set writes the full lane mask for event ev.
func (m Sample) Set(ev int, mask uint64) { m[ev] = mask }

// Lanes returns the lane mask of event ev.
func (m Sample) Lanes(ev int) uint64 { return m[ev] }

// Any reports whether any source of event ev is high.
func (m Sample) Any(ev int) bool { return m[ev] != 0 }
