package pmu

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func testSpace(t *testing.T) *Space {
	t.Helper()
	s, err := NewSpace([]Event{
		{Name: "cycles", Set: 0, Bit: 0, Sources: 1},
		{Name: "fetch-bubbles", Set: 1, Bit: 0, Sources: 3},
		{Name: "uops-issued", Set: 1, Bit: 1, Sources: 5},
		{Name: "dcache-miss", Set: 2, Bit: 0, Sources: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSpaceValidation(t *testing.T) {
	bad := [][]Event{
		{{Name: "a", Sources: 0}},
		{{Name: "a", Sources: 65}},
		{{Name: "a", Bit: 56, Sources: 1}},
		{{Name: "a", Sources: 1}, {Name: "a", Bit: 1, Sources: 1}},
		{{Name: "a", Sources: 1}, {Name: "b", Sources: 1}}, // same (set,bit)
	}
	for i, evs := range bad {
		if _, err := NewSpace(evs); err == nil {
			t.Errorf("case %d: NewSpace succeeded, want error", i)
		}
	}
}

func TestSampleOps(t *testing.T) {
	s := testSpace(t)
	m := s.NewSample()
	fb := s.MustIndex("fetch-bubbles")
	m.Assert(fb, 0)
	m.Assert(fb, 2)
	if m.Lanes(fb) != 0b101 {
		t.Fatalf("lanes = %b", m.Lanes(fb))
	}
	if PopCount(m, fb) != 2 {
		t.Fatalf("popcount = %d", PopCount(m, fb))
	}
	m.AssertN(fb, 3)
	if m.Lanes(fb) != 0b111 {
		t.Fatalf("AssertN lanes = %b", m.Lanes(fb))
	}
	m.Reset()
	if m.Any(fb) {
		t.Fatal("reset did not clear")
	}
}

func TestSelectorEncoding(t *testing.T) {
	f := func(set uint8, mask uint64) bool {
		mask &= 1<<56 - 1
		s := Selector{Set: set, Mask: mask}
		return DecodeSelector(s.Encode()) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// drive feeds n cycles where event idx asserts `lanes` sources each cycle.
func drive(p *PMU, s *Space, name string, lanes, cycles int) {
	idx := s.MustIndex(name)
	sample := s.NewSample()
	for c := 0; c < cycles; c++ {
		sample.Reset()
		sample.AssertN(idx, lanes)
		p.Tick(sample, 1)
	}
}

func TestScalarUndercountsConcurrentEvents(t *testing.T) {
	s := testSpace(t)
	p := New(s, Scalar)
	if err := p.ConfigureEvents(0, "fetch-bubbles"); err != nil {
		t.Fatal(err)
	}
	p.EnableAll()
	drive(p, s, "fetch-bubbles", 3, 100)
	// 300 source assertions, but the scalar counter saw "any lane high"
	// on 100 cycles.
	if got := p.Read(0); got != 100 {
		t.Fatalf("scalar count = %d, want 100", got)
	}
}

func TestAddWiresCountsExactly(t *testing.T) {
	s := testSpace(t)
	p := New(s, AddWires)
	if err := p.ConfigureEvents(0, "fetch-bubbles"); err != nil {
		t.Fatal(err)
	}
	p.EnableAll()
	drive(p, s, "fetch-bubbles", 3, 100)
	if got := p.Read(0); got != 300 {
		t.Fatalf("add-wires count = %d, want 300", got)
	}
}

func TestDistributedUndercountBound(t *testing.T) {
	s := testSpace(t)
	p := New(s, Distributed)
	if err := p.ConfigureEvents(0, "fetch-bubbles"); err != nil {
		t.Fatal(err)
	}
	p.EnableAll()
	const cycles = 10_000
	drive(p, s, "fetch-bubbles", 3, cycles)
	exact := uint64(3 * cycles)
	got := p.Read(0)
	if got > exact {
		t.Fatalf("distributed overcounts: %d > %d", got, exact)
	}
	// §IV-B: undercount ≤ sources × 2^N.
	bound := uint64(3) << p.LocalWidth(0)
	if exact-got > bound {
		t.Fatalf("undercount %d exceeds bound %d", exact-got, bound)
	}
	// Residue + read must equal the exact count (nothing is ever lost,
	// only deferred).
	if got+p.Residue(0) != exact {
		t.Fatalf("read %d + residue %d != exact %d", got, p.Residue(0), exact)
	}
}

func TestDistributedConservationQuick(t *testing.T) {
	// Property: for any random assertion pattern, read() + residue ==
	// exact source count, and read() never exceeds exact.
	s := testSpace(t)
	f := func(seed int64, cyc uint16) bool {
		p := New(s, Distributed)
		if err := p.ConfigureEvents(0, "fetch-bubbles", "uops-issued"); err != nil {
			return false
		}
		p.EnableAll()
		r := rand.New(rand.NewSource(seed))
		fb := s.MustIndex("fetch-bubbles")
		ui := s.MustIndex("uops-issued")
		sample := s.NewSample()
		var exact uint64
		cycles := int(cyc%2000) + 1
		for c := 0; c < cycles; c++ {
			sample.Reset()
			a, b := r.Intn(4), r.Intn(6)
			sample.AssertN(fb, a)
			sample.AssertN(ui, b)
			exact += uint64(a + b)
			p.Tick(sample, 1)
		}
		return p.Read(0) <= exact && p.Read(0)+p.Residue(0) == exact
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEventSetMultiplexRules(t *testing.T) {
	s := testSpace(t)
	p := New(s, AddWires)
	// Same set: OK.
	if err := p.ConfigureEvents(0, "fetch-bubbles", "uops-issued"); err != nil {
		t.Fatalf("same-set config failed: %v", err)
	}
	// Cross-set: rejected (§II-A).
	if err := p.ConfigureEvents(1, "cycles", "dcache-miss"); err == nil {
		t.Fatal("cross-set configuration succeeded, want error")
	}
}

func TestSharedCounterORSemantics(t *testing.T) {
	// §II-A: two same-set events on one scalar counter increment it once
	// when both fire in the same cycle.
	s := testSpace(t)
	p := New(s, Scalar)
	if err := p.ConfigureEvents(0, "fetch-bubbles", "uops-issued"); err != nil {
		t.Fatal(err)
	}
	p.EnableAll()
	sample := s.NewSample()
	sample.AssertN(s.MustIndex("fetch-bubbles"), 1)
	sample.AssertN(s.MustIndex("uops-issued"), 1)
	p.Tick(sample, 0)
	if got := p.Read(0); got != 1 {
		t.Fatalf("count = %d, want 1", got)
	}
}

func TestEventOnMultipleCounters(t *testing.T) {
	s := testSpace(t)
	p := New(s, AddWires)
	if err := p.ConfigureEvents(0, "fetch-bubbles"); err != nil {
		t.Fatal(err)
	}
	if err := p.ConfigureEvents(1, "fetch-bubbles"); err != nil {
		t.Fatal(err)
	}
	p.EnableAll()
	drive(p, s, "fetch-bubbles", 2, 10)
	if p.Read(0) != 20 || p.Read(1) != 20 {
		t.Fatalf("counts = %d, %d; want 20, 20", p.Read(0), p.Read(1))
	}
}

func TestInhibit(t *testing.T) {
	s := testSpace(t)
	p := New(s, AddWires)
	if err := p.ConfigureEvents(0, "fetch-bubbles"); err != nil {
		t.Fatal(err)
	}
	// All inhibited at reset.
	drive(p, s, "fetch-bubbles", 1, 10)
	if p.Read(0) != 0 || p.Cycles() != 0 || p.Instret() != 0 {
		t.Fatal("counters advanced while inhibited")
	}
	p.EnableAll()
	drive(p, s, "fetch-bubbles", 1, 10)
	if p.Read(0) != 10 || p.Cycles() != 10 || p.Instret() != 10 {
		t.Fatalf("got %d/%d/%d, want 10/10/10", p.Read(0), p.Cycles(), p.Instret())
	}
	// Inhibit only the hpm counter (bit 3).
	p.SetInhibit(1 << 3)
	drive(p, s, "fetch-bubbles", 1, 5)
	if p.Read(0) != 10 {
		t.Fatal("inhibited counter advanced")
	}
	if p.Cycles() != 15 {
		t.Fatalf("cycles = %d, want 15", p.Cycles())
	}
}

func TestCSRInterface(t *testing.T) {
	s := testSpace(t)
	p := New(s, AddWires)
	// Program counter 0 to count fetch-bubbles via the CSR path, exactly
	// as the perf harness does.
	e := s.Events[s.MustIndex("fetch-bubbles")]
	sel := Selector{Set: e.Set, Mask: 1 << uint(e.Bit)}
	p.WriteCSR(CSRMHPMEvent3, sel.Encode())
	p.WriteCSR(CSRMCountInhibit, 0)
	drive(p, s, "fetch-bubbles", 3, 7)
	if got := p.ReadCSR(CSRMHPMCounter3); got != 21 {
		t.Fatalf("csr read = %d, want 21", got)
	}
	// User-mode alias reads the same value.
	if got := p.ReadCSR(CSRHPMCounter3); got != 21 {
		t.Fatalf("user alias = %d, want 21", got)
	}
	// Event CSR reads back its programmed value.
	if got := p.ReadCSR(CSRMHPMEvent3); got != sel.Encode() {
		t.Fatalf("event csr = %#x, want %#x", got, sel.Encode())
	}
	// Counter writes take effect.
	p.WriteCSR(CSRMHPMCounter3, 5)
	if got := p.ReadCSR(CSRMHPMCounter3); got != 5 {
		t.Fatalf("after write, csr = %d, want 5", got)
	}
	// mcycle/minstret write/read.
	p.WriteCSR(CSRMCycle, 123)
	if p.ReadCSR(CSRCycle) != 123 {
		t.Fatal("mcycle write not visible via cycle alias")
	}
}

func TestUnknownCSRReadsZero(t *testing.T) {
	p := New(testSpace(t), Scalar)
	if p.ReadCSR(0x123) != 0 {
		t.Fatal("unknown CSR read nonzero")
	}
}

func TestArchitectureParse(t *testing.T) {
	for _, a := range []Architecture{Scalar, AddWires, Distributed} {
		got, err := ParseArchitecture(a.String())
		if err != nil || got != a {
			t.Errorf("ParseArchitecture(%q) = %v, %v", a.String(), got, err)
		}
	}
	if _, err := ParseArchitecture("bogus"); err == nil {
		t.Error("ParseArchitecture(bogus) succeeded")
	}
}

func TestCounterArchitecturesAgreeOnSingleSourceEvents(t *testing.T) {
	// For 1-source events asserted sparsely, all three architectures must
	// agree exactly once residues are drained.
	s := testSpace(t)
	idx := s.MustIndex("dcache-miss")
	counts := make(map[Architecture]uint64)
	for _, arch := range []Architecture{Scalar, AddWires, Distributed} {
		p := New(s, arch)
		if err := p.ConfigureEvents(0, "dcache-miss"); err != nil {
			t.Fatal(err)
		}
		p.EnableAll()
		r := rand.New(rand.NewSource(7))
		sample := s.NewSample()
		for c := 0; c < 5000; c++ {
			sample.Reset()
			if r.Intn(3) == 0 {
				sample.Assert(idx, 0)
			}
			p.Tick(sample, 0)
		}
		counts[arch] = p.Read(0) + p.Residue(0)
	}
	if counts[Scalar] != counts[AddWires] || counts[AddWires] != counts[Distributed] {
		t.Fatalf("architectures disagree: %v", counts)
	}
}

func TestDistributedWidthSweep(t *testing.T) {
	// The DESIGN.md ablation: sweep the local counter width. Undersized
	// widths (2^N < sources) can drop events; at and above the automatic
	// width nothing is ever lost, but the read-time residue bound grows
	// as sources × 2^N.
	s := testSpace(t)
	idx := s.MustIndex("uops-issued") // 5 sources → auto width 3
	const cycles = 20_000
	for width := uint(1); width <= 6; width++ {
		p := New(s, Distributed)
		p.DistWidth = width
		if err := p.ConfigureEvents(0, "uops-issued"); err != nil {
			t.Fatal(err)
		}
		p.EnableAll()
		sample := s.NewSample()
		r := rand.New(rand.NewSource(int64(width)))
		var exact uint64
		for c := 0; c < cycles; c++ {
			sample.Reset()
			n := r.Intn(6)
			sample.AssertN(idx, n)
			exact += uint64(n)
			p.Tick(sample, 0)
		}
		got := p.Read(0) + p.Residue(0) + p.Lost(0)
		if got != exact {
			t.Fatalf("width %d: %d + %d + %d != exact %d",
				width, p.Read(0), p.Residue(0), p.Lost(0), exact)
		}
		if 1<<width >= 5 && p.Lost(0) != 0 {
			t.Fatalf("width %d (2^N ≥ sources) lost %d events", width, p.Lost(0))
		}
		// The read-time undercount stays within the structural maximum:
		// each source can hold 2^N−1 in its local counter plus one pending
		// overflow flag worth 2^N, i.e. S×(2^(N+1)−1).
		bound := uint64(5) * (2<<width - 1)
		if under := exact - p.Read(0) - p.Lost(0); under > bound {
			t.Fatalf("width %d: residue %d beyond bound %d", width, under, bound)
		}
	}
}

// TestTickNMatchesRepeatedTicks pins the bulk-accounting contract the
// event-driven skip path depends on: TickN(sample, retired, n) must leave
// every observable counter — hpm reads, residues, lost totals, mcycle,
// minstret — exactly where n individual Tick calls with the same sample
// would, on all three counter microarchitectures (the distributed
// arbiter's rotating grant is phase-dependent, so TickN must really turn
// the crank n times there).
func TestTickNMatchesRepeatedTicks(t *testing.T) {
	s := testSpace(t)
	fb, ui := s.MustIndex("fetch-bubbles"), s.MustIndex("uops-issued")
	for _, arch := range []Architecture{Scalar, AddWires, Distributed} {
		bulk, step := New(s, arch), New(s, arch)
		for _, p := range []*PMU{bulk, step} {
			if err := p.ConfigureEvents(0, "fetch-bubbles", "uops-issued"); err != nil {
				t.Fatal(err)
			}
			if err := p.ConfigureEvents(1, "uops-issued"); err != nil {
				t.Fatal(err)
			}
			p.EnableAll()
		}
		r := rand.New(rand.NewSource(11))
		sample := s.NewSample()
		// Interleave single ticks (desynchronizing the arbiter phase from
		// zero) with bulk stretches of every size class the skip path emits.
		for round := 0; round < 200; round++ {
			sample.Reset()
			sample.AssertN(fb, r.Intn(4))
			sample.AssertN(ui, r.Intn(6))
			retired := r.Intn(2)
			n := uint64(r.Intn(70) + 1)
			bulk.TickN(sample, retired, n)
			for i := uint64(0); i < n; i++ {
				step.Tick(sample, retired)
			}
		}
		for ctr := 0; ctr < 2; ctr++ {
			if bulk.Read(ctr) != step.Read(ctr) {
				t.Errorf("%v: counter %d: bulk %d != step %d", arch, ctr, bulk.Read(ctr), step.Read(ctr))
			}
			if bulk.Residue(ctr) != step.Residue(ctr) {
				t.Errorf("%v: counter %d residue: bulk %d != step %d", arch, ctr, bulk.Residue(ctr), step.Residue(ctr))
			}
			if bulk.Lost(ctr) != step.Lost(ctr) {
				t.Errorf("%v: counter %d lost: bulk %d != step %d", arch, ctr, bulk.Lost(ctr), step.Lost(ctr))
			}
		}
		if bulk.Cycles() != step.Cycles() || bulk.Instret() != step.Instret() {
			t.Errorf("%v: cycles/instret: bulk %d/%d != step %d/%d",
				arch, bulk.Cycles(), bulk.Instret(), step.Cycles(), step.Instret())
		}
	}
}

// TestTickNOne pins the degenerate case: TickN with n == 1 is exactly one
// Tick (the cores call TickN only on skip cycles, but the contract should
// hold at the boundary).
func TestTickNOne(t *testing.T) {
	s := testSpace(t)
	for _, arch := range []Architecture{Scalar, AddWires, Distributed} {
		a, b := New(s, arch), New(s, arch)
		for _, p := range []*PMU{a, b} {
			if err := p.ConfigureEvents(0, "fetch-bubbles"); err != nil {
				t.Fatal(err)
			}
			p.EnableAll()
		}
		sample := s.NewSample()
		sample.AssertN(s.MustIndex("fetch-bubbles"), 2)
		a.TickN(sample, 1, 1)
		b.Tick(sample, 1)
		if a.Read(0) != b.Read(0) || a.Cycles() != b.Cycles() || a.Instret() != b.Instret() {
			t.Errorf("%v: TickN(1) diverges from Tick", arch)
		}
	}
}

func TestDistributedUndersizedWidthDropsUnderSaturation(t *testing.T) {
	// With width 1 and 5 sources saturated every cycle, the arbiter
	// (1 service/cycle) cannot keep up and events must be dropped.
	s := testSpace(t)
	p := New(s, Distributed)
	p.DistWidth = 1
	if err := p.ConfigureEvents(0, "uops-issued"); err != nil {
		t.Fatal(err)
	}
	p.EnableAll()
	sample := s.NewSample()
	for c := 0; c < 1000; c++ {
		sample.Reset()
		sample.AssertN(s.MustIndex("uops-issued"), 5)
		p.Tick(sample, 0)
	}
	if p.Lost(0) == 0 {
		t.Fatal("saturated undersized counter lost nothing")
	}
}
