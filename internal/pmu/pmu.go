package pmu

import (
	"fmt"
	"math/bits"
)

// CSR addresses of the counter file (RISC-V privileged spec names).
const (
	CSRMCycle        = 0xB00
	CSRMInstret      = 0xB02
	CSRMHPMCounter3  = 0xB03
	CSRMCountInhibit = 0x320
	CSRMHPMEvent3    = 0x323
	CSRCycle         = 0xC00
	CSRInstret       = 0xC02
	CSRHPMCounter3   = 0xC03
)

// NumHPMCounters is the number of programmable counters: the paper's cores
// expose 31 performance counters total — mcycle, minstret, and 29
// mhpmcounters (Table IV).
const NumHPMCounters = 29

// Selector is one mhpmevent register's decoded contents: an 8-bit event-set
// ID and a 56-bit mask selecting events within the set (§IV-D step 2-3).
type Selector struct {
	Set  uint8
	Mask uint64 // 56 bits used
}

// Encode packs the selector into its mhpmevent CSR encoding.
func (s Selector) Encode() uint64 { return uint64(s.Set) | s.Mask<<8 }

// DecodeSelector unpacks an mhpmevent CSR value.
func DecodeSelector(v uint64) Selector {
	return Selector{Set: uint8(v), Mask: v >> 8}
}

// PMU is the counter file of one core. It implements isa.CSRFile so that
// in-band software (the perf harness) can program and read it with CSR
// instructions, and exposes a direct Go API for out-of-band use.
type PMU struct {
	Space *Space
	Arch  Architecture

	selectors [NumHPMCounters]Selector
	counters  [NumHPMCounters]counter
	selected  [NumHPMCounters][]int    // event indices per counter
	scratch   [NumHPMCounters][]uint64 // per-cycle asserted lane masks

	inhibit  uint64 // mcountinhibit: bit 0 = cycle, bit 2 = instret, 3.. = hpm
	mcycle   uint64
	minstret uint64

	// DistWidth forces the distributed architecture's local counter width
	// (0 = sized automatically to ceil(log2(sources))). Undersized widths
	// can drop events; see Lost. Set before Configure.
	DistWidth uint
}

// New builds a PMU over the core's event space with the chosen counter
// microarchitecture. All counters start unconfigured (counting nothing)
// and inhibited, matching reset state.
func New(space *Space, arch Architecture) *PMU {
	p := &PMU{Space: space, Arch: arch, inhibit: ^uint64(0)}
	for i := range p.counters {
		p.counters[i] = p.newCounter(nil)
	}
	return p
}

// Reset returns the PMU to its power-on state — all counters
// unconfigured, cleared, and inhibited — without allocating: counter
// hardware resets in place (an unconfigured counter reads zero whatever
// shape its last configuration left it; Configure rebuilds it anyway).
func (p *PMU) Reset() {
	p.inhibit = ^uint64(0)
	p.mcycle = 0
	p.minstret = 0
	for i := range p.counters {
		p.selectors[i] = Selector{}
		p.selected[i] = p.selected[i][:0]
		p.counters[i].reset()
	}
}

func (p *PMU) newCounter(sourceCounts []int) counter {
	switch p.Arch {
	case AddWires:
		return &addWiresCounter{}
	case Distributed:
		return newDistributedCounter(sourceCounts, p.DistWidth)
	default:
		return &scalarCounter{}
	}
}

// Configure programs counter i (0-based; CSR mhpmcounter(3+i)) to count the
// events selected by sel. Reconfiguring resets the counter hardware, as a
// hardware write to mhpmevent would.
func (p *PMU) Configure(i int, sel Selector) error {
	if i < 0 || i >= NumHPMCounters {
		return fmt.Errorf("pmu: counter index %d out of range", i)
	}
	p.selectors[i] = sel
	p.selected[i] = p.selected[i][:0]
	var srcs []int
	for bit := 0; bit < 56; bit++ {
		if sel.Mask&(1<<uint(bit)) == 0 {
			continue
		}
		if idx, ok := p.Space.byID[ID{sel.Set, uint8(bit)}]; ok {
			p.selected[i] = append(p.selected[i], idx)
			srcs = append(srcs, p.Space.Events[idx].Sources)
		}
	}
	p.scratch[i] = make([]uint64, len(p.selected[i]))
	p.counters[i] = p.newCounter(srcs)
	return nil
}

// ConfigureEvents programs counter i to count the named events, which must
// all belong to one event set. It is the Go-level convenience the perf
// harness builds on.
func (p *PMU) ConfigureEvents(i int, names ...string) error {
	if len(names) == 0 {
		return p.Configure(i, Selector{})
	}
	var sel Selector
	for j, n := range names {
		idx, err := p.Space.Index(n)
		if err != nil {
			return err
		}
		e := p.Space.Events[idx]
		if j == 0 {
			sel.Set = e.Set
		} else if e.Set != sel.Set {
			return fmt.Errorf("pmu: events %q (set %d) and %q (set %d) are in different sets and cannot share a counter",
				names[0], sel.Set, n, e.Set)
		}
		sel.Mask |= 1 << uint(e.Bit)
	}
	return p.Configure(i, sel)
}

// SetInhibit sets the whole mcountinhibit register.
func (p *PMU) SetInhibit(v uint64) { p.inhibit = v }

// EnableAll clears every inhibit bit (step 4 of the harness sequence).
func (p *PMU) EnableAll() { p.inhibit = 0 }

// Tick advances the PMU one cycle: sample holds this cycle's event lane
// assertions and retired is the number of instructions committed this
// cycle (for minstret).
func (p *PMU) Tick(sample Sample, retired int) {
	if p.inhibit&1 == 0 {
		p.mcycle++
	}
	if p.inhibit&4 == 0 {
		p.minstret += uint64(retired)
	}
	for i := range p.counters {
		if p.inhibit&(1<<uint(i+3)) != 0 {
			continue
		}
		sel := p.selected[i]
		if len(sel) == 0 {
			continue
		}
		buf := p.scratch[i]
		any := false
		for j, idx := range sel {
			buf[j] = sample[idx]
			any = any || buf[j] != 0
		}
		if any || p.Arch == Distributed {
			// Distributed counters need ticks even on idle cycles so the
			// arbiter keeps rotating.
			p.counters[i].tick(buf)
		}
	}
}

// TickN advances the PMU n cycles that all carry the identical sample and
// per-cycle retire count — the event-driven skip path's bulk form of Tick.
// It is bit-identical to calling Tick(sample, retired) n times: scalar and
// add-wires counters admit a closed form, while distributed counters are
// stepped cycle by cycle because their rotating arbiter makes the global
// counter depend on the tick phase, not just the tick count.
func (p *PMU) TickN(sample Sample, retired int, n uint64) {
	if n == 0 {
		return
	}
	if p.inhibit&1 == 0 {
		p.mcycle += n
	}
	if p.inhibit&4 == 0 {
		p.minstret += uint64(retired) * n
	}
	for i := range p.counters {
		if p.inhibit&(1<<uint(i+3)) != 0 {
			continue
		}
		sel := p.selected[i]
		if len(sel) == 0 {
			continue
		}
		buf := p.scratch[i]
		any := false
		for j, idx := range sel {
			buf[j] = sample[idx]
			any = any || buf[j] != 0
		}
		if any || p.Arch == Distributed {
			p.counters[i].tickN(buf, n)
		}
	}
}

// Read returns the software-visible value of programmable counter i.
func (p *PMU) Read(i int) uint64 {
	if i < 0 || i >= NumHPMCounters {
		return 0
	}
	return p.counters[i].read()
}

// Cycles returns mcycle.
func (p *PMU) Cycles() uint64 { return p.mcycle }

// Instret returns minstret.
func (p *PMU) Instret() uint64 { return p.minstret }

// Residue returns the undercount currently hidden in counter i's local
// counters (0 for scalar/add-wires). Exposed for experiment E15.
func (p *PMU) Residue(i int) uint64 {
	if d, ok := p.counters[i].(*distributedCounter); ok {
		return d.Residue()
	}
	return 0
}

// LocalWidth returns counter i's distributed local-counter width, or 0.
func (p *PMU) LocalWidth(i int) uint {
	if d, ok := p.counters[i].(*distributedCounter); ok {
		return d.Width()
	}
	return 0
}

// Lost returns the events counter i dropped because an undersized local
// counter wrapped before the arbiter drained it (always 0 at the
// automatic width).
func (p *PMU) Lost(i int) uint64 {
	if d, ok := p.counters[i].(*distributedCounter); ok {
		return d.Lost()
	}
	return 0
}

// Selectors returns the current counter programming (for diagnostics and
// the VLSI model).
func (p *PMU) Selectors() []Selector {
	out := make([]Selector, NumHPMCounters)
	copy(out, p.selectors[:])
	return out
}

// ReadCSR implements isa.CSRFile.
func (p *PMU) ReadCSR(addr uint16) uint64 {
	switch {
	case addr == CSRMCycle || addr == CSRCycle:
		return p.mcycle
	case addr == CSRMInstret || addr == CSRInstret:
		return p.minstret
	case addr == CSRMCountInhibit:
		return p.inhibit
	case addr >= CSRMHPMCounter3 && addr < CSRMHPMCounter3+NumHPMCounters:
		return p.Read(int(addr - CSRMHPMCounter3))
	case addr >= CSRHPMCounter3 && addr < CSRHPMCounter3+NumHPMCounters:
		return p.Read(int(addr - CSRHPMCounter3))
	case addr >= CSRMHPMEvent3 && addr < CSRMHPMEvent3+NumHPMCounters:
		return p.selectors[addr-CSRMHPMEvent3].Encode()
	}
	return 0
}

// WriteCSR implements isa.CSRFile.
func (p *PMU) WriteCSR(addr uint16, val uint64) {
	switch {
	case addr == CSRMCycle:
		p.mcycle = val
	case addr == CSRMInstret:
		p.minstret = val
	case addr == CSRMCountInhibit:
		p.inhibit = val
	case addr >= CSRMHPMCounter3 && addr < CSRMHPMCounter3+NumHPMCounters:
		p.counters[addr-CSRMHPMCounter3].write(val)
	case addr >= CSRMHPMEvent3 && addr < CSRMHPMEvent3+NumHPMCounters:
		// Hardware decodes the selector combinationally from the CSR.
		_ = p.Configure(int(addr-CSRMHPMEvent3), DecodeSelector(val))
	}
}

// PopCount is a helper for tests: total asserted sources in a sample for
// event idx.
func PopCount(sample Sample, idx int) int { return bits.OnesCount64(sample[idx]) }
