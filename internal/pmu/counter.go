package pmu

import (
	"fmt"
	"math/bits"
)

// Architecture selects the counter microarchitecture (§IV-B).
type Architecture uint8

const (
	// Scalar is the baseline: one 1-bit increment wire per counter; when
	// several selected event sources fire in a cycle, the counter still
	// increments by one (the §II-A semantics). Wide events therefore
	// undercount unless every lane gets its own counter.
	Scalar Architecture = iota
	// AddWires locally sums the asserted sources into a multi-bit
	// increment (a sequential adder chain in the paper's Chisel
	// implementation), so a single counter tracks concurrent events
	// exactly.
	AddWires
	// Distributed places a small local counter at each event source;
	// overflow bits are drained into the principal counter by a rotating
	// one-hot arbiter. Reads undercount by at most sources × 2^width
	// (the residue left in local counters).
	Distributed
)

var archNames = [...]string{"scalar", "add-wires", "distributed"}

func (a Architecture) String() string {
	if int(a) < len(archNames) {
		return archNames[a]
	}
	return fmt.Sprintf("arch(%d)", uint8(a))
}

// ParseArchitecture converts a CLI name into an Architecture.
func ParseArchitecture(s string) (Architecture, error) {
	for i, n := range archNames {
		if s == n {
			return Architecture(i), nil
		}
	}
	return 0, fmt.Errorf("pmu: unknown counter architecture %q (want scalar, add-wires, or distributed)", s)
}

// counter is the hardware behind one mhpmcounter CSR.
type counter interface {
	// tick advances one cycle; asserted is the per-selected-event lane
	// masks (pre-filtered to this counter's selection).
	tick(asserted []uint64)
	// tickN advances n cycles that all carry the identical asserted
	// masks, bit-identical to n tick calls (the bulk skip path).
	tickN(asserted []uint64, n uint64)
	// read returns the software-visible value.
	read() uint64
	// write sets the architectural count (software CSR write).
	write(v uint64)
	// reset clears all counting state in place (PMU.Reset, so pooled
	// cores reset without allocating). An unconfigured reset counter
	// reads zero regardless of its previous shape; Configure rebuilds
	// the hardware anyway.
	reset()
}

// --- Scalar ---

type scalarCounter struct{ v uint64 }

func (c *scalarCounter) tick(asserted []uint64) {
	for _, m := range asserted {
		if m != 0 {
			c.v++ // one increment regardless of how many lanes/events fired
			return
		}
	}
}

func (c *scalarCounter) tickN(asserted []uint64, n uint64) {
	for _, m := range asserted {
		if m != 0 {
			c.v += n // one increment per cycle regardless of lane count
			return
		}
	}
}

func (c *scalarCounter) read() uint64   { return c.v }
func (c *scalarCounter) write(v uint64) { c.v = v }
func (c *scalarCounter) reset()         { c.v = 0 }

// --- AddWires ---

type addWiresCounter struct {
	v uint64
	// chainLen records the deepest adder chain exercised, for the VLSI
	// model's combinational-delay estimate.
	chainLen int
}

func (c *addWiresCounter) tick(asserted []uint64) {
	inc := 0
	for _, m := range asserted {
		inc += bits.OnesCount64(m)
	}
	if inc > c.chainLen {
		c.chainLen = inc
	}
	c.v += uint64(inc)
}

func (c *addWiresCounter) tickN(asserted []uint64, n uint64) {
	inc := 0
	for _, m := range asserted {
		inc += bits.OnesCount64(m)
	}
	if inc > c.chainLen {
		c.chainLen = inc // the same chain depth every repeated cycle
	}
	c.v += uint64(inc) * n
}

func (c *addWiresCounter) read() uint64   { return c.v }
func (c *addWiresCounter) write(v uint64) { c.v = v }

func (c *addWiresCounter) reset() {
	c.v = 0
	c.chainLen = 0
}

// --- Distributed ---

type distributedCounter struct {
	offsets  []int    // per selected event: base index into locals
	locals   []uint32 // local counter values, one per source
	overflow []bool   // per-source overflow flag
	width    uint     // local counter width N; overflow represents 2^N events
	next     int      // rotating one-hot arbiter position
	global   uint64   // principal counter, in units of 2^width
	lost     uint64   // events dropped by wrap-while-pending (undersized width)
}

// newDistributedCounter sizes the local counters so the arbiter always
// drains an overflow before the same local counter can overflow again:
// with S sources the arbiter revisits a source every S cycles, and a local
// counter needs 2^N cycles of continuous assertion to overflow, so we need
// 2^N ≥ S. sourceCounts gives the lane count of each selected event.
// widthOverride forces a specific local width (0 = auto); undersized
// widths can drop events (tracked in lost) — the width-sweep ablation.
func newDistributedCounter(sourceCounts []int, widthOverride uint) *distributedCounter {
	offsets := make([]int, len(sourceCounts))
	total := 0
	for i, n := range sourceCounts {
		offsets[i] = total
		total += n
	}
	if total < 1 {
		total = 1
	}
	width := uint(bits.Len(uint(total - 1))) // ceil(log2(S))
	if width == 0 {
		width = 1
	}
	if widthOverride > 0 {
		width = widthOverride
	}
	return &distributedCounter{
		offsets:  offsets,
		locals:   make([]uint32, total),
		overflow: make([]bool, total),
		width:    width,
	}
}

func (c *distributedCounter) tick(asserted []uint64) {
	// Local counters: one per source (event-major, lane-minor order).
	for e, m := range asserted {
		base := c.offsets[e]
		for m != 0 {
			lane := bits.TrailingZeros64(m)
			m &^= 1 << uint(lane)
			i := base + lane
			if i >= len(c.locals) {
				break
			}
			c.locals[i]++
			if c.locals[i] == 1<<c.width {
				c.locals[i] = 0
				if c.overflow[i] {
					// Wrap while the previous overflow is still waiting
					// for the arbiter: 2^N events are silently dropped
					// (only possible when the width is undersized).
					c.lost += 1 << c.width
				}
				c.overflow[i] = true
			}
		}
	}
	// Rotating one-hot arbiter: service one overflow flag per cycle.
	i := c.next
	c.next = (c.next + 1) % len(c.locals)
	if c.overflow[i] {
		c.overflow[i] = false // clear-on-select
		c.global++
	}
}

// tickN has no closed form for the distributed architecture: the global
// counter's value depends on which overflow flags the rotating arbiter
// visits on which cycle, so repeated identical cycles are genuinely
// phase-dependent. Stepping keeps the skip path bit-identical; it only
// costs when a counter is programmed AND the core skips, which the
// perf-harness workloads (short counter windows) keep rare.
func (c *distributedCounter) tickN(asserted []uint64, n uint64) {
	for ; n > 0; n-- {
		c.tick(asserted)
	}
}

func (c *distributedCounter) read() uint64 {
	// Software post-processes by the counter width (artifact §F): the
	// principal counter holds event count / 2^width.
	return c.global << c.width
}

func (c *distributedCounter) write(v uint64) {
	c.global = v >> c.width
	for i := range c.locals {
		c.locals[i] = 0
		c.overflow[i] = false
	}
}

func (c *distributedCounter) reset() {
	c.global = 0
	c.lost = 0
	c.next = 0
	for i := range c.locals {
		c.locals[i] = 0
		c.overflow[i] = false
	}
}

// Residue returns the events currently held in local counters and pending
// overflow flags — the amount by which read() undercounts. Exposed for the
// undercount-bound experiments (E15).
func (c *distributedCounter) Residue() uint64 {
	var r uint64
	for i, v := range c.locals {
		r += uint64(v)
		if c.overflow[i] {
			r += 1 << c.width
		}
	}
	return r
}

// Width returns the local counter width N.
func (c *distributedCounter) Width() uint { return c.width }

// Lost returns the events dropped by wrap-while-pending.
func (c *distributedCounter) Lost() uint64 { return c.lost }
