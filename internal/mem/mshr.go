package mem

// MSHRFile models a file of Miss Status Holding Registers: outstanding
// cache-miss refills. BOOM's D$-blocked event (§IV-A) asserts only while at
// least one MSHR is busy, so occupancy must be queryable per cycle.
type MSHRFile struct {
	entries []mshr
	// stats
	Allocations uint64
	MergedHits  uint64 // accesses that merged into an in-flight refill
	FullStalls  uint64 // allocation attempts rejected because all busy
}

type mshr struct {
	busy    bool
	block   uint64
	readyAt uint64
}

// NewMSHRFile returns a file with n entries. n must be positive.
func NewMSHRFile(n int) *MSHRFile {
	if n <= 0 {
		n = 1
	}
	return &MSHRFile{entries: make([]mshr, n)}
}

// Size returns the number of MSHR entries.
func (f *MSHRFile) Size() int { return len(f.entries) }

// Reset returns the file to its just-constructed state.
func (f *MSHRFile) Reset() {
	for i := range f.entries {
		f.entries[i] = mshr{}
	}
	f.Allocations = 0
	f.MergedHits = 0
	f.FullStalls = 0
}

// Lookup returns the ready cycle of an in-flight refill for block, if any.
func (f *MSHRFile) Lookup(block uint64, now uint64) (readyAt uint64, ok bool) {
	for i := range f.entries {
		e := &f.entries[i]
		if e.busy && e.block == block {
			if e.readyAt <= now {
				e.busy = false
				continue
			}
			f.MergedHits++
			return e.readyAt, true
		}
	}
	return 0, false
}

// Allocate records a new refill for block completing at readyAt. It returns
// false when every entry is busy (the access must stall and retry).
func (f *MSHRFile) Allocate(block uint64, now, readyAt uint64) bool {
	for i := range f.entries {
		e := &f.entries[i]
		if !e.busy || e.readyAt <= now {
			*e = mshr{busy: true, block: block, readyAt: readyAt}
			f.Allocations++
			return true
		}
	}
	f.FullStalls++
	return false
}

// Busy returns the number of refills still in flight at cycle now.
func (f *MSHRFile) Busy(now uint64) int {
	n := 0
	for i := range f.entries {
		e := &f.entries[i]
		if e.busy && e.readyAt > now {
			n++
		}
	}
	return n
}

// AnyBusy reports whether at least one refill is in flight at cycle now.
func (f *MSHRFile) AnyBusy(now uint64) bool { return f.Busy(now) > 0 }

// NextReady returns the earliest cycle strictly after now at which an
// in-flight refill completes, or 0 when nothing is in flight. It is a
// pure query (no lazy entry reclamation) — the cores' event-driven skip
// path uses it to bound how far the clock may jump while the pipeline is
// quiescent: any refill landing flips occupancy-derived events (BOOM's
// D$-blocked heuristic) and wakes dependent loads.
func (f *MSHRFile) NextReady(now uint64) uint64 {
	var next uint64
	for i := range f.entries {
		e := &f.entries[i]
		if e.busy && e.readyAt > now && (next == 0 || e.readyAt < next) {
			next = e.readyAt
		}
	}
	return next
}
