package mem

// HierarchyConfig describes the full memory system shared by Rocket and
// BOOM in the paper (Table IV "Common"): 32 KiB 8-way 64 B-block L1I/L1D,
// 512 KiB 8-way 64 B-block L2, no LLC, FASED-like fixed DRAM latency.
type HierarchyConfig struct {
	L1I CacheConfig
	L1D CacheConfig
	L2  CacheConfig

	L2HitLatency int // extra cycles for an L1 miss that hits in L2
	MemLatency   int // extra cycles for an L2 miss (DRAM)
	TLBHitL2     int // extra cycles for a first-level TLB miss hitting the L2 TLB
	PTWLatency   int // extra cycles for an L2 TLB miss (page-table walk)
	ITLBEntries  int
	DTLBEntries  int
	L2TLBEntries int
	DMSHRs       int // data-side miss status holding registers

	// NextLinePrefetch enables the frontend's next-line instruction
	// prefetcher: every I-fetch also primes the following cache block, so
	// sequential code streams without per-block refill stalls.
	NextLinePrefetch bool
}

// DefaultHierarchyConfig returns the paper's common memory configuration.
// nMSHRs is per-core (Table IV: Rocket/SmallBOOM 2 … Mega/GigaBOOM 8).
func DefaultHierarchyConfig(nMSHRs int) HierarchyConfig {
	return HierarchyConfig{
		L1I:          CacheConfig{Name: "L1I", SizeBytes: 32 << 10, Ways: 8, BlockBytes: 64},
		L1D:          CacheConfig{Name: "L1D", SizeBytes: 32 << 10, Ways: 8, BlockBytes: 64},
		L2:           CacheConfig{Name: "L2", SizeBytes: 512 << 10, Ways: 8, BlockBytes: 64},
		L2HitLatency: 20,
		MemLatency:   80,
		TLBHitL2:     6,
		PTWLatency:   40,
		ITLBEntries:  32,
		DTLBEntries:  32,
		L2TLBEntries: 512,
		DMSHRs:       nMSHRs,

		NextLinePrefetch: true,
	}
}

// Hierarchy is the instantiated memory system.
type Hierarchy struct {
	Cfg   HierarchyConfig
	L1I   *Cache
	L1D   *Cache
	L2    *Cache
	ITLB  *TLB
	DTLB  *TLB
	L2TLB *TLB
	MSHRs *MSHRFile

	// next-line prefetch stream state: the block being prefetched and
	// when its refill lands. A fetch arriving before pfReadyAt pays the
	// remaining latency (a late prefetch is still an in-flight refill).
	pfBlock   uint64
	pfReadyAt uint64
	pfValid   bool
}

// NewHierarchy instantiates the hierarchy from cfg.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	return &Hierarchy{
		Cfg:   cfg,
		L1I:   NewCache(cfg.L1I),
		L1D:   NewCache(cfg.L1D),
		L2:    NewCache(cfg.L2),
		ITLB:  NewTLB(cfg.ITLBEntries),
		DTLB:  NewTLB(cfg.DTLBEntries),
		L2TLB: NewTLB(cfg.L2TLBEntries),
		MSHRs: NewMSHRFile(cfg.DMSHRs),
	}
}

// Reset returns every level — caches, TLBs, MSHRs, and the prefetch
// stream state — to its just-constructed state, in place and without
// allocating. Used by the cores' Reset for pooled reuse.
func (h *Hierarchy) Reset() {
	h.L1I.Reset()
	h.L1D.Reset()
	h.L2.Reset()
	h.ITLB.Reset()
	h.DTLB.Reset()
	h.L2TLB.Reset()
	h.MSHRs.Reset()
	h.pfBlock = 0
	h.pfReadyAt = 0
	h.pfValid = false
}

// NextEvent returns the earliest cycle strictly after now at which the
// hierarchy's autonomous state changes — an MSHR refill completes or the
// next-line prefetch stream's in-flight refill lands — or 0 when nothing
// is in flight. Demand accesses and writebacks are charged inline at
// access time (the hierarchy holds no other timers), so this bound is
// exhaustive: between now and NextEvent(now) every hierarchy query made
// with the same arguments returns the same answer. The cores'
// event-driven skip path uses it to cap how far the clock may jump
// across a provably quiescent stretch.
func (h *Hierarchy) NextEvent(now uint64) uint64 {
	next := h.MSHRs.NextReady(now)
	if h.pfValid && h.pfReadyAt > now && (next == 0 || h.pfReadyAt < next) {
		next = h.pfReadyAt
	}
	return next
}

// IResult describes one instruction-fetch access.
type IResult struct {
	Latency   int // total extra cycles beyond the L1 hit pipeline
	Miss      bool
	L2Miss    bool
	TLBMiss   bool
	L2TLBMiss bool
}

// DResult describes one data access.
type DResult struct {
	Latency   int
	Miss      bool
	L2Miss    bool
	Writeback bool // dirty eviction (D$-release event)
	TLBMiss   bool
	L2TLBMiss bool
	Merged    bool // merged into an in-flight MSHR refill
	MSHRFull  bool // no MSHR free; the access must retry (extra stall)
}

// AccessI performs an instruction fetch of the block containing addr at
// cycle now and returns its timing and the events it raised.
func (h *Hierarchy) AccessI(addr uint64, now uint64) IResult {
	var r IResult
	if !h.ITLB.Access(addr) {
		r.TLBMiss = true
		if h.L2TLB.Access(addr) {
			r.Latency += h.Cfg.TLBHitL2
		} else {
			r.L2TLBMiss = true
			r.Latency += h.Cfg.PTWLatency
		}
	}
	res := h.L1I.Access(addr, false)
	switch {
	case res.Hit && h.pfValid && h.L1I.BlockAddr(addr) == h.pfBlock && now < h.pfReadyAt:
		// Late prefetch: the line is allocated but its refill is still in
		// flight — the fetch stalls for the remainder.
		r.Latency += int(h.pfReadyAt - now)
	case !res.Hit:
		r.Miss = true
		r.Latency += h.Cfg.L2HitLatency
		l2 := h.L2.Access(addr, false)
		if !l2.Hit {
			r.L2Miss = true
			r.Latency += h.Cfg.MemLatency
		}
	}
	if h.Cfg.NextLinePrefetch {
		next := (h.L1I.BlockAddr(addr) + 1) << uint(h.L1I.blkOff)
		if !h.L1I.Probe(next) {
			lat := h.Cfg.L2HitLatency
			if l2 := h.L2.Access(next, false); !l2.Hit {
				lat += h.Cfg.MemLatency
			}
			h.L1I.Install(next)
			h.pfBlock = h.L1I.BlockAddr(next)
			h.pfReadyAt = now + uint64(r.Latency) + uint64(lat)
			h.pfValid = true
		}
	}
	return r
}

// AccessD performs a data access at cycle now. Misses allocate an MSHR so
// that later accesses to the same in-flight block merge instead of paying
// the full miss latency again, and so the D$-blocked heuristic can observe
// MSHR occupancy.
func (h *Hierarchy) AccessD(addr uint64, write bool, now uint64) DResult {
	var r DResult
	if !h.DTLB.Access(addr) {
		r.TLBMiss = true
		if h.L2TLB.Access(addr) {
			r.Latency += h.Cfg.TLBHitL2
		} else {
			r.L2TLBMiss = true
			r.Latency += h.Cfg.PTWLatency
		}
	}
	res := h.L1D.Access(addr, write)
	if res.Hit {
		return r
	}
	r.Miss = true
	r.Writeback = res.Writeback
	block := h.L1D.BlockAddr(addr)
	if readyAt, ok := h.MSHRs.Lookup(block, now); ok {
		r.Merged = true
		r.Latency += int(readyAt - now)
		return r
	}
	missLat := h.Cfg.L2HitLatency
	l2 := h.L2.Access(addr, write)
	if !l2.Hit {
		r.L2Miss = true
		missLat += h.Cfg.MemLatency
	}
	if res.Writeback {
		missLat += 2 // victim writeback occupies the refill port briefly
	}
	if !h.MSHRs.Allocate(block, now, now+uint64(r.Latency)+uint64(missLat)) {
		// All MSHRs busy: retry after the earliest completes. Charge a
		// fixed replay penalty; this is rare with sane MSHR counts.
		r.MSHRFull = true
		missLat += 8
	}
	r.Latency += missLat
	return r
}
