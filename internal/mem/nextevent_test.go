package mem

import "testing"

// The event-driven skip path in the cores relies on NextReady/NextEvent
// being (a) pure — no lazy reclamation, unlike Lookup — and (b) exact
// lower bounds on the next hierarchy state change. These tests pin both.

func TestMSHRNextReady(t *testing.T) {
	f := NewMSHRFile(4)
	if got := f.NextReady(0); got != 0 {
		t.Fatalf("empty file NextReady = %d, want 0", got)
	}
	if !f.Allocate(0x100, 10, 110) {
		t.Fatal("allocate failed")
	}
	if !f.Allocate(0x200, 12, 92) {
		t.Fatal("allocate failed")
	}
	if got := f.NextReady(12); got != 92 {
		t.Fatalf("NextReady(12) = %d, want 92 (earliest in-flight)", got)
	}
	// Strictly-after-now semantics: at now == 92 the 92-refill has landed.
	if got := f.NextReady(92); got != 110 {
		t.Fatalf("NextReady(92) = %d, want 110", got)
	}
	if got := f.NextReady(110); got != 0 {
		t.Fatalf("NextReady(110) = %d, want 0 (all landed)", got)
	}
	// Purity: querying must not reclaim entries (Busy still sees them
	// until their ready cycle passes).
	if n := f.Busy(50); n != 2 {
		t.Fatalf("Busy(50) = %d after NextReady queries, want 2", n)
	}
}

func TestHierarchyNextEvent(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig(2))
	if got := h.NextEvent(0); got != 0 {
		t.Fatalf("idle hierarchy NextEvent = %d, want 0", got)
	}
	// A cold data miss allocates an MSHR whose completion must bound the
	// next event.
	d := h.AccessD(0x8000, false, 100)
	if !d.Miss {
		t.Fatal("expected cold miss")
	}
	next := h.NextEvent(100)
	if next == 0 || next <= 100 {
		t.Fatalf("NextEvent after miss = %d, want a future cycle", next)
	}
	if got := h.MSHRs.NextReady(100); got != next {
		t.Fatalf("NextEvent = %d but MSHR NextReady = %d", next, got)
	}
	// Once the refill lands the hierarchy is idle again.
	if got := h.NextEvent(next); got != 0 {
		t.Fatalf("NextEvent(%d) = %d, want 0", next, got)
	}

	// The next-line prefetch stream is an in-flight refill too: a cold
	// instruction fetch primes block+1, and its landing cycle must be
	// visible as a pending event.
	h.Reset()
	h.AccessI(0x0, 200)
	if got := h.NextEvent(200); got == 0 {
		t.Fatal("prefetch in flight but NextEvent reports idle")
	}
}
