package mem

import "testing"

// TestDirtyTracking covers the producer-side contract of the two-phase
// sampled engine: only frames written while tracking is on are drained,
// drains are sorted and clear the set, and ApplyFrames reproduces the
// drained contents on another memory.
func TestDirtyTracking(t *testing.T) {
	m := NewSparse()
	m.Store(0x1800, 8, 0x1111) // before tracking: must not appear
	m.SetTracking(true)

	if d := m.DrainDirty(); d != nil {
		t.Fatalf("clean memory drained %d frames", len(d))
	}

	m.Store(0x3008, 4, 0xdeadbeef)
	m.Store(0x3010, 8, 42)     // same frame, dedup
	m.Store(0x0ffe, 4, 0xabcd) // straddles frames 0 and 1
	m.WriteBytes(0x9000, []byte{1, 2, 3})

	d := m.DrainDirty()
	want := []uint64{0x0, 0x1, 0x3, 0x9}
	if len(d) != len(want) {
		t.Fatalf("drained %d frames, want %d", len(d), len(want))
	}
	for i, fc := range d {
		if fc.Key != want[i] {
			t.Fatalf("frame %d key = %#x, want %#x (sorted)", i, fc.Key, want[i])
		}
	}

	// Drain clears: the same frames don't come back.
	if d2 := m.DrainDirty(); d2 != nil {
		t.Fatalf("second drain returned %d frames", len(d2))
	}
	// New writes after a drain are tracked again.
	m.Store(0x3000, 1, 7)
	if d3 := m.DrainDirty(); len(d3) != 1 || d3[0].Key != 3 {
		t.Fatalf("post-drain store not tracked: %v", d3)
	}

	// ApplyFrames reproduces the drained bytes on a fresh memory.
	other := NewSparse()
	other.ApplyFrames(d)
	if got := other.Load(0x3008, 4); got != 0xdeadbeef {
		t.Fatalf("applied frame load = %#x, want 0xdeadbeef", got)
	}
	if got := other.Load(0x0ffe, 4); got != 0xabcd {
		t.Fatalf("applied straddle load = %#x, want 0xabcd", got)
	}
	if got := other.ReadBytes(0x9000, 3); got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("applied WriteBytes frame = %v", got)
	}
	// Frame 1 was dirtied by the straddle, so it drained as a FULL copy:
	// the pre-tracking store at 0x1800 rides along in the frame contents.
	if got := other.Load(0x1800, 8); got != 0x1111 {
		t.Fatalf("full-frame copy lost pre-tracking bytes: %#x", got)
	}

	// Full-frame re-application wipes a consumer's stray writes.
	other.Store(0x3020, 8, 0xffff)
	other.ApplyFrames(d)
	if got := other.Load(0x3020, 8); got != 0 {
		t.Fatalf("re-apply did not clean stray write: %#x", got)
	}

	// Reset disables tracking and clears the set.
	m.Store(0x5000, 8, 1)
	m.Reset()
	if d := m.DrainDirty(); d != nil {
		t.Fatalf("drain after Reset returned %d frames", len(d))
	}
	m.Store(0x5000, 8, 1)
	if d := m.DrainDirty(); d != nil {
		t.Fatalf("tracking survived Reset: %d frames", len(d))
	}
}
