// Package mem implements the memory substrate for the Icicle core models: a
// sparse byte-addressable backing store (the functional memory), timing-only
// set-associative caches with MSHRs, TLBs, and the two-level hierarchy that
// the Rocket and BOOM simulators share (32 KiB 8-way L1 I/D, 512 KiB 8-way
// L2, no LLC — Table III/IV of the paper).
package mem

const frameBits = 12 // 4 KiB frames
const frameSize = 1 << frameBits

// Sparse is a sparse byte-addressable memory backed by 4 KiB frames. It
// implements isa.Memory. Reads of unwritten memory return zero bytes.
//
// Accesses are overwhelmingly frame-local and sequential (instruction
// fetch walks one frame for thousands of fetches), so Load/Store take a
// fast path for accesses that fit in one frame, and frame resolution
// keeps a one-entry cache of the last frame touched. Frames are never
// deleted (Reset zeroes them in place), so the cached pointer cannot
// dangle.
type Sparse struct {
	frames  map[uint64]*[frameSize]byte
	lastKey uint64
	last    *[frameSize]byte
}

// NewSparse returns an empty memory.
func NewSparse() *Sparse {
	return &Sparse{frames: make(map[uint64]*[frameSize]byte)}
}

func (m *Sparse) frame(addr uint64, create bool) *[frameSize]byte {
	key := addr >> frameBits
	if m.last != nil && key == m.lastKey {
		return m.last
	}
	f := m.frames[key]
	if f == nil && create {
		f = new([frameSize]byte)
		m.frames[key] = f
	}
	if f != nil {
		m.lastKey, m.last = key, f
	}
	return f
}

// Load returns size bytes at addr, little-endian, zero-extended.
// Accesses may straddle frame boundaries.
func (m *Sparse) Load(addr uint64, size int) uint64 {
	if off := addr & (frameSize - 1); off+uint64(size) <= frameSize {
		f := m.frame(addr, false)
		if f == nil {
			return 0
		}
		var v uint64
		for i := size - 1; i >= 0; i-- {
			v = v<<8 | uint64(f[off+uint64(i)])
		}
		return v
	}
	var v uint64
	for i := 0; i < size; i++ {
		f := m.frame(addr+uint64(i), false)
		if f != nil {
			v |= uint64(f[(addr+uint64(i))&(frameSize-1)]) << (8 * i)
		}
	}
	return v
}

// Store writes the low size bytes of val at addr, little-endian.
func (m *Sparse) Store(addr uint64, size int, val uint64) {
	if off := addr & (frameSize - 1); off+uint64(size) <= frameSize {
		f := m.frame(addr, true)
		for i := 0; i < size; i++ {
			f[off+uint64(i)] = byte(val >> (8 * i))
		}
		return
	}
	for i := 0; i < size; i++ {
		f := m.frame(addr+uint64(i), true)
		f[(addr+uint64(i))&(frameSize-1)] = byte(val >> (8 * i))
	}
}

// WriteBytes copies b into memory starting at addr.
func (m *Sparse) WriteBytes(addr uint64, b []byte) {
	for i, c := range b {
		f := m.frame(addr+uint64(i), true)
		f[(addr+uint64(i))&(frameSize-1)] = c
	}
}

// ReadBytes copies n bytes starting at addr.
func (m *Sparse) ReadBytes(addr uint64, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		f := m.frame(addr+uint64(i), false)
		if f != nil {
			b[i] = f[(addr+uint64(i))&(frameSize-1)]
		}
	}
	return b
}

// Footprint returns the number of bytes of allocated frames (an upper bound
// on the touched working set, at 4 KiB granularity).
func (m *Sparse) Footprint() int { return len(m.frames) * frameSize }

// Reset zeroes every allocated frame in place, keeping the frames
// themselves: a reloaded program with the same (or smaller) footprint
// reuses them without allocating. Reads behave exactly as on a fresh
// memory — unwritten bytes are zero either way.
func (m *Sparse) Reset() {
	for _, f := range m.frames {
		*f = [frameSize]byte{}
	}
}
