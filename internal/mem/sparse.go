// Package mem implements the memory substrate for the Icicle core models: a
// sparse byte-addressable backing store (the functional memory), timing-only
// set-associative caches with MSHRs, TLBs, and the two-level hierarchy that
// the Rocket and BOOM simulators share (32 KiB 8-way L1 I/D, 512 KiB 8-way
// L2, no LLC — Table III/IV of the paper).
package mem

import "sort"

const frameBits = 12 // 4 KiB frames
const frameSize = 1 << frameBits

// Sparse is a sparse byte-addressable memory backed by 4 KiB frames. It
// implements isa.Memory. Reads of unwritten memory return zero bytes.
//
// Accesses are overwhelmingly frame-local and sequential (instruction
// fetch walks one frame for thousands of fetches), so Load/Store take a
// fast path for accesses that fit in one frame, and frame resolution
// keeps a one-entry cache of the last frame touched. Frames are never
// deleted (Reset zeroes them in place), so the cached pointer cannot
// dangle.
type Sparse struct {
	frames  map[uint64]*[frameSize]byte
	lastKey uint64
	last    *[frameSize]byte

	// Dirty-frame tracking for the two-phase sampled engine: when
	// enabled, every frame written since the last DrainDirty is recorded
	// so the producer pass can emit per-span memory deltas. The one-entry
	// dirtyLast cache keeps the common sequential-store case to a single
	// compare instead of a map insert.
	track      bool
	dirty      map[uint64]struct{}
	dirtyLast  uint64
	dirtyValid bool
}

// NewSparse returns an empty memory.
func NewSparse() *Sparse {
	return &Sparse{frames: make(map[uint64]*[frameSize]byte)}
}

func (m *Sparse) frame(addr uint64, create bool) *[frameSize]byte {
	key := addr >> frameBits
	if m.last != nil && key == m.lastKey {
		return m.last
	}
	f := m.frames[key]
	if f == nil && create {
		f = new([frameSize]byte)
		m.frames[key] = f
	}
	if f != nil {
		m.lastKey, m.last = key, f
	}
	return f
}

// Load returns size bytes at addr, little-endian, zero-extended.
// Accesses may straddle frame boundaries.
func (m *Sparse) Load(addr uint64, size int) uint64 {
	if off := addr & (frameSize - 1); off+uint64(size) <= frameSize {
		f := m.frame(addr, false)
		if f == nil {
			return 0
		}
		var v uint64
		for i := size - 1; i >= 0; i-- {
			v = v<<8 | uint64(f[off+uint64(i)])
		}
		return v
	}
	var v uint64
	for i := 0; i < size; i++ {
		f := m.frame(addr+uint64(i), false)
		if f != nil {
			v |= uint64(f[(addr+uint64(i))&(frameSize-1)]) << (8 * i)
		}
	}
	return v
}

// Store writes the low size bytes of val at addr, little-endian.
func (m *Sparse) Store(addr uint64, size int, val uint64) {
	if off := addr & (frameSize - 1); off+uint64(size) <= frameSize {
		f := m.frame(addr, true)
		if m.track {
			m.markDirty(addr >> frameBits)
		}
		for i := 0; i < size; i++ {
			f[off+uint64(i)] = byte(val >> (8 * i))
		}
		return
	}
	for i := 0; i < size; i++ {
		f := m.frame(addr+uint64(i), true)
		if m.track {
			m.markDirty((addr + uint64(i)) >> frameBits)
		}
		f[(addr+uint64(i))&(frameSize-1)] = byte(val >> (8 * i))
	}
}

// WriteBytes copies b into memory starting at addr.
func (m *Sparse) WriteBytes(addr uint64, b []byte) {
	for i, c := range b {
		f := m.frame(addr+uint64(i), true)
		if m.track {
			m.markDirty((addr + uint64(i)) >> frameBits)
		}
		f[(addr+uint64(i))&(frameSize-1)] = c
	}
}

// ReadBytes copies n bytes starting at addr.
func (m *Sparse) ReadBytes(addr uint64, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		f := m.frame(addr+uint64(i), false)
		if f != nil {
			b[i] = f[(addr+uint64(i))&(frameSize-1)]
		}
	}
	return b
}

// Footprint returns the number of bytes of allocated frames (an upper bound
// on the touched working set, at 4 KiB granularity).
func (m *Sparse) Footprint() int { return len(m.frames) * frameSize }

// Checksum returns an FNV-1a hash over the memory contents, walking
// non-zero frames in address order. All-zero frames are skipped, so two
// memories with identical byte contents hash equal regardless of which
// frames happen to be allocated (unwritten bytes read as zero either
// way). Used by the differential tests to compare whole images cheaply.
func (m *Sparse) Checksum() uint64 {
	keys := make([]uint64, 0, len(m.frames))
	for k, f := range m.frames {
		if *f != [frameSize]byte{} {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for _, k := range keys {
		for s := 0; s < 64; s += 8 {
			h = (h ^ (k >> s & 0xff)) * prime
		}
		for _, b := range m.frames[k] {
			h = (h ^ uint64(b)) * prime
		}
	}
	return h
}

// Reset zeroes every allocated frame in place, keeping the frames
// themselves: a reloaded program with the same (or smaller) footprint
// reuses them without allocating. Reads behave exactly as on a fresh
// memory — unwritten bytes are zero either way. Dirty tracking is
// disabled and its pending set cleared.
func (m *Sparse) Reset() {
	for _, f := range m.frames {
		*f = [frameSize]byte{}
	}
	m.track = false
	m.dirtyValid = false
	for k := range m.dirty {
		delete(m.dirty, k)
	}
}

// FrameCopy is a verbatim snapshot of one 4 KiB frame, keyed by frame
// number (address >> 12).
type FrameCopy struct {
	Key  uint64
	Data *[frameSize]byte
}

// Addr returns the base byte address of the copied frame.
func (fc FrameCopy) Addr() uint64 { return fc.Key << frameBits }

// FrameBytes is the size in bytes of one frame (and one FrameCopy).
const FrameBytes = frameSize

// SetTracking enables or disables dirty-frame tracking. Enabling starts
// from an empty dirty set; the program image loaded beforehand is not
// considered dirty.
func (m *Sparse) SetTracking(on bool) {
	m.track = on
	m.dirtyValid = false
	for k := range m.dirty {
		delete(m.dirty, k)
	}
}

func (m *Sparse) markDirty(key uint64) {
	if m.dirtyValid && key == m.dirtyLast {
		return
	}
	if m.dirty == nil {
		m.dirty = make(map[uint64]struct{})
	}
	m.dirty[key] = struct{}{}
	m.dirtyLast, m.dirtyValid = key, true
}

// DrainDirty returns full copies of every frame written since tracking
// was enabled or last drained, sorted by frame key, and clears the dirty
// set. Full-frame copies (rather than byte diffs) make re-application
// idempotent: applying a span's delta restores every byte the span could
// have touched, wiping any stray writes a consumer made on its own.
func (m *Sparse) DrainDirty() []FrameCopy {
	if len(m.dirty) == 0 {
		m.dirtyValid = false
		return nil
	}
	out := make([]FrameCopy, 0, len(m.dirty))
	for k := range m.dirty {
		src := m.frames[k]
		cp := new([frameSize]byte)
		if src != nil {
			*cp = *src
		}
		out = append(out, FrameCopy{Key: k, Data: cp})
		delete(m.dirty, k)
	}
	m.dirtyValid = false
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// ApplyFrames copies the given frame snapshots into memory, replacing
// the frames' entire contents.
func (m *Sparse) ApplyFrames(fs []FrameCopy) {
	for _, fc := range fs {
		dst := m.frames[fc.Key]
		if dst == nil {
			dst = new([frameSize]byte)
			m.frames[fc.Key] = dst
		}
		*dst = *fc.Data
		if m.track {
			m.markDirty(fc.Key)
		}
	}
}
