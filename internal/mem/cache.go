package mem

import "fmt"

// CacheConfig sizes one cache level.
type CacheConfig struct {
	Name       string
	SizeBytes  int
	Ways       int
	BlockBytes int
}

// Validate checks the configuration for internal consistency.
func (c CacheConfig) Validate() error {
	switch {
	case c.SizeBytes <= 0 || c.Ways <= 0 || c.BlockBytes <= 0:
		return fmt.Errorf("mem: %s: non-positive cache parameter", c.Name)
	case c.BlockBytes&(c.BlockBytes-1) != 0:
		return fmt.Errorf("mem: %s: block size %d not a power of two", c.Name, c.BlockBytes)
	case c.SizeBytes%(c.Ways*c.BlockBytes) != 0:
		return fmt.Errorf("mem: %s: size %d not divisible by ways*block", c.Name, c.SizeBytes)
	}
	sets := c.SizeBytes / (c.Ways * c.BlockBytes)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("mem: %s: set count %d not a power of two", c.Name, sets)
	}
	return nil
}

// Sets returns the number of sets.
func (c CacheConfig) Sets() int { return c.SizeBytes / (c.Ways * c.BlockBytes) }

type line struct {
	tag   uint64
	valid bool
	dirty bool
	lru   uint64 // last-touch stamp
}

// CacheStats aggregates cache events.
type CacheStats struct {
	Accesses  uint64
	Misses    uint64
	Evictions uint64 // valid lines displaced
	Releases  uint64 // dirty writebacks (the D$-release event)
}

// MissRate returns misses/accesses, or 0 if the cache is untouched.
func (s CacheStats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Cache is a timing-only set-associative cache with true-LRU replacement.
// Data lives in the Sparse backing store; the cache tracks tags and
// dirtiness to decide hit/miss/writeback.
type Cache struct {
	cfg    CacheConfig
	sets   [][]line
	stamp  uint64
	stats  CacheStats
	blkOff uint
	setLow uint
	setCnt uint64
}

// NewCache builds a cache; it panics on an invalid configuration (cache
// geometry is fixed at construction and always programmer-supplied).
func NewCache(cfg CacheConfig) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nsets := cfg.Sets()
	sets := make([][]line, nsets)
	backing := make([]line, nsets*cfg.Ways)
	for i := range sets {
		sets[i], backing = backing[:cfg.Ways], backing[cfg.Ways:]
	}
	return &Cache{
		cfg:    cfg,
		sets:   sets,
		blkOff: uint(log2(cfg.BlockBytes)),
		setLow: uint(log2(cfg.BlockBytes)),
		setCnt: uint64(nsets),
	}
}

func log2(v int) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// Config returns the cache geometry.
func (c *Cache) Config() CacheConfig { return c.cfg }

// Stats returns accumulated statistics.
func (c *Cache) Stats() CacheStats { return c.stats }

// BlockAddr returns addr truncated to its cache-block address.
func (c *Cache) BlockAddr(addr uint64) uint64 { return addr >> c.blkOff }

// AccessResult describes one cache access.
type AccessResult struct {
	Hit       bool
	Evicted   bool // a valid line was displaced to make room
	Writeback bool // the displaced line was dirty (D$-release)
}

// Access looks up addr, refilling on miss, and returns the outcome.
func (c *Cache) Access(addr uint64, write bool) AccessResult {
	c.stamp++
	c.stats.Accesses++
	tag := addr >> c.blkOff
	set := c.sets[tag&(c.setCnt-1)]
	// Hit path.
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lru = c.stamp
			if write {
				set[i].dirty = true
			}
			return AccessResult{Hit: true}
		}
	}
	// Miss: pick invalid way or LRU victim.
	c.stats.Misses++
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			goto fill
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
fill:
	res := AccessResult{}
	if set[victim].valid {
		res.Evicted = true
		c.stats.Evictions++
		if set[victim].dirty {
			res.Writeback = true
			c.stats.Releases++
		}
	}
	set[victim] = line{tag: tag, valid: true, dirty: write, lru: c.stamp}
	return res
}

// Install fills the block containing addr without touching hit/miss
// statistics — the prefetch path. Displaced dirty lines still count as
// releases (the writeback happens regardless of what triggered it).
func (c *Cache) Install(addr uint64) {
	c.stamp++
	tag := addr >> c.blkOff
	set := c.sets[tag&(c.setCnt-1)]
	victim := 0
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return // already present
		}
		if !set[i].valid {
			victim = i
		} else if set[victim].valid && set[i].lru < set[victim].lru {
			victim = i
		}
	}
	if set[victim].valid && set[victim].dirty {
		c.stats.Releases++
	}
	set[victim] = line{tag: tag, valid: true, lru: c.stamp}
}

// Probe reports whether addr currently hits, without updating LRU or stats.
func (c *Cache) Probe(addr uint64) bool {
	tag := addr >> c.blkOff
	set := c.sets[tag&(c.setCnt-1)]
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}

// Flush invalidates every line (used by fence.i on the I-cache).
func (c *Cache) Flush() {
	for _, set := range c.sets {
		for i := range set {
			set[i] = line{}
		}
	}
}

// Reset returns the cache to its just-constructed state: all lines
// invalid, the LRU stamp rewound, statistics cleared.
func (c *Cache) Reset() {
	c.Flush()
	c.stamp = 0
	c.stats = CacheStats{}
}
