package mem

const pageBits = 12 // 4 KiB pages

// TLB is a small fully-associative translation lookaside buffer timing
// model with true-LRU replacement. Translation itself is identity (the
// workloads run bare-metal, as in the paper's microbenchmark runs); the TLB
// only contributes hit/miss timing and the ITLB/DTLB/L2-TLB miss events.
type TLB struct {
	entries []tlbEntry
	stamp   uint64
	// lastIdx caches the entry of the most recent hit or install: page
	// locality makes back-to-back translations of the same page the
	// common case, and serving them without the associative scan keeps
	// the state evolution bit-identical (the same lru bump happens, the
	// scan is merely skipped).
	lastIdx int
	// stats
	Accesses uint64
	Misses   uint64
}

type tlbEntry struct {
	vpn   uint64
	valid bool
	lru   uint64
}

// NewTLB returns a TLB with n entries (minimum 1).
func NewTLB(n int) *TLB {
	if n <= 0 {
		n = 1
	}
	return &TLB{entries: make([]tlbEntry, n)}
}

// Access translates addr, returning true on hit. On miss the mapping is
// installed (replacing the LRU entry).
func (t *TLB) Access(addr uint64) bool {
	t.stamp++
	t.Accesses++
	vpn := addr >> pageBits
	if e := &t.entries[t.lastIdx]; e.valid && e.vpn == vpn {
		e.lru = t.stamp
		return true
	}
	victim := 0
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.vpn == vpn {
			e.lru = t.stamp
			t.lastIdx = i
			return true
		}
		if !e.valid {
			victim = i
		} else if t.entries[victim].valid && e.lru < t.entries[victim].lru {
			victim = i
		}
	}
	t.Misses++
	t.entries[victim] = tlbEntry{vpn: vpn, valid: true, lru: t.stamp}
	t.lastIdx = victim
	return false
}

// Reset returns the TLB to its just-constructed state.
func (t *TLB) Reset() {
	for i := range t.entries {
		t.entries[i] = tlbEntry{}
	}
	t.lastIdx = 0
	t.stamp = 0
	t.Accesses = 0
	t.Misses = 0
}

// MissRate returns misses/accesses, or 0 if untouched.
func (t *TLB) MissRate() float64 {
	if t.Accesses == 0 {
		return 0
	}
	return float64(t.Misses) / float64(t.Accesses)
}
