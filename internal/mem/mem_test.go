package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSparseRoundTrip(t *testing.T) {
	m := NewSparse()
	f := func(addr uint64, val uint64, sz uint8) bool {
		size := int(sz%8) + 1
		addr &= 0xFFFFFF
		m.Store(addr, size, val)
		got := m.Load(addr, size)
		want := val
		if size < 8 {
			want &= 1<<(8*size) - 1
		}
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSparseCrossFrameAccess(t *testing.T) {
	m := NewSparse()
	addr := uint64(frameSize - 3) // straddles the frame boundary
	m.Store(addr, 8, 0x1122334455667788)
	if got := m.Load(addr, 8); got != 0x1122334455667788 {
		t.Fatalf("cross-frame load = %#x", got)
	}
}

func TestSparseUnwrittenReadsZero(t *testing.T) {
	m := NewSparse()
	if m.Load(0x123456, 8) != 0 {
		t.Fatal("unwritten memory nonzero")
	}
}

func TestSparseBytes(t *testing.T) {
	m := NewSparse()
	data := []byte("hello, icicle")
	m.WriteBytes(0x8000, data)
	if got := string(m.ReadBytes(0x8000, len(data))); got != string(data) {
		t.Fatalf("got %q", got)
	}
	if m.Footprint() == 0 {
		t.Fatal("footprint zero after write")
	}
}

func TestCacheConfigValidation(t *testing.T) {
	bad := []CacheConfig{
		{Name: "z", SizeBytes: 0, Ways: 1, BlockBytes: 64},
		{Name: "b", SizeBytes: 1024, Ways: 1, BlockBytes: 48},       // non-pow2 block
		{Name: "s", SizeBytes: 1000, Ways: 2, BlockBytes: 64},       // not divisible
		{Name: "t", SizeBytes: 64 * 2 * 3, Ways: 2, BlockBytes: 64}, // 3 sets
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("%+v validated", cfg)
		}
	}
	good := CacheConfig{Name: "ok", SizeBytes: 32 << 10, Ways: 8, BlockBytes: 64}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if good.Sets() != 64 {
		t.Fatalf("sets = %d", good.Sets())
	}
}

func TestCacheHitMiss(t *testing.T) {
	c := NewCache(CacheConfig{Name: "t", SizeBytes: 1024, Ways: 2, BlockBytes: 64})
	if r := c.Access(0, false); r.Hit {
		t.Fatal("cold access hit")
	}
	if r := c.Access(32, false); !r.Hit {
		t.Fatal("same-block access missed")
	}
	if !c.Probe(0) || c.Probe(4096) {
		t.Fatal("probe wrong")
	}
	st := c.Stats()
	if st.Accesses != 2 || st.Misses != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2-way, 64B blocks, 2 sets (256 B total).
	c := NewCache(CacheConfig{Name: "t", SizeBytes: 256, Ways: 2, BlockBytes: 64})
	// Fill set 0 with blocks 0 and 2 (set = block & 1).
	c.Access(0*64, false)
	c.Access(2*64, false)
	c.Access(0*64, false) // touch block 0: block 2 becomes LRU
	r := c.Access(4*64, false)
	if r.Hit || !r.Evicted {
		t.Fatalf("expected eviction, got %+v", r)
	}
	if !c.Probe(0) {
		t.Fatal("LRU evicted the wrong way")
	}
	if c.Probe(2 * 64) {
		t.Fatal("victim still present")
	}
}

func TestCacheWritebackRelease(t *testing.T) {
	c := NewCache(CacheConfig{Name: "t", SizeBytes: 128, Ways: 1, BlockBytes: 64})
	c.Access(0, true) // dirty
	r := c.Access(128, false)
	if !r.Writeback {
		t.Fatalf("dirty eviction did not write back: %+v", r)
	}
	if c.Stats().Releases != 1 {
		t.Fatalf("releases = %d", c.Stats().Releases)
	}
}

func TestCacheFlush(t *testing.T) {
	c := NewCache(CacheConfig{Name: "t", SizeBytes: 1024, Ways: 2, BlockBytes: 64})
	c.Access(0, false)
	c.Flush()
	if c.Probe(0) {
		t.Fatal("flush did not invalidate")
	}
}

func TestCacheInstallQuiet(t *testing.T) {
	c := NewCache(CacheConfig{Name: "t", SizeBytes: 1024, Ways: 2, BlockBytes: 64})
	c.Install(0)
	st := c.Stats()
	if st.Accesses != 0 || st.Misses != 0 {
		t.Fatalf("install polluted stats: %+v", st)
	}
	if r := c.Access(0, false); !r.Hit {
		t.Fatal("installed block not present")
	}
}

func TestMSHRMergeAndOccupancy(t *testing.T) {
	f := NewMSHRFile(2)
	if !f.Allocate(100, 0, 50) {
		t.Fatal("allocate failed")
	}
	if ready, ok := f.Lookup(100, 10); !ok || ready != 50 {
		t.Fatalf("lookup = %d, %v", ready, ok)
	}
	if f.Busy(10) != 1 {
		t.Fatalf("busy = %d", f.Busy(10))
	}
	if !f.Allocate(200, 10, 90) {
		t.Fatal("second allocate failed")
	}
	if f.Allocate(300, 20, 120) {
		t.Fatal("third allocate succeeded with full file")
	}
	if f.FullStalls != 1 {
		t.Fatalf("full stalls = %d", f.FullStalls)
	}
	// After 50, the first entry is free.
	if !f.Allocate(300, 60, 140) {
		t.Fatal("allocate after completion failed")
	}
	if f.AnyBusy(200) {
		t.Fatal("busy after all completions")
	}
}

func TestTLB(t *testing.T) {
	tlb := NewTLB(2)
	if tlb.Access(0x1000) {
		t.Fatal("cold TLB hit")
	}
	if !tlb.Access(0x1008) {
		t.Fatal("same-page miss")
	}
	tlb.Access(0x2000)
	tlb.Access(0x1000) // keep page 1 warm
	tlb.Access(0x3000) // evicts page 2 (LRU)
	if !tlb.Access(0x1000) {
		t.Fatal("page 1 evicted out of LRU order")
	}
	if tlb.Access(0x2000) {
		t.Fatal("page 2 should have been evicted")
	}
	if tlb.MissRate() <= 0 {
		t.Fatal("no miss rate")
	}
}

func TestHierarchyILatencies(t *testing.T) {
	cfg := DefaultHierarchyConfig(2)
	cfg.NextLinePrefetch = false
	h := NewHierarchy(cfg)
	r := h.AccessI(0x10000, 0)
	if !r.Miss || !r.L2Miss {
		t.Fatalf("cold fetch: %+v", r)
	}
	wantLat := cfg.L2HitLatency + cfg.MemLatency + cfg.PTWLatency
	if r.Latency != wantLat {
		t.Fatalf("latency = %d, want %d", r.Latency, wantLat)
	}
	r = h.AccessI(0x10000, 1)
	if r.Miss || r.Latency != 0 {
		t.Fatalf("warm fetch: %+v", r)
	}
}

func TestHierarchyNextLinePrefetch(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig(2))
	h.AccessI(0x10000, 0)
	r := h.AccessI(0x10040, 1) // next block: prefetched
	if r.Miss {
		t.Fatalf("next-line not prefetched: %+v", r)
	}
}

func TestHierarchyDMSHRMerge(t *testing.T) {
	cfg := DefaultHierarchyConfig(4)
	h := NewHierarchy(cfg)
	r1 := h.AccessD(0x20000, false, 0)
	if !r1.Miss || r1.Merged {
		t.Fatalf("first access: %+v", r1)
	}
	r2 := h.AccessD(0x20008, false, 5)
	// Same block: the line is already installed in L1 by the first
	// access's refill model, so this hits.
	if !r2.Miss && r2.Latency != 0 {
		t.Fatalf("same-block followup: %+v", r2)
	}
	if !h.MSHRs.AnyBusy(5) {
		t.Fatal("MSHR not busy during refill window")
	}
}

func TestHierarchyRandomizedMSHRBound(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig(4))
	r := rand.New(rand.NewSource(3))
	for now := uint64(0); now < 10_000; now += 7 {
		addr := uint64(r.Intn(1 << 22))
		h.AccessD(addr, r.Intn(2) == 0, now)
		if b := h.MSHRs.Busy(now); b > 4 {
			t.Fatalf("MSHR occupancy %d exceeds file size", b)
		}
	}
}
