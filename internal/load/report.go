package load

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"icicle/internal/obs"
)

// Step is one rung of a throughput-vs-latency ladder: either a target
// arrival rate (open loop) or a worker count (closed loop), depending on
// the options' Mode.
type Step struct {
	Rate        float64 `json:"rate,omitempty"`
	Concurrency int     `json:"concurrency,omitempty"`
}

// ClassWait is one priority class's queue-wait summary from the server's
// own icicle_serve_queue_wait_seconds{class="N"} histogram, scraped as a
// per-step delta.
type ClassWait struct {
	Class string  `json:"class"`
	Count float64 `json:"count"`
	P50   float64 `json:"p50_sec"`
	P99   float64 `json:"p99_sec"`
}

// EndpointDuration is one endpoint's server-measured request duration.
type EndpointDuration struct {
	Endpoint string  `json:"endpoint"`
	Count    float64 `json:"count"`
	P50      float64 `json:"p50_sec"`
	P99      float64 `json:"p99_sec"`
}

// ServerStats are the server-side deltas across one load step, scraped
// from /metrics before and after, aligned with the client-observed
// latency of the same window.
type ServerStats struct {
	QueueWaitCount float64 `json:"queue_wait_count"`
	QueueWaitP50   float64 `json:"queue_wait_p50_sec"`
	QueueWaitP99   float64 `json:"queue_wait_p99_sec"`

	PerClass    []ClassWait        `json:"per_class,omitempty"`
	PerEndpoint []EndpointDuration `json:"per_endpoint,omitempty"`

	JobsCompleted float64 `json:"jobs_completed"`
	StoreHits     float64 `json:"store_hits"`
	MemoHits      float64 `json:"memo_hits"`
	Simulated     float64 `json:"simulated"`
	Errored       float64 `json:"errored"`
	// HitRate is (store+memo hits)/completed for the step window — how
	// much of the offered load the caches absorbed.
	HitRate float64 `json:"hit_rate"`
	// QueueDepth is the level at the end of the step (a gauge, not a
	// delta); nonzero after drain indicates the server is still backed up.
	QueueDepth float64 `json:"queue_depth"`
}

// labelValue pulls one label's value out of a series key like
// `name{class="2"}`.
func labelValue(key, label string) string {
	i := strings.Index(key, label+"=\"")
	if i < 0 {
		return ""
	}
	rest := key[i+len(label)+2:]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return ""
	}
	return rest[:j]
}

// serverStats reduces a scrape delta (after minus before) plus the raw
// "after" capture (for gauge levels) into report columns. It prefers the
// icicle_serve_* series and falls back to icicle_sim_* when the target
// is the in-process runner.
func serverStats(d, after *obs.Scraped) *ServerStats {
	if d == nil {
		return nil
	}
	s := &ServerStats{}
	if qw := d.Hist("icicle_serve_queue_wait_seconds"); qw != nil && qw.Count > 0 {
		s.QueueWaitCount = qw.Count
		s.QueueWaitP50 = qw.Quantile(0.5)
		s.QueueWaitP99 = qw.Quantile(0.99)
	}
	for _, key := range d.HistsWithPrefix("icicle_serve_queue_wait_seconds{") {
		h := d.Hist(key)
		if h == nil || h.Count <= 0 {
			continue
		}
		s.PerClass = append(s.PerClass, ClassWait{
			Class: labelValue(key, "class"),
			Count: h.Count,
			P50:   h.Quantile(0.5),
			P99:   h.Quantile(0.99),
		})
	}
	sort.Slice(s.PerClass, func(i, j int) bool { return s.PerClass[i].Class < s.PerClass[j].Class })
	for _, key := range d.HistsWithPrefix("icicle_serve_request_duration_seconds{") {
		h := d.Hist(key)
		if h == nil || h.Count <= 0 {
			continue
		}
		s.PerEndpoint = append(s.PerEndpoint, EndpointDuration{
			Endpoint: labelValue(key, "endpoint"),
			Count:    h.Count,
			P50:      h.Quantile(0.5),
			P99:      h.Quantile(0.99),
		})
	}
	sort.Slice(s.PerEndpoint, func(i, j int) bool { return s.PerEndpoint[i].Endpoint < s.PerEndpoint[j].Endpoint })

	s.JobsCompleted = d.Value("icicle_serve_jobs_completed_total")
	s.StoreHits = d.Value("icicle_serve_store_hits_total")
	s.MemoHits = d.Value("icicle_serve_memo_hits_total")
	s.Simulated = d.Value("icicle_serve_simulated_total")
	s.Errored = d.Value("icicle_serve_jobs_errored_total")
	if s.JobsCompleted == 0 {
		// In-process runner: map the sim-layer counters into the same
		// columns (memo = engine cache, simulated = cache misses).
		s.JobsCompleted = d.Value("icicle_sim_jobs_total")
		s.StoreHits = d.Value("icicle_sim_store_hits_total")
		s.MemoHits = d.Value("icicle_sim_cache_hits_total")
		s.Simulated = d.Value("icicle_sim_cache_misses_total")
	}
	if s.JobsCompleted > 0 {
		s.HitRate = (s.StoreHits + s.MemoHits) / s.JobsCompleted
	}
	if after != nil {
		s.QueueDepth = after.Value("icicle_serve_queue_depth")
	}
	return s
}

// Report is the full ladder artifact (BENCH_9.json).
type Report struct {
	Name        string        `json:"name"` // "icicle-load"
	Target      string        `json:"target"`
	Mode        string        `json:"mode"`
	Pacing      string        `json:"pacing,omitempty"`
	GeneratedAt string        `json:"generated_at,omitempty"`
	Profiles    []Profile     `json:"profiles"`
	SLOSpecs    []string      `json:"slo_specs,omitempty"`
	Steps       []*StepResult `json:"steps"`
}

// RunLadder executes each step with the shared options (each step
// overrides Rate or Concurrency), scraping server metrics around every
// step when a scraper is provided. Steps run sequentially — each rung
// measures a settled server, not its neighbor's backlog (the queue has
// drained by construction: wait-mode requests only return when their
// jobs finish).
func RunLadder(t Target, opts Options, steps []Step, scrape Scraper) (*Report, error) {
	o := opts.withDefaults()
	rep := &Report{
		Name:     "icicle-load",
		Mode:     o.Mode.String(),
		Profiles: o.Profiles,
	}
	if o.Mode == Open {
		rep.Pacing = o.Pacing.String()
	}
	for _, s := range o.SLOs {
		rep.SLOSpecs = append(rep.SLOSpecs, s.Spec())
	}
	for i, st := range steps {
		stepOpts := o
		if st.Rate > 0 {
			stepOpts.Rate = st.Rate
		}
		if st.Concurrency > 0 {
			stepOpts.Concurrency = st.Concurrency
		}
		var before *obs.Scraped
		if scrape != nil {
			b, err := scrape()
			if err != nil {
				return nil, fmt.Errorf("load: step %d pre-scrape: %w", i, err)
			}
			before = b
		}
		res, err := Run(t, stepOpts)
		if err != nil {
			return nil, fmt.Errorf("load: step %d: %w", i, err)
		}
		if scrape != nil {
			after, err := scrape()
			if err != nil {
				return nil, fmt.Errorf("load: step %d post-scrape: %w", i, err)
			}
			res.Server = serverStats(after.Delta(before), after)
		}
		rep.Steps = append(rep.Steps, res)
	}
	return rep, nil
}

// WriteJSON writes the report as indented JSON to path.
func (r *Report) WriteJSON(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

func ms(sec float64) string { return fmt.Sprintf("%.2f", sec*1e3) }

// WriteText renders the human-readable ladder table plus SLO verdicts.
func (r *Report) WriteText(w io.Writer) {
	fmt.Fprintf(w, "icicle-load %s loop", r.Mode)
	if r.Pacing != "" {
		fmt.Fprintf(w, " (%s pacing)", r.Pacing)
	}
	if r.Target != "" {
		fmt.Fprintf(w, " against %s", r.Target)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-10s %-10s %-9s %-9s %-9s %-9s %-9s %-6s %-10s %-7s\n",
		"target", "achieved", "p50 ms", "p95 ms", "p99 ms", "p99.9 ms", "max ms", "drops", "qwait p99", "hitrate")
	for _, s := range r.Steps {
		target := fmt.Sprintf("c=%d", s.Concurrency)
		if s.Mode == "open" {
			target = fmt.Sprintf("%.0f/s", s.TargetRate)
		}
		qwait, hit := "-", "-"
		if s.Server != nil {
			if s.Server.QueueWaitCount > 0 {
				qwait = ms(s.Server.QueueWaitP99)
			}
			hit = fmt.Sprintf("%.2f", s.Server.HitRate)
		}
		fmt.Fprintf(w, "%-10s %-10s %-9s %-9s %-9s %-9s %-9s %-6d %-10s %-7s\n",
			target, fmt.Sprintf("%.1f/s", s.Throughput),
			ms(s.Latency.P50), ms(s.Latency.P95), ms(s.Latency.P99),
			ms(s.Latency.P999), ms(s.Latency.Max), s.Dropped, qwait, hit)
	}
	for _, s := range r.Steps {
		for _, slo := range s.SLOs {
			verdict := "PASS"
			if !slo.Pass {
				verdict = "FAIL"
			}
			target := fmt.Sprintf("c=%d", s.Concurrency)
			if s.Mode == "open" {
				target = fmt.Sprintf("%.0f/s", s.TargetRate)
			}
			fmt.Fprintf(w, "SLO %-14s @ %-8s %s  actual %sms  burn %.2fx\n",
				slo.Spec, target, verdict, ms(slo.ActualSec), slo.BurnRate)
		}
	}
}

// Stamp records the generation time; kept out of RunLadder so callers
// control it (tests want deterministic artifacts).
func (r *Report) Stamp(t time.Time) { r.GeneratedAt = t.UTC().Format(time.RFC3339) }
