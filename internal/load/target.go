package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"icicle/internal/obs"
	"icicle/internal/serve"
	"icicle/internal/sim"
)

// HTTPTarget drives a live icicle-serve endpoint: each Do posts one job
// in wait mode (synchronous, HTTP 200 carries the full StatusResponse),
// so one request equals one end-to-end measured latency that still
// passes through the server's priority/fairness queue.
type HTTPTarget struct {
	BaseURL string
	Specs   []serve.JobSpec // cycled by sequence number
	Client  *http.Client
}

// NewHTTPTarget builds a target for base (e.g. "http://127.0.0.1:8372")
// with a connection pool sized for maxInFlight concurrent requests.
func NewHTTPTarget(base string, specs []serve.JobSpec, maxInFlight int) (*HTTPTarget, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("load: HTTP target needs at least one job spec")
	}
	if maxInFlight <= 0 {
		maxInFlight = 256
	}
	tr := &http.Transport{
		MaxIdleConns:        maxInFlight,
		MaxIdleConnsPerHost: maxInFlight,
		IdleConnTimeout:     90 * time.Second,
	}
	return &HTTPTarget{
		BaseURL: base,
		Specs:   specs,
		Client:  &http.Client{Transport: tr, Timeout: 5 * time.Minute},
	}, nil
}

// Do submits one job synchronously and returns once it has completed.
func (t *HTTPTarget) Do(p Profile, seq int) error {
	spec := t.Specs[seq%len(t.Specs)]
	body, err := json.Marshal(serve.SubmitRequest{
		Client:   p.Client,
		Priority: p.Priority,
		Weight:   p.Weight,
		Wait:     true,
		Jobs:     []serve.JobSpec{spec},
	})
	if err != nil {
		return err
	}
	resp, err := t.Client.Post(t.BaseURL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return fmt.Errorf("POST /jobs: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	var st serve.StatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return fmt.Errorf("POST /jobs: decode: %w", err)
	}
	if st.State != "done" {
		return fmt.Errorf("POST /jobs: wait returned state %q", st.State)
	}
	for _, r := range st.Results {
		if r.Error != "" {
			return fmt.Errorf("job %s: %s", r.Key, r.Error)
		}
	}
	return nil
}

// SimTarget drives the in-process runner directly — the same measurement
// harness without the HTTP/queue layers, for isolating engine capacity.
type SimTarget struct {
	Runner *sim.Runner
	Jobs   []sim.Job // cycled by sequence number
}

// Do runs one job to completion on the runner.
func (t *SimTarget) Do(_ Profile, seq int) error {
	res := t.Runner.RunOne(t.Jobs[seq%len(t.Jobs)])
	return res.Err
}

// Scraper captures server-side metrics around a load step so the report
// can pair client-observed latency with the server's own telemetry.
type Scraper func() (*obs.Scraped, error)

// HTTPScraper scrapes a /metrics URL.
func HTTPScraper(metricsURL string) Scraper {
	return func() (*obs.Scraped, error) { return obs.ScrapeURL(metricsURL) }
}

// RegistryScraper captures an in-process registry through the same
// render/parse path, so both target kinds produce identical columns.
func RegistryScraper(reg *obs.Registry) Scraper {
	return func() (*obs.Scraped, error) { return obs.ScrapeRegistry(reg) }
}
