// Package load is the service-level measurement harness: a closed/open
// loop load generator with HDR latency histograms and SLO reporting,
// the ROADMAP's answer to "you cannot claim heavy traffic without a
// latency curve". It drives either the in-process sim runner or a live
// icicle-serve endpoint and reports throughput-vs-latency ladders as a
// benchmark artifact, so every future scaling PR is judged against a
// regression-guarded curve instead of an anecdote — the same
// measure-first discipline the paper applies one level down with
// hardware TMA counters.
//
// Two loop disciplines:
//
//   - Closed loop: a fixed worker count, each issuing the next request
//     the moment the previous one completes. Measures the service's
//     capacity at a given concurrency; latency is back-pressured, so it
//     understates what independent clients would see.
//   - Open loop: requests arrive on an independent schedule (uniform or
//     Poisson pacing) at a target rate, like real traffic. Latency is
//     measured from the *intended* arrival time, not the actual send —
//     the coordinated-omission correction (HdrHistogram/wrk2): when the
//     service stalls, queued arrivals charge the stall to the service
//     instead of silently pausing the clock.
//
// Each measurement discards warm-up via steady-state detection (leading
// time slices whose throughput has not yet stabilized), splits results
// per priority class and per client profile, evaluates declarative SLO
// targets ("p99 < 50ms") with error-budget burn rates, and — when given
// a scraper — pairs every ladder step with the server's own deltas
// (queue-wait histograms per class, store/memo hit rates, in-flight),
// so one artifact shows client-observed latency next to server-side
// queueing and cache behavior.
package load

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"icicle/internal/obs"
)

// Mode selects the loop discipline.
type Mode int

const (
	// Closed runs a fixed number of workers back to back.
	Closed Mode = iota
	// Open paces arrivals at a target rate independent of completions.
	Open
)

func (m Mode) String() string {
	if m == Open {
		return "open"
	}
	return "closed"
}

// Pacing selects the open-loop inter-arrival process.
type Pacing int

const (
	// Uniform spaces arrivals exactly 1/rate apart.
	Uniform Pacing = iota
	// Poisson draws exponential inter-arrival gaps (memoryless traffic,
	// the standard model for independent clients).
	Poisson
)

func (p Pacing) String() string {
	if p == Poisson {
		return "poisson"
	}
	return "uniform"
}

// Profile is one synthetic client identity: the fairness/priority
// coordinates it submits under and its share of generated traffic.
type Profile struct {
	Client   string  `json:"client"`
	Priority int     `json:"priority"`
	Weight   int     `json:"weight"`
	Share    float64 `json:"share"` // relative traffic share (normalized internally)
}

// Target executes one request for a profile, blocking until the
// response is complete. seq is the global request sequence number
// (targets typically cycle a job list with it). Errors are counted per
// step, not fatal.
type Target interface {
	Do(p Profile, seq int) error
}

// Options configures one measurement step.
type Options struct {
	Mode        Mode
	Concurrency int           // closed-loop workers (default 1)
	Rate        float64       // open-loop target arrival rate, req/s
	Pacing      Pacing        // open-loop inter-arrival process
	Duration    time.Duration // generation window (default 1s)
	// MaxInFlight caps concurrent open-loop dispatches (default 256).
	// Arrivals beyond the cap queue (their wait is charged to latency by
	// the coordinated-omission correction); arrivals beyond the internal
	// buffer are counted as dropped samples — a healthy run has zero.
	MaxInFlight int
	Seed        int64     // deterministic pacing/schedule seed
	Profiles    []Profile // default: one "anon" profile, share 1
	// Slices is the steady-state resolution: the step is cut into this
	// many equal time slices and leading slices are discarded until
	// per-slice throughput stabilizes (default 10, minimum 4).
	Slices int
	// SliceTolerance is the allowed relative deviation of a steady
	// slice's throughput from the steady-window mean (default 0.25),
	// plus Poisson noise slack.
	SliceTolerance float64
	SLOs           []SLO
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Concurrency <= 0 {
		out.Concurrency = 1
	}
	if out.Duration <= 0 {
		out.Duration = time.Second
	}
	if out.MaxInFlight <= 0 {
		out.MaxInFlight = 256
	}
	if len(out.Profiles) == 0 {
		out.Profiles = []Profile{{Client: "anon", Weight: 1, Share: 1}}
	}
	if out.Slices < 4 {
		out.Slices = 10
	}
	if out.SliceTolerance <= 0 {
		out.SliceTolerance = 0.25
	}
	return out
}

// Quantiles is a latency summary in seconds.
type Quantiles struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean_sec"`
	P50   float64 `json:"p50_sec"`
	P90   float64 `json:"p90_sec"`
	P95   float64 `json:"p95_sec"`
	P99   float64 `json:"p99_sec"`
	P999  float64 `json:"p999_sec"`
	Max   float64 `json:"max_sec"`
}

func quantilesOf(s *obs.HistogramSnapshot) Quantiles {
	const ns = 1e-9
	return Quantiles{
		Count: s.Count,
		Mean:  s.Mean() * ns,
		P50:   float64(s.Quantile(0.5)) * ns,
		P90:   float64(s.Quantile(0.9)) * ns,
		P95:   float64(s.Quantile(0.95)) * ns,
		P99:   float64(s.Quantile(0.99)) * ns,
		P999:  float64(s.Quantile(0.999)) * ns,
		Max:   float64(s.Max) * ns,
	}
}

// ProfileStats is one client profile's steady-window breakdown.
type ProfileStats struct {
	Profile Profile   `json:"profile"`
	Errors  uint64    `json:"errors"`
	Latency Quantiles `json:"latency"`
}

// StepResult is one measurement step: one (mode, rate/concurrency)
// point on the throughput-vs-latency curve.
type StepResult struct {
	Mode        string  `json:"mode"`
	Pacing      string  `json:"pacing,omitempty"` // open loop only
	TargetRate  float64 `json:"target_rate,omitempty"`
	Concurrency int     `json:"concurrency,omitempty"`

	DurationSec float64 `json:"duration_sec"` // generation window
	Intended    uint64  `json:"intended"`     // arrivals scheduled
	Started     uint64  `json:"started"`      // requests actually issued
	Completed   uint64  `json:"completed"`    // successful completions
	Errors      uint64  `json:"errors"`
	Dropped     uint64  `json:"dropped"` // arrivals lost to buffer overflow (must be 0)

	// Steady-state window: slice k..end after discarding warm-up.
	WarmupSlices  int     `json:"warmup_slices"`
	TotalSlices   int     `json:"total_slices"`
	SteadySec     float64 `json:"steady_sec"`
	Throughput    float64 `json:"throughput_rps"` // completions/sec in the steady window
	OfferedRate   float64 `json:"offered_rps"`    // intended arrivals/sec over the whole step
	AchievedRatio float64 `json:"achieved_ratio"` // throughput / target (open loop)

	// Latency is coordinated-omission corrected (from intended arrival
	// time); ServiceLatency is measured from the actual send, i.e. what
	// a naive benchmark would report. Comparing the two shows how much
	// queueing the correction recovered. Both cover the steady window.
	Latency        Quantiles `json:"latency"`
	ServiceLatency Quantiles `json:"service_latency"`

	PerProfile map[string]*ProfileStats `json:"per_profile,omitempty"`
	SLOs       []SLOResult              `json:"slos,omitempty"`
	Server     *ServerStats             `json:"server,omitempty"`
}

// arrival is one scheduled open-loop request.
type arrival struct {
	intended time.Time
	profile  Profile
	seq      int
}

// buildSchedule spreads profile shares over a repeating schedule with
// smooth interleaving (largest-deficit-first WRR), so "50/50" means
// alternating requests rather than alternating bursts.
func buildSchedule(profiles []Profile, n int) []int {
	shares := make([]float64, len(profiles))
	var total float64
	for i, p := range profiles {
		s := p.Share
		if s <= 0 {
			s = 1
		}
		shares[i] = s
		total += s
	}
	for i := range shares {
		shares[i] /= total
	}
	assigned := make([]float64, len(profiles))
	out := make([]int, n)
	for i := range out {
		best, bestDef := 0, math.Inf(-1)
		for j := range profiles {
			def := shares[j]*float64(i+1) - assigned[j]
			if def > bestDef {
				best, bestDef = j, def
			}
		}
		out[i] = best
		assigned[best]++
	}
	return out
}

// steadyStart returns the first slice index from which per-slice
// throughput is stable: every slice in the tail within tol of the tail
// mean, plus Poisson (sqrt) slack for small counts. Falls back to the
// midpoint when nothing stabilizes.
func steadyStart(counts []uint64, tol float64) int {
	n := len(counts)
	if n == 0 {
		return 0
	}
	for k := 0; k <= n/2; k++ {
		tail := counts[k:]
		var sum float64
		for _, c := range tail {
			sum += float64(c)
		}
		mean := sum / float64(len(tail))
		slack := tol*mean + 2*math.Sqrt(mean) + 1
		ok := true
		for _, c := range tail {
			if math.Abs(float64(c)-mean) > slack {
				ok = false
				break
			}
		}
		if ok {
			return k
		}
	}
	return n / 2
}

// Run executes one measurement step against the target.
func Run(t Target, opts Options) (*StepResult, error) {
	o := opts.withDefaults()
	if o.Mode == Open && o.Rate <= 0 {
		return nil, fmt.Errorf("load: open loop requires a positive Rate (got %g)", o.Rate)
	}

	corrected := obs.NewHistogram(1e-9)
	service := obs.NewHistogram(1e-9)
	perProfile := make(map[string]*obs.Histogram, len(o.Profiles))
	perProfileErr := make(map[string]*atomic.Uint64, len(o.Profiles))
	for _, p := range o.Profiles {
		perProfile[p.Client] = obs.NewHistogram(1e-9)
		perProfileErr[p.Client] = &atomic.Uint64{}
	}
	schedule := buildSchedule(o.Profiles, 128)
	pick := func(seq int) Profile { return o.Profiles[schedule[seq%len(schedule)]] }

	var intended, started, completed, errors, dropped atomic.Uint64
	record := func(p Profile, corr, svc time.Duration, err error) {
		if err != nil {
			errors.Add(1)
			perProfileErr[p.Client].Add(1)
			return
		}
		if corr < 0 {
			corr = 0
		}
		corrected.Observe(uint64(corr))
		service.Observe(uint64(svc))
		perProfile[p.Client].Observe(uint64(corr))
		completed.Add(1)
	}

	start := time.Now()
	deadline := start.Add(o.Duration)

	// Slice recorder: snapshot the corrected histogram (and per-profile)
	// at each slice boundary so warm-up can be trimmed retroactively.
	sliceDur := o.Duration / time.Duration(o.Slices)
	type boundary struct {
		at        time.Time
		completed uint64
		snap      *obs.HistogramSnapshot
		profSnaps map[string]*obs.HistogramSnapshot
		svcSnap   *obs.HistogramSnapshot
	}
	boundaries := make([]boundary, 0, o.Slices)
	sliceDone := make(chan struct{})
	go func() {
		defer close(sliceDone)
		for i := 1; i <= o.Slices; i++ {
			at := start.Add(time.Duration(i) * sliceDur)
			d := time.Until(at)
			if d > 0 {
				time.Sleep(d)
			}
			ps := make(map[string]*obs.HistogramSnapshot, len(perProfile))
			for name, h := range perProfile {
				ps[name] = h.Snapshot()
			}
			boundaries = append(boundaries, boundary{
				at:        time.Now(),
				completed: completed.Load(),
				snap:      corrected.Snapshot(),
				profSnaps: ps,
				svcSnap:   service.Snapshot(),
			})
		}
	}()

	var wg sync.WaitGroup
	switch o.Mode {
	case Closed:
		var seqCtr atomic.Uint64
		for w := 0; w < o.Concurrency; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					if !time.Now().Before(deadline) {
						return
					}
					seq := int(seqCtr.Add(1) - 1)
					p := pick(seq)
					intended.Add(1)
					started.Add(1)
					s0 := time.Now()
					err := t.Do(p, seq)
					lat := time.Since(s0)
					record(p, lat, lat, err)
				}
			}()
		}
	case Open:
		buf := int(o.Rate*o.Duration.Seconds())*2 + 1024
		arrivals := make(chan arrival, buf)
		rng := rand.New(rand.NewSource(o.Seed))
		interarrival := func() time.Duration {
			gap := 1.0 / o.Rate
			if o.Pacing == Poisson {
				gap = rng.ExpFloat64() / o.Rate
			}
			return time.Duration(gap * float64(time.Second))
		}
		// Generator: emits every arrival whose intended time has passed
		// (catch-up bursts preserve the schedule under coarse sleeps),
		// sleeps until the next one otherwise.
		go func() {
			defer close(arrivals)
			next := start
			seq := 0
			for {
				if next.After(deadline) {
					return
				}
				now := time.Now()
				if next.After(now) {
					time.Sleep(next.Sub(now))
					continue
				}
				intended.Add(1)
				a := arrival{intended: next, profile: pick(seq), seq: seq}
				select {
				case arrivals <- a:
				default:
					dropped.Add(1)
				}
				seq++
				next = next.Add(interarrival())
			}
		}()
		for w := 0; w < o.MaxInFlight; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for a := range arrivals {
					started.Add(1)
					s0 := time.Now()
					err := t.Do(a.profile, a.seq)
					end := time.Now()
					record(a.profile, end.Sub(a.intended), end.Sub(s0), err)
				}
			}()
		}
	}
	wg.Wait() // closed: deadline hit; open: generator closed + queue drained
	<-sliceDone
	end := time.Now()

	// Per-slice completion deltas drive steady-state detection. The
	// drain tail (open-loop completions after the last boundary) counts
	// toward the steady window via the final snapshot.
	finalB := boundary{
		at:        end,
		completed: completed.Load(),
		snap:      corrected.Snapshot(),
		svcSnap:   service.Snapshot(),
	}
	counts := make([]uint64, len(boundaries))
	var prev uint64
	for i, b := range boundaries {
		counts[i] = b.completed - prev
		prev = b.completed
	}
	k := steadyStart(counts, o.SliceTolerance)

	var warmB *boundary
	if k > 0 && k <= len(boundaries) {
		warmB = &boundaries[k-1]
	}
	var warmSnap, warmSvc *obs.HistogramSnapshot
	steadyFrom := start
	var steadyBase uint64
	if warmB != nil {
		warmSnap, warmSvc = warmB.snap, warmB.svcSnap
		steadyFrom = warmB.at
		steadyBase = warmB.completed
	}
	steady := finalB.snap.Delta(warmSnap)
	steadySvc := finalB.svcSnap.Delta(warmSvc)
	steadySec := end.Sub(steadyFrom).Seconds()
	if steadySec <= 0 {
		steadySec = o.Duration.Seconds()
	}

	res := &StepResult{
		Mode:           o.Mode.String(),
		TargetRate:     o.Rate,
		Concurrency:    o.Concurrency,
		DurationSec:    o.Duration.Seconds(),
		Intended:       intended.Load(),
		Started:        started.Load(),
		Completed:      completed.Load(),
		Errors:         errors.Load(),
		Dropped:        dropped.Load(),
		WarmupSlices:   k,
		TotalSlices:    o.Slices,
		SteadySec:      steadySec,
		Throughput:     float64(finalB.completed-steadyBase) / steadySec,
		OfferedRate:    float64(intended.Load()) / o.Duration.Seconds(),
		Latency:        quantilesOf(steady),
		ServiceLatency: quantilesOf(steadySvc),
		PerProfile:     map[string]*ProfileStats{},
	}
	if o.Mode == Open {
		res.Pacing = o.Pacing.String()
		if o.Rate > 0 {
			res.AchievedRatio = res.Throughput / o.Rate
		}
	} else {
		res.TargetRate = 0
	}
	for _, p := range o.Profiles {
		var ws *obs.HistogramSnapshot
		if warmB != nil {
			ws = warmB.profSnaps[p.Client]
		}
		res.PerProfile[p.Client] = &ProfileStats{
			Profile: p,
			Errors:  perProfileErr[p.Client].Load(),
			Latency: quantilesOf(perProfile[p.Client].Snapshot().Delta(ws)),
		}
	}
	for _, slo := range o.SLOs {
		res.SLOs = append(res.SLOs, slo.Evaluate(steady, steadySec))
	}
	return res, nil
}
