package load

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"time"

	"icicle/internal/obs"
)

// SLO is one declarative latency objective: "the q-quantile of
// (coordinated-omission corrected) latency stays under Bound".
type SLO struct {
	Quantile float64       // e.g. 0.99
	Bound    time.Duration // e.g. 50ms
	spec     string        // original text, for reporting
}

// sloRe matches "p99 < 50ms", "p99.9<=100ms", "P50 < 1.5s" — a quantile
// name, a comparator, and a Go duration.
var sloRe = regexp.MustCompile(`^[pP]([0-9]+(?:\.[0-9]+)?)\s*<=?\s*(\S+)$`)

// ParseSLO parses a declarative SLO spec like "p99<50ms" or
// "p99.9 < 100ms". The comparator is always treated as ≤ (an SLO bound
// is inclusive by convention).
func ParseSLO(spec string) (SLO, error) {
	m := sloRe.FindStringSubmatch(strings.TrimSpace(spec))
	if m == nil {
		return SLO{}, fmt.Errorf("load: bad SLO %q (want e.g. \"p99<50ms\")", spec)
	}
	pct, err := strconv.ParseFloat(m[1], 64)
	if err != nil || pct <= 0 || pct >= 100 {
		return SLO{}, fmt.Errorf("load: bad SLO quantile in %q (want 0 < p < 100)", spec)
	}
	bound, err := time.ParseDuration(m[2])
	if err != nil || bound <= 0 {
		return SLO{}, fmt.Errorf("load: bad SLO bound in %q: %v", spec, err)
	}
	return SLO{Quantile: pct / 100, Bound: bound, spec: spec}, nil
}

// ParseSLOs parses a comma-separated SLO list ("p99<50ms,p99.9<200ms").
func ParseSLOs(specs string) ([]SLO, error) {
	var out []SLO
	for _, s := range strings.Split(specs, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		slo, err := ParseSLO(s)
		if err != nil {
			return nil, err
		}
		out = append(out, slo)
	}
	return out, nil
}

// Spec returns the SLO in canonical text form.
func (s SLO) Spec() string {
	if s.spec != "" {
		return s.spec
	}
	pct := s.Quantile * 100
	return fmt.Sprintf("p%s<%s", strconv.FormatFloat(pct, 'f', -1, 64), s.Bound)
}

// SLOResult is one evaluated objective with its error-budget arithmetic:
// the budget fraction is the share of requests allowed over the bound
// (1−q); the violation fraction is the share actually over it; the burn
// rate is their ratio — burn 1.0 exactly exhausts the budget, 2.0 burns
// it twice as fast as allowed (the Google SRE multi-window framing).
type SLOResult struct {
	Spec              string  `json:"spec"`
	Quantile          float64 `json:"quantile"`
	BoundSec          float64 `json:"bound_sec"`
	ActualSec         float64 `json:"actual_sec"`
	Pass              bool    `json:"pass"`
	BudgetFraction    float64 `json:"budget_fraction"`
	ViolationFraction float64 `json:"violation_fraction"`
	BurnRate          float64 `json:"burn_rate"`
}

// Evaluate checks the objective against a latency snapshot covering
// windowSec seconds of steady-state traffic. The snapshot's values are
// nanoseconds (scale 1e-9), matching the load harness histograms.
func (s SLO) Evaluate(snap *obs.HistogramSnapshot, windowSec float64) SLOResult {
	actual := float64(snap.Quantile(s.Quantile)) * 1e-9
	res := SLOResult{
		Spec:           s.Spec(),
		Quantile:       s.Quantile,
		BoundSec:       s.Bound.Seconds(),
		ActualSec:      actual,
		Pass:           actual <= s.Bound.Seconds(),
		BudgetFraction: 1 - s.Quantile,
	}
	if snap.Count > 0 {
		res.ViolationFraction = float64(snap.CountAbove(uint64(s.Bound))) / float64(snap.Count)
	}
	if res.BudgetFraction > 0 {
		res.BurnRate = res.ViolationFraction / res.BudgetFraction
	}
	return res
}
