package load

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"icicle/internal/obs"
)

// sleepTarget is a synthetic service with fixed latency and optional
// serialization (capacity 1), used to provoke queueing.
type sleepTarget struct {
	d      time.Duration
	serial chan struct{} // when non-nil, capacity bounds true concurrency
	calls  atomic.Uint64
	fail   func(seq int) bool
}

func (t *sleepTarget) Do(_ Profile, seq int) error {
	t.calls.Add(1)
	if t.fail != nil && t.fail(seq) {
		return errors.New("synthetic failure")
	}
	if t.serial != nil {
		t.serial <- struct{}{}
		defer func() { <-t.serial }()
	}
	time.Sleep(t.d)
	return nil
}

func TestClosedLoopBasic(t *testing.T) {
	tgt := &sleepTarget{d: time.Millisecond}
	res, err := Run(tgt, Options{
		Mode:        Closed,
		Concurrency: 4,
		Duration:    300 * time.Millisecond,
		SLOs:        []SLO{{Quantile: 0.99, Bound: 100 * time.Millisecond}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 || res.Errors != 0 || res.Dropped != 0 {
		t.Fatalf("completed=%d errors=%d dropped=%d", res.Completed, res.Errors, res.Dropped)
	}
	// 4 workers × ~1ms per call ≈ 4000/s ideal; accept a loose lower bound.
	if res.Throughput < 500 {
		t.Fatalf("throughput %.1f/s too low for 4 workers at 1ms", res.Throughput)
	}
	q := res.Latency
	if !(q.P50 <= q.P90 && q.P90 <= q.P99 && q.P99 <= q.Max) {
		t.Fatalf("quantiles not monotone: %+v", q)
	}
	if q.P50 < 0.0005 {
		t.Fatalf("p50 %.6fs below the 1ms sleep floor", q.P50)
	}
	if len(res.SLOs) != 1 || !res.SLOs[0].Pass {
		t.Fatalf("SLO should pass at 1ms latency vs 100ms bound: %+v", res.SLOs)
	}
	if res.SLOs[0].BurnRate != 0 {
		t.Fatalf("burn rate should be 0 with no violations, got %f", res.SLOs[0].BurnRate)
	}
}

// TestOpenLoopCoordinatedOmission overloads a serialized (capacity-1)
// service: the corrected latency (from intended arrival) must blow up
// with queueing while the service latency stays near the service time —
// the entire point of the CO correction.
func TestOpenLoopCoordinatedOmission(t *testing.T) {
	tgt := &sleepTarget{d: 5 * time.Millisecond, serial: make(chan struct{}, 1)}
	res, err := Run(tgt, Options{
		Mode:        Open,
		Rate:        1000, // 5x the ~200/s capacity
		Pacing:      Uniform,
		Duration:    400 * time.Millisecond,
		MaxInFlight: 64,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped != 0 {
		t.Fatalf("dropped %d arrivals (buffer should absorb the backlog)", res.Dropped)
	}
	if res.Latency.P99 < 4*res.ServiceLatency.P99 {
		t.Fatalf("corrected p99 %.4fs should dwarf service p99 %.4fs under overload",
			res.Latency.P99, res.ServiceLatency.P99)
	}
	if res.Latency.P50 < res.ServiceLatency.P50 {
		t.Fatalf("corrected p50 %.4fs below service p50 %.4fs", res.Latency.P50, res.ServiceLatency.P50)
	}
}

func TestOpenLoopPoissonKeepsRate(t *testing.T) {
	tgt := &sleepTarget{d: 100 * time.Microsecond}
	res, err := Run(tgt, Options{
		Mode:        Open,
		Rate:        2000,
		Pacing:      Poisson,
		Duration:    400 * time.Millisecond,
		MaxInFlight: 128,
		Seed:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped != 0 {
		t.Fatalf("dropped %d", res.Dropped)
	}
	// Offered rate should track the target within 30% (timer coarseness +
	// Poisson variance over a short window).
	if res.OfferedRate < 0.7*2000 || res.OfferedRate > 1.3*2000 {
		t.Fatalf("offered rate %.1f/s far from 2000/s target", res.OfferedRate)
	}
}

func TestRunErrorsCounted(t *testing.T) {
	tgt := &sleepTarget{d: 100 * time.Microsecond, fail: func(seq int) bool { return seq%2 == 0 }}
	res, err := Run(tgt, Options{Mode: Closed, Concurrency: 2, Duration: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors == 0 {
		t.Fatal("expected synthetic failures to be counted")
	}
	if res.Completed == 0 {
		t.Fatal("expected some successes")
	}
}

func TestProfileSchedule(t *testing.T) {
	profiles := []Profile{
		{Client: "heavy", Share: 0.75},
		{Client: "light", Share: 0.25},
	}
	sched := buildSchedule(profiles, 128)
	counts := map[int]int{}
	for _, idx := range sched {
		counts[idx]++
	}
	if counts[0] != 96 || counts[1] != 32 {
		t.Fatalf("want 96/32 split, got %d/%d", counts[0], counts[1])
	}
	// Smoothness: no run of 8 consecutive identical picks for a 3:1 split.
	run := 1
	for i := 1; i < len(sched); i++ {
		if sched[i] == sched[i-1] {
			run++
			if run >= 8 {
				t.Fatalf("schedule bursty: run of %d at %d", run, i)
			}
		} else {
			run = 1
		}
	}
}

func TestPerProfileBreakdown(t *testing.T) {
	tgt := &sleepTarget{d: time.Millisecond}
	res, err := Run(tgt, Options{
		Mode:        Closed,
		Concurrency: 2,
		Duration:    200 * time.Millisecond,
		Profiles: []Profile{
			{Client: "a", Priority: 2, Share: 0.5},
			{Client: "b", Priority: 0, Share: 0.5},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerProfile) != 2 {
		t.Fatalf("want 2 profiles, got %d", len(res.PerProfile))
	}
	for name, ps := range res.PerProfile {
		if ps.Latency.Count == 0 {
			t.Fatalf("profile %s recorded nothing", name)
		}
	}
}

func TestSteadyStart(t *testing.T) {
	cases := []struct {
		counts []uint64
		want   int
	}{
		{[]uint64{100, 100, 100, 100, 100, 100}, 0},        // flat from the start
		{[]uint64{1, 10, 100, 100, 100, 100, 100, 100}, 2}, // two warm-up slices
		{[]uint64{0, 0, 0, 0, 0, 0}, 0},                    // nothing happened; trivially stable
		{[]uint64{5, 200, 5, 190, 4, 210}, 3},              // oscillating: fall back to midpoint
	}
	for i, c := range cases {
		if got := steadyStart(c.counts, 0.25); got != c.want {
			t.Errorf("case %d: steadyStart(%v) = %d, want %d", i, c.counts, got, c.want)
		}
	}
}

func TestSLOParse(t *testing.T) {
	good := map[string]struct {
		q     float64
		bound time.Duration
	}{
		"p99<50ms":      {0.99, 50 * time.Millisecond},
		"p99.9 < 100ms": {0.999, 100 * time.Millisecond},
		"P50 <= 1.5s":   {0.5, 1500 * time.Millisecond},
	}
	for spec, want := range good {
		slo, err := ParseSLO(spec)
		if err != nil {
			t.Fatalf("ParseSLO(%q): %v", spec, err)
		}
		if abs(slo.Quantile-want.q) > 1e-12 || slo.Bound != want.bound {
			t.Fatalf("ParseSLO(%q) = {%f %s}, want {%f %s}", spec, slo.Quantile, slo.Bound, want.q, want.bound)
		}
		if slo.Spec() != strings.TrimSpace(spec) {
			t.Fatalf("Spec() round-trip: %q != %q", slo.Spec(), spec)
		}
	}
	for _, bad := range []string{"", "99<50ms", "p0<1ms", "p100<1ms", "p99<", "p99<-5ms", "p99>50ms"} {
		if _, err := ParseSLO(bad); err == nil {
			t.Fatalf("ParseSLO(%q) should fail", bad)
		}
	}
	list, err := ParseSLOs("p99<50ms, p99.9<200ms")
	if err != nil || len(list) != 2 {
		t.Fatalf("ParseSLOs: %v %v", list, err)
	}
}

func TestSLOEvaluateBurnRate(t *testing.T) {
	h := obs.NewHistogram(1e-9)
	// 98 fast, 2 slow out of 100 → p99 lands in the slow mass; with a
	// 1% budget and 2% violations, the burn rate is 2.
	for i := 0; i < 98; i++ {
		h.Observe(uint64(time.Millisecond))
	}
	h.Observe(uint64(time.Second))
	h.Observe(uint64(time.Second))
	slo := SLO{Quantile: 0.99, Bound: 100 * time.Millisecond}
	res := slo.Evaluate(h.Snapshot(), 10)
	if res.Pass {
		t.Fatalf("p99 should exceed 100ms: actual %.3fs", res.ActualSec)
	}
	if abs(res.BudgetFraction-0.01) > 1e-9 {
		t.Fatalf("budget fraction %f", res.BudgetFraction)
	}
	if res.ViolationFraction < 0.019 || res.ViolationFraction > 0.021 {
		t.Fatalf("violation fraction %f, want ~0.02", res.ViolationFraction)
	}
	if res.BurnRate < 1.9 || res.BurnRate > 2.1 {
		t.Fatalf("burn rate %f, want ~2", res.BurnRate)
	}

	fast := obs.NewHistogram(1e-9)
	for i := 0; i < 100; i++ {
		fast.Observe(uint64(time.Millisecond))
	}
	if r := slo.Evaluate(fast.Snapshot(), 10); !r.Pass || r.BurnRate != 0 {
		t.Fatalf("all-fast histogram should pass with zero burn: %+v", r)
	}
}

func TestLadderWithRegistryScrape(t *testing.T) {
	reg := obs.NewRegistry()
	completed := reg.Counter("icicle_serve_jobs_completed_total", "test")
	hits := reg.Counter("icicle_serve_memo_hits_total", "test")
	qw := reg.Histogram("icicle_serve_queue_wait_seconds", "test", 1e-9)

	tgt := targetFunc(func(p Profile, seq int) error {
		completed.Inc()
		if seq%2 == 0 {
			hits.Inc()
		}
		qw.Observe(uint64(200 * time.Microsecond))
		time.Sleep(500 * time.Microsecond)
		return nil
	})
	rep, err := RunLadder(tgt, Options{
		Mode:     Closed,
		Duration: 100 * time.Millisecond,
		SLOs:     []SLO{{Quantile: 0.95, Bound: 250 * time.Millisecond}},
	}, []Step{{Concurrency: 1}, {Concurrency: 2}}, RegistryScraper(reg))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Steps) != 2 {
		t.Fatalf("want 2 steps, got %d", len(rep.Steps))
	}
	for i, s := range rep.Steps {
		if s.Server == nil {
			t.Fatalf("step %d: no server stats", i)
		}
		if s.Server.JobsCompleted == 0 {
			t.Fatalf("step %d: no completed delta", i)
		}
		if s.Server.HitRate < 0.4 || s.Server.HitRate > 0.6 {
			t.Fatalf("step %d: hit rate %.2f, want ~0.5", i, s.Server.HitRate)
		}
		if s.Server.QueueWaitCount == 0 || s.Server.QueueWaitP99 <= 0 {
			t.Fatalf("step %d: queue wait not scraped: %+v", i, s.Server)
		}
		if len(s.SLOs) != 1 {
			t.Fatalf("step %d: SLOs missing", i)
		}
	}
	// Second step's delta must cover only its own window: roughly the
	// same completed count per 100ms step at c=1 vs c=2 means the c=2
	// step should not include the c=1 step's counts (which would double it
	// beyond the per-step maximum possible).
	var txt strings.Builder
	rep.WriteText(&txt)
	out := txt.String()
	if !strings.Contains(out, "SLO") || !strings.Contains(out, "PASS") {
		t.Fatalf("text report missing SLO verdict:\n%s", out)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

type targetFunc func(p Profile, seq int) error

func (f targetFunc) Do(p Profile, seq int) error { return f(p, seq) }
