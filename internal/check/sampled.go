package check

import (
	"fmt"
	"math"

	"icicle/internal/boom"
	"icicle/internal/core"
	"icicle/internal/kernel"
	"icicle/internal/perf"
	"icicle/internal/rocket"
	"icicle/internal/sample"
)

// SampledDiff is one sampled-vs-full differential: the same kernel on the
// same core config, run once cycle-accurately end to end and once under
// the sampling policy, with per-category TMA share errors.
type SampledDiff struct {
	Core   string
	Kernel string
	Policy sample.Policy

	FullCycles uint64
	EstCycles  uint64
	FullInsts  uint64
	Insts      uint64 // sampled TotalInsts (architectural; must equal FullInsts)
	FullExit   uint64
	Exit       uint64

	Full    core.Breakdown
	Sampled core.Breakdown
	Report  *sample.Report

	// Err holds the absolute error in the four top-level category shares
	// (sampled − full): Retiring, BadSpec, Frontend, Backend.
	Err [4]float64
	// CycleErr is the relative cycle-count error |est−full|/full.
	CycleErr float64
}

// CategoryNames labels SampledDiff.Err.
var CategoryNames = [4]string{"Retiring", "BadSpec", "Frontend", "Backend"}

// MaxTopLevelErr returns the worst absolute top-level share error.
func (d SampledDiff) MaxTopLevelErr() float64 {
	worst := 0.0
	for _, e := range d.Err {
		if a := math.Abs(e); a > worst {
			worst = a
		}
	}
	return worst
}

// Check validates the invariants every sampled run must satisfy
// regardless of accuracy: exact architectural instruction and exit
// totals, and a halted program.
func (d SampledDiff) Check() error {
	if d.Insts != d.FullInsts {
		return fmt.Errorf("%s/%s: sampled retired %d insts, full %d — the architectural stream diverged",
			d.Core, d.Kernel, d.Insts, d.FullInsts)
	}
	if d.Exit != d.FullExit {
		return fmt.Errorf("%s/%s: sampled exit %#x, full %#x",
			d.Core, d.Kernel, d.Exit, d.FullExit)
	}
	if d.Report == nil || !d.Report.Halted {
		return fmt.Errorf("%s/%s: sampled run did not halt", d.Core, d.Kernel)
	}
	return nil
}

func (d SampledDiff) String() string {
	return fmt.Sprintf("%s/%s %s: cycles %d vs %d (%.2f%% err), max category err %.2fpp, coverage %.1f%%",
		d.Core, d.Kernel, d.Policy, d.EstCycles, d.FullCycles, 100*d.CycleErr,
		100*d.MaxTopLevelErr(), 100*d.Report.Coverage)
}

func diffFrom(coreName, kernelName string, p sample.Policy,
	fullCycles, fullInsts, fullExit uint64, full core.Breakdown,
	rep *sample.Report) SampledDiff {
	d := SampledDiff{
		Core: coreName, Kernel: kernelName, Policy: p,
		FullCycles: fullCycles, EstCycles: rep.EstCycles,
		FullInsts: fullInsts, Insts: rep.TotalInsts,
		FullExit: fullExit, Exit: rep.Exit,
		Full: full, Sampled: rep.Breakdown, Report: rep,
	}
	d.Err = [4]float64{
		rep.Breakdown.Retiring - full.Retiring,
		rep.Breakdown.BadSpec - full.BadSpec,
		rep.Breakdown.Frontend - full.Frontend,
		rep.Breakdown.Backend - full.Backend,
	}
	if fullCycles > 0 {
		d.CycleErr = math.Abs(float64(rep.EstCycles)-float64(fullCycles)) / float64(fullCycles)
	}
	return d
}

// CompareSampledRocket runs the kernel on Rocket both ways and returns
// the differential.
func CompareSampledRocket(cfg rocket.Config, k *kernel.Kernel, p sample.Policy) (SampledDiff, error) {
	full, fb, err := perf.RunRocket(cfg, k)
	if err != nil {
		return SampledDiff{}, fmt.Errorf("full rocket run: %w", err)
	}
	_, rep, _, err := perf.SampleRocket(cfg, k, p)
	if err != nil {
		return SampledDiff{}, fmt.Errorf("sampled rocket run: %w", err)
	}
	d := diffFrom("rocket", k.Name, p, full.Cycles, full.Insts, full.Exit, fb, rep)
	return d, d.Check()
}

// CompareSampledBoom runs the kernel on the BOOM config both ways and
// returns the differential.
func CompareSampledBoom(cfg boom.Config, k *kernel.Kernel, p sample.Policy) (SampledDiff, error) {
	full, fb, err := perf.RunBoom(cfg, k)
	if err != nil {
		return SampledDiff{}, fmt.Errorf("full boom run: %w", err)
	}
	_, rep, _, err := perf.SampleBoom(cfg, k, p)
	if err != nil {
		return SampledDiff{}, fmt.Errorf("sampled boom run: %w", err)
	}
	d := diffFrom(cfg.Name, k.Name, p, full.Cycles, full.Insts, full.Exit, fb, rep)
	return d, d.Check()
}
