package check

import (
	"testing"

	"icicle/internal/boom"
	"icicle/internal/kernel"
	"icicle/internal/rocket"
	"icicle/internal/sample"
)

// TestSampledAccuracyStrategies is the golden accuracy table for sampled
// simulation: one long program per generation strategy, run full-detail
// and sampled on both core models, asserting the top-level TMA category
// shares land within a per-strategy epsilon. The programs are stretched
// to ~450k instructions (~25 windows at this policy) so the assertion
// tests estimation quality, not small-sample luck; the epsilons are set
// from measured errors with margin (see BENCH_5.json for the defaults
// picture).
func TestSampledAccuracyStrategies(t *testing.T) {
	if testing.Short() {
		t.Skip("sampled accuracy table is not a -short test")
	}
	// Denser schedule than sample.Default(): these programs are shorter
	// than the suite kernels the default is tuned for, and the golden
	// table wants enough windows per program for the estimator to
	// converge rather than a maximal speedup.
	p := sample.Policy{Window: 2048, Period: 16384, Warmup: 8192}
	cases := []struct {
		strategy string
		iters    int // outer-loop trips, sized for ~450k dynamic insts
		seed     int64
		// category-share epsilon (absolute, 1.0 == 100%) per core
		epsRocket, epsLarge float64
	}{
		{"mixed", 8000, 7, 0.03, 0.02},
		{"alu-heavy", 7000, 7, 0.03, 0.02},
		{"memory-aliasing", 5500, 7, 0.03, 0.02},
		{"branch-dense", 16000, 7, 0.03, 0.03},
		// Loop-carried serial chains give Rocket's CPI the highest
		// window-to-window variance of the table; the bound is wider.
		{"loop-carried", 6000, 7, 0.05, 0.02},
	}
	large := boom.NewConfig(boom.Large)
	for _, tc := range cases {
		tc := tc
		t.Run(tc.strategy, func(t *testing.T) {
			s, err := kernel.StrategyByName(tc.strategy)
			if err != nil {
				t.Fatal(err)
			}
			s.MinIters, s.MaxIters = tc.iters, tc.iters+1
			k := &kernel.Kernel{Name: tc.strategy + "-long", Source: s.Program(tc.seed)}

			dr, err := CompareSampledRocket(rocket.DefaultConfig(), k, p)
			if err != nil {
				t.Fatalf("rocket: %v", err)
			}
			t.Logf("rocket: %s", dr)
			if got := dr.MaxTopLevelErr(); got > tc.epsRocket {
				t.Errorf("rocket max category error %.2fpp > %.2fpp budget",
					100*got, 100*tc.epsRocket)
			}

			db, err := CompareSampledBoom(large, k, p)
			if err != nil {
				t.Fatalf("%s: %v", large.Name, err)
			}
			t.Logf("%s: %s", large.Name, db)
			if got := db.MaxTopLevelErr(); got > tc.epsLarge {
				t.Errorf("%s max category error %.2fpp > %.2fpp budget",
					large.Name, 100*got, 100*tc.epsLarge)
			}
		})
	}
}

// TestSampledAccuracyDefaultPolicy is the headline acceptance check: on a
// long-running suite kernel at the default sampling parameters, every
// top-level TMA category share from the sampled run is within 2
// percentage points of the full-detail run, on both core models. The
// matching wall-clock claim lives in BenchmarkSampledVsFull.
func TestSampledAccuracyDefaultPolicy(t *testing.T) {
	k, err := kernel.ByName("towers")
	if err != nil {
		t.Fatal(err)
	}
	p := sample.Default()

	dr, err := CompareSampledRocket(rocket.DefaultConfig(), k, p)
	if err != nil {
		t.Fatalf("rocket: %v", err)
	}
	t.Logf("rocket: %s", dr)
	for i, e := range dr.Err {
		if e > 0.02 || e < -0.02 {
			t.Errorf("rocket %s share off by %.2fpp (limit 2pp)",
				CategoryNames[i], 100*e)
		}
	}
	if dr.CycleErr > 0.05 {
		t.Errorf("rocket cycle estimate off by %.2f%%", 100*dr.CycleErr)
	}

	large := boom.NewConfig(boom.Large)
	db, err := CompareSampledBoom(large, k, p)
	if err != nil {
		t.Fatalf("%s: %v", large.Name, err)
	}
	t.Logf("%s: %s", large.Name, db)
	for i, e := range db.Err {
		if e > 0.02 || e < -0.02 {
			t.Errorf("%s %s share off by %.2fpp (limit 2pp)",
				large.Name, CategoryNames[i], 100*e)
		}
	}
	if db.CycleErr > 0.05 {
		t.Errorf("%s cycle estimate off by %.2f%%", large.Name, 100*db.CycleErr)
	}
}
