package check_test

import (
	"strings"
	"testing"

	"icicle/internal/check"
)

func src(lines ...string) string { return strings.Join(lines, "\n") + "\n" }

// TestShrinkSynthetic drives ddmin with a pure-text predicate: only the
// two load-bearing lines must survive.
func TestShrinkSynthetic(t *testing.T) {
	in := src("a", "b", "c", "d", "e", "f", "g", "h", "i")
	keep := func(s string) bool {
		return strings.Contains(s, "c\n") && strings.Contains(s, "g\n")
	}
	got := check.Shrink(in, 4, keep)
	if got != src("c", "g") {
		t.Fatalf("shrunk to %q, want %q", got, src("c", "g"))
	}
}

// TestShrinkIrreducible keeps everything when no line can be deleted.
func TestShrinkIrreducible(t *testing.T) {
	in := src("a", "b", "c")
	keep := func(s string) bool { return s == in }
	if got := check.Shrink(in, 2, keep); got != in {
		t.Fatalf("shrunk to %q, want unchanged input", got)
	}
}

// TestShrinkDeterministic: the result must not depend on worker count,
// because the lowest-index interesting candidate always wins.
func TestShrinkDeterministic(t *testing.T) {
	in := src("x0", "x1", "x2", "x3", "x4", "x5", "x6", "x7", "x8", "x9", "x10", "x11")
	// Any candidate containing x3 and at least 3 lines is interesting —
	// plenty of ties for the workers to race on.
	keep := func(s string) bool {
		return strings.Contains(s, "x3\n") && strings.Count(s, "\n") >= 3
	}
	want := check.Shrink(in, 1, keep)
	for _, workers := range []int{2, 4, 8} {
		if got := check.Shrink(in, workers, keep); got != want {
			t.Fatalf("workers=%d shrunk to %q, workers=1 gave %q", workers, got, want)
		}
	}
}

// TestShrinkOneMinimal: the result of a successful shrink is 1-minimal —
// deleting any single remaining line makes the predicate fail.
func TestShrinkOneMinimal(t *testing.T) {
	in := src("a", "k1", "b", "c", "k2", "d", "k3", "e", "f")
	keep := func(s string) bool {
		return strings.Contains(s, "k1\n") && strings.Contains(s, "k2\n") &&
			strings.Contains(s, "k3\n")
	}
	got := check.Shrink(in, 3, keep)
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("shrunk to %d lines, want 3: %q", len(lines), got)
	}
	for i := range lines {
		cand := strings.Join(append(append([]string{}, lines[:i]...), lines[i+1:]...), "\n") + "\n"
		if keep(cand) {
			t.Fatalf("not 1-minimal: line %q is deletable", lines[i])
		}
	}
}
