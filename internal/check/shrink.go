package check

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"icicle/internal/asm"
	"icicle/internal/isa"
	"icicle/internal/sim"
)

// Shrink minimizes a failing program with delta debugging (ddmin) over
// source lines: it repeatedly deletes line chunks, keeping any candidate
// for which keep still returns true, until no single line can be removed.
// Candidates at each granularity are evaluated in parallel through the
// internal/sim worker discipline; the lowest-index interesting candidate
// wins, so the result is deterministic regardless of scheduling.
//
// keep must be deterministic and must return true for src itself.
// Candidates that no longer assemble or no longer terminate simply make
// keep return false — the shrinker treats them as uninteresting, so
// labels, loop counters, and addressing scaffolding stay exactly as
// coherent as the predicate demands.
func Shrink(src string, workers int, keep func(string) bool) string {
	lines := strings.Split(strings.TrimRight(src, "\n"), "\n")

	n := 2 // granularity: number of chunks the program is split into
	for len(lines) >= 2 {
		chunk := (len(lines) + n - 1) / n
		starts := make([]int, 0, n)
		for s := 0; s < len(lines); s += chunk {
			starts = append(starts, s)
		}
		// Try deleting each chunk, all candidates in parallel.
		kept, _ := sim.Map(workers, starts, func(_ int, s int) (bool, error) {
			return keep(joinWithout(lines, s, chunk)), nil
		})
		progressed := false
		for i, ok := range kept {
			if ok {
				lines = cutLines(lines, starts[i], chunk)
				n = max(n-1, 2)
				progressed = true
				break
			}
		}
		if progressed {
			continue
		}
		if n >= len(lines) {
			break // single-line granularity exhausted: 1-minimal
		}
		n = min(len(lines), 2*n)
	}
	return strings.Join(lines, "\n") + "\n"
}

// joinWithout renders lines with [s, s+chunk) removed.
func joinWithout(lines []string, s, chunk int) string {
	e := min(s+chunk, len(lines))
	var sb strings.Builder
	for i, l := range lines {
		if i >= s && i < e {
			continue
		}
		sb.WriteString(l)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// cutLines removes [s, s+chunk) into a fresh slice.
func cutLines(lines []string, s, chunk int) []string {
	e := min(s+chunk, len(lines))
	out := make([]string, 0, len(lines)-(e-s))
	out = append(out, lines[:s]...)
	return append(out, lines[e:]...)
}

// ShrinkFailure minimizes a program that trips the engine's oracle. The
// predicate demands the same invariant class as the original report's
// first failure, so shrinking cannot drift onto an unrelated (weaker)
// property. Candidate evaluation runs the oracle serially per candidate
// while the ddmin loop fans candidates out across the engine's workers.
//
// It returns the minimized source and the surviving failure. An error
// means src does not actually fail the oracle (or is invalid).
func (e *Engine) ShrinkFailure(src string) (string, Failure, error) {
	rep, err := e.CheckSource(src)
	if err != nil {
		return "", Failure{}, err
	}
	if !rep.Failed() {
		return "", Failure{}, errors.New("check: program does not fail the oracle")
	}
	target := rep.FirstFailure().Invariant

	// The predicate engine runs each candidate serially (the ddmin loop
	// provides the parallelism) and only pays for the metamorphic
	// harnesses the target failure needs.
	popts := []Option{WithWorkers(1), WithMaxInsts(e.maxInsts), WithModels(e.models...)}
	if target != InvDeterminism {
		popts = append(popts, WithoutDeterminism())
	}
	if target != InvTrace && target != InvPMU {
		popts = append(popts, WithoutTrace())
	}
	pe := New(popts...)

	keep := func(s string) bool {
		r, err := pe.CheckSource(s)
		if err != nil {
			return false
		}
		for _, f := range r.Failures {
			if f.Invariant == target {
				return true
			}
		}
		return false
	}

	shrunk := Shrink(src, e.workers, keep)
	final, err := pe.CheckSource(shrunk)
	if err != nil {
		return "", Failure{}, fmt.Errorf("check: shrunk program became invalid: %w", err)
	}
	for _, f := range final.Failures {
		if f.Invariant == target {
			return shrunk, f, nil
		}
	}
	return "", Failure{}, errors.New("check: shrunk program lost the failure (non-deterministic predicate?)")
}

// InstructionCount returns the number of assembled instructions in src
// (tests use it to assert shrunk repros are small).
func InstructionCount(src string) (int, error) {
	prog, err := asm.Assemble(src)
	if err != nil {
		return 0, err
	}
	return prog.TextSize / isa.InstBytes, nil
}

// WriteCorpus persists a shrunk failing program under dir (conventionally
// testdata/corpus), named by failure class and content hash so repeated
// shrinks of the same bug collapse onto one file. The header records the
// failure; corpus files are replayed by the corpus regression test, so the
// repro keeps guarding the code after the bug is fixed.
func WriteCorpus(dir, src string, f Failure) (string, error) {
	sum := sha256.Sum256([]byte(src))
	name := fmt.Sprintf("shrunk-%s-%x.s", f.Invariant, sum[:6])
	header := fmt.Sprintf("# shrunk repro: %s\n# replayed by: go test ./internal/check -run Corpus\n", f)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(header+src), 0o644); err != nil {
		return "", err
	}
	return path, nil
}
