package check

import (
	"bytes"
	"fmt"

	"icicle/internal/asm"
	"icicle/internal/boom"
	"icicle/internal/core"
	"icicle/internal/perf"
	"icicle/internal/pmu"
	"icicle/internal/rocket"
	"icicle/internal/trace"
)

// RunOptions parameterizes one model execution.
type RunOptions struct {
	// MaxCycles is the timing-model cycle budget for this program
	// (derived from the functional reference's instruction count).
	MaxCycles uint64
	// Determinism also runs the program a second time on the same core
	// after Reset and records the outcome in Outcome.Replay.
	Determinism bool
	// Trace attaches the trace bridge and a CSR-programmed PMU plan, and
	// records their independent event totals for the consistency
	// invariant.
	Trace bool
	// SkipDifferential re-runs the program on the same core after Reset
	// with the event-driven stall skip toggled to the opposite of what the
	// first run effectively used, and records the outcome in
	// Outcome.SkipDiff. A traced first run carries a cycle hook, which
	// forces per-cycle stepping, so its differential replay skips; an
	// untraced first run skips (the default), so its replay steps. Either
	// way the pair pins skip-vs-step bit identity.
	SkipDifferential bool
}

// Outcome is one model execution's observable result.
type Outcome struct {
	Cycles uint64
	Insts  uint64
	Exit   uint64
	Regs   [32]uint64
	// Tally holds the model's dense (source-assertion) event totals.
	Tally map[string]uint64
	// Breakdown is the TMA evaluation of the run's counts.
	Breakdown    core.Breakdown
	HasBreakdown bool

	// Replay is the Reset-reuse re-run (nil unless RunOptions.Determinism).
	Replay *Outcome

	// SkipDiff is the stall-skip-toggled re-run (nil unless
	// RunOptions.SkipDifferential).
	SkipDiff *Outcome

	// TracedEvents names the events cross-checked below (nil unless
	// RunOptions.Trace).
	TracedEvents []string
	// TraceTotals are lane-summed totals decoded from the trace stream.
	TraceTotals map[string]uint64
	// PMUReads are the CSR-visible counter values, one per traced event.
	PMUReads map[string]uint64
}

// Model is one execution backend under differential test. DefaultModels
// returns the production set; tests inject faulty models through
// WithModels to prove the oracle catches planted bugs.
type Model struct {
	Name string
	Run  func(prog *asm.Program, opt RunOptions) (Outcome, error)
}

// DefaultModels returns the full oracle set: Rocket plus all five Table IV
// BOOM sizes.
func DefaultModels() []Model {
	models := []Model{RocketModel()}
	for _, s := range boom.Sizes {
		models = append(models, BoomModel(s))
	}
	return models
}

// rocketTraceEvents is the bundle cross-checked between dense tallies,
// PMU counters, and the decoded trace on Rocket runs.
var rocketTraceEvents = []string{
	rocket.EvInstRet,
	rocket.EvInstIssued,
	rocket.EvFetchBubbles,
	rocket.EvRecovering,
	rocket.EvFlush,
	rocket.EvBrMispredict,
	rocket.EvICacheBlocked,
	rocket.EvDCacheBlocked,
}

// boomTraceEvents is the BOOM equivalent (per-lane TMA events included, so
// the cross-check also covers multi-source packing).
var boomTraceEvents = []string{
	boom.EvInstRet,
	boom.EvUopsIssued,
	boom.EvUopsRetired,
	boom.EvFetchBubbles,
	boom.EvRecovering,
	boom.EvFlush,
	boom.EvBrMispredict,
	boom.EvICacheBlocked,
	boom.EvDCacheBlocked,
}

// RocketModel returns the Rocket timing model at the paper configuration.
func RocketModel() Model {
	return Model{
		Name: "rocket",
		Run: func(prog *asm.Program, opt RunOptions) (Outcome, error) {
			cfg := rocket.DefaultConfig()
			if opt.MaxCycles > 0 {
				cfg.MaxCycles = opt.MaxCycles
			}
			c := rocket.New(cfg, prog)
			out, err := rocketOnce(c, opt)
			if err != nil {
				return out, err
			}
			if opt.Determinism {
				c.Reset(prog)
				replay, err := rocketOnce(c, opt)
				if err != nil {
					return out, fmt.Errorf("replay: %w", err)
				}
				out.Replay = &replay
			}
			if opt.SkipDifferential {
				c.Reset(prog)
				c.SetStallSkip(opt.Trace)
				sd, err := rocketOnce(c, RunOptions{MaxCycles: opt.MaxCycles})
				if err != nil {
					return out, fmt.Errorf("skip differential: %w", err)
				}
				out.SkipDiff = &sd
			}
			return out, nil
		},
	}
}

func rocketOnce(c *rocket.Core, opt RunOptions) (Outcome, error) {
	var tc *traceCapture
	if opt.Trace {
		var err error
		tc, err = attachTrace(rocket.Events, c.PMU, rocketTraceEvents,
			func(h func(uint64, pmu.Sample)) { c.SetCycleHook(h) })
		if err != nil {
			return Outcome{}, err
		}
	}
	res, err := c.Run()
	if err != nil {
		return Outcome{}, err
	}
	out := Outcome{
		Cycles: res.Cycles,
		Insts:  res.Insts,
		Exit:   res.Exit,
		Regs:   c.CPU.X,
		Tally:  res.Tally,
	}
	if b, err := core.Evaluate(core.DefaultConfig(1, 1), perf.RocketCounts(res)); err == nil {
		out.Breakdown, out.HasBreakdown = b, true
	}
	if tc != nil {
		if err := tc.finish(&out); err != nil {
			return out, err
		}
	}
	return out, nil
}

// BoomModel returns the BOOM timing model at one of the Table IV sizes.
func BoomModel(size boom.Size) Model {
	name := size.String()
	return Model{
		Name: name,
		Run: func(prog *asm.Program, opt RunOptions) (Outcome, error) {
			cfg := boom.NewConfig(size)
			if opt.MaxCycles > 0 {
				cfg.MaxCycles = opt.MaxCycles
			}
			c, err := boom.New(cfg, prog)
			if err != nil {
				return Outcome{}, err
			}
			out, err := boomOnce(c, opt)
			if err != nil {
				return out, err
			}
			if opt.Determinism {
				c.Reset(prog)
				replay, err := boomOnce(c, opt)
				if err != nil {
					return out, fmt.Errorf("replay: %w", err)
				}
				out.Replay = &replay
			}
			if opt.SkipDifferential {
				c.Reset(prog)
				c.SetStallSkip(opt.Trace)
				sd, err := boomOnce(c, RunOptions{MaxCycles: opt.MaxCycles})
				if err != nil {
					return out, fmt.Errorf("skip differential: %w", err)
				}
				out.SkipDiff = &sd
			}
			return out, nil
		},
	}
}

func boomOnce(c *boom.Core, opt RunOptions) (Outcome, error) {
	var tc *traceCapture
	if opt.Trace {
		var err error
		tc, err = attachTrace(c.Space, c.PMU, boomTraceEvents,
			func(h func(uint64, pmu.Sample)) { c.SetCycleHook(h) })
		if err != nil {
			return Outcome{}, err
		}
	}
	res, err := c.Run()
	if err != nil {
		return Outcome{}, err
	}
	out := Outcome{
		Cycles: res.Cycles,
		Insts:  res.Insts,
		Exit:   res.Exit,
		Regs:   c.CPU.X,
		Tally:  res.Tally,
	}
	wc, wi := c.Cfg.DecodeWidth, c.Cfg.IssueWidth
	if b, err := core.Evaluate(core.DefaultConfig(wc, wi), perf.BoomCounts(res)); err == nil {
		out.Breakdown, out.HasBreakdown = b, true
	}
	if tc != nil {
		if err := tc.finish(&out); err != nil {
			return out, err
		}
	}
	return out, nil
}

// traceCapture wires the §IV-B and §IV-C observation paths to one run:
// the PMU counter file programmed through its CSR interface (one counter
// per event, as perf.TMAPlan would), and the trace bridge streaming the
// same events per cycle into an in-memory buffer.
type traceCapture struct {
	events []string
	buf    bytes.Buffer
	w      *trace.Writer
	pmu    *pmu.PMU
}

func attachTrace(space *pmu.Space, dev *pmu.PMU, events []string,
	setHook func(func(uint64, pmu.Sample))) (*traceCapture, error) {
	bundle, err := trace.NewBundle(space, events...)
	if err != nil {
		return nil, fmt.Errorf("check: trace bundle: %w", err)
	}
	tc := &traceCapture{events: events, pmu: dev}
	tc.w, err = trace.NewWriter(&tc.buf, bundle)
	if err != nil {
		return nil, fmt.Errorf("check: trace writer: %w", err)
	}
	// Program the counter file through the same four-step CSR sequence
	// the hardware harness uses (§IV-D): selector writes via mhpmevent,
	// counter clears, then the inhibit-clear that starts counting.
	for i, ev := range events {
		idx, err := space.Index(ev)
		if err != nil {
			return nil, err
		}
		e := space.Events[idx]
		sel := pmu.Selector{Set: e.Set, Mask: 1 << uint(e.Bit)}
		dev.WriteCSR(pmu.CSRMHPMEvent3+uint16(i), sel.Encode())
		dev.WriteCSR(pmu.CSRMHPMCounter3+uint16(i), 0)
	}
	dev.WriteCSR(pmu.CSRMCountInhibit, 0)
	setHook(tc.w.WriteCycle)
	return tc, nil
}

// finish flushes and decodes the trace, reads back the counters, and
// records both in the outcome.
func (t *traceCapture) finish(out *Outcome) error {
	if err := t.w.Flush(); err != nil {
		return fmt.Errorf("check: trace flush: %w", err)
	}
	rd, err := trace.NewReader(&t.buf)
	if err != nil {
		return fmt.Errorf("check: trace reader: %w", err)
	}
	an, err := trace.NewAnalyzer(rd)
	if err != nil {
		return fmt.Errorf("check: trace analyzer: %w", err)
	}
	out.TracedEvents = t.events
	out.TraceTotals = an.Totals()
	out.PMUReads = make(map[string]uint64, len(t.events))
	for i, ev := range t.events {
		out.PMUReads[ev] = t.pmu.ReadCSR(pmu.CSRMHPMCounter3 + uint16(i))
	}
	return nil
}
