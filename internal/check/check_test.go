package check_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"icicle/internal/asm"
	"icicle/internal/boom"
	"icicle/internal/check"
	"icicle/internal/kernel"
)

// TestDifferentialStrategies runs every generation profile through the
// full oracle: functional reference, Rocket, and all five BOOM sizes per
// seed, with the determinism and counter-vs-trace harnesses attached. On
// a failure the program is shrunk and the repro persisted under
// testdata/corpus so the exact failing sequence survives the test run.
func TestDifferentialStrategies(t *testing.T) {
	seedsPer := 3
	if testing.Short() {
		seedsPer = 1
	}
	eng := check.New()
	for _, strat := range kernel.Strategies {
		strat := strat
		t.Run(strat.Name, func(t *testing.T) {
			for seed := int64(0); seed < int64(seedsPer); seed++ {
				src := strat.Program(seed)
				rep, err := eng.CheckSource(src)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if rep.Failed() {
					fatalWithRepro(t, eng, src, rep)
				}
			}
		})
	}
}

// fatalWithRepro shrinks a failing program, writes the repro to
// testdata/corpus, and fails the test pointing at it.
func fatalWithRepro(t *testing.T, eng *check.Engine, src string, rep *check.Report) {
	t.Helper()
	shrunk, f, err := eng.ShrinkFailure(src)
	if err != nil {
		t.Fatalf("%s\n(shrink did not converge: %v)", rep, err)
	}
	path, err := check.WriteCorpus(filepath.Join("testdata", "corpus"), shrunk, f)
	if err != nil {
		t.Fatalf("%s\n(could not write repro: %v)", rep, err)
	}
	n, _ := check.InstructionCount(shrunk)
	t.Fatalf("%s\nshrunk to %d instructions; repro written to %s", rep, n, path)
}

// TestCorpus replays every corpus program — hand-written seeds plus any
// shrunk repro a previous failure persisted — through the full oracle.
// These are regression tests: a corpus file that fails again means a
// previously-fixed bug is back.
func TestCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "corpus", "*.s"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no corpus files under testdata/corpus")
	}
	eng := check.New()
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := eng.CheckSource(string(src))
			if err != nil {
				t.Fatal(err)
			}
			if rep.Failed() {
				t.Fatalf("corpus regression:\n%s", rep)
			}
		})
	}
}

// faultyModel wraps a real model and corrupts one architectural register
// in its reported outcome — a stand-in for a timing-model bookkeeping bug
// (e.g. a squashed instruction whose writeback is not undone).
func faultyModel() check.Model {
	inner := check.BoomModel(boom.Small)
	return check.Model{
		Name: "boom-small-faulty",
		Run: func(prog *asm.Program, opt check.RunOptions) (check.Outcome, error) {
			out, err := inner.Run(prog, opt)
			out.Regs[10] ^= 1 // flip a0 bit 0
			return out, err
		},
	}
}

// TestInjectedFaultCaughtAndShrunk proves the oracle end to end: a model
// with a planted architectural-state bug is caught by the differential
// oracle, the failing program shrinks to a tiny repro, and the repro is
// persisted in corpus format.
func TestInjectedFaultCaughtAndShrunk(t *testing.T) {
	eng := check.New(
		check.WithModels(check.RocketModel(), faultyModel()),
		check.WithoutDeterminism(),
		check.WithoutTrace(),
	)
	src := kernel.Mixed.Program(7)
	rep, err := eng.CheckSource(src)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() {
		t.Fatal("planted bug not caught by the oracle")
	}
	f := rep.FirstFailure()
	if f.Invariant != check.InvArchState && f.Invariant != check.InvExit {
		t.Fatalf("planted bug classified as %q, want arch-state or exit", f.Invariant)
	}

	shrunk, sf, err := eng.ShrinkFailure(src)
	if err != nil {
		t.Fatalf("shrink: %v", err)
	}
	if sf.Model != "boom-small-faulty" {
		t.Fatalf("shrunk failure blames %q, want the faulty model", sf.Model)
	}
	n, err := check.InstructionCount(shrunk)
	if err != nil {
		t.Fatalf("shrunk program does not assemble: %v", err)
	}
	if n > 16 {
		t.Fatalf("shrunk repro has %d instructions, want <= 16:\n%s", n, shrunk)
	}

	dir := t.TempDir()
	path, err := check.WriteCorpus(dir, shrunk, sf)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "# shrunk repro: boom-small-faulty/") {
		t.Fatalf("corpus file missing failure header:\n%s", data)
	}
	if !strings.HasSuffix(string(data), shrunk) {
		t.Fatal("corpus file does not end with the shrunk program")
	}
}

// TestSkipDifferentialCatchesDivergence proves the skip-differential
// invariant is not vacuous: a model whose skip-toggled replay disagrees
// with the fresh run — a stand-in for a quiescence-predicate bug that
// jumps past a wake-up event — is flagged as InvSkipDiff.
func TestSkipDifferentialCatchesDivergence(t *testing.T) {
	inner := check.RocketModel()
	faulty := check.Model{
		Name: "rocket-skip-faulty",
		Run: func(prog *asm.Program, opt check.RunOptions) (check.Outcome, error) {
			out, err := inner.Run(prog, opt)
			if out.SkipDiff != nil {
				out.SkipDiff.Cycles += 3 // as if a skip overshot a refill
			}
			return out, err
		},
	}
	eng := check.New(
		check.WithModels(faulty),
		check.WithoutDeterminism(),
		check.WithoutTrace(),
	)
	rep, err := eng.CheckSource(kernel.Mixed.Program(3))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() {
		t.Fatal("planted skip divergence not caught")
	}
	if f := rep.FirstFailure(); f.Invariant != check.InvSkipDiff {
		t.Fatalf("planted skip divergence classified as %q, want %q", f.Invariant, check.InvSkipDiff)
	}
}

// TestReportString pins the two Report renderings the test-failure UX
// depends on.
func TestReportString(t *testing.T) {
	eng := check.New(check.WithBoomSizes(boom.Small), check.WithoutTrace(), check.WithoutDeterminism())
	rep, err := eng.CheckSource("\tli a0, 42\n\tecall\n")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("trivial program failed:\n%s", rep)
	}
	if !strings.Contains(rep.String(), "check: ok") {
		t.Fatalf("passing report renders as %q", rep.String())
	}
	if rep.Ref.Exit != 42 {
		t.Fatalf("ref exit = %d, want 42", rep.Ref.Exit)
	}
}
