package check

import (
	"fmt"
	"math"
)

// Invariant names, used to classify failures and to keep the shrinker
// anchored to the original failure class.
const (
	// InvRun: the timing model failed to run a program the functional
	// reference completed (cycle-budget livelock, internal error).
	InvRun = "run"
	// InvExit: exit checksum differs from the functional reference.
	InvExit = "exit"
	// InvInstRet: retired-instruction count differs from the reference.
	InvInstRet = "instret"
	// InvArchState: final integer register file differs from the reference.
	InvArchState = "arch-state"
	// InvTally: a model's event tallies disagree with its own
	// architectural result (instructions-retired vs Insts, cycles vs
	// Cycles).
	InvTally = "tally"
	// InvTMASum: top-level TMA classes do not sum to 1.
	InvTMASum = "tma-sum"
	// InvTMARange: a top-level TMA class left [0, 1].
	InvTMARange = "tma-range"
	// InvDeterminism: a Reset-reused core diverged from the fresh run.
	InvDeterminism = "determinism"
	// InvTrace: decoded trace totals disagree with the dense tallies.
	InvTrace = "trace"
	// InvPMU: CSR counter reads disagree with the dense tallies.
	InvPMU = "pmu"
	// InvSkipDiff: the stall-skip-toggled re-run diverged from the first
	// run (the event-driven cycle loop is not bit-identical to stepping).
	InvSkipDiff = "skip-differential"
)

// tmaTol absorbs float summation noise in slot fractions.
const tmaTol = 1e-9

// Failure is one tripped invariant.
type Failure struct {
	Model     string
	Invariant string
	Detail    string
}

func (f Failure) String() string {
	return fmt.Sprintf("%s/%s: %s", f.Model, f.Invariant, f.Detail)
}

// ModelRun pairs a model with its outcome (or run error).
type ModelRun struct {
	Name string
	Outcome
	Err error
}

// evaluate applies every invariant to every model run.
func evaluate(ref Ref, runs []ModelRun) []Failure {
	var fails []Failure
	add := func(model, inv, format string, args ...any) {
		fails = append(fails, Failure{Model: model, Invariant: inv,
			Detail: fmt.Sprintf(format, args...)})
	}

	for i := range runs {
		r := &runs[i]
		if r.Err != nil {
			add(r.Name, InvRun, "%v", r.Err)
			continue
		}

		// Differential oracle vs the functional reference.
		if r.Exit != ref.Exit {
			add(r.Name, InvExit, "exit %#x != functional %#x", r.Exit, ref.Exit)
		}
		if r.Insts != ref.Insts {
			add(r.Name, InvInstRet, "retired %d != functional %d", r.Insts, ref.Insts)
		}
		if r.Regs != ref.Regs {
			for x := range r.Regs {
				if r.Regs[x] != ref.Regs[x] {
					add(r.Name, InvArchState, "x%d = %#x != functional %#x",
						x, r.Regs[x], ref.Regs[x])
					break
				}
			}
		}

		// Tally self-consistency: the dense event totals must agree with
		// the run's own architectural counts.
		if got := r.Tally["instructions-retired"]; got != r.Insts {
			add(r.Name, InvTally, "instructions-retired tally %d != retired %d", got, r.Insts)
		}
		if got := r.Tally["cycles"]; got != r.Cycles {
			add(r.Name, InvTally, "cycles tally %d != cycles %d", got, r.Cycles)
		}

		// Metamorphic: TMA slot conservation.
		if r.HasBreakdown {
			b := r.Breakdown
			if s := b.TopLevelSum(); math.Abs(s-1) > tmaTol {
				add(r.Name, InvTMASum, "top-level sum %.12f != 1", s)
			}
			for _, c := range []struct {
				n string
				v float64
			}{
				{"retiring", b.Retiring}, {"bad-speculation", b.BadSpec},
				{"frontend", b.Frontend}, {"backend", b.Backend},
			} {
				if c.v < -tmaTol || c.v > 1+tmaTol {
					add(r.Name, InvTMARange, "%s = %.12f outside [0,1]", c.n, c.v)
				}
			}
		}

		// Metamorphic: Reset-reuse determinism.
		if r.Replay != nil {
			checkReplay(add, r.Name, &r.Outcome, r.Replay)
		}

		// Metamorphic: skip-vs-step equivalence. The stall-skip-toggled
		// re-run observes the same program through the other cycle loop, so
		// every architectural and counted quantity must match exactly.
		if r.SkipDiff != nil {
			checkPair(add, r.Name, InvSkipDiff, "skip-toggled", &r.Outcome, r.SkipDiff)
		}

		// Metamorphic: counter-vs-trace consistency. Both observation
		// paths watch the same per-cycle source assertions the dense
		// tallies sum, so all three totals must be equal.
		for _, ev := range r.TracedEvents {
			want := r.Tally[ev]
			if got := r.TraceTotals[ev]; got != want {
				add(r.Name, InvTrace, "%s: trace total %d != tally %d", ev, got, want)
			}
			if got := r.PMUReads[ev]; got != want {
				add(r.Name, InvPMU, "%s: counter read %d != tally %d", ev, got, want)
			}
		}
	}
	return fails
}

// checkReplay compares a Reset-reused core's re-run against the fresh run.
func checkReplay(add func(model, inv, format string, args ...any),
	name string, fresh, replay *Outcome) {
	checkPair(add, name, InvDeterminism, "replay", fresh, replay)
}

// checkPair demands two outcomes of the same program on the same model be
// identical in every architectural and counted quantity; label names the
// second run in failure details.
func checkPair(add func(model, inv, format string, args ...any),
	name, inv, label string, fresh, other *Outcome) {
	if other.Cycles != fresh.Cycles {
		add(name, inv, "%s cycles %d != fresh %d", label, other.Cycles, fresh.Cycles)
	}
	if other.Insts != fresh.Insts {
		add(name, inv, "%s retired %d != fresh %d", label, other.Insts, fresh.Insts)
	}
	if other.Exit != fresh.Exit {
		add(name, inv, "%s exit %#x != fresh %#x", label, other.Exit, fresh.Exit)
	}
	if other.Regs != fresh.Regs {
		add(name, inv, "%s register file differs from fresh run", label)
	}
	for ev, want := range fresh.Tally {
		if got := other.Tally[ev]; got != want {
			add(name, inv, "%s tally %s = %d != fresh %d", label, ev, got, want)
		}
	}
}
