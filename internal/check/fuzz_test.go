package check_test

import (
	"strings"
	"testing"

	"icicle/internal/asm"
	"icicle/internal/boom"
	"icicle/internal/check"
	"icicle/internal/isa"
	"icicle/internal/kernel"
	"icicle/internal/mem"
)

// FuzzAssemble throws arbitrary source at the assembler: it must either
// reject the input or produce a program whose text disassembles slot for
// slot — never panic.
func FuzzAssemble(f *testing.F) {
	f.Add("\tli   a0, 42\n\tecall\n")
	f.Add("loop:\n\taddi a1, a1, -1\n\tbnez a1, loop\n\tecall\n")
	f.Add("\tamoadd.d a0, a1, (s0)\n\tfence.i\n")
	f.Add(kernel.Mixed.Program(1))
	f.Add(kernel.MemoryAliasing.Program(1))
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := asm.Assemble(src)
		if err != nil {
			return
		}
		insts := prog.Disassemble()
		if len(insts)*isa.InstBytes != prog.TextSize {
			t.Fatalf("disassembled %d insts from %d text bytes", len(insts), prog.TextSize)
		}
	})
}

// FuzzDecodeEncodeRoundtrip checks the decoder/encoder fixpoint: any word
// that decodes to a legal instruction must re-encode successfully, and the
// canonical encoding must decode back to the identical Inst. (Decode is
// deliberately lenient about don't-care bits, so Encode(Decode(w)) == w
// does not hold; the fixpoint does.)
func FuzzDecodeEncodeRoundtrip(f *testing.F) {
	f.Add(uint32(0x00000013)) // addi x0, x0, 0
	f.Add(uint32(0x00000073)) // ecall
	f.Add(uint32(0x40b50533)) // sub a0, a0, a1
	f.Add(uint32(0xfe0718e3)) // bnez a4, -16
	f.Add(uint32(0x0605b52f)) // amoadd.d a0, zero-ish AMO pattern
	f.Fuzz(func(t *testing.T, word uint32) {
		in := isa.Decode(word)
		if in.Op == isa.ILLEGAL {
			return
		}
		canon, err := isa.Encode(in)
		if err != nil {
			t.Fatalf("%08x decodes to %v but does not encode: %v", word, in, err)
		}
		if got := isa.Decode(canon); got != in {
			t.Fatalf("%08x: decode %v, re-encode %08x, re-decode %v", word, in, canon, got)
		}
	})
}

// FuzzDifferential feeds mutated programs through a reduced oracle (Rocket
// plus the smallest and largest BOOM) with all metamorphic harnesses on.
// Inputs that do not assemble or do not terminate within the budget are
// uninteresting; anything that runs must satisfy every invariant.
func FuzzDifferential(f *testing.F) {
	f.Add("\tli   a0, 7\n\tecall\n")
	f.Add("\tli   s11, 9\nr:\n\taddi a1, a1, 5\n\tmul  a2, a1, s11\n\taddi s11, s11, -1\n\tbnez s11, r\n\txor  a0, a1, a2\n\tecall\n")
	f.Add("\tli   s0, 4194304\n\tli   t0, 77\n\tsd   t0, 0(s0)\n\tlbu  a1, 1(s0)\n\tamoxor.d a0, a1, (s0)\n\tecall\n")
	f.Add(kernel.BranchDense.Program(2))
	f.Add(kernel.LoopCarried.Program(2))
	eng := check.New(
		check.WithBoomSizes(boom.Small, boom.Giga),
		check.WithWorkers(1),
		check.WithMaxInsts(300_000),
	)
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<14 {
			return
		}
		// Programs that read PMU CSRs legitimately diverge across timing
		// models (cycle counts differ per model) — out of oracle scope.
		if strings.Contains(src, "csr") {
			return
		}
		rep, err := eng.CheckSource(src)
		if err != nil {
			return
		}
		if rep.Failed() {
			t.Fatalf("invariant failure on fuzzed program:\n%s\nprogram:\n%s", rep, src)
		}
	})
}

// FuzzStallSkipDifferential pins the event-driven stall-skip cycle loop
// against per-cycle stepping: any program that assembles and terminates
// must produce a bit-identical Result (cycles, every tally, lane tallies,
// cache stats) and register file with the skip on and off, on Rocket and
// on the smallest and largest BOOM. The seeds lean on memory aliasing,
// pointer chases, AMOs, and fences — the paths where quiescence bounds
// interact with MSHR refills, replays, and machine clears.
func FuzzStallSkipDifferential(f *testing.F) {
	f.Add("\tli   a0, 42\n\tecall\n")
	// Pointer chase through a linked ring: every load depends on the last.
	f.Add("\tli   s0, 4194304\n\tsd   s0, 0(s0)\n\tli   t0, 50\nc:\n\tld   s0, 0(s0)\n\taddi t0, t0, -1\n\tbnez t0, c\n\txor  a0, s0, t0\n\tecall\n")
	// Store/load aliasing with mixed widths plus an AMO on the same line.
	f.Add("\tli   s0, 4194304\n\tli   t0, 77\n\tsd   t0, 0(s0)\n\tlbu  a1, 1(s0)\n\tamoadd.d a2, a1, (s0)\n\tsb   a2, 3(s0)\n\tlw   a3, 0(s0)\n\txor  a0, a1, a3\n\tecall\n")
	// Fence-separated store bursts (drain + replay pressure).
	f.Add("\tli   s0, 4194304\n\tli   t0, 9\nf:\n\tsd   t0, 0(s0)\n\tfence\n\tld   a1, 0(s0)\n\taddi t0, t0, -1\n\tbnez t0, f\n\tmv   a0, a1\n\tecall\n")
	f.Add(kernel.MemoryAliasing.Program(3))
	f.Add(kernel.LoopCarried.Program(2))
	eng := check.New(
		check.WithBoomSizes(boom.Small, boom.Giga),
		check.WithWorkers(1),
		check.WithMaxInsts(300_000),
		check.WithoutDeterminism(),
		check.WithoutTrace(),
	)
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<14 {
			return
		}
		if strings.Contains(src, "csr") {
			return
		}
		rep, err := eng.CheckSource(src)
		if err != nil {
			return
		}
		if rep.Failed() {
			t.Fatalf("invariant failure on fuzzed program:\n%s\nprogram:\n%s", rep, src)
		}
	})
}

// FuzzSuperblockDifferential pins the superblock threaded-code engine
// against the plain Step loop: any program that assembles — including
// self-modifying ones that store over their own instruction stream —
// must produce identical architectural state, identical Retired
// streams, identical memory images, and identical errors on both
// engines. The seeds cover the invalidation machinery: full-word and
// single-byte (partial-overlap) stores into the executing block, into
// other blocks, and fence.i flushes.
func FuzzSuperblockDifferential(f *testing.F) {
	f.Add("\tli   a0, 42\n\tecall\n")
	f.Add("loop:\n\taddi a1, a1, -1\n\tbnez a1, loop\n\tecall\n")
	// Copy the instruction at +12 over the one at +16 (full-word
	// self-modification inside the executing block).
	f.Add("\tauipc t0, 0\n\tlw   t1, 12(t0)\n\tsw   t1, 16(t0)\n\taddi a0, a0, 3\n\taddi a0, a0, 5\n\tecall\n")
	// Single-byte partial-overlap store: rewrite the high immediate byte
	// of the instruction at +16 before it executes.
	f.Add("\tauipc t0, 0\n\tli   t1, 0x12\n\tsb   t1, 19(t0)\n\taddi a0, x0, 100\n\taddi a1, x0, 0x064\n\tecall\n")
	// Rewrite a loop body from a prior block, with a fence.i thrown in.
	f.Add("\tauipc t0, 0\n\tli   t1, 0x00150513\n\tli   t2, 2\nl:\n\tsw   t1, 28(t0)\n\tfence.i\n\taddi t2, t2, -1\n\taddi a0, a0, 1\n\tbnez t2, l\n\tecall\n")
	f.Add(kernel.LoopCarried.Program(2))
	const budget = 50_000
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<14 {
			return
		}
		prog, err := asm.Assemble(src)
		if err != nil {
			return
		}
		// Reference: plain Step loop, trace recorded.
		refMem := mem.NewSparse()
		prog.LoadInto(refMem)
		ref := isa.NewCPU(refMem, prog.Entry)
		ref.SetSuperblocks(false)
		var trace []isa.Retired
		_, refErr := ref.RunForTraced(budget, func(r isa.Retired) { trace = append(trace, r) })

		// Subject: superblock engine, compared record by record.
		sbMem := mem.NewSparse()
		prog.LoadInto(sbMem)
		sb := isa.NewCPU(sbMem, prog.Entry)
		sb.SetSuperblocks(true)
		idx := 0
		mismatch := -1
		_, sbErr := sb.RunForTraced(budget, func(r isa.Retired) {
			if mismatch < 0 && (idx >= len(trace) || trace[idx] != r) {
				mismatch = idx
			}
			idx++
		})

		if (refErr == nil) != (sbErr == nil) {
			t.Fatalf("error divergence: step=%v superblock=%v\nprogram:\n%s", refErr, sbErr, src)
		}
		if refErr != nil && refErr.Error() != sbErr.Error() {
			t.Fatalf("error text divergence:\n step:       %v\n superblock: %v\nprogram:\n%s", refErr, sbErr, src)
		}
		if mismatch >= 0 {
			got := "<none>"
			if mismatch < idx {
				got = "see superblock stream"
			}
			t.Fatalf("Retired stream diverges at %d (%s)\nprogram:\n%s", mismatch, got, src)
		}
		if idx != len(trace) {
			t.Fatalf("retired %d insts on superblock engine, %d on step\nprogram:\n%s", idx, len(trace), src)
		}
		if sb.X != ref.X || sb.PC != ref.PC || sb.InstRet != ref.InstRet ||
			sb.Halted != ref.Halted || sb.ExitCode != ref.ExitCode {
			t.Fatalf("architectural state divergence\nprogram:\n%s", src)
		}
		if sbMem.Checksum() != refMem.Checksum() {
			t.Fatalf("memory image divergence\nprogram:\n%s", src)
		}
	})
}
