# Hand-written seed: mixed-width store-to-load aliasing on one dword,
# with an atomic read-modify-write in the middle — exercises forwarding,
# ordering checks, and replay in the timing models.
	li   s0, 4194304
	li   t0, 81985529216486895
	sd   t0, 0(s0)
	lbu  a1, 3(s0)
	lhu  a2, 2(s0)
	lw   a3, 4(s0)
	sh   a2, 6(s0)
	amoadd.d a4, a1, (s0)
	ld   a5, 0(s0)
	sb   a1, 1(s0)
	lwu  t1, 0(s0)
	add  a0, a1, a2
	add  a0, a0, a3
	add  a0, a0, a4
	xor  a0, a0, a5
	xor  a0, a0, t1
	ecall
