# Hand-written seed: fences and long-latency division interleaved with
# stores — exercises the intended-flush path and writeback contention.
	li   s0, 4194304
	li   t0, 987654321
	li   t1, 7
	li   a1, 0
	li   s11, 12
serial:
	divu a2, t0, t1
	rem  a3, t0, t1
	sd   a2, 8(s0)
	fence
	ld   a4, 8(s0)
	fence.i
	add  a1, a1, a4
	addi t1, t1, 2
	addi s11, s11, -1
	bnez s11, serial
	xor  a0, a1, a3
	ecall
