# shrunk repro: GigaBOOM/run: boom: cycle budget 225056 exhausted (pc 0x10018)
# replayed by: go test ./internal/check -run Corpus
	li   s11, 195
router:
	add  t4, t4, s0
	sd a3, 0(t4)
	ld a1, 0(t4)
	addi s11, s11, -1
	bnez s11, router
	ecall
