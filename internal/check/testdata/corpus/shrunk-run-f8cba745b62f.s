# shrunk repro: LargeBOOM/run: boom: cycle budget 212384 exhausted (pc 0x10014)
# replayed by: go test ./internal/check -run Corpus
	li   s11, 219
router:
	lhu a4, 2(t4)
	sh a4, 4(t4)
	addi s11, s11, -1
	bnez s11, router
	ecall
