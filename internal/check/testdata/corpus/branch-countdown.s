# Hand-written seed: a countdown loop whose body takes a data-dependent
# forward skip on the counter's parity — a stream of alternating branch
# outcomes for the predictors to mangle.
	li   s11, 100
	li   a1, 0
	li   a2, 0
loop:
	andi t0, s11, 1
	beqz t0, even
	addi a1, a1, 3
	xor  a1, a1, s11
even:
	addi a2, a2, 1
	mul  a3, a1, a2
	addi s11, s11, -1
	bnez s11, loop
	xor  a0, a1, a2
	xor  a0, a0, a3
	ecall
