package kernel

import (
	"fmt"
	"strings"
)

// Synthetic proxies for the ten SPEC CPU2017 intrate benchmarks (Fig. 7
// g-j, Table V). Each proxy composes parameterized phases — dependent
// pointer chasing, streaming, random branches, dense ALU, call chains, and
// jalr dispatch — weighted to match the published bottleneck structure of
// its namesake (e.g. 505.mcf_r ≈ 80% Backend/Mem Bound; 525.x264_r high
// retiring with the largest Bad Speculation; 548.exchange2_r pure core
// bound with zero D$-blocked).
//
// Register conventions across phases:
//
//	s5  accumulator (checksum)
//	s6  LCG state, s7/s8 LCG constants
//	s9  chase index (persists across outer iterations)
//	s10 outer loop counter, s11 outer loop bound
//	a4  chase arena base, a6 stream arena base
//	t*, a2/a3/a5/a7 scratch
type specParams struct {
	Outer int // outer loop iterations

	ChaseNodes  int // dependent pointer-chase footprint (64 B/node); 0 = off
	ChaseSteps  int // chase loads per outer iteration
	ChaseStride int // index stride (odd, for a full cycle)

	StreamDwords int // streaming-sum footprint; 0 = off
	StreamStep   int // dwords summed per outer iteration

	BranchIters int // LCG-driven unpredictable branches per outer iteration

	ALUIters int // dense 8-op ALU blocks per outer iteration

	CallIters int // call/return pairs per outer iteration

	DispatchIters int // jalr jump-table dispatches per outer iteration

	// CodeBlocks emits a straight-line chain of CodeBlocks ALU
	// instructions called once per outer iteration — an instruction
	// footprint that pressures the 32 KiB L1I the way real SPEC code
	// does (each instruction is 4 bytes).
	CodeBlocks int
}

func specSource(p specParams) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, `
	li   s5, 0
	li   s6, %d
	li   s7, %d
	li   s8, %d
	li   s10, 0
	li   s11, %d
`, lcgSeed, lcgMul, lcgInc, p.Outer)

	if p.ChaseNodes > 0 {
		// Node i at a4 + 64*i holds the next index (i + stride) mod nodes.
		fmt.Fprintf(&sb, `
	li   a4, %d
	li   t0, 0
	li   t2, %d            # nodes
	li   t3, %d            # stride
cbuild:
	add  t4, t0, t3
	bltu t4, t2, cnowrap
	sub  t4, t4, t2
cnowrap:
	slli t5, t0, 6
	add  t5, t5, a4
	sd   t4, 0(t5)
	addi t0, t0, 1
	bne  t0, t2, cbuild
	li   s9, 0
`, heapA, p.ChaseNodes, p.ChaseStride)
	}
	if p.StreamDwords > 0 {
		fmt.Fprintf(&sb, `
	li   a6, %d
	li   t0, 0
	li   t2, %d
sbuild:
	mul  s6, s6, s7
	add  s6, s6, s8
	slli t5, t0, 3
	add  t5, t5, a6
	sd   s6, 0(t5)
	addi t0, t0, 1
	bne  t0, t2, sbuild
	li   a7, 0             # stream cursor
`, heapC, p.StreamDwords)
	}

	sb.WriteString("\tli   t0, 0\nouter:\n")

	if p.ChaseSteps > 0 {
		fmt.Fprintf(&sb, `
	li   a2, %d
chase:
	slli a3, s9, 6
	add  a3, a3, a4
	ld   s9, 0(a3)         # dependent load: next index
	addi a2, a2, -1
	bnez a2, chase
	add  s5, s5, s9
`, p.ChaseSteps)
	}
	if p.StreamStep > 0 {
		fmt.Fprintf(&sb, `
	li   a2, %d
	li   t2, %d
stream:
	slli a3, a7, 3
	add  a3, a3, a6
	ld   t5, 0(a3)
	add  s5, s5, t5
	addi a7, a7, 1
	bltu a7, t2, snowrap
	li   a7, 0
snowrap:
	addi a2, a2, -1
	bnez a2, stream
`, p.StreamStep, p.StreamDwords)
	}
	if p.BranchIters > 0 {
		fmt.Fprintf(&sb, `
	li   a2, %d
rbr:
	mul  s6, s6, s7
	add  s6, s6, s8
	srli t5, s6, 33
	andi t5, t5, 1
	beqz t5, rskip         # ~50/50, data dependent
	addi s5, s5, 3
rskip:
	addi s5, s5, 1
	addi a2, a2, -1
	bnez a2, rbr
`, p.BranchIters)
	}
	if p.ALUIters > 0 {
		fmt.Fprintf(&sb, `
	li   a2, %d
alu:
	addi t0, t0, 7
	slli t2, a2, 3
	xor  t3, t0, t2
	srli t4, t3, 5
	add  t5, t4, t0
	andi t6, t5, 1023
	add  s5, s5, t6
	addi a2, a2, -1
	bnez a2, alu
`, p.ALUIters)
	}
	if p.CallIters > 0 {
		fmt.Fprintf(&sb, `
	li   a2, %d
calls:
	call leaf
	addi a2, a2, -1
	bnez a2, calls
	j    callsdone
leaf:
	addi s5, s5, 13
	slli t5, s5, 1
	srli t5, t5, 1
	ret
callsdone:
`, p.CallIters)
	}
	if p.DispatchIters > 0 {
		// Four handlers dispatched through a jalr on LCG bits: indirect
		// targets vary per iteration, defeating the BTB.
		fmt.Fprintf(&sb, `
	la   t6, disp0
	li   a2, %d
dsp:
	mul  s6, s6, s7
	add  s6, s6, s8
	srli t5, s6, 35
	andi t5, t5, 3
	slli t5, t5, 4         # handlers are 16 bytes apart
	add  t5, t5, t6
	jalr ra, 0(t5)
	addi a2, a2, -1
	bnez a2, dsp
	j    dspdone
disp0:
	addi s5, s5, 1
	nop
	nop
	ret
disp1:
	addi s5, s5, 2
	nop
	nop
	ret
disp2:
	addi s5, s5, 4
	nop
	nop
	ret
disp3:
	addi s5, s5, 8
	nop
	nop
	ret
dspdone:
`, p.DispatchIters)
	}

	if p.CodeBlocks > 0 {
		sb.WriteString("\tcall bigcode\n")
	}
	sb.WriteString(`
	addi s10, s10, 1
	bne  s10, s11, outer
	mv   a0, s5
	ecall
`)
	if p.CodeBlocks > 0 {
		sb.WriteString("bigcode:\n\tli   t5, 0\n")
		for i := 0; i < p.CodeBlocks; i++ {
			sb.WriteString("\taddi t5, t5, 3\n")
		}
		sb.WriteString("\tadd  s5, s5, t5\n\tret\n")
	}
	return sb.String()
}

// goldenSpec mirrors specSource exactly.
func goldenSpec(p specParams) uint64 {
	lcg := uint64(lcgSeed)
	var acc uint64
	var chase []uint64
	var stream []uint64
	var chaseIdx uint64
	var streamCur uint64
	if p.ChaseNodes > 0 {
		chase = make([]uint64, p.ChaseNodes)
		for i := range chase {
			chase[i] = uint64((i + p.ChaseStride) % p.ChaseNodes)
		}
	}
	if p.StreamDwords > 0 {
		stream = make([]uint64, p.StreamDwords)
		for i := range stream {
			lcg = lcgNext(lcg)
			stream[i] = lcg
		}
	}
	var t0 uint64 // ALU phase accumulator persists across iterations
	for it := 0; it < p.Outer; it++ {
		for s := 0; s < p.ChaseSteps; s++ {
			chaseIdx = chase[chaseIdx]
		}
		if p.ChaseSteps > 0 {
			acc += chaseIdx
		}
		for s := 0; s < p.StreamStep; s++ {
			acc += stream[streamCur]
			streamCur++
			if streamCur >= uint64(p.StreamDwords) {
				streamCur = 0
			}
		}
		for s := 0; s < p.BranchIters; s++ {
			lcg = lcgNext(lcg)
			if lcg>>33&1 != 0 {
				acc += 3
			}
			acc++
		}
		for a2 := uint64(p.ALUIters); a2 > 0; a2-- {
			t0 += 7
			t3 := t0 ^ (a2 << 3)
			t5 := (t3 >> 5) + t0
			acc += t5 & 1023
		}
		for s := 0; s < p.CallIters; s++ {
			acc += 13
		}
		for s := 0; s < p.DispatchIters; s++ {
			lcg = lcgNext(lcg)
			acc += uint64(1) << (lcg >> 35 & 3)
		}
		acc += 3 * uint64(p.CodeBlocks)
	}
	return acc
}

func specKernel(name, desc string, p specParams) *Kernel {
	return register(&Kernel{
		Name:        name,
		Description: desc,
		Category:    CatSPEC,
		Expected:    goldenSpec(p),
		Source:      specSource(p),
	})
}

// The ten SPEC CPU2017 intrate proxies. Footprints: 64 B per chase node,
// 8 B per stream dword. L1D = 32 KiB, L2 = 512 KiB.
var (
	// 505.mcf_r: single-thread network simplex — dominated by dependent
	// pointer chasing over a multi-MiB arena; ~80% Backend, mostly Mem.
	Mcf = specKernel("505.mcf_r",
		"mcf proxy: DRAM-resident dependent pointer chase",
		specParams{Outer: 40, ChaseNodes: 16384, ChaseSteps: 600,
			ChaseStride: 5741, ALUIters: 3600})

	// 523.xalancbmk_r: XML tree walking — pointer chasing plus branchy
	// traversal; ~80% Backend.
	Xalancbmk = specKernel("523.xalancbmk_r",
		"xalancbmk proxy: L2/DRAM pointer chase + branchy traversal",
		specParams{Outer: 40, ChaseNodes: 12288, ChaseSteps: 500,
			ChaseStride: 4099, BranchIters: 150, ALUIters: 2600, CodeBlocks: 7000})

	// 525.x264_r: dense SAD/DCT loops — highest IPC and retire rate, with
	// the suite's largest Bad Speculation share.
	X264 = specKernel("525.x264_r",
		"x264 proxy: dense ALU + streaming with unpredictable mode decisions",
		specParams{Outer: 40, StreamDwords: 2048, StreamStep: 700,
			BranchIters: 320, ALUIters: 1100, CodeBlocks: 4000})

	// 531.deepsjeng_r: alpha-beta game search — data-dependent branches
	// over a transposition table that just exceeds a 16 KiB D$.
	Deepsjeng = specKernel("531.deepsjeng_r",
		"deepsjeng proxy: branchy search over a ~24 KiB table",
		specParams{Outer: 40, ChaseNodes: 384, ChaseSteps: 45,
			ChaseStride: 131, BranchIters: 110, ALUIters: 260, CallIters: 40, CodeBlocks: 5000})

	// 541.leela_r: MCTS go engine — mixed tree walking and evaluation.
	Leela = specKernel("541.leela_r",
		"leela proxy: L2-resident chase + branches + evaluation ALU",
		specParams{Outer: 40, ChaseNodes: 3072, ChaseSteps: 220,
			ChaseStride: 1033, BranchIters: 180, ALUIters: 600, CallIters: 30, CodeBlocks: 6000})

	// 548.exchange2_r: recursive sudoku solver — pure integer compute,
	// essentially no memory stalls (Table V: D$-blocked = 0.00).
	Exchange2 = specKernel("548.exchange2_r",
		"exchange2 proxy: pure ALU + deep call chains, no data footprint",
		specParams{Outer: 40, ALUIters: 600, CallIters: 170, BranchIters: 90, CodeBlocks: 2500})

	// 500.perlbench_r: interpreter dispatch — indirect jumps and calls.
	Perlbench = specKernel("500.perlbench_r",
		"perlbench proxy: jalr opcode dispatch + branches + small heap",
		specParams{Outer: 40, DispatchIters: 350, BranchIters: 150,
			ChaseNodes: 1536, ChaseSteps: 60, ChaseStride: 517, ALUIters: 150, CodeBlocks: 9000})

	// 502.gcc_r: compiler passes — branchy pointer-heavy IR walking.
	Gcc = specKernel("502.gcc_r",
		"gcc proxy: medium-footprint chase + heavy branching",
		specParams{Outer: 40, ChaseNodes: 6144, ChaseSteps: 300,
			ChaseStride: 2053, BranchIters: 250, ALUIters: 700, CallIters: 40, CodeBlocks: 10000})

	// 520.omnetpp_r: discrete event simulation — heap/event-queue churn.
	Omnetpp = specKernel("520.omnetpp_r",
		"omnetpp proxy: event-queue pointer chase + moderate branches",
		specParams{Outer: 40, ChaseNodes: 8192, ChaseSteps: 400,
			ChaseStride: 3571, BranchIters: 150, ALUIters: 900, CallIters: 30, CodeBlocks: 6000})

	// 557.xz_r: LZMA compression — streaming with data-dependent match
	// branches.
	Xz = specKernel("557.xz_r",
		"xz proxy: streaming + data-dependent match loops",
		specParams{Outer: 40, StreamDwords: 16384, StreamStep: 450,
			BranchIters: 130, ALUIters: 250, CodeBlocks: 3000})
)
