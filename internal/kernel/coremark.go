package kernel

import "fmt"

// CoreMark-like kernel for the compiler-scheduling case studies (Fig. 7
// e/f/m). Two builds exist with identical instruction counts and different
// instruction order only, mirroring the paper's -O1 vs
// -O1 -fschedule-insns comparison: the unscheduled build keeps loads
// adjacent to their uses (load-use and mul-use interlocks on Rocket), the
// scheduled build hoists independent work in between.

const (
	cmIters    = 400
	cmNodes    = 64
	cmCRCPoly  = 0xEDB88320
	cmMatBase  = heapB
	cmListBase = heapC
)

// cmSetup builds the 64-node linked list (node = [next, value], 16 bytes)
// and a small constant table for the MAC section.
func cmSetup() string {
	return fmt.Sprintf(`
	# build linked list: node i at base+16i, next -> i+1, last -> 0
	li   s0, %d            # list base
	li   t1, %d            # lcg state
	li   t2, %d
	li   t3, %d
	li   t0, 0
	li   s3, %d            # nodes
build:
	slli t4, t0, 4
	add  t4, t4, s0
	addi t5, t0, 1
	beq  t5, s3, lastnode
	slli t5, t5, 4
	add  t5, t5, s0
	j    storenext
lastnode:
	li   t5, 0
storenext:
	sd   t5, 0(t4)
	mul  t1, t1, t2
	add  t1, t1, t3
	sd   t1, 8(t4)
	addi t0, t0, 1
	bne  t0, s3, build
	# MAC table: 4 dwords
	li   s6, %d
	li   t0, 0
mtab:
	mul  t1, t1, t2
	add  t1, t1, t3
	slli t4, t0, 3
	add  t4, t4, s6
	sd   t1, 0(t4)
	addi t0, t0, 1
	li   t5, 4
	bne  t0, t5, mtab
	li   s7, 0x5bd1e995    # MAC multiplier
	li   s8, %d            # CRC poly
	li   s5, 0             # acc
	li   s9, 0             # state acc
	li   s10, 0            # iteration
	li   s11, %d           # iterations
`, cmListBase, lcgSeed, lcgMul, lcgInc, cmNodes, cmMatBase, cmCRCPoly, cmIters)
}

// walk + MAC sections in the two orderings. Identical instructions.
const cmWalkNosched = `
	mv   t4, s0
walk:
	ld   t5, 8(t4)         # value
	add  s5, s5, t5        # load-use interlock
	ld   t4, 0(t4)         # next
	bnez t4, walk          # load-use interlock on t4
`

const cmWalkSched = `
	mv   t4, s0
walk:
	ld   t5, 8(t4)
	ld   t4, 0(t4)         # hoisted: hides the value load's latency
	add  s5, s5, t5
	bnez t4, walk
`

const cmMACNosched = `
	ld   a2, 0(s6)
	mul  a2, a2, s7
	add  s5, s5, a2
	ld   a3, 8(s6)
	mul  a3, a3, s7
	add  s5, s5, a3
	ld   a4, 16(s6)
	mul  a4, a4, s7
	add  s5, s5, a4
	ld   a5, 24(s6)
	mul  a5, a5, s7
	add  s5, s5, a5
`

const cmMACSched = `
	ld   a2, 0(s6)
	ld   a3, 8(s6)
	ld   a4, 16(s6)
	ld   a5, 24(s6)
	mul  a2, a2, s7
	mul  a3, a3, s7
	mul  a4, a4, s7
	mul  a5, a5, s7
	add  s5, s5, a2
	add  s5, s5, a3
	add  s5, s5, a4
	add  s5, s5, a5
`

// CRC + state machine + loop control (identical in both builds).
const cmTail = `
	# crc8 over the accumulator
	li   t6, 8
	mv   a6, s5
crc:
	andi a7, a6, 1
	srli a6, a6, 1
	beqz a7, crcskip
	xor  a6, a6, s8
crcskip:
	addi t6, t6, -1
	bnez t6, crc
	add  s5, s5, a6
	# state machine on low accumulator bits
	andi a7, s5, 3
	beqz a7, st0
	li   t5, 1
	beq  a7, t5, st1
	li   t5, 2
	beq  a7, t5, st2
	addi s9, s9, 3
	j    stdone
st0:
	addi s9, s9, 5
	j    stdone
st1:
	addi s9, s9, 7
	j    stdone
st2:
	addi s9, s9, 11
stdone:
	addi s10, s10, 1
	bne  s10, s11, cmloop
	add  a0, s5, s9
	ecall
`

func coremarkSource(scheduled bool) string {
	// Only the MAC section is schedulable; the list walk is a serial
	// dependence chain either way, so both builds share it (as a real
	// scheduler would find). This keeps the scheduled build's advantage
	// small — the paper measures ~4% on Rocket and ~0.3% on BOOM.
	mac := cmMACNosched
	if scheduled {
		mac = cmMACSched
	}
	return cmSetup() + "\ncmloop:\n" + cmWalkNosched + mac + cmTail
}

// cmWalkSched is retained to document what a scheduler would do to the
// walk if the loads were independent; see coremark_test.go.
var _ = cmWalkSched

// Coremark is the baseline (unscheduled) build.
var Coremark = register(&Kernel{
	Name:        "coremark",
	Description: "CoreMark-like composite (list walk, MAC, CRC, state machine); unscheduled build",
	Category:    CatMicro,
	Expected:    goldenCoremark(),
	Source:      coremarkSource(false),
})

// CoremarkSched is the instruction-scheduled build: same instructions,
// reordered (Rocket CS3 / BOOM CS, §V-A).
var CoremarkSched = register(&Kernel{
	Name:        "coremark-sched",
	Description: "CoreMark-like composite with scheduled (hoisted) loads; same instruction count",
	Category:    CatCaseStudy,
	Expected:    goldenCoremark(),
	Source:      coremarkSource(true),
})

func goldenCoremark() uint64 {
	// List values then MAC table come from one LCG stream.
	x := uint64(lcgSeed)
	vals := make([]uint64, cmNodes)
	for i := range vals {
		x = lcgNext(x)
		vals[i] = x
	}
	var mtab [4]uint64
	for i := range mtab {
		x = lcgNext(x)
		mtab[i] = x
	}
	const mulC = 0x5bd1e995
	var acc, state uint64
	for it := 0; it < cmIters; it++ {
		for _, v := range vals {
			acc += v
		}
		for _, m := range mtab {
			acc += m * mulC
		}
		crc := acc
		for i := 0; i < 8; i++ {
			bit := crc & 1
			crc >>= 1
			if bit != 0 {
				crc ^= cmCRCPoly
			}
		}
		acc += crc
		switch acc & 3 {
		case 0:
			state += 5
		case 1:
			state += 7
		case 2:
			state += 11
		default:
			state += 3
		}
	}
	return acc + state
}

// Dhrystone-like kernel: record assignment, string comparison, and integer
// arithmetic with highly predictable control flow — the high-IPC
// microbenchmark on both cores (§V-A).
const dhryIters = 2000

var Dhrystone = register(&Kernel{
	Name:        "dhrystone",
	Description: "Dhrystone-like composite (record copy, strcmp, arithmetic); predictable",
	Category:    CatMicro,
	Expected:    goldenDhrystone(),
	Source: fmt.Sprintf(`
	# a 48-byte record at heapA, a copy target at heapA+64,
	# two equal 16-byte strings at heapB
	li   s0, %d
	li   s1, %d
	li   t1, %d
	li   t2, %d
	li   t3, %d
	li   t0, 0
dinit:
	mul  t1, t1, t2
	add  t1, t1, t3
	slli t4, t0, 3
	add  t4, t4, s0
	sd   t1, 0(t4)
	addi t0, t0, 1
	li   t5, 6
	bne  t0, t5, dinit
	# strings: 16 identical bytes each
	li   t5, 0x4141414141414141
	sd   t5, 0(s1)
	sd   t5, 8(s1)
	sd   t5, 16(s1)
	sd   t5, 24(s1)
	li   s5, 0             # checksum
	li   s10, 0
	li   s11, %d
dloop:
	# Proc: record copy (6 dwords) via call
	call reccopy
	# strcmp of equal strings: 16 predictable iterations
	li   t0, 0
scmp:
	add  t4, s1, t0
	lbu  t5, 0(t4)
	lbu  t6, 16(t4)
	bne  t5, t6, sdiff
	addi t0, t0, 1
	li   a2, 16
	bne  t0, a2, scmp
	addi s5, s5, 1         # equal
sdiff:
	# arithmetic block
	ld   t5, 0(s0)
	slli t6, s10, 2
	add  t5, t5, t6
	srli t5, t5, 3
	add  s5, s5, t5
	addi s10, s10, 1
	bne  s10, s11, dloop
	mv   a0, s5
	ecall
reccopy:
	ld   t5, 0(s0)
	ld   t6, 8(s0)
	ld   a2, 16(s0)
	ld   a3, 24(s0)
	ld   a4, 32(s0)
	ld   a5, 40(s0)
	sd   t5, 64(s0)
	sd   t6, 72(s0)
	sd   a2, 80(s0)
	sd   a3, 88(s0)
	sd   a4, 96(s0)
	sd   a5, 104(s0)
	ret
`, heapA, heapB, lcgSeed, lcgMul, lcgInc, dhryIters),
})

func goldenDhrystone() uint64 {
	x := uint64(lcgSeed)
	var rec [6]uint64
	for i := range rec {
		x = lcgNext(x)
		rec[i] = x
	}
	var sum uint64
	for i := uint64(0); i < dhryIters; i++ {
		sum++ // strings always equal
		sum += (rec[0] + i*4) >> 3
	}
	return sum
}
