package kernel

import (
	"fmt"
	"math/rand"
	"strings"
)

// Strategy is a random-program generation profile for differential
// testing. Each profile biases the generated RV64IMA instruction mix
// toward a different corner of the timing models — dense ALU dependency
// chains, aliasing memory traffic, misprediction-heavy control flow,
// loop-carried serial chains — so the internal/check oracle and the fuzz
// targets stress different squash/replay/forwarding paths. Every profile
// produces guaranteed-terminating programs: control flow is an outer
// countdown loop, optional bounded inner countdown loops, and
// skip-forward-only data-dependent branches.
type Strategy struct {
	Name string

	// Relative instruction-mix weights; a zero weight drops the class.
	ALU    int // add/sub/logic/addi
	Shift  int // slli/srli/srai
	Mul    int
	Div    int // divu/remu/div/rem
	Load   int
	Store  int
	Amo    int // read-modify-write atomics
	Branch int // data-dependent forward skips

	// AddrMask confines data addresses within the 16 KiB arena (masked
	// onto an 8-byte-aligned offset). Small masks concentrate traffic on
	// a few cache lines, maximizing aliasing, forwarding, and ordering-
	// violation opportunities.
	AddrMask int64

	// MixedWidths mixes byte/half/word accesses in with dwords, so
	// stores and loads partially overlap.
	MixedWidths bool

	// InnerLoops nests bounded (2..9 trip) countdown loops inside
	// blocks; with Chained these become loop-carried dependency chains.
	InnerLoops bool

	// Chained biases each op's first source toward its destination,
	// building long serial dependency chains.
	Chained bool

	// FencePct is the per-block percentage chance of a trailing fence.
	FencePct int

	// Shape: the outer loop runs [MinIters,MaxIters) trips over
	// [MinBlocks,MaxBlocks) blocks of [MinLen,MaxLen) operations.
	MinIters, MaxIters   int
	MinBlocks, MaxBlocks int
	MinLen, MaxLen       int
}

// The exported generation profiles. Mixed reproduces the historical
// RandomProgram distribution; the others are the corner-case profiles
// used by internal/check.
var (
	// Mixed is the balanced historical profile.
	Mixed = Strategy{
		Name: "mixed",
		ALU:  5, Shift: 2, Mul: 1, Div: 2, Load: 1, Store: 1, Amo: 1, Branch: 1,
		AddrMask: 0x3f8, FencePct: 33,
		MinIters: 50, MaxIters: 450, MinBlocks: 2, MaxBlocks: 8, MinLen: 3, MaxLen: 13,
	}

	// ALUHeavy is almost pure integer work: dense dependency chains
	// through the issue queues with no memory pressure.
	ALUHeavy = Strategy{
		Name: "alu-heavy",
		ALU:  8, Shift: 4, Mul: 2, Div: 1, Branch: 1,
		Chained:  true,
		MinIters: 100, MaxIters: 600, MinBlocks: 2, MaxBlocks: 6, MinLen: 6, MaxLen: 20,
	}

	// MemoryAliasing hammers a 16-dword window with mixed-width loads,
	// stores, and atomics — store-to-load aliasing, ordering violations,
	// and MSHR pressure.
	MemoryAliasing = Strategy{
		Name: "memory-aliasing",
		ALU:  2, Load: 4, Store: 4, Amo: 2, Branch: 1,
		AddrMask: 0x78, MixedWidths: true, FencePct: 20,
		MinIters: 40, MaxIters: 250, MinBlocks: 2, MaxBlocks: 6, MinLen: 4, MaxLen: 14,
	}

	// BranchDense is misprediction-heavy: short blocks dominated by
	// data-dependent forward skips.
	BranchDense = Strategy{
		Name: "branch-dense",
		ALU:  2, Shift: 1, Branch: 5, Load: 1,
		AddrMask: 0x3f8,
		MinIters: 60, MaxIters: 400, MinBlocks: 3, MaxBlocks: 10, MinLen: 2, MaxLen: 7,
	}

	// LoopCarried nests bounded inner loops whose bodies chain through
	// an accumulator — serial latency the out-of-order cores cannot hide.
	LoopCarried = Strategy{
		Name: "loop-carried",
		ALU:  4, Shift: 1, Mul: 2, Div: 1, Load: 1, Store: 1, Branch: 1,
		AddrMask: 0x1f8, InnerLoops: true, Chained: true,
		MinIters: 20, MaxIters: 120, MinBlocks: 2, MaxBlocks: 5, MinLen: 3, MaxLen: 9,
	}
)

// Strategies lists every generation profile, Mixed first.
var Strategies = []Strategy{Mixed, ALUHeavy, MemoryAliasing, BranchDense, LoopCarried}

// StrategyByName looks a profile up by its Name.
func StrategyByName(name string) (Strategy, error) {
	for _, s := range Strategies {
		if s.Name == name {
			return s, nil
		}
	}
	return Strategy{}, fmt.Errorf("kernel: unknown strategy %q", name)
}

// RandomProgram generates a random but guaranteed-terminating RV64IMA
// program for differential testing using the balanced Mixed profile: the
// same program must produce the same architectural result on the
// functional model and on every timing simulator, no matter how they
// squash, replay, and refetch.
func RandomProgram(seed int64) string {
	return Mixed.Program(seed)
}

// Register conventions shared by every generated program: the pool is
// freely clobbered by random ops; s0 holds the arena base, s11 the outer
// loop counter, t4 the current effective address, t5 inner loop counters,
// and a0 the final fold.
var genPool = []string{"a1", "a2", "a3", "a4", "a5", "t0", "t1", "t2", "t3", "s2", "s3", "s4"}

// Program renders one random program from the profile. The output is a
// deterministic function of (profile, seed).
func (s Strategy) Program(seed int64) string {
	r := rand.New(rand.NewSource(seed))
	g := &progGen{r: r, s: s}
	return g.run()
}

type progGen struct {
	r     *rand.Rand
	s     Strategy
	sb    strings.Builder
	label int
}

func (g *progGen) reg() string { return genPool[g.r.Intn(len(genPool))] }

func (g *progGen) span(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + g.r.Intn(hi-lo)
}

func (g *progGen) run() string {
	fmt.Fprintf(&g.sb, "\tli   s0, %d\n", heapA)
	for _, p := range genPool {
		fmt.Fprintf(&g.sb, "\tli   %s, %d\n", p, g.r.Int63())
	}
	fmt.Fprintf(&g.sb, "\tli   s11, %d\nrouter:\n", g.span(g.s.MinIters, g.s.MaxIters))

	blocks := g.span(g.s.MinBlocks, g.s.MaxBlocks)
	for b := 0; b < blocks; b++ {
		n := g.span(g.s.MinLen, g.s.MaxLen)
		inner := -1
		if g.s.InnerLoops && g.r.Intn(2) == 0 {
			inner = g.label
			g.label++
			// Data-dependent but bounded trip count: 2..9.
			fmt.Fprintf(&g.sb, "\tandi t5, %s, 7\n", g.reg())
			g.sb.WriteString("\taddi t5, t5, 2\n")
			fmt.Fprintf(&g.sb, "inner%d:\n", inner)
		}
		for i := 0; i < n; i++ {
			g.op()
		}
		if inner >= 0 {
			g.sb.WriteString("\taddi t5, t5, -1\n")
			fmt.Fprintf(&g.sb, "\tbnez t5, inner%d\n", inner)
		}
		if g.s.FencePct > 0 && g.r.Intn(100) < g.s.FencePct {
			g.sb.WriteString("\tfence\n")
		}
	}
	g.sb.WriteString("\taddi s11, s11, -1\n\tbnez s11, router\n")

	// Fold everything into a0.
	g.sb.WriteString("\tli   a0, 0\n")
	for _, p := range genPool {
		fmt.Fprintf(&g.sb, "\txor  a0, a0, %s\n", p)
	}
	g.sb.WriteString("\tecall\n")
	return g.sb.String()
}

// op emits one weighted random operation.
func (g *progGen) op() {
	s := g.s
	d, s1, s2 := g.reg(), g.reg(), g.reg()
	if s.Chained && g.r.Intn(2) == 0 {
		s1 = d
	}
	k := g.r.Intn(s.ALU + s.Shift + s.Mul + s.Div + s.Load + s.Store + s.Amo + s.Branch)
	switch {
	case k < s.ALU:
		switch g.r.Intn(6) {
		case 0:
			fmt.Fprintf(&g.sb, "\tadd  %s, %s, %s\n", d, s1, s2)
		case 1:
			fmt.Fprintf(&g.sb, "\tsub  %s, %s, %s\n", d, s1, s2)
		case 2:
			fmt.Fprintf(&g.sb, "\txor  %s, %s, %s\n", d, s1, s2)
		case 3:
			fmt.Fprintf(&g.sb, "\tor   %s, %s, %s\n", d, s1, s2)
		case 4:
			fmt.Fprintf(&g.sb, "\tand  %s, %s, %s\n", d, s1, s2)
		default:
			fmt.Fprintf(&g.sb, "\taddi %s, %s, %d\n", d, s1, g.r.Intn(4095)-2048)
		}
	case k < s.ALU+s.Shift:
		switch g.r.Intn(3) {
		case 0:
			fmt.Fprintf(&g.sb, "\tslli %s, %s, %d\n", d, s1, g.r.Intn(63)+1)
		case 1:
			fmt.Fprintf(&g.sb, "\tsrli %s, %s, %d\n", d, s1, g.r.Intn(63)+1)
		default:
			fmt.Fprintf(&g.sb, "\tsrai %s, %s, %d\n", d, s1, g.r.Intn(63)+1)
		}
	case k < s.ALU+s.Shift+s.Mul:
		fmt.Fprintf(&g.sb, "\tmul  %s, %s, %s\n", d, s1, s2)
	case k < s.ALU+s.Shift+s.Mul+s.Div:
		switch g.r.Intn(4) {
		case 0:
			fmt.Fprintf(&g.sb, "\tdivu %s, %s, %s\n", d, s1, s2)
		case 1:
			fmt.Fprintf(&g.sb, "\tremu %s, %s, %s\n", d, s1, s2)
		case 2:
			fmt.Fprintf(&g.sb, "\tdiv  %s, %s, %s\n", d, s1, s2)
		default:
			fmt.Fprintf(&g.sb, "\trem  %s, %s, %s\n", d, s1, s2)
		}
	case k < s.ALU+s.Shift+s.Mul+s.Div+s.Load:
		g.memAddr(s1)
		op, off := g.access("ld", "lw", "lhu", "lbu")
		fmt.Fprintf(&g.sb, "\t%s %s, %d(t4)\n", op, d, off)
	case k < s.ALU+s.Shift+s.Mul+s.Div+s.Load+s.Store:
		g.memAddr(s1)
		op, off := g.access("sd", "sw", "sh", "sb")
		fmt.Fprintf(&g.sb, "\t%s %s, %d(t4)\n", op, s2, off)
	case k < s.ALU+s.Shift+s.Mul+s.Div+s.Load+s.Store+s.Amo:
		g.memAddr(s1)
		amo := [...]string{"amoadd.d", "amoxor.d", "amoand.d", "amoor.d", "amoswap.d"}[g.r.Intn(5)]
		fmt.Fprintf(&g.sb, "\t%s %s, %s, (t4)\n", amo, d, s2)
	default:
		g.branch(d, s1, s2)
	}
}

// memAddr computes t4 = arena base + (s1 & AddrMask), 8-byte aligned.
func (g *progGen) memAddr(s1 string) {
	mask := g.s.AddrMask
	if mask == 0 {
		mask = 0x3f8
	}
	fmt.Fprintf(&g.sb, "\tandi t4, %s, %d\n", s1, mask&^7)
	g.sb.WriteString("\tadd  t4, t4, s0\n")
}

// access picks an access width (dword unless MixedWidths) and a matching
// aligned displacement within the dword at t4.
func (g *progGen) access(d, w, h, b string) (op string, off int) {
	if !g.s.MixedWidths {
		return d, 0
	}
	switch g.r.Intn(4) {
	case 0:
		return d, 0
	case 1:
		return w, 4 * g.r.Intn(2)
	case 2:
		return h, 2 * g.r.Intn(4)
	default:
		return b, g.r.Intn(8)
	}
}

// branch emits a data-dependent skip-forward branch over a short body.
func (g *progGen) branch(d, s1, s2 string) {
	l := g.label
	g.label++
	switch g.r.Intn(3) {
	case 0: // parity skip (the historical form)
		fmt.Fprintf(&g.sb, "\tandi t4, %s, 1\n", s1)
		fmt.Fprintf(&g.sb, "\tbeqz t4, rskip%d\n", l)
	case 1: // signed compare
		fmt.Fprintf(&g.sb, "\tblt  %s, %s, rskip%d\n", s1, s2, l)
	default: // unsigned compare
		fmt.Fprintf(&g.sb, "\tbgeu %s, %s, rskip%d\n", s1, s2, l)
	}
	fmt.Fprintf(&g.sb, "\taddi %s, %s, 1\n", d, d)
	fmt.Fprintf(&g.sb, "\txor  %s, %s, %s\n", d, d, s1)
	fmt.Fprintf(&g.sb, "rskip%d:\n", l)
}
