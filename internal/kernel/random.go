package kernel

import (
	"fmt"
	"math/rand"
	"strings"
)

// RandomProgram generates a random but guaranteed-terminating RV64IM
// program for differential testing: the same program must produce the same
// architectural result on the functional model and on both timing
// simulators, no matter how they squash, replay, and refetch.
//
// Structure: a register pool seeded with random constants, an outer
// countdown loop containing random straight-line ALU work, data-dependent
// (but skip-forward-only) branches, and loads/stores confined to a 16 KiB
// arena. The result is a fold of every live register.
func RandomProgram(seed int64) string {
	r := rand.New(rand.NewSource(seed))
	var sb strings.Builder

	// Register pool the generator may freely clobber.
	pool := []string{"a1", "a2", "a3", "a4", "a5", "t0", "t1", "t2", "t3", "s2", "s3", "s4"}
	reg := func() string { return pool[r.Intn(len(pool))] }

	fmt.Fprintf(&sb, "\tli   s0, %d\n", heapA)
	for _, p := range pool {
		fmt.Fprintf(&sb, "\tli   %s, %d\n", p, r.Int63())
	}
	iters := r.Intn(400) + 50
	fmt.Fprintf(&sb, "\tli   s11, %d\nrouter:\n", iters)

	blocks := r.Intn(6) + 2
	label := 0
	for b := 0; b < blocks; b++ {
		n := r.Intn(10) + 3
		for i := 0; i < n; i++ {
			d, s1, s2 := reg(), reg(), reg()
			switch r.Intn(13) {
			case 0:
				fmt.Fprintf(&sb, "\tadd  %s, %s, %s\n", d, s1, s2)
			case 1:
				fmt.Fprintf(&sb, "\tsub  %s, %s, %s\n", d, s1, s2)
			case 2:
				fmt.Fprintf(&sb, "\txor  %s, %s, %s\n", d, s1, s2)
			case 3:
				fmt.Fprintf(&sb, "\tmul  %s, %s, %s\n", d, s1, s2)
			case 4:
				fmt.Fprintf(&sb, "\tslli %s, %s, %d\n", d, s1, r.Intn(63)+1)
			case 5:
				fmt.Fprintf(&sb, "\tsrli %s, %s, %d\n", d, s1, r.Intn(63)+1)
			case 6:
				fmt.Fprintf(&sb, "\tdivu %s, %s, %s\n", d, s1, s2)
			case 7:
				fmt.Fprintf(&sb, "\tremu %s, %s, %s\n", d, s1, s2)
			case 8:
				fmt.Fprintf(&sb, "\taddi %s, %s, %d\n", d, s1, r.Intn(4095)-2048)
			case 9: // store: confine the address to the arena, 8-aligned
				fmt.Fprintf(&sb, "\tandi t4, %s, 0x3f8\n", s1)
				sb.WriteString("\tadd  t4, t4, s0\n")
				fmt.Fprintf(&sb, "\tsd   %s, 0(t4)\n", s2)
			case 10: // load
				fmt.Fprintf(&sb, "\tandi t4, %s, 0x3f8\n", s1)
				sb.WriteString("\tadd  t4, t4, s0\n")
				fmt.Fprintf(&sb, "\tld   %s, 0(t4)\n", d)
			case 12: // atomic read-modify-write in the arena
				fmt.Fprintf(&sb, "\tandi t4, %s, 0x3f8\n", s1)
				sb.WriteString("\tadd  t4, t4, s0\n")
				fmt.Fprintf(&sb, "\tamoadd.d %s, %s, (t4)\n", d, s2)
			case 11: // data-dependent forward skip
				fmt.Fprintf(&sb, "\tandi t4, %s, 1\n", s1)
				fmt.Fprintf(&sb, "\tbeqz t4, rskip%d\n", label)
				fmt.Fprintf(&sb, "\taddi %s, %s, 1\n", d, d)
				fmt.Fprintf(&sb, "\txor  %s, %s, %s\n", d, d, s1)
				fmt.Fprintf(&sb, "rskip%d:\n", label)
				label++
			}
		}
		if r.Intn(3) == 0 {
			sb.WriteString("\tfence\n")
		}
	}
	sb.WriteString("\taddi s11, s11, -1\n\tbnez s11, router\n")

	// Fold everything into a0.
	sb.WriteString("\tli   a0, 0\n")
	for _, p := range pool {
		fmt.Fprintf(&sb, "\txor  a0, a0, %s\n", p)
	}
	sb.WriteString("\tecall\n")
	return sb.String()
}
