package kernel

import "fmt"

// fillSrc generates the common data-generation prologue: fill N dwords at
// `base` with LCG values. Uses s0 (base), s2 (N), t0..t4; leaves t1 = final
// LCG state.
func fillSrc(base uint64, n int) string {
	return fmt.Sprintf(`
	li   s0, %d
	li   s2, %d
	li   t1, %d
	li   t2, %d
	li   t3, %d
	li   t0, 0
fill:
	mul  t1, t1, t2
	add  t1, t1, t3
	slli t4, t0, 3
	add  t4, t4, s0
	sd   t1, 0(t4)
	addi t0, t0, 1
	bne  t0, s2, fill
`, base, n, lcgSeed, lcgMul, lcgInc)
}

// sumSrc generates the common checksum epilogue: a0 = Σ (i+1)*mem[s0+8i]
// over s2 dwords, then halt.
const sumSrc = `
	li   t0, 0
	li   a0, 0
chk:
	slli t4, t0, 3
	add  t4, t4, s0
	ld   t5, 0(t4)
	addi t6, t0, 1
	mul  t5, t5, t6
	add  a0, a0, t5
	addi t0, t0, 1
	bne  t0, s2, chk
	ecall
`

const mergesortN = 1024

// Mergesort is the paper's Fig. 3 microbenchmark: recursive top-down
// merge sort (riscv-tests style). The deep call/return recursion defeats
// the BTB's return prediction, which is what makes its Frontend stalls
// come from PC resteers rather than the I-cache (§III's point).
var Mergesort = register(&Kernel{
	Name:        "mergesort",
	Description: "recursive merge sort of 1024 random dwords (Fig. 3 workload)",
	Category:    CatMicro,
	Expected:    goldenMergesort(mergesortN),
	Source: fillSrc(heapA, mergesortN) + fmt.Sprintf(`
	li   s1, %d            # scratch buffer
	li   sp, %d
	li   a0, 0             # lo
	mv   a1, s2            # hi
	call msort
	j    msortdone

	# msort(a0=lo, a1=hi): sort A[lo,hi) using B as merge scratch
msort:
	sub  t0, a1, a0
	li   t1, 2
	blt  t0, t1, msret
	addi sp, sp, -32
	sd   ra, 0(sp)
	sd   a0, 8(sp)
	sd   a1, 16(sp)
	add  t2, a0, a1
	srli t2, t2, 1
	sd   t2, 24(sp)
	mv   a1, t2
	call msort             # msort(lo, mid)
	ld   a0, 24(sp)
	ld   a1, 16(sp)
	call msort             # msort(mid, hi)
	ld   a0, 8(sp)         # lo
	ld   t2, 24(sp)        # mid
	ld   a1, 16(sp)        # hi
	# merge A[lo,mid) and A[mid,hi) into B[lo,hi)
	mv   t0, a0            # l
	mv   t1, t2            # r
	mv   t4, a0            # out
mloop:
	bge  t4, a1, mcopy
	bge  t0, t2, taker
	bge  t1, a1, takel
	slli t5, t0, 3
	add  t5, t5, s0
	ld   t5, 0(t5)
	slli t6, t1, 3
	add  t6, t6, s0
	ld   t6, 0(t6)
	bleu t5, t6, takelv
	slli a2, t4, 3
	add  a2, a2, s1
	sd   t6, 0(a2)
	addi t1, t1, 1
	addi t4, t4, 1
	j    mloop
takelv:
	slli a2, t4, 3
	add  a2, a2, s1
	sd   t5, 0(a2)
	addi t0, t0, 1
	addi t4, t4, 1
	j    mloop
takel:
	slli t5, t0, 3
	add  t5, t5, s0
	ld   t5, 0(t5)
	slli a2, t4, 3
	add  a2, a2, s1
	sd   t5, 0(a2)
	addi t0, t0, 1
	addi t4, t4, 1
	j    mloop
taker:
	slli t6, t1, 3
	add  t6, t6, s0
	ld   t6, 0(t6)
	slli a2, t4, 3
	add  a2, a2, s1
	sd   t6, 0(a2)
	addi t1, t1, 1
	addi t4, t4, 1
	j    mloop
mcopy:
	mv   t0, a0
mcpl:
	bge  t0, a1, mcdone
	slli t5, t0, 3
	add  t6, t5, s1
	ld   t6, 0(t6)
	add  a2, t5, s0
	sd   t6, 0(a2)
	addi t0, t0, 1
	j    mcpl
mcdone:
	ld   ra, 0(sp)
	addi sp, sp, 32
msret:
	ret
msortdone:
`, heapB, stack) + sumSrc,
})

const qsortN = 1024

// Qsort: iterative quicksort (Lomuto, last-element pivot). The pivot
// comparison on random data mispredicts ~50% of the time, making this the
// paper's Bad-Speculation-dominated Rocket benchmark (§V-A).
var Qsort = register(&Kernel{
	Name:        "qsort",
	Description: "quicksort of 1024 random dwords; unpredictable pivot branch",
	Category:    CatMicro,
	Expected:    goldenQsort(qsortN),
	Source: fillSrc(heapA, qsortN) + fmt.Sprintf(`
	li   sp, %d
	li   t0, 0
	li   t1, %d
	addi sp, sp, -16
	sd   t0, 0(sp)
	sd   t1, 8(sp)
qloop:
	li   t5, %d
	beq  sp, t5, qdone
	ld   t0, 0(sp)         # lo
	ld   t1, 8(sp)         # hi
	addi sp, sp, 16
	bge  t0, t1, qloop
	slli t2, t1, 3
	add  t2, t2, s0
	ld   t2, 0(t2)         # pivot
	addi t3, t0, -1        # i
	mv   t4, t0            # j
part:
	bge  t4, t1, partdone
	slli t5, t4, 3
	add  t5, t5, s0
	ld   t6, 0(t5)
	bgeu t6, t2, noswap    # unpredictable on random data
	addi t3, t3, 1
	slli a2, t3, 3
	add  a2, a2, s0
	ld   a3, 0(a2)
	sd   t6, 0(a2)
	sd   a3, 0(t5)
noswap:
	addi t4, t4, 1
	j    part
partdone:
	addi t3, t3, 1         # p
	slli a2, t3, 3
	add  a2, a2, s0
	ld   a3, 0(a2)
	slli a4, t1, 3
	add  a4, a4, s0
	ld   a5, 0(a4)
	sd   a5, 0(a2)
	sd   a3, 0(a4)
	addi a2, t3, -1
	addi sp, sp, -16
	sd   t0, 0(sp)
	sd   a2, 8(sp)
	addi a3, t3, 1
	addi sp, sp, -16
	sd   a3, 0(sp)
	sd   t1, 8(sp)
	j    qloop
qdone:
`, stack, qsortN-1, stack) + sumSrc,
})

const rsortN = 2048

// Rsort: LSD radix sort (8 bits/pass, 4 passes over 32-bit keys). Control
// flow is loop-centric and fully predictable — the near-ideal-IPC Rocket
// benchmark (§V-A).
var Rsort = register(&Kernel{
	Name:        "rsort",
	Description: "radix sort of 2048 32-bit keys; loop-centric, near-ideal IPC",
	Category:    CatMicro,
	Expected:    goldenRsort(rsortN),
	Source: fillSrc(heapA, rsortN) + fmt.Sprintf(`
	# mask keys to 32 bits so 4 passes fully sort
	li   t0, 0
mask:
	slli t4, t0, 3
	add  t4, t4, s0
	lwu  t5, 0(t4)
	sd   t5, 0(t4)
	addi t0, t0, 1
	bne  t0, s2, mask

	li   s1, %d            # dst buffer
	li   s3, %d            # count table (256 dwords)
	li   s4, 0             # pass
pass:
	# clear counts
	li   t0, 0
clr:
	slli t4, t0, 3
	add  t4, t4, s3
	sd   x0, 0(t4)
	addi t0, t0, 1
	li   t5, 256
	bne  t0, t5, clr
	# histogram
	slli s5, s4, 3         # shift = 8*pass
	li   t0, 0
hist:
	slli t4, t0, 3
	add  t4, t4, s0
	ld   t5, 0(t4)
	srl  t5, t5, s5
	andi t5, t5, 255
	slli t5, t5, 3
	add  t5, t5, s3
	ld   t6, 0(t5)
	addi t6, t6, 1
	sd   t6, 0(t5)
	addi t0, t0, 1
	bne  t0, s2, hist
	# inclusive prefix sums
	li   t0, 1
pfx:
	slli t4, t0, 3
	add  t4, t4, s3
	ld   t5, 0(t4)
	ld   t6, -8(t4)
	add  t5, t5, t6
	sd   t5, 0(t4)
	addi t0, t0, 1
	li   t5, 256
	bne  t0, t5, pfx
	# stable scatter, high index first
	mv   t0, s2
scat:
	addi t0, t0, -1
	slli t4, t0, 3
	add  t4, t4, s0
	ld   t5, 0(t4)         # key
	srl  t6, t5, s5
	andi t6, t6, 255
	slli t6, t6, 3
	add  t6, t6, s3
	ld   a2, 0(t6)
	addi a2, a2, -1
	sd   a2, 0(t6)
	slli a3, a2, 3
	add  a3, a3, s1
	sd   t5, 0(a3)
	bnez t0, scat
	# swap buffers
	mv   t4, s0
	mv   s0, s1
	mv   s1, t4
	addi s4, s4, 1
	li   t5, 4
	bne  s4, t5, pass
`, heapB, heapC) + sumSrc,
})

const memcpyDwords = 16384 // 128 KiB

// Memcpy: 128 KiB block copy, unrolled ×4 — the paper's most Backend/Mem
// Bound microbenchmark on both cores.
var Memcpy = register(&Kernel{
	Name:        "memcpy",
	Description: "128 KiB dword copy, unrolled x4; memory bound",
	Category:    CatMicro,
	Expected:    goldenMemcpy(memcpyDwords),
	Source: fillSrc(heapA, memcpyDwords) + fmt.Sprintf(`
	li   s1, %d            # dst
	li   t0, 0
cpy:
	slli t4, t0, 3
	add  t5, t4, s0
	add  t6, t4, s1
	ld   a2, 0(t5)
	ld   a3, 8(t5)
	ld   a4, 16(t5)
	ld   a5, 24(t5)
	sd   a2, 0(t6)
	sd   a3, 8(t6)
	sd   a4, 16(t6)
	sd   a5, 24(t6)
	addi t0, t0, 4
	bne  t0, s2, cpy
	mv   s0, s1            # checksum the destination
`, heapB) + sumSrc,
})

const mmN = 40

// MM: dense int64 matrix multiply (i-k-j order), 40×40.
var MM = register(&Kernel{
	Name:        "mm",
	Description: "40x40 int64 matrix multiply (i-k-j)",
	Category:    CatMicro,
	Expected:    goldenMM(mmN),
	Source: fillSrc(heapA, 2*mmN*mmN) + fmt.Sprintf(`
	# A at heapA, B at heapA + N*N*8 (both filled above), C at heapB
	li   s1, %d            # C
	li   s3, %d            # N
	# clear C
	li   t0, 0
	mul  t5, s3, s3
clrc:
	slli t4, t0, 3
	add  t4, t4, s1
	sd   x0, 0(t4)
	addi t0, t0, 1
	bne  t0, t5, clrc
	# B base
	mul  t5, s3, s3
	slli t5, t5, 3
	add  s4, s0, t5        # B = A + N*N*8
	li   a2, 0             # i
iloop:
	li   a3, 0             # k
kloop:
	# a = A[i][k]
	mul  t4, a2, s3
	add  t4, t4, a3
	slli t4, t4, 3
	add  t4, t4, s0
	ld   a6, 0(t4)
	# row pointers
	mul  t4, a3, s3
	slli t4, t4, 3
	add  t4, t4, s4        # &B[k][0]
	mul  t5, a2, s3
	slli t5, t5, 3
	add  t5, t5, s1        # &C[i][0]
	li   a4, 0             # j
jloop:
	ld   t6, 0(t4)
	ld   a5, 0(t5)
	mul  t6, t6, a6
	add  a5, a5, t6
	sd   a5, 0(t5)
	addi t4, t4, 8
	addi t5, t5, 8
	addi a4, a4, 1
	bne  a4, s3, jloop
	addi a3, a3, 1
	bne  a3, s3, kloop
	addi a2, a2, 1
	bne  a2, s3, iloop
	# checksum C
	mv   s0, s1
	mul  s2, s3, s3
`, heapB, mmN) + sumSrc,
})

const vvaddN = 8192

// VVadd: element-wise vector add (riscv-tests vvadd).
var VVadd = register(&Kernel{
	Name:        "vvadd",
	Description: "8192-element vector add",
	Category:    CatMicro,
	Expected:    goldenVVadd(vvaddN),
	Source: fillSrc(heapA, 2*vvaddN) + fmt.Sprintf(`
	# a at heapA, b at heapA+N*8, c at heapB
	li   s1, %d
	li   s3, %d            # N
	slli t5, s3, 3
	add  s4, s0, t5        # b
	li   t0, 0
vadd:
	slli t4, t0, 3
	add  t5, t4, s0
	ld   t6, 0(t5)
	add  a2, t4, s4
	ld   a3, 0(a2)
	add  t6, t6, a3
	add  a4, t4, s1
	sd   t6, 0(a4)
	addi t0, t0, 1
	bne  t0, s3, vadd
	mv   s0, s1
	mv   s2, s3
`, heapB, vvaddN) + sumSrc,
})

const towersDepth = 16

// Towers: Towers of Hanoi (riscv-tests towers) — deep predictable
// recursion, call/return heavy.
var Towers = register(&Kernel{
	Name:        "towers",
	Description: "towers of hanoi, depth 16; call/return heavy",
	Category:    CatMicro,
	Expected:    1<<towersDepth - 1,
	Source: fmt.Sprintf(`
	li   sp, %d
	li   a0, %d
	li   s1, 0
	call hanoi
	mv   a0, s1
	ecall
hanoi:
	li   t0, 1
	beq  a0, t0, hbase
	addi sp, sp, -16
	sd   ra, 0(sp)
	sd   a0, 8(sp)
	addi a0, a0, -1
	call hanoi
	addi s1, s1, 1
	ld   a0, 8(sp)
	addi a0, a0, -1
	call hanoi
	ld   ra, 0(sp)
	addi sp, sp, 16
	ret
hbase:
	addi s1, s1, 1
	ret
`, stack, towersDepth),
})

const medianN = 4096

// Median: 3-tap median filter (riscv-tests median) — short data-dependent
// compare ladders.
var Median = register(&Kernel{
	Name:        "median",
	Description: "3-tap median filter over 4096 dwords",
	Category:    CatMicro,
	Expected:    goldenMedian(medianN),
	Source: fillSrc(heapA, medianN) + fmt.Sprintf(`
	li   s1, %d            # out
	li   t0, 1
	addi s3, s2, -1
med:
	slli t4, t0, 3
	add  t4, t4, s0
	ld   a2, -8(t4)        # x
	ld   a3, 0(t4)         # y
	ld   a4, 8(t4)         # z
	bleu a2, a3, m1
	mv   t5, a2
	mv   a2, a3
	mv   a3, t5
m1:
	bleu a3, a4, m2
	mv   t5, a3
	mv   a3, a4
	mv   a4, t5
m2:
	bleu a2, a3, m3
	mv   a3, a2
m3:
	slli t5, t0, 3
	add  t5, t5, s1
	sd   a3, 0(t5)
	addi t0, t0, 1
	bne  t0, s3, med
	# checksum out[1..N-2]
	li   t0, 1
	li   a0, 0
mchk:
	slli t4, t0, 3
	add  t4, t4, s1
	ld   t5, 0(t4)
	addi t6, t0, 1
	mul  t5, t5, t6
	add  a0, a0, t5
	addi t0, t0, 1
	bne  t0, s3, mchk
	ecall
`, heapB),
})

const multiplyN = 512

// Multiply: software shift-add multiply (riscv-tests multiply) — the inner
// loop branches on data bits, mispredicting heavily.
var Multiply = register(&Kernel{
	Name:        "multiply",
	Description: "software shift-add multiply, data-dependent branches",
	Category:    CatMicro,
	Expected:    goldenMultiply(multiplyN),
	Source: fillSrc(heapA, 2*multiplyN) + fmt.Sprintf(`
	li   s3, %d            # N
	slli t5, s3, 3
	add  s4, s0, t5        # b array
	li   t0, 0             # i
	li   a0, 0             # checksum
mulloop:
	slli t4, t0, 3
	add  t5, t4, s0
	ld   a2, 0(t5)
	add  t6, t4, s4
	ld   a3, 0(t6)
	# 16-bit operands
	li   t5, 0xffff
	and  a2, a2, t5
	and  a3, a3, t5
	# softmul: a4 = a2*a3 by shift-add
	li   a4, 0
smul:
	beqz a3, smuldone
	andi t6, a3, 1
	beqz t6, noadd         # data-dependent
	add  a4, a4, a2
noadd:
	slli a2, a2, 1
	srli a3, a3, 1
	j    smul
smuldone:
	add  a0, a0, a4
	addi t0, t0, 1
	bne  t0, s3, mulloop
	ecall
`, multiplyN),
})

const (
	spmvRows = 256
	spmvNNZ  = 8
	spmvCols = 4096
)

// Spmv: sparse matrix-vector multiply in ELL format (riscv-tests spmv
// flavor) — irregular gathers over a vector that exactly fills the L1D.
var Spmv = register(&Kernel{
	Name:        "spmv",
	Description: "256x4096 sparse matrix-vector multiply; irregular gathers",
	Category:    CatMicro,
	Expected:    goldenSpmv(),
	Source: fillSrc(heapA, spmvCols) + fmt.Sprintf(`
	# cols at heapB (R*NNZ dwords), vals at heapB + R*NNZ*8
	li   s3, %d
	li   s4, %d            # R*NNZ entries
	li   a6, %d            # column mask
	li   t0, 0
sbuild:
	mul  t1, t1, t2
	add  t1, t1, t3
	and  t4, t1, a6        # column index
	slli t5, t0, 3
	add  t5, t5, s3
	sd   t4, 0(t5)
	mul  t1, t1, t2
	add  t1, t1, t3
	li   t6, %d
	add  t6, t6, t5
	sd   t1, 0(t6)         # value
	addi t0, t0, 1
	bne  t0, s4, sbuild
	# y[r] = sum vals[r][j] * x[cols[r][j]]
	li   s5, %d            # y
	li   t0, 0
	li   s6, %d            # rows
rloop:
	li   a2, 0
	slli t4, t0, 6         # r * NNZ * 8 bytes
	add  t5, t4, s3
	li   a3, %d
nnz:
	ld   t6, 0(t5)
	slli t6, t6, 3
	add  t6, t6, s0
	ld   t6, 0(t6)         # x[col] — irregular gather
	li   a4, %d
	add  a4, a4, t5
	ld   a4, 0(a4)
	mul  t6, t6, a4
	add  a2, a2, t6
	addi t5, t5, 8
	addi a3, a3, -1
	bnez a3, nnz
	slli a5, t0, 3
	add  a5, a5, s5
	sd   a2, 0(a5)
	addi t0, t0, 1
	bne  t0, s6, rloop
	mv   s0, s5
	li   s2, %d
`, heapB, spmvRows*spmvNNZ, spmvCols-1, spmvRows*spmvNNZ*8,
		heapC, spmvRows, spmvNNZ, spmvRows*spmvNNZ*8, spmvRows) + sumSrc,
})

const (
	bfsVerts = 512
	bfsDeg   = 4
	bfsReps  = 30
)

// BFS: breadth-first search over a random regular digraph — frontier
// queue churn, data-dependent visited branches, irregular adjacency
// gathers.
var BFS = register(&Kernel{
	Name:        "bfs",
	Description: "BFS over a 512-vertex random digraph, 30 repetitions",
	Category:    CatMicro,
	Expected:    goldenBFS(),
	Source: fmt.Sprintf(`
	# adjacency at heapA (V*DEG dwords), visited at heapB (V dwords),
	# queue at heapC (V dwords)
	li   s0, %d
	li   s1, %d
	li   s3, %d
	li   t1, %d
	li   t2, %d
	li   t3, %d
	# build edges: adj[i] = lcg mod V (V is a power of two)
	li   t0, 0
	li   t5, %d            # V*DEG
ebuild:
	mul  t1, t1, t2
	add  t1, t1, t3
	srli t4, t1, 13
	andi t4, t4, %d        # vertex mask (V-1)
	slli t6, t0, 3
	add  t6, t6, s0
	sd   t4, 0(t6)
	addi t0, t0, 1
	bne  t0, t5, ebuild

	li   s10, 0            # repetition counter
breps:
	# clear visited
	li   t0, 0
	li   t5, %d            # V
bclr:
	slli t4, t0, 3
	add  t4, t4, s1
	sd   x0, 0(t4)
	addi t0, t0, 1
	bne  t0, t5, bclr
	# seed: visited[0]=1, queue[0]=0
	li   t4, 1
	sd   t4, 0(s1)
	sd   x0, 0(s3)
	li   s4, 0             # head
	li   s5, 1             # tail
bloop:
	bge  s4, s5, bdone
	slli t4, s4, 3
	add  t4, t4, s3
	ld   t6, 0(t4)         # v = queue[head]
	addi s4, s4, 1
	slli a2, t6, 3
	add  a2, a2, s1
	ld   a3, 0(a2)         # dist = visited[v]
	slli t4, t6, 5         # v * DEG * 8
	add  t4, t4, s0        # &adj[v*DEG]
	li   a4, %d            # DEG
bneigh:
	ld   a5, 0(t4)         # u
	slli a6, a5, 3
	add  a6, a6, s1
	ld   a7, 0(a6)         # visited[u]
	bnez a7, bseen         # data-dependent
	addi a7, a3, 1
	sd   a7, 0(a6)
	slli a7, s5, 3
	add  a7, a7, s3
	sd   a5, 0(a7)         # enqueue u
	addi s5, s5, 1
bseen:
	addi t4, t4, 8
	addi a4, a4, -1
	bnez a4, bneigh
	j    bloop
bdone:
	addi s10, s10, 1
	li   t5, %d
	bne  s10, t5, breps
	# checksum visited levels
	mv   s0, s1
	li   s2, %d
`, heapA, heapB, heapC, lcgSeed, lcgMul, lcgInc,
		bfsVerts*bfsDeg, bfsVerts-1, bfsVerts, bfsDeg, bfsReps, bfsVerts) + sumSrc,
})

const histN = 8192

// Histogram: byte-value histogram built with amoadd.d — the atomic
// read-modify-write workload (Rocket's Basic event set includes an Atomic
// event that plain RV64IM code never raises).
var Histogram = register(&Kernel{
	Name:        "histogram",
	Description: "256-bin histogram via amoadd.d over 8192 random bytes",
	Category:    CatMicro,
	Expected:    goldenHistogram(),
	Source: fillSrc(heapA, histN/8) + fmt.Sprintf(`
	li   s1, %d            # bins (256 dwords)
	# clear bins
	li   t0, 0
hclr:
	slli t4, t0, 3
	add  t4, t4, s1
	sd   x0, 0(t4)
	addi t0, t0, 1
	li   t5, 256
	bne  t0, t5, hclr
	# count bytes
	li   t0, 0
	li   t5, %d            # bytes
	li   t6, 1
hcnt:
	add  t4, t0, s0
	lbu  a2, 0(t4)
	slli a2, a2, 3
	add  a2, a2, s1
	amoadd.d a3, t6, (a2)  # bins[b]++ returns old count
	add  a4, a4, a3        # fold old counts into a side checksum
	addi t0, t0, 1
	bne  t0, t5, hcnt
	# checksum bins, then mix in the side sum
	mv   s0, s1
	li   s2, 256
	li   t0, 0
	li   a0, 0
hchk:
	slli t4, t0, 3
	add  t4, t4, s0
	ld   t5, 0(t4)
	addi t6, t0, 1
	mul  t5, t5, t6
	add  a0, a0, t5
	addi t0, t0, 1
	bne  t0, s2, hchk
	add  a0, a0, a4
	ecall
`, heapB, histN),
})
