//go:build !race

package kernel_test

const raceDetector = false
