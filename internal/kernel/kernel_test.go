package kernel

import (
	"testing"

	"icicle/internal/isa"
	"icicle/internal/mem"
)

// runFunctional executes a kernel on the bare functional model (no timing)
// and returns the exit checksum.
func runFunctional(t *testing.T, k *Kernel) uint64 {
	t.Helper()
	prog, err := k.Program()
	if err != nil {
		t.Fatalf("%s: %v", k.Name, err)
	}
	m := mem.NewSparse()
	prog.LoadInto(m)
	c := isa.NewCPU(m, prog.Entry)
	if _, err := c.Run(200_000_000); err != nil {
		t.Fatalf("%s: %v", k.Name, err)
	}
	return c.ExitCode
}

func TestKernelChecksums(t *testing.T) {
	for _, k := range All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			got := runFunctional(t, k)
			if k.Expected == 0 {
				t.Logf("%s: checksum %#x (unchecked)", k.Name, got)
				return
			}
			if got != k.Expected {
				t.Fatalf("%s: checksum = %#x, want %#x", k.Name, got, k.Expected)
			}
		})
	}
}

func TestRegistry(t *testing.T) {
	if _, err := ByName("mergesort"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nonexistent"); err == nil {
		t.Fatal("ByName(nonexistent) succeeded")
	}
	if len(ByCategory(CatMicro)) < 5 {
		t.Fatalf("too few micro kernels: %d", len(ByCategory(CatMicro)))
	}
	// All() is sorted and unique.
	all := All()
	for i := 1; i < len(all); i++ {
		if all[i-1].Name >= all[i].Name {
			t.Fatalf("All() not sorted at %d: %s >= %s", i, all[i-1].Name, all[i].Name)
		}
	}
}

func TestSortKernelsAgree(t *testing.T) {
	// mergesort and qsort sort the same data; their checksums must match.
	if Mergesort.Expected != Qsort.Expected {
		t.Fatalf("mergesort %#x != qsort %#x", Mergesort.Expected, Qsort.Expected)
	}
}
