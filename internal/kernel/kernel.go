// Package kernel provides the workload suite: riscv-tests-style
// microbenchmarks (mergesort, qsort, rsort, memcpy, mm, …), CoreMark- and
// Dhrystone-like kernels for the compiler case studies, the brmiss /
// brmiss_inv branch-inversion pair, and behaviour-matched synthetic proxies
// for the ten SPEC CPU2017 intrate benchmarks.
//
// Every kernel is self-checking: it leaves a checksum in a0 before ecall,
// and a pure-Go golden model (golden.go) computes the expected value, so
// the whole simulation stack is validated end to end.
package kernel

import (
	"fmt"
	"sort"
	"sync"

	"icicle/internal/asm"
)

// Category groups kernels for the benchmark harness.
type Category string

const (
	CatMicro     Category = "micro"
	CatSPEC      Category = "spec"
	CatCaseStudy Category = "case-study"
)

// Kernel is one runnable workload.
type Kernel struct {
	Name        string
	Description string
	Category    Category
	Source      string
	// Expected is the checksum the kernel must leave in a0 (verified by
	// tests against the golden model). Zero means "not checked".
	Expected uint64

	once sync.Once
	prog *asm.Program
	err  error
}

// Program assembles the kernel (cached).
func (k *Kernel) Program() (*asm.Program, error) {
	k.once.Do(func() { k.prog, k.err = asm.Assemble(k.Source) })
	if k.err != nil {
		return nil, fmt.Errorf("kernel %s: %w", k.Name, k.err)
	}
	return k.prog, nil
}

// MustProgram is Program that panics on assembly errors.
func (k *Kernel) MustProgram() *asm.Program {
	p, err := k.Program()
	if err != nil {
		panic(err)
	}
	return p
}

var registry = map[string]*Kernel{}

func register(k *Kernel) *Kernel {
	if _, dup := registry[k.Name]; dup {
		panic("kernel: duplicate " + k.Name)
	}
	registry[k.Name] = k
	return k
}

// ByName looks a kernel up.
func ByName(name string) (*Kernel, error) {
	k, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("kernel: unknown kernel %q", name)
	}
	return k, nil
}

// All returns every kernel, sorted by name.
func All() []*Kernel {
	out := make([]*Kernel, 0, len(registry))
	for _, k := range registry {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ByCategory returns the kernels in one category, sorted by name.
func ByCategory(c Category) []*Kernel {
	var out []*Kernel
	for _, k := range All() {
		if k.Category == c {
			out = append(out, k)
		}
	}
	return out
}

// Memory layout shared by all kernels: code at the assembler default text
// base, two heap arenas, and a stack well away from both.
const (
	heapA = 0x40_0000
	heapB = 0x48_0000
	heapC = 0x50_0000
	stack = 0x30_0000
)

// LCG constants (Knuth's MMIX) used by every kernel's data generator; the
// golden model mirrors them exactly.
const (
	lcgMul  = 6364136223846793005
	lcgInc  = 1442695040888963407
	lcgSeed = 123456789
)

func lcgNext(x uint64) uint64 { return x*lcgMul + lcgInc }
