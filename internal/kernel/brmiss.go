package kernel

import (
	"fmt"
	"strings"
)

// Branch-inversion case study (Rocket CS2 / BOOM CS, Fig. 7 d/n): a
// straight-line chain of branch blocks executed once, so no predictor can
// learn the pattern.
//
//   - brmiss: every branch is taken (beq x0,x0). Rocket's BHT cold-predicts
//     not-taken → every branch mispredicts. BOOM's TAGE base cold-predicts
//     taken → direction is right, but the (cold) BTB misses every target,
//     so the cost appears as frontend resteers instead.
//   - brmiss_inv: every branch is not-taken (bne x0,x0) — the inverted
//     build. Rocket predicts it perfectly; BOOM mispredicts every one.
//
// 500 blocks < 512 BHT entries, so every branch gets its own (cold)
// counter and the "always mispredicted" property holds without aliasing.
const brBlocks = 500

func brmissSource(inverted bool) string {
	op := "beq"
	if inverted {
		op = "bne"
	}
	var sb strings.Builder
	sb.WriteString("\tli a0, 0\n\tli a1, 0\n")
	for i := 0; i < brBlocks; i++ {
		fmt.Fprintf(&sb, "\t%s x0, x0, bm%d\n", op, i)
		sb.WriteString("\taddi a0, a0, 1\n") // skipped when taken
		fmt.Fprintf(&sb, "bm%d:\n", i)
		sb.WriteString("\taddi a1, a1, 1\n")
	}
	sb.WriteString("\tadd a0, a0, a1\n\tecall\n")
	return sb.String()
}

// Brmiss is the always-taken chain.
var Brmiss = register(&Kernel{
	Name:        "brmiss",
	Description: "straight-line chain of 500 taken branches (cold-predictor torture)",
	Category:    CatCaseStudy,
	Expected:    brBlocks, // a0=0 (all skipped) + a1=blocks
	Source:      brmissSource(false),
})

// BrmissInv is the inverted (never-taken) chain.
var BrmissInv = register(&Kernel{
	Name:        "brmiss_inv",
	Description: "inverted chain: 500 never-taken branches",
	Category:    CatCaseStudy,
	Expected:    2 * brBlocks, // both addi chains execute
	Source:      brmissSource(true),
})

// Fencemix interleaves unpredictable branches with fence.i instructions:
// a fence.i immediately after a misprediction produces the paper's
// longest Recovering sequences (Fig. 8b's tail), since the pipeline
// flushes back-to-back and the refetch misses the freshly-flushed I$.
const fencemixIters = 400

var Fencemix = register(&Kernel{
	Name:        "fencemix",
	Description: "random branches with periodic fence.i (Fig. 8b tail workload)",
	Category:    CatCaseStudy,
	Expected:    goldenFencemix(),
	Source: fmt.Sprintf(`
	li   s6, %d
	li   s7, %d
	li   s8, %d
	li   s10, 0
	li   s11, %d
	li   a0, 0
fmloop:
	mul  s6, s6, s7
	add  s6, s6, s8
	srli t5, s6, 33
	andi t5, t5, 1
	beqz t5, fmskip        # ~50/50 data-dependent
	addi a0, a0, 3
fmskip:
	addi a0, a0, 1
	andi t6, s10, 7
	bnez t6, fmnofence     # every 8th iteration
	fence.i
fmnofence:
	addi s10, s10, 1
	bne  s10, s11, fmloop
	ecall
`, lcgSeed, lcgMul, lcgInc, fencemixIters),
})

func goldenFencemix() uint64 {
	x := uint64(lcgSeed)
	var acc uint64
	for i := 0; i < fencemixIters; i++ {
		x = lcgNext(x)
		if x>>33&1 != 0 {
			acc += 3
		}
		acc++
	}
	return acc
}
