//go:build race

package kernel_test

// raceDetector trims the differential seed sweep: the race detector costs
// ~10x per simulated cycle, and 20 seeds already cover every strategy
// four times over.
const raceDetector = true
