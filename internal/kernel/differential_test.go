package kernel_test

import (
	"fmt"
	"testing"

	"icicle/internal/asm"
	"icicle/internal/boom"
	"icicle/internal/check"
	"icicle/internal/kernel"
	"icicle/internal/rocket"
	"icicle/internal/sim"
)

// TestDifferentialRandomPrograms is the strongest correctness check in the
// repository, now run through the internal/check engine: for randomly
// generated (terminating) programs from every generation strategy, the
// functional model, the Rocket timing model, and all five BOOM sizes must
// produce the same architectural result and instruction count — and every
// metamorphic invariant (TMA slot conservation, Reset-reuse determinism,
// counter-vs-trace consistency) must hold. Seeds fan out across workers
// while each seed's oracle runs its models serially.
func TestDifferentialRandomPrograms(t *testing.T) {
	seeds := 100
	if raceDetector {
		seeds = 20
	}
	if testing.Short() {
		seeds = 10
	}
	eng := check.New(check.WithWorkers(1))
	type job struct {
		strat kernel.Strategy
		seed  int64
	}
	jobs := make([]job, seeds)
	for i := range jobs {
		jobs[i] = job{kernel.Strategies[i%len(kernel.Strategies)], int64(i)}
	}
	verdicts, err := sim.Map(0, jobs, func(_ int, j job) (string, error) {
		rep, err := eng.CheckSource(j.strat.Program(j.seed))
		if err != nil {
			return "", fmt.Errorf("%s seed %d: %w", j.strat.Name, j.seed, err)
		}
		if rep.Failed() {
			return fmt.Sprintf("%s seed %d:\n%s", j.strat.Name, j.seed, rep), nil
		}
		return "", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	failed := 0
	for _, v := range verdicts {
		if v == "" {
			continue
		}
		if failed++; failed <= 3 {
			t.Errorf("%s", v)
		}
	}
	if failed > 3 {
		t.Errorf("... and %d more failing seeds", failed-3)
	}
}

// TestDifferentialTimingSanity checks cross-model timing invariants on the
// same random programs: cycle counts are positive, at-or-above the
// instruction count divided by the width, and BOOM is never slower than
// 20x Rocket (a gross-misbehaviour tripwire).
func TestDifferentialTimingSanity(t *testing.T) {
	for seed := int64(100); seed < 108; seed++ {
		prog, err := asm.Assemble(kernel.RandomProgram(seed))
		if err != nil {
			t.Fatal(err)
		}
		rres, err := rocket.New(rocket.DefaultConfig(), prog).Run()
		if err != nil {
			t.Fatal(err)
		}
		bres, err := boom.MustNew(boom.NewConfig(boom.Large), prog).Run()
		if err != nil {
			t.Fatal(err)
		}
		if rres.Cycles < rres.Insts {
			t.Fatalf("seed %d: rocket above 1 IPC", seed)
		}
		if bres.Cycles < bres.Insts/3 {
			t.Fatalf("seed %d: BOOM above W_C IPC", seed)
		}
		if bres.Cycles > rres.Cycles*20 {
			t.Fatalf("seed %d: BOOM (%d) wildly slower than Rocket (%d)",
				seed, bres.Cycles, rres.Cycles)
		}
	}
}
