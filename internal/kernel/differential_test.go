package kernel_test

import (
	"testing"

	"icicle/internal/asm"
	"icicle/internal/boom"
	"icicle/internal/isa"
	"icicle/internal/kernel"
	"icicle/internal/mem"
	"icicle/internal/rocket"
)

// TestDifferentialRandomPrograms is the strongest correctness check in the
// repository: for randomly generated (terminating) programs, the
// functional model, the Rocket timing model, and two BOOM sizes must all
// produce the same architectural result and instruction count, no matter
// how the timing models squash, replay, poison, and refetch.
func TestDifferentialRandomPrograms(t *testing.T) {
	seeds := 20
	if testing.Short() {
		seeds = 5
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		src := kernel.RandomProgram(seed)
		prog, err := asm.Assemble(src)
		if err != nil {
			t.Fatalf("seed %d: assemble: %v\n%s", seed, err, src)
		}

		// Functional reference.
		m := mem.NewSparse()
		prog.LoadInto(m)
		ref := isa.NewCPU(m, prog.Entry)
		if _, err := ref.Run(50_000_000); err != nil {
			t.Fatalf("seed %d: functional: %v", seed, err)
		}

		// Rocket.
		rres, err := rocket.New(rocket.DefaultConfig(), prog).Run()
		if err != nil {
			t.Fatalf("seed %d: rocket: %v", seed, err)
		}
		if rres.Exit != ref.ExitCode {
			t.Fatalf("seed %d: rocket exit %#x != functional %#x", seed, rres.Exit, ref.ExitCode)
		}
		if rres.Insts != ref.InstRet {
			t.Fatalf("seed %d: rocket retired %d != functional %d", seed, rres.Insts, ref.InstRet)
		}

		// BOOM at two sizes (different flush/replay behaviour).
		for _, size := range []boom.Size{boom.Small, boom.Large} {
			bres, err := boom.MustNew(boom.NewConfig(size), prog).Run()
			if err != nil {
				t.Fatalf("seed %d: %v: %v", seed, size, err)
			}
			if bres.Exit != ref.ExitCode {
				t.Fatalf("seed %d: %v exit %#x != functional %#x", seed, size, bres.Exit, ref.ExitCode)
			}
			if bres.Insts != ref.InstRet {
				t.Fatalf("seed %d: %v retired %d != functional %d", seed, size, bres.Insts, ref.InstRet)
			}
		}
	}
}

// TestDifferentialTimingSanity checks cross-model timing invariants on the
// same random programs: cycle counts are positive, at-or-above the
// instruction count divided by the width, and BOOM is never slower than
// 20x Rocket (a gross-misbehaviour tripwire).
func TestDifferentialTimingSanity(t *testing.T) {
	for seed := int64(100); seed < 108; seed++ {
		prog, err := asm.Assemble(kernel.RandomProgram(seed))
		if err != nil {
			t.Fatal(err)
		}
		rres, err := rocket.New(rocket.DefaultConfig(), prog).Run()
		if err != nil {
			t.Fatal(err)
		}
		bres, err := boom.MustNew(boom.NewConfig(boom.Large), prog).Run()
		if err != nil {
			t.Fatal(err)
		}
		if rres.Cycles < rres.Insts {
			t.Fatalf("seed %d: rocket above 1 IPC", seed)
		}
		if bres.Cycles < bres.Insts/3 {
			t.Fatalf("seed %d: BOOM above W_C IPC", seed)
		}
		if bres.Cycles > rres.Cycles*20 {
			t.Fatalf("seed %d: BOOM (%d) wildly slower than Rocket (%d)",
				seed, bres.Cycles, rres.Cycles)
		}
	}
}
