package kernel

import "sort"

// The golden model: pure-Go reference implementations mirroring each
// kernel's computation bit-for-bit. Each kernel's Expected checksum is
// computed here at package init, so a simulator that executes a kernel
// incorrectly fails loudly in tests.

// lcgFill reproduces the fillSrc prologue.
func lcgFill(n int) []uint64 {
	a := make([]uint64, n)
	x := uint64(lcgSeed)
	for i := range a {
		x = lcgNext(x)
		a[i] = x
	}
	return a
}

// weightedSum reproduces the sumSrc epilogue: Σ (i+1)*a[i] mod 2^64.
func weightedSum(a []uint64) uint64 {
	var s uint64
	for i, v := range a {
		s += v * uint64(i+1)
	}
	return s
}

func goldenMergesort(n int) uint64 {
	a := lcgFill(n)
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
	return weightedSum(a)
}

func goldenQsort(n int) uint64 {
	// Same sorted result as mergesort, but keep a separate function: the
	// kernels sort with different algorithms and must agree.
	return goldenMergesort(n)
}

func goldenRsort(n int) uint64 {
	a := lcgFill(n)
	for i := range a {
		a[i] &= 0xffffffff
	}
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
	return weightedSum(a)
}

func goldenMemcpy(n int) uint64 {
	return weightedSum(lcgFill(n))
}

func goldenMM(n int) uint64 {
	data := lcgFill(2 * n * n)
	a, b := data[:n*n], data[n*n:]
	c := make([]uint64, n*n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			av := a[i*n+k]
			for j := 0; j < n; j++ {
				c[i*n+j] += av * b[k*n+j]
			}
		}
	}
	return weightedSum(c)
}

func goldenVVadd(n int) uint64 {
	data := lcgFill(2 * n)
	a, b := data[:n], data[n:]
	c := make([]uint64, n)
	for i := range c {
		c[i] = a[i] + b[i]
	}
	return weightedSum(c)
}

func goldenMedian(n int) uint64 {
	a := lcgFill(n)
	out := make([]uint64, n)
	for i := 1; i < n-1; i++ {
		x, y, z := a[i-1], a[i], a[i+1]
		if x > y {
			x, y = y, x
		}
		if y > z {
			y = z
		}
		if x > y {
			y = x
		}
		out[i] = y
	}
	// The kernel checksums out[1..n-2] with weight i+1.
	var s uint64
	for i := 1; i < n-1; i++ {
		s += out[i] * uint64(i+1)
	}
	return s
}

func goldenMultiply(n int) uint64 {
	data := lcgFill(2 * n)
	a, b := data[:n], data[n:]
	var s uint64
	for i := 0; i < n; i++ {
		s += (a[i] & 0xffff) * (b[i] & 0xffff)
	}
	return s
}

func goldenSpmv() uint64 {
	x := lcgFill(spmvCols)
	state := uint64(lcgSeed)
	for range x {
		state = lcgNext(state) // replay the fill to advance the stream
	}
	cols := make([]uint64, spmvRows*spmvNNZ)
	vals := make([]uint64, spmvRows*spmvNNZ)
	for i := range cols {
		state = lcgNext(state)
		cols[i] = state & (spmvCols - 1)
		state = lcgNext(state)
		vals[i] = state
	}
	y := make([]uint64, spmvRows)
	for r := 0; r < spmvRows; r++ {
		var acc uint64
		for j := 0; j < spmvNNZ; j++ {
			acc += vals[r*spmvNNZ+j] * x[cols[r*spmvNNZ+j]]
		}
		y[r] = acc
	}
	return weightedSum(y)
}

func goldenBFS() uint64 {
	state := uint64(lcgSeed)
	adj := make([]uint64, bfsVerts*bfsDeg)
	for i := range adj {
		state = lcgNext(state)
		adj[i] = state >> 13 & (bfsVerts - 1)
	}
	visited := make([]uint64, bfsVerts)
	visited[0] = 1
	queue := []uint64{0}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for j := 0; j < bfsDeg; j++ {
			u := adj[v*bfsDeg+uint64(j)]
			if visited[u] == 0 {
				visited[u] = visited[v] + 1
				queue = append(queue, u)
			}
		}
	}
	// Every repetition computes the same result.
	return weightedSum(visited)
}

func goldenHistogram() uint64 {
	words := lcgFill(histN / 8)
	var bins [256]uint64
	var side uint64
	for i := 0; i < histN; i++ {
		b := byte(words[i/8] >> (8 * (i % 8)))
		side += bins[b] // amoadd returns the old value
		bins[b]++
	}
	var sum uint64
	for i, v := range bins {
		sum += v * uint64(i+1)
	}
	return sum + side
}
