// Package store is the persistent, content-addressed result store behind
// the icicle-serve service and the sim runner's L2 memo: a directory of
// versioned, checksummed blobs keyed by job fingerprint, so identical
// sweeps are free across processes and users — the host-side analogue of
// an artifact cache in a FireSim-style simulation farm.
//
// Layout under the root directory:
//
//	objects/<aa>/<sha256-hex>   verified blobs (aa = first two hex digits)
//	tmp/                        in-flight writes (atomic write-then-rename)
//	quarantine/                 blobs that failed verification on read
//
// Every blob is framed as
//
//	magic "ICB1" (4 bytes: format name + version)
//	payload length (8 bytes, little-endian)
//	payload SHA-256 (32 bytes)
//	payload
//
// and is verified on every read: a wrong magic or version, a short or
// overlong file, or a checksum mismatch moves the blob to quarantine/ and
// reports a miss, so a crash mid-write, a truncated disk, or bit rot can
// never serve bad bytes — the caller recomputes and the bad blob is kept
// aside for inspection. Writes go to tmp/ first and are renamed into
// place, so concurrent processes sharing one directory only ever observe
// complete frames.
//
// The store is LRU-capped by payload bytes (WithMaxBytes): reads refresh
// both the in-memory recency list and the file mtime (best effort), so a
// restarted process rebuilds an approximate recency order from mtimes.
package store

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"icicle/internal/obs"
)

// magic is the frame magic: format name plus version. Bumping the blob
// format means a new magic ("ICB2"), and old blobs verify-fail into
// quarantine and are recomputed — never misread.
const magic = "ICB1"

const headerSize = 4 + 8 + sha256.Size

// Addr is the content address of a key: the hex SHA-256 of the key
// string. It is what appears on disk and in the /store/{addr} URL space.
func Addr(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:])
}

// ValidAddr reports whether addr is a well-formed content address:
// exactly 64 lowercase hex digits. Anything else — in particular path
// fragments like ".." or "/" smuggled in through a URL — is not an
// address and must never reach the filesystem layer.
func ValidAddr(addr string) bool {
	if len(addr) != 2*sha256.Size {
		return false
	}
	for i := 0; i < len(addr); i++ {
		c := addr[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Store is a content-addressed blob store rooted at one directory.
// It is safe for concurrent use, including by multiple processes sharing
// the directory (each keeps its own index and falls through to disk on
// local misses).
type Store struct {
	dir      string
	maxBytes int64

	mu      sync.Mutex
	entries map[string]*entry // addr → entry
	head    *entry            // most recently used
	tail    *entry            // least recently used
	bytes   int64             // sum of on-disk blob sizes (frames)

	hits        atomic.Uint64
	misses      atomic.Uint64
	writes      atomic.Uint64
	quarantined atomic.Uint64
	evicted     atomic.Uint64

	reg *obs.Registry // optional mirror of the counters above
	g   struct {
		objects, bytes *obs.Gauge
	}
}

// entry is one resident blob on the intrusive LRU list.
type entry struct {
	addr       string
	size       int64
	prev, next *entry
}

// Option configures Open.
type Option func(*Store)

// WithMaxBytes caps the store at n payload-frame bytes; least-recently
// used blobs are evicted past the cap. n <= 0 means unbounded (the
// default).
func WithMaxBytes(n int64) Option {
	return func(s *Store) { s.maxBytes = n }
}

// WithMetrics publishes the store's counters in reg as icicle_store_*
// (hits, misses, writes, quarantined, evicted, plus object/byte gauges).
func WithMetrics(reg *obs.Registry) Option {
	return func(s *Store) { s.reg = reg }
}

// Open opens (creating if needed) a store rooted at dir, rebuilding the
// LRU index from the objects on disk (oldest mtime = least recent) and
// clearing any in-flight tmp files left by a crash.
func Open(dir string, opts ...Option) (*Store, error) {
	s := &Store{dir: dir, entries: map[string]*entry{}}
	for _, o := range opts {
		o(s)
	}
	for _, sub := range []string{"objects", "tmp", "quarantine"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	// Crash recovery: tmp files are incomplete writes by definition.
	if tmps, err := os.ReadDir(filepath.Join(dir, "tmp")); err == nil {
		for _, t := range tmps {
			os.Remove(filepath.Join(dir, "tmp", t.Name()))
		}
	}
	type onDisk struct {
		addr  string
		size  int64
		mtime int64
	}
	var found []onDisk
	buckets, err := os.ReadDir(filepath.Join(dir, "objects"))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	for _, b := range buckets {
		if !b.IsDir() {
			continue
		}
		blobs, err := os.ReadDir(filepath.Join(dir, "objects", b.Name()))
		if err != nil {
			continue
		}
		for _, bl := range blobs {
			info, err := bl.Info()
			if err != nil {
				continue
			}
			found = append(found, onDisk{addr: bl.Name(), size: info.Size(), mtime: info.ModTime().UnixNano()})
		}
	}
	sort.Slice(found, func(i, j int) bool { return found[i].mtime < found[j].mtime })
	for _, f := range found { // oldest first: each newer blob becomes the new MRU
		e := &entry{addr: f.addr, size: f.size}
		s.entries[f.addr] = e
		s.makeMRU(e)
		s.bytes += f.size
	}
	if s.reg != nil {
		s.g.objects = s.reg.Gauge("icicle_store_objects", "blobs resident in the content-addressed store")
		s.g.bytes = s.reg.Gauge("icicle_store_bytes", "total frame bytes resident in the store")
	}
	s.mu.Lock()
	s.evictLocked()
	s.publishLocked()
	s.mu.Unlock()
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) objectPath(addr string) string {
	bucket := "xx"
	if len(addr) >= 2 {
		bucket = addr[:2]
	}
	return filepath.Join(s.dir, "objects", bucket, addr)
}

// Get returns the verified payload stored under key, or false. A blob
// that fails verification is quarantined and reported as a miss.
func (s *Store) Get(key string) ([]byte, bool) {
	return s.GetAddr(Addr(key))
}

// GetAddr is Get by content address (the /store/{addr} path). An addr
// that is not a well-formed content address (ValidAddr) is a miss before
// any filesystem access: objectPath joins addr under the store root, so
// this gate is what keeps URL-supplied addresses ("../...", encoded
// slashes) from ever reaching, reading, or quarantine-renaming a path
// outside objects/.
func (s *Store) GetAddr(addr string) ([]byte, bool) {
	if !ValidAddr(addr) {
		s.misses.Add(1)
		return nil, false
	}
	path := s.objectPath(addr)
	raw, err := os.ReadFile(path)
	if err != nil {
		s.misses.Add(1)
		s.drop(addr)
		return nil, false
	}
	payload, ok := verify(raw)
	if !ok {
		s.misses.Add(1)
		s.quarantine(addr)
		return nil, false
	}
	// Refresh the mtime (best effort) so a future process rebuilding its
	// index from disk sees this blob as recently used.
	now := time.Now()
	os.Chtimes(path, now, now)
	s.touch(addr, int64(len(raw)))
	s.hits.Add(1)
	return payload, true
}

// verify checks a raw frame and returns its payload.
func verify(raw []byte) ([]byte, bool) {
	if len(raw) < headerSize || string(raw[:4]) != magic {
		return nil, false
	}
	n := binary.LittleEndian.Uint64(raw[4:12])
	if uint64(len(raw)-headerSize) != n {
		return nil, false
	}
	payload := raw[headerSize:]
	sum := sha256.Sum256(payload)
	if string(sum[:]) != string(raw[12:headerSize]) {
		return nil, false
	}
	return payload, true
}

// Put stores payload under key with an atomic write-then-rename. Writing
// an address that already exists replaces it (same content, same
// address, so replacement is idempotent).
func (s *Store) Put(key string, payload []byte) error {
	addr := Addr(key)
	frame := make([]byte, headerSize+len(payload))
	copy(frame, magic)
	binary.LittleEndian.PutUint64(frame[4:12], uint64(len(payload)))
	sum := sha256.Sum256(payload)
	copy(frame[12:headerSize], sum[:])
	copy(frame[headerSize:], payload)

	tmp, err := os.CreateTemp(filepath.Join(s.dir, "tmp"), addr+".*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := tmp.Write(frame); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	dst := s.objectPath(addr)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	s.writes.Add(1)
	s.touch(addr, int64(len(frame)))
	return nil
}

// touch records addr as most recently used (inserting it if the blob
// appeared on disk via another process) and runs eviction.
func (s *Store) touch(addr string, size int64) {
	s.mu.Lock()
	e, ok := s.entries[addr]
	if ok {
		s.unlink(e)
		s.bytes -= e.size
	} else {
		e = &entry{addr: addr}
		s.entries[addr] = e
	}
	e.size = size
	s.bytes += size
	s.makeMRU(e)
	s.evictLocked()
	s.publishLocked()
	s.mu.Unlock()
}

// drop forgets addr without touching the disk (the file is already gone).
func (s *Store) drop(addr string) {
	s.mu.Lock()
	if e, ok := s.entries[addr]; ok {
		s.unlink(e)
		s.bytes -= e.size
		delete(s.entries, addr)
	}
	s.publishLocked()
	s.mu.Unlock()
}

// quarantine moves a failed blob aside for inspection and forgets it.
func (s *Store) quarantine(addr string) {
	dst := filepath.Join(s.dir, "quarantine", addr)
	if err := os.Rename(s.objectPath(addr), dst); err == nil || os.IsExist(err) {
		s.quarantined.Add(1)
	}
	s.drop(addr)
}

// Intrusive LRU plumbing: head = most recently used, tail = least.
// makeMRU inserts a detached entry at the head.
func (s *Store) makeMRU(e *entry) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *Store) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if s.head == e {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if s.tail == e {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *Store) evictLocked() {
	if s.maxBytes <= 0 {
		return
	}
	for s.bytes > s.maxBytes && s.tail != nil {
		victim := s.tail
		s.unlink(victim)
		s.bytes -= victim.size
		delete(s.entries, victim.addr)
		os.Remove(s.objectPath(victim.addr))
		s.evicted.Add(1)
	}
}

func (s *Store) publishLocked() {
	if s.reg == nil {
		return
	}
	s.g.objects.Set(int64(len(s.entries)))
	s.g.bytes.Set(s.bytes)
	// Counters are mirrored by value: the registry handles are
	// get-or-create, so this is cheap and idempotent.
	mirror := func(name, help string, v uint64) {
		c := s.reg.Counter(name, help)
		if d := v - c.Value(); d > 0 {
			c.Add(d)
		}
	}
	mirror("icicle_store_hits_total", "store reads served a verified blob", s.hits.Load())
	mirror("icicle_store_misses_total", "store reads that found no usable blob", s.misses.Load())
	mirror("icicle_store_writes_total", "blobs written to the store", s.writes.Load())
	mirror("icicle_store_quarantined_total", "blobs that failed verification and were quarantined", s.quarantined.Load())
	mirror("icicle_store_evicted_total", "blobs evicted by the LRU size cap", s.evicted.Load())
}

// Stats is a snapshot of the store's counters.
type Stats struct {
	Objects     int    `json:"objects"`
	Bytes       int64  `json:"bytes"`
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Writes      uint64 `json:"writes"`
	Quarantined uint64 `json:"quarantined"`
	Evicted     uint64 `json:"evicted"`
}

// Stats returns the current counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	objects, bytes := len(s.entries), s.bytes
	s.mu.Unlock()
	return Stats{
		Objects:     objects,
		Bytes:       bytes,
		Hits:        s.hits.Load(),
		Misses:      s.misses.Load(),
		Writes:      s.writes.Load(),
		Quarantined: s.quarantined.Load(),
		Evicted:     s.evicted.Load(),
	}
}

// Len reports the number of resident blobs.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}
