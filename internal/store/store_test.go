package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"icicle/internal/obs"
)

func mustOpen(t *testing.T, dir string, opts ...Option) *Store {
	t.Helper()
	s, err := Open(dir, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStoreRoundTrip(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	key := "job|rocket|towers|{...}"
	payload := []byte("the result blob")
	if _, ok := s.Get(key); ok {
		t.Fatal("empty store reported a hit")
	}
	if err := s.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v; want %q", got, ok, payload)
	}
	if got, ok := s.GetAddr(Addr(key)); !ok || !bytes.Equal(got, payload) {
		t.Fatalf("GetAddr = %q, %v", got, ok)
	}
	st := s.Stats()
	if st.Objects != 1 || st.Writes != 1 || st.Hits != 2 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestStoreCrossProcess simulates two processes sharing one directory:
// a blob written through one handle is visible to a second handle that
// was opened before the write (disk fall-through on index miss).
func TestStoreCrossProcess(t *testing.T) {
	dir := t.TempDir()
	a := mustOpen(t, dir)
	b := mustOpen(t, dir) // opened while the store is still empty
	if err := a.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if got, ok := b.Get("k"); !ok || string(got) != "v" {
		t.Fatalf("second handle missed a blob on shared disk: %q %v", got, ok)
	}
	// And a fresh open (process restart) indexes it immediately.
	c := mustOpen(t, dir)
	if c.Len() != 1 {
		t.Fatalf("reopened store indexed %d blobs, want 1", c.Len())
	}
}

// TestStoreCorruptionQuarantine flips, truncates, and rewrites blobs and
// checks every damaged shape is quarantined — never returned.
func TestStoreCorruptionQuarantine(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(path string) error
	}{
		{"bit-flip-payload", func(p string) error {
			raw, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			raw[len(raw)-1] ^= 0xff
			return os.WriteFile(p, raw, 0o644)
		}},
		{"bit-flip-header", func(p string) error {
			raw, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			raw[13] ^= 0x01 // inside the stored checksum
			return os.WriteFile(p, raw, 0o644)
		}},
		{"truncated", func(p string) error {
			raw, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			return os.WriteFile(p, raw[:len(raw)/2], 0o644)
		}},
		{"empty", func(p string) error {
			return os.WriteFile(p, nil, 0o644)
		}},
		{"wrong-version", func(p string) error {
			raw, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			copy(raw, "ICB9")
			return os.WriteFile(p, raw, 0o644)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			s := mustOpen(t, dir)
			key := "victim|" + tc.name
			if err := s.Put(key, []byte("precious bytes")); err != nil {
				t.Fatal(err)
			}
			if err := tc.corrupt(s.objectPath(Addr(key))); err != nil {
				t.Fatal(err)
			}
			if got, ok := s.Get(key); ok {
				t.Fatalf("corrupted blob served: %q", got)
			}
			if q := s.Stats().Quarantined; q != 1 {
				t.Errorf("quarantined = %d, want 1", q)
			}
			ents, err := os.ReadDir(filepath.Join(dir, "quarantine"))
			if err != nil || len(ents) != 1 {
				t.Errorf("quarantine dir holds %d files (err %v), want 1", len(ents), err)
			}
			// The slot is writable again and the rewrite verifies.
			if err := s.Put(key, []byte("recomputed")); err != nil {
				t.Fatal(err)
			}
			if got, ok := s.Get(key); !ok || string(got) != "recomputed" {
				t.Fatalf("recomputed blob not served: %q %v", got, ok)
			}
		})
	}
}

// TestStoreCrashRecovery: a crash mid-write leaves a tmp file, which a
// fresh Open clears, and a torn rename can't happen (rename is atomic),
// so the store never indexes half a frame.
func TestStoreCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	if err := s.Put("survivor", []byte("ok")); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash artifact.
	leftover := filepath.Join(dir, "tmp", "deadbeef.12345")
	if err := os.WriteFile(leftover, []byte("half a frame"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir)
	if _, err := os.Stat(leftover); !os.IsNotExist(err) {
		t.Error("tmp leftover survived reopen")
	}
	if got, ok := s2.Get("survivor"); !ok || string(got) != "ok" {
		t.Fatalf("survivor lost: %q %v", got, ok)
	}
}

func TestStoreLRUEviction(t *testing.T) {
	dir := t.TempDir()
	// Each frame is headerSize + 8 payload bytes; cap at 3 frames.
	frame := int64(headerSize + 8)
	s := mustOpen(t, dir, WithMaxBytes(3*frame))
	for i := 0; i < 3; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), []byte("8bytes!!")); err != nil {
			t.Fatal(err)
		}
	}
	// Touch k0 so k1 becomes the LRU victim.
	if _, ok := s.Get("k0"); !ok {
		t.Fatal("k0 missing before eviction")
	}
	if err := s.Put("k3", []byte("8bytes!!")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("k1"); ok {
		t.Error("LRU victim k1 still resident")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := s.Get(k); !ok {
			t.Errorf("%s evicted, want resident", k)
		}
	}
	if ev := s.Stats().Evicted; ev != 1 {
		t.Errorf("evicted = %d, want 1", ev)
	}
	if s.Stats().Bytes > 3*frame {
		t.Errorf("bytes %d above cap %d", s.Stats().Bytes, 3*frame)
	}
}

// TestStoreLRUSurvivesReopen: recency rebuilt from mtimes orders
// eviction after a restart.
func TestStoreLRUSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	if err := s.Put("old", []byte("8bytes!!")); err != nil {
		t.Fatal(err)
	}
	// Ensure a strictly older mtime without sleeping.
	past := time.Now().Add(-time.Hour)
	os.Chtimes(s.objectPath(Addr("old")), past, past)
	if err := s.Put("new", []byte("8bytes!!")); err != nil {
		t.Fatal(err)
	}
	frame := int64(headerSize + 8)
	s2 := mustOpen(t, dir, WithMaxBytes(2*frame))
	if err := s2.Put("newer", []byte("8bytes!!")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get("old"); ok {
		t.Error("oldest blob survived a capped reopen+put")
	}
	if _, ok := s2.Get("new"); !ok {
		t.Error("recent blob evicted before the older one")
	}
}

func TestStoreConcurrent(t *testing.T) {
	s := mustOpen(t, t.TempDir(), WithMaxBytes(1<<20))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("k%d", (g*7+i)%20)
				want := []byte(strings.Repeat(key, 4))
				if got, ok := s.Get(key); ok && !bytes.Equal(got, want) {
					t.Errorf("torn read for %s: %q", key, got)
					return
				}
				if err := s.Put(key, want); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestStoreMetricsMirror(t *testing.T) {
	reg := obs.NewRegistry()
	s := mustOpen(t, t.TempDir(), WithMetrics(reg))
	s.Put("k", []byte("v"))
	s.Get("k")
	s.Get("absent")
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"icicle_store_hits_total 1",
		"icicle_store_misses_total 1",
		"icicle_store_writes_total 1",
		"icicle_store_objects 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q in:\n%s", want, text)
		}
	}
}

func TestAddrStable(t *testing.T) {
	if Addr("x") != Addr("x") {
		t.Fatal("Addr not deterministic")
	}
	if Addr("x") == Addr("y") {
		t.Fatal("Addr collision on distinct keys")
	}
	if len(Addr("x")) != 64 {
		t.Fatalf("Addr length %d, want 64 hex chars", len(Addr("x")))
	}
}

// ValidAddr admits exactly the Addr output alphabet and nothing else.
func TestValidAddr(t *testing.T) {
	if !ValidAddr(Addr("x")) {
		t.Fatal("ValidAddr rejects a real address")
	}
	bad := []string{
		"",
		"deadbeef", // too short
		strings.Repeat("g", 64),
		strings.ToUpper(Addr("x")), // uppercase hex is not an address
		Addr("x")[:63] + "/",
		"../" + Addr("x")[3:],
		"..%2f" + Addr("x")[5:],
	}
	for _, a := range bad {
		if ValidAddr(a) {
			t.Errorf("ValidAddr(%q) = true, want false", a)
		}
	}
}

// A URL-supplied address containing path fragments must be a plain miss:
// no read outside the store, and — critically — no quarantine rename,
// which would let a crafted address move arbitrary writable files.
func TestStoreTraversalAddrIsMissNotQuarantine(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)

	// A victim file that a traversal would be able to reach and move.
	victim := filepath.Join(dir, "victim")
	if err := os.WriteFile(victim, []byte("precious"), 0o644); err != nil {
		t.Fatal(err)
	}

	for _, addr := range []string{
		"../victim",
		"../../victim",
		"aa/../../victim",
	} {
		if _, ok := s.GetAddr(addr); ok {
			t.Fatalf("GetAddr(%q) returned a payload", addr)
		}
	}
	if _, err := os.Stat(victim); err != nil {
		t.Fatalf("victim file was moved or deleted: %v", err)
	}
	if q := s.Stats().Quarantined; q != 0 {
		t.Fatalf("traversal address triggered %d quarantine renames", q)
	}
	entries, err := os.ReadDir(filepath.Join(dir, "quarantine"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("quarantine/ not empty after traversal probes: %v", entries)
	}
}
