package trace

import (
	"bytes"
	"errors"
	"testing"
)

func TestSamplingWriterGeometryValidation(t *testing.T) {
	s := testSpace(t)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, MustBundle(s, "recovering"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSamplingWriter(w, 0, 10); err == nil {
		t.Fatal("zero window accepted")
	}
	if _, err := NewSamplingWriter(w, 20, 10); err == nil {
		t.Fatal("period < window accepted")
	}
}

func TestSamplingCapturesOnlyWindows(t *testing.T) {
	s := testSpace(t)
	b := MustBundle(s, "fetch-bubbles", "recovering")
	var buf bytes.Buffer
	w, err := NewWriter(&buf, b)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := NewSamplingWriter(w, 10, 100) // 10 cycles captured per 100
	if err != nil {
		t.Fatal(err)
	}
	sample := s.NewSample()
	const cycles = 1000
	for c := uint64(0); c < cycles; c++ {
		sample.Reset()
		// recovering asserts on every cycle ≡ 3 mod 10; half land inside
		// windows.
		if c%10 == 3 {
			sample.Assert(1, 0)
		}
		sw.WriteCycle(c, sample)
	}
	if err := sw.Flush(); err != nil {
		t.Fatal(err)
	}
	if sw.Cycles() != 100 { // 10 windows × 10 cycles
		t.Fatalf("captured %d cycles, want 100", sw.Cycles())
	}

	windows, names, err := ReadWindows(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(windows) != 10 {
		t.Fatalf("%d windows", len(windows))
	}
	if names[1] != "recovering" {
		t.Fatalf("names = %v", names)
	}
	for i, win := range windows {
		if win.Start != uint64(i*100) {
			t.Fatalf("window %d start %d", i, win.Start)
		}
		if len(win.Frames) != 10 {
			t.Fatalf("window %d has %d frames", i, len(win.Frames))
		}
	}
	a := NewWindowAnalyzer(windows, names)
	if a.CapturedCycles() != 100 {
		t.Fatalf("analyzer cycles %d", a.CapturedCycles())
	}
	// One recovering assert per window (cycle ≡ 3 within the first 10).
	if got := a.Totals()["recovering"]; got != 10 {
		t.Fatalf("recovering total %d, want 10", got)
	}
}

func TestSamplingRejectsCorruptMarkers(t *testing.T) {
	s := testSpace(t)
	b := MustBundle(s, "recovering")
	var buf bytes.Buffer
	w, err := NewWriter(&buf, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	// Append garbage where a window marker should be.
	buf.Write(bytes.Repeat([]byte{0xAB}, 10))
	if _, _, err := ReadWindows(&buf); err == nil {
		t.Fatal("corrupt marker accepted")
	}
}

func TestSamplingEndToEndOnCore(t *testing.T) {
	// Smoke: a sampled trace over a pmu.Sample stream produced by hand
	// must round-trip bit-exactly.
	s := testSpace(t)
	b := MustBundle(s, "fetch-bubbles")
	var buf bytes.Buffer
	w, err := NewWriter(&buf, b)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := NewSamplingWriter(w, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	sample := s.NewSample()
	want := map[uint64]uint64{} // captured cycle → lanes
	for c := uint64(0); c < 70; c++ {
		sample.Reset()
		lanes := (c * 3) % 8
		sample.Set(0, lanes)
		if c%7 < 5 {
			want[c] = lanes
		}
		sw.WriteCycle(c, sample)
	}
	if err := sw.Flush(); err != nil {
		t.Fatal(err)
	}
	windows, _, err := ReadWindows(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := map[uint64]uint64{}
	for _, win := range windows {
		for i, f := range win.Frames {
			got[win.Start+uint64(i)] = f[0]
		}
	}
	if len(got) != len(want) {
		t.Fatalf("captured %d cycles, want %d", len(got), len(want))
	}
	for c, lanes := range want {
		if got[c] != lanes {
			t.Fatalf("cycle %d: %#x != %#x", c, got[c], lanes)
		}
	}
}

func TestSampledOverlapTracksFullTrace(t *testing.T) {
	// Build one synthetic stream, trace it both fully and sampled at 50%;
	// the sampled overlap fractions must land near the full-trace ones
	// (sampling fidelity — how §V-B justifies sampling 1.5M cycles).
	s := testSpace(t)
	events := []string{"fetch-bubbles", "recovering", "icache-miss"}
	bundleA := MustBundle(s, events...)
	bundleB := MustBundle(s, events...)

	var full, sampled bytes.Buffer
	wf, err := NewWriter(&full, bundleA)
	if err != nil {
		t.Fatal(err)
	}
	ws0, err := NewWriter(&sampled, bundleB)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := NewSamplingWriter(ws0, 512, 1024)
	if err != nil {
		t.Fatal(err)
	}

	sample := s.NewSample()
	gen := uint64(12345)
	for c := uint64(0); c < 100_000; c++ {
		sample.Reset()
		gen = gen*6364136223846793005 + 1442695040888963407
		if gen%97 == 0 {
			sample.Assert(2, 0) // icache-miss
		}
		if gen%23 < 4 {
			sample.Assert(1, 0) // recovering
		}
		if gen%11 < 2 {
			sample.AssertN(0, int(gen%4)) // bubbles
		}
		wf.WriteCycle(c, sample)
		ws.WriteCycle(c, sample)
	}
	if err := wf.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := ws.Flush(); err != nil {
		t.Fatal(err)
	}

	rd, err := NewReader(&full)
	if err != nil {
		t.Fatal(err)
	}
	af, err := NewAnalyzer(rd)
	if err != nil {
		t.Fatal(err)
	}
	fullRep, err := af.OverlapBound("fetch-bubbles", "icache-miss", "recovering", 50)
	if err != nil {
		t.Fatal(err)
	}

	windows, names, err := ReadWindows(&sampled)
	if err != nil {
		t.Fatal(err)
	}
	aw := NewWindowAnalyzer(windows, names)
	sampRep, err := aw.OverlapBound("fetch-bubbles", "icache-miss", "recovering", 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	// 97 full periods capture 512 cycles each; the 672-cycle remainder
	// captures one more full window.
	if want := 97*512 + 512; aw.CapturedCycles() != want {
		t.Fatalf("captured %d cycles, want %d", aw.CapturedCycles(), want)
	}
	// Fractions agree within 20% relative (window-edge truncation makes
	// the sampled bound slightly lower).
	rel := func(a, b float64) float64 {
		if b == 0 {
			return 0
		}
		d := a - b
		if d < 0 {
			d = -d
		}
		return d / b
	}
	if rel(sampRep.FrontendFrac, fullRep.FrontendFrac) > 0.2 {
		t.Fatalf("frontend frac: sampled %f vs full %f", sampRep.FrontendFrac, fullRep.FrontendFrac)
	}
	if rel(sampRep.OverlapFrac, fullRep.OverlapFrac) > 0.35 {
		t.Fatalf("overlap frac: sampled %f vs full %f", sampRep.OverlapFrac, fullRep.OverlapFrac)
	}
	if sampRep.OverlapFrac > fullRep.OverlapFrac*1.05 {
		t.Fatal("sampled bound should not exceed the full-trace bound (edge truncation)")
	}
}

// failSink fails every underlying write: the bufio layer between the
// SamplingWriter and the sink means the error surfaces either when the
// buffer overflows mid-window (large pending) or at Flush (small pending).
type failSink struct {
	err    error
	writes int
}

func (f *failSink) Write(p []byte) (int, error) {
	f.writes++
	return 0, f.err
}

func TestSamplingSinkFailureMidWindow(t *testing.T) {
	s := testSpace(t)
	b := MustBundle(s, "recovering") // 1-byte frames
	sinkErr := errors.New("pcie hiccup")
	sink := &failSink{err: sinkErr}
	w, err := NewWriter(sink, b)
	if err != nil {
		t.Fatal(err) // NewWriter only buffers the header; no sink I/O yet
	}
	// A window larger than bufio's buffer: flushing it writes through to
	// the sink immediately, so the failure surfaces mid-stream rather
	// than at Flush.
	const window, period = 8192, 16384
	sw, err := NewSamplingWriter(w, window, period)
	if err != nil {
		t.Fatal(err)
	}
	sample := s.NewSample()
	for c := uint64(0); c <= period; c++ { // cycle `period` triggers flushWindow
		sw.WriteCycle(c, sample)
	}
	if sink.writes == 0 {
		t.Fatal("window never reached the sink")
	}
	captured := sw.Cycles()
	// The writer must have latched the error: further cycles are dropped
	// and Flush reports the original failure.
	sw.WriteCycle(period+1, sample)
	if sw.Cycles() != captured {
		t.Error("WriteCycle kept capturing after a sink failure")
	}
	if err := sw.Flush(); !errors.Is(err, sinkErr) {
		t.Fatalf("Flush() = %v, want the sink error", err)
	}
}

func TestSamplingFlushFailure(t *testing.T) {
	s := testSpace(t)
	b := MustBundle(s, "recovering")
	sinkErr := errors.New("sink gone")
	w, err := NewWriter(&failSink{err: sinkErr}, b)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := NewSamplingWriter(w, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	sample := s.NewSample()
	for c := uint64(0); c < 8; c++ {
		sw.WriteCycle(c, sample) // 4 captured frames, all inside bufio
	}
	if err := sw.Flush(); !errors.Is(err, sinkErr) {
		t.Fatalf("Flush() = %v, want the sink error", err)
	}
}

func TestSamplingRoundTripPeriodEqualsWindow(t *testing.T) {
	// period == window is the degenerate full-capture geometry: every
	// cycle is recorded and the stream is a run of back-to-back windows.
	s := testSpace(t)
	b := MustBundle(s, "fetch-bubbles", "recovering")
	var buf bytes.Buffer
	w, err := NewWriter(&buf, b)
	if err != nil {
		t.Fatal(err)
	}
	const window = 16
	sw, err := NewSamplingWriter(w, window, window)
	if err != nil {
		t.Fatal(err)
	}
	sample := s.NewSample()
	const cycles = 4 * window
	for c := uint64(0); c < cycles; c++ {
		sample.Reset()
		if c%3 == 0 {
			sample.Assert(1, 0) // recovering
		}
		sw.WriteCycle(c, sample)
	}
	if err := sw.Flush(); err != nil {
		t.Fatal(err)
	}
	if sw.Cycles() != cycles {
		t.Fatalf("captured %d cycles, want all %d", sw.Cycles(), cycles)
	}
	windows, names, err := ReadWindows(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(windows) != 4 {
		t.Fatalf("%d windows, want 4", len(windows))
	}
	for i, win := range windows {
		if win.Start != uint64(i*window) {
			t.Fatalf("window %d start %d, want %d", i, win.Start, i*window)
		}
		if len(win.Frames) != window {
			t.Fatalf("window %d has %d frames, want %d", i, len(win.Frames), window)
		}
	}
	a := NewWindowAnalyzer(windows, names)
	// recovering asserts on cycles ≡ 0 mod 3: ⌈64/3⌉ = 22 of them.
	if got := a.Totals()["recovering"]; got != 22 {
		t.Fatalf("recovering total %d, want 22", got)
	}
}
