package trace

import (
	"fmt"
	"strings"

	"icicle/internal/stats"
)

// Analyzer applies the temporal TMA model (§V-B) to a decoded trace: it
// can reconstruct per-event timelines, extract recovery sequences, and
// bound the overlap between TMA classes that counter values alone cannot
// reveal.
type Analyzer struct {
	names   []string
	sources []int
	frames  []Frame
}

// NewAnalyzer drains the reader.
func NewAnalyzer(r *Reader) (*Analyzer, error) {
	frames, err := r.ReadAll()
	if err != nil {
		return nil, err
	}
	return &Analyzer{names: r.Names(), sources: r.sources, frames: frames}, nil
}

// Cycles returns the trace length.
func (a *Analyzer) Cycles() int { return len(a.frames) }

// Names returns the traced event names in bundle order.
func (a *Analyzer) Names() []string { return a.names }

func (a *Analyzer) index(name string) (int, error) {
	for i, n := range a.names {
		if n == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("trace: event %q not in trace", name)
}

// EventBits returns the per-cycle any-lane assertion of one event.
func (a *Analyzer) EventBits(name string) ([]bool, error) {
	idx, err := a.index(name)
	if err != nil {
		return nil, err
	}
	out := make([]bool, len(a.frames))
	for c, f := range a.frames {
		out[c] = f.Any(idx)
	}
	return out, nil
}

// Totals returns lane-summed totals per traced event.
func (a *Analyzer) Totals() map[string]uint64 {
	out := make(map[string]uint64, len(a.names))
	for i, n := range a.names {
		var t uint64
		for _, f := range a.frames {
			t += uint64(f.Count(i))
		}
		out[n] = t
	}
	return out
}

// RecoveryCDF extracts the lengths of maximal Recovering runs — the
// Fig. 8b distribution (mode 4 on BOOM; the long tail comes from fences
// and back-to-back flushes).
func (a *Analyzer) RecoveryCDF(recovering string) (*stats.CDF, error) {
	bitsv, err := a.EventBits(recovering)
	if err != nil {
		return nil, err
	}
	return stats.NewCDF(stats.RunLengths(bitsv)), nil
}

// OverlapReport is the Table VI artifact: an upper bound on slots that
// could belong to either Frontend or Bad Speculation.
type OverlapReport struct {
	Cycles        int
	SlotsPerCycle int
	TotalSlots    uint64

	FrontendSlots uint64 // fetch-bubble slots in the trace
	OverlapSlots  uint64 // bubble slots inside both padded windows

	OverlapFrac  float64 // of all slots
	FrontendFrac float64 // of all slots
	// Perturbation: if every overlapping slot moved into / out of the
	// Frontend class, by how much (relative %) would it change?
	FrontendPerturbation float64
}

func (r OverlapReport) String() string {
	return fmt.Sprintf(
		"cycles %d, slots %d: frontend %.2f%%, overlap %.4f%% (frontend perturbation ±%.2f%%)",
		r.Cycles, r.TotalSlots, r.FrontendFrac*100, r.OverlapFrac*100,
		r.FrontendPerturbation*100)
}

// OverlapBound scans for fetch-bubble slots lying within pad cycles of
// both an I-cache refill and a recovery window (§V-B: rolling window
// padded by 50 cycles to conservatively bound the overlap). Any such slot
// could count toward either Frontend or Bad Speculation.
func (a *Analyzer) OverlapBound(bubble, refill, recovering string, pad int) (OverlapReport, error) {
	bIdx, err := a.index(bubble)
	if err != nil {
		return OverlapReport{}, err
	}
	refBits, err := a.EventBits(refill)
	if err != nil {
		return OverlapReport{}, err
	}
	recBits, err := a.EventBits(recovering)
	if err != nil {
		return OverlapReport{}, err
	}
	refWin := stats.PadWindows(refBits, pad)
	recWin := stats.PadWindows(recBits, pad)

	rep := OverlapReport{
		Cycles:        len(a.frames),
		SlotsPerCycle: a.sources[bIdx],
	}
	rep.TotalSlots = uint64(rep.Cycles) * uint64(rep.SlotsPerCycle)
	for c, f := range a.frames {
		n := uint64(f.Count(bIdx))
		rep.FrontendSlots += n
		if refWin[c] && recWin[c] {
			rep.OverlapSlots += n
		}
	}
	if rep.TotalSlots > 0 {
		rep.OverlapFrac = float64(rep.OverlapSlots) / float64(rep.TotalSlots)
		rep.FrontendFrac = float64(rep.FrontendSlots) / float64(rep.TotalSlots)
	}
	if rep.FrontendSlots > 0 {
		rep.FrontendPerturbation = float64(rep.OverlapSlots) / float64(rep.FrontendSlots)
	}
	return rep, nil
}

// Timeline renders a Fig. 3-style ASCII view of the trace between cycles
// [start, end): one row per event, a dot per asserted cycle (any lane).
func (a *Analyzer) Timeline(start, end int) string {
	if start < 0 {
		start = 0
	}
	if end > len(a.frames) {
		end = len(a.frames)
	}
	if end <= start {
		return ""
	}
	width := 0
	for _, n := range a.names {
		if len(n) > width {
			width = len(n)
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%*s  cycles %d..%d\n", width, "", start, end-1)
	for i, n := range a.names {
		fmt.Fprintf(&sb, "%*s  ", width, n)
		for c := start; c < end; c++ {
			if a.frames[c].Any(i) {
				sb.WriteByte('*')
			} else {
				sb.WriteByte('.')
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// FindWindow locates the first cycle ≥ from where the named event
// asserts, or -1.
func (a *Analyzer) FindWindow(name string, from int) int {
	idx, err := a.index(name)
	if err != nil {
		return -1
	}
	for c := from; c < len(a.frames); c++ {
		if a.frames[c].Any(idx) {
			return c
		}
	}
	return -1
}
