// Package trace implements Icicle's out-of-band microarchitectural event
// tracing (§IV-C): a TracerV-style bridge that streams a selected bundle
// of per-cycle event signals as packed binary frames over an io.Writer
// (standing in for the FPGA→host PCIe DMA path), a reader/DMA driver that
// decodes them, and the temporal-TMA analyzer used for trace-based
// validation (§V-B): recovery-sequence CDFs and class-overlap bounding.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math/bits"

	"icicle/internal/pmu"
)

// Magic identifies an Icicle trace stream.
const Magic = "ICTR"

// Version of the binary format.
const Version = 1

// Bundle selects which events a trace carries. Each traced event
// contributes Sources bits per cycle, packed LSB-first in bundle order —
// the "matching type definition for each bit" of §IV-C.
type Bundle struct {
	space   *pmu.Space
	events  []int // indices into space.Events
	names   []string
	bitsPer int // total bits per cycle frame
}

// NewBundle selects the named events from the space.
func NewBundle(space *pmu.Space, names ...string) (*Bundle, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("trace: empty bundle")
	}
	b := &Bundle{space: space, names: names}
	for _, n := range names {
		idx, err := space.Index(n)
		if err != nil {
			return nil, err
		}
		b.events = append(b.events, idx)
		b.bitsPer += space.Events[idx].Sources
	}
	return b, nil
}

// MustBundle is NewBundle that panics on unknown events.
func MustBundle(space *pmu.Space, names ...string) *Bundle {
	b, err := NewBundle(space, names...)
	if err != nil {
		panic(err)
	}
	return b
}

// Names returns the traced event names in bundle order.
func (b *Bundle) Names() []string { return b.names }

// FrameBytes returns the per-cycle frame size.
func (b *Bundle) FrameBytes() int { return (b.bitsPer + 7) / 8 }

// Writer is the target side of the bridge: it packs each cycle's selected
// signals and streams them to the host.
type Writer struct {
	bundle *Bundle
	w      *bufio.Writer
	frame  []byte
	cycles uint64
	err    error
}

// NewWriter writes the self-describing header and returns a Writer.
func NewWriter(w io.Writer, bundle *Bundle) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(Magic); err != nil {
		return nil, err
	}
	var hdr []byte
	hdr = binary.LittleEndian.AppendUint16(hdr, Version)
	hdr = binary.LittleEndian.AppendUint16(hdr, uint16(len(bundle.events)))
	for i, idx := range bundle.events {
		e := bundle.space.Events[idx]
		hdr = binary.LittleEndian.AppendUint16(hdr, uint16(len(bundle.names[i])))
		hdr = append(hdr, bundle.names[i]...)
		hdr = binary.LittleEndian.AppendUint16(hdr, uint16(e.Sources))
	}
	if _, err := bw.Write(hdr); err != nil {
		return nil, err
	}
	return &Writer{bundle: bundle, w: bw, frame: make([]byte, bundle.FrameBytes())}, nil
}

// WriteCycle packs and emits one cycle. It is shaped to be used directly
// as a core's CycleHook.
func (w *Writer) WriteCycle(cycle uint64, sample pmu.Sample) {
	if w.err != nil {
		return
	}
	for i := range w.frame {
		w.frame[i] = 0
	}
	bit := 0
	for _, idx := range w.bundle.events {
		lanes := sample.Lanes(idx)
		n := w.bundle.space.Events[idx].Sources
		for l := 0; l < n; l++ {
			if lanes&(1<<uint(l)) != 0 {
				w.frame[bit/8] |= 1 << uint(bit%8)
			}
			bit++
		}
	}
	_, w.err = w.w.Write(w.frame)
	w.cycles++
}

// Flush drains the bridge buffer; call once simulation ends.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// Cycles returns the number of frames written.
func (w *Writer) Cycles() uint64 { return w.cycles }

// Frame is one decoded cycle: a lane mask per traced event, in bundle
// order.
type Frame []uint64

// Any reports whether event i has any lane high.
func (f Frame) Any(i int) bool { return f[i] != 0 }

// Count returns the number of asserted lanes of event i.
func (f Frame) Count(i int) int { return bits.OnesCount64(f[i]) }

// Reader is the host-side DMA driver: it parses the header and decodes
// frames.
type Reader struct {
	r       *bufio.Reader
	names   []string
	sources []int
	frame   []byte
	bitsPer int
}

// NewReader parses the stream header.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != Magic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	var u16 [2]byte
	read16 := func() (uint16, error) {
		if _, err := io.ReadFull(br, u16[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint16(u16[:]), nil
	}
	ver, err := read16()
	if err != nil {
		return nil, err
	}
	if ver != Version {
		return nil, fmt.Errorf("trace: unsupported version %d", ver)
	}
	n, err := read16()
	if err != nil {
		return nil, err
	}
	rd := &Reader{r: br}
	for i := 0; i < int(n); i++ {
		nl, err := read16()
		if err != nil {
			return nil, err
		}
		name := make([]byte, nl)
		if _, err := io.ReadFull(br, name); err != nil {
			return nil, err
		}
		src, err := read16()
		if err != nil {
			return nil, err
		}
		rd.names = append(rd.names, string(name))
		rd.sources = append(rd.sources, int(src))
		rd.bitsPer += int(src)
	}
	rd.frame = make([]byte, (rd.bitsPer+7)/8)
	return rd, nil
}

// Names returns the traced event names.
func (r *Reader) Names() []string { return r.names }

// Index returns the frame index of the named event.
func (r *Reader) Index(name string) (int, error) {
	for i, n := range r.names {
		if n == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("trace: event %q not in trace", name)
}

// Next decodes one cycle; io.EOF signals a clean end of trace.
func (r *Reader) Next() (Frame, error) {
	if _, err := io.ReadFull(r.r, r.frame); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, io.EOF
		}
		return nil, err
	}
	f := make(Frame, len(r.names))
	bit := 0
	for i, src := range r.sources {
		var m uint64
		for l := 0; l < src; l++ {
			if r.frame[bit/8]&(1<<uint(bit%8)) != 0 {
				m |= 1 << uint(l)
			}
			bit++
		}
		f[i] = m
	}
	return f, nil
}

// ReadAll decodes the remaining frames.
func (r *Reader) ReadAll() ([]Frame, error) {
	var out []Frame
	for {
		f, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
}
