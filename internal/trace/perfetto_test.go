package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"icicle/internal/obs"
)

func TestCounterTracksFromWindows(t *testing.T) {
	// Two windows, two events; event "recovering" asserts on every frame
	// of window 0 and never in window 1.
	w0 := Window{Start: 0, Frames: []Frame{{0b111, 1}, {0b001, 1}}}
	w1 := Window{Start: 100, Frames: []Frame{{0b000, 0}, {0b010, 0}}}
	names := []string{"fetch-bubbles", "recovering"}

	if n := CounterTracks(nil, []Window{w0, w1}, names, 0, 1); n != 0 {
		t.Fatalf("nil tracer emitted %d samples", n)
	}

	tr := obs.NewTracer()
	n := CounterTracks(tr, []Window{w0, w1}, names, 50, 0.5)
	if n != 8 { // 2 windows × 2 events × (value + trailing zero)
		t.Fatalf("emitted %d samples, want 8", n)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatal(err)
	}
	// window 0 of fetch-bubbles: (3+1)/2 = 2 lanes/cycle at ts 50+0*0.5.
	found := false
	for _, ev := range file.TraceEvents {
		if ev.Ph != "C" {
			continue
		}
		if !strings.HasPrefix(ev.Name, "tma:") {
			t.Fatalf("counter event on non-TMA track %q", ev.Name)
		}
		if ev.Name == "tma:fetch-bubbles" && ev.Ts == 50 {
			if got, _ := ev.Args["weight"].(float64); got != 2 {
				t.Fatalf("fetch-bubbles window 0 weight = %v, want 2", got)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("fetch-bubbles window-0 sample missing")
	}
}

func TestCounterTracksFromStream(t *testing.T) {
	s := testSpace(t)
	b := MustBundle(s, "fetch-bubbles", "recovering")
	var buf bytes.Buffer
	w, err := NewWriter(&buf, b)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := NewSamplingWriter(w, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	sample := s.NewSample()
	for c := uint64(0); c < 64; c++ {
		sample.Reset()
		sample.Assert(1, 0)
		sw.WriteCycle(c, sample)
	}
	if err := sw.Flush(); err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTracer()
	n, err := CounterTracksFromStream(tr, &buf, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if n != 16 { // 4 windows × 2 events × 2 samples
		t.Fatalf("emitted %d samples, want 16", n)
	}
	if tr.Events() != 16 {
		t.Fatalf("tracer holds %d events, want 16", tr.Events())
	}
}
