package trace

import (
	"fmt"
	"io"

	"icicle/internal/pmu"
	"icicle/internal/stats"
)

// SamplingWriter captures periodic windows of cycles instead of the full
// run — how the paper's §V-B study samples "a total of 1.5 million cycles
// across all benchmarks" without TracerV's hundreds-of-terabytes problem.
// Each captured window is a separate frame run; window boundaries are
// recorded so the analyzer never treats a sampling gap as contiguous time.
//
// On-disk format: the standard header, then for each window a marker
// [0xFFFF, startCycleLo32, nFrames] (uint16+uint32+uint32, little endian)
// followed by nFrames frames.
type SamplingWriter struct {
	bundle  *Bundle
	w       writerSink
	frame   []byte
	window  uint64 // cycles per captured window
	period  uint64 // cycles between window starts (≥ window)
	start   uint64 // current window start cycle
	pending []byte // frames buffered for the current window
	nFrames uint32
	total   uint64
	err     error
}

type writerSink interface {
	io.Writer
	Flush() error
}

// NewSamplingWriter wraps an existing Writer's stream: it reuses the
// header already emitted by NewWriter, so construct it from the same
// bundle and underlying writer via NewWriter first.
func NewSamplingWriter(w *Writer, window, period uint64) (*SamplingWriter, error) {
	if window == 0 || period < window {
		return nil, fmt.Errorf("trace: bad sampling geometry window=%d period=%d", window, period)
	}
	return &SamplingWriter{
		bundle: w.bundle,
		w:      w.w,
		frame:  make([]byte, w.bundle.FrameBytes()),
		window: window,
		period: period,
	}, nil
}

// WriteCycle is the cycle hook: it captures only cycles inside the
// current sampling window.
func (s *SamplingWriter) WriteCycle(cycle uint64, sample pmu.Sample) {
	if s.err != nil {
		return
	}
	phase := cycle % s.period
	if phase == 0 {
		s.flushWindow()
		s.start = cycle
	}
	if phase >= s.window {
		return
	}
	for i := range s.frame {
		s.frame[i] = 0
	}
	bit := 0
	for _, idx := range s.bundle.events {
		lanes := sample.Lanes(idx)
		n := s.bundle.space.Events[idx].Sources
		for l := 0; l < n; l++ {
			if lanes&(1<<uint(l)) != 0 {
				s.frame[bit/8] |= 1 << uint(bit%8)
			}
			bit++
		}
	}
	s.pending = append(s.pending, s.frame...)
	s.nFrames++
	s.total++
}

func (s *SamplingWriter) flushWindow() {
	if s.nFrames == 0 {
		return
	}
	var hdr [10]byte
	hdr[0], hdr[1] = 0xFF, 0xFF
	putU32(hdr[2:], uint32(s.start))
	putU32(hdr[6:], s.nFrames)
	if _, err := s.w.Write(hdr[:]); err != nil {
		s.err = err
		return
	}
	if _, err := s.w.Write(s.pending); err != nil {
		s.err = err
		return
	}
	s.pending = s.pending[:0]
	s.nFrames = 0
}

func putU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

// Flush drains the final window and the underlying stream.
func (s *SamplingWriter) Flush() error {
	if s.err != nil {
		return s.err
	}
	s.flushWindow()
	if s.err != nil {
		return s.err
	}
	return s.w.Flush()
}

// Cycles returns the number of captured (not elapsed) cycles.
func (s *SamplingWriter) Cycles() uint64 { return s.total }

// Window is one captured sample of consecutive cycles.
type Window struct {
	Start  uint64
	Frames []Frame
}

// ReadWindows parses a sampled stream produced by SamplingWriter.
func ReadWindows(r io.Reader) ([]Window, []string, error) {
	rd, err := NewReader(r)
	if err != nil {
		return nil, nil, err
	}
	var out []Window
	var buf [10]byte
	for {
		if _, err := io.ReadFull(rd.r, buf[:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return out, rd.Names(), nil
			}
			return nil, nil, err
		}
		if buf[0] != 0xFF || buf[1] != 0xFF {
			return nil, nil, fmt.Errorf("trace: bad window marker %x", buf[:2])
		}
		w := Window{Start: uint64(getU32(buf[2:]))}
		n := getU32(buf[6:])
		for i := uint32(0); i < n; i++ {
			f, err := rd.Next()
			if err != nil {
				return nil, nil, fmt.Errorf("trace: truncated window: %w", err)
			}
			w.Frames = append(w.Frames, f)
		}
		out = append(out, w)
	}
}

func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// WindowAnalyzer applies per-window analyses, never crossing sampling
// gaps.
type WindowAnalyzer struct {
	names   []string
	windows []Window
}

// NewWindowAnalyzer wraps parsed windows.
func NewWindowAnalyzer(windows []Window, names []string) *WindowAnalyzer {
	return &WindowAnalyzer{names: names, windows: windows}
}

// CapturedCycles returns the total sampled cycles.
func (a *WindowAnalyzer) CapturedCycles() int {
	n := 0
	for _, w := range a.windows {
		n += len(w.Frames)
	}
	return n
}

// Totals returns lane-summed event totals over all windows.
func (a *WindowAnalyzer) Totals() map[string]uint64 {
	out := make(map[string]uint64, len(a.names))
	for i, n := range a.names {
		var t uint64
		for _, w := range a.windows {
			for _, f := range w.Frames {
				t += uint64(f.Count(i))
			}
		}
		out[n] = t
	}
	return out
}

func padBits(bits []bool, pad int) []bool { return stats.PadWindows(bits, pad) }

func (a *WindowAnalyzer) index(name string) (int, error) {
	for i, n := range a.names {
		if n == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("trace: event %q not in trace", name)
}

// OverlapBound runs the §V-B overlap analysis per captured window (the
// padding never crosses a sampling gap, keeping the bound conservative
// only within observed time). Fractions are of *captured* slots.
func (a *WindowAnalyzer) OverlapBound(bubble, refill, recovering string, pad int, slotsPerCycle int) (OverlapReport, error) {
	bIdx, err := a.index(bubble)
	if err != nil {
		return OverlapReport{}, err
	}
	refIdx, err := a.index(refill)
	if err != nil {
		return OverlapReport{}, err
	}
	recIdx, err := a.index(recovering)
	if err != nil {
		return OverlapReport{}, err
	}
	rep := OverlapReport{SlotsPerCycle: slotsPerCycle}
	for _, w := range a.windows {
		refBits := make([]bool, len(w.Frames))
		recBits := make([]bool, len(w.Frames))
		for c, f := range w.Frames {
			refBits[c] = f.Any(refIdx)
			recBits[c] = f.Any(recIdx)
		}
		refWin := padBits(refBits, pad)
		recWin := padBits(recBits, pad)
		for c, f := range w.Frames {
			n := uint64(f.Count(bIdx))
			rep.FrontendSlots += n
			if refWin[c] && recWin[c] {
				rep.OverlapSlots += n
			}
		}
		rep.Cycles += len(w.Frames)
	}
	rep.TotalSlots = uint64(rep.Cycles) * uint64(slotsPerCycle)
	if rep.TotalSlots > 0 {
		rep.OverlapFrac = float64(rep.OverlapSlots) / float64(rep.TotalSlots)
		rep.FrontendFrac = float64(rep.FrontendSlots) / float64(rep.TotalSlots)
	}
	if rep.FrontendSlots > 0 {
		rep.FrontendPerturbation = float64(rep.OverlapSlots) / float64(rep.FrontendSlots)
	}
	return rep, nil
}
