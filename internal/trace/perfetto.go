package trace

import (
	"io"

	"icicle/internal/obs"
)

// Perfetto bridge: temporal TMA from sampled trace windows rendered as
// counter tracks on the same timeline as the sweep's pipeline spans. Each
// traced event becomes one "tma:<event>" track whose value is the mean
// asserted-lane count per cycle over a captured window — the per-window
// slot weight the §V-B analysis works in. Simulated cycles are mapped
// onto trace microseconds with a fixed usPerCycle scale, so a window
// starting at cycle c lands at baseUS + c*usPerCycle; a zero sample at
// each window's end keeps sampling gaps visibly flat instead of
// interpolated.

// CounterTracks emits one counter track per traced event from parsed
// windows. Returns the number of counter samples emitted; a nil tracer or
// non-positive scale emits nothing.
func CounterTracks(tr *obs.Tracer, windows []Window, names []string, baseUS, usPerCycle float64) int {
	if tr == nil || usPerCycle <= 0 {
		return 0
	}
	emitted := 0
	for _, w := range windows {
		if len(w.Frames) == 0 {
			continue
		}
		startUS := baseUS + float64(w.Start)*usPerCycle
		endUS := baseUS + float64(w.Start+uint64(len(w.Frames)))*usPerCycle
		for i, name := range names {
			var total uint64
			for _, f := range w.Frames {
				total += uint64(f.Count(i))
			}
			tr.CounterUS("tma:"+name, "weight", startUS, float64(total)/float64(len(w.Frames)))
			tr.CounterUS("tma:"+name, "weight", endUS, 0)
			emitted += 2
		}
	}
	return emitted
}

// CounterTracksFromStream parses a sampled stream (SamplingWriter output)
// and emits its counter tracks. Returns the number of samples emitted.
func CounterTracksFromStream(tr *obs.Tracer, r io.Reader, baseUS, usPerCycle float64) (int, error) {
	windows, names, err := ReadWindows(r)
	if err != nil {
		return 0, err
	}
	return CounterTracks(tr, windows, names, baseUS, usPerCycle), nil
}
