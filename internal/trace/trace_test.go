package trace

import (
	"bytes"
	"io"
	"math/rand"
	"testing"

	"icicle/internal/pmu"
)

func testSpace(t *testing.T) *pmu.Space {
	t.Helper()
	s, err := pmu.NewSpace([]pmu.Event{
		{Name: "fetch-bubbles", Set: 0, Bit: 0, Sources: 3},
		{Name: "recovering", Set: 0, Bit: 1, Sources: 1},
		{Name: "icache-miss", Set: 1, Bit: 0, Sources: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBundleErrors(t *testing.T) {
	s := testSpace(t)
	if _, err := NewBundle(s); err == nil {
		t.Fatal("empty bundle accepted")
	}
	if _, err := NewBundle(s, "nope"); err == nil {
		t.Fatal("unknown event accepted")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	s := testSpace(t)
	b := MustBundle(s, "fetch-bubbles", "recovering", "icache-miss")
	if b.FrameBytes() != 1 { // 5 bits
		t.Fatalf("frame bytes = %d", b.FrameBytes())
	}

	var buf bytes.Buffer
	w, err := NewWriter(&buf, b)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(9))
	const cycles = 500
	want := make([][3]uint64, cycles)
	sample := s.NewSample()
	for c := 0; c < cycles; c++ {
		sample.Reset()
		fb := uint64(r.Intn(8))
		rec := uint64(r.Intn(2))
		im := uint64(r.Intn(2))
		sample.Set(0, fb)
		sample.Set(1, rec)
		sample.Set(2, im)
		want[c] = [3]uint64{fb, rec, im}
		w.WriteCycle(uint64(c), sample)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Cycles() != cycles {
		t.Fatalf("writer cycles = %d", w.Cycles())
	}

	rd, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := rd.Names(); len(got) != 3 || got[0] != "fetch-bubbles" {
		t.Fatalf("names = %v", got)
	}
	for c := 0; c < cycles; c++ {
		f, err := rd.Next()
		if err != nil {
			t.Fatalf("cycle %d: %v", c, err)
		}
		for e := 0; e < 3; e++ {
			if f[e] != want[c][e] {
				t.Fatalf("cycle %d event %d: got %#x want %#x", c, e, f[e], want[c][e])
			}
		}
	}
	if _, err := rd.Next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("not a trace"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream accepted")
	}
}

// buildTrace synthesizes a trace with known structure for the analyzer.
func buildTrace(t *testing.T, gen func(c int, sample pmu.Sample), cycles int) *Analyzer {
	t.Helper()
	s := testSpace(t)
	b := MustBundle(s, "fetch-bubbles", "recovering", "icache-miss")
	var buf bytes.Buffer
	w, err := NewWriter(&buf, b)
	if err != nil {
		t.Fatal(err)
	}
	sample := s.NewSample()
	for c := 0; c < cycles; c++ {
		sample.Reset()
		gen(c, sample)
		w.WriteCycle(uint64(c), sample)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	rd, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAnalyzer(rd)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestAnalyzerRecoveryCDF(t *testing.T) {
	// Recovering runs of length 4 at cycles 10-13, 30-33, and one long
	// run of 32 at 60-91.
	a := buildTrace(t, func(c int, s pmu.Sample) {
		if (c >= 10 && c < 14) || (c >= 30 && c < 34) || (c >= 60 && c < 92) {
			s.Assert(1, 0)
		}
	}, 200)
	cdf, err := a.RecoveryCDF("recovering")
	if err != nil {
		t.Fatal(err)
	}
	if cdf.N() != 3 {
		t.Fatalf("runs = %d", cdf.N())
	}
	if cdf.Mode() != 4 || cdf.Max() != 32 {
		t.Fatalf("mode %d max %d", cdf.Mode(), cdf.Max())
	}
}

func TestAnalyzerOverlapBound(t *testing.T) {
	// An icache miss at cycle 100 and recovery at 120: their 50-padded
	// windows overlap in [70,170]. Fetch bubbles: 2 lanes at cycle 130
	// (inside both windows) and 1 lane at cycle 300 (outside).
	a := buildTrace(t, func(c int, s pmu.Sample) {
		switch {
		case c == 100:
			s.Assert(2, 0)
		case c >= 120 && c < 124:
			s.Assert(1, 0)
		case c == 130:
			s.AssertN(0, 2)
		case c == 300:
			s.Assert(0, 0)
		}
	}, 400)
	rep, err := a.OverlapBound("fetch-bubbles", "icache-miss", "recovering", 50)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FrontendSlots != 3 {
		t.Fatalf("frontend slots = %d", rep.FrontendSlots)
	}
	if rep.OverlapSlots != 2 {
		t.Fatalf("overlap slots = %d", rep.OverlapSlots)
	}
	if rep.TotalSlots != 400*3 {
		t.Fatalf("total slots = %d", rep.TotalSlots)
	}
	if rep.FrontendPerturbation < 0.66 || rep.FrontendPerturbation > 0.67 {
		t.Fatalf("perturbation = %f", rep.FrontendPerturbation)
	}
	if rep.String() == "" {
		t.Fatal("empty report string")
	}
}

func TestAnalyzerZeroPadOverlap(t *testing.T) {
	// With pad 0, only exact coincidence counts.
	a := buildTrace(t, func(c int, s pmu.Sample) {
		if c == 50 {
			s.Assert(0, 0)
			s.Assert(1, 0)
			s.Assert(2, 0)
		}
		if c == 60 {
			s.Assert(0, 0)
			s.Assert(2, 0) // refill but no recovery: not an overlap
		}
	}, 100)
	rep, err := a.OverlapBound("fetch-bubbles", "icache-miss", "recovering", 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OverlapSlots != 1 {
		t.Fatalf("overlap = %d", rep.OverlapSlots)
	}
}

func TestAnalyzerTimelineAndTotals(t *testing.T) {
	a := buildTrace(t, func(c int, s pmu.Sample) {
		if c%2 == 0 {
			s.AssertN(0, 3)
		}
	}, 10)
	tot := a.Totals()
	if tot["fetch-bubbles"] != 15 {
		t.Fatalf("totals = %v", tot)
	}
	tl := a.Timeline(0, 10)
	if tl == "" || len(tl) < 30 {
		t.Fatalf("timeline: %q", tl)
	}
	if a.FindWindow("fetch-bubbles", 1) != 2 {
		t.Fatalf("FindWindow = %d", a.FindWindow("fetch-bubbles", 1))
	}
	if a.FindWindow("recovering", 0) != -1 {
		t.Fatal("found nonexistent window")
	}
}

func TestBinaryFormatGolden(t *testing.T) {
	// Freeze the on-disk format: traces written today must stay readable
	// by future versions, so the exact bytes of a tiny known trace are
	// pinned here.
	s := testSpace(t)
	b := MustBundle(s, "recovering", "icache-miss")
	var buf bytes.Buffer
	w, err := NewWriter(&buf, b)
	if err != nil {
		t.Fatal(err)
	}
	sample := s.NewSample()
	sample.Assert(1, 0) // recovering (frame bit 0)
	w.WriteCycle(0, sample)
	sample.Reset()
	sample.Assert(2, 0) // icache-miss (frame bit 1)
	w.WriteCycle(1, sample)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	want := []byte{
		'I', 'C', 'T', 'R', // magic
		1, 0, // version
		2, 0, // two events
		10, 0, 'r', 'e', 'c', 'o', 'v', 'e', 'r', 'i', 'n', 'g', 1, 0,
		11, 0, 'i', 'c', 'a', 'c', 'h', 'e', '-', 'm', 'i', 's', 's', 1, 0,
		0b01, // frame 0: recovering
		0b10, // frame 1: icache-miss
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("format drifted:\ngot  %v\nwant %v", buf.Bytes(), want)
	}
}
