package isa

import "fmt"

// RISC-V base opcodes.
const (
	opcAMO      = 0b0101111
	opcLUI      = 0b0110111
	opcAUIPC    = 0b0010111
	opcJAL      = 0b1101111
	opcJALR     = 0b1100111
	opcBranch   = 0b1100011
	opcLoad     = 0b0000011
	opcStore    = 0b0100011
	opcOpImm    = 0b0010011
	opcOpImm32  = 0b0011011
	opcOp       = 0b0110011
	opcOp32     = 0b0111011
	opcMiscMem  = 0b0001111
	opcSystem   = 0b1110011
	instBytes   = 4 // all instructions are 32-bit (no C extension)
	maxShamt64  = 63
	maxShamt32  = 31
	csrAddrBits = 12
)

// InstBytes is the fixed instruction width in bytes.
const InstBytes = instBytes

type encInfo struct {
	funct3 uint32
	funct7 uint32
}

var rTypeEnc = map[Op]encInfo{
	ADD: {0b000, 0b0000000}, SUB: {0b000, 0b0100000},
	SLL: {0b001, 0b0000000}, SLT: {0b010, 0b0000000}, SLTU: {0b011, 0b0000000},
	XOR: {0b100, 0b0000000}, SRL: {0b101, 0b0000000}, SRA: {0b101, 0b0100000},
	OR: {0b110, 0b0000000}, AND: {0b111, 0b0000000},
	MUL: {0b000, 0b0000001}, MULH: {0b001, 0b0000001}, MULHSU: {0b010, 0b0000001},
	MULHU: {0b011, 0b0000001}, DIV: {0b100, 0b0000001}, DIVU: {0b101, 0b0000001},
	REM: {0b110, 0b0000001}, REMU: {0b111, 0b0000001},
}

var r32TypeEnc = map[Op]encInfo{
	ADDW: {0b000, 0b0000000}, SUBW: {0b000, 0b0100000}, SLLW: {0b001, 0b0000000},
	SRLW: {0b101, 0b0000000}, SRAW: {0b101, 0b0100000},
	MULW: {0b000, 0b0000001}, DIVW: {0b100, 0b0000001}, DIVUW: {0b101, 0b0000001},
	REMW: {0b110, 0b0000001}, REMUW: {0b111, 0b0000001},
}

var branchFunct3 = map[Op]uint32{
	BEQ: 0b000, BNE: 0b001, BLT: 0b100, BGE: 0b101, BLTU: 0b110, BGEU: 0b111,
}

var loadFunct3 = map[Op]uint32{
	LB: 0b000, LH: 0b001, LW: 0b010, LD: 0b011, LBU: 0b100, LHU: 0b101, LWU: 0b110,
}

var storeFunct3 = map[Op]uint32{
	SB: 0b000, SH: 0b001, SW: 0b010, SD: 0b011,
}

var opImmFunct3 = map[Op]uint32{
	ADDI: 0b000, SLTI: 0b010, SLTIU: 0b011, XORI: 0b100, ORI: 0b110, ANDI: 0b111,
}

// amoEnc maps A-extension ops to (funct5, funct3).
var amoEnc = map[Op]encInfo{
	LRW: {0b010, 0b00010}, LRD: {0b011, 0b00010},
	SCW: {0b010, 0b00011}, SCD: {0b011, 0b00011},
	AMOSWAPW: {0b010, 0b00001}, AMOSWAPD: {0b011, 0b00001},
	AMOADDW: {0b010, 0b00000}, AMOADDD: {0b011, 0b00000},
	AMOXORW: {0b010, 0b00100}, AMOXORD: {0b011, 0b00100},
	AMOANDW: {0b010, 0b01100}, AMOANDD: {0b011, 0b01100},
	AMOORW: {0b010, 0b01000}, AMOORD: {0b011, 0b01000},
}

var csrFunct3 = map[Op]uint32{
	CSRRW: 0b001, CSRRS: 0b010, CSRRC: 0b011,
	CSRRWI: 0b101, CSRRSI: 0b110, CSRRCI: 0b111,
}

// Encode packs the instruction into its 32-bit RISC-V encoding.
// It returns an error if an immediate does not fit its field.
func Encode(in Inst) (uint32, error) {
	rd := uint32(in.Rd) << 7
	rs1 := uint32(in.Rs1) << 15
	rs2 := uint32(in.Rs2) << 20

	switch in.Op {
	case LUI, AUIPC:
		if !fits(in.Imm, 20) {
			return 0, immErr(in)
		}
		opc := uint32(opcLUI)
		if in.Op == AUIPC {
			opc = opcAUIPC
		}
		return opc | rd | (uint32(in.Imm)&0xfffff)<<12, nil

	case JAL:
		if in.Imm&1 != 0 || !fits(in.Imm, 21) {
			return 0, immErr(in)
		}
		imm := uint32(in.Imm)
		enc := (imm>>20&1)<<31 | (imm>>1&0x3ff)<<21 | (imm>>11&1)<<20 | (imm >> 12 & 0xff << 12)
		return opcJAL | rd | enc, nil

	case JALR:
		if !fits(in.Imm, 12) {
			return 0, immErr(in)
		}
		return opcJALR | rd | rs1 | (uint32(in.Imm)&0xfff)<<20, nil

	case FENCE:
		return opcMiscMem, nil
	case FENCEI:
		return opcMiscMem | 0b001<<12, nil
	case ECALL:
		return opcSystem, nil
	case EBREAK:
		return opcSystem | 1<<20, nil

	case SLLI, SRLI, SRAI:
		if in.Imm < 0 || in.Imm > maxShamt64 {
			return 0, immErr(in)
		}
		f3 := uint32(0b001)
		hi := uint32(0)
		if in.Op != SLLI {
			f3 = 0b101
		}
		if in.Op == SRAI {
			hi = 0b010000 << 26
		}
		return opcOpImm | rd | f3<<12 | rs1 | uint32(in.Imm)<<20 | hi, nil

	case SLLIW, SRLIW, SRAIW:
		if in.Imm < 0 || in.Imm > maxShamt32 {
			return 0, immErr(in)
		}
		f3 := uint32(0b001)
		hi := uint32(0)
		if in.Op != SLLIW {
			f3 = 0b101
		}
		if in.Op == SRAIW {
			hi = 0b0100000 << 25
		}
		return opcOpImm32 | rd | f3<<12 | rs1 | uint32(in.Imm)<<20 | hi, nil

	case ADDIW:
		if !fits(in.Imm, 12) {
			return 0, immErr(in)
		}
		return opcOpImm32 | rd | rs1 | (uint32(in.Imm)&0xfff)<<20, nil
	}

	if f3, ok := opImmFunct3[in.Op]; ok {
		if !fits(in.Imm, 12) {
			return 0, immErr(in)
		}
		return opcOpImm | rd | f3<<12 | rs1 | (uint32(in.Imm)&0xfff)<<20, nil
	}
	if e, ok := rTypeEnc[in.Op]; ok {
		return opcOp | rd | e.funct3<<12 | rs1 | rs2 | e.funct7<<25, nil
	}
	if e, ok := r32TypeEnc[in.Op]; ok {
		return opcOp32 | rd | e.funct3<<12 | rs1 | rs2 | e.funct7<<25, nil
	}
	if f3, ok := branchFunct3[in.Op]; ok {
		if in.Imm&1 != 0 || !fits(in.Imm, 13) {
			return 0, immErr(in)
		}
		imm := uint32(in.Imm)
		enc := (imm>>12&1)<<31 | (imm>>5&0x3f)<<25 | (imm>>1&0xf)<<8 | (imm >> 11 & 1 << 7)
		return opcBranch | f3<<12 | rs1 | rs2 | enc, nil
	}
	if f3, ok := loadFunct3[in.Op]; ok {
		if !fits(in.Imm, 12) {
			return 0, immErr(in)
		}
		return opcLoad | rd | f3<<12 | rs1 | (uint32(in.Imm)&0xfff)<<20, nil
	}
	if f3, ok := storeFunct3[in.Op]; ok {
		if !fits(in.Imm, 12) {
			return 0, immErr(in)
		}
		imm := uint32(in.Imm)
		return opcStore | (imm&0x1f)<<7 | f3<<12 | rs1 | rs2 | (imm>>5&0x7f)<<25, nil
	}
	if e, ok := amoEnc[in.Op]; ok {
		// funct5 in bits 31:27; aq/rl zero.
		return opcAMO | rd | e.funct3<<12 | rs1 | rs2 | e.funct7<<27, nil
	}
	if f3, ok := csrFunct3[in.Op]; ok {
		if in.Imm < 0 || in.Imm >= 1<<csrAddrBits {
			return 0, immErr(in)
		}
		src := rs1
		switch in.Op {
		case CSRRWI, CSRRSI, CSRRCI:
			src = uint32(in.CSRImm&0x1f) << 15
		}
		return opcSystem | rd | f3<<12 | src | uint32(in.Imm)<<20, nil
	}
	return 0, fmt.Errorf("isa: cannot encode %v", in.Op)
}

// MustEncode is Encode that panics on error; it is used by the assembler
// after immediates have already been range-checked.
func MustEncode(in Inst) uint32 {
	w, err := Encode(in)
	if err != nil {
		panic(err)
	}
	return w
}

func fits(v int64, bits int) bool {
	min := -(int64(1) << (bits - 1))
	max := int64(1)<<(bits-1) - 1
	return v >= min && v <= max
}

func immErr(in Inst) error {
	return fmt.Errorf("isa: immediate %d out of range for %v", in.Imm, in.Op)
}
