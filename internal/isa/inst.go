package isa

import "fmt"

// Reg names an integer register x0..x31.
type Reg uint8

// ABI register names.
const (
	X0 Reg = iota
	RA
	SP
	GP
	TP
	T0
	T1
	T2
	S0
	S1
	A0
	A1
	A2
	A3
	A4
	A5
	A6
	A7
	S2
	S3
	S4
	S5
	S6
	S7
	S8
	S9
	S10
	S11
	T3
	T4
	T5
	T6
)

// Zero is the hard-wired zero register (alias of X0).
const Zero = X0

var regNames = [...]string{
	"zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
	"s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
	"a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
	"s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
}

func (r Reg) String() string {
	if int(r) < len(regNames) {
		return regNames[r]
	}
	return fmt.Sprintf("x%d", uint8(r))
}

// RegNames maps ABI and numeric names to registers. Exposed for the
// assembler.
var RegNames = func() map[string]Reg {
	m := make(map[string]Reg, 64)
	for i, n := range regNames {
		m[n] = Reg(i)
		m[fmt.Sprintf("x%d", i)] = Reg(i)
	}
	m["fp"] = S0
	return m
}()

// Inst is one decoded instruction. Imm holds the sign-extended immediate;
// for CSR instructions Imm is the CSR address and CSRImm the 5-bit zimm.
type Inst struct {
	Op     Op
	Rd     Reg
	Rs1    Reg
	Rs2    Reg
	Imm    int64
	CSRImm uint8
}

// NOP is the canonical no-op (addi x0, x0, 0).
var NOP = Inst{Op: ADDI}

func (in Inst) String() string {
	switch in.Op.Class() {
	case ClassLoad:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, in.Rd, in.Imm, in.Rs1)
	case ClassStore:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, in.Rs2, in.Imm, in.Rs1)
	case ClassBranch:
		return fmt.Sprintf("%s %s, %s, %d", in.Op, in.Rs1, in.Rs2, in.Imm)
	case ClassAtomic:
		switch in.Op {
		case LRW, LRD:
			return fmt.Sprintf("%s %s, (%s)", in.Op, in.Rd, in.Rs1)
		}
		return fmt.Sprintf("%s %s, %s, (%s)", in.Op, in.Rd, in.Rs2, in.Rs1)
	case ClassCSR:
		switch in.Op {
		case CSRRWI, CSRRSI, CSRRCI:
			return fmt.Sprintf("%s %s, 0x%x, %d", in.Op, in.Rd, uint64(in.Imm), in.CSRImm)
		}
		return fmt.Sprintf("%s %s, 0x%x, %s", in.Op, in.Rd, uint64(in.Imm), in.Rs1)
	case ClassFence, ClassSystem:
		return in.Op.String()
	}
	switch in.Op {
	case LUI, AUIPC:
		return fmt.Sprintf("%s %s, %d", in.Op, in.Rd, in.Imm)
	case JAL:
		return fmt.Sprintf("%s %s, %d", in.Op, in.Rd, in.Imm)
	case JALR:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, in.Rd, in.Imm, in.Rs1)
	}
	if in.Op.ReadsRs2() {
		return fmt.Sprintf("%s %s, %s, %s", in.Op, in.Rd, in.Rs1, in.Rs2)
	}
	return fmt.Sprintf("%s %s, %s, %d", in.Op, in.Rd, in.Rs1, in.Imm)
}

// DestReg returns the written register, or X0 when the instruction has no
// destination (writes to X0 are architecturally discarded anyway).
func (in Inst) DestReg() Reg {
	if in.Op.WritesRd() {
		return in.Rd
	}
	return X0
}

// SrcRegs returns the live source registers (X0 for unused slots).
func (in Inst) SrcRegs() (rs1, rs2 Reg) {
	if in.Op.ReadsRs1() {
		rs1 = in.Rs1
	}
	if in.Op.ReadsRs2() {
		rs2 = in.Rs2
	}
	return rs1, rs2
}
